package repro

import (
	"os"
	"strings"
	"testing"

	"repro/internal/chart"
	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/taskset"
	"repro/internal/trace"
	"repro/internal/vtime"
)

// TestEndToEndPipeline exercises the full measurement pipeline the
// paper describes in §5: parse the task file, build and run the
// system, write the log, parse it back, chart it, and summarize — all
// against the shipped Figure task file.
func TestEndToEndPipeline(t *testing.T) {
	f, err := os.Open("testdata/figures.tasks")
	if err != nil {
		t.Fatal(err)
	}
	set, err := taskset.Parse(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.NewSystem(core.Config{
		Tasks:           set,
		Treatment:       detect.SystemAllowance,
		Faults:          fault.Plan{"tau1": fault.OverrunAt{Job: 5, Extra: ms(40)}},
		Horizon:         vtime.Millis(1500),
		TimerResolution: detect.DefaultTimerResolution,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}

	// Log round-trips through the on-disk format.
	encoded := res.Log.EncodeString()
	back, err := trace.DecodeString(encoded)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if back.Len() != res.Log.Len() {
		t.Fatalf("round trip: %d vs %d events", back.Len(), res.Log.Len())
	}

	// The decoded log supports the same analysis.
	rep := metrics.Analyze(back)
	j1, ok := rep.Job("tau1", 5)
	if !ok || !j1.Stopped || j1.End != vtime.AtMillis(1062) {
		t.Fatalf("tau1#5 from decoded log: %+v", j1)
	}
	j3, _ := rep.Job("tau3", 0)
	if j3.Failed() || j3.End != vtime.AtMillis(1120) {
		t.Fatalf("tau3#0 from decoded log: %+v", j3)
	}

	// Charting the decoded log shows the stop and the grant window.
	out := chart.ASCII(back, chart.Options{
		From: vtime.AtMillis(990), To: vtime.AtMillis(1140), CellMS: 2,
		Tasks: []string{"tau1", "tau2", "tau3"},
	}, map[string]vtime.Duration{"tau1": ms(70), "tau2": ms(120), "tau3": ms(120)})
	if !strings.Contains(out, "X") || !strings.Contains(out, "◆") {
		t.Fatalf("chart from decoded log lacks glyphs:\n%s", out)
	}
}

// TestShippedTaskFilesParse validates every task file under testdata.
func TestShippedTaskFilesParse(t *testing.T) {
	entries, err := os.ReadDir("testdata")
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".tasks") {
			continue
		}
		n++
		f, err := os.Open("testdata/" + e.Name())
		if err != nil {
			t.Fatal(err)
		}
		s, err := taskset.Parse(f)
		f.Close()
		if err != nil {
			t.Errorf("%s: %v", e.Name(), err)
			continue
		}
		if s.Len() == 0 {
			t.Errorf("%s: empty set", e.Name())
		}
	}
	if n < 3 {
		t.Fatalf("expected at least 3 shipped task files, found %d", n)
	}
}
