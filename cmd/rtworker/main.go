// Command rtworker is a standalone shard-worker process for
// process-sharded sweeps: it reads scenario jobs from stdin (the
// runner.MapProc JSON-lines protocol), runs each with streaming
// collection, and writes the serialized accumulator state back on
// stdout until EOF. It is what sim.ShardedSweep spawns when the
// parent cannot (or should not) re-execute itself — e.g. dispatching
// workers from a non-Go orchestrator:
//
//	{"id": 0, "job": {<scenario JSON with "collect": {"mode": "stream"}>}}
//
// in, and
//
//	{"id": 0, "result": {"name": ..., "switches": ..., "metrics": {...}}}
//
// out, one JSON object per line. Errors (invalid scenario, retained
// collection, oracle violations) come back as {"id": N, "error": ...}
// replies rather than crashing the worker.
package main

import (
	"fmt"
	"os"

	"repro/sim"
)

func main() {
	if err := sim.ServeShardWorker(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rtworker:", err)
		os.Exit(1)
	}
}
