package main

import (
	"testing"

	"repro/internal/vtime"
)

func TestParseMarks(t *testing.T) {
	m, err := parseMarks("tau1:29,tau2:58,tau3:87")
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 3 || m["tau1"] != vtime.Millis(29) || m["tau3"] != vtime.Millis(87) {
		t.Errorf("marks = %v", m)
	}
	// Unit suffixes pass through ParseDuration.
	m, err = parseMarks("a:1.5ms")
	if err != nil || m["a"] != vtime.Millis(1)+vtime.Micros(500) {
		t.Errorf("fractional mark: %v, %v", m, err)
	}
	if got, err := parseMarks(""); err != nil || got != nil {
		t.Errorf("empty spec: %v, %v", got, err)
	}
	for _, bad := range []string{"tau1", "tau1:xx"} {
		if _, err := parseMarks(bad); err == nil {
			t.Errorf("spec %q must error", bad)
		}
	}
}
