package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/chart"
	"repro/internal/trace"
	"repro/internal/vtime"
	"repro/sim"
)

// writeFigureLog runs the committed figure5 scenario and writes its
// trace log to a temp file, returning the path and the decoded log.
func writeFigureLog(t *testing.T) (string, *trace.Log) {
	t.Helper()
	sys, err := sim.Load(filepath.Join("..", "..", "testdata", "scenarios", "figure5.json"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "run.log")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := res.WriteLog(f); err != nil {
		t.Fatal(err)
	}
	return path, res.Log
}

// TestASCIIGolden pins the CLI wiring: the rendered chart on stdout
// is exactly the library's ASCII rendering of the same window.
func TestASCIIGolden(t *testing.T) {
	path, log := writeFigureLog(t)
	var stdout, stderr bytes.Buffer
	args := []string{"-log", path, "-from", "990", "-to", "1140",
		"-deadlines", "tau1:70,tau2:120,tau3:120", "-wcrt", "tau1:29,tau2:58,tau3:87"}
	if code := run(args, &stdout, &stderr); code != 0 {
		t.Fatalf("rtchart exited %d: %s", code, stderr.String())
	}
	marks := map[string]vtime.Duration{"tau1": vtime.Millis(29), "tau2": vtime.Millis(58), "tau3": vtime.Millis(87)}
	dl := map[string]vtime.Duration{"tau1": vtime.Millis(70), "tau2": vtime.Millis(120), "tau3": vtime.Millis(120)}
	want := chart.ASCII(log, chart.Options{
		From: vtime.AtMillis(990), To: vtime.AtMillis(1140), CellMS: 2, WCRTMarks: marks,
	}, dl)
	if stdout.String() != want {
		t.Errorf("CLI output differs from chart.ASCII:\n--- got ---\n%s--- want ---\n%s", stdout.String(), want)
	}
	for _, task := range []string{"tau1", "tau2", "tau3"} {
		if !strings.Contains(stdout.String(), task) {
			t.Errorf("chart missing lane %s", task)
		}
	}
}

// TestSVGGolden: -svg writes the library's SVG rendering to the file
// and nothing to stdout.
func TestSVGGolden(t *testing.T) {
	path, log := writeFigureLog(t)
	svgPath := filepath.Join(t.TempDir(), "out.svg")
	var stdout, stderr bytes.Buffer
	args := []string{"-log", path, "-from", "990", "-to", "1140", "-svg", svgPath}
	if code := run(args, &stdout, &stderr); code != 0 {
		t.Fatalf("rtchart -svg exited %d: %s", code, stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("-svg must not write to stdout, got %q", stdout.String())
	}
	got, err := os.ReadFile(svgPath)
	if err != nil {
		t.Fatal(err)
	}
	want := chart.SVG(log, chart.Options{
		From: vtime.AtMillis(990), To: vtime.AtMillis(1140), CellMS: 2,
	}, nil)
	if string(got) != want {
		t.Error("SVG file differs from chart.SVG rendering")
	}
	if !strings.Contains(string(got), "<svg") {
		t.Error("output is not an SVG document")
	}
}

// TestWindowValidation: an explicit non-positive or inverted window
// is an error, not a silent rewrite; the default window still applies
// when -to is omitted.
func TestWindowValidation(t *testing.T) {
	path, _ := writeFigureLog(t)
	for _, bad := range [][]string{
		{"-log", path, "-from", "990", "-to", "0"},
		{"-log", path, "-to", "-5"},
		{"-log", path, "-from", "1140", "-to", "990"},
		{"-log", path, "-from", "990", "-to", "990"},
	} {
		var stdout, stderr bytes.Buffer
		if code := run(bad, &stdout, &stderr); code != 2 {
			t.Errorf("%v exited %d, want 2", bad, code)
		}
		if !strings.Contains(stderr.String(), "-to") {
			t.Errorf("%v: error must explain the window: %s", bad, stderr.String())
		}
	}
	// Omitted -to defaults to -from+200 and succeeds.
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-log", path, "-from", "990"}, &stdout, &stderr); code != 0 {
		t.Errorf("default window exited %d: %s", code, stderr.String())
	}
}

func TestMissingLogFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(nil, &stdout, &stderr); code != 2 {
		t.Errorf("missing -log exited %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "-log") {
		t.Errorf("error must name -log: %s", stderr.String())
	}
}

func TestHelpExitsZero(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-h"}, &stdout, &stderr); code != 0 {
		t.Errorf("rtchart -h exited %d, want 0", code)
	}
}

func TestParseMarks(t *testing.T) {
	m, err := parseMarks("tau1:29,tau2:58,tau3:87")
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 3 || m["tau1"] != vtime.Millis(29) || m["tau3"] != vtime.Millis(87) {
		t.Errorf("marks = %v", m)
	}
	// Unit suffixes pass through ParseDuration.
	m, err = parseMarks("a:1.5ms")
	if err != nil || m["a"] != vtime.Millis(1)+vtime.Micros(500) {
		t.Errorf("fractional mark: %v, %v", m, err)
	}
	if got, err := parseMarks(""); err != nil || got != nil {
		t.Errorf("empty spec: %v, %v", got, err)
	}
	for _, bad := range []string{"tau1", "tau1:xx"} {
		if _, err := parseMarks(bad); err == nil {
			t.Errorf("spec %q must error", bad)
		}
	}
}
