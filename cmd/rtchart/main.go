// Command rtchart is the paper's second measurement tool: it turns a
// log produced by cmd/rtrun into a time-series chart — ASCII on
// stdout by default, or an SVG document with -svg.
//
// Usage:
//
//	rtchart -log run.log -from 990 -to 1140 [-cell 2] [-svg out.svg]
//	        [-tasks tau1,tau2,tau3] [-deadlines tau1:70,tau2:120]
//	        [-wcrt tau1:29,tau2:58,tau3:87]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/chart"
	"repro/internal/trace"
	"repro/internal/vtime"
)

func main() {
	var (
		logPath   = flag.String("log", "", "trace log file (required, '-' for stdin)")
		fromMS    = flag.Int64("from", 0, "window start (ms)")
		toMS      = flag.Int64("to", 0, "window end (ms; 0 = start+200)")
		cellMS    = flag.Int64("cell", 2, "ASCII cell width in ms")
		svgPath   = flag.String("svg", "", "write an SVG chart to this file instead of ASCII stdout")
		taskList  = flag.String("tasks", "", "lane order, comma separated (default: sorted)")
		deadlines = flag.String("deadlines", "", "deadline markers: task:ms, comma separated")
		wcrts     = flag.String("wcrt", "", "WCRT markers: task:ms, comma separated")
	)
	flag.Parse()
	if *logPath == "" {
		fmt.Fprintln(os.Stderr, "rtchart: -log is required")
		flag.Usage()
		os.Exit(2)
	}
	in := os.Stdin
	if *logPath != "-" {
		f, err := os.Open(*logPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	log, err := trace.Decode(in)
	if err != nil {
		fatal(err)
	}
	if *toMS == 0 {
		*toMS = *fromMS + 200
	}
	opts := chart.Options{
		From:   vtime.AtMillis(*fromMS),
		To:     vtime.AtMillis(*toMS),
		CellMS: *cellMS,
	}
	if *taskList != "" {
		opts.Tasks = strings.Split(*taskList, ",")
	}
	wm, err := parseMarks(*wcrts)
	if err != nil {
		fatal(err)
	}
	opts.WCRTMarks = wm
	dm, err := parseMarks(*deadlines)
	if err != nil {
		fatal(err)
	}
	if *svgPath != "" {
		if err := os.WriteFile(*svgPath, []byte(chart.SVG(log, opts, dm)), 0o644); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Print(chart.ASCII(log, opts, dm))
}

func parseMarks(spec string) (map[string]vtime.Duration, error) {
	if spec == "" {
		return nil, nil
	}
	out := map[string]vtime.Duration{}
	for _, part := range strings.Split(spec, ",") {
		name, val, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("rtchart: marker %q is not task:ms", part)
		}
		d, err := vtime.ParseDuration(val)
		if err != nil {
			return nil, err
		}
		out[name] = d
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rtchart:", err)
	os.Exit(1)
}
