// Command rtchart is the paper's second measurement tool: it turns a
// log produced by cmd/rtrun into a time-series chart — ASCII on
// stdout by default, or an SVG document with -svg.
//
// Usage:
//
//	rtchart -log run.log -from 990 -to 1140 [-cell 2] [-svg out.svg]
//	        [-tasks tau1,tau2,tau3] [-deadlines tau1:70,tau2:120]
//	        [-wcrt tau1:29,tau2:58,tau3:87]
//
// When -to is omitted the window closes 200 ms after -from. An
// explicit window must be well formed: a non-positive or inverted end
// (-to ≤ -from) is rejected rather than silently rewritten.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/chart"
	"repro/internal/trace"
	"repro/internal/vtime"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rtchart", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		logPath   = fs.String("log", "", "trace log file (required, '-' for stdin)")
		fromMS    = fs.Int64("from", 0, "window start (ms)")
		toMS      = fs.Int64("to", 0, "window end (ms; default: start+200)")
		cellMS    = fs.Int64("cell", 2, "ASCII cell width in ms")
		svgPath   = fs.String("svg", "", "write an SVG chart to this file instead of ASCII stdout")
		taskList  = fs.String("tasks", "", "lane order, comma separated (default: sorted)")
		deadlines = fs.String("deadlines", "", "deadline markers: task:ms, comma separated")
		wcrts     = fs.String("wcrt", "", "WCRT markers: task:ms, comma separated")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "rtchart:", err)
		return 1
	}
	if *logPath == "" {
		fmt.Fprintln(stderr, "rtchart: -log is required")
		fs.Usage()
		return 2
	}
	toSet := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "to" {
			toSet = true
		}
	})
	if toSet {
		if *toMS <= 0 || *toMS <= *fromMS {
			fmt.Fprintf(stderr, "rtchart: window [-from %d, -to %d) is empty: -to must be positive and greater than -from\n", *fromMS, *toMS)
			return 2
		}
	} else {
		*toMS = *fromMS + 200
	}
	in := io.Reader(os.Stdin)
	if *logPath != "-" {
		f, err := os.Open(*logPath)
		if err != nil {
			return fail(err)
		}
		defer f.Close()
		in = f
	}
	log, err := trace.Decode(in)
	if err != nil {
		return fail(err)
	}
	opts := chart.Options{
		From:   vtime.AtMillis(*fromMS),
		To:     vtime.AtMillis(*toMS),
		CellMS: *cellMS,
	}
	if *taskList != "" {
		opts.Tasks = strings.Split(*taskList, ",")
	}
	wm, err := parseMarks(*wcrts)
	if err != nil {
		return fail(err)
	}
	opts.WCRTMarks = wm
	dm, err := parseMarks(*deadlines)
	if err != nil {
		return fail(err)
	}
	if *svgPath != "" {
		if err := os.WriteFile(*svgPath, []byte(chart.SVG(log, opts, dm)), 0o644); err != nil {
			return fail(err)
		}
		return 0
	}
	fmt.Fprint(stdout, chart.ASCII(log, opts, dm))
	return 0
}

func parseMarks(spec string) (map[string]vtime.Duration, error) {
	if spec == "" {
		return nil, nil
	}
	out := map[string]vtime.Duration{}
	for _, part := range strings.Split(spec, ",") {
		name, val, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("rtchart: marker %q is not task:ms", part)
		}
		d, err := vtime.ParseDuration(val)
		if err != nil {
			return nil, err
		}
		out[name] = d
	}
	return out, nil
}
