// Command rtfeas runs the paper's admission control on a task file:
// the Eq. 1 load test, the Figure 2 exact response-time analysis, and
// the §4 allowance computations (equitable allowance and per-task
// maximum overrun). This is the corrected feasibility implementation
// the paper contributes for the RTSJ.
//
// Usage:
//
//	rtfeas -tasks system.tasks [-granularity 1]
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/allowance"
	"repro/internal/analysis"
	"repro/internal/taskset"
	"repro/internal/vtime"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rtfeas", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		tasksPath = fs.String("tasks", "", "task description file (required)")
		granMS    = fs.Int64("granularity", 1, "allowance search granularity in ms")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if *tasksPath == "" {
		fmt.Fprintln(stderr, "rtfeas: -tasks is required")
		fs.Usage()
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "rtfeas:", err)
		return 1
	}
	f, err := os.Open(*tasksPath)
	if err != nil {
		return fail(err)
	}
	set, err := taskset.Parse(f)
	f.Close()
	if err != nil {
		return fail(err)
	}
	rep, err := analysis.Feasible(set)
	if err != nil {
		return fail(err)
	}
	fmt.Fprint(stdout, rep.Render(set))
	if !rep.Feasible {
		return 1
	}
	tab, err := allowance.Compute(set, vtime.Millis(*granMS))
	if err != nil {
		return fail(err)
	}
	fmt.Fprintf(stdout, "\nequitable allowance A = %v per task\n", tab.Equitable)
	fmt.Fprintf(stdout, "%-8s %14s %18s %12s\n", "task", "WCRT", "WCRT+allowances", "maxOverrun")
	for i, t := range set.Tasks {
		fmt.Fprintf(stdout, "%-8s %14v %18v %12v\n", t.Name, tab.WCRT[i], tab.EquitableWCRT[i], tab.MaxOverrun[i])
	}
	return 0
}
