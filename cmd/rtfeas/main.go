// Command rtfeas runs the paper's admission control on a task file:
// the Eq. 1 load test, the Figure 2 exact response-time analysis, and
// the §4 allowance computations (equitable allowance and per-task
// maximum overrun). This is the corrected feasibility implementation
// the paper contributes for the RTSJ.
//
// Usage:
//
//	rtfeas -tasks system.tasks [-granularity 1]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/allowance"
	"repro/internal/analysis"
	"repro/internal/taskset"
	"repro/internal/vtime"
)

func main() {
	var (
		tasksPath = flag.String("tasks", "", "task description file (required)")
		granMS    = flag.Int64("granularity", 1, "allowance search granularity in ms")
	)
	flag.Parse()
	if *tasksPath == "" {
		fmt.Fprintln(os.Stderr, "rtfeas: -tasks is required")
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*tasksPath)
	if err != nil {
		fatal(err)
	}
	set, err := taskset.Parse(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	rep, err := analysis.Feasible(set)
	if err != nil {
		fatal(err)
	}
	fmt.Print(rep.Render(set))
	if !rep.Feasible {
		os.Exit(1)
	}
	tab, err := allowance.Compute(set, vtime.Millis(*granMS))
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\nequitable allowance A = %v per task\n", tab.Equitable)
	fmt.Printf("%-8s %14s %18s %12s\n", "task", "WCRT", "WCRT+allowances", "maxOverrun")
	for i, t := range set.Tasks {
		fmt.Printf("%-8s %14v %18v %12v\n", t.Name, tab.WCRT[i], tab.EquitableWCRT[i], tab.MaxOverrun[i])
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rtfeas:", err)
	os.Exit(1)
}
