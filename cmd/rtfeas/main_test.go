package main

import (
	"bytes"
	"path/filepath"
	"testing"
)

// golden is the full rtfeas output for the paper's Table 2 system:
// Eq. 1 load, the Figure 2 exact WCRTs (29/58/87), the 11 ms
// equitable allowance and the 33 ms per-task maximum overrun.
const golden = `U = 0.2803
task        P          T          D          C         WCRT ok
tau1       20      200ms       70ms       29ms         29ms yes
tau2       18      250ms      120ms       29ms         58ms yes
tau3       16     1500ms      120ms       29ms         87ms yes
verdict: feasible

equitable allowance A = 11ms per task
task               WCRT    WCRT+allowances   maxOverrun
tau1               29ms               40ms         33ms
tau2               58ms               80ms         33ms
tau3               87ms              120ms         33ms
`

func TestTable2Golden(t *testing.T) {
	var stdout, stderr bytes.Buffer
	tasks := filepath.Join("..", "..", "testdata", "table2.tasks")
	if code := run([]string{"-tasks", tasks}, &stdout, &stderr); code != 0 {
		t.Fatalf("rtfeas exited %d: %s", code, stderr.String())
	}
	if stdout.String() != golden {
		t.Errorf("output differs from golden:\n--- got ---\n%s--- want ---\n%s", stdout.String(), golden)
	}
}

func TestMissingTasksFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(nil, &stdout, &stderr); code != 2 {
		t.Fatalf("missing -tasks exited %d, want 2", code)
	}
}

func TestUnreadableFile(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-tasks", "no/such/file.tasks"}, &stdout, &stderr); code != 1 {
		t.Fatalf("unreadable file exited %d, want 1", code)
	}
}
