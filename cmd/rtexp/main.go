// Command rtexp regenerates every table and figure of the paper's
// evaluation, plus the extension sweeps catalogued in DESIGN.md §4.
//
// Usage:
//
//	rtexp                 # run everything
//	rtexp -exp fig5       # one artefact: table1|table2|table3|fig3..fig7|x1|x2|x3|x4|x5|x9
//	rtexp -svg charts/    # additionally write one SVG per figure
//	rtexp -parallel 8     # shard sweep simulations over 8 workers
//	rtexp -serial         # force the serial path (same output, one sim at a time)
//	rtexp -progress       # live done/total counts on stderr
//	rtexp -json           # machine-readable artefacts, one JSON object per line
//
// Simulation sweeps (x1..x5) run through internal/runner, so
// -parallel changes wall-clock time but never the output: results
// are collected in input order and every simulation draws from its
// own derived seed. Interrupting with ^C cancels the in-flight
// sweep cleanly. x9 is a closed-form analysis, not a simulation
// sweep; it runs inline and ignores the parallelism knobs.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"

	"repro/internal/chart"
	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/vtime"
)

func main() {
	var (
		which    = flag.String("exp", "all", "artefact to regenerate")
		svgDir   = flag.String("svg", "", "directory to write per-figure SVG charts")
		parallel = flag.Int("parallel", 0, "worker count for sweep simulations (0 = all cores)")
		serial   = flag.Bool("serial", false, "force serial execution (equivalent to -parallel 1)")
		progress = flag.Bool("progress", false, "report sweep progress on stderr")
		jsonOut  = flag.Bool("json", false, "emit artefacts as JSON lines instead of tables")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	// run executes one artefact: fn returns the structured data (for
	// -json) and the rendered text (for humans).
	run := func(name string, fn func(opt experiments.RunOptions) (any, string, error)) {
		if *which != "all" && *which != name {
			return
		}
		opt := experiments.RunOptions{Parallelism: *parallel}
		if *serial {
			opt.Parallelism = 1
		}
		if *progress {
			opt.Progress = func(done, total int) {
				fmt.Fprintf(os.Stderr, "\r%s: %d/%d", name, done, total)
				if done == total {
					fmt.Fprintln(os.Stderr)
				}
			}
		}
		data, text, err := fn(opt)
		if err != nil {
			if *progress {
				// The progress line ends in \r, not \n; leave it
				// intact instead of splicing the error over it.
				fmt.Fprintln(os.Stderr)
			}
			fmt.Fprintf(os.Stderr, "rtexp: %s: %v\n", name, err)
			os.Exit(1)
		}
		if *jsonOut {
			enc := json.NewEncoder(os.Stdout)
			if err := enc.Encode(struct {
				Artefact string `json:"artefact"`
				Data     any    `json:"data"`
			}{name, data}); err != nil {
				fmt.Fprintf(os.Stderr, "rtexp: %s: encode: %v\n", name, err)
				os.Exit(1)
			}
		} else {
			fmt.Println(text)
		}
	}

	run("table1", func(experiments.RunOptions) (any, string, error) {
		rows, err := experiments.Table1()
		if err != nil {
			return nil, "", err
		}
		return rows, experiments.RenderTable1(rows), nil
	})
	run("table2", func(experiments.RunOptions) (any, string, error) {
		rows, err := experiments.Table2()
		if err != nil {
			return nil, "", err
		}
		return rows, experiments.RenderTable2(rows), nil
	})
	run("table3", func(experiments.RunOptions) (any, string, error) {
		rows, err := experiments.Table3()
		if err != nil {
			return nil, "", err
		}
		return rows, experiments.RenderTable3(rows), nil
	})
	for _, fig := range []experiments.Figure{
		experiments.Figure3, experiments.Figure4, experiments.Figure5,
		experiments.Figure6, experiments.Figure7,
	} {
		fig := fig
		run(fmt.Sprintf("fig%d", int(fig)), func(experiments.RunOptions) (any, string, error) {
			return runFigure(fig, *svgDir)
		})
	}
	run("x1", func(opt experiments.RunOptions) (any, string, error) {
		points, err := experiments.DetectorOverheadSweepCtx(ctx, []int{2, 4, 8, 16}, 7, opt)
		if err != nil {
			return nil, "", err
		}
		text := "X1 — detector overhead vs task count\n"
		text += fmt.Sprintf("%6s %10s %10s %12s\n", "tasks", "detectors", "switches", "traceBytes")
		for _, p := range points {
			text += fmt.Sprintf("%6d %10v %10d %12d\n", p.Tasks, p.Detectors, p.Switches, p.TraceBytes)
		}
		return points, text, nil
	})
	run("x2", func(opt experiments.RunOptions) (any, string, error) {
		points, err := experiments.FaultMagnitudeSweepCtx(ctx, vtime.Millis(60), vtime.Millis(5), opt)
		if err != nil {
			return nil, "", err
		}
		return points, experiments.RenderSweep(points), nil
	})
	run("x3", func(opt experiments.RunOptions) (any, string, error) {
		points, err := experiments.TimerResolutionSweepCtx(ctx, opt)
		if err != nil {
			return nil, "", err
		}
		text := "X3 — timer resolution sensitivity\n"
		text += fmt.Sprintf("%12s %-20s %10s %10s\n", "resolution", "treatment", "tau1Ran", "collateral")
		for _, p := range points {
			text += fmt.Sprintf("%12v %-20s %10v %10d\n", p.Resolution, p.Treatment, p.Tau1Ran, p.Collateral)
		}
		return points, text, nil
	})
	run("x9", func(experiments.RunOptions) (any, string, error) {
		out, err := experiments.BlockingSweep()
		if err != nil {
			return nil, "", err
		}
		return out, out, nil
	})
	run("x5", func(opt experiments.RunOptions) (any, string, error) {
		points, err := experiments.AcceptanceSweepCtx(ctx,
			[]float64{0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}, 200, 5, 11, opt)
		if err != nil {
			return nil, "", err
		}
		return points, experiments.RenderAcceptance(points), nil
	})
	run("x4", func(opt experiments.RunOptions) (any, string, error) {
		points, err := experiments.BaselineComparisonCtx(ctx, vtime.Millis(50), 6*vtime.Second, opt)
		if err != nil {
			return nil, "", err
		}
		return points, experiments.RenderBaselines(points), nil
	})
}

func runFigure(fig experiments.Figure, svgDir string) (any, string, error) {
	res, err := experiments.RunFigure(fig)
	if err != nil {
		return nil, "", err
	}
	outcome := experiments.Outcome(fig, res)
	text := experiments.RenderOutcome(outcome) + "\n"
	from, to := experiments.FigureWindow()
	opts := chart.Options{
		From: from, To: to, CellMS: 2,
		Tasks: []string{"tau1", "tau2", "tau3"},
		WCRTMarks: map[string]vtime.Duration{
			"tau1": res.Allowance.WCRT[0],
			"tau2": res.Allowance.WCRT[1],
			"tau3": res.Allowance.WCRT[2],
		},
	}
	deadlines := map[string]vtime.Duration{
		"tau1": vtime.Millis(70), "tau2": vtime.Millis(120), "tau3": vtime.Millis(120),
	}
	text += chart.ASCII(res.Log, opts, deadlines) + "\n"
	text += metrics.Analyze(res.Log).Render()
	if svgDir != "" {
		if err := os.MkdirAll(svgDir, 0o755); err != nil {
			return nil, "", err
		}
		path := filepath.Join(svgDir, fmt.Sprintf("figure%d.svg", int(fig)))
		if err := os.WriteFile(path, []byte(chart.SVG(res.Log, opts, deadlines)), 0o644); err != nil {
			return nil, "", err
		}
		text += fmt.Sprintf("wrote %s\n", path)
	}
	return outcome, text, nil
}
