// Command rtexp regenerates every table and figure of the paper's
// evaluation, plus the extension sweeps catalogued in DESIGN.md §4.
//
// Usage:
//
//	rtexp                 # run everything
//	rtexp -exp fig5       # one artefact: table1|table2|table3|fig3..fig7|x1|x2|x3|x5
//	rtexp -svg charts/    # additionally write one SVG per figure
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/chart"
	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/vtime"
)

func main() {
	var (
		which  = flag.String("exp", "all", "artefact to regenerate")
		svgDir = flag.String("svg", "", "directory to write per-figure SVG charts")
	)
	flag.Parse()
	run := func(name string, fn func() error) {
		if *which != "all" && *which != name {
			return
		}
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "rtexp: %s: %v\n", name, err)
			os.Exit(1)
		}
	}
	run("table1", func() error {
		rows, err := experiments.Table1()
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderTable1(rows))
		return nil
	})
	run("table2", func() error {
		rows, err := experiments.Table2()
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderTable2(rows))
		return nil
	})
	run("table3", func() error {
		rows, err := experiments.Table3()
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderTable3(rows))
		return nil
	})
	for _, fig := range []experiments.Figure{
		experiments.Figure3, experiments.Figure4, experiments.Figure5,
		experiments.Figure6, experiments.Figure7,
	} {
		fig := fig
		run(fmt.Sprintf("fig%d", int(fig)), func() error { return runFigure(fig, *svgDir) })
	}
	run("x1", func() error {
		points, err := experiments.DetectorOverheadSweep([]int{2, 4, 8, 16}, 7)
		if err != nil {
			return err
		}
		fmt.Println("X1 — detector overhead vs task count")
		fmt.Printf("%6s %10s %10s %12s\n", "tasks", "detectors", "switches", "traceBytes")
		for _, p := range points {
			fmt.Printf("%6d %10v %10d %12d\n", p.Tasks, p.Detectors, p.Switches, p.TraceBytes)
		}
		fmt.Println()
		return nil
	})
	run("x2", func() error {
		points, err := experiments.FaultMagnitudeSweep(vtime.Millis(60), vtime.Millis(5))
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderSweep(points))
		return nil
	})
	run("x3", func() error {
		points, err := experiments.TimerResolutionSweep()
		if err != nil {
			return err
		}
		fmt.Println("X3 — timer resolution sensitivity")
		fmt.Printf("%12s %-20s %10s %10s\n", "resolution", "treatment", "tau1Ran", "collateral")
		for _, p := range points {
			fmt.Printf("%12v %-20s %10v %10d\n", p.Resolution, p.Treatment, p.Tau1Ran, p.Collateral)
		}
		fmt.Println()
		return nil
	})
	run("x9", func() error {
		out, err := experiments.BlockingSweep()
		if err != nil {
			return err
		}
		fmt.Println(out)
		return nil
	})
	run("x5", func() error {
		points, err := experiments.AcceptanceSweep(
			[]float64{0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}, 200, 5, 11)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderAcceptance(points))
		return nil
	})
}

func runFigure(fig experiments.Figure, svgDir string) error {
	res, err := experiments.RunFigure(fig)
	if err != nil {
		return err
	}
	fmt.Println(experiments.RenderOutcome(experiments.Outcome(fig, res)))
	from, to := experiments.FigureWindow()
	opts := chart.Options{
		From: from, To: to, CellMS: 2,
		Tasks: []string{"tau1", "tau2", "tau3"},
		WCRTMarks: map[string]vtime.Duration{
			"tau1": res.Allowance.WCRT[0],
			"tau2": res.Allowance.WCRT[1],
			"tau3": res.Allowance.WCRT[2],
		},
	}
	deadlines := map[string]vtime.Duration{
		"tau1": vtime.Millis(70), "tau2": vtime.Millis(120), "tau3": vtime.Millis(120),
	}
	fmt.Println(chart.ASCII(res.Log, opts, deadlines))
	fmt.Println(metrics.Analyze(res.Log).Render())
	if svgDir != "" {
		if err := os.MkdirAll(svgDir, 0o755); err != nil {
			return err
		}
		path := filepath.Join(svgDir, fmt.Sprintf("figure%d.svg", int(fig)))
		if err := os.WriteFile(path, []byte(chart.SVG(res.Log, opts, deadlines)), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n\n", path)
	}
	return nil
}
