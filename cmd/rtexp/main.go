// Command rtexp regenerates every table and figure of the paper's
// evaluation, plus the extension sweeps catalogued in DESIGN.md §4.
// The artefacts come from the sim experiment registry, so listing and
// running them needs no per-experiment wiring here.
//
// Usage:
//
//	rtexp                 # run everything
//	rtexp -list           # enumerate the experiment registry and exit
//	rtexp -exp fig5       # one artefact: table1|table2|table3|fig3..fig7|x1|x2|x3|x4|x5|x9|x10
//	rtexp -svg charts/    # additionally write one SVG per figure
//	rtexp -parallel 8     # shard sweep simulations over 8 workers
//	rtexp -serial         # force the serial path (same output, one sim at a time)
//	rtexp -stream         # streaming collection per simulation (x2/x4; same output)
//	rtexp -progress       # live done/total counts on stderr
//	rtexp -json           # machine-readable artefacts, one JSON object per line
//
// Simulation sweeps (x1..x5) run through internal/runner, so
// -parallel changes wall-clock time but never the output: results
// are collected in input order and every simulation draws from its
// own derived seed. Interrupting with ^C cancels the in-flight
// sweep cleanly. x9 is a closed-form analysis, not a simulation
// sweep; it runs inline and ignores the parallelism knobs. x10
// measures wall-clock engine throughput per point and therefore
// always runs serially (parallel points would contend for the CPU
// being measured).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"

	"repro/internal/experiments"
	"repro/sim"
)

func main() {
	// Shard-worker mode first: the x12 sweep re-executes this binary
	// with sim.ShardWorkerEnv set, and the worker must serve scenario
	// jobs on stdin/stdout instead of running experiments.
	sim.RunShardWorkerIfEnv()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rtexp", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		which    = fs.String("exp", "all", "artefact to regenerate")
		list     = fs.Bool("list", false, "list the experiment registry (name, description) and exit")
		svgDir   = fs.String("svg", "", "directory to write per-figure SVG charts")
		parallel = fs.Int("parallel", 0, "worker count for sweep simulations (0 = all cores)")
		serial   = fs.Bool("serial", false, "force serial execution (equivalent to -parallel 1)")
		stream   = fs.Bool("stream", false, "streaming collection for sweep simulations (bounded memory, same artefacts)")
		progress = fs.Bool("progress", false, "report sweep progress on stderr")
		jsonOut  = fs.Bool("json", false, "emit artefacts as JSON lines instead of tables")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	if *list {
		for _, e := range sim.Experiments() {
			fmt.Fprintf(stdout, "%-8s %s\n", e.Name(), e.Description())
		}
		return 0
	}
	if *which != "all" {
		if _, ok := sim.LookupExperiment(*which); !ok {
			fmt.Fprintf(stderr, "rtexp: unknown experiment %q (see rtexp -list)\n", *which)
			return 2
		}
	}

	for _, e := range sim.Experiments() {
		if *which != "all" && *which != e.Name() {
			continue
		}
		opt := sim.RunOptions{Parallelism: *parallel, Stream: *stream}
		if *serial {
			opt.Parallelism = 1
		}
		if *progress {
			name := e.Name()
			opt.Progress = func(done, total int) {
				fmt.Fprintf(stderr, "\r%s: %d/%d", name, done, total)
				if done == total {
					fmt.Fprintln(stderr)
				}
			}
		}
		res, err := runOne(ctx, e, *svgDir, opt)
		if err != nil {
			if *progress {
				// The progress line ends in \r, not \n; leave it
				// intact instead of splicing the error over it.
				fmt.Fprintln(stderr)
			}
			fmt.Fprintf(stderr, "rtexp: %s: %v\n", e.Name(), err)
			return 1
		}
		if *jsonOut {
			enc := json.NewEncoder(stdout)
			if err := enc.Encode(struct {
				Artefact string `json:"artefact"`
				Data     any    `json:"data"`
			}{e.Name(), res.Data}); err != nil {
				fmt.Fprintf(stderr, "rtexp: %s: encode: %v\n", e.Name(), err)
				return 1
			}
		} else {
			fmt.Fprintln(stdout, res.Text)
		}
	}
	return 0
}

// runOne executes one registry entry. Figures honour -svg by running
// the figure artefact directly with the output directory; the text is
// identical to the registry entry's, plus the "wrote …" line.
func runOne(ctx context.Context, e sim.Experiment, svgDir string, opt sim.RunOptions) (sim.Result, error) {
	if svgDir != "" {
		if fig, ok := figureOf(e.Name()); ok {
			outcome, text, err := experiments.FigureArtefact(fig, svgDir)
			if err != nil {
				return sim.Result{}, err
			}
			return sim.Result{Data: outcome, Text: text}, nil
		}
	}
	return e.Run(ctx, opt)
}

func figureOf(name string) (experiments.Figure, bool) {
	if !strings.HasPrefix(name, "fig") {
		return 0, false
	}
	var n int
	if _, err := fmt.Sscanf(name, "fig%d", &n); err != nil {
		return 0, false
	}
	return experiments.Figure(n), true
}
