package main

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/experiments"
	"repro/sim"
)

func TestListEnumeratesRegistry(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(context.Background(), []string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("rtexp -list exited %d: %s", code, stderr.String())
	}
	out := stdout.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if want := len(sim.Experiments()); len(lines) != want {
		t.Fatalf("-list printed %d lines, want %d:\n%s", len(lines), want, out)
	}
	for _, e := range sim.Experiments() {
		if !strings.Contains(out, e.Name()) || !strings.Contains(out, e.Description()) {
			t.Errorf("-list output missing %q / its description:\n%s", e.Name(), out)
		}
	}
}

// TestTable2Golden pins the CLI wiring: -exp table2 prints exactly
// the library's rendering of the paper's Table 2.
func TestTable2Golden(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(context.Background(), []string{"-exp", "table2"}, &stdout, &stderr); code != 0 {
		t.Fatalf("rtexp -exp table2 exited %d: %s", code, stderr.String())
	}
	rows, err := experiments.Table2()
	if err != nil {
		t.Fatal(err)
	}
	want := experiments.RenderTable2(rows) + "\n"
	if stdout.String() != want {
		t.Errorf("output differs from RenderTable2:\n--- got ---\n%s--- want ---\n%s", stdout.String(), want)
	}
	for _, cell := range []string{"tau1", "200", "70", "29", "11", "33"} {
		if !strings.Contains(stdout.String(), cell) {
			t.Errorf("output missing %q:\n%s", cell, stdout.String())
		}
	}
}

func TestJSONOutput(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(context.Background(), []string{"-exp", "table2", "-json"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	var line struct {
		Artefact string `json:"artefact"`
		Data     any    `json:"data"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &line); err != nil {
		t.Fatalf("-json output is not one JSON object: %v\n%s", err, stdout.String())
	}
	if line.Artefact != "table2" || line.Data == nil {
		t.Errorf("JSON line = %+v", line)
	}
}

func TestUnknownExperimentFails(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(context.Background(), []string{"-exp", "fig99"}, &stdout, &stderr); code != 2 {
		t.Fatalf("unknown experiment exited %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "fig99") {
		t.Errorf("error must name the experiment: %s", stderr.String())
	}
}

func TestFigureOf(t *testing.T) {
	if fig, ok := figureOf("fig5"); !ok || fig != experiments.Figure5 {
		t.Errorf("figureOf(fig5) = %v, %v", fig, ok)
	}
	for _, name := range []string{"table2", "x1", "figment"} {
		if _, ok := figureOf(name); ok {
			t.Errorf("figureOf(%q) must be false", name)
		}
	}
}
