// Command rtload drives an rtserved instance with a scenario mix at a
// target rate and reports achieved throughput and latency quantiles
// against an SLO — the load-generator harness of the serving stack,
// and the only HTTP client scripts/serve_smoke.sh needs.
//
// Usage:
//
//	rtload -url http://host:port -scenario a.json[,b.json...]
//	       [-rate 50] [-duration 2s] [-concurrency 8] [-unique]
//	       [-slo-p99 500ms] [-min-throttled 0]
//	rtload -url http://host:port -scenario a.json -post [-out report.txt]
//	rtload -url http://host:port -health
//	rtload -url http://host:port -metrics
//
// Modes:
//
//   - Burst (default): POST the scenario mix round-robin, paced at
//     -rate requests/sec for -duration, across -concurrency client
//     workers, then print one summary line:
//
//     rtload: sent=100 ok=87 throttled=13 errors=0 wall=2.01s achieved_rps=49.8 p50=3.1ms p99=18.4ms
//
//     200s count as ok, 429s as throttled (expected under
//     saturation — the server's admission contract), anything else
//     as an error. The exit code enforces assertions: non-zero when
//     errors > 0, when -slo-p99 is set and the p99 of successful
//     requests exceeds it, or when -min-throttled is set and fewer
//     429s were observed (the saturation check). -unique rewrites
//     each request's scenario name so every POST is content-unique,
//     defeating the server's result cache — the way to load the
//     simulators rather than the cache.
//
//   - -post: one POST of the first scenario, report body
//     (?format=report, byte-equal to `rtrun -scenario`) to -out or
//     stdout, "status=... cache=hit|miss digest=..." to stderr.
//
//   - -health: wait (up to -health-timeout) for a 200 from /healthz.
//
//   - -metrics: print the /metrics JSON document to stdout.
//
// Latencies are client-observed POST round-trip times, accumulated in
// the same Greenwald–Khanna sketch the simulator uses (ε=0.005), so
// the p50/p99 the harness pins are rank-accurate within ±εn.
package main

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	gk "repro/internal/metrics"
	"repro/internal/vtime"
	"repro/sim/scenario"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rtload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		url          = fs.String("url", "", "base URL of the rtserved instance (required)")
		scenarios    = fs.String("scenario", "", "comma-separated scenario JSON files (the request mix)")
		post         = fs.Bool("post", false, "single POST of the first scenario; body to -out or stdout")
		out          = fs.String("out", "", "output file for -post (default stdout)")
		health       = fs.Bool("health", false, "wait for /healthz to answer 200, then exit")
		metricsMode  = fs.Bool("metrics", false, "print the /metrics document and exit")
		rate         = fs.Float64("rate", 50, "target request rate per second")
		duration     = fs.Duration("duration", 2*time.Second, "burst duration")
		concurrency  = fs.Int("concurrency", 8, "client workers")
		unique       = fs.Bool("unique", false, "make every request content-unique (defeats the result cache)")
		sloP99       = fs.Duration("slo-p99", 0, "fail if the p99 latency of ok requests exceeds this (0 = off)")
		minThrottled = fs.Int("min-throttled", 0, "fail unless at least this many 429s were observed")
		healthTO     = fs.Duration("health-timeout", 10*time.Second, "how long to wait for the server to become healthy")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "rtload:", err)
		return 1
	}
	if *url == "" {
		fmt.Fprintln(stderr, "rtload: -url is required")
		fs.Usage()
		return 2
	}
	base := strings.TrimSuffix(*url, "/")
	client := &http.Client{Timeout: 60 * time.Second}

	if err := waitHealthy(client, base, *healthTO); err != nil {
		return fail(err)
	}
	if *health {
		fmt.Fprintln(stderr, "rtload: healthy")
		return 0
	}
	if *metricsMode {
		resp, err := client.Get(base + "/metrics")
		if err != nil {
			return fail(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fail(fmt.Errorf("GET /metrics: status %d", resp.StatusCode))
		}
		_, err = io.Copy(stdout, resp.Body)
		if err != nil {
			return fail(err)
		}
		return 0
	}

	if *scenarios == "" {
		fmt.Fprintln(stderr, "rtload: -scenario is required (except with -health/-metrics)")
		fs.Usage()
		return 2
	}
	mix, err := loadMix(strings.Split(*scenarios, ","))
	if err != nil {
		return fail(err)
	}

	if *post {
		return runPost(client, base, mix[0], *out, stdout, stderr)
	}
	return runBurst(client, base, mix, burstOptions{
		rate:         *rate,
		duration:     *duration,
		concurrency:  *concurrency,
		unique:       *unique,
		sloP99:       *sloP99,
		minThrottled: *minThrottled,
	}, stdout, stderr)
}

// mixEntry is one preloaded scenario of the request mix.
type mixEntry struct {
	sc    *scenario.Scenario
	bytes []byte // canonical encoding, reused verbatim unless -unique
}

func loadMix(paths []string) ([]mixEntry, error) {
	var mix []mixEntry
	for _, p := range paths {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		sc, err := scenario.DecodeFile(p)
		if err != nil {
			return nil, err
		}
		b, err := scenario.Marshal(sc)
		if err != nil {
			return nil, err
		}
		mix = append(mix, mixEntry{sc: sc, bytes: b})
	}
	if len(mix) == 0 {
		return nil, errors.New("no scenarios in -scenario")
	}
	return mix, nil
}

func waitHealthy(client *http.Client, base string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		resp, err := client.Get(base + "/healthz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			if err != nil {
				return fmt.Errorf("server not healthy after %v: %v", timeout, err)
			}
			return fmt.Errorf("server not healthy after %v", timeout)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func runPost(client *http.Client, base string, m mixEntry, outPath string, stdout, stderr io.Writer) int {
	resp, err := client.Post(base+"/v1/simulate?format=report", "application/json", bytes.NewReader(m.bytes))
	if err != nil {
		fmt.Fprintln(stderr, "rtload:", err)
		return 1
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		fmt.Fprintln(stderr, "rtload:", err)
		return 1
	}
	fmt.Fprintf(stderr, "status=%d cache=%s digest=%s\n",
		resp.StatusCode, resp.Header.Get("X-Cache"), resp.Header.Get("X-Scenario-Digest"))
	w := stdout
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			fmt.Fprintln(stderr, "rtload:", err)
			return 1
		}
		defer f.Close()
		w = f
	}
	if _, err := w.Write(body); err != nil {
		fmt.Fprintln(stderr, "rtload:", err)
		return 1
	}
	if resp.StatusCode != http.StatusOK {
		return 1
	}
	return 0
}

type burstOptions struct {
	rate         float64
	duration     time.Duration
	concurrency  int
	unique       bool
	sloP99       time.Duration
	minThrottled int
}

func runBurst(client *http.Client, base string, mix []mixEntry, opt burstOptions, stdout, stderr io.Writer) int {
	if opt.rate <= 0 || opt.duration <= 0 || opt.concurrency <= 0 {
		fmt.Fprintln(stderr, "rtload: -rate, -duration and -concurrency must be positive")
		return 2
	}
	total := int(opt.rate * opt.duration.Seconds())
	if total < 1 {
		total = 1
	}
	const maxBurst = 1_000_000
	if total > maxBurst {
		fmt.Fprintf(stderr, "rtload: capping burst at %d requests\n", maxBurst)
		total = maxBurst
	}

	// Open-loop pacing: the producer emits request indices on schedule
	// regardless of how fast responses come back; the deep buffer means
	// a slow server builds client-side backlog (and measured latency)
	// instead of silently lowering the offered rate.
	ticks := make(chan int, total)
	go func() {
		defer close(ticks)
		interval := time.Duration(float64(time.Second) / opt.rate)
		next := time.Now()
		for i := 0; i < total; i++ {
			if d := time.Until(next); d > 0 {
				time.Sleep(d)
			}
			ticks <- i
			next = next.Add(interval)
		}
	}()

	var (
		mu            sync.Mutex
		lat           = gk.NewSketch(0.005)
		ok, throttled int
		failed        int
		firstErr      error
		wg            sync.WaitGroup
		start         = time.Now()
		bodyFor       = func(i int) []byte { return mix[i%len(mix)].bytes }
		uniqueBody    = func(i int) []byte {
			m := mix[i%len(mix)]
			sc := *m.sc
			sc.Name = fmt.Sprintf("%s [load %d]", m.sc.Name, i)
			b, err := scenario.Marshal(&sc)
			if err != nil {
				return m.bytes
			}
			return b
		}
	)
	wg.Add(opt.concurrency)
	for w := 0; w < opt.concurrency; w++ {
		go func() {
			defer wg.Done()
			for i := range ticks {
				body := bodyFor(i)
				if opt.unique {
					body = uniqueBody(i)
				}
				t0 := time.Now()
				resp, err := client.Post(base+"/v1/simulate", "application/json", bytes.NewReader(body))
				rtt := time.Since(t0)
				mu.Lock()
				if err != nil {
					failed++
					if firstErr == nil {
						firstErr = err
					}
				} else {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					switch resp.StatusCode {
					case http.StatusOK:
						ok++
						lat.Add(vtime.Duration(rtt.Nanoseconds()))
					case http.StatusTooManyRequests:
						throttled++
					default:
						failed++
						if firstErr == nil {
							firstErr = fmt.Errorf("status %d", resp.StatusCode)
						}
					}
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)

	quantile := func(q float64) time.Duration {
		v, found := lat.Query(q)
		if !found {
			return 0
		}
		return time.Duration(int64(v))
	}
	p50, p99 := quantile(0.50), quantile(0.99)
	fmt.Fprintf(stdout, "rtload: sent=%d ok=%d throttled=%d errors=%d wall=%.2fs achieved_rps=%.1f p50=%s p99=%s\n",
		total, ok, throttled, failed, wall.Seconds(), float64(ok+throttled+failed)/wall.Seconds(), p50, p99)

	code := 0
	if failed > 0 {
		fmt.Fprintf(stderr, "rtload: %d requests failed (first: %v)\n", failed, firstErr)
		code = 1
	}
	if opt.sloP99 > 0 {
		if ok == 0 {
			fmt.Fprintln(stderr, "rtload: SLO check impossible: no successful requests")
			code = 1
		} else if p99 > opt.sloP99 {
			fmt.Fprintf(stderr, "rtload: SLO violated: p99 %s > %s\n", p99, opt.sloP99)
			code = 1
		}
	}
	if opt.minThrottled > 0 && throttled < opt.minThrottled {
		fmt.Fprintf(stderr, "rtload: expected at least %d throttled responses, saw %d (server never saturated?)\n",
			opt.minThrottled, throttled)
		code = 1
	}
	return code
}
