package main

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/serve"
)

var scenarioPath = filepath.Join("..", "..", "testdata", "scenarios", "figure5.json")

func TestFlagErrors(t *testing.T) {
	for name, args := range map[string][]string{
		"no-url":      {"-scenario", scenarioPath},
		"no-scenario": {"-url", "http://127.0.0.1:1"},
	} {
		t.Run(name, func(t *testing.T) {
			var out, errb bytes.Buffer
			args := append(args, "-health-timeout", "1ms")
			code := run(args, &out, &errb)
			if name == "no-url" {
				if code != 2 {
					t.Errorf("run(%v) = %d, want 2", args, code)
				}
				return
			}
			// no-scenario dies either on health (nothing listens on
			// port 1) or on the missing mix — never 0.
			if code == 0 {
				t.Errorf("run(%v) = 0, want failure", args)
			}
		})
	}
	var out, errb bytes.Buffer
	if code := run([]string{"-h"}, &out, &errb); code != 0 {
		t.Errorf("run(-h) = %d, want 0", code)
	}
}

// TestPostAgainstRealServer drives the -post mode against the real
// serve.Server: miss then hit, byte-equal bodies, healthz handshake
// included.
func TestPostAgainstRealServer(t *testing.T) {
	s := serve.New(serve.Config{Workers: 2})
	defer s.Close()
	ts := httptest.NewServer(s)
	defer ts.Close()

	dir := t.TempDir()
	out1 := filepath.Join(dir, "r1.txt")
	out2 := filepath.Join(dir, "r2.txt")

	var stdout, stderr bytes.Buffer
	if code := run([]string{"-url", ts.URL, "-scenario", scenarioPath, "-post", "-out", out1}, &stdout, &stderr); code != 0 {
		t.Fatalf("first -post exit %d: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "status=200 cache=miss") {
		t.Errorf("first post stderr %q, want status=200 cache=miss", stderr.String())
	}

	stderr.Reset()
	if code := run([]string{"-url", ts.URL, "-scenario", scenarioPath, "-post", "-out", out2}, &stdout, &stderr); code != 0 {
		t.Fatalf("second -post exit %d: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "status=200 cache=hit") {
		t.Errorf("second post stderr %q, want status=200 cache=hit", stderr.String())
	}

	b1, err := os.ReadFile(out1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(out2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Error("cache hit body differs from miss body")
	}
	if len(b1) == 0 || !strings.Contains(string(b1), "success ratio") {
		t.Errorf("report body does not look like a report: %q", b1)
	}

	// -health and -metrics against the same server.
	var hb bytes.Buffer
	if code := run([]string{"-url", ts.URL, "-health"}, &hb, &hb); code != 0 {
		t.Errorf("-health exit %d", code)
	}
	var mb bytes.Buffer
	if code := run([]string{"-url", ts.URL, "-metrics"}, &mb, &hb); code != 0 {
		t.Errorf("-metrics exit %d", code)
	}
	if !strings.Contains(mb.String(), `"cache_hits"`) {
		t.Errorf("-metrics output missing counters: %s", mb.String())
	}
}

// TestBurstReportsAndSLO pins the burst mode's accounting and exit
// codes against deterministic fake servers.
func TestBurstReportsAndSLO(t *testing.T) {
	okSrv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			w.WriteHeader(http.StatusOK)
			return
		}
		w.Write([]byte(`{"ok":true}`))
	}))
	defer okSrv.Close()

	var stdout, stderr bytes.Buffer
	args := []string{"-url", okSrv.URL, "-scenario", scenarioPath,
		"-rate", "200", "-duration", "100ms", "-concurrency", "4", "-slo-p99", "10s"}
	if code := run(args, &stdout, &stderr); code != 0 {
		t.Fatalf("burst against healthy server: exit %d: %s", code, stderr.String())
	}
	line := stdout.String()
	if !strings.Contains(line, "sent=20") || !strings.Contains(line, "ok=20") || !strings.Contains(line, "throttled=0") || !strings.Contains(line, "errors=0") {
		t.Errorf("burst summary %q", line)
	}

	// Impossible SLO: the same burst must fail.
	stdout.Reset()
	stderr.Reset()
	args[len(args)-1] = "1ns"
	if code := run(args, &stdout, &stderr); code != 1 {
		t.Errorf("impossible SLO: exit %d, want 1 (%s)", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "SLO violated") {
		t.Errorf("stderr %q, want SLO violation", stderr.String())
	}
}

// TestBurstThrottledAccounting pins the saturation contract: 429s are
// counted as throttled (not errors), satisfy -min-throttled, and an
// unmet -min-throttled fails.
func TestBurstThrottledAccounting(t *testing.T) {
	shedding := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			w.WriteHeader(http.StatusOK)
			return
		}
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	defer shedding.Close()

	var stdout, stderr bytes.Buffer
	args := []string{"-url", shedding.URL, "-scenario", scenarioPath,
		"-rate", "100", "-duration", "100ms", "-min-throttled", "5"}
	if code := run(args, &stdout, &stderr); code != 0 {
		t.Fatalf("saturated burst: exit %d: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "throttled=10") || !strings.Contains(stdout.String(), "errors=0") {
		t.Errorf("summary %q, want throttled=10 errors=0", stdout.String())
	}

	okSrv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	defer okSrv.Close()
	stdout.Reset()
	stderr.Reset()
	args = []string{"-url", okSrv.URL, "-scenario", scenarioPath,
		"-rate", "100", "-duration", "50ms", "-min-throttled", "1"}
	if code := run(args, &stdout, &stderr); code != 1 {
		t.Errorf("-min-throttled with no 429s: exit %d, want 1", code)
	}
}

// TestBurstUnique pins -unique: every request carries a distinct
// scenario name, so a digesting server sees distinct documents.
func TestBurstUnique(t *testing.T) {
	seen := make(chan string, 64)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			w.WriteHeader(http.StatusOK)
			return
		}
		var buf bytes.Buffer
		buf.ReadFrom(r.Body)
		seen <- buf.String()
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	var stdout, stderr bytes.Buffer
	args := []string{"-url", srv.URL, "-scenario", scenarioPath,
		"-rate", "100", "-duration", "50ms", "-unique", "-concurrency", "2"}
	if code := run(args, &stdout, &stderr); code != 0 {
		t.Fatalf("unique burst: exit %d: %s", code, stderr.String())
	}
	close(seen)
	bodies := map[string]bool{}
	for b := range seen {
		if bodies[b] {
			t.Fatal("-unique produced duplicate request bodies")
		}
		bodies[b] = true
	}
	if len(bodies) == 0 {
		t.Fatal("no requests observed")
	}
}
