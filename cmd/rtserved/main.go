// Command rtserved is simulation-as-a-service: a long-running
// HTTP/JSON front-end over the simulator (internal/serve). It accepts
// canonical sim/scenario documents on POST /v1/simulate, schedules
// them onto a bounded worker pool, and returns exactly the report a
// local `rtrun -scenario` run prints — deduplicated through a
// content-addressed result cache (scenario.Digest: SHA-256 of the
// canonical bytes + schema version), so N identical in-flight
// requests cost one simulation and repeats cost zero.
//
// Usage:
//
//	rtserved [-addr 127.0.0.1:8080] [-workers N] [-queue N]
//	         [-cache N] [-check] [-port-file path]
//
// Endpoints:
//
//	POST /v1/simulate              scenario JSON → result envelope
//	     ?format=report            raw report (byte-equal to rtrun's)
//	     ?stream=sse               SSE: queued/progress/result events
//	GET  /healthz                  liveness
//	GET  /metrics                  counters, queue depth, latency sketch
//
// When the accept queue is full the server sheds load with HTTP 429 +
// Retry-After instead of queueing without bound. -check arms the
// online invariant oracle on every served run. -port-file writes the
// bound address (host:port) once listening — the race-free handshake
// scripts/serve_smoke.sh uses with -addr 127.0.0.1:0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// testShutdown, when non-nil (set only by tests), triggers the same
// graceful shutdown path as SIGINT/SIGTERM — a deterministic stand-in
// for process signals.
var testShutdown chan struct{}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rtserved", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr     = fs.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
		workers  = fs.Int("workers", 0, "simulation workers (0 = GOMAXPROCS)")
		queue    = fs.Int("queue", 0, "accept-queue bound; full = HTTP 429 (0 = 2x workers)")
		cacheN   = fs.Int("cache", 0, "max cached results, LRU-evicted (0 = 1024)")
		check    = fs.Bool("check", false, "verify every served run against the scheduling invariants")
		portFile = fs.String("port-file", "", "write the bound host:port to this file once listening")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "rtserved: unexpected argument %q\n", fs.Arg(0))
		return 2
	}

	srv := serve.New(serve.Config{
		Workers:      *workers,
		QueueDepth:   *queue,
		CacheEntries: *cacheN,
		Verify:       *check,
	})
	defer srv.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "rtserved:", err)
		return 1
	}
	bound := ln.Addr().String()
	if *portFile != "" {
		// Write-then-rename so a reader never sees a partial address.
		tmp := *portFile + ".tmp"
		if err := os.WriteFile(tmp, []byte(bound+"\n"), 0o644); err != nil {
			fmt.Fprintln(stderr, "rtserved:", err)
			return 1
		}
		if err := os.Rename(tmp, *portFile); err != nil {
			fmt.Fprintln(stderr, "rtserved:", err)
			return 1
		}
	}
	fmt.Fprintf(stderr, "rtserved: listening on %s\n", bound)

	hs := &http.Server{Handler: srv}
	done := make(chan error, 1)
	go func() { done <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)

	shutdown := func(why string) int {
		fmt.Fprintf(stderr, "rtserved: %s, shutting down\n", why)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			fmt.Fprintln(stderr, "rtserved:", err)
			return 1
		}
		return 0
	}
	select {
	case s := <-sig:
		return shutdown(s.String())
	case <-testShutdown:
		return shutdown("test shutdown")
	case err := <-done:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(stderr, "rtserved:", err)
			return 1
		}
		return 0
	}
}
