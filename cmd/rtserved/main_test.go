package main

import (
	"bytes"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestFlagErrors(t *testing.T) {
	for name, args := range map[string][]string{
		"unknown-flag":   {"-bogus"},
		"positional-arg": {"extra"},
	} {
		t.Run(name, func(t *testing.T) {
			var out, errb bytes.Buffer
			if code := run(args, &out, &errb); code != 2 {
				t.Errorf("run(%v) = %d, want 2 (stderr: %s)", args, code, errb.String())
			}
		})
	}
}

func TestHelpExitsZero(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-h"}, &out, &errb); code != 0 {
		t.Errorf("run(-h) = %d, want 0", code)
	}
	if !strings.Contains(errb.String(), "-addr") {
		t.Error("usage does not mention -addr")
	}
}

func TestBadAddrFails(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-addr", "not-an-address"}, &out, &errb); code != 1 {
		t.Errorf("run(bad addr) = %d, want 1", code)
	}
}

// TestServeRoundTrip boots the real server on a free port, performs
// the port-file handshake, serves one scenario end to end over real
// HTTP, and shuts down gracefully via the test twin of SIGINT.
func TestServeRoundTrip(t *testing.T) {
	dir := t.TempDir()
	portFile := filepath.Join(dir, "port")
	testShutdown = make(chan struct{})
	defer func() { testShutdown = nil }()

	var out, errb bytes.Buffer
	codeCh := make(chan int, 1)
	go func() {
		codeCh <- run([]string{"-addr", "127.0.0.1:0", "-workers", "2", "-port-file", portFile}, &out, &errb)
	}()

	var addr string
	deadline := time.Now().Add(10 * time.Second)
	for {
		if b, err := os.ReadFile(portFile); err == nil && len(b) > 0 {
			addr = strings.TrimSpace(string(b))
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("port file never appeared; stderr: %s", errb.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
	base := "http://" + addr

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	scen, err := os.ReadFile(filepath.Join("..", "..", "testdata", "scenarios", "figure5.json"))
	if err != nil {
		t.Fatal(err)
	}
	post, err := http.Post(base+"/v1/simulate", "application/json", bytes.NewReader(scen))
	if err != nil {
		t.Fatal(err)
	}
	defer post.Body.Close()
	if post.StatusCode != http.StatusOK {
		t.Fatalf("simulate: %d", post.StatusCode)
	}
	if cs := post.Header.Get("X-Cache"); cs != "miss" {
		t.Errorf("X-Cache = %q, want miss", cs)
	}

	close(testShutdown)
	select {
	case code := <-codeCh:
		if code != 0 {
			t.Errorf("graceful shutdown exit code %d; stderr: %s", code, errb.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatal("server did not shut down")
	}
}
