// Command rtrun is the paper's first measurement tool: it parses a
// description of the system, builds and runs the tasks automatically,
// and writes the collected key dates to a log file that cmd/rtchart
// can turn into a time-series chart.
//
// Usage:
//
//	rtrun -tasks system.tasks [-treatment stop] [-horizon 3000]
//	      [-fault tau1:5:40] [-resolution 10] [-o run.log] [-check]
//	rtrun -scenario scenario.json [-o run.log] [-check]
//	rtrun -tasks system.tasks -horizon 3600000 -stream [-trace-out run.log]
//
// The -fault flag injects a cost overrun (task:job:extraMS) like the
// paper's §6 voluntary overrun on the priority task. The -scenario
// flag instead loads a complete declarative scenario (tasks, faults,
// policy, treatment, servers, horizon, seed — see repro/sim/scenario)
// from a JSON file, so arbitrary workloads run with zero code
// changes.
//
// The -arrive flag replaces a task's periodic release law with an
// open arrival source (repeatable, comma separated):
//
//	rtrun -tasks system.tasks -arrive tau1:poisson:30        (meanMS[:seed])
//	rtrun -tasks system.tasks -arrive tau1:mmpp:60:8:400:150 (meanMS:burstMeanMS:dwellMS:burstDwellMS[:seed])
//	rtrun -tasks system.tasks -arrive tau1:trace:run.jsonl   (JSON-lines trace file)
//
// Source-driven releases have no periodic admission analysis, so
// -arrive implies skip_admission (the bare engine, treatment none).
// In a scenario file the equivalent is the "arrivals" block, which
// additionally supports inline trace records and server-fed sources.
//
// -stream switches to streaming collection for long horizons: metrics
// are accumulated online with bounded memory instead of retaining
// every job and event, and the summary still prints. The trace is
// discarded unless -trace-out spills it during the run ('-' for
// stdout) — the spilled bytes are identical to the -o log of the same
// retained run. In a scenario file the equivalent is the
// {"collect": {"mode": "stream"}} block.
//
// -cpus runs the task set on M identical processors (treatment none
// only): dispatch defaults to global (one shared ready queue, jobs
// migrate freely) and -placement partitioned instead pins every task
// to one core by utilization-decreasing bin packing (-partitioner
// first-fit or best-fit). In a scenario file the equivalents are the
// "cpus", "placement" and "partitioner" fields:
//
//	rtrun -tasks system.tasks -cpus 4 -placement partitioned -check
//
// -fast-forward arms hyperperiod cycle detection on a streaming run:
// the engine fingerprints the scheduling state at every hyperperiod
// boundary and, once two consecutive boundaries match, extrapolates
// the remaining whole cycles analytically — a 10-hour horizon costs
// milliseconds once the transient settles. Counts and summaries stay
// exact; percentiles keep the streaming sketch's rank-error bound. It
// needs streaming collection and treatment none (no faults, servers
// or stop jitter) and conflicts with -check, -trace-out and
// -checkpoint, which all need the full event stream. The scenario
// file equivalent is "fast_forward": true:
//
//	rtrun -tasks system.tasks -horizon 36000000 -stream -fast-forward
//
// -check arms the online invariant oracle: the run's events are
// validated against the scheduling axioms (see internal/verify) as
// they are recorded, in either collection mode, and the command exits
// non-zero listing the violations if any axiom breaks. The scenario
// file equivalent is "verify": true.
//
// -checkpoint/-checkpoint-at split a run in two: the simulation stops
// at the given instant and writes a self-contained checkpoint JSON
// (scenario + engine + accumulator state); -resume completes it,
// possibly in another process or on another host. The concatenation
// of the two -trace-out spills is byte-identical to the unsplit run's
// trace, and the resumed summary covers the whole run. Checkpoints
// need streaming collection with treatment none and no servers:
//
//	rtrun -scenario long.json -checkpoint half.ckpt -checkpoint-at 1800000
//	rtrun -resume half.ckpt
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/vtime"
	"repro/sim"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rtrun", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		tasksPath  = fs.String("tasks", "", "task description file (this or -scenario is required)")
		scenPath   = fs.String("scenario", "", "declarative scenario JSON file")
		treatment  = fs.String("treatment", "none", "fault treatment: none|detect|stop|equitable|system")
		horizonMS  = fs.Int64("horizon", 3000, "simulated horizon in milliseconds")
		faultSpec  = fs.String("fault", "", "inject a cost overrun: task:job:extraMS (repeatable, comma separated)")
		arriveSpec = fs.String("arrive", "", "drive a task by an arrival source: task:poisson:meanMS[:seed] | task:mmpp:meanMS:burstMeanMS:dwellMS:burstDwellMS[:seed] | task:trace:file.jsonl (repeatable, comma separated; implies skip_admission)")
		resolution = fs.Int64("resolution", 10, "detector timer resolution in ms (0 = exact)")
		outPath    = fs.String("o", "", "log output file (default stdout)")
		summary    = fs.Bool("summary", true, "print the per-task summary to stderr")
		stream     = fs.Bool("stream", false, "streaming collection: bounded memory, no retained log (long horizons)")
		traceOut   = fs.String("trace-out", "", "stream the trace to this file during the run ('-' for stdout; needs streaming collection)")
		check      = fs.Bool("check", false, "verify the run against the scheduling invariants (online oracle); exit non-zero on any violation")
		cpus       = fs.Int("cpus", 0, "number of identical processors (0 or 1 = the paper's uniprocessor; >1 needs treatment none)")
		placement  = fs.String("placement", "", "multiprocessor dispatch: global|partitioned (needs -cpus > 1)")
		partition  = fs.String("partitioner", "", "partitioned bin-packing heuristic: first-fit|best-fit (needs -placement partitioned)")
		fastFwd    = fs.Bool("fast-forward", false, "extrapolate steady-state hyperperiod cycles analytically (needs streaming collection and treatment none)")
		ckptPath   = fs.String("checkpoint", "", "stop at -checkpoint-at and write a resumable checkpoint JSON to this file")
		ckptAt     = fs.Int64("checkpoint-at", -1, "checkpoint instant in ms from time zero (requires -checkpoint)")
		resumePath = fs.String("resume", "", "resume a run from a checkpoint file written by -checkpoint (replaces -tasks/-scenario)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "rtrun:", err)
		return 1
	}
	if (*ckptPath == "") != (*ckptAt < 0) {
		fmt.Fprintln(stderr, "rtrun: -checkpoint and -checkpoint-at go together")
		return 2
	}
	if *resumePath != "" {
		// The checkpoint file carries the whole run description
		// (scenario included), so every flag that would redefine it
		// conflicts. -trace-out and -summary still apply.
		conflict := ""
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "tasks", "scenario", "treatment", "horizon", "fault", "arrive",
				"resolution", "stream", "check", "checkpoint", "checkpoint-at", "o",
				"cpus", "placement", "partitioner", "fast-forward":
				conflict = f.Name
			}
		})
		if conflict != "" {
			fmt.Fprintf(stderr, "rtrun: -%s conflicts with -resume (the checkpoint defines the run)\n", conflict)
			return 2
		}
	} else if (*tasksPath == "") == (*scenPath == "") {
		fmt.Fprintln(stderr, "rtrun: exactly one of -tasks and -scenario is required")
		fs.Usage()
		return 2
	}
	if *scenPath != "" {
		// The scenario file carries the whole run description; a
		// legacy flag set alongside it would be silently ignored or
		// contradicted, so reject the combination outright
		// (-stream's scenario form is the "collect" block).
		conflict := ""
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "treatment", "horizon", "fault", "arrive", "resolution", "stream",
				"cpus", "placement", "partitioner":
				conflict = f.Name
			}
		})
		if conflict != "" {
			fmt.Fprintf(stderr, "rtrun: -%s conflicts with -scenario (the scenario file defines the run)\n", conflict)
			return 2
		}
	}
	var (
		sys *sim.System
		err error
	)
	if *resumePath != "" {
		cp, cerr := sim.DecodeCheckpointFile(*resumePath)
		if cerr != nil {
			return fail(cerr)
		}
		sys, err = sim.Resume(cp)
	} else if *scenPath != "" {
		sys, err = sim.Load(*scenPath)
	} else {
		faults, perr := parseFaults(*faultSpec)
		if perr != nil {
			return fail(perr)
		}
		arrivals, perr := parseArrivals(*arriveSpec)
		if perr != nil {
			return fail(perr)
		}
		opts := []sim.Option{
			sim.WithTaskFile(*tasksPath),
			sim.WithTreatment(*treatment),
			sim.WithHorizon(vtime.Millis(*horizonMS)),
			sim.WithTimerResolution(vtime.Millis(*resolution)),
			sim.WithFaults(faults...),
		}
		if len(arrivals) > 0 {
			// Task-targeted sources ride the bare engine: open arrivals
			// have no periodic admission analysis, so -arrive implies
			// skip_admission (validation rejects any other treatment).
			opts = append(opts, sim.WithArrivals(arrivals...), sim.WithoutAdmission())
		}
		if *stream {
			opts = append(opts, sim.WithCollection(sim.CollectStream))
		}
		if *cpus != 0 {
			opts = append(opts, sim.WithCPUs(*cpus))
		}
		if *placement != "" {
			opts = append(opts, sim.WithPlacement(*placement))
		}
		if *partition != "" {
			opts = append(opts, sim.WithPartitioner(*partition))
		}
		sys, err = sim.New(opts...)
	}
	if err != nil {
		return fail(err)
	}
	if *fastFwd {
		// Every consumer of the full event stream conflicts with the
		// analytic jump: extrapolated cycles produce no events for the
		// oracle, spill or snapshot to see.
		conflict, why := "", ""
		switch {
		case *check:
			conflict, why = "-check", "the oracle needs the full event stream"
		case *traceOut != "":
			conflict, why = "-trace-out", "extrapolated cycles produce no events to spill"
		case *ckptPath != "":
			conflict, why = "-checkpoint", "the jump skips the boundary instants a snapshot would capture"
		}
		if conflict != "" {
			fmt.Fprintf(stderr, "rtrun: -fast-forward conflicts with %s (%s)\n", conflict, why)
			return 2
		}
		// Composes with both front doors like -check; the eligibility
		// grammar (streaming collection, treatment none, no faults)
		// re-validates here.
		if err := sys.SetFastForward(true); err != nil {
			return fail(err)
		}
	}
	if *check {
		// -check composes with both front doors: it arms the oracle on
		// top of whatever the flags or the scenario file declared
		// (a scenario's own "verify": true stays armed either way).
		sys.SetVerify(true)
	}
	sc := sys.Scenario()
	streaming := sc.Streaming()
	if streaming && *outPath != "" {
		fmt.Fprintln(stderr, "rtrun: -o conflicts with streaming collection (no retained log; use -trace-out to spill the trace during the run)")
		return 2
	}
	if *traceOut != "" && !streaming {
		fmt.Fprintln(stderr, "rtrun: -trace-out needs streaming collection (-stream, or a scenario collect mode \"stream\"); a retained run writes its log via -o")
		return 2
	}
	if *traceOut != "" {
		w := stdout
		if *traceOut != "-" {
			f, err := os.Create(*traceOut)
			if err != nil {
				return fail(err)
			}
			defer f.Close()
			w = f
		}
		sys.SpillTrace(w)
	}
	if *ckptPath != "" {
		cp, err := sys.RunToCheckpoint(sim.Duration(vtime.Millis(*ckptAt)))
		if err != nil {
			return fail(err)
		}
		f, err := os.Create(*ckptPath)
		if err != nil {
			return fail(err)
		}
		defer f.Close()
		if err := sim.EncodeCheckpoint(f, cp); err != nil {
			return fail(err)
		}
		if *summary {
			fmt.Fprintf(stderr, "checkpoint at %s written to %s (resume with: rtrun -resume %s)\n",
				vtime.Millis(*ckptAt), *ckptPath, *ckptPath)
		}
		return 0
	}
	res, err := sys.Run()
	if err != nil {
		return fail(err)
	}
	if !streaming {
		out := stdout
		if *outPath != "" {
			f, err := os.Create(*outPath)
			if err != nil {
				return fail(err)
			}
			defer f.Close()
			out = f
		}
		if err := res.WriteLog(out); err != nil {
			return fail(err)
		}
	}
	if *summary {
		if res.SkippedCycles > 0 {
			fmt.Fprintf(stderr, "fast-forwarded %d hyperperiod cycles\n", res.SkippedCycles)
		}
		fmt.Fprint(stderr, res.Summary())
	}
	return 0
}

// parseFaults turns the -fault task:job:extraMS entries into scenario
// fault specs, in order. Several entries for one task compose (via
// fault.Chain), exactly as the equivalent scenario JSON does.
func parseFaults(spec string) ([]sim.Fault, error) {
	if spec == "" {
		return nil, nil
	}
	var faults []sim.Fault
	for _, part := range strings.Split(spec, ",") {
		fields := strings.Split(part, ":")
		if len(fields) != 3 {
			return nil, fmt.Errorf("fault spec %q is not task:job:extraMS", part)
		}
		job, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("fault job: %v", err)
		}
		extra, err := strconv.ParseInt(fields[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("fault extra: %v", err)
		}
		faults = append(faults, sim.Fault{
			Task:  fields[0],
			Kind:  sim.FaultOverrunAt,
			Job:   job,
			Extra: sim.Duration(vtime.Millis(extra)),
		})
	}
	return faults, nil
}

// parseArrivals turns the -arrive entries into scenario arrival
// sources, in order. Each entry names the task it drives and the
// source kind; the remaining fields are the kind's parameters, with
// durations in milliseconds exactly like the scenario JSON's:
//
//	task:poisson:meanMS[:seed]
//	task:mmpp:meanMS:burstMeanMS:dwellMS:burstDwellMS[:seed]
//	task:trace:file.jsonl
func parseArrivals(spec string) ([]sim.Arrival, error) {
	if spec == "" {
		return nil, nil
	}
	ms := func(field, s string) (sim.Duration, error) {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil || v <= 0 {
			return 0, fmt.Errorf("arrive %s: %q is not a positive millisecond count", field, s)
		}
		return sim.Duration(vtime.Millis(v)), nil
	}
	var arrivals []sim.Arrival
	for _, part := range strings.Split(spec, ",") {
		fields := strings.Split(part, ":")
		if len(fields) < 3 || fields[0] == "" {
			return nil, fmt.Errorf("arrive spec %q is not task:kind:params", part)
		}
		a := sim.Arrival{Task: fields[0], Kind: fields[1]}
		params := fields[2:]
		var err error
		switch a.Kind {
		case sim.ArrivalPoisson:
			if len(params) != 1 && len(params) != 2 {
				return nil, fmt.Errorf("arrive spec %q is not task:poisson:meanMS[:seed]", part)
			}
			if a.Mean, err = ms("mean", params[0]); err != nil {
				return nil, err
			}
			if len(params) == 2 {
				if a.Seed, err = strconv.ParseUint(params[1], 10, 64); err != nil {
					return nil, fmt.Errorf("arrive seed: %v", err)
				}
			}
		case sim.ArrivalMMPP:
			if len(params) != 4 && len(params) != 5 {
				return nil, fmt.Errorf("arrive spec %q is not task:mmpp:meanMS:burstMeanMS:dwellMS:burstDwellMS[:seed]", part)
			}
			if a.Mean, err = ms("mean", params[0]); err != nil {
				return nil, err
			}
			if a.BurstMean, err = ms("burst mean", params[1]); err != nil {
				return nil, err
			}
			if a.Dwell, err = ms("dwell", params[2]); err != nil {
				return nil, err
			}
			if a.BurstDwell, err = ms("burst dwell", params[3]); err != nil {
				return nil, err
			}
			if len(params) == 5 {
				if a.Seed, err = strconv.ParseUint(params[4], 10, 64); err != nil {
					return nil, fmt.Errorf("arrive seed: %v", err)
				}
			}
		case sim.ArrivalTrace:
			// Re-join so Windows-style or otherwise colonful paths
			// survive the field split.
			a.Path = strings.Join(params, ":")
		default:
			return nil, fmt.Errorf("arrive kind %q is not poisson, mmpp or trace", a.Kind)
		}
		arrivals = append(arrivals, a)
	}
	return arrivals, nil
}
