// Command rtrun is the paper's first measurement tool: it parses a
// file which describes the tasks in the system, builds and runs the
// tasks automatically, and writes the collected key dates to a log
// file that cmd/rtchart can turn into a time-series chart.
//
// Usage:
//
//	rtrun -tasks system.tasks [-treatment stop] [-horizon 3000]
//	      [-fault tau1:5:40] [-resolution 10] [-o run.log]
//
// The -fault flag injects a cost overrun (task:job:extraMS) like the
// paper's §6 voluntary overrun on the priority task.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/fault"
	"repro/internal/taskset"
	"repro/internal/vtime"
)

func main() {
	var (
		tasksPath  = flag.String("tasks", "", "task description file (required)")
		treatment  = flag.String("treatment", "none", "fault treatment: none|detect|stop|equitable|system")
		horizonMS  = flag.Int64("horizon", 3000, "simulated horizon in milliseconds")
		faultSpec  = flag.String("fault", "", "inject a cost overrun: task:job:extraMS (repeatable, comma separated)")
		resolution = flag.Int64("resolution", 10, "detector timer resolution in ms (0 = exact)")
		outPath    = flag.String("o", "", "log output file (default stdout)")
		summary    = flag.Bool("summary", true, "print the per-task summary to stderr")
	)
	flag.Parse()
	if *tasksPath == "" {
		fmt.Fprintln(os.Stderr, "rtrun: -tasks is required")
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*tasksPath)
	if err != nil {
		fatal(err)
	}
	set, err := taskset.Parse(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	tr, err := parseTreatment(*treatment)
	if err != nil {
		fatal(err)
	}
	plan, err := parseFaults(*faultSpec)
	if err != nil {
		fatal(err)
	}
	sys, err := core.NewSystem(core.Config{
		Tasks:           set,
		Treatment:       tr,
		Faults:          plan,
		Horizon:         vtime.Millis(*horizonMS),
		TimerResolution: vtime.Millis(*resolution),
	})
	if err != nil {
		fatal(err)
	}
	res, err := sys.Run()
	if err != nil {
		fatal(err)
	}
	out := os.Stdout
	if *outPath != "" {
		out, err = os.Create(*outPath)
		if err != nil {
			fatal(err)
		}
		defer out.Close()
	}
	if err := res.Log.Encode(out); err != nil {
		fatal(err)
	}
	if *summary {
		fmt.Fprint(os.Stderr, res.Report.Render())
	}
}

func parseTreatment(s string) (detect.Treatment, error) {
	switch s {
	case "none":
		return detect.NoDetection, nil
	case "detect":
		return detect.DetectOnly, nil
	case "stop":
		return detect.Stop, nil
	case "equitable":
		return detect.Equitable, nil
	case "system":
		return detect.SystemAllowance, nil
	}
	return 0, fmt.Errorf("rtrun: unknown treatment %q", s)
}

func parseFaults(spec string) (fault.Plan, error) {
	if spec == "" {
		return nil, nil
	}
	plan := fault.Plan{}
	for _, part := range strings.Split(spec, ",") {
		fields := strings.Split(part, ":")
		if len(fields) != 3 {
			return nil, fmt.Errorf("rtrun: fault spec %q is not task:job:extraMS", part)
		}
		job, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("rtrun: fault job: %v", err)
		}
		extra, err := strconv.ParseInt(fields[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("rtrun: fault extra: %v", err)
		}
		plan[fields[0]] = fault.OverrunAt{Job: job, Extra: vtime.Millis(extra)}
	}
	return plan, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rtrun:", err)
	os.Exit(1)
}
