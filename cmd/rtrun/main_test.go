package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/trace"
	"repro/internal/vtime"
	"repro/sim"
)

// TestScenarioRunEndToEnd drives rtrun -scenario on a committed spec:
// the log on stdout must decode, and the summary on stderr must
// mention every task.
func TestScenarioRunEndToEnd(t *testing.T) {
	var stdout, stderr bytes.Buffer
	scen := filepath.Join("..", "..", "testdata", "scenarios", "figure5.json")
	if code := run([]string{"-scenario", scen}, &stdout, &stderr); code != 0 {
		t.Fatalf("rtrun -scenario exited %d: %s", code, stderr.String())
	}
	log, err := trace.Decode(&stdout)
	if err != nil {
		t.Fatalf("stdout is not a decodable trace log: %v", err)
	}
	if log.Len() == 0 {
		t.Fatal("empty trace log")
	}
	for _, task := range []string{"tau1", "tau2", "tau3"} {
		if len(log.TaskEvents(task)) == 0 {
			t.Errorf("no events for %s", task)
		}
		if !bytes.Contains(stderr.Bytes(), []byte(task)) {
			t.Errorf("summary missing %s:\n%s", task, stderr.String())
		}
	}
}

// TestScenarioMatchesLegacyFlags: the same run expressed as -tasks
// plus flags and as a scenario file emits the identical log.
func TestScenarioMatchesLegacyFlags(t *testing.T) {
	var legacyOut, legacyErr, scenOut, scenErr bytes.Buffer
	tasks := filepath.Join("..", "..", "testdata", "figures.tasks")
	if code := run([]string{
		"-tasks", tasks, "-treatment", "stop", "-horizon", "1500",
		"-fault", "tau1:5:40", "-resolution", "10",
	}, &legacyOut, &legacyErr); code != 0 {
		t.Fatalf("legacy run exited %d: %s", code, legacyErr.String())
	}
	scen := filepath.Join("..", "..", "testdata", "scenarios", "figure5.json")
	if code := run([]string{"-scenario", scen}, &scenOut, &scenErr); code != 0 {
		t.Fatalf("scenario run exited %d: %s", code, scenErr.String())
	}
	if legacyOut.String() != scenOut.String() {
		t.Error("scenario log differs from the equivalent -tasks run")
	}
}

func TestExclusiveFlags(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(nil, &stdout, &stderr); code != 2 {
		t.Errorf("no input exited %d, want 2", code)
	}
	if code := run([]string{"-tasks", "a", "-scenario", "b"}, &stdout, &stderr); code != 2 {
		t.Errorf("both inputs exited %d, want 2", code)
	}
	// Legacy run-shape flags would be silently ignored next to
	// -scenario; they must be rejected instead.
	scen := filepath.Join("..", "..", "testdata", "scenarios", "figure5.json")
	for _, extra := range [][]string{
		{"-treatment", "none"},
		{"-horizon", "9000"},
		{"-fault", "tau1:5:40"},
		{"-resolution", "0"},
	} {
		stderr.Reset()
		args := append([]string{"-scenario", scen}, extra...)
		if code := run(args, &stdout, &stderr); code != 2 {
			t.Errorf("%v exited %d, want 2", args, code)
		}
		if !strings.Contains(stderr.String(), extra[0][1:]) {
			t.Errorf("error must name the conflicting flag %s: %s", extra[0], stderr.String())
		}
	}
}

func TestParseFaults(t *testing.T) {
	faults, err := parseFaults("tau1:5:40,tau2:0:10")
	if err != nil {
		t.Fatal(err)
	}
	if len(faults) != 2 {
		t.Fatalf("faults = %+v, want 2 entries", faults)
	}
	f := faults[0]
	if f.Task != "tau1" || f.Kind != sim.FaultOverrunAt || f.Job != 5 || f.Extra.D() != vtime.Millis(40) {
		t.Errorf("tau1 fault = %+v", f)
	}
	if faults[1].Task != "tau2" {
		t.Errorf("tau2 fault = %+v", faults[1])
	}
	empty, err := parseFaults("")
	if err != nil || empty != nil {
		t.Errorf("empty spec: %v, %v", empty, err)
	}
	for _, bad := range []string{"tau1:5", "tau1:x:40", "tau1:5:x", "justname"} {
		if _, err := parseFaults(bad); err == nil {
			t.Errorf("spec %q must error", bad)
		}
	}
}

func TestParseArrivals(t *testing.T) {
	arrivals, err := parseArrivals("tau1:poisson:30:7,tau2:mmpp:60:8:400:150,tau3:trace:run.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	if len(arrivals) != 3 {
		t.Fatalf("arrivals = %+v, want 3 entries", arrivals)
	}
	p := arrivals[0]
	if p.Task != "tau1" || p.Kind != sim.ArrivalPoisson || p.Mean.D() != vtime.Millis(30) || p.Seed != 7 {
		t.Errorf("poisson arrival = %+v", p)
	}
	m := arrivals[1]
	if m.Kind != sim.ArrivalMMPP || m.Mean.D() != vtime.Millis(60) || m.BurstMean.D() != vtime.Millis(8) ||
		m.Dwell.D() != vtime.Millis(400) || m.BurstDwell.D() != vtime.Millis(150) || m.Seed != 0 {
		t.Errorf("mmpp arrival = %+v", m)
	}
	tr := arrivals[2]
	if tr.Kind != sim.ArrivalTrace || tr.Path != "run.jsonl" {
		t.Errorf("trace arrival = %+v", tr)
	}
	empty, err := parseArrivals("")
	if err != nil || empty != nil {
		t.Errorf("empty spec: %v, %v", empty, err)
	}
	for _, bad := range []string{
		"tau1:poisson",        // missing mean
		"tau1:poisson:0",      // non-positive mean
		"tau1:poisson:x",      // non-numeric mean
		"tau1:poisson:30:7:9", // trailing field
		"tau1:mmpp:60:8:400",  // missing burst dwell
		"tau1:uniform:30",     // unknown kind
		":poisson:30",         // empty task
	} {
		if _, err := parseArrivals(bad); err == nil {
			t.Errorf("spec %q must error", bad)
		}
	}
	// A colonful trace path must survive the field split intact.
	colonful, err := parseArrivals("tau1:trace:C:/runs/run.jsonl")
	if err != nil || colonful[0].Path != "C:/runs/run.jsonl" {
		t.Errorf("colonful path: %+v, %v", colonful, err)
	}
}

// TestArriveFlagEndToEnd drives rtrun -arrive under the oracle: the
// poisson-driven task must release per its source (verified by
// -check) and still appear in the summary, and -arrive must conflict
// with -scenario like the other run-shape flags.
func TestArriveFlagEndToEnd(t *testing.T) {
	tasks := filepath.Join("..", "..", "testdata", "figures.tasks")
	var stdout, stderr bytes.Buffer
	if code := run([]string{
		"-tasks", tasks, "-arrive", "tau1:poisson:50:3", "-check",
	}, &stdout, &stderr); code != 0 {
		t.Fatalf("rtrun -arrive exited %d: %s", code, stderr.String())
	}
	if !bytes.Contains(stderr.Bytes(), []byte("tau1")) {
		t.Errorf("summary missing tau1:\n%s", stderr.String())
	}
	// Trace replay through the file path front door.
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "run.jsonl")
	if err := os.WriteFile(tracePath, []byte(
		"{\"release\":\"100ms\",\"cost\":\"5ms\"}\n{\"release\":\"900ms\",\"cost\":\"5ms\",\"deadline\":\"50ms\"}\n",
	), 0o644); err != nil {
		t.Fatal(err)
	}
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{
		"-tasks", tasks, "-arrive", "tau2:trace:" + tracePath, "-check",
	}, &stdout, &stderr); code != 0 {
		t.Fatalf("rtrun -arrive trace exited %d: %s", code, stderr.String())
	}
	log, err := trace.Decode(&stdout)
	if err != nil {
		t.Fatalf("stdout is not a decodable trace log: %v", err)
	}
	if got := len(log.TaskEvents("tau2")); got == 0 {
		t.Error("no events for the trace-driven task")
	}
	// -arrive redefines the run shape, so it conflicts with -scenario.
	stderr.Reset()
	scen := filepath.Join("..", "..", "testdata", "scenarios", "figure5.json")
	if code := run([]string{"-scenario", scen, "-arrive", "tau1:poisson:30"}, &stdout, &stderr); code != 2 {
		t.Errorf("-scenario with -arrive exited %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "arrive") {
		t.Errorf("error must name -arrive: %s", stderr.String())
	}
}

// TestRepeatedFaultsCompose: two -fault entries on one task must both
// take effect (chained), matching the scenario-JSON semantics.
func TestRepeatedFaultsCompose(t *testing.T) {
	faults, err := parseFaults("tau1:2:10,tau1:5:40")
	if err != nil {
		t.Fatal(err)
	}
	sys, err := sim.New(
		sim.WithTaskFile(filepath.Join("..", "..", "testdata", "figures.tasks")),
		sim.WithHorizon(vtime.Millis(1500)),
		sim.WithFaults(faults...),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	// tau1 jobs release every 200 ms with cost 29, deadline 70: job 2
	// (overrun 10 → response 39ms) stays feasible but slower, job 5
	// (overrun 40 → 69ms) nearly exhausts the deadline.
	for q, want := range map[int64]vtime.Duration{2: vtime.Millis(39), 5: vtime.Millis(69)} {
		j, ok := res.Report.Job("tau1", q)
		if !ok || j.Response() != want {
			t.Errorf("tau1 job %d response = %v (ok=%v), want %v", q, j.Response(), ok, want)
		}
	}
}

func TestHelpExitsZero(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-h"}, &stdout, &stderr); code != 0 {
		t.Errorf("rtrun -h exited %d, want 0", code)
	}
}

// TestStreamTraceOutMatchesRetainedLog: the -stream -trace-out spill
// is byte-identical to the log of the same retained run, and the
// summary still prints from the online accumulator.
func TestStreamTraceOutMatchesRetainedLog(t *testing.T) {
	tasks := filepath.Join("..", "..", "testdata", "figures.tasks")
	base := []string{"-tasks", tasks, "-treatment", "stop", "-horizon", "1500",
		"-fault", "tau1:5:40", "-resolution", "10"}

	var retainOut, retainErr bytes.Buffer
	if code := run(base, &retainOut, &retainErr); code != 0 {
		t.Fatalf("retained run exited %d: %s", code, retainErr.String())
	}

	var streamOut, streamErr bytes.Buffer
	args := append(append([]string{}, base...), "-stream", "-trace-out", "-")
	if code := run(args, &streamOut, &streamErr); code != 0 {
		t.Fatalf("streaming run exited %d: %s", code, streamErr.String())
	}
	if streamOut.String() != retainOut.String() {
		t.Error("streamed trace differs from the retained log")
	}
	if streamErr.String() != retainErr.String() {
		t.Errorf("streaming summary differs:\n--- stream ---\n%s--- retain ---\n%s",
			streamErr.String(), retainErr.String())
	}
}

// TestStreamWithoutTraceOutDiscards: -stream alone writes no log to
// stdout but still summarizes.
func TestStreamWithoutTraceOutDiscards(t *testing.T) {
	tasks := filepath.Join("..", "..", "testdata", "figures.tasks")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-tasks", tasks, "-horizon", "1500", "-stream"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exited %d: %s", code, stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("-stream without -trace-out must write nothing to stdout, got %d bytes", stdout.Len())
	}
	if !strings.Contains(stderr.String(), "tau1") {
		t.Errorf("summary missing: %s", stderr.String())
	}
}

// TestStreamFlagConflicts: -stream contradicts -scenario (the collect
// block owns it), -o is meaningless under streaming, and -trace-out
// needs a streaming run.
func TestStreamFlagConflicts(t *testing.T) {
	tasks := filepath.Join("..", "..", "testdata", "figures.tasks")
	scen := filepath.Join("..", "..", "testdata", "scenarios", "figure5.json")
	for _, tc := range []struct {
		args []string
		want string
	}{
		{[]string{"-scenario", scen, "-stream"}, "stream"},
		{[]string{"-tasks", tasks, "-stream", "-o", "x.log"}, "-o"},
		{[]string{"-tasks", tasks, "-trace-out", "x.log"}, "-trace-out"},
		{[]string{"-scenario", scen, "-trace-out", "x.log"}, "-trace-out"},
	} {
		var stdout, stderr bytes.Buffer
		if code := run(tc.args, &stdout, &stderr); code != 2 {
			t.Errorf("%v exited %d, want 2", tc.args, code)
		}
		if !strings.Contains(stderr.String(), tc.want) {
			t.Errorf("%v: error must mention %q: %s", tc.args, tc.want, stderr.String())
		}
	}
}

// TestScenarioStreamingCollectBlock: a scenario declaring the collect
// block streams end to end through the CLI, spilling via -trace-out.
func TestScenarioStreamingCollectBlock(t *testing.T) {
	scen := filepath.Join("..", "..", "testdata", "scenarios", "stream-soak.json")
	out := filepath.Join(t.TempDir(), "soak.log")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-scenario", scen, "-trace-out", out}, &stdout, &stderr); code != 0 {
		t.Fatalf("exited %d: %s", code, stderr.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	log, err := trace.Decode(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("spilled trace does not decode: %v", err)
	}
	if log.Len() == 0 {
		t.Fatal("empty spilled trace")
	}
}

// TestCheckFlag: -check arms the invariant oracle on both front
// doors; clean runs still exit 0 with identical logs.
func TestCheckFlag(t *testing.T) {
	scen := filepath.Join("..", "..", "testdata", "scenarios", "figure5.json")
	var plain, checked, stderr bytes.Buffer
	if code := run([]string{"-scenario", scen}, &plain, &stderr); code != 0 {
		t.Fatalf("plain run exited %d: %s", code, stderr.String())
	}
	stderr.Reset()
	if code := run([]string{"-scenario", scen, "-check"}, &checked, &stderr); code != 0 {
		t.Fatalf("checked run exited %d: %s", code, stderr.String())
	}
	if plain.String() != checked.String() {
		t.Error("-check changed the emitted log")
	}
	stderr.Reset()
	tasks := filepath.Join("..", "..", "testdata", "figures.tasks")
	var out bytes.Buffer
	if code := run([]string{
		"-tasks", tasks, "-treatment", "stop", "-horizon", "1500",
		"-fault", "tau1:5:40", "-resolution", "10", "-check",
	}, &out, &stderr); code != 0 {
		t.Fatalf("legacy -check run exited %d: %s", code, stderr.String())
	}
	stderr.Reset()
	out.Reset()
	// -check composes with streaming collection too (the oracle is a
	// sink, not a log consumer).
	if code := run([]string{
		"-tasks", tasks, "-horizon", "1500", "-stream", "-check",
	}, &out, &stderr); code != 0 {
		t.Fatalf("streaming -check run exited %d: %s", code, stderr.String())
	}
}

// TestFastForwardFlag: -fast-forward produces the identical summary to
// the full streamed run (counts and response moments are exact across
// the analytic jump) and reports the cycles it skipped.
func TestFastForwardFlag(t *testing.T) {
	tasks := filepath.Join("..", "..", "testdata", "figures.tasks")
	base := []string{"-tasks", tasks, "-horizon", "60000", "-stream"}

	var fullOut, fullErr bytes.Buffer
	if code := run(base, &fullOut, &fullErr); code != 0 {
		t.Fatalf("full run exited %d: %s", code, fullErr.String())
	}
	var ffOut, ffErr bytes.Buffer
	if code := run(append(append([]string{}, base...), "-fast-forward"), &ffOut, &ffErr); code != 0 {
		t.Fatalf("fast-forward run exited %d: %s", code, ffErr.String())
	}
	if !strings.Contains(ffErr.String(), "fast-forwarded") {
		t.Errorf("summary must report the skipped cycles: %s", ffErr.String())
	}
	// Strip the fast-forward banner; the per-task summary must match
	// the full run byte for byte.
	summary := ffErr.String()
	if i := strings.Index(summary, "\n"); i >= 0 && strings.HasPrefix(summary, "fast-forwarded") {
		summary = summary[i+1:]
	}
	if summary != fullErr.String() {
		t.Errorf("fast-forward summary differs:\n--- ff ---\n%s--- full ---\n%s", summary, fullErr.String())
	}
}

// TestFastForwardFlagConflicts: -fast-forward needs streaming
// collection and refuses every full-event-stream consumer.
func TestFastForwardFlagConflicts(t *testing.T) {
	tasks := filepath.Join("..", "..", "testdata", "figures.tasks")
	for _, tc := range []struct {
		args []string
		code int
		want string
	}{
		{[]string{"-tasks", tasks, "-stream", "-fast-forward", "-check"}, 2, "-check"},
		{[]string{"-tasks", tasks, "-stream", "-fast-forward", "-trace-out", "x.log"}, 2, "-trace-out"},
		{[]string{"-tasks", tasks, "-stream", "-fast-forward", "-checkpoint", "x.ckpt", "-checkpoint-at", "100"}, 2, "-checkpoint"},
		{[]string{"-resume", "x.ckpt", "-fast-forward"}, 2, "fast-forward"},
		{[]string{"-tasks", tasks, "-fast-forward"}, 1, "fast_forward"},
		{[]string{"-tasks", tasks, "-stream", "-treatment", "stop", "-fast-forward"}, 1, "fast_forward"},
		{[]string{"-tasks", tasks, "-stream", "-fault", "tau1:5:40", "-fast-forward"}, 1, "fast_forward"},
	} {
		var stdout, stderr bytes.Buffer
		if code := run(tc.args, &stdout, &stderr); code != tc.code {
			t.Errorf("%v exited %d, want %d: %s", tc.args, code, tc.code, stderr.String())
		}
		if !strings.Contains(stderr.String(), tc.want) {
			t.Errorf("%v: error must mention %q: %s", tc.args, tc.want, stderr.String())
		}
	}
}
