package main

import (
	"testing"

	"repro/internal/detect"
	"repro/internal/fault"
	"repro/internal/vtime"
)

func TestParseTreatment(t *testing.T) {
	want := map[string]detect.Treatment{
		"none":      detect.NoDetection,
		"detect":    detect.DetectOnly,
		"stop":      detect.Stop,
		"equitable": detect.Equitable,
		"system":    detect.SystemAllowance,
	}
	for in, tr := range want {
		got, err := parseTreatment(in)
		if err != nil || got != tr {
			t.Errorf("parseTreatment(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := parseTreatment("explode"); err == nil {
		t.Error("unknown treatment must error")
	}
}

func TestParseFaults(t *testing.T) {
	plan, err := parseFaults("tau1:5:40,tau2:0:10")
	if err != nil {
		t.Fatal(err)
	}
	m, ok := plan["tau1"].(fault.OverrunAt)
	if !ok || m.Job != 5 || m.Extra != vtime.Millis(40) {
		t.Errorf("tau1 model = %+v", plan["tau1"])
	}
	if _, ok := plan["tau2"]; !ok {
		t.Error("tau2 model missing")
	}
	empty, err := parseFaults("")
	if err != nil || empty != nil {
		t.Errorf("empty spec: %v, %v", empty, err)
	}
	for _, bad := range []string{"tau1:5", "tau1:x:40", "tau1:5:x", "justname"} {
		if _, err := parseFaults(bad); err == nil {
			t.Errorf("spec %q must error", bad)
		}
	}
}
