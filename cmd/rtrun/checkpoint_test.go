package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// checkpointScenario is a streaming, treatment-none run the checkpoint
// path accepts: the Table 2 task shape with a recurring overrun.
const checkpointScenario = `{
  "name": "ckpt-cli",
  "tasks": [
    {"name": "tau1", "priority": 20, "period": "200ms", "deadline": "70ms", "cost": "29ms"},
    {"name": "tau2", "priority": 18, "period": "250ms", "deadline": "120ms", "cost": "29ms"}
  ],
  "faults": [
    {"task": "tau1", "kind": "overrun-every", "first": 1, "every": 3, "extra": "20ms"}
  ],
  "horizon": "3000ms",
  "collect": {"mode": "stream"}
}
`

// TestCheckpointResumeCLI drives the full split through the CLI:
// -checkpoint writes a resumable file, -resume completes the run, the
// two -trace-out spills concatenate to the unsplit run's trace
// byte-for-byte, and the resumed summary equals the unsplit one.
func TestCheckpointResumeCLI(t *testing.T) {
	dir := t.TempDir()
	scen := filepath.Join(dir, "ckpt-cli.json")
	if err := os.WriteFile(scen, []byte(checkpointScenario), 0o644); err != nil {
		t.Fatal(err)
	}

	var stdout, wholeErr bytes.Buffer
	whole := filepath.Join(dir, "whole.log")
	if code := run([]string{"-scenario", scen, "-trace-out", whole}, &stdout, &wholeErr); code != 0 {
		t.Fatalf("unsplit run exited %d: %s", code, wholeErr.String())
	}

	ckpt := filepath.Join(dir, "half.ckpt")
	segA := filepath.Join(dir, "segA.log")
	var stderr bytes.Buffer
	if code := run([]string{"-scenario", scen, "-trace-out", segA,
		"-checkpoint", ckpt, "-checkpoint-at", "1500"}, &stdout, &stderr); code != 0 {
		t.Fatalf("checkpoint run exited %d: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "-resume "+ckpt) {
		t.Errorf("checkpoint run did not print the resume hint: %s", stderr.String())
	}

	segB := filepath.Join(dir, "segB.log")
	var resumeErr bytes.Buffer
	if code := run([]string{"-resume", ckpt, "-trace-out", segB}, &stdout, &resumeErr); code != 0 {
		t.Fatalf("resume exited %d: %s", code, resumeErr.String())
	}

	read := func(path string) string {
		t.Helper()
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	if got, want := read(segA)+read(segB), read(whole); got != want {
		t.Errorf("stitched trace (%d bytes) differs from unsplit (%d bytes)", len(got), len(want))
	}
	if resumeErr.String() != wholeErr.String() {
		t.Errorf("resumed summary differs from unsplit:\n%s\nvs\n%s", resumeErr.String(), wholeErr.String())
	}
}

// TestCheckpointFlagConflicts pins the flag grammar.
func TestCheckpointFlagConflicts(t *testing.T) {
	dir := t.TempDir()
	scen := filepath.Join(dir, "sc.json")
	if err := os.WriteFile(scen, []byte(checkpointScenario), 0o644); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		args []string
	}{
		{"checkpoint without at", []string{"-scenario", scen, "-checkpoint", "x.ckpt"}},
		{"at without checkpoint", []string{"-scenario", scen, "-checkpoint-at", "10"}},
		{"resume with scenario", []string{"-resume", "x.ckpt", "-scenario", scen}},
		{"resume with tasks", []string{"-resume", "x.ckpt", "-tasks", "x.tasks"}},
		{"resume with check", []string{"-resume", "x.ckpt", "-check"}},
		{"resume with checkpoint", []string{"-resume", "x.ckpt", "-checkpoint", "y.ckpt", "-checkpoint-at", "1"}},
		{"resume with o", []string{"-resume", "x.ckpt", "-o", "out.log"}},
	}
	for _, tc := range cases {
		var stdout, stderr bytes.Buffer
		if code := run(tc.args, &stdout, &stderr); code != 2 {
			t.Errorf("%s: exited %d, want 2 (%s)", tc.name, code, stderr.String())
		}
	}

	// A retained scenario cannot checkpoint; the error explains why.
	var stdout, stderr bytes.Buffer
	retained := filepath.Join("..", "..", "testdata", "scenarios", "edf-overload.json")
	if code := run([]string{"-scenario", retained, "-checkpoint", filepath.Join(dir, "x.ckpt"),
		"-checkpoint-at", "100"}, &stdout, &stderr); code != 1 {
		t.Errorf("retained checkpoint exited %d, want 1: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "streaming") && !strings.Contains(stderr.String(), "treatment") {
		t.Errorf("error does not explain the checkpoint requirements: %s", stderr.String())
	}
}
