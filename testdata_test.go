package repro

import (
	"os"
	"testing"

	"repro/internal/experiments"
	"repro/internal/taskset"
)

// TestFiguresTaskFileMatchesFigureSet pins testdata/figures.tasks to
// experiments.FigureSet(): the on-disk fixture the integration test
// replays must describe exactly the system the figure experiments
// construct in code.
func TestFiguresTaskFileMatchesFigureSet(t *testing.T) {
	f, err := os.Open("testdata/figures.tasks")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	parsed, err := taskset.Parse(f)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := taskset.Format(parsed), taskset.Format(experiments.FigureSet()); got != want {
		t.Fatalf("testdata/figures.tasks drifted from experiments.FigureSet():\n--- file ---\n%s--- code ---\n%s", got, want)
	}
}

// TestTable2TaskFileMatchesTable2Set pins testdata/table2.tasks the
// same way.
func TestTable2TaskFileMatchesTable2Set(t *testing.T) {
	f, err := os.Open("testdata/table2.tasks")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	parsed, err := taskset.Parse(f)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := taskset.Format(parsed), taskset.Format(experiments.Table2Set()); got != want {
		t.Fatalf("testdata/table2.tasks drifted from experiments.Table2Set():\n--- file ---\n%s--- code ---\n%s", got, want)
	}
}
