package repro

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/experiments"
	"repro/internal/trace"
	"repro/internal/verify"
	"repro/internal/vtime"
	"repro/sim"
	"repro/sim/scenario"
)

// The goldens pin the engine byte for byte; these tests pin them
// *semantically*: every stored trace is decoded and replayed through
// the invariant oracle, so a golden that was captured from a buggy
// engine (or corrupted on disk) fails even though the bytes match.

// replayThroughOracle decodes a stored trace and feeds it to a
// checker built from the scenario that produced it.
func replayThroughOracle(t *testing.T, sc *scenario.Scenario, tracePath string) {
	t.Helper()
	f, err := os.Open(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	log, err := trace.Decode(f)
	if err != nil {
		t.Fatalf("decoding %s: %v", tracePath, err)
	}
	chk, err := verify.ForScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range log.Events() {
		chk.Append(e)
	}
	chk.Finish()
	if err := chk.Err(); err != nil {
		t.Errorf("%s violates the scheduling axioms: %v", tracePath, err)
	}
}

// TestGoldenScenarioTracesSatisfyInvariants replays every verbatim
// scenario golden (digest-pinned ones are covered live by
// TestScenariosRunCleanUnderOracle, which re-generates their events).
func TestGoldenScenarioTracesSatisfyInvariants(t *testing.T) {
	files, err := filepath.Glob("testdata/scenarios/*.json")
	if err != nil {
		t.Fatal(err)
	}
	replayed := 0
	for _, f := range files {
		name := strings.TrimSuffix(filepath.Base(f), ".json")
		golden := filepath.Join(goldenDir, name+".trace")
		if _, err := os.Stat(golden); err != nil {
			continue // digest-pinned: no verbatim bytes to replay
		}
		f := f
		t.Run(name, func(t *testing.T) {
			sc, err := scenario.DecodeFile(f)
			if err != nil {
				t.Fatal(err)
			}
			replayThroughOracle(t, sc, golden)
		})
		replayed++
	}
	if replayed == 0 {
		t.Fatal("no verbatim scenario goldens found")
	}
}

// TestGoldenFigureTracesSatisfyInvariants replays the Figures 3–7
// goldens — the paper's charted artefacts — through the oracle, with
// the checker derived from the published run configuration.
func TestGoldenFigureTracesSatisfyInvariants(t *testing.T) {
	for _, fig := range []experiments.Figure{
		experiments.Figure3, experiments.Figure4, experiments.Figure5,
		experiments.Figure6, experiments.Figure7,
	} {
		fig := fig
		t.Run(fmt.Sprintf("fig%d", int(fig)), func(t *testing.T) {
			sc := figureScenario(fig)
			if err := sc.Validate(); err != nil {
				t.Fatal(err)
			}
			replayThroughOracle(t, &sc, filepath.Join(goldenDir, fmt.Sprintf("fig%d.trace", int(fig))))
		})
	}
}

// figureScenario restates the RunFigure configuration declaratively.
func figureScenario(fig experiments.Figure) scenario.Scenario {
	sc := scenario.Scenario{
		Treatment:       fig.Treatment().String(),
		Horizon:         scenario.Duration(experiments.FigureHorizon),
		TimerResolution: scenario.Duration(10 * vtime.Millisecond),
		Faults: []scenario.Fault{{
			Task:  "tau1",
			Kind:  scenario.FaultOverrunAt,
			Job:   experiments.FaultyJob,
			Extra: scenario.Duration(experiments.FigureFaultExtra),
		}},
	}
	for _, task := range experiments.FigureSet().Tasks {
		sc.Tasks = append(sc.Tasks, scenario.FromTask(task))
	}
	return sc
}

// TestScenariosRunCleanUnderOracle runs every committed scenario live
// with "verify": true — including the streaming and generator-backed
// ones whose goldens are digest-pinned — so each future engine change
// is checked against the axioms on every committed workload, not just
// against the frozen bytes.
func TestScenariosRunCleanUnderOracle(t *testing.T) {
	files, err := filepath.Glob("testdata/scenarios/*.json")
	if err != nil || len(files) == 0 {
		t.Fatalf("scenarios: %v (%d files)", err, len(files))
	}
	for _, f := range files {
		f := f
		t.Run(strings.TrimSuffix(filepath.Base(f), ".json"), func(t *testing.T) {
			s, err := sim.Load(f)
			if err != nil {
				t.Fatal(err)
			}
			s.SetVerify(true)
			if _, err := s.Run(); err != nil {
				t.Errorf("oracle violation: %v", err)
			}
		})
	}
}
