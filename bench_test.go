// The benchmark harness regenerates every table and figure of the
// paper's evaluation (one benchmark per artefact) plus the extension
// sweeps of DESIGN.md §4. Each benchmark validates the reproduced
// shape against the paper's published statement and reports the
// domain quantities via b.ReportMetric, so `go test -bench=.`
// doubles as the reproduction record (EXPERIMENTS.md captures one
// run's output).
package repro

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/aperiodic"
	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/sched"
	"repro/internal/taskset"
	"repro/internal/trace"
	"repro/internal/vtime"
)

func ms(v int64) vtime.Duration { return vtime.Millis(v) }

// BenchmarkTable1 regenerates Table 1 / Figure 1: per-job response
// times of τ2 across the level-2 busy period (5, 6, 4 ms), worst case
// at the second job.
func BenchmarkTable1(b *testing.B) {
	var rows []experiments.Table1Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.Table1()
		if err != nil {
			b.Fatal(err)
		}
	}
	tau2 := rows[1]
	if tau2.WCRT != ms(6) || tau2.Jobs[1].Response != ms(6) || tau2.Jobs[0].Response != ms(5) {
		b.Fatalf("Table 1 shape broken: %+v", tau2)
	}
	b.ReportMetric(float64(tau2.WCRT.Milliseconds()), "wcrt_ms")
	b.ReportMetric(float64(tau2.Jobs[1].Q), "worst_job_index")
}

// BenchmarkTable2 regenerates Table 2: WCRT 29/58/87 ms and the
// equitable allowance A = 11 ms.
func BenchmarkTable2(b *testing.B) {
	var rows []experiments.Table2Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.Table2()
		if err != nil {
			b.Fatal(err)
		}
	}
	want := []int64{29, 58, 87}
	for i, r := range rows {
		if r.WCRT != ms(want[i]) || r.Allowance != ms(11) {
			b.Fatalf("Table 2 shape broken: %+v", r)
		}
	}
	b.ReportMetric(11, "allowance_ms")
	b.ReportMetric(33, "max_overrun_ms")
}

// BenchmarkTable3 regenerates Table 3: WCRTs with equitable overruns
// shift by +11/+22/+33 ms.
func BenchmarkTable3(b *testing.B) {
	var rows []experiments.Table3Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.Table3()
		if err != nil {
			b.Fatal(err)
		}
	}
	shifts := []int64{11, 22, 33}
	for i, r := range rows {
		if r.Shift != ms(shifts[i]) {
			b.Fatalf("Table 3 shape broken: %+v", r)
		}
	}
	b.ReportMetric(float64(rows[2].EquitableWCRT.Milliseconds()), "tau3_shifted_wcrt_ms")
}

// benchFigure runs one §6 figure scenario per iteration and checks
// the published outcome.
func benchFigure(b *testing.B, fig experiments.Figure, check func(o experiments.FigureOutcome) bool) {
	var o experiments.FigureOutcome
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFigure(fig)
		if err != nil {
			b.Fatal(err)
		}
		o = experiments.Outcome(fig, res)
	}
	if !check(o) {
		b.Fatalf("%s: outcome does not match the paper: %+v", fig.Title(), o)
	}
	b.ReportMetric(float64(o.Tau1End.Milliseconds()), "tau1_end_ms")
	b.ReportMetric(float64(o.Tau3End.Milliseconds()), "tau3_end_ms")
	b.ReportMetric(float64(o.Detections), "detections")
}

// BenchmarkFigure3: no detection — τ1/τ2 meet, τ3 misses at 1120 ms.
func BenchmarkFigure3(b *testing.B) {
	benchFigure(b, experiments.Figure3, func(o experiments.FigureOutcome) bool {
		return !o.Tau1Failed && !o.Tau2Failed && o.Tau3Failed && o.Tau3End == vtime.AtMillis(1127)
	})
}

// BenchmarkFigure4: detection without treatment — same schedule, with
// detector delays of 1/2/3 ms from the 10 ms timer (§6.2).
func BenchmarkFigure4(b *testing.B) {
	benchFigure(b, experiments.Figure4, func(o experiments.FigureOutcome) bool {
		return o.Tau3Failed && o.Detections >= 1
	})
}

// BenchmarkFigure5: immediate stop — only τ1 fails; slack remains.
func BenchmarkFigure5(b *testing.B) {
	benchFigure(b, experiments.Figure5, func(o experiments.FigureOutcome) bool {
		return o.Tau1Failed && !o.Tau2Failed && !o.Tau3Failed && o.Tau1End == vtime.AtMillis(1030)
	})
}

// BenchmarkFigure6: equitable allowance — τ1 stopped at WCRT+11,
// runs longer than under Figure 5; τ2/τ3 meet with CPU left unused.
func BenchmarkFigure6(b *testing.B) {
	benchFigure(b, experiments.Figure6, func(o experiments.FigureOutcome) bool {
		return o.Tau1End == vtime.AtMillis(1040) && !o.Tau2Failed && !o.Tau3Failed
	})
}

// BenchmarkFigure7: system allowance — τ1 stopped at WCRT+33 (1062),
// τ2 and τ3 finish just before their deadlines (1091 and 1120).
func BenchmarkFigure7(b *testing.B) {
	benchFigure(b, experiments.Figure7, func(o experiments.FigureOutcome) bool {
		return o.Tau1End == vtime.AtMillis(1062) &&
			o.Tau2End == vtime.AtMillis(1091) &&
			o.Tau3End == vtime.AtMillis(1120) &&
			!o.Tau2Failed && !o.Tau3Failed
	})
}

// BenchmarkSweepFaultMagnitude (X2) generalizes Figures 3–7 into a
// success-ratio curve over the injected overrun.
func BenchmarkSweepFaultMagnitude(b *testing.B) {
	var points []experiments.SweepPoint
	var err error
	for i := 0; i < b.N; i++ {
		points, err = experiments.FaultMagnitudeSweep(ms(60), ms(20))
		if err != nil {
			b.Fatal(err)
		}
	}
	var worstNoDet, worstStop float64 = 1, 1
	for _, p := range points {
		switch p.Treatment {
		case detect.NoDetection:
			if p.SuccessRatio < worstNoDet {
				worstNoDet = p.SuccessRatio
			}
		case detect.Stop:
			if p.SuccessRatio < worstStop {
				worstStop = p.SuccessRatio
			}
		}
	}
	if worstStop < worstNoDet {
		b.Fatalf("stop treatment must dominate no-detection: %v vs %v", worstStop, worstNoDet)
	}
	b.ReportMetric(worstNoDet, "worst_success_nodetect")
	b.ReportMetric(worstStop, "worst_success_stop")
}

// BenchmarkSweepFaultMagnitudeSerial runs the 13-magnitude × 5-
// treatment X2 sweep (65 simulations) strictly serially — the
// baseline the parallel benchmarks are read against.
func BenchmarkSweepFaultMagnitudeSerial(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.FaultMagnitudeSweepCtx(context.Background(), ms(60), ms(5),
			experiments.RunOptions{Parallelism: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepFaultMagnitudeParallel shards the same 65 simulations
// across every core via internal/runner.
func BenchmarkSweepFaultMagnitudeParallel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.FaultMagnitudeSweepCtx(context.Background(), ms(60), ms(5),
			experiments.RunOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParallelSpeedup measures, inside one benchmark, the
// wall-clock ratio of the serial X2 sweep (65 independent
// simulations) to the same sweep on four runner workers, checks the
// two renders are byte-identical, and reports the ratio as
// speedup_x. On a multi-core machine the acceptance bar is > 1.5.
func BenchmarkParallelSpeedup(b *testing.B) {
	ctx := context.Background()
	var speedup float64
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		serial, err := experiments.FaultMagnitudeSweepCtx(ctx, ms(60), ms(5),
			experiments.RunOptions{Parallelism: 1})
		if err != nil {
			b.Fatal(err)
		}
		serialDur := time.Since(t0)

		t0 = time.Now()
		par, err := experiments.FaultMagnitudeSweepCtx(ctx, ms(60), ms(5),
			experiments.RunOptions{Parallelism: 4})
		if err != nil {
			b.Fatal(err)
		}
		parDur := time.Since(t0)

		if experiments.RenderSweep(serial) != experiments.RenderSweep(par) {
			b.Fatal("parallel sweep diverged from serial")
		}
		speedup = float64(serialDur) / float64(parDur)
	}
	b.ReportMetric(speedup, "speedup_x")
}

// BenchmarkSweepDetectorOverhead (X1) quantifies the §6.2 remark that
// more tasks mean more sensors and more overhead.
func BenchmarkSweepDetectorOverhead(b *testing.B) {
	var points []experiments.OverheadPoint
	var err error
	for i := 0; i < b.N; i++ {
		points, err = experiments.DetectorOverheadSweep([]int{4, 8, 16}, 7)
		if err != nil {
			b.Fatal(err)
		}
	}
	last := points[len(points)-1]
	b.ReportMetric(float64(last.Switches), "switches_16tasks_detectors")
	b.ReportMetric(float64(last.TraceBytes), "trace_bytes_16tasks")
}

// BenchmarkSweepTimerResolution (X3) ablates jRate's 10 ms timer
// quantization against exact timers.
func BenchmarkSweepTimerResolution(b *testing.B) {
	var points []experiments.ResolutionPoint
	var err error
	for i := 0; i < b.N; i++ {
		points, err = experiments.TimerResolutionSweep()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range points {
		if p.Collateral != 0 {
			b.Fatalf("collateral failures at resolution %v under %v", p.Resolution, p.Treatment)
		}
	}
	b.ReportMetric(float64(len(points)), "points")
}

// BenchmarkSweepBaselines (X4) compares the paper's approach with the
// overload schedulers it cites.
func BenchmarkSweepBaselines(b *testing.B) {
	var points []experiments.BaselinePoint
	var err error
	for i := 0; i < b.N; i++ {
		points, err = experiments.BaselineComparison(ms(50), 6*vtime.Second)
		if err != nil {
			b.Fatal(err)
		}
	}
	byName := map[string]experiments.BaselinePoint{}
	for _, p := range points {
		byName[p.Policy] = p
	}
	paper := byName["fp+detectors(stop)"]
	fpRaw := byName["fixed-priority"]
	if paper.Tau3Success < fpRaw.Tau3Success {
		b.Fatalf("detectors must protect tau3 at least as well as raw FP: %v vs %v",
			paper.Tau3Success, fpRaw.Tau3Success)
	}
	if paper.Tau3Success < 0.999 {
		b.Fatalf("the paper's approach must fully protect tau3, got %v", paper.Tau3Success)
	}
	b.ReportMetric(paper.SuccessRatio, "success_paper")
	b.ReportMetric(fpRaw.SuccessRatio, "success_fp_raw")
	b.ReportMetric(byName["edf"].SuccessRatio, "success_edf")
	b.ReportMetric(byName["best-effort"].SuccessRatio, "success_besteffort")
	b.ReportMetric(byName["red"].SuccessRatio, "success_red")
	b.ReportMetric(byName["d-over"].SuccessRatio, "success_dover")
}

// BenchmarkSweepAcceptance (X5) compares the admission tests'
// acceptance ratios on random task sets — why the paper implements
// the exact Figure 2 analysis.
func BenchmarkSweepAcceptance(b *testing.B) {
	var points []experiments.AcceptancePoint
	var err error
	for i := 0; i < b.N; i++ {
		points, err = experiments.AcceptanceSweep([]float64{0.6, 0.8, 0.95}, 50, 5, 11)
		if err != nil {
			b.Fatal(err)
		}
	}
	hi := points[len(points)-1]
	if hi.LLAccept > hi.ExactAccpt {
		b.Fatal("LL bound cannot accept more than the exact test")
	}
	b.ReportMetric(hi.LLAccept, "ll_accept_u095")
	b.ReportMetric(hi.HypAccept, "hyp_accept_u095")
	b.ReportMetric(hi.ExactAccpt, "exact_accept_u095")
}

// BenchmarkDynamicAdmission (X6) exercises the paper's §7 dynamic
// mode: admissions, a rejection, and a removal per iteration.
func BenchmarkDynamicAdmission(b *testing.B) {
	for i := 0; i < b.N; i++ {
		base := taskset.MustNew(
			taskset.Task{Name: "a", Priority: 10, Period: ms(100), Deadline: ms(100), Cost: ms(20)},
		)
		sup, err := detect.NewSupervisor(base, detect.Config{Treatment: detect.Stop, TimerResolution: ms(10)})
		if err != nil {
			b.Fatal(err)
		}
		e, err := engine.New(engine.Config{Tasks: base, End: vtime.AtMillis(2000), Hooks: sup.Hooks()})
		if err != nil {
			b.Fatal(err)
		}
		sup.Attach(e)
		e.Schedule(vtime.AtMillis(100), func(now vtime.Time) {
			if err := sup.AdmitTask(e, taskset.Task{Name: "b", Priority: 5, Period: ms(200), Deadline: ms(200), Cost: ms(30)}); err != nil {
				b.Errorf("admit b: %v", err)
			}
		})
		e.Schedule(vtime.AtMillis(200), func(now vtime.Time) {
			if err := sup.AdmitTask(e, taskset.Task{Name: "c", Priority: 4, Period: ms(100), Deadline: ms(100), Cost: ms(90)}); err == nil {
				b.Error("c must be rejected")
			}
		})
		e.Schedule(vtime.AtMillis(1000), func(now vtime.Time) {
			if err := sup.RemoveTask(e, "b"); err != nil {
				b.Errorf("remove b: %v", err)
			}
		})
		e.Run()
	}
}

// BenchmarkWCRTAnalysis measures the Figure 2 algorithm itself on
// random 20-task sets (the cost the paper calls "expensive algorithms
// in time" for static systems, §7).
func BenchmarkWCRTAnalysis(b *testing.B) {
	gen := taskset.NewGenerator(3)
	sets := make([]*taskset.Set, 32)
	for i := range sets {
		s, err := gen.Generate(20, 0.85)
		if err != nil {
			b.Fatal(err)
		}
		sets[i] = s
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := sets[i%len(sets)]
		if _, err := analysis.Feasible(s); err != nil {
			b.Fatal(err)
		}
	}
}

// countingSink tallies trace events without retaining them — the
// observer for pure engine-loop benchmarks.
type countingSink struct{ n int64 }

func (c *countingSink) Append(trace.Event) { c.n++ }

// engineThroughput drives 30 simulated seconds of the Table 2 system
// with detectors and a recurring fault in the given collection mode
// and reports events_per_sec over the event loop alone (setup — the
// admission-control analysis building the supervisor — is a different
// subsystem and is reported only through ns/op).
func engineThroughput(b *testing.B, mode engine.Collect) {
	var events int64
	var loop time.Duration
	for i := 0; i < b.N; i++ {
		sup, err := detect.NewSupervisor(experiments.FigureSet(), detect.Config{
			Treatment: detect.Stop, TimerResolution: ms(10),
		})
		if err != nil {
			b.Fatal(err)
		}
		sink := &countingSink{}
		e, err := engine.New(engine.Config{
			Tasks:   experiments.FigureSet(),
			Faults:  fault.Plan{"tau1": fault.OverrunEvery{First: 1, K: 3, Extra: ms(45)}},
			End:     vtime.Time(30 * vtime.Second),
			Collect: mode,
			Sink:    sink,
			Hooks:   sup.Hooks(),
		})
		if err != nil {
			b.Fatal(err)
		}
		sup.Attach(e)
		t0 := time.Now()
		e.Run()
		loop += time.Since(t0)
		events = sink.n
	}
	b.ReportAllocs()
	b.ReportMetric(float64(events), "trace_events")
	b.ReportMetric(float64(events)*float64(b.N)/loop.Seconds(), "events_per_sec")
}

// engineThroughputCores drives 30 simulated seconds of a seeded
// 10·cores-task set (utilization 0.55 per core, 10–100ms periods) on
// the bare engine with M cores under global dispatch, in streaming
// collection, and reports events_per_sec over the event loop alone.
// One fixed seed per core count keeps every size comparable across
// commits.
func engineThroughputCores(b *testing.B, cores int) {
	g := taskset.NewGenerator(uint64(11 + cores))
	g.PeriodMin = 10 * vtime.Millisecond
	g.PeriodMax = 100 * vtime.Millisecond
	set, err := g.Generate(10*cores, 0.55*float64(cores))
	if err != nil {
		b.Fatal(err)
	}
	var events int64
	var loop time.Duration
	for i := 0; i < b.N; i++ {
		sink := &countingSink{}
		e, err := engine.New(engine.Config{
			Tasks:   set,
			End:     vtime.Time(30 * vtime.Second),
			CPUs:    cores,
			Collect: engine.Stream,
			Sink:    sink,
		})
		if err != nil {
			b.Fatal(err)
		}
		t0 := time.Now()
		e.Run()
		loop += time.Since(t0)
		events = sink.n
	}
	b.ReportAllocs()
	b.ReportMetric(float64(events), "trace_events")
	b.ReportMetric(float64(events)*float64(b.N)/loop.Seconds(), "events_per_sec")
}

// BenchmarkEngineThroughput measures simulated events per wall second
// — the substrate cost the typed, allocation-free event loop bounds —
// across the core-count axis: cores=1 is the uniprocessor loop, the
// larger counts price the shared ready queue feeding M cores under
// global dispatch. Streaming collection (the long-horizon
// configuration); the full pair of gate benchmarks is this family
// plus the Retain workload below.
func BenchmarkEngineThroughput(b *testing.B) {
	for _, cores := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("cores=%d", cores), func(b *testing.B) { engineThroughputCores(b, cores) })
	}
}

// BenchmarkEngineThroughputRetain is the same workload with the full
// in-memory log and job history retained.
func BenchmarkEngineThroughputRetain(b *testing.B) { engineThroughput(b, engine.Retain) }

// BenchmarkEngineScaling runs the X10 task-count axis (10..500
// synthetic tasks, 60 s horizon, streaming collection): the per-event
// cost must stay flat-ish as the task count grows — the ready-queue
// rework's acceptance surface. CI distils the series into
// BENCH_engine.json.
func BenchmarkEngineScaling(b *testing.B) {
	for _, n := range experiments.ScalingSizes {
		b.Run(fmt.Sprintf("tasks=%d", n), func(b *testing.B) {
			var p experiments.ScalingPoint
			var err error
			for i := 0; i < b.N; i++ {
				p, err = experiments.RunScalingPoint(n, experiments.ScalingHorizon, experiments.ScalingSeed)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ReportMetric(float64(p.Events), "events")
			b.ReportMetric(float64(p.Switches), "switches")
			b.ReportMetric(p.EventsPerSec, "events_per_sec")
		})
	}
}

// TestDispatchCostSubLinear pins the X10 acceptance bar: growing the
// task count 10× (50 → 500) must grow the per-event cost sub-linearly
// — the incrementally maintained ready queue replaces the historical
// O(tasks) scan per dispatch, so the measured ratio sits near the
// log-factor (~1–2×), far from the linear ~10×. The generous 4×
// threshold keeps slow or noisy CI hosts from flaking while still
// failing decisively if a linear scan sneaks back in.
func TestDispatchCostSubLinear(t *testing.T) {
	if raceEnabled {
		t.Skip("timing assertion is meaningless under the race detector")
	}
	perEvent := func(n int) float64 {
		var events int64
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p, err := experiments.RunScalingPoint(n, 5*vtime.Second, experiments.ScalingSeed)
				if err != nil {
					b.Fatal(err)
				}
				events = p.Events
			}
		})
		return float64(r.NsPerOp()) / float64(events)
	}
	small, large := perEvent(50), perEvent(500)
	if ratio := large / small; ratio > 4 {
		t.Errorf("per-event cost grew %.1f× from 50 to 500 tasks (%.1f → %.1f ns/event); want sub-linear growth (<= 4×)",
			ratio, small, large)
	}
}

// benchCollect runs the Figure system for a 10-minute virtual horizon
// (≈ 5800 jobs, ≈ 42k trace events) under the stop treatment with a
// recurring overrun, in the given collection mode. Run with -benchmem:
// the Retain/Stream pair pins the memory story — streaming keeps
// allocations O(1) per job (no retained log, no per-job records; B/op
// and allocs/op drop accordingly) while reproducing the same report.
// CI extracts the pair into BENCH_stream.json.
func benchCollect(b *testing.B, mode engine.Collect) {
	var jobs int
	for i := 0; i < b.N; i++ {
		sys, err := core.NewSystem(core.Config{
			Tasks:           experiments.FigureSet(),
			Treatment:       detect.Stop,
			Faults:          fault.Plan{"tau1": fault.OverrunEvery{First: 1, K: 3, Extra: ms(45)}},
			Horizon:         600 * vtime.Second,
			TimerResolution: detect.DefaultTimerResolution,
			Collect:         mode,
		})
		if err != nil {
			b.Fatal(err)
		}
		res, err := sys.Run()
		if err != nil {
			b.Fatal(err)
		}
		jobs = res.Report.TotalReleased()
		if jobs < 5000 {
			b.Fatalf("10-minute horizon released only %d jobs", jobs)
		}
		if mode == engine.Stream && res.Log.Len() != 0 {
			b.Fatalf("streaming run retained %d events", res.Log.Len())
		}
	}
	b.ReportAllocs()
	b.ReportMetric(float64(jobs), "jobs")
}

// BenchmarkCollectRetain10m is the baseline: full log and job
// retention over a 10-minute virtual horizon.
func BenchmarkCollectRetain10m(b *testing.B) { benchCollect(b, engine.Retain) }

// BenchmarkCollectStream10m is the bounded-memory path: same
// simulation, metrics accumulated online, nothing retained.
func BenchmarkCollectStream10m(b *testing.B) { benchCollect(b, engine.Stream) }

// TestStreamAllocsPerJobConstant pins the O(1)-per-job steady state:
// doubling the horizon (and so the job count) must not raise the
// per-job allocation count — streaming holds no structure that grows
// with completed jobs, so the per-job cost is flat.
func TestStreamAllocsPerJobConstant(t *testing.T) {
	perJob := func(horizon vtime.Duration) float64 {
		var jobs int
		allocs := testing.AllocsPerRun(3, func() {
			sys, err := core.NewSystem(core.Config{
				Tasks:           experiments.FigureSet(),
				Treatment:       detect.Stop,
				Faults:          fault.Plan{"tau1": fault.OverrunEvery{First: 1, K: 3, Extra: ms(45)}},
				Horizon:         horizon,
				TimerResolution: detect.DefaultTimerResolution,
				Collect:         engine.Stream,
			})
			if err != nil {
				t.Fatal(err)
			}
			res, err := sys.Run()
			if err != nil {
				t.Fatal(err)
			}
			jobs = res.Report.TotalReleased()
		})
		return allocs / float64(jobs)
	}
	short := perJob(600 * vtime.Second)
	long := perJob(1200 * vtime.Second)
	// Identical workload shape at both horizons; allow 10% noise from
	// map growth and GC timing.
	if long > short*1.10 {
		t.Errorf("allocs per job grew with the horizon: %.2f at 10m vs %.2f at 20m", short, long)
	}
}

// benchFastForward runs the eligible Table 2 variant (the figure
// system under treatment none — hyperperiod 3000 ms) to the given
// horizon in streaming collection, with or without fast-forward. The
// full/ff pair per horizon is the tentpole's acceptance surface: the
// ff run must do O(transient + one cycle + tail) work regardless of
// the horizon, so its ns/op stays flat while the full run's grows
// linearly. CI distils the pairs into BENCH_engine.json as
// fastforward_speedup rows.
func benchFastForward(b *testing.B, horizon vtime.Duration, ff bool) {
	var jobs int
	var skipped int64
	for i := 0; i < b.N; i++ {
		sys, err := core.NewSystem(core.Config{
			Tasks:       experiments.FigureSet(),
			Treatment:   detect.NoDetection,
			Horizon:     horizon,
			Collect:     engine.Stream,
			FastForward: ff,
		})
		if err != nil {
			b.Fatal(err)
		}
		res, err := sys.Run()
		if err != nil {
			b.Fatal(err)
		}
		jobs = res.Report.TotalReleased()
		skipped = res.SkippedCycles
	}
	if ff && skipped == 0 {
		b.Fatal("fast-forward never engaged on the benchmark system")
	}
	b.ReportAllocs()
	b.ReportMetric(float64(jobs), "jobs")
	b.ReportMetric(float64(skipped), "skipped_cycles")
}

// BenchmarkEngineFastForward prices the steady-state jump across the
// horizon axis: full (event-by-event) vs ff (fast-forward) at 10
// minutes, 1 hour and 10 hours of virtual time on the same system.
func BenchmarkEngineFastForward(b *testing.B) {
	for _, h := range []struct {
		name    string
		horizon vtime.Duration
	}{
		{"10m", 600 * vtime.Second},
		{"1h", 3600 * vtime.Second},
		{"10h", 36000 * vtime.Second},
	} {
		for _, m := range []struct {
			name string
			ff   bool
		}{{"full", false}, {"ff", true}} {
			b.Run(fmt.Sprintf("horizon=%s/mode=%s", h.name, m.name), func(b *testing.B) {
				benchFastForward(b, h.horizon, m.ff)
			})
		}
	}
}

// BenchmarkEngineOpenArrivals (X15) prices source-driven releases: 30
// simulated seconds of a periodic task beside a Poisson-driven and an
// MMPP-driven task on the bare engine, streaming collection. The
// per-release override staging must keep the open-arrival loop in the
// same events_per_sec family as the periodic one — CI distils the row
// into BENCH_engine.json and the gate watches it.
func BenchmarkEngineOpenArrivals(b *testing.B) {
	set := taskset.MustNew(
		taskset.Task{Name: "steady", Priority: 10, Period: ms(40), Deadline: ms(40), Cost: ms(4)},
		taskset.Task{Name: "open-poisson", Priority: 7, Period: ms(50), Deadline: ms(30), Cost: ms(2)},
		taskset.Task{Name: "open-mmpp", Priority: 5, Period: ms(60), Deadline: ms(40), Cost: ms(2)},
	)
	var events int64
	var loop time.Duration
	for i := 0; i < b.N; i++ {
		// Sources are consumed by the run, so rebuild per iteration —
		// fixed seeds keep every iteration (and commit) comparable.
		poisson, err := taskset.NewPoisson(ms(12), 0x0BE5)
		if err != nil {
			b.Fatal(err)
		}
		mmpp, err := taskset.NewMMPP(ms(45), ms(5), ms(300), ms(120), 0x0FED)
		if err != nil {
			b.Fatal(err)
		}
		sink := &countingSink{}
		e, err := engine.New(engine.Config{
			Tasks:   set,
			End:     vtime.Time(30 * vtime.Second),
			Collect: engine.Stream,
			Sink:    sink,
			Sources: []taskset.Source{nil, poisson, mmpp},
		})
		if err != nil {
			b.Fatal(err)
		}
		t0 := time.Now()
		e.Run()
		loop += time.Since(t0)
		events = sink.n
	}
	b.ReportAllocs()
	b.ReportMetric(float64(events), "trace_events")
	b.ReportMetric(float64(events)*float64(b.N)/loop.Seconds(), "events_per_sec")
}

// BenchmarkAperiodicServer (X7, §7 outlook) runs the polling-server
// scenario: a 3×20 ms burst through a 10 ms / 50 ms server beside a
// hard periodic task; the hard task must never miss.
func BenchmarkAperiodicServer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		periodic := taskset.MustNew(
			taskset.Task{Name: "hard", Priority: 10, Period: ms(100), Deadline: ms(100), Cost: ms(30)},
		)
		srv := &aperiodic.PollingServer{
			Task: taskset.Task{Name: "server", Priority: 5, Period: ms(50), Deadline: ms(50), Cost: ms(10)},
			Requests: []aperiodic.Request{
				{ID: "a", Arrival: vtime.AtMillis(300), Cost: ms(20)},
				{ID: "b", Arrival: vtime.AtMillis(300), Cost: ms(20)},
				{ID: "c", Arrival: vtime.AtMillis(300), Cost: ms(20)},
			},
		}
		e, served, err := srv.Run(periodic, nil, vtime.Second)
		if err != nil {
			b.Fatal(err)
		}
		for _, j := range e.Jobs("hard") {
			if j.Done() && j.Missed() {
				b.Fatal("hard task missed under aperiodic burst")
			}
		}
		done := 0
		var worst vtime.Duration
		for _, r := range served {
			if r.Done {
				done++
				if r.Response > worst {
					worst = r.Response
				}
			}
		}
		if done != len(served) {
			b.Fatalf("burst only %d/%d served within 1s", done, len(served))
		}
		b.ReportMetric(float64(worst.Milliseconds()), "worst_response_ms")
	}
}

// BenchmarkPriorityAssignment compares RM, DM and Audsley's OPA
// acceptance on constrained-deadline random sets — the assignment
// machinery behind the admission control.
func BenchmarkPriorityAssignment(b *testing.B) {
	gen := taskset.NewGenerator(17)
	gen.DeadlineFactor = 0.8
	sets := make([]*taskset.Set, 24)
	for i := range sets {
		s, err := gen.Generate(5, 0.75)
		if err != nil {
			b.Fatal(err)
		}
		sets[i] = s
	}
	var rm, dm, opa int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rm, dm, opa = 0, 0, 0
		for _, s := range sets {
			if sched.Feasible(sched.RateMonotonic(s)) {
				rm++
			}
			if sched.Feasible(sched.DeadlineMonotonic(s)) {
				dm++
			}
			if got, err := sched.Audsley(s); err == nil && sched.Feasible(got) {
				opa++
			}
		}
	}
	if opa < dm || dm < rm {
		b.Fatalf("optimality order violated: RM %d, DM %d, OPA %d", rm, dm, opa)
	}
	b.ReportMetric(float64(rm), "rm_feasible")
	b.ReportMetric(float64(dm), "dm_feasible")
	b.ReportMetric(float64(opa), "opa_feasible")
}

// BenchmarkSweepBlocking (X9, §7) regenerates the blocking-vs-
// allowance trade-off table.
func BenchmarkSweepBlocking(b *testing.B) {
	var out string
	var err error
	for i := 0; i < b.N; i++ {
		out, err = experiments.BlockingSweep()
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(out) == 0 {
		b.Fatal("empty sweep")
	}
}
