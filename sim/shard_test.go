package sim

import (
	"context"
	"os"
	"strings"
	"testing"

	"repro/internal/verify/gen"
)

// TestMain lets this test binary serve as its own shard worker: the
// sharded-sweep tests spawn os.Args[0] with ShardWorkerEnv set, and
// the hook must run before the testing framework does.
func TestMain(m *testing.M) {
	RunShardWorkerIfEnv()
	os.Exit(m.Run())
}

// TestShardedSweepMatchesSerial is the x12 property at test scale:
// reports streamed back from worker processes equal in-process runs
// on every task-summary field, switches included.
func TestShardedSweepMatchesSerial(t *testing.T) {
	if raceEnabled {
		t.Skip("x12 sweep runs unraced via make ci (rtexp -exp x12)")
	}
	n := 8
	if testing.Short() {
		n = 3
	}
	points, err := ShardDifferentialSweep(context.Background(), ShardSeed, n, RunOptions{})
	if err != nil {
		t.Fatalf("shard differential sweep: %v", err)
	}
	if len(points) != n {
		t.Fatalf("sweep returned %d points, want %d", len(points), n)
	}
	var released int
	for _, p := range points {
		released += p.Released
	}
	if released == 0 {
		t.Error("sweep released no jobs — scenarios degenerate?")
	}
}

// TestShardedSweepAggregate: absorbing every shard state yields an
// aggregate whose released total matches the sum of the per-shard
// reports — the cross-scenario fold a distributed sweep reports.
func TestShardedSweepAggregate(t *testing.T) {
	scs := []Scenario{gen.Checkpointable(3), gen.Checkpointable(4), gen.Checkpointable(5)}
	results, err := ShardedSweep(context.Background(), ShardOptions{Workers: 2}, scs)
	if err != nil {
		t.Fatalf("sharded sweep: %v", err)
	}
	var want int
	for i := range results {
		rep, err := results[i].Report()
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range rep.Tasks {
			want += s.Released
		}
	}
	agg, err := AggregateShards(results)
	if err != nil {
		t.Fatal(err)
	}
	var got int
	for _, s := range agg.Tasks {
		got += s.Released
	}
	if got != want || got == 0 {
		t.Errorf("aggregate released %d, want %d (> 0)", got, want)
	}
}

// TestShardWorkerRejectsRetained: a retained-collection scenario is a
// job error (the accumulator is the wire format), reported with the
// worker's message, not a crash.
func TestShardWorkerRejectsRetained(t *testing.T) {
	sc := gen.Checkpointable(6)
	sc.Collect = nil
	_, err := ShardedSweep(context.Background(), ShardOptions{Workers: 1}, []Scenario{sc})
	if err == nil {
		t.Fatal("retained scenario accepted by shard worker")
	}
	if !strings.Contains(err.Error(), "streaming") {
		t.Errorf("error %v does not explain the streaming requirement", err)
	}
}
