package sim

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/taskset"
	"repro/internal/vtime"
)

// arrivalTask is the nominal task every arrival edge test drives; the
// period is inert (the source replaces the release law) but must
// still validate.
func arrivalTask(name string) Task {
	return Task{Name: name, Priority: 5, Period: Millis(50), Deadline: Millis(40), Cost: Millis(5)}
}

// runArrival builds and runs an oracle-armed bare-engine scenario
// with one source-driven task.
func runArrival(t *testing.T, a Arrival, horizon vtime.Duration) *RunResult {
	t.Helper()
	s, err := New(
		WithName("arrival-edge"),
		WithTasks(arrivalTask(a.Task)),
		WithArrivals(a),
		WithHorizon(horizon),
		WithSeed(9),
		WithoutAdmission(),
		WithVerify(),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestEmptyTraceFile pins the degenerate replay: a trace source fed
// an empty JSON-lines file releases nothing, and the oracle (which
// replays the same empty source) stays clean.
func TestEmptyTraceFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.jsonl")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	res := runArrival(t, Arrival{Task: "replay", Kind: ArrivalTrace, Path: path}, vtime.Millis(500))
	if sum := res.Report.Tasks["replay"]; sum != nil && sum.Released != 0 {
		t.Errorf("empty trace released %d jobs, want 0", sum.Released)
	}
}

// TestSingleRecordTrace pins the one-record replay, including its
// per-record cost and deadline overrides, under the oracle.
func TestSingleRecordTrace(t *testing.T) {
	res := runArrival(t, Arrival{
		Task:    "replay",
		Kind:    ArrivalTrace,
		Records: []TraceRecord{{Release: Millis(20), Cost: Millis(3), Deadline: Millis(25)}},
	}, vtime.Millis(500))
	sum := res.Report.Tasks["replay"]
	if sum.Released != 1 || sum.Finished != 1 {
		t.Errorf("single-record trace: released %d finished %d, want 1/1", sum.Released, sum.Finished)
	}
}

// TestOutOfOrderTraceRejected pins the measurement-integrity rule end
// to end: out-of-order records fail the run (never a silent sort),
// both inline and via a file (where the error names the line).
func TestOutOfOrderTraceRejected(t *testing.T) {
	s, err := New(
		WithTasks(arrivalTask("replay")),
		WithArrivals(Arrival{Task: "replay", Kind: ArrivalTrace, Records: []TraceRecord{
			{Release: Millis(30), Cost: Millis(2)},
			{Release: Millis(10), Cost: Millis(2)},
		}}),
		WithHorizon(vtime.Millis(500)),
		WithoutAdmission(),
	)
	if err == nil {
		_, err = s.Run()
	}
	if err == nil || !strings.Contains(err.Error(), "out of order") {
		t.Fatalf("inline out-of-order trace: err = %v, want out-of-order rejection", err)
	}

	path := filepath.Join(t.TempDir(), "unsorted.jsonl")
	data := "{\"release\":\"30ms\",\"cost\":\"2ms\"}\n{\"release\":\"10ms\",\"cost\":\"2ms\"}\n"
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err = New(
		WithTasks(arrivalTask("replay")),
		WithArrivals(Arrival{Task: "replay", Kind: ArrivalTrace, Path: path}),
		WithHorizon(vtime.Millis(500)),
		WithoutAdmission(),
	)
	if err == nil {
		_, err = s.Run()
	}
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("file out-of-order trace: err = %v, want a line-2 positional error", err)
	}
}

// TestPoissonZeroArrivalsInHorizon pins the quiet extreme: a mean
// inter-arrival far beyond the horizon yields a run with zero
// releases of the open task, and the oracle agrees that silence is
// correct (its replayed source's first arrival lies past the end).
func TestPoissonZeroArrivalsInHorizon(t *testing.T) {
	res := runArrival(t, Arrival{Task: "web", Kind: ArrivalPoisson, Mean: Duration(60 * vtime.Second), Seed: 1}, vtime.Millis(50))
	if sum := res.Report.Tasks["web"]; sum != nil && sum.Released != 0 {
		t.Errorf("quiet Poisson released %d jobs in a 50ms horizon, want 0", sum.Released)
	}
}

// TestMMPPFlipAtHorizon pins the boundary edge: the MMPP state flip
// lands exactly on the horizon instant (dwells 100ms+100ms, horizon
// 200ms). The run must agree release-for-release with an independent
// replay of the same source truncated at the horizon — the flip at
// the final instant must neither invent nor lose an arrival.
func TestMMPPFlipAtHorizon(t *testing.T) {
	a := Arrival{
		Task:       "burst",
		Kind:       ArrivalMMPP,
		Mean:       Millis(40),
		BurstMean:  Millis(4),
		Dwell:      Millis(100),
		BurstDwell: Millis(100),
		Seed:       11,
	}
	horizon := vtime.Millis(200)
	res := runArrival(t, a, horizon)

	src, err := taskset.NewMMPP(a.Mean.D(), a.BurstMean.D(), a.Dwell.D(), a.BurstDwell.D(), a.Seed)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for {
		rel, ok := src.Next()
		if !ok || rel.At.After(vtime.Time(horizon)) {
			break
		}
		want++
	}
	if want == 0 {
		t.Fatal("test is vacuous: the replayed source has no arrivals in the horizon")
	}
	if got := res.Report.Tasks["burst"].Released; got != want {
		t.Errorf("MMPP flip-at-horizon released %d jobs, want %d (independent source replay)", got, want)
	}
}
