package sim

import (
	"context"
	"testing"

	"repro/internal/metrics"
	"repro/sim/scenario"
)

// TestDifferentialSweepCoverage runs the default X11 sweep and pins
// the acceptance envelope: at least 50 scenarios, zero invariant
// violations (the sweep errors on any), every registered policy,
// both collection modes, and all four fault families exercised at
// the fixed seed.
func TestDifferentialSweepCoverage(t *testing.T) {
	if raceEnabled {
		// The race-instrumented CI leg would run the identical
		// fixed-seed sweep the `make ci` x11 step already runs
		// unraced; skip the slow duplicate.
		t.Skip("x11 sweep runs unraced via make ci (rtexp -exp x11)")
	}
	points, err := DifferentialSweep(context.Background(), DifferentialSeed, DifferentialCount, RunOptions{})
	if err != nil {
		t.Fatalf("differential sweep: %v", err)
	}
	if len(points) < 50 {
		t.Fatalf("sweep covered %d scenarios, want >= 50", len(points))
	}
	policies := map[string]bool{}
	families := map[string]bool{}
	modes := map[string]bool{}
	crossChecked := 0
	for _, p := range points {
		policies[p.Policy] = true
		for _, k := range p.FaultKinds {
			families[faultFamily(k)] = true
		}
		for _, m := range p.Modes {
			modes[m] = true
		}
		if len(p.Modes) == 2 {
			crossChecked++
		}
	}
	for _, name := range Policies() {
		if !policies[name] {
			t.Errorf("policy %q never exercised at the fixed seed", name)
		}
	}
	for _, fam := range []string{"overrun", "underrun", "jitter", "interference"} {
		if !families[fam] {
			t.Errorf("fault family %q never exercised at the fixed seed", fam)
		}
	}
	if !modes[scenario.CollectRetain] || !modes[scenario.CollectStream] {
		t.Errorf("collection modes exercised: %v, want both", modes)
	}
	if crossChecked == 0 {
		t.Error("no scenario was cross-checked retain vs stream")
	}
}

func faultFamily(kind string) string {
	switch kind {
	case scenario.FaultOverrunAt, scenario.FaultOverrunEvery:
		return "overrun"
	case scenario.FaultUnderrunEvery:
		return "underrun"
	default:
		return kind
	}
}

// TestReportDivergenceDetects pins the cross-check itself: doctored
// reports must be flagged, equal ones must not.
func TestReportDivergenceDetects(t *testing.T) {
	mk := func() *RunResult {
		return &RunResult{
			Detections: 2,
			Switches:   10,
			Report: &metrics.Report{Tasks: map[string]*metrics.TaskSummary{
				"t1": {Task: "t1", Released: 5, Finished: 4, Failed: 1, Missed: 1},
			}},
		}
	}
	if diff := reportDivergence(mk(), mk()); diff != "" {
		t.Fatalf("equal reports flagged: %s", diff)
	}
	b := mk()
	b.Report.Tasks["t1"].Finished = 3
	if diff := reportDivergence(mk(), b); diff == "" {
		t.Fatal("diverging Finished count not flagged")
	}
	c := mk()
	c.Detections = 3
	if diff := reportDivergence(mk(), c); diff == "" {
		t.Fatal("diverging detections not flagged")
	}
}
