// Package sim is the public facade of the reproduction: it exposes
// the simulator (admission control, detectors, treatments, scheduling
// policies, fault injection, aperiodic servers) through two
// equivalent front doors —
//
//   - a functional-options builder:
//
//     s, err := sim.New(
//     sim.WithTasks(tasks...),
//     sim.WithTreatment("stop"),
//     sim.WithFaults(sim.Fault{Task: "tau1", Kind: sim.FaultOverrunAt, Job: 5, Extra: sim.Millis(40)}),
//     sim.WithHorizon(vtime.Millis(1500)),
//     )
//     res, err := s.Run()
//
//   - a declarative, JSON-round-trippable Scenario spec (package
//     sim/scenario) loaded from disk:
//
//     s, err := sim.Load("testdata/scenarios/figure5.json")
//     res, err := s.Run()
//
// Both compile into the same internal core.System, so a scenario file
// and the equivalent builder calls produce byte-identical traces.
//
// The package also hosts two name→factory registries: scheduling
// policies (fixed-priority plus the overload baselines edf,
// best-effort, red, d-over — see Policies) and experiments (the
// paper's tables, figures and extension sweeps — see Experiments),
// so new workloads and artefacts need zero code changes in the tools.
package sim

import (
	"os"

	"repro/internal/taskset"
	"repro/internal/vtime"
	"repro/sim/scenario"
)

// Re-exported spec types: the builder and the JSON codec share one
// vocabulary, so any built system can be serialized and vice versa.
type (
	// Scenario is the declarative description of one simulation.
	Scenario = scenario.Scenario
	// Task declares one periodic task.
	Task = scenario.Task
	// Fault declares one fault-model entry.
	Fault = scenario.Fault
	// Server declares an aperiodic polling server.
	Server = scenario.Server
	// Request is one aperiodic arrival.
	Request = scenario.Request
	// Arrival declares one arrival source (open stochastic arrivals
	// or trace replay) targeting a task or a polling server.
	Arrival = scenario.Arrival
	// TraceRecord is one (release, cost, deadline) record of a
	// trace-driven arrival source.
	TraceRecord = scenario.TraceRecord
	// Duration is a JSON-friendly vtime.Duration ("29ms").
	Duration = scenario.Duration
	// Collect declares the run-data retention mode.
	Collect = scenario.Collect
)

// Collection modes, re-exported from sim/scenario.
const (
	// CollectRetain keeps the full log and per-job records (default).
	CollectRetain = scenario.CollectRetain
	// CollectStream accumulates metrics online with bounded memory.
	CollectStream = scenario.CollectStream
)

// Multiprocessor placement modes and partitioning heuristics,
// re-exported from sim/scenario.
const (
	PlacementGlobal      = scenario.PlacementGlobal
	PlacementPartitioned = scenario.PlacementPartitioned
	PartitionFirstFit    = scenario.PartitionFirstFit
	PartitionBestFit     = scenario.PartitionBestFit
)

// Fault kinds, re-exported from sim/scenario.
const (
	FaultOverrunAt     = scenario.FaultOverrunAt
	FaultOverrunEvery  = scenario.FaultOverrunEvery
	FaultUnderrunEvery = scenario.FaultUnderrunEvery
	FaultJitter        = scenario.FaultJitter
	FaultInterference  = scenario.FaultInterference
)

// Arrival source kinds, re-exported from sim/scenario.
const (
	ArrivalPoisson = scenario.ArrivalPoisson
	ArrivalMMPP    = scenario.ArrivalMMPP
	ArrivalTrace   = scenario.ArrivalTrace
)

// Millis is a convenience for building specs: n milliseconds.
func Millis(n int64) Duration { return Duration(vtime.Millis(n)) }

// Option mutates the scenario under construction.
type Option func(*Scenario) error

// New builds a system from functional options and validates it.
func New(opts ...Option) (*System, error) {
	var sc Scenario
	for _, opt := range opts {
		if err := opt(&sc); err != nil {
			return nil, err
		}
	}
	return FromScenario(sc)
}

// Load builds a system from a scenario JSON file.
func Load(path string) (*System, error) {
	sc, err := scenario.DecodeFile(path)
	if err != nil {
		return nil, err
	}
	return &System{sc: *sc}, nil
}

// WithName labels the scenario.
func WithName(name string) Option {
	return func(sc *Scenario) error { sc.Name = name; return nil }
}

// WithTasks appends task specs to the scenario.
func WithTasks(tasks ...Task) Option {
	return func(sc *Scenario) error { sc.Tasks = append(sc.Tasks, tasks...); return nil }
}

// WithTaskSet appends an in-memory task set to the scenario.
func WithTaskSet(s *taskset.Set) Option {
	return func(sc *Scenario) error {
		for _, t := range s.Tasks {
			sc.Tasks = append(sc.Tasks, scenario.FromTask(t))
		}
		return nil
	}
}

// WithTaskFile appends the tasks parsed from a task-description file
// (the paper's text format, see taskset.Parse).
func WithTaskFile(path string) Option {
	return func(sc *Scenario) error {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		s, err := taskset.Parse(f)
		if err != nil {
			return err
		}
		for _, t := range s.Tasks {
			sc.Tasks = append(sc.Tasks, scenario.FromTask(t))
		}
		return nil
	}
}

// WithPolicy selects a registered scheduling policy by name.
func WithPolicy(name string) Option {
	return func(sc *Scenario) error { sc.Policy = name; return nil }
}

// WithTreatment selects the paper's fault response by name: none |
// detect | stop | equitable | system (long forms like
// "stop-equitable" and "system-allowance" are accepted too).
func WithTreatment(name string) Option {
	return func(sc *Scenario) error { sc.Treatment = name; return nil }
}

// WithFaults appends fault entries to the scenario's plan.
func WithFaults(faults ...Fault) Option {
	return func(sc *Scenario) error { sc.Faults = append(sc.Faults, faults...); return nil }
}

// WithServer appends an aperiodic polling server.
func WithServer(srv Server) Option {
	return func(sc *Scenario) error { sc.Servers = append(sc.Servers, srv); return nil }
}

// WithArrivals appends arrival sources: open stochastic arrival
// processes (ArrivalPoisson, ArrivalMMPP) or a recorded trace replay
// (ArrivalTrace), each targeting either a periodic task (replacing
// its release law — requires WithoutAdmission) or a polling server
// (feeding its request stream). The scenario JSON equivalent is the
// "arrivals" block.
func WithArrivals(arrivals ...Arrival) Option {
	return func(sc *Scenario) error { sc.Arrivals = append(sc.Arrivals, arrivals...); return nil }
}

// WithHorizon sets the simulated duration.
func WithHorizon(d vtime.Duration) Option {
	return func(sc *Scenario) error { sc.Horizon = Duration(d); return nil }
}

// WithTimerResolution quantizes detector releases (jRate's
// PeriodicTimer is 10 ms; zero means exact timers).
func WithTimerResolution(d vtime.Duration) Option {
	return func(sc *Scenario) error { sc.TimerResolution = Duration(d); return nil }
}

// WithStopPoll sets the stop-flag poll granularity (§4.1).
func WithStopPoll(d vtime.Duration) Option {
	return func(sc *Scenario) error { sc.StopPoll = Duration(d); return nil }
}

// WithStopJitter bounds the unbounded-cost poll jitter (§4.1).
func WithStopJitter(max vtime.Duration) Option {
	return func(sc *Scenario) error { sc.StopJitterMax = Duration(max); return nil }
}

// WithContextSwitch charges a per-dispatch overhead.
func WithContextSwitch(d vtime.Duration) Option {
	return func(sc *Scenario) error { sc.ContextSwitch = Duration(d); return nil }
}

// WithSeed seeds the run's randomness: the §4.1 stop jitter, and any
// jitter fault without its own seed.
func WithSeed(seed uint64) Option {
	return func(sc *Scenario) error { sc.Seed = seed; return nil }
}

// WithoutAdmission skips the paper's admission control and runs the
// bare engine — required for deliberately overloaded scenarios. Only
// valid with treatment none.
func WithoutAdmission() Option {
	return func(sc *Scenario) error { sc.SkipAdmission = true; return nil }
}

// WithCPUs sets the number of identical processors (0 or 1 = the
// paper's uniprocessor platform). Multiprocessor runs support only
// treatment none, no servers, and the fixed-priority/edf policies;
// dispatch defaults to global — see WithPlacement.
func WithCPUs(n int) Option {
	return func(sc *Scenario) error { sc.CPUs = n; return nil }
}

// WithPlacement selects the multiprocessor dispatch mode: "global"
// (one shared ready queue, jobs may migrate between cores) or
// "partitioned" (each task pinned to a core by utilization-decreasing
// bin packing, no migration). Requires WithCPUs(n) for n > 1.
func WithPlacement(mode string) Option {
	return func(sc *Scenario) error { sc.Placement = mode; return nil }
}

// WithPartitioner names the bin-packing heuristic of partitioned
// placement: "first-fit" (default) or "best-fit". Requires
// WithPlacement("partitioned").
func WithPartitioner(name string) Option {
	return func(sc *Scenario) error { sc.Partitioner = name; return nil }
}

// WithVerify enables the online invariant oracle: the run's trace is
// checked event by event against the scheduling axioms (timestamp
// monotonicity, single-CPU occupancy, release/deadline resolution,
// policy-consistent dispatch order, detector timing, per-task
// conservation, server budgets) and Run fails with a wrapped
// *verify.Error on any violation. The scenario JSON equivalent is
// "verify": true.
func WithVerify() Option {
	return func(sc *Scenario) error { sc.Verify = true; return nil }
}

// WithFastForward arms hyperperiod cycle detection: the engine
// fingerprints the scheduling state at every hyperperiod boundary and,
// once two consecutive boundaries match, extrapolates the remaining
// whole cycles analytically instead of simulating them — long horizons
// cost O(transient + one cycle + tail). Counts and summaries are
// exact; streamed percentiles keep the sketch's rank-error guarantee.
// Requires streaming collection and treatment none; faults, servers,
// stop jitter, the online oracle and trace spilling are incompatible
// (validation and Run reject the combinations). The scenario JSON
// equivalent is "fast_forward": true.
func WithFastForward() Option {
	return func(sc *Scenario) error { sc.FastForward = true; return nil }
}

// WithCollection selects the run-data retention mode: CollectRetain
// (the default — full log and per-job records) or CollectStream
// (bounded memory for long horizons: online metrics accumulation, no
// retained jobs or log; see System.SpillTrace for keeping the event
// stream). Unknown modes fail validation.
func WithCollection(mode string) Option {
	return func(sc *Scenario) error {
		sc.Collect = &scenario.Collect{Mode: mode}
		return nil
	}
}
