package sim

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/taskset"
	"repro/internal/trace"
	"repro/internal/vtime"
)

// CheckpointVersion stamps the sim-level checkpoint file format.
const CheckpointVersion = 1

// Checkpoint is a self-contained mid-run snapshot: the scenario that
// produced it plus the engine and metric state at the boundary
// instant. It is pure canonical JSON (EncodeCheckpoint /
// DecodeCheckpoint) — a run split at the boundary with RunToCheckpoint
// and Resume produces a byte-identical spilled trace and an equal
// report to the unsplit run, which is what lets a long-horizon sweep
// migrate across processes or hosts.
//
// Checkpoints cover streaming-collection scenarios with treatment
// none, no servers, and no online oracle — the restrictions that keep
// every piece of runtime state plain data (see engine.Checkpoint).
type Checkpoint struct {
	Version  int                       `json:"version"`
	At       Duration                  `json:"at"`
	Scenario Scenario                  `json:"scenario"`
	Engine   *engine.Checkpoint        `json:"engine"`
	Metrics  *metrics.AccumulatorState `json:"metrics"`
}

// EncodeCheckpoint writes the canonical JSON form (two-space indent,
// trailing newline — the scenario codec's conventions).
func EncodeCheckpoint(w io.Writer, cp *Checkpoint) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.SetEscapeHTML(false)
	return enc.Encode(cp)
}

// MarshalCheckpoint returns the canonical JSON encoding.
func MarshalCheckpoint(cp *Checkpoint) ([]byte, error) {
	var buf bytes.Buffer
	if err := EncodeCheckpoint(&buf, cp); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeCheckpoint reads and validates one checkpoint. Unknown fields
// are rejected, like the scenario codec.
func DecodeCheckpoint(r io.Reader) (*Checkpoint, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var cp Checkpoint
	if err := dec.Decode(&cp); err != nil {
		return nil, fmt.Errorf("sim: decode checkpoint: %w", err)
	}
	if cp.Version != CheckpointVersion {
		return nil, fmt.Errorf("sim: checkpoint version %d, want %d", cp.Version, CheckpointVersion)
	}
	if cp.Engine == nil || cp.Metrics == nil {
		return nil, fmt.Errorf("sim: checkpoint is missing engine or metrics state")
	}
	if err := cp.Scenario.Validate(); err != nil {
		return nil, err
	}
	return &cp, nil
}

// DecodeCheckpointFile decodes the checkpoint stored at path.
func DecodeCheckpointFile(path string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	cp, err := DecodeCheckpoint(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return cp, nil
}

// checkpointable rejects scenarios whose runtime state cannot be
// serialized. The conditions mirror core and engine (which also
// enforce them) so the error surfaces before any simulation work:
// detector treatments and polling servers hold closure-bearing
// timers, d-over arms a latest-start-time watchdog, retained runs
// carry the full log, and the online oracle's verdict is only
// meaningful over a whole trace (replay the concatenated spill
// through rtrun -check or verify.ForScenario instead).
func (s *System) checkpointable() error {
	tr, err := ParseTreatment(s.sc.Treatment)
	if err != nil {
		return err
	}
	switch {
	case tr != detect.NoDetection:
		return fmt.Errorf("sim: checkpointing requires treatment none, have %q", s.sc.Treatment)
	case len(s.sc.Servers) > 0:
		return fmt.Errorf("sim: checkpointing cannot combine with polling servers (their timers are not serializable)")
	case s.sc.Policy == "d-over":
		return fmt.Errorf("sim: policy d-over is not checkpointable (its latest-start-time watchdog holds timers)")
	case !s.sc.Streaming():
		return fmt.Errorf("sim: checkpointing requires streaming collection (\"collect\": {\"mode\": %q})", CollectStream)
	case s.sc.Verify:
		return fmt.Errorf("sim: checkpointing cannot combine with the online oracle; replay the concatenated trace instead")
	case s.sc.FastForward:
		return fmt.Errorf("sim: checkpointing cannot combine with fast-forward (the analytic jump skips the boundary instants a snapshot would capture)")
	}
	return nil
}

// compileStream builds the runnable pieces of a checkpointable
// scenario (no servers by construction).
func (s *System) compileStream() (*taskset.Set, fault.Plan, engine.Policy, error) {
	set, err := taskset.New(taskSlice(s.sc.Tasks)...)
	if err != nil {
		return nil, nil, nil, err
	}
	plan, err := s.sc.FaultPlan()
	if err != nil {
		return nil, nil, nil, err
	}
	pol, err := engine.NewPolicy(s.sc.Policy)
	if err != nil {
		return nil, nil, nil, err
	}
	return set, plan, pol, nil
}

// coreConfig maps a checkpointable scenario onto core.Config.
func (s *System) coreConfig(set *taskset.Set, plan fault.Plan, pol engine.Policy, sink trace.Sink) core.Config {
	return core.Config{
		Tasks:         set,
		Treatment:     detect.NoDetection,
		Faults:        plan,
		Horizon:       s.sc.Horizon.D(),
		StopPoll:      s.sc.StopPoll.D(),
		StopJitterMax: s.sc.StopJitterMax.D(),
		Seed:          s.sc.Seed,
		ContextSwitch: s.sc.ContextSwitch.D(),
		Policy:        pol,
		Collect:       engine.Stream,
		TraceSink:     sink,
	}
}

// engineConfig maps a checkpointable scenario onto the bare engine
// (the skip-admission and multiprocessor paths).
func (s *System) engineConfig(set *taskset.Set, plan fault.Plan, pol engine.Policy, sink trace.Sink) (engine.Config, error) {
	partition, err := s.sc.Partition()
	if err != nil {
		return engine.Config{}, err
	}
	return engine.Config{
		Tasks:         set,
		Faults:        plan,
		End:           vtime.Time(s.sc.Horizon),
		Policy:        pol,
		StopPoll:      s.sc.StopPoll.D(),
		StopJitterMax: s.sc.StopJitterMax.D(),
		Seed:          s.sc.Seed,
		ContextSwitch: s.sc.ContextSwitch.D(),
		Collect:       engine.Stream,
		Sink:          sink,
		CPUs:          s.sc.CPUs,
		Partition:     partition,
	}, nil
}

// RunToCheckpoint simulates the scenario up to instant at (every event
// with a timestamp ≤ at fires), snapshots, and returns the
// self-contained checkpoint. The partial trace reaches the SpillTrace
// writer; Resume on the checkpoint completes the run so that the
// concatenation of the two spills is byte-identical to an unsplit
// run's trace and the final report is equal.
func (s *System) RunToCheckpoint(at Duration) (*Checkpoint, error) {
	if err := s.checkpointable(); err != nil {
		return nil, err
	}
	if at < 0 || at > s.sc.Horizon {
		return nil, fmt.Errorf("sim: checkpoint instant %v outside the horizon [0, %v]", at, s.sc.Horizon)
	}
	set, plan, pol, err := s.compileStream()
	if err != nil {
		return nil, err
	}
	var spill *trace.WriterSink
	var sink trace.Sink
	if s.spill != nil {
		spill = trace.NewWriterSink(s.spill)
		sink = spill
	}
	cp := &Checkpoint{Version: CheckpointVersion, At: at, Scenario: s.sc}
	if s.sc.SkipAdmission || s.sc.CPUs > 1 {
		acc := metrics.NewAccumulator()
		cfg, err := s.engineConfig(set, plan, pol, trace.Tee(acc, sink))
		if err != nil {
			return nil, err
		}
		eng, err := engine.New(cfg)
		if err != nil {
			return nil, err
		}
		if err := eng.RunUntil(vtime.Time(at)); err != nil {
			return nil, err
		}
		if cp.Engine, err = eng.Snapshot(); err != nil {
			return nil, err
		}
		cp.Metrics = acc.State()
	} else {
		sys, err := core.NewSystem(s.coreConfig(set, plan, pol, sink))
		if err != nil {
			return nil, err
		}
		cs, err := sys.RunToCheckpoint(at.D())
		if err != nil {
			return nil, err
		}
		cp.Engine, cp.Metrics = cs.Engine, cs.Metrics
	}
	if spill != nil {
		if err := spill.Flush(); err != nil {
			return nil, fmt.Errorf("sim: spilling trace: %w", err)
		}
	}
	return cp, nil
}

// Resume builds a System that continues a checkpointed run. Its Run
// completes the remaining horizon; SpillTrace captures the second
// trace segment; the result's Report covers the whole run (segment
// one travels inside the checkpoint's accumulator state).
func Resume(cp *Checkpoint) (*System, error) {
	if cp.Version != CheckpointVersion {
		return nil, fmt.Errorf("sim: checkpoint version %d, want %d", cp.Version, CheckpointVersion)
	}
	if cp.Engine == nil || cp.Metrics == nil {
		return nil, fmt.Errorf("sim: checkpoint is missing engine or metrics state")
	}
	sys, err := FromScenario(cp.Scenario)
	if err != nil {
		return nil, err
	}
	if err := sys.checkpointable(); err != nil {
		return nil, err
	}
	sys.resume = cp
	return sys, nil
}

// runResumed is Run for a System built by Resume.
func (s *System) runResumed() (*RunResult, error) {
	set, plan, pol, err := s.compileStream()
	if err != nil {
		return nil, err
	}
	var spill *trace.WriterSink
	var sink trace.Sink
	if s.spill != nil {
		spill = trace.NewWriterSink(s.spill)
		sink = spill
	}
	res := &RunResult{Scenario: s.sc}
	if s.sc.SkipAdmission || s.sc.CPUs > 1 {
		acc := metrics.NewAccumulator()
		cfg, err := s.engineConfig(set, plan, pol, trace.Tee(acc, sink))
		if err != nil {
			return nil, err
		}
		eng, err := engine.New(cfg)
		if err != nil {
			return nil, err
		}
		if err := acc.RestoreState(s.resume.Metrics); err != nil {
			return nil, err
		}
		if err := eng.Restore(s.resume.Engine); err != nil {
			return nil, err
		}
		res.Log = eng.Run()
		res.Report = acc.Report()
		res.Switches = eng.Switches()
	} else {
		sys, err := core.NewSystem(s.coreConfig(set, plan, pol, sink))
		if err != nil {
			return nil, err
		}
		r, err := sys.RunFrom(&core.CheckpointState{Engine: s.resume.Engine, Metrics: s.resume.Metrics})
		if err != nil {
			return nil, err
		}
		res.Log = r.Log
		res.Report = r.Report
		res.Admission = r.Admission
		res.Allowance = r.Allowance
		res.Detections = r.Detections
		res.Switches = r.Switches
	}
	if spill != nil {
		if err := spill.Flush(); err != nil {
			return nil, fmt.Errorf("sim: spilling trace: %w", err)
		}
	}
	return res, nil
}
