package sim

import (
	"context"
	"fmt"

	"repro/internal/experiments"
	"repro/internal/vtime"
)

// The paper's tables, figures and extension sweeps as registry
// entries, in the order cmd/rtexp has always printed them. Each entry
// delegates to internal/experiments, so a registry-driven run is
// byte-identical to the direct calls (pinned by TestRegistryMatchesDirectCalls).

func (o RunOptions) internal() experiments.RunOptions {
	return experiments.RunOptions{Parallelism: o.Parallelism, Progress: o.Progress, Stream: o.Stream}
}

func init() {
	RegisterExperiment(NewExperiment("table1",
		"Table 1 / Figure 1 — per-job response times; the worst case is not the critical-instant job",
		func(context.Context, RunOptions) (Result, error) {
			rows, err := experiments.Table1()
			if err != nil {
				return Result{}, err
			}
			return Result{Data: rows, Text: experiments.RenderTable1(rows)}, nil
		}))
	RegisterExperiment(NewExperiment("table2",
		"Table 2 — the tested task system: WCRTs, equitable allowance and per-task maximum overrun",
		func(context.Context, RunOptions) (Result, error) {
			rows, err := experiments.Table2()
			if err != nil {
				return Result{}, err
			}
			return Result{Data: rows, Text: experiments.RenderTable2(rows)}, nil
		}))
	RegisterExperiment(NewExperiment("table3",
		"Table 3 — worst-case response times when every task overruns by the equitable allowance",
		func(context.Context, RunOptions) (Result, error) {
			rows, err := experiments.Table3()
			if err != nil {
				return Result{}, err
			}
			return Result{Data: rows, Text: experiments.RenderTable3(rows)}, nil
		}))
	for _, fig := range []experiments.Figure{
		experiments.Figure3, experiments.Figure4, experiments.Figure5,
		experiments.Figure6, experiments.Figure7,
	} {
		fig := fig
		RegisterExperiment(NewExperiment(fmt.Sprintf("fig%d", int(fig)),
			fig.Title(),
			func(context.Context, RunOptions) (Result, error) {
				outcome, text, err := experiments.FigureArtefact(fig, "")
				if err != nil {
					return Result{}, err
				}
				return Result{Data: outcome, Text: text}, nil
			}))
	}
	RegisterExperiment(NewExperiment("x1",
		"X1 — detector overhead vs task count (the paper's §6.2 sensor-count remark, quantified)",
		func(ctx context.Context, opt RunOptions) (Result, error) {
			points, err := experiments.DetectorOverheadSweepCtx(ctx, []int{2, 4, 8, 16}, 7, opt.internal())
			if err != nil {
				return Result{}, err
			}
			return Result{Data: points, Text: experiments.RenderOverhead(points)}, nil
		}))
	RegisterExperiment(NewExperiment("x2",
		"X2 — success ratio vs fault magnitude, generalizing Figures 3–7 over every treatment",
		func(ctx context.Context, opt RunOptions) (Result, error) {
			points, err := experiments.FaultMagnitudeSweepCtx(ctx, vtime.Millis(60), vtime.Millis(5), opt.internal())
			if err != nil {
				return Result{}, err
			}
			return Result{Data: points, Text: experiments.RenderSweep(points)}, nil
		}))
	RegisterExperiment(NewExperiment("x3",
		"X3 — detector timer-resolution sensitivity of the Figure 5–7 treatments",
		func(ctx context.Context, opt RunOptions) (Result, error) {
			points, err := experiments.TimerResolutionSweepCtx(ctx, opt.internal())
			if err != nil {
				return Result{}, err
			}
			return Result{Data: points, Text: experiments.RenderResolution(points)}, nil
		}))
	RegisterExperiment(NewExperiment("x9",
		"X9 — blocking versus allowance trade-off on the Table 2 system (paper §7)",
		func(context.Context, RunOptions) (Result, error) {
			out, err := experiments.BlockingSweep()
			if err != nil {
				return Result{}, err
			}
			return Result{Data: out, Text: out}, nil
		}))
	RegisterExperiment(NewExperiment("x5",
		"X5 — acceptance ratio of Liu–Layland, hyperbolic and exact admission tests vs utilization",
		func(ctx context.Context, opt RunOptions) (Result, error) {
			points, err := experiments.AcceptanceSweepCtx(ctx,
				[]float64{0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}, 200, 5, 11, opt.internal())
			if err != nil {
				return Result{}, err
			}
			return Result{Data: points, Text: experiments.RenderAcceptance(points)}, nil
		}))
	RegisterExperiment(NewExperiment("x4",
		"X4 — the paper's admission-control-plus-detectors approach vs overload schedulers",
		func(ctx context.Context, opt RunOptions) (Result, error) {
			points, err := experiments.BaselineComparisonCtx(ctx, vtime.Millis(50), 6*vtime.Second, opt.internal())
			if err != nil {
				return Result{}, err
			}
			return Result{Data: points, Text: experiments.RenderBaselines(points)}, nil
		}))
	RegisterExperiment(NewExperiment("x10",
		"X10 — engine events/sec and switches vs task count (10..500 tasks, 60s horizon)",
		func(ctx context.Context, opt RunOptions) (Result, error) {
			points, err := experiments.TaskScalingSweepCtx(ctx,
				experiments.ScalingSizes, experiments.ScalingHorizon, opt.internal())
			if err != nil {
				return Result{}, err
			}
			return Result{Data: points, Text: experiments.RenderScaling(points)}, nil
		}))
	RegisterExperiment(NewExperiment("x11",
		"X11 — differential invariant sweep: fuzzed scenarios property-verified in both collection modes",
		func(ctx context.Context, opt RunOptions) (Result, error) {
			points, err := DifferentialSweep(ctx, DifferentialSeed, DifferentialCount, opt)
			if err != nil {
				return Result{}, err
			}
			return Result{Data: points, Text: RenderDifferential(points)}, nil
		}))
	RegisterExperiment(NewExperiment("x12",
		"X12 — process-sharded sweep: streamed worker accumulators reproduce serial reports exactly",
		func(ctx context.Context, opt RunOptions) (Result, error) {
			points, err := ShardDifferentialSweep(ctx, ShardSeed, ShardCount, opt)
			if err != nil {
				return Result{}, err
			}
			return Result{Data: points, Text: RenderShardDifferential(points)}, nil
		}))
	RegisterExperiment(NewExperiment("x13",
		"X13 — multiprocessor differential sweep: global vs partitioned dispatch under the invariant oracle",
		func(ctx context.Context, opt RunOptions) (Result, error) {
			points, err := MulticoreSweep(ctx, MulticoreSeed, MulticoreCount, opt)
			if err != nil {
				return Result{}, err
			}
			return Result{Data: points, Text: RenderMulticore(points)}, nil
		}))
	RegisterExperiment(NewExperiment("x14",
		"X14 — fast-forward differential sweep: analytic hyperperiod jumps vs oracle-verified full runs",
		func(ctx context.Context, opt RunOptions) (Result, error) {
			points, err := FastForwardSweep(ctx, FastForwardSeed, FastForwardCount, opt)
			if err != nil {
				return Result{}, err
			}
			return Result{Data: points, Text: RenderFastForward(points)}, nil
		}))
	RegisterExperiment(NewExperiment("x15",
		"X15 — open-arrivals differential sweep: Poisson/MMPP/trace sources oracle-verified, retain vs stream",
		func(ctx context.Context, opt RunOptions) (Result, error) {
			points, err := OpenArrivalsSweep(ctx, OpenArrivalsSeed, OpenArrivalsCount, opt)
			if err != nil {
				return Result{}, err
			}
			return Result{Data: points, Text: RenderOpenArrivals(points)}, nil
		}))
}
