package sim

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/trace"
	"repro/internal/verify"
	"repro/internal/verify/gen"
)

// splitRun runs the scenario split at instant at — first segment to a
// checkpoint, the checkpoint through a JSON round trip (the wire is
// part of the guarantee), second segment via Resume — and returns the
// concatenated spilled trace plus the final result.
func splitRun(t *testing.T, sc Scenario, at Duration) (string, *RunResult) {
	t.Helper()
	sys, err := FromScenario(sc)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	var segA bytes.Buffer
	sys.SpillTrace(&segA)
	cp, err := sys.RunToCheckpoint(at)
	if err != nil {
		t.Fatalf("RunToCheckpoint(%v): %v", at, err)
	}
	raw, err := MarshalCheckpoint(cp)
	if err != nil {
		t.Fatalf("marshal checkpoint: %v", err)
	}
	decoded, err := DecodeCheckpoint(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("decode checkpoint: %v", err)
	}
	resumed, err := Resume(decoded)
	if err != nil {
		t.Fatalf("Resume: %v", err)
	}
	var segB bytes.Buffer
	resumed.SpillTrace(&segB)
	res, err := resumed.Run()
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	return segA.String() + segB.String(), res
}

// unsplitRun runs the scenario whole, spilling the trace.
func unsplitRun(t *testing.T, sc Scenario) (string, *RunResult) {
	t.Helper()
	sys, err := FromScenario(sc)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	var spill bytes.Buffer
	sys.SpillTrace(&spill)
	res, err := sys.Run()
	if err != nil {
		t.Fatalf("unsplit run: %v", err)
	}
	return spill.String(), res
}

// diffPercentiles returns the first percentile divergence between two
// streaming reports ("" when equal): a resumed accumulator carries the
// first segment's sketches verbatim, so the split run's percentiles
// must equal the unsplit run's exactly, not just within ε.
func diffPercentiles(a, b *RunResult) string {
	for name := range a.Report.Tasks {
		for _, p := range []float64{1, 50, 95, 99, 100} {
			av, aok := a.Report.ResponsePercentile(name, p)
			bv, bok := b.Report.ResponsePercentile(name, p)
			if aok != bok || av != bv {
				return name
			}
		}
	}
	return ""
}

// replayOracle feeds an encoded trace through the scenario's invariant
// oracle and returns its verdict — how the differential tests check
// the *concatenated* split trace, since checkpointing cannot run the
// online oracle across the process boundary.
func replayOracle(t *testing.T, sc Scenario, encoded string) error {
	t.Helper()
	chk, err := verify.ForScenario(&sc)
	if err != nil {
		t.Fatalf("oracle: %v", err)
	}
	log, err := trace.DecodeString(encoded)
	if err != nil {
		t.Fatalf("decode trace: %v", err)
	}
	for _, e := range log.Events() {
		chk.Append(e)
	}
	return chk.FinishErr()
}

// TestCheckpointResumeDifferential is the tentpole guarantee over
// fuzzed scenarios: splitting a run at any checkpoint boundary
// produces a byte-identical trace and an equal report (percentiles
// included) versus the unsplit run, and the stitched trace satisfies
// every scheduling axiom.
func TestCheckpointResumeDifferential(t *testing.T) {
	seeds := 12
	if testing.Short() {
		seeds = 4
	}
	for seed := uint64(0); seed < uint64(seeds); seed++ {
		sc := gen.Checkpointable(seed)
		whole, wholeRes := unsplitRun(t, sc)
		for _, frac := range []float64{0, 0.25, 0.5, 0.75, 1} {
			at := Duration(float64(sc.Horizon) * frac)
			stitched, splitRes := splitRun(t, sc, at)
			if stitched != whole {
				t.Errorf("seed %d at %v: stitched trace diverges from unsplit (%d vs %d bytes)",
					seed, at, len(stitched), len(whole))
				continue
			}
			if d := reportDivergence(wholeRes, splitRes); d != "" {
				t.Errorf("seed %d at %v: report diverges: %s", seed, at, d)
			}
			if name := diffPercentiles(wholeRes, splitRes); name != "" {
				t.Errorf("seed %d at %v: task %s percentiles diverge", seed, at, name)
			}
			if err := replayOracle(t, sc, stitched); err != nil {
				t.Errorf("seed %d at %v: stitched trace violates the oracle: %v", seed, at, err)
			}
		}
	}
}

// TestCheckpointRejects pins the refusal conditions: non-streaming
// collection, detector treatments, servers, d-over, the online
// oracle, and out-of-horizon instants all fail loudly.
func TestCheckpointRejects(t *testing.T) {
	base := gen.Checkpointable(1)
	cases := []struct {
		name string
		mut  func(sc *Scenario)
		want string
	}{
		{"retained", func(sc *Scenario) { sc.Collect = nil }, "streaming"},
		{"verify", func(sc *Scenario) { sc.Verify = true }, "oracle"},
		{"treatment", func(sc *Scenario) {
			sc.Treatment = "stop"
			sc.Policy = "fixed-priority"
			sc.SkipAdmission = false
		}, "treatment"},
		{"d-over", func(sc *Scenario) { sc.Policy = "d-over" }, "d-over"},
	}
	for _, tc := range cases {
		sc := base
		tc.mut(&sc)
		if sc.Treatment != "none" && sc.Treatment != "" {
			// Detector scenarios need an admitted fixed-priority set;
			// reuse a generated one that is feasible.
			for seed := uint64(0); ; seed++ {
				cand := gen.Scenario(seed)
				if cand.Treatment != "none" && !cand.SkipAdmission {
					cand.Collect = &Collect{Mode: CollectStream}
					cand.Servers = nil
					sc = cand
					break
				}
			}
		}
		sys, err := FromScenario(sc)
		if err != nil {
			t.Fatalf("%s: build: %v", tc.name, err)
		}
		if _, err := sys.RunToCheckpoint(sc.Horizon / 2); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: RunToCheckpoint error %v, want mention of %q", tc.name, err, tc.want)
		}
	}

	sys, err := FromScenario(base)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RunToCheckpoint(base.Horizon * 2); err == nil {
		t.Error("checkpoint past the horizon accepted")
	}
}

// TestCheckpointDecodeRejects pins the file-format refusals.
func TestCheckpointDecodeRejects(t *testing.T) {
	sc := gen.Checkpointable(2)
	sys, err := FromScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := sys.RunToCheckpoint(sc.Horizon / 2)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := MarshalCheckpoint(cp)
	if err != nil {
		t.Fatal(err)
	}

	bad := strings.Replace(string(raw), `"version": 1`, `"version": 99`, 1)
	if _, err := DecodeCheckpoint(strings.NewReader(bad)); err == nil {
		t.Error("version 99 accepted")
	}
	if _, err := DecodeCheckpoint(strings.NewReader(`{"unknown_field": 1}`)); err == nil {
		t.Error("unknown field accepted")
	}

	// A checkpoint resumed under a different policy must be refused by
	// the engine's identity checks.
	var mut Checkpoint
	if err := mut.Scenario.Validate(); err == nil {
		t.Fatal("empty scenario unexpectedly valid")
	}
	decoded, err := DecodeCheckpoint(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	other := "edf"
	if decoded.Scenario.Policy == "edf" || decoded.Scenario.Policy == "" {
		other = "best-effort"
	}
	decoded.Scenario.Policy = other
	resumed, err := Resume(decoded)
	if err != nil {
		t.Fatalf("Resume: %v", err)
	}
	if _, err := resumed.Run(); err == nil {
		t.Error("policy-swapped checkpoint resumed without error")
	}
}

// TestCheckpointableGenerator pins the derived generator's contract:
// every seed yields a scenario the checkpoint path accepts.
func TestCheckpointableGenerator(t *testing.T) {
	for seed := uint64(0); seed < 50; seed++ {
		sc := gen.Checkpointable(seed)
		if sc.Treatment != "none" || len(sc.Servers) != 0 || sc.Policy == "d-over" || !sc.Streaming() {
			t.Fatalf("seed %d: non-checkpointable scenario %+v", seed, sc)
		}
		sys, err := FromScenario(sc)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := sys.checkpointable(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}
