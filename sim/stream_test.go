package sim

import (
	"bytes"
	"math"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/metrics"
	"repro/internal/vtime"
)

// soakOptions describes a 2-minute run with enough jobs (~3500) and
// response variety (seeded jitter plus a recurring overrun under the
// stop treatment) to exercise the accumulator and its sketches.
func soakOptions(extra ...Option) []Option {
	opts := []Option{
		WithTasks(
			Task{Name: "tau1", Priority: 20, Period: Millis(200), Deadline: Millis(70), Cost: Millis(29)},
			Task{Name: "tau2", Priority: 18, Period: Millis(250), Deadline: Millis(120), Cost: Millis(29)},
			Task{Name: "tau3", Priority: 16, Period: Millis(1500), Deadline: Millis(120), Cost: Millis(29), Offset: Millis(1000)},
		),
		WithTreatment("stop"),
		WithFaults(
			Fault{Task: "tau1", Kind: FaultOverrunEvery, First: 1, Every: 3, Extra: Millis(45)},
			Fault{Task: "tau2", Kind: FaultJitter, Max: Millis(3), Seed: 99},
		),
		WithTimerResolution(vtime.Millis(10)),
		WithHorizon(120 * vtime.Second),
		WithSeed(7),
	}
	return append(opts, extra...)
}

func mustRun(t *testing.T, opts ...Option) *RunResult {
	t.Helper()
	sys, err := New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// successfulResponses extracts the sorted successful response times
// of one task from a retained report — the exact distribution the
// streaming sketch approximates.
func successfulResponses(rep *metrics.Report, task string) []vtime.Duration {
	var out []vtime.Duration
	for _, j := range rep.Jobs {
		if j.Task == task && !j.Failed() && j.End != (vtime.Time(0)) {
			out = append(out, j.Response())
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TestStreamingReportMatchesRetained is the cross-mode equivalence
// pin of the streaming pipeline: the same scenario run retained and
// streamed produces identical task summaries — counts, failure
// accounting, success ratios and response min/mean/max exactly —
// while percentiles answer within the sketch's ±εn rank-error bound
// of the exact sort-based values.
func TestStreamingReportMatchesRetained(t *testing.T) {
	retained := mustRun(t, soakOptions()...)
	streamed := mustRun(t, soakOptions(WithCollection(CollectStream))...)

	if streamed.Log.Len() != 0 {
		t.Errorf("streaming run retained %d events", streamed.Log.Len())
	}
	if !streamed.Report.Streaming() || retained.Report.Streaming() {
		t.Fatal("report mode flags are wrong")
	}
	if streamed.Detections != retained.Detections {
		t.Errorf("detections: stream %d, retain %d", streamed.Detections, retained.Detections)
	}
	if streamed.Switches != retained.Switches {
		t.Errorf("switches: stream %d, retain %d", streamed.Switches, retained.Switches)
	}
	if len(streamed.Report.Tasks) != len(retained.Report.Tasks) {
		t.Fatalf("task counts differ: %d vs %d", len(streamed.Report.Tasks), len(retained.Report.Tasks))
	}
	for name, w := range retained.Report.Tasks {
		g := streamed.Report.Tasks[name]
		if g == nil {
			t.Fatalf("streaming report lost task %s", name)
		}
		if *g != *w {
			t.Errorf("%s summary differs:\nstream %+v\nretain %+v", name, *g, *w)
		}
	}
	if streamed.SuccessRatio() != retained.SuccessRatio() {
		t.Errorf("success ratio: stream %v, retain %v", streamed.SuccessRatio(), retained.SuccessRatio())
	}

	// Percentiles: bounded error against the exact distribution.
	eps := metrics.DefaultSketchEpsilon
	for _, task := range retained.Report.TaskNames() {
		exact := successfulResponses(retained.Report, task)
		for _, p := range []float64{5, 25, 50, 75, 90, 95, 99, 100} {
			got, ok := streamed.Report.ResponsePercentile(task, p)
			if len(exact) == 0 {
				if ok {
					t.Errorf("%s p%v: answered with no successful jobs", task, p)
				}
				continue
			}
			if !ok {
				t.Errorf("%s p%v: no streaming answer", task, p)
				continue
			}
			n := len(exact)
			rank := int(math.Ceil(p / 100 * float64(n)))
			if rank < 1 {
				rank = 1
			}
			e := int(math.Ceil(eps * float64(n)))
			lo, hi := rank-e, rank+e
			if lo < 1 {
				lo = 1
			}
			if hi > n {
				hi = n
			}
			if got < exact[lo-1] || got > exact[hi-1] {
				t.Errorf("%s p%v = %v outside ±%d-rank window [%v, %v] of %d responses",
					task, p, got, e, exact[lo-1], exact[hi-1], n)
			}
		}
	}
}

// TestSpillTraceMatchesRetainedLog: the trace spilled during a
// streaming run is byte-identical to the log a retained run writes
// afterwards, and the streaming run's own WriteLog stays empty.
func TestSpillTraceMatchesRetainedLog(t *testing.T) {
	retained := mustRun(t, soakOptions()...)
	var want bytes.Buffer
	if err := retained.WriteLog(&want); err != nil {
		t.Fatal(err)
	}

	sys, err := New(soakOptions(WithCollection(CollectStream))...)
	if err != nil {
		t.Fatal(err)
	}
	var spill bytes.Buffer
	sys.SpillTrace(&spill)
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if spill.String() != want.String() {
		t.Error("spilled trace differs from the retained log")
	}
	var empty bytes.Buffer
	if err := res.WriteLog(&empty); err != nil {
		t.Fatal(err)
	}
	if empty.Len() != 0 {
		t.Errorf("streaming WriteLog wrote %d bytes, want none", empty.Len())
	}
}

// TestStreamSoakScenarioRuns: the committed collect-block scenario
// loads, identifies as streaming, and runs with online metrics.
func TestStreamSoakScenarioRuns(t *testing.T) {
	sys, err := Load(filepath.Join("..", "testdata", "scenarios", "stream-soak.json"))
	if err != nil {
		t.Fatal(err)
	}
	sc := sys.Scenario()
	if !sc.Streaming() {
		t.Fatal("stream-soak.json must declare streaming collection")
	}
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Report.Streaming() {
		t.Error("report must be streaming")
	}
	s := res.Report.Tasks["tau1"]
	if s == nil || s.Released < 2900 {
		t.Fatalf("tau1 releases over 10 minutes: %+v", s)
	}
	if res.SuccessRatio() <= 0 || res.SuccessRatio() >= 1 {
		t.Errorf("soak success ratio = %v, want a mixed outcome", res.SuccessRatio())
	}
}

// TestCollectValidation: unknown modes and stream-with-servers are
// rejected at build time.
func TestCollectValidation(t *testing.T) {
	if _, err := New(soakOptions(WithCollection("bogus"))...); err == nil {
		t.Error("unknown collect mode must fail validation")
	}
	_, err := New(
		WithTasks(Task{Name: "hard", Priority: 10, Period: Millis(100), Deadline: Millis(100), Cost: Millis(10)}),
		WithServer(Server{
			Task:     Task{Name: "srv", Priority: 5, Period: Millis(50), Deadline: Millis(50), Cost: Millis(5)},
			Requests: []Request{{ID: "a", Arrival: Millis(10), Cost: Millis(2)}},
		}),
		WithHorizon(vtime.Second),
		WithCollection(CollectStream),
	)
	if err == nil {
		t.Error("streaming plus servers must fail validation: the service analysis needs the log")
	}
	// Retain is accepted explicitly too.
	if _, err := New(soakOptions(WithCollection(CollectRetain))...); err != nil {
		t.Errorf("explicit retain mode: %v", err)
	}
}
