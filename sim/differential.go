package sim

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/runner"
	"repro/internal/verify"
	"repro/internal/verify/gen"
	"repro/sim/scenario"
)

// The X11 differential sweep: N seeded random scenarios (package
// internal/verify/gen), each run under the online invariant oracle in
// every legal collection mode, asserting (a) zero invariant
// violations and (b) that the streamed report matches the retained
// one task-summary for task-summary. It is the registry's standing
// answer to "did the last engine change break an axiom on a workload
// no golden pins?" — a failing scenario is shrunk to a minimal
// reproducer under testdata/shrunk/ before the sweep errors out.

// DifferentialSeed and DifferentialCount parameterize the default
// sweep (the "x11" registry entry and `make ci`).
const (
	DifferentialSeed  uint64 = 0x5EED_D1FF
	DifferentialCount        = 60
)

// DifferentialPoint summarizes one scenario of the sweep.
type DifferentialPoint struct {
	// Seed derives the scenario (gen.Scenario(Seed)).
	Seed uint64 `json:"seed"`
	// Name is the generated scenario name.
	Name string `json:"name"`
	// Policy, Treatment and FaultKinds echo the drawn configuration.
	Policy     string   `json:"policy"`
	Treatment  string   `json:"treatment"`
	FaultKinds []string `json:"fault_kinds,omitempty"`
	// Tasks counts periodic tasks; Servers counts polling servers.
	Tasks   int `json:"tasks"`
	Servers int `json:"servers,omitempty"`
	// Overload marks a deliberately infeasible (skip-admission) run.
	Overload bool `json:"overload,omitempty"`
	// Modes lists the collection modes run ("retain", "stream").
	Modes []string `json:"modes"`
	// Released totals released jobs across tasks (retained run).
	Released int `json:"released"`
}

// DifferentialSweep runs the sweep over seeds derived from base. Every
// scenario must pass the oracle in each legal mode and, when both
// modes ran, produce equivalent reports; the first divergence aborts
// the sweep with a shrunk reproducer.
func DifferentialSweep(ctx context.Context, base uint64, n int, opt RunOptions) ([]DifferentialPoint, error) {
	seeds := runner.Seeds(base, n)
	return runner.Map(ctx, runner.Options{Parallelism: opt.Parallelism, Progress: opt.Progress}, seeds,
		func(ctx context.Context, i int, seed uint64) (DifferentialPoint, error) {
			return differentialOne(seed)
		})
}

// differentialOne runs one seed through the oracle in every legal
// mode and cross-checks the reports.
func differentialOne(seed uint64) (DifferentialPoint, error) {
	sc := gen.Scenario(seed)
	point := DifferentialPoint{
		Seed:      seed,
		Name:      sc.Name,
		Policy:    sc.Policy,
		Treatment: sc.Treatment,
		Tasks:     len(sc.Tasks),
		Servers:   len(sc.Servers),
		Overload:  sc.SkipAdmission,
	}
	for _, f := range sc.Faults {
		point.FaultKinds = append(point.FaultKinds, f.Kind)
	}
	modes := gen.LegalCollectModes(&sc)
	reports := make(map[string]*RunResult, len(modes))
	for _, mode := range modes {
		res, err := runDifferentialMode(sc, mode)
		if err != nil {
			// Stamp the failing mode onto the scenario before shrinking
			// and let each candidate run with its *own* collect block,
			// so a stream-only failure keeps "collect" in the written
			// reproducer (the shrinker may only drop it if the failure
			// also reproduces retained).
			failing := sc
			failing.Collect = &scenario.Collect{Mode: mode}
			repro := gen.Reproduce(gen.ReproducerPath(), failing, OracleFailure)
			return point, fmt.Errorf("seed %#x (%s collection): %w\nreproducer: %s", seed, mode, err, repro)
		}
		reports[mode] = res
		point.Modes = append(point.Modes, mode)
	}
	if res := reports[scenario.CollectRetain]; res != nil {
		for _, s := range res.Report.Tasks {
			point.Released += s.Released
		}
	}
	if len(modes) == 2 {
		if diff := reportDivergence(reports[scenario.CollectRetain], reports[scenario.CollectStream]); diff != "" {
			repro := gen.Reproduce(gen.ReproducerPath(), sc, func(cand scenario.Scenario) bool {
				if len(cand.Servers) > 0 {
					return false
				}
				r, errR := runDifferentialMode(cand, scenario.CollectRetain)
				s, errS := runDifferentialMode(cand, scenario.CollectStream)
				return errR == nil && errS == nil && reportDivergence(r, s) != ""
			})
			return point, fmt.Errorf("seed %#x: retain and stream reports diverge: %s\nreproducer (compare a retain and a stream run of it): %s", seed, diff, repro)
		}
	}
	return point, nil
}

// runDifferentialMode runs the scenario in one collection mode with
// the oracle armed.
func runDifferentialMode(sc scenario.Scenario, mode string) (*RunResult, error) {
	sc.Collect = &scenario.Collect{Mode: mode}
	return verifiedRun(sc)
}

// verifiedRun runs the scenario as declared (its own collect block)
// with the oracle armed.
func verifiedRun(sc scenario.Scenario) (*RunResult, error) {
	sc.Verify = true
	sys, err := FromScenario(sc)
	if err != nil {
		return nil, err
	}
	return sys.Run()
}

// OracleFailure reports whether running the scenario as declared
// (its own collect block), with the invariant oracle armed, ends in
// an oracle violation. A run erroring for any other reason — invalid
// spec, infeasible set — reports false, honouring gen.Failure's
// contract, so it is the shrink predicate behind the x11 sweep and
// the FuzzScenario harness alike.
func OracleFailure(cand Scenario) bool {
	_, err := verifiedRun(cand)
	var verr *verify.Error
	return errors.As(err, &verr)
}

// reportDivergence compares a retained and a streamed run of the same
// scenario on everything streaming promises to reproduce exactly:
// detections, switches, and every exported TaskSummary counter and
// response statistic. It returns "" when equivalent, else the first
// difference.
func reportDivergence(retained, streamed *RunResult) string {
	if retained.Detections != streamed.Detections {
		return fmt.Sprintf("detections %d vs %d", retained.Detections, streamed.Detections)
	}
	if retained.Switches != streamed.Switches {
		return fmt.Sprintf("switches %d vs %d", retained.Switches, streamed.Switches)
	}
	a, b := retained.Report.Tasks, streamed.Report.Tasks
	if len(a) != len(b) {
		return fmt.Sprintf("task count %d vs %d", len(a), len(b))
	}
	names := make([]string, 0, len(a))
	for name := range a {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ra, rb := a[name], b[name]
		if rb == nil {
			return fmt.Sprintf("task %s missing from streamed report", name)
		}
		type row struct {
			field    string
			av, bv   any
			diverges bool
		}
		rows := []row{
			{"released", ra.Released, rb.Released, ra.Released != rb.Released},
			{"finished", ra.Finished, rb.Finished, ra.Finished != rb.Finished},
			{"stopped", ra.Stopped, rb.Stopped, ra.Stopped != rb.Stopped},
			{"missed", ra.Missed, rb.Missed, ra.Missed != rb.Missed},
			{"failed", ra.Failed, rb.Failed, ra.Failed != rb.Failed},
			{"detected", ra.Detected, rb.Detected, ra.Detected != rb.Detected},
			{"min response", ra.MinResponse, rb.MinResponse, ra.MinResponse != rb.MinResponse},
			{"max response", ra.MaxResponse, rb.MaxResponse, ra.MaxResponse != rb.MaxResponse},
			{"mean response", ra.MeanResponse, rb.MeanResponse, ra.MeanResponse != rb.MeanResponse},
		}
		for _, r := range rows {
			if r.diverges {
				return fmt.Sprintf("task %s %s %v vs %v", name, r.field, r.av, r.bv)
			}
		}
	}
	return ""
}

// RenderDifferential prints the sweep in the artefact table style.
func RenderDifferential(points []DifferentialPoint) string {
	var b strings.Builder
	b.WriteString("X11 — differential invariant sweep: every scenario oracle-clean, retain ≡ stream\n")
	fmt.Fprintf(&b, "%-22s %-14s %-10s %5s %5s %8s  %-13s %s\n",
		"scenario", "policy", "treatment", "tasks", "srv", "released", "modes", "faults")
	var scenarios, streamed int
	for _, p := range points {
		scenarios++
		if len(p.Modes) == 2 {
			streamed++
		}
		faults := strings.Join(p.FaultKinds, ",")
		if faults == "" {
			faults = "-"
		}
		name := p.Name
		if p.Overload {
			name += "*"
		}
		fmt.Fprintf(&b, "%-22s %-14s %-10s %5d %5d %8d  %-13s %s\n",
			name, p.Policy, p.Treatment, p.Tasks, p.Servers, p.Released,
			strings.Join(p.Modes, "+"), faults)
	}
	fmt.Fprintf(&b, "%d scenarios verified, %d cross-checked retain vs stream, 0 invariant violations (* = overload, admission skipped)\n",
		scenarios, streamed)
	return b.String()
}

// The "x11" registry entry is registered from experiments.go's init,
// keeping the artefact order cmd/rtexp has always printed.
