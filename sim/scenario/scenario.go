// Package scenario defines the declarative, JSON-round-trippable
// scenario specification of the public sim API: a task system, a
// fault plan, a scheduling policy, a fault treatment, optional
// aperiodic polling servers and the run parameters (horizon, seed,
// timer resolution, stop-poll granularity and jitter), exactly the
// axes along which the paper parameterizes its platform. A Scenario
// validates structurally here and compiles into a runnable system in
// package sim; the codec (Decode/Encode) pins a canonical JSON form
// so specs stored on disk round-trip byte-for-byte.
package scenario

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/aperiodic"
	"repro/internal/detect"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/sched"
	"repro/internal/taskset"
	"repro/internal/vtime"

	// The overload baselines register their policies at init time, so
	// that Validate recognises "edf", "best-effort", "red", "d-over".
	_ "repro/internal/baselines"
)

// Duration is a vtime.Duration that marshals to the task-table string
// form ("29ms", "1.5ms", "2s") and unmarshals from either that form
// or a bare JSON number of milliseconds.
type Duration vtime.Duration

// D returns the underlying vtime.Duration.
func (d Duration) D() vtime.Duration { return vtime.Duration(d) }

// String renders the duration as vtime does ("29ms").
func (d Duration) String() string { return vtime.Duration(d).String() }

// MarshalJSON encodes the duration as its string form.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(vtime.Duration(d).String())
}

// UnmarshalJSON decodes "29ms"-style strings and bare millisecond
// numbers.
func (d *Duration) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		var ms int64
		if err := json.Unmarshal(data, &ms); err != nil {
			return fmt.Errorf("scenario: duration %s: want \"29ms\"-style string or milliseconds", data)
		}
		*d = Duration(vtime.Millis(ms))
		return nil
	}
	v, err := vtime.ParseDuration(s)
	if err != nil {
		return err
	}
	*d = Duration(v)
	return nil
}

// Task is the declarative form of one periodic task (see
// taskset.Task for the semantics of each field).
type Task struct {
	Name     string   `json:"name"`
	Priority int      `json:"priority"`
	Period   Duration `json:"period"`
	Deadline Duration `json:"deadline"`
	Cost     Duration `json:"cost"`
	Offset   Duration `json:"offset,omitempty"`
	Value    float64  `json:"value,omitempty"`
}

// FromTask converts an in-memory taskset.Task to its spec form.
func FromTask(t taskset.Task) Task {
	return Task{
		Name:     t.Name,
		Priority: t.Priority,
		Period:   Duration(t.Period),
		Deadline: Duration(t.Deadline),
		Cost:     Duration(t.Cost),
		Offset:   Duration(t.Offset),
		Value:    t.Value,
	}
}

// Task converts the spec to the simulator's task model.
func (t Task) Task() taskset.Task {
	return taskset.Task{
		Name:     t.Name,
		Priority: t.Priority,
		Period:   t.Period.D(),
		Deadline: t.Deadline.D(),
		Cost:     t.Cost.D(),
		Offset:   t.Offset.D(),
		Value:    t.Value,
	}
}

// Fault kinds accepted by the codec, mapping onto package fault's
// models.
const (
	// FaultOverrunAt injects Extra into job Job (fault.OverrunAt).
	FaultOverrunAt = "overrun-at"
	// FaultOverrunEvery injects Extra into every Every-th job
	// starting at First (fault.OverrunEvery).
	FaultOverrunEvery = "overrun-every"
	// FaultUnderrunEvery completes every job Early sooner
	// (fault.UnderrunEvery).
	FaultUnderrunEvery = "underrun-every"
	// FaultJitter adds a seeded uniform overrun in [0, Max] to every
	// job (fault.RandomJitter).
	FaultJitter = "jitter"
	// FaultInterference adds Extra to jobs released in [From, To)
	// (fault.Interference; the victim's period and offset are taken
	// from the task spec).
	FaultInterference = "interference"
)

// Fault is one declarative fault-model entry. Kind selects the model;
// the other fields parameterize it, and a field the kind does not
// read must stay zero (validation rejects set-but-ignored fields, so
// a mis-specified fault fails loudly instead of silently running a
// different scenario). A jitter fault with Seed 0 draws from the
// scenario's top-level Seed. Several entries naming the same task
// compose via fault.Chain, in order.
type Fault struct {
	Task  string   `json:"task"`
	Kind  string   `json:"kind"`
	Job   int64    `json:"job,omitempty"`
	First int64    `json:"first,omitempty"`
	Every int64    `json:"every,omitempty"`
	Extra Duration `json:"extra,omitempty"`
	Early Duration `json:"early,omitempty"`
	Max   Duration `json:"max,omitempty"`
	Seed  uint64   `json:"seed,omitempty"`
	From  Duration `json:"from,omitempty"`
	To    Duration `json:"to,omitempty"`
}

// Request is one aperiodic arrival served by a polling server.
type Request struct {
	ID       string   `json:"id"`
	Arrival  Duration `json:"arrival"`
	Cost     Duration `json:"cost"`
	Deadline Duration `json:"deadline,omitempty"`
}

// Server declares an aperiodic polling server: a periodic server task
// (cost = capacity, period = polling period) plus its arrival
// schedule. Admission control sees the server as a plain task.
type Server struct {
	Task     Task      `json:"task"`
	Requests []Request `json:"requests"`
}

// Server converts the spec to the simulator's polling server.
func (s Server) Server() *aperiodic.PollingServer {
	ps := &aperiodic.PollingServer{Task: s.Task.Task()}
	for _, r := range s.Requests {
		ps.Requests = append(ps.Requests, aperiodic.Request{
			ID:       r.ID,
			Arrival:  vtime.Time(r.Arrival),
			Cost:     r.Cost.D(),
			Deadline: r.Deadline.D(),
		})
	}
	return ps
}

// Collection modes accepted by the codec.
const (
	// CollectRetain keeps the full in-memory trace log and per-job
	// records (the default when no collect block is declared).
	CollectRetain = "retain"
	// CollectStream bounds memory for long horizons: metrics are
	// accumulated online, jobs are recycled, and the trace is spilled
	// to a caller-provided sink or discarded.
	CollectStream = "stream"
)

// Collect configures run-data retention. Declaring the block requires
// an explicit mode — an empty or unknown mode is a validation error,
// so a typo cannot silently run with unbounded memory.
type Collect struct {
	// Mode is "retain" or "stream".
	Mode string `json:"mode"`
}

// Placement modes accepted by the codec (multiprocessor scenarios).
const (
	// PlacementGlobal dispatches the M policy-best ready jobs onto
	// the M cores from one shared queue; preempted jobs may resume on
	// a different core (a migration). The default when cpus > 1.
	PlacementGlobal = "global"
	// PlacementPartitioned pins each task to one core via
	// utilization-decreasing bin packing over the exact admission
	// test; each core then schedules its subset independently and
	// nothing ever migrates.
	PlacementPartitioned = "partitioned"
)

// Partitioner heuristics accepted by the codec.
const (
	// PartitionFirstFit packs each task onto the lowest-indexed
	// feasible core (the default).
	PartitionFirstFit = "first-fit"
	// PartitionBestFit packs each task onto the feasible core with
	// the highest resulting utilization.
	PartitionBestFit = "best-fit"
)

// Treatment names are validated through detect.ParseTreatment — the
// single mapping behind the codec, sim.ParseTreatment and the verify
// oracle — so the vocabulary cannot drift between them.

// Scenario is the complete declarative description of one simulation.
// The zero values mean: fixed-priority policy, no detection, no
// faults, no servers, exact detector timers, 1 ms stop poll, no stop
// jitter, seed 0.
type Scenario struct {
	// Name and Description label the scenario in listings and logs.
	Name        string `json:"name,omitempty"`
	Description string `json:"description,omitempty"`
	// Tasks is the periodic task system (required).
	Tasks []Task `json:"tasks"`
	// Policy names a registered scheduling policy ("fixed-priority",
	// "edf", "best-effort", "red", "d-over"; empty = fixed-priority).
	Policy string `json:"policy,omitempty"`
	// CPUs is the number of identical processors (0 or 1 = the
	// paper's uniprocessor platform). Multiprocessor runs support
	// only treatment none, no servers, and the fixed-priority/edf
	// policies, and bypass the uniprocessor admission control —
	// global dispatch runs unconditionally; partitioned placement is
	// admitted per core by the bin packing itself.
	CPUs int `json:"cpus,omitempty"`
	// Placement selects the multiprocessor dispatch mode ("global" or
	// "partitioned"; empty = global). Only valid with cpus > 1.
	Placement string `json:"placement,omitempty"`
	// Partitioner names the bin-packing heuristic of partitioned
	// placement ("first-fit" or "best-fit"; empty = first-fit). Only
	// valid with placement "partitioned".
	Partitioner string `json:"partitioner,omitempty"`
	// Treatment selects the paper's fault response: none | detect |
	// stop | equitable | system (empty = none).
	Treatment string `json:"treatment,omitempty"`
	// Faults is the declarative fault plan.
	Faults []Fault `json:"faults,omitempty"`
	// Servers declares aperiodic polling servers appended to the set.
	Servers []Server `json:"servers,omitempty"`
	// Arrivals declares arrival sources (open stochastic arrivals or
	// trace replay) targeting either periodic tasks (replacing their
	// release law; requires skip_admission) or polling servers
	// (feeding their request stream). See Arrival.
	Arrivals []Arrival `json:"arrivals,omitempty"`
	// Horizon is the simulated duration (required, positive).
	Horizon Duration `json:"horizon"`
	// TimerResolution quantizes detector releases (0 = exact; "10ms"
	// reproduces jRate's PeriodicTimer).
	TimerResolution Duration `json:"timer_resolution,omitempty"`
	// StopPoll is the stop-flag poll granularity (§4.1; 0 = 1 ms).
	StopPoll Duration `json:"stop_poll,omitempty"`
	// StopJitterMax bounds the unbounded-cost poll jitter (§4.1).
	StopJitterMax Duration `json:"stop_jitter_max,omitempty"`
	// ContextSwitch charges a per-dispatch overhead.
	ContextSwitch Duration `json:"context_switch,omitempty"`
	// Seed drives the run's randomness: the §4.1 stop jitter, and
	// any jitter fault that does not carry its own seed.
	Seed uint64 `json:"seed,omitempty"`
	// SkipAdmission runs the bare engine without the paper's
	// admission control — required for overload scenarios that are
	// deliberately infeasible. Only valid with Treatment none.
	SkipAdmission bool `json:"skip_admission,omitempty"`
	// Collect selects run-data retention (nil = retain everything).
	// Streaming collection cannot combine with servers: the aperiodic
	// service analysis reads the retained log.
	Collect *Collect `json:"collect,omitempty"`
	// FastForward enables steady-state cycle detection: the engine
	// fingerprints each hyperperiod boundary and extrapolates the
	// remaining whole cycles once two consecutive boundaries match,
	// simulating only the transient and the tail. Requires streaming
	// collection and treatment none, and excludes faults, servers,
	// stop jitter, verify and non-order-only policies — everything
	// that breaks periodicity or observes the skipped events.
	FastForward bool `json:"fast_forward,omitempty"`
	// Verify enables the online invariant oracle: every trace event
	// is checked against the scheduling axioms as it is recorded and
	// the run fails on any violation (see internal/verify). Works in
	// both collection modes.
	Verify bool `json:"verify,omitempty"`
}

// Streaming reports whether the scenario declares streaming
// collection.
func (sc *Scenario) Streaming() bool {
	return sc.Collect != nil && sc.Collect.Mode == CollectStream
}

// Validate checks the scenario structurally: task-set invariants
// (including server tasks), known policy and treatment names, fault
// entries referencing declared tasks, and a positive horizon.
func (sc *Scenario) Validate() error {
	if _, err := sc.TaskSet(); err != nil {
		return err
	}
	if _, err := engine.NewPolicy(sc.Policy); err != nil {
		return err
	}
	if _, err := detect.ParseTreatment(sc.Treatment); err != nil {
		return fmt.Errorf("scenario: unknown treatment %q (want none|detect|stop|equitable|system)", sc.Treatment)
	}
	if sc.Horizon <= 0 {
		return fmt.Errorf("scenario: horizon must be positive, got %v", sc.Horizon)
	}
	if !treatmentIsNone(sc.Treatment) {
		if sc.SkipAdmission {
			return fmt.Errorf("scenario: skip_admission requires treatment none, got %q", sc.Treatment)
		}
		// Mirrors core.NewSystem's rule so Load/FromScenario reject
		// what Run would: detectors presuppose fixed-priority
		// response-time analysis.
		if sc.Policy != "" && sc.Policy != "fixed-priority" {
			return fmt.Errorf("scenario: policy %q cannot combine with treatment %q: detectors presuppose fixed-priority analysis", sc.Policy, sc.Treatment)
		}
	}
	if err := sc.validateMulticore(); err != nil {
		return err
	}
	if _, err := sc.FaultPlan(); err != nil {
		return err
	}
	for i, srv := range sc.Servers {
		if err := srv.Server().Validate(); err != nil {
			return fmt.Errorf("scenario: server %d: %w", i, err)
		}
	}
	if err := sc.validateArrivals(); err != nil {
		return err
	}
	if sc.Collect != nil {
		switch sc.Collect.Mode {
		case CollectRetain, CollectStream:
		default:
			return fmt.Errorf("scenario: unknown collect mode %q (want %q|%q)",
				sc.Collect.Mode, CollectRetain, CollectStream)
		}
		if sc.Streaming() && len(sc.Servers) > 0 {
			return fmt.Errorf("scenario: collect mode %q cannot combine with servers: aperiodic service analysis needs the retained log", CollectStream)
		}
	}
	if err := sc.validateFastForward(); err != nil {
		return err
	}
	return nil
}

// validateFastForward pins the fast_forward eligibility grammar: the
// flag may only combine with configurations whose hyperperiod cycles
// provably repeat and whose observers tolerate the analytic jump.
func (sc *Scenario) validateFastForward() error {
	if !sc.FastForward {
		return nil
	}
	if !sc.Streaming() {
		return fmt.Errorf("scenario: fast_forward requires collect mode %q", CollectStream)
	}
	if !treatmentIsNone(sc.Treatment) {
		return fmt.Errorf("scenario: fast_forward requires treatment none (detector timers re-arm every period), got %q", sc.Treatment)
	}
	if len(sc.Faults) > 0 {
		return fmt.Errorf("scenario: fast_forward cannot combine with faults (fault arrivals break hyperperiod periodicity)")
	}
	if len(sc.Servers) > 0 {
		return fmt.Errorf("scenario: fast_forward cannot combine with servers (aperiodic arrivals break hyperperiod periodicity)")
	}
	if len(sc.Arrivals) > 0 {
		return fmt.Errorf("scenario: fast_forward cannot combine with arrivals (source-driven releases have no hyperperiod)")
	}
	if sc.StopJitterMax > 0 {
		return fmt.Errorf("scenario: fast_forward cannot combine with stop_jitter_max (random draws break hyperperiod periodicity)")
	}
	if sc.Verify {
		return fmt.Errorf("scenario: fast_forward cannot combine with verify (extrapolated cycles emit no events to check)")
	}
	switch sc.Policy {
	case "", "fixed-priority", "edf":
	default:
		return fmt.Errorf("scenario: fast_forward requires an order-only policy (fixed-priority or edf), got %q — stateful overload policies are not covered by the cycle fingerprint", sc.Policy)
	}
	return nil
}

// validateMulticore checks the cpus/placement/partitioner axis: the
// codec's set-but-ignored strictness (placement without cpus, a
// partitioner without partitioned placement, skip_admission on a
// platform that has no admission control) plus the multiprocessor
// feature restrictions.
func (sc *Scenario) validateMulticore() error {
	if sc.CPUs < 0 {
		return fmt.Errorf("scenario: cpus must be non-negative, got %d", sc.CPUs)
	}
	if sc.CPUs <= 1 {
		if sc.Placement != "" {
			return fmt.Errorf("scenario: placement %q requires cpus > 1", sc.Placement)
		}
		if sc.Partitioner != "" {
			return fmt.Errorf("scenario: partitioner %q requires placement %q", sc.Partitioner, PlacementPartitioned)
		}
		return nil
	}
	switch sc.Placement {
	case "", PlacementGlobal:
		if sc.Partitioner != "" {
			return fmt.Errorf("scenario: partitioner %q requires placement %q", sc.Partitioner, PlacementPartitioned)
		}
	case PlacementPartitioned:
		switch sc.Partitioner {
		case "", PartitionFirstFit, PartitionBestFit:
		default:
			return fmt.Errorf("scenario: unknown partitioner %q (want %q|%q)", sc.Partitioner, PartitionFirstFit, PartitionBestFit)
		}
	default:
		return fmt.Errorf("scenario: unknown placement %q (want %q|%q)", sc.Placement, PlacementGlobal, PlacementPartitioned)
	}
	if !treatmentIsNone(sc.Treatment) {
		return fmt.Errorf("scenario: treatment %q requires the uniprocessor platform (cpus > 1 supports treatment none only)", sc.Treatment)
	}
	if len(sc.Servers) > 0 {
		return fmt.Errorf("scenario: servers require the uniprocessor platform")
	}
	switch sc.Policy {
	case "", "fixed-priority", "edf":
	default:
		return fmt.Errorf("scenario: policy %q is uniprocessor-only (cpus > 1 supports fixed-priority and edf)", sc.Policy)
	}
	if sc.SkipAdmission {
		return fmt.Errorf("scenario: skip_admission is uniprocessor-only (cpus > 1 already bypasses admission control)")
	}
	if sc.Partitioned() {
		if _, err := sc.Partition(); err != nil {
			return err
		}
	}
	return nil
}

// Partitioned reports whether the scenario declares partitioned
// multiprocessor placement.
func (sc *Scenario) Partitioned() bool {
	return sc.CPUs > 1 && sc.Placement == PlacementPartitioned
}

// Partition computes the task-index→core assignment of a partitioned
// scenario by running the declared bin-packing heuristic (first-fit
// decreasing unless "best-fit" is named) over the exact uniprocessor
// admission test. It returns nil for global and uniprocessor
// scenarios, and an error when the heuristic finds no feasible
// packing — a partitioned scenario that cannot be placed is invalid.
func (sc *Scenario) Partition() ([]int, error) {
	if !sc.Partitioned() {
		return nil, nil
	}
	set, err := sc.TaskSet()
	if err != nil {
		return nil, err
	}
	pack := sched.FirstFitDecreasing
	if sc.Partitioner == PartitionBestFit {
		pack = sched.BestFitDecreasing
	}
	assignment, err := pack(set, sc.CPUs)
	if err != nil {
		return nil, fmt.Errorf("scenario: partitioned placement: %w", err)
	}
	return assignment, nil
}

// TaskSet builds the validated task set of the scenario, periodic
// tasks first, then one task per declared server.
func (sc *Scenario) TaskSet() (*taskset.Set, error) {
	if len(sc.Tasks) == 0 {
		return nil, fmt.Errorf("scenario: no tasks declared")
	}
	tasks := make([]taskset.Task, 0, len(sc.Tasks)+len(sc.Servers))
	for _, t := range sc.Tasks {
		tasks = append(tasks, t.Task())
	}
	for _, srv := range sc.Servers {
		tasks = append(tasks, srv.Task.Task())
	}
	return taskset.New(tasks...)
}

// FaultPlan compiles the declarative fault entries into a fault.Plan
// (not including server polling models — package sim wires those when
// it builds the runnable system).
func (sc *Scenario) FaultPlan() (fault.Plan, error) {
	if len(sc.Faults) == 0 {
		return nil, nil
	}
	plan := fault.Plan{}
	for i, f := range sc.Faults {
		spec := sc.taskByName(f.Task)
		if spec == nil {
			return nil, fmt.Errorf("scenario: fault %d targets unknown task %q", i, f.Task)
		}
		m, err := f.model(*spec, sc.Seed)
		if err != nil {
			return nil, fmt.Errorf("scenario: fault %d (%s): %w", i, f.Task, err)
		}
		if prev, ok := plan[f.Task]; ok {
			if chain, isChain := prev.(fault.Chain); isChain {
				plan[f.Task] = append(chain, m)
			} else {
				plan[f.Task] = fault.Chain{prev, m}
			}
		} else {
			plan[f.Task] = m
		}
	}
	return plan, nil
}

func treatmentIsNone(name string) bool {
	tr, err := detect.ParseTreatment(name)
	return err == nil && tr == detect.NoDetection
}

func (sc *Scenario) taskByName(name string) *Task {
	for i := range sc.Tasks {
		if sc.Tasks[i].Name == name {
			return &sc.Tasks[i]
		}
	}
	for i := range sc.Servers {
		if sc.Servers[i].Task.Name == name {
			return &sc.Servers[i].Task
		}
	}
	return nil
}

func (f Fault) model(victim Task, scenarioSeed uint64) (fault.Model, error) {
	if err := f.checkFields(); err != nil {
		return nil, err
	}
	switch f.Kind {
	case FaultOverrunAt:
		return fault.OverrunAt{Job: f.Job, Extra: f.Extra.D()}, nil
	case FaultOverrunEvery:
		return fault.OverrunEvery{First: f.First, K: f.Every, Extra: f.Extra.D()}, nil
	case FaultUnderrunEvery:
		return fault.UnderrunEvery{Early: f.Early.D()}, nil
	case FaultJitter:
		seed := f.Seed
		if seed == 0 {
			seed = scenarioSeed
		}
		return fault.NewRandomJitter(seed, f.Max.D()), nil
	case FaultInterference:
		return fault.Interference{
			Offset: victim.Offset.D(),
			Period: victim.Period.D(),
			From:   vtime.Time(f.From),
			To:     vtime.Time(f.To),
			Extra:  f.Extra.D(),
		}, nil
	default:
		return nil, fmt.Errorf("unknown fault kind %q", f.Kind)
	}
}

// checkFields rejects parameter fields the selected kind does not
// read, extending the codec's strictness from field names to field
// relevance.
func (f Fault) checkFields() error {
	type uses struct{ job, first, every, extra, early, max, seed, window bool }
	var u uses
	switch f.Kind {
	case FaultOverrunAt:
		u = uses{job: true, extra: true}
	case FaultOverrunEvery:
		u = uses{first: true, every: true, extra: true}
	case FaultUnderrunEvery:
		u = uses{early: true}
	case FaultJitter:
		u = uses{max: true, seed: true}
	case FaultInterference:
		u = uses{extra: true, window: true}
	default:
		return fmt.Errorf("unknown fault kind %q", f.Kind)
	}
	var dead []string
	if !u.job && f.Job != 0 {
		dead = append(dead, "job")
	}
	if !u.first && f.First != 0 {
		dead = append(dead, "first")
	}
	if !u.every && f.Every != 0 {
		dead = append(dead, "every")
	}
	if !u.extra && f.Extra != 0 {
		dead = append(dead, "extra")
	}
	if !u.early && f.Early != 0 {
		dead = append(dead, "early")
	}
	if !u.max && f.Max != 0 {
		dead = append(dead, "max")
	}
	if !u.seed && f.Seed != 0 {
		dead = append(dead, "seed")
	}
	if !u.window && (f.From != 0 || f.To != 0) {
		dead = append(dead, "from/to")
	}
	if len(dead) > 0 {
		return fmt.Errorf("kind %q does not use field(s): %s", f.Kind, strings.Join(dead, ", "))
	}
	return nil
}
