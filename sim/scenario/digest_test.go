package scenario

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// goldenDigests pins the content address of every committed example
// scenario. These are the cache keys cmd/rtserved uses: if one of
// them changes, either the scenario file changed (update the entry)
// or the canonical encoding / SchemaVersion changed — in which case
// every served cache entry is invalidated, which is exactly the
// behaviour the digest exists to force. Never "fix" this test by
// recomputing blindly: first decide whether simulation results for
// unchanged files changed, and bump SchemaVersion if so.
var goldenDigests = map[string]string{
	// All entries re-pinned at SchemaVersion 3 (the arrivals block:
	// open stochastic and trace-driven workload sources joined the
	// codec, and the taskset generator's deadline-slack clamp fix
	// changed generator-derived results — periodic scenario files
	// replay byte-identically, but the cache domain separates on the
	// version).
	"aperiodic-server.json":      "sha256:0a1975c75249d0b6f1d9985dac82416ea7ff6ec25b1aa48c359b3ee1ee2fe124",
	"edf-overload.json":          "sha256:5e8f231cf1edc5394528783fe1449ba3c7037fc848ce8c55e842a45f025c74ed",
	"figure5.json":               "sha256:d2b6203993d345b6ce92bf57e5acab5c48b6942235c8028976ebb8fdc8ac9c9d",
	"jitter-stop.json":           "sha256:d7f2c2e0714664ceffe4a5908569e5c2a5b73bae6b96c25c3ed768383ba0560d",
	"multicore-global.json":      "sha256:700536825508fdbe352d9423c80f2a518906f764ad397561c4fab37700dc0ea0",
	"multicore-partitioned.json": "sha256:79c13ed9ac0ca918e91c7cf8af6ff6c05c5c4601bd2c92902c789bd232ebba1b",
	"open-arrivals.json":         "sha256:31e9cabd795328d03a29c50897d7a5b755c0bccbea3e2683182409ced7a8cf42",
	"scaling-100.json":           "sha256:b0024d310bdddbb11d5021af554d639fc9e90b0e8916335d6079cf3199648fa3",
	"stream-soak.json":           "sha256:9672f7d49150f7cca309e16f66fb7e42487ceea96bd6aed080a04336f395e5d8",
}

// TestDigestGoldens pins Digest for every testdata scenario, and
// requires every scenario file to have a pinned digest (a new example
// must be added here, so cache keys can never drift unnoticed).
func TestDigestGoldens(t *testing.T) {
	dir := filepath.Join("..", "..", "testdata", "scenarios")
	files, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != len(goldenDigests) {
		t.Errorf("testdata/scenarios has %d files but %d golden digests are pinned; add the missing entries", len(files), len(goldenDigests))
	}
	for _, path := range files {
		base := filepath.Base(path)
		t.Run(base, func(t *testing.T) {
			want, ok := goldenDigests[base]
			if !ok {
				t.Fatalf("no golden digest pinned for %s", base)
			}
			sc, err := DecodeFile(path)
			if err != nil {
				t.Fatal(err)
			}
			got, err := sc.Digest()
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("digest drifted:\n got %s\nwant %s\n(see the goldenDigests comment before updating)", got, want)
			}
		})
	}
}

// TestDigestFormatIndependent pins the canonicalization property the
// cache relies on: re-formatted JSON of the same scenario (different
// whitespace, numeric millisecond durations instead of strings)
// digests identically, and any semantic change digests differently.
func TestDigestFormatIndependent(t *testing.T) {
	path := filepath.Join("..", "..", "testdata", "scenarios", "figure5.json")
	sc, err := DecodeFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sc.Digest()
	if err != nil {
		t.Fatal(err)
	}

	// Same document, hostile formatting: strip all indentation.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mangled := strings.ReplaceAll(string(raw), "\n  ", "\n")
	sc2, err := Decode(strings.NewReader(mangled))
	if err != nil {
		t.Fatal(err)
	}
	got, err := sc2.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("re-formatted scenario digests differently: %s vs %s", got, want)
	}

	// One semantic bit flipped: different address.
	sc3 := *sc
	sc3.Seed++
	changed, err := sc3.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if changed == want {
		t.Error("semantically different scenario produced the same digest")
	}
}
