package scenario

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// goldenDigests pins the content address of every committed example
// scenario. These are the cache keys cmd/rtserved uses: if one of
// them changes, either the scenario file changed (update the entry)
// or the canonical encoding / SchemaVersion changed — in which case
// every served cache entry is invalidated, which is exactly the
// behaviour the digest exists to force. Never "fix" this test by
// recomputing blindly: first decide whether simulation results for
// unchanged files changed, and bump SchemaVersion if so.
var goldenDigests = map[string]string{
	"aperiodic-server.json": "sha256:7fd1aea13f173522d26d30c366613276296a44a703a81d159cbcdfb2623e04aa",
	"edf-overload.json":     "sha256:fba3ab372445717da758b961c20f9991660184345829f27770d2788a673d801b",
	"figure5.json":          "sha256:79310c5024409ceb7a1dcf4e063ac07fcde5fc12d3ec3989903ee8b8a259f79c",
	"jitter-stop.json":      "sha256:7081d1a24055ddf582a3f4253be11be374efece682d17f1447b3d79c06d0a71e",
	"scaling-100.json":      "sha256:dd05db4287cb3549138786cca774969286e5d02531a411548600d24e7039f43d",
	"stream-soak.json":      "sha256:fe80359163e427adef65e212ecbb044c76706cf321720d9c726e84337db40a8b",
}

// TestDigestGoldens pins Digest for every testdata scenario, and
// requires every scenario file to have a pinned digest (a new example
// must be added here, so cache keys can never drift unnoticed).
func TestDigestGoldens(t *testing.T) {
	dir := filepath.Join("..", "..", "testdata", "scenarios")
	files, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != len(goldenDigests) {
		t.Errorf("testdata/scenarios has %d files but %d golden digests are pinned; add the missing entries", len(files), len(goldenDigests))
	}
	for _, path := range files {
		base := filepath.Base(path)
		t.Run(base, func(t *testing.T) {
			want, ok := goldenDigests[base]
			if !ok {
				t.Fatalf("no golden digest pinned for %s", base)
			}
			sc, err := DecodeFile(path)
			if err != nil {
				t.Fatal(err)
			}
			got, err := sc.Digest()
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("digest drifted:\n got %s\nwant %s\n(see the goldenDigests comment before updating)", got, want)
			}
		})
	}
}

// TestDigestFormatIndependent pins the canonicalization property the
// cache relies on: re-formatted JSON of the same scenario (different
// whitespace, numeric millisecond durations instead of strings)
// digests identically, and any semantic change digests differently.
func TestDigestFormatIndependent(t *testing.T) {
	path := filepath.Join("..", "..", "testdata", "scenarios", "figure5.json")
	sc, err := DecodeFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sc.Digest()
	if err != nil {
		t.Fatal(err)
	}

	// Same document, hostile formatting: strip all indentation.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mangled := strings.ReplaceAll(string(raw), "\n  ", "\n")
	sc2, err := Decode(strings.NewReader(mangled))
	if err != nil {
		t.Fatal(err)
	}
	got, err := sc2.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("re-formatted scenario digests differently: %s vs %s", got, want)
	}

	// One semantic bit flipped: different address.
	sc3 := *sc
	sc3.Seed++
	changed, err := sc3.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if changed == want {
		t.Error("semantically different scenario produced the same digest")
	}
}
