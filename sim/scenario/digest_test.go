package scenario

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// goldenDigests pins the content address of every committed example
// scenario. These are the cache keys cmd/rtserved uses: if one of
// them changes, either the scenario file changed (update the entry)
// or the canonical encoding / SchemaVersion changed — in which case
// every served cache entry is invalidated, which is exactly the
// behaviour the digest exists to force. Never "fix" this test by
// recomputing blindly: first decide whether simulation results for
// unchanged files changed, and bump SchemaVersion if so.
var goldenDigests = map[string]string{
	// All entries re-pinned at SchemaVersion 2 (the multiprocessor
	// axis: cpus/placement/partitioner joined the codec and the
	// engine grew M-core dispatch — uniprocessor results are
	// unchanged, but the cache domain separates on the version).
	"aperiodic-server.json":      "sha256:ea8f3939cef1e6c7e12e502c7a7979f15a53489d167ed40cde61ec140c31f484",
	"edf-overload.json":          "sha256:d1e436344878fe69c7cb675d09d356c9a8fa9cbaf44c19e75b98382f4ffea9ed",
	"figure5.json":               "sha256:39678e1a9b7f136fa236373863e42b68d7e5997c7b99fc9dc87c0a90b8d7aa34",
	"jitter-stop.json":           "sha256:39fcc7e1c14b903b3c808505a1fd7b182651bbddae9e0d32d65260c6cc657a4b",
	"multicore-global.json":      "sha256:d138fe97c0e959af5cefb60f2ff77f49f4bebba5edb1ef667858dad7aec76f0d",
	"multicore-partitioned.json": "sha256:e68d0ce03011e74388c1d2b6ec53927e42b224a0d4622c24b4806c6c97660028",
	"scaling-100.json":           "sha256:b91d93fbf80407a2d749a1588919c00257073088a14e8743953c281e46016004",
	"stream-soak.json":           "sha256:eb0e358d1d681cf77e2d8a3494cdd90142d4d2f46f95dd3e3782486e389377d5",
}

// TestDigestGoldens pins Digest for every testdata scenario, and
// requires every scenario file to have a pinned digest (a new example
// must be added here, so cache keys can never drift unnoticed).
func TestDigestGoldens(t *testing.T) {
	dir := filepath.Join("..", "..", "testdata", "scenarios")
	files, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != len(goldenDigests) {
		t.Errorf("testdata/scenarios has %d files but %d golden digests are pinned; add the missing entries", len(files), len(goldenDigests))
	}
	for _, path := range files {
		base := filepath.Base(path)
		t.Run(base, func(t *testing.T) {
			want, ok := goldenDigests[base]
			if !ok {
				t.Fatalf("no golden digest pinned for %s", base)
			}
			sc, err := DecodeFile(path)
			if err != nil {
				t.Fatal(err)
			}
			got, err := sc.Digest()
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("digest drifted:\n got %s\nwant %s\n(see the goldenDigests comment before updating)", got, want)
			}
		})
	}
}

// TestDigestFormatIndependent pins the canonicalization property the
// cache relies on: re-formatted JSON of the same scenario (different
// whitespace, numeric millisecond durations instead of strings)
// digests identically, and any semantic change digests differently.
func TestDigestFormatIndependent(t *testing.T) {
	path := filepath.Join("..", "..", "testdata", "scenarios", "figure5.json")
	sc, err := DecodeFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sc.Digest()
	if err != nil {
		t.Fatal(err)
	}

	// Same document, hostile formatting: strip all indentation.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mangled := strings.ReplaceAll(string(raw), "\n  ", "\n")
	sc2, err := Decode(strings.NewReader(mangled))
	if err != nil {
		t.Fatal(err)
	}
	got, err := sc2.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("re-formatted scenario digests differently: %s vs %s", got, want)
	}

	// One semantic bit flipped: different address.
	sc3 := *sc
	sc3.Seed++
	changed, err := sc3.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if changed == want {
		t.Error("semantically different scenario produced the same digest")
	}
}
