package scenario

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/vtime"
)

func ms(n int64) Duration { return Duration(vtime.Millis(n)) }

func validScenario() Scenario {
	return Scenario{
		Name: "t",
		Tasks: []Task{
			{Name: "tau1", Priority: 2, Period: ms(10), Deadline: ms(10), Cost: ms(2)},
			{Name: "tau2", Priority: 1, Period: ms(20), Deadline: ms(20), Cost: ms(5)},
		},
		Horizon: ms(100),
	}
}

// TestRoundTripTestdata pins the codec: every committed scenario file
// decodes, validates, and re-encodes to the exact bytes on disk.
func TestRoundTripTestdata(t *testing.T) {
	dir := filepath.Join("..", "..", "testdata", "scenarios")
	files, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 3 {
		t.Fatalf("want at least 3 example scenarios in %s, found %d", dir, len(files))
	}
	for _, path := range files {
		t.Run(filepath.Base(path), func(t *testing.T) {
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			sc, err := DecodeFile(path)
			if err != nil {
				t.Fatal(err)
			}
			got, err := Marshal(sc)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("decode→encode is not the identity:\n--- disk ---\n%s\n--- re-encoded ---\n%s", want, got)
			}
		})
	}
}

func TestDurationJSON(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want vtime.Duration
	}{
		{`"29ms"`, vtime.Millis(29)},
		{`"1.5ms"`, vtime.Micros(1500)},
		{`"2s"`, 2 * vtime.Second},
		{`"250us"`, vtime.Micros(250)},
		{`40`, vtime.Millis(40)}, // bare number = milliseconds
	} {
		var d Duration
		if err := json.Unmarshal([]byte(tc.in), &d); err != nil {
			t.Errorf("unmarshal %s: %v", tc.in, err)
			continue
		}
		if d.D() != tc.want {
			t.Errorf("unmarshal %s = %v, want %v", tc.in, d.D(), tc.want)
		}
	}
	out, err := json.Marshal(ms(29))
	if err != nil || string(out) != `"29ms"` {
		t.Errorf("marshal 29ms = %s, %v", out, err)
	}
	var d Duration
	if err := json.Unmarshal([]byte(`true`), &d); err == nil {
		t.Error("non-duration JSON must error")
	}
}

func TestDecodeRejectsUnknownFields(t *testing.T) {
	_, err := Decode(strings.NewReader(`{"tasks": [], "horizont": "1s"}`))
	if err == nil || !strings.Contains(err.Error(), "horizont") {
		t.Errorf("unknown field must be named in the error, got %v", err)
	}
}

func TestValidate(t *testing.T) {
	base := validScenario()
	if err := base.Validate(); err != nil {
		t.Fatalf("valid scenario rejected: %v", err)
	}
	for name, mutate := range map[string]func(*Scenario){
		"no tasks":          func(sc *Scenario) { sc.Tasks = nil },
		"zero horizon":      func(sc *Scenario) { sc.Horizon = 0 },
		"unknown policy":    func(sc *Scenario) { sc.Policy = "round-robin" },
		"unknown treatment": func(sc *Scenario) { sc.Treatment = "reboot" },
		"skip+treatment":    func(sc *Scenario) { sc.SkipAdmission = true; sc.Treatment = "stop" },
		"policy+treatment":  func(sc *Scenario) { sc.Policy = "edf"; sc.Treatment = "stop" },
		"dup priority":      func(sc *Scenario) { sc.Tasks[1].Priority = sc.Tasks[0].Priority },
		"fault unknown task": func(sc *Scenario) {
			sc.Faults = []Fault{{Task: "ghost", Kind: FaultOverrunAt}}
		},
		"fault unknown kind": func(sc *Scenario) {
			sc.Faults = []Fault{{Task: "tau1", Kind: "explode"}}
		},
		"fault dead field": func(sc *Scenario) {
			// overrun-every does not read job: the writer probably
			// meant overrun-at or first.
			sc.Faults = []Fault{{Task: "tau1", Kind: FaultOverrunEvery, Job: 5, Extra: ms(1)}}
		},
		"fault dead window": func(sc *Scenario) {
			sc.Faults = []Fault{{Task: "tau1", Kind: FaultOverrunAt, Job: 1, Extra: ms(1), From: ms(10)}}
		},
		"bad server": func(sc *Scenario) {
			sc.Servers = []Server{{Task: Task{Name: "srv"}}}
		},
	} {
		sc := validScenario()
		mutate(&sc)
		if err := sc.Validate(); err == nil {
			t.Errorf("%s: validation must fail", name)
		}
	}
}

// TestValidateFastForward pins the fast_forward grammar: streaming
// collection and treatment none required; faults, servers, stop
// jitter, the online oracle and stateful overload policies excluded.
func TestValidateFastForward(t *testing.T) {
	ff := func() Scenario {
		sc := validScenario()
		sc.FastForward = true
		sc.Collect = &Collect{Mode: CollectStream}
		return sc
	}
	base := ff()
	if err := base.Validate(); err != nil {
		t.Fatalf("eligible fast-forward scenario rejected: %v", err)
	}
	for _, policy := range []string{"", "fixed-priority", "edf"} {
		sc := ff()
		sc.Policy = policy
		if err := sc.Validate(); err != nil {
			t.Errorf("policy %q must stay eligible: %v", policy, err)
		}
	}
	for name, mutate := range map[string]func(*Scenario){
		"retained collection": func(sc *Scenario) { sc.Collect = nil },
		"treatment":           func(sc *Scenario) { sc.Treatment = "stop" },
		"fault plan": func(sc *Scenario) {
			sc.Faults = []Fault{{Task: "tau1", Kind: FaultOverrunAt, Job: 1, Extra: ms(1)}}
		},
		"server": func(sc *Scenario) {
			sc.Servers = []Server{{
				Task:     Task{Name: "srv", Priority: 3, Period: ms(40), Deadline: ms(40), Cost: ms(2)},
				Requests: []Request{{ID: "r1", Arrival: ms(5), Cost: ms(1)}},
			}}
		},
		"stop jitter":     func(sc *Scenario) { sc.StopJitterMax = ms(1) },
		"online oracle":   func(sc *Scenario) { sc.Verify = true },
		"stateful policy": func(sc *Scenario) { sc.Policy = "d-over"; sc.SkipAdmission = true },
	} {
		sc := ff()
		mutate(&sc)
		if err := sc.Validate(); err == nil {
			t.Errorf("%s: fast-forward validation must fail", name)
		} else if !strings.Contains(err.Error(), "fast_forward") && !strings.Contains(err.Error(), "servers") {
			// Servers already conflict with streaming collection, which
			// validation reports first; everything else must name the
			// fast_forward field.
			t.Errorf("%s: error must name fast_forward, got %v", name, err)
		}
	}
}

func TestKnownPoliciesAndTreatmentsValidate(t *testing.T) {
	for _, policy := range []string{"", "fixed-priority", "edf", "best-effort", "red", "d-over"} {
		sc := validScenario()
		sc.Policy = policy
		if err := sc.Validate(); err != nil {
			t.Errorf("policy %q: %v", policy, err)
		}
	}
	for _, tr := range []string{"", "none", "detect", "stop", "equitable", "system",
		"no-detection", "detect-only", "stop-equitable", "equitable-allowance", "system-allowance"} {
		sc := validScenario()
		sc.Treatment = tr
		if err := sc.Validate(); err != nil {
			t.Errorf("treatment %q: %v", tr, err)
		}
	}
}

func TestFaultPlanComposition(t *testing.T) {
	sc := validScenario()
	sc.Faults = []Fault{
		{Task: "tau1", Kind: FaultOverrunAt, Job: 3, Extra: ms(5)},
		{Task: "tau1", Kind: FaultOverrunEvery, First: 10, Every: 2, Extra: ms(1)},
		{Task: "tau2", Kind: FaultUnderrunEvery, Early: ms(2)},
	}
	plan, err := sc.FaultPlan()
	if err != nil {
		t.Fatal(err)
	}
	chain, ok := plan["tau1"].(fault.Chain)
	if !ok || len(chain) != 2 {
		t.Fatalf("tau1 model = %T %v, want 2-element chain", plan["tau1"], plan["tau1"])
	}
	// Job 3 hits only the OverrunAt; job 10 only the OverrunEvery.
	if got := chain.ActualCost(3, vtime.Millis(2)); got != vtime.Millis(7) {
		t.Errorf("job 3 cost = %v, want 7ms", got)
	}
	if got := chain.ActualCost(10, vtime.Millis(2)); got != vtime.Millis(3) {
		t.Errorf("job 10 cost = %v, want 3ms", got)
	}
	if got := plan.For("tau2").ActualCost(0, vtime.Millis(5)); got != vtime.Millis(3) {
		t.Errorf("tau2 cost = %v, want 3ms", got)
	}
}

// TestJitterSeedDefaultsToScenarioSeed: a jitter fault without its
// own seed must vary with the scenario's top-level seed, so seed
// sweeps actually sample different noise.
func TestJitterSeedDefaultsToScenarioSeed(t *testing.T) {
	draw := func(topSeed, faultSeed uint64) vtime.Duration {
		sc := validScenario()
		sc.Seed = topSeed
		sc.Faults = []Fault{{Task: "tau1", Kind: FaultJitter, Seed: faultSeed, Max: ms(5)}}
		plan, err := sc.FaultPlan()
		if err != nil {
			t.Fatal(err)
		}
		return plan.For("tau1").ActualCost(0, vtime.Millis(2))
	}
	if draw(1, 0) == draw(2, 0) {
		t.Error("jitter with no fault seed must follow the scenario seed")
	}
	if draw(1, 42) != draw(2, 42) {
		t.Error("an explicit fault seed must override the scenario seed")
	}
}

func TestInterferenceUsesVictimReleasePattern(t *testing.T) {
	sc := validScenario()
	sc.Tasks[0].Offset = ms(5)
	sc.Faults = []Fault{{Task: "tau1", Kind: FaultInterference, From: ms(10), To: ms(30), Extra: ms(4)}}
	plan, err := sc.FaultPlan()
	if err != nil {
		t.Fatal(err)
	}
	m := plan.For("tau1")
	// Releases at 5, 15, 25, 35 ms: jobs 1 and 2 fall inside [10,30).
	for q, want := range map[int64]vtime.Duration{
		0: vtime.Millis(2), 1: vtime.Millis(6), 2: vtime.Millis(6), 3: vtime.Millis(2),
	} {
		if got := m.ActualCost(q, vtime.Millis(2)); got != want {
			t.Errorf("job %d cost = %v, want %v", q, got, want)
		}
	}
}

func TestTaskSetIncludesServers(t *testing.T) {
	sc := validScenario()
	sc.Servers = []Server{{
		Task: Task{Name: "srv", Priority: 9, Period: ms(50), Deadline: ms(50), Cost: ms(10)},
		Requests: []Request{
			{ID: "r1", Arrival: ms(10), Cost: ms(5)},
		},
	}}
	set, err := sc.TaskSet()
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != 3 || set.ByName("srv") == nil {
		t.Errorf("set = %v, want periodic tasks plus server", set)
	}
}
