package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Decode reads one scenario from JSON. Unknown fields are rejected so
// a typo in a spec file fails loudly instead of silently running a
// different scenario. The decoded scenario is validated.
func Decode(r io.Reader) (*Scenario, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var sc Scenario
	if err := dec.Decode(&sc); err != nil {
		return nil, fmt.Errorf("scenario: decode: %w", err)
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	return &sc, nil
}

// DecodeFile decodes and validates the scenario stored at path.
func DecodeFile(path string) (*Scenario, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc, err := Decode(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return sc, nil
}

// Encode writes the canonical JSON form of the scenario: two-space
// indentation, struct field order, durations as "29ms" strings, a
// trailing newline. Decode∘Encode is the identity on canonical files,
// which the testdata round-trip test pins byte-for-byte.
func Encode(w io.Writer, sc *Scenario) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.SetEscapeHTML(false)
	return enc.Encode(sc)
}

// Marshal returns the canonical JSON encoding of the scenario.
func Marshal(sc *Scenario) ([]byte, error) {
	var buf bytes.Buffer
	if err := Encode(&buf, sc); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
