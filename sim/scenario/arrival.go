package scenario

import (
	"fmt"
	"os"
	"strings"

	"repro/internal/aperiodic"
	"repro/internal/taskset"
	"repro/internal/vtime"
)

// Arrival source kinds accepted by the codec, mapping onto package
// taskset's sources.
const (
	// ArrivalPoisson releases jobs with independent exponential
	// inter-arrival gaps (taskset.PoissonSource).
	ArrivalPoisson = taskset.SourcePoisson
	// ArrivalMMPP is the two-state bursty Markov-modulated Poisson
	// process with fixed state dwells (taskset.MMPPSource).
	ArrivalMMPP = taskset.SourceMMPP
	// ArrivalTrace replays a recorded (release, cost, deadline) log
	// verbatim (taskset.TraceSource).
	ArrivalTrace = taskset.SourceTrace
)

// TraceRecord is the declarative form of one trace-source record: a
// release instant (offset from time zero), its execution cost, and an
// optional relative deadline (omitted = the target's nominal
// deadline).
type TraceRecord struct {
	Release  Duration `json:"release"`
	Cost     Duration `json:"cost"`
	Deadline Duration `json:"deadline,omitempty"`
}

// Record converts the spec to the simulator's trace-record model.
func (r TraceRecord) Record() taskset.TraceRecord {
	return taskset.TraceRecord{Release: r.Release.D(), Cost: r.Cost.D(), Deadline: r.Deadline.D()}
}

// FromTraceRecord converts an in-memory record to its spec form.
func FromTraceRecord(r taskset.TraceRecord) TraceRecord {
	return TraceRecord{Release: Duration(r.Release), Cost: Duration(r.Cost), Deadline: Duration(r.Deadline)}
}

// Arrival declares one arrival source. Exactly one of Task / Server
// names the target: a task-targeted source replaces that periodic
// task's release law (open arrivals on the bare engine — requires
// skip_admission, since stochastic releases have no periodic
// admission analysis), while a server-targeted source feeds a polling
// server's aperiodic request stream (the server task itself stays
// periodic and admission-analysable). Kind selects the source; as
// with faults, a field the kind/target combination does not read must
// stay zero, so a mis-specified source fails loudly instead of
// silently running a different workload.
//
// A stochastic source with Seed 0 draws from the scenario's top-level
// Seed. A trace source takes its records either inline (Records) or
// from a JSON-lines file (Path) — exactly one of the two. Note Path
// contents are outside the scenario's canonical bytes and therefore
// outside its Digest; digest-keyed consumers (the rtserved cache)
// reject path-based sources for exactly that reason.
type Arrival struct {
	Task       string        `json:"task,omitempty"`
	Server     string        `json:"server,omitempty"`
	Kind       string        `json:"kind"`
	Mean       Duration      `json:"mean,omitempty"`
	BurstMean  Duration      `json:"burst_mean,omitempty"`
	Dwell      Duration      `json:"dwell,omitempty"`
	BurstDwell Duration      `json:"burst_dwell,omitempty"`
	Seed       uint64        `json:"seed,omitempty"`
	Cost       Duration      `json:"cost,omitempty"`
	Deadline   Duration      `json:"deadline,omitempty"`
	Records    []TraceRecord `json:"records,omitempty"`
	Path       string        `json:"path,omitempty"`
}

// validateArrivals checks the arrivals block structurally: known
// kinds, exactly-one target that exists, at most one source per
// target, per-kind field relevance, and the platform restrictions
// (task sources ride the bare engine, server sources need a server
// with no static request schedule).
func (sc *Scenario) validateArrivals() error {
	if len(sc.Arrivals) == 0 {
		return nil
	}
	seenTask := make(map[string]bool)
	seenServer := make(map[string]bool)
	for i, a := range sc.Arrivals {
		if err := a.check(); err != nil {
			return fmt.Errorf("scenario: arrival %d: %w", i, err)
		}
		switch {
		case a.Task != "":
			if !sc.SkipAdmission {
				return fmt.Errorf("scenario: arrival %d: task-targeted sources require skip_admission (open arrivals have no periodic admission analysis)", i)
			}
			found := false
			for _, t := range sc.Tasks {
				if t.Name == a.Task {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("scenario: arrival %d targets unknown task %q", i, a.Task)
			}
			if seenTask[a.Task] {
				return fmt.Errorf("scenario: arrival %d: task %q already has a source", i, a.Task)
			}
			seenTask[a.Task] = true
		default: // a.Server != "", enforced by check
			var srv *Server
			for s := range sc.Servers {
				if sc.Servers[s].Task.Name == a.Server {
					srv = &sc.Servers[s]
					break
				}
			}
			if srv == nil {
				return fmt.Errorf("scenario: arrival %d targets unknown server %q", i, a.Server)
			}
			if len(srv.Requests) > 0 {
				return fmt.Errorf("scenario: arrival %d: server %q declares %d static requests; a source-fed server owns its whole request stream", i, a.Server, len(srv.Requests))
			}
			if seenServer[a.Server] {
				return fmt.Errorf("scenario: arrival %d: server %q already has a source", i, a.Server)
			}
			seenServer[a.Server] = true
		}
	}
	return nil
}

// check validates one arrival entry in isolation: target shape, kind,
// required parameters, and set-but-ignored field rejection.
func (a Arrival) check() error {
	if (a.Task != "") == (a.Server != "") {
		return fmt.Errorf("exactly one of task/server must name the target")
	}
	type uses struct{ mean, burst, cost, deadline, seed, records bool }
	var u uses
	switch a.Kind {
	case ArrivalPoisson:
		u = uses{mean: true, seed: true, cost: a.Server != "", deadline: a.Server != ""}
		if a.Mean <= 0 {
			return fmt.Errorf("kind %q needs a positive mean inter-arrival, got %v", a.Kind, a.Mean)
		}
	case ArrivalMMPP:
		u = uses{mean: true, burst: true, seed: true, cost: a.Server != "", deadline: a.Server != ""}
		switch {
		case a.Mean <= 0:
			return fmt.Errorf("kind %q needs a positive mean inter-arrival, got %v", a.Kind, a.Mean)
		case a.BurstMean <= 0:
			return fmt.Errorf("kind %q needs a positive burst_mean, got %v", a.Kind, a.BurstMean)
		case a.Dwell <= 0:
			return fmt.Errorf("kind %q needs a positive dwell, got %v", a.Kind, a.Dwell)
		case a.BurstDwell <= 0:
			return fmt.Errorf("kind %q needs a positive burst_dwell, got %v", a.Kind, a.BurstDwell)
		}
	case ArrivalTrace:
		u = uses{records: true}
		if (a.Path != "") == (len(a.Records) > 0) {
			return fmt.Errorf("kind %q needs exactly one of records/path (an empty trace is a path to an empty file)", a.Kind)
		}
		for i, r := range a.Records {
			if err := r.Record().Validate(); err != nil {
				return fmt.Errorf("record %d: %w", i+1, err)
			}
		}
	default:
		return fmt.Errorf("unknown arrival kind %q (want %q|%q|%q)", a.Kind, ArrivalPoisson, ArrivalMMPP, ArrivalTrace)
	}
	if u.cost && a.Cost <= 0 {
		return fmt.Errorf("server-fed %q source needs a positive request cost", a.Kind)
	}
	var dead []string
	if !u.mean && a.Mean != 0 {
		dead = append(dead, "mean")
	}
	if !u.burst && (a.BurstMean != 0 || a.Dwell != 0 || a.BurstDwell != 0) {
		dead = append(dead, "burst_mean/dwell/burst_dwell")
	}
	if !u.cost && a.Cost != 0 {
		dead = append(dead, "cost")
	}
	if !u.deadline && a.Deadline != 0 {
		dead = append(dead, "deadline")
	}
	if !u.seed && a.Seed != 0 {
		dead = append(dead, "seed")
	}
	if !u.records && (len(a.Records) > 0 || a.Path != "") {
		dead = append(dead, "records/path")
	}
	if len(dead) > 0 {
		return fmt.Errorf("kind %q does not use field(s): %s", a.Kind, strings.Join(dead, ", "))
	}
	if a.Deadline < 0 {
		return fmt.Errorf("deadline must be non-negative, got %v", a.Deadline)
	}
	return nil
}

// source compiles the arrival into a fresh taskset.Source iterator,
// reading a trace Path from disk. Each call returns an independent
// iterator positioned at the first release — the engine and the
// verify oracle each need their own.
func (a Arrival) source(scenarioSeed uint64) (taskset.Source, error) {
	seed := a.Seed
	if seed == 0 {
		seed = scenarioSeed
	}
	switch a.Kind {
	case ArrivalPoisson:
		return taskset.NewPoisson(a.Mean.D(), seed)
	case ArrivalMMPP:
		return taskset.NewMMPP(a.Mean.D(), a.BurstMean.D(), a.Dwell.D(), a.BurstDwell.D(), seed)
	case ArrivalTrace:
		records, err := a.traceRecords()
		if err != nil {
			return nil, err
		}
		return taskset.NewTrace(records)
	default:
		return nil, fmt.Errorf("unknown arrival kind %q", a.Kind)
	}
}

// traceRecords resolves a trace source's records, from the inline
// block or the JSON-lines file at Path.
func (a Arrival) traceRecords() ([]taskset.TraceRecord, error) {
	if a.Path != "" {
		data, err := os.ReadFile(a.Path)
		if err != nil {
			return nil, fmt.Errorf("trace source: %w", err)
		}
		records, err := taskset.ParseTrace(data)
		if err != nil {
			return nil, fmt.Errorf("trace source %s: %w", a.Path, err)
		}
		return records, nil
	}
	records := make([]taskset.TraceRecord, len(a.Records))
	for i, r := range a.Records {
		records[i] = r.Record()
	}
	return records, nil
}

// TaskSources compiles the task-targeted arrivals into a Source slice
// aligned index-for-index with TaskSet() order (periodic tasks first,
// then server tasks; server entries stay nil — a server task's own
// releases remain periodic). It returns nil when no task-targeted
// source is declared. Each call builds fresh iterators.
func (sc *Scenario) TaskSources() ([]taskset.Source, error) {
	if err := sc.validateArrivals(); err != nil {
		return nil, err
	}
	var sources []taskset.Source
	for _, a := range sc.Arrivals {
		if a.Task == "" {
			continue
		}
		src, err := a.source(sc.Seed)
		if err != nil {
			return nil, fmt.Errorf("scenario: arrival for task %q: %w", a.Task, err)
		}
		if sources == nil {
			sources = make([]taskset.Source, len(sc.Tasks)+len(sc.Servers))
		}
		for i, t := range sc.Tasks {
			if t.Name == a.Task {
				sources[i] = src
				break
			}
		}
	}
	return sources, nil
}

// ServerRequests materializes the request stream of the named
// server's arrival source up to the horizon, as the static schedule
// the polling server runs. Request IDs are sequential
// ("name-0001", ...). It returns (nil, nil) when the server has no
// source. The materialization is what makes source-fed servers
// deterministic for analysis: the polling model replays exactly this
// schedule.
func (sc *Scenario) ServerRequests(server string) ([]aperiodic.Request, error) {
	for _, a := range sc.Arrivals {
		if a.Server != server {
			continue
		}
		src, err := a.source(sc.Seed)
		if err != nil {
			return nil, fmt.Errorf("scenario: arrival for server %q: %w", server, err)
		}
		horizon := vtime.Time(sc.Horizon)
		var reqs []aperiodic.Request
		for {
			rel, ok := src.Next()
			if !ok || rel.At.After(horizon) {
				break
			}
			cost, deadline := a.Cost.D(), a.Deadline.D()
			if rel.Cost > 0 {
				cost = rel.Cost
			}
			if rel.Deadline > 0 {
				deadline = rel.Deadline
			}
			reqs = append(reqs, aperiodic.Request{
				ID:       fmt.Sprintf("%s-%04d", server, len(reqs)+1),
				Arrival:  rel.At,
				Cost:     cost,
				Deadline: deadline,
			})
		}
		return reqs, nil
	}
	return nil, nil
}

// HasPathSource reports whether any declared arrival reads a trace
// file from disk. Path contents are invisible to the scenario digest,
// so content-addressed consumers (the rtserved cache) must refuse
// such scenarios rather than alias distinct workloads to one cache
// entry.
func (sc *Scenario) HasPathSource() bool {
	for _, a := range sc.Arrivals {
		if a.Path != "" {
			return true
		}
	}
	return false
}
