package scenario

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
)

// SchemaVersion stamps the scenario schema and the engine's
// behavioural contract that a digest covers. Two scenarios with equal
// digests are guaranteed to produce byte-identical reports, so any
// change that alters simulation results for an unchanged scenario
// file — a new codec field with a non-neutral default, a policy
// tie-break change, a detector-offset fix — MUST bump this constant,
// or a content-addressed result cache (cmd/rtserved) would keep
// serving stale results for the old behaviour. Purely additive codec
// fields whose zero value preserves old results do not need a bump:
// old files still encode to the same canonical bytes.
// v3: the arrivals block (open/trace workload sources). The field is
// additive with a neutral zero, but v3 also covers the taskset
// generator's deadline-slack clamp fix — generator-derived scenarios
// (acceptance sweeps) changed results, so cached reports from v2 must
// not be served.
const SchemaVersion = 3

// digestDomain separates scenario digests from any other SHA-256 use
// and binds them to the schema version.
const digestDomain = "repro/sim/scenario@v%d\n"

// Digest returns the content address of the scenario:
// "sha256:<hex>" over a domain-separation line carrying SchemaVersion
// followed by the canonical JSON encoding. Because Encode is
// canonical (fixed field order, "29ms" duration strings, two-space
// indent, trailing newline), semantically identical scenarios loaded
// from differently-formatted JSON digest identically, and the golden
// test over testdata/scenarios pins every committed digest so cache
// keys cannot drift silently.
func (sc *Scenario) Digest() (string, error) {
	b, err := Marshal(sc)
	if err != nil {
		return "", fmt.Errorf("scenario: digest: %w", err)
	}
	h := sha256.New()
	fmt.Fprintf(h, digestDomain, SchemaVersion)
	h.Write(b)
	return "sha256:" + hex.EncodeToString(h.Sum(nil)), nil
}
