package sim

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strings"

	"repro/internal/metrics"
	"repro/internal/runner"
	"repro/internal/verify/gen"
	"repro/sim/scenario"
)

// Process-sharded sweeps: ShardedSweep fans whole scenarios across N
// worker *processes* (runner.MapProc) instead of goroutines. Each
// worker runs its scenario with streaming collection and streams back
// the serialized accumulator state (metrics.AccumulatorState), which
// the parent turns back into reports — field-for-field equal to an
// in-process run, the property the x12 sweep pins. Worker processes
// are the current binary re-executing itself: RunShardWorkerIfEnv is
// the hook a main() calls first, and cmd/rtworker is the standalone
// worker binary.

// ShardWorkerEnv, when set in a process's environment, marks it as a
// shard worker: RunShardWorkerIfEnv serves scenario jobs on
// stdin/stdout and exits instead of running the program.
const ShardWorkerEnv = "RTSIM_SHARD_WORKER"

// ShardResult is what a worker streams back for one scenario: the
// run's summary counters and the full serialized accumulator —
// everything needed to rebuild the report (ShardReport) or fold many
// shards into an aggregate (metrics.Accumulator.Absorb).
type ShardResult struct {
	Name       string                    `json:"name"`
	Switches   int64                     `json:"switches"`
	Detections int64                     `json:"detections,omitempty"`
	Metrics    *metrics.AccumulatorState `json:"metrics"`
}

// Report rebuilds the worker-side streaming report.
func (r *ShardResult) Report() (*metrics.Report, error) {
	return metrics.ReportFromState(r.Metrics)
}

// ServeShardWorker is the worker loop: scenario in, ShardResult out,
// until EOF on r. Scenarios must declare streaming collection (the
// serialized accumulator is the wire format; a retained run has no
// accumulator to ship).
func ServeShardWorker(r io.Reader, w io.Writer) error {
	return runner.ServeProc(r, w, func(job json.RawMessage) (json.RawMessage, error) {
		sc, err := scenario.Decode(bytes.NewReader(job))
		if err != nil {
			return nil, err
		}
		if !sc.Streaming() {
			return nil, fmt.Errorf("sim: shard worker needs streaming collection, scenario %q retains", sc.Name)
		}
		sys, err := FromScenario(*sc)
		if err != nil {
			return nil, err
		}
		res, err := sys.Run()
		if err != nil {
			return nil, err
		}
		st, err := metrics.StateFromReport(res.Report)
		if err != nil {
			return nil, err
		}
		return json.Marshal(ShardResult{
			Name:       sc.Name,
			Switches:   res.Switches,
			Detections: res.Detections,
			Metrics:    st,
		})
	})
}

// RunShardWorkerIfEnv turns the current process into a shard worker
// when ShardWorkerEnv is set, and never returns in that case. Call it
// first in main() of any binary that launches ShardedSweep with the
// default self-exec command.
func RunShardWorkerIfEnv() {
	if os.Getenv(ShardWorkerEnv) == "" {
		return
	}
	if err := ServeShardWorker(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	os.Exit(0)
}

// ShardOptions tunes a ShardedSweep.
type ShardOptions struct {
	// Workers is the worker-process count (<= 0 means 1).
	Workers int
	// MaxRetries bounds per-job re-dispatches after worker deaths
	// (<= 0 means 2 — see runner.ProcOptions).
	MaxRetries int
	// Command overrides how a worker process is spawned. The default
	// re-executes the current binary with ShardWorkerEnv set.
	Command func() *exec.Cmd
	// Progress observes completed-scenario counts, as in RunOptions.
	Progress func(done, total int)
}

func (o ShardOptions) command() func() *exec.Cmd {
	if o.Command != nil {
		return o.Command
	}
	return func() *exec.Cmd {
		cmd := exec.Command(os.Args[0])
		cmd.Env = append(os.Environ(), ShardWorkerEnv+"=1")
		cmd.Stderr = os.Stderr
		return cmd
	}
}

// ShardedSweep runs every scenario in a pool of worker processes and
// returns results in input order. Workers that die are respawned and
// their in-flight scenario re-dispatched; a scenario that *fails*
// (invalid, oracle, infeasible) fails the sweep with its index.
func ShardedSweep(ctx context.Context, opt ShardOptions, scs []Scenario) ([]ShardResult, error) {
	jobs := make([]json.RawMessage, len(scs))
	for i := range scs {
		raw, err := scenario.Marshal(&scs[i])
		if err != nil {
			return nil, fmt.Errorf("sim: scenario %d: %w", i, err)
		}
		jobs[i] = raw
	}
	raws, err := runner.MapProc(ctx, runner.ProcOptions{
		Workers:    opt.Workers,
		MaxRetries: opt.MaxRetries,
		Command:    opt.command(),
		Progress:   opt.Progress,
	}, jobs)
	if err != nil {
		return nil, err
	}
	out := make([]ShardResult, len(raws))
	for i, raw := range raws {
		if err := json.Unmarshal(raw, &out[i]); err != nil {
			return nil, fmt.Errorf("sim: shard result %d: %w", i, err)
		}
		if out[i].Metrics == nil {
			return nil, fmt.Errorf("sim: shard result %d carries no accumulator state", i)
		}
	}
	return out, nil
}

// AggregateShards folds every shard's accumulator state into one
// aggregate report — the cross-scenario view of a sharded sweep
// (counters sum, extremes fold, sketches merge with the widened
// εa+εb rank bound).
func AggregateShards(results []ShardResult) (*metrics.Report, error) {
	agg := metrics.NewAccumulator()
	for i := range results {
		if err := agg.Absorb(results[i].Metrics); err != nil {
			return nil, fmt.Errorf("sim: absorbing shard %d: %w", i, err)
		}
	}
	return agg.Report(), nil
}

// The X12 sweep: N seeded streaming scenarios run twice — serially
// in-process and sharded across worker processes — asserting the
// sharded reports equal the serial ones on every task-summary field,
// switches included. It is the standing proof that the process
// executor's serialization pipeline (StateFromReport → JSON →
// ReportFromState) loses nothing.

// ShardSeed, ShardCount and ShardWorkers parameterize the default x12
// sweep.
const (
	ShardSeed    uint64 = 0x0C12_5EED
	ShardCount          = 24
	ShardWorkers        = 3
)

// ShardPoint summarizes one scenario of the x12 sweep.
type ShardPoint struct {
	Seed     uint64 `json:"seed"`
	Name     string `json:"name"`
	Policy   string `json:"policy"`
	Tasks    int    `json:"tasks"`
	Overload bool   `json:"overload,omitempty"`
	Released int    `json:"released"`
	Switches int64  `json:"switches"`
}

// ShardDifferentialSweep runs the x12 comparison over seeds derived
// from base. The first serial-vs-sharded divergence aborts the sweep.
func ShardDifferentialSweep(ctx context.Context, base uint64, n int, opt RunOptions) ([]ShardPoint, error) {
	seeds := runner.Seeds(base, n)
	scs := make([]Scenario, n)
	for i, seed := range seeds {
		scs[i] = gen.Checkpointable(seed)
	}

	serial, err := runner.Map(ctx, runner.Options{Parallelism: opt.Parallelism}, scs,
		func(ctx context.Context, i int, sc Scenario) (*RunResult, error) {
			sys, err := FromScenario(sc)
			if err != nil {
				return nil, err
			}
			return sys.Run()
		})
	if err != nil {
		return nil, fmt.Errorf("sim: x12 serial leg: %w", err)
	}

	sharded, err := ShardedSweep(ctx, ShardOptions{Workers: ShardWorkers, Progress: opt.Progress}, scs)
	if err != nil {
		return nil, fmt.Errorf("sim: x12 sharded leg: %w", err)
	}

	points := make([]ShardPoint, n)
	for i := range scs {
		rep, err := sharded[i].Report()
		if err != nil {
			return nil, fmt.Errorf("sim: seed %#x: rebuilding shard report: %w", seeds[i], err)
		}
		shardRes := &RunResult{
			Report:     rep,
			Switches:   sharded[i].Switches,
			Detections: sharded[i].Detections,
		}
		if diff := reportDivergence(serial[i], shardRes); diff != "" {
			return nil, fmt.Errorf("sim: seed %#x (%s): sharded report diverges from serial: %s",
				seeds[i], scs[i].Name, diff)
		}
		p := ShardPoint{
			Seed:     seeds[i],
			Name:     scs[i].Name,
			Policy:   scs[i].Policy,
			Tasks:    len(scs[i].Tasks),
			Overload: scs[i].SkipAdmission,
			Switches: sharded[i].Switches,
		}
		for _, s := range rep.Tasks {
			p.Released += s.Released
		}
		points[i] = p
	}
	return points, nil
}

// RenderShardDifferential prints the sweep in the artefact table
// style.
func RenderShardDifferential(points []ShardPoint) string {
	var b strings.Builder
	b.WriteString("X12 — process-sharded sweep: worker-process reports ≡ serial in-process reports\n")
	fmt.Fprintf(&b, "%-24s %-14s %5s %8s %8s\n", "scenario", "policy", "tasks", "released", "switches")
	for _, p := range points {
		name := p.Name
		if p.Overload {
			name += "*"
		}
		fmt.Fprintf(&b, "%-24s %-14s %5d %8d %8d\n", name, p.Policy, p.Tasks, p.Released, p.Switches)
	}
	fmt.Fprintf(&b, "%d scenarios sharded across %d worker processes, 0 divergences vs serial (* = overload, admission skipped)\n",
		len(points), ShardWorkers)
	return b.String()
}
