package sim

import (
	"context"
	"fmt"
	"sync"
)

// RunOptions configures how an experiment executes its independent
// simulations. The zero value uses every core.
type RunOptions struct {
	// Parallelism is the worker count: 0 = GOMAXPROCS, 1 = serial.
	Parallelism int
	// Progress, when non-nil, observes completed-simulation counts.
	Progress func(done, total int)
	// Stream runs each simulation with streaming collection (bounded
	// memory, identical rendered artefacts). Honoured by the sweeps
	// that consume only task-summary counts (x2, x4); ignored by
	// sweeps needing job records or the trace (x1, x3).
	Stream bool
}

// Result is one experiment artefact in both machine and human form.
type Result struct {
	// Data is the structured artefact (JSON-encodable rows).
	Data any
	// Text is the rendered table or chart.
	Text string
}

// Experiment is a registered, named reproduction artefact: one table,
// figure or sweep. Implementations must be safe to Run repeatedly and
// deterministic for fixed RunOptions-independent inputs.
type Experiment interface {
	// Name is the registry key (e.g. "table2", "fig5", "x2").
	Name() string
	// Description is a one-line summary for listings, naming the
	// paper artefact it reproduces.
	Description() string
	// Run produces the artefact.
	Run(ctx context.Context, opt RunOptions) (Result, error)
}

var (
	expMu    sync.RWMutex
	expByKey = map[string]Experiment{}
	expOrder []Experiment
)

// RegisterExperiment adds an experiment to the registry. It panics on
// a duplicate or empty name — registration happens at init time.
func RegisterExperiment(e Experiment) {
	expMu.Lock()
	defer expMu.Unlock()
	name := e.Name()
	if name == "" {
		panic("sim: RegisterExperiment with empty name")
	}
	if _, dup := expByKey[name]; dup {
		panic(fmt.Sprintf("sim: experiment %q registered twice", name))
	}
	expByKey[name] = e
	expOrder = append(expOrder, e)
}

// LookupExperiment returns the named experiment.
func LookupExperiment(name string) (Experiment, bool) {
	expMu.RLock()
	defer expMu.RUnlock()
	e, ok := expByKey[name]
	return e, ok
}

// Experiments returns every registered experiment in registration
// order (the order cmd/rtexp runs and lists them).
func Experiments() []Experiment {
	expMu.RLock()
	defer expMu.RUnlock()
	return append([]Experiment(nil), expOrder...)
}

// NewExperiment wraps a function as a registrable Experiment.
func NewExperiment(name, description string, run func(ctx context.Context, opt RunOptions) (Result, error)) Experiment {
	return funcExperiment{name: name, description: description, run: run}
}

type funcExperiment struct {
	name        string
	description string
	run         func(ctx context.Context, opt RunOptions) (Result, error)
}

func (e funcExperiment) Name() string        { return e.name }
func (e funcExperiment) Description() string { return e.description }
func (e funcExperiment) Run(ctx context.Context, opt RunOptions) (Result, error) {
	return e.run(ctx, opt)
}
