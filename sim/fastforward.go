package sim

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/metrics"
	"repro/internal/runner"
	"repro/internal/verify/gen"
	"repro/internal/vtime"
)

// The X14 fast-forward differential sweep: seeded random fast-forward-
// eligible scenarios (gen.FastForwardable — harmonic 200 ms
// hyperperiod grids, offsets, both order-only policies, a third on 2
// or 4 cores) each run twice. The reference run disables fast-forward,
// retains the full log and arms the invariant oracle — the exact
// ground truth, axiom-checked the same way the x11 sweep checks its
// scenarios. The fast-forward run executes the scenario as declared.
// The two must agree exactly on every count, switch total and response
// moment (reportDivergence, the x11 criterion), and the fast-forward
// percentiles must sit inside the widened ±2εn rank window of the
// reference's exact distribution (the ScaleMerge bound: one scaled
// merge doubles the sketch's ε). The sweep also fails if not a single
// scenario engaged the jump — a silently never-detecting fingerprint
// would otherwise pass every equality trivially.

// FastForwardSeed and FastForwardCount parameterize the default sweep
// (the "x14" registry entry and `make ci`).
const (
	FastForwardSeed  uint64 = 0x5EED_FA57
	FastForwardCount        = 48
)

// FastForwardPoint summarizes one scenario of the sweep.
type FastForwardPoint struct {
	// Seed derives the scenario (gen.FastForwardable(Seed)).
	Seed uint64 `json:"seed"`
	// Name is the generated scenario name.
	Name string `json:"name"`
	// Policy and CPUs echo the drawn configuration.
	Policy string `json:"policy"`
	CPUs   int    `json:"cpus,omitempty"`
	// Tasks counts periodic tasks.
	Tasks int `json:"tasks"`
	// Cycles is the number of whole hyperperiod cycles in the horizon.
	Cycles int64 `json:"cycles"`
	// Skipped is how many of them the fast-forward run extrapolated
	// analytically (0 = the transient never settled within the horizon).
	Skipped int64 `json:"skipped"`
	// Released totals released jobs across tasks (reference run).
	Released int `json:"released"`
}

// FastForwardSweep runs the differential over seeds derived from base.
// Every scenario's fast-forward run must reproduce its oracle-verified
// full run, and at least one scenario must actually engage the jump;
// the first divergence aborts the sweep.
func FastForwardSweep(ctx context.Context, base uint64, n int, opt RunOptions) ([]FastForwardPoint, error) {
	seeds := runner.Seeds(base, n)
	points, err := runner.Map(ctx, runner.Options{Parallelism: opt.Parallelism, Progress: opt.Progress}, seeds,
		func(ctx context.Context, i int, seed uint64) (FastForwardPoint, error) {
			return fastForwardOne(seed)
		})
	if err != nil {
		return points, err
	}
	engaged := 0
	for _, p := range points {
		if p.Skipped > 0 {
			engaged++
		}
	}
	if engaged == 0 {
		return points, fmt.Errorf("sim: x14: no scenario engaged fast-forward — every equality held trivially; the fingerprint never detects")
	}
	return points, nil
}

// FastForwardCheck runs one seed's differential — the FuzzScenario
// fast-forward leg. It returns nil when the fast-forward run
// reproduces the oracle-verified full run.
func FastForwardCheck(seed uint64) error {
	_, err := fastForwardOne(seed)
	return err
}

// fastForwardOne runs one seed's scenario with and without
// fast-forward and cross-checks the results.
func fastForwardOne(seed uint64) (FastForwardPoint, error) {
	sc := gen.FastForwardable(seed)
	point := FastForwardPoint{
		Seed:   seed,
		Name:   sc.Name,
		Policy: sc.Policy,
		CPUs:   sc.CPUs,
		Tasks:  len(sc.Tasks),
	}

	// Reference: fast-forward off, full log retained, oracle armed.
	ref := sc
	ref.FastForward = false
	ref.Collect = nil
	refRes, err := verifiedRun(ref)
	if err != nil {
		return point, fmt.Errorf("seed %#x (full reference run): %w", seed, err)
	}
	for _, s := range refRes.Report.Tasks {
		point.Released += s.Released
	}

	ffSys, err := FromScenario(sc)
	if err != nil {
		return point, fmt.Errorf("seed %#x: %w", seed, err)
	}
	ffRes, err := ffSys.Run()
	if err != nil {
		return point, fmt.Errorf("seed %#x (fast-forward run): %w", seed, err)
	}
	point.Skipped = ffRes.SkippedCycles
	if h := ffHyperperiod(&sc); h > 0 {
		point.Cycles = int64(sc.Horizon.D()) / int64(h)
	}

	if diff := reportDivergence(refRes, ffRes); diff != "" {
		return point, fmt.Errorf("seed %#x: fast-forward and full run diverge: %s (reproduce with gen.FastForwardable(%#x))", seed, diff, seed)
	}
	if err := ffPercentilesWithinBound(refRes, ffRes); err != nil {
		return point, fmt.Errorf("seed %#x: %w (reproduce with gen.FastForwardable(%#x))", seed, err, seed)
	}
	return point, nil
}

// ffHyperperiod computes the scenario's hyperperiod for the cycle
// column (zero on overflow, which the generator never produces).
func ffHyperperiod(sc *Scenario) vtime.Duration {
	set, err := sc.TaskSet()
	if err != nil {
		return 0
	}
	h, err := set.Hyperperiod()
	if err != nil {
		return 0
	}
	return h
}

// ffPercentilesWithinBound checks every task's fast-forward streamed
// percentiles against the reference run's exact sorted responses: the
// answer must lie inside the ±2εn rank window (ε doubled by the
// analytic jump's single scaled sketch merge).
func ffPercentilesWithinBound(refRes, ffRes *RunResult) error {
	eps := 2 * metrics.DefaultSketchEpsilon
	for _, task := range refRes.Report.TaskNames() {
		exact := exactSortedResponses(refRes.Report, task)
		for _, p := range []float64{50, 90, 99} {
			got, ok := ffRes.Report.ResponsePercentile(task, p)
			if len(exact) == 0 {
				if ok {
					return fmt.Errorf("task %s p%v: fast-forward answered %v with no successful jobs", task, p, got)
				}
				continue
			}
			if !ok {
				return fmt.Errorf("task %s p%v: fast-forward run has no answer", task, p)
			}
			n := len(exact)
			rank := int(math.Ceil(p / 100 * float64(n)))
			if rank < 1 {
				rank = 1
			}
			e := int(math.Ceil(eps * float64(n)))
			lo, hi := rank-e, rank+e
			if lo < 1 {
				lo = 1
			}
			if hi > n {
				hi = n
			}
			if got < exact[lo-1] || got > exact[hi-1] {
				return fmt.Errorf("task %s p%v = %v outside ±%d-rank window [%v, %v] of %d responses",
					task, p, got, e, exact[lo-1], exact[hi-1], n)
			}
		}
	}
	return nil
}

// exactSortedResponses extracts the sorted successful response times
// of one task from a retained report.
func exactSortedResponses(rep *metrics.Report, task string) []vtime.Duration {
	var out []vtime.Duration
	for _, j := range rep.Jobs {
		if j.Task == task && !j.Failed() && j.End != (vtime.Time(0)) {
			out = append(out, j.Response())
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// RenderFastForward prints the sweep in the artefact table style.
func RenderFastForward(points []FastForwardPoint) string {
	var b strings.Builder
	b.WriteString("X14 — fast-forward differential sweep: analytic cycle jumps reproduce the oracle-verified full runs\n")
	fmt.Fprintf(&b, "%-22s %-14s %4s %5s %8s %7s %8s %8s\n",
		"scenario", "policy", "cpus", "tasks", "released", "cycles", "skipped", "sim'd")
	var engaged int
	var skipped, cycles int64
	for _, p := range points {
		if p.Skipped > 0 {
			engaged++
		}
		skipped += p.Skipped
		cycles += p.Cycles
		cpus := p.CPUs
		if cpus == 0 {
			cpus = 1
		}
		fmt.Fprintf(&b, "%-22s %-14s %4d %5d %8d %7d %8d %8d\n",
			p.Name, p.Policy, cpus, p.Tasks, p.Released, p.Cycles, p.Skipped, p.Cycles-p.Skipped)
	}
	fmt.Fprintf(&b, "%d scenarios cross-checked against oracle-verified full runs, %d engaged the jump, %d of %d hyperperiod cycles extrapolated, 0 divergences\n",
		len(points), engaged, skipped, cycles)
	return b.String()
}
