package sim

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/runner"
	"repro/internal/taskset"
	"repro/internal/vtime"
	"repro/sim/scenario"
)

// The X15 open-arrivals differential sweep: seeded scenarios covering
// every arrival-source kind (Poisson, MMPP, trace replay), each run
// under the online invariant oracle — whose release axiom replays the
// source independently, so every "random" arrival instant is checked
// exactly — in both collection modes, asserting zero violations and
// retain ≡ stream report equivalence. On top of the differential, the
// sweep pins two source-specific contracts: realized Poisson
// inter-arrival gaps pass a Kolmogorov–Smirnov bound against the
// declared exponential law, and every generated trace re-encodes byte
// for byte through ParseTrace ∘ EncodeTrace.

// OpenArrivalsSeed and OpenArrivalsCount parameterize the default
// sweep (the "x15" registry entry and `make ci`). The count is a
// multiple of three so each source kind gets an equal share.
const (
	OpenArrivalsSeed  uint64 = 0xA441_5EED
	OpenArrivalsCount        = 18
)

// ksBound is the Kolmogorov–Smirnov acceptance threshold coefficient
// at significance 0.01: D_n must stay below ksBound/√n. The sweep is
// seed-deterministic, so a pass can never flake — the bound only
// catches a mis-scaled or mis-shaped inter-arrival law.
const ksBound = 1.63

// OpenArrivalPoint summarizes one scenario of the sweep.
type OpenArrivalPoint struct {
	// Seed derives the scenario and its source parameters.
	Seed uint64 `json:"seed"`
	// Kind is the arrival-source kind under test.
	Kind string `json:"kind"`
	// Name is the generated scenario name.
	Name string `json:"name"`
	// Released totals released jobs across tasks (retained run).
	Released int `json:"released"`
	// Modes lists the collection modes run ("retain", "stream").
	Modes []string `json:"modes"`
	// Gaps is the number of realized inter-arrival gaps the KS bound
	// covered (Poisson points only).
	Gaps int `json:"gaps,omitempty"`
	// KS is the realized Kolmogorov–Smirnov statistic (Poisson only).
	KS float64 `json:"ks,omitempty"`
	// TraceBytes is the canonical trace length whose re-encode
	// identity was checked (trace points only).
	TraceBytes int `json:"trace_bytes,omitempty"`
}

// OpenArrivalsSweep runs the sweep over seeds derived from base,
// cycling the source kind per point.
func OpenArrivalsSweep(ctx context.Context, base uint64, n int, opt RunOptions) ([]OpenArrivalPoint, error) {
	seeds := runner.Seeds(base, n)
	kinds := []string{ArrivalPoisson, ArrivalMMPP, ArrivalTrace}
	return runner.Map(ctx, runner.Options{Parallelism: opt.Parallelism, Progress: opt.Progress}, seeds,
		func(ctx context.Context, i int, seed uint64) (OpenArrivalPoint, error) {
			return openArrivalOne(kinds[i%len(kinds)], seed)
		})
}

// openArrivalOne runs one (kind, seed) scenario through the oracle in
// both collection modes, cross-checks the reports, and applies the
// kind-specific contract.
func openArrivalOne(kind string, seed uint64) (OpenArrivalPoint, error) {
	sc := openArrivalScenario(kind, seed)
	point := OpenArrivalPoint{Seed: seed, Kind: kind, Name: sc.Name}

	reports := make(map[string]*RunResult, 2)
	for _, mode := range []string{scenario.CollectRetain, scenario.CollectStream} {
		res, err := runDifferentialMode(sc, mode)
		if err != nil {
			return point, fmt.Errorf("x15 seed %#x (%s source, %s collection): %w", seed, kind, mode, err)
		}
		reports[mode] = res
		point.Modes = append(point.Modes, mode)
	}
	for _, s := range reports[scenario.CollectRetain].Report.Tasks {
		point.Released += s.Released
	}
	if diff := reportDivergence(reports[scenario.CollectRetain], reports[scenario.CollectStream]); diff != "" {
		return point, fmt.Errorf("x15 seed %#x (%s source): retain and stream reports diverge: %s", seed, kind, diff)
	}

	switch kind {
	case ArrivalPoisson:
		a := sc.Arrivals[0]
		gaps, err := realizedGaps(a, vtime.Time(sc.Horizon))
		if err != nil {
			return point, err
		}
		point.Gaps = len(gaps)
		if len(gaps) < 30 {
			return point, fmt.Errorf("x15 seed %#x: only %d realized Poisson gaps — too few for the KS bound (widen the horizon or tighten the mean draw)", seed, len(gaps))
		}
		point.KS = ksExponential(gaps, a.Mean.D())
		if limit := ksBound / math.Sqrt(float64(len(gaps))); point.KS > limit {
			return point, fmt.Errorf("x15 seed %#x: Poisson inter-arrival KS statistic %.4f exceeds %.4f over %d gaps (mean %v) — the realized gaps do not look exponential",
				seed, point.KS, limit, len(gaps), a.Mean.D())
		}
	case ArrivalTrace:
		records := make([]taskset.TraceRecord, len(sc.Arrivals[0].Records))
		for i, r := range sc.Arrivals[0].Records {
			records[i] = r.Record()
		}
		encoded := taskset.EncodeTrace(records)
		point.TraceBytes = len(encoded)
		parsed, err := taskset.ParseTrace(encoded)
		if err != nil {
			return point, fmt.Errorf("x15 seed %#x: canonical trace does not re-parse: %w", seed, err)
		}
		if again := taskset.EncodeTrace(parsed); !bytes.Equal(again, encoded) {
			return point, fmt.Errorf("x15 seed %#x: trace re-encode is not byte-identical (%d vs %d bytes)", seed, len(again), len(encoded))
		}
	}
	return point, nil
}

// openArrivalScenario derives one bare-engine scenario with a
// source-driven task of the given kind beside a periodic competitor,
// its parameters drawn deterministically from the seed.
func openArrivalScenario(kind string, seed uint64) scenario.Scenario {
	rng := taskset.NewRand(seed)
	sc := scenario.Scenario{
		Name: fmt.Sprintf("x15-%s-%04x", kind, seed&0xFFFF),
		Tasks: []scenario.Task{
			{Name: "steady", Priority: 10, Period: Millis(40), Deadline: Millis(40), Cost: Millis(4)},
			{Name: "open", Priority: 5, Period: Millis(50), Deadline: Millis(30), Cost: Millis(2)},
		},
		Horizon:       Millis(2000),
		Seed:          seed,
		SkipAdmission: true,
	}
	a := scenario.Arrival{Task: "open", Kind: kind}
	if kind != ArrivalTrace {
		a.Seed = seed | 1 // trace replay is literal; only stochastic kinds draw
	}
	switch kind {
	case ArrivalPoisson:
		// Mean in [8ms, 24ms]: ≥ ~80 expected gaps over the horizon,
		// comfortably past the KS small-sample floor.
		a.Mean = scenario.Duration(rng.DurationIn(8*vtime.Millisecond, 24*vtime.Millisecond))
	case ArrivalMMPP:
		a.Mean = scenario.Duration(rng.DurationIn(30*vtime.Millisecond, 60*vtime.Millisecond))
		a.BurstMean = scenario.Duration(rng.DurationIn(3*vtime.Millisecond, 8*vtime.Millisecond))
		a.Dwell = scenario.Duration(rng.DurationIn(200*vtime.Millisecond, 400*vtime.Millisecond))
		a.BurstDwell = scenario.Duration(rng.DurationIn(80*vtime.Millisecond, 160*vtime.Millisecond))
	case ArrivalTrace:
		n := 20 + rng.Intn(30)
		at := vtime.Duration(0)
		records := make([]scenario.TraceRecord, n)
		for i := range records {
			at += rng.DurationIn(vtime.Millisecond, 60*vtime.Millisecond)
			rec := scenario.TraceRecord{
				Release: scenario.Duration(at),
				Cost:    scenario.Duration(rng.DurationIn(vtime.Millisecond, 4*vtime.Millisecond)),
			}
			if i%3 == 0 {
				rec.Deadline = scenario.Duration(vtime.Duration(rec.Cost) + rng.DurationIn(5*vtime.Millisecond, 25*vtime.Millisecond))
			}
			records[i] = rec
		}
		a.Records = records
	}
	sc.Arrivals = []scenario.Arrival{a}
	return sc
}

// realizedGaps replays the arrival's source fresh and returns the
// inter-arrival gaps of every release inside the horizon.
func realizedGaps(a scenario.Arrival, horizon vtime.Time) ([]vtime.Duration, error) {
	src, err := taskset.NewPoisson(a.Mean.D(), a.Seed)
	if err != nil {
		return nil, err
	}
	var gaps []vtime.Duration
	prev := vtime.Time(0)
	for {
		rel, ok := src.Next()
		if !ok || rel.At.After(horizon) {
			return gaps, nil
		}
		gaps = append(gaps, vtime.Duration(rel.At.Sub(prev)))
		prev = rel.At
	}
}

// ksExponential returns the Kolmogorov–Smirnov statistic of the gaps
// against the exponential CDF with the given mean.
func ksExponential(gaps []vtime.Duration, mean vtime.Duration) float64 {
	xs := make([]float64, len(gaps))
	for i, g := range gaps {
		xs[i] = float64(g)
	}
	sort.Float64s(xs)
	n := float64(len(xs))
	var d float64
	for i, x := range xs {
		f := 1 - math.Exp(-x/float64(mean))
		if hi := float64(i+1)/n - f; hi > d {
			d = hi
		}
		if lo := f - float64(i)/n; lo > d {
			d = lo
		}
	}
	return d
}

// RenderOpenArrivals prints the sweep in the artefact table style.
func RenderOpenArrivals(points []OpenArrivalPoint) string {
	var b strings.Builder
	b.WriteString("X15 — open-arrivals differential sweep: every source kind oracle-clean, retain ≡ stream\n")
	fmt.Fprintf(&b, "%-18s %-8s %8s  %-13s %6s %8s %12s\n",
		"scenario", "kind", "released", "modes", "gaps", "KS", "trace bytes")
	counts := map[string]int{}
	for _, p := range points {
		counts[p.Kind]++
		ks, gaps, tb := "-", "-", "-"
		if p.Kind == ArrivalPoisson {
			ks, gaps = fmt.Sprintf("%.4f", p.KS), fmt.Sprintf("%d", p.Gaps)
		}
		if p.Kind == ArrivalTrace {
			tb = fmt.Sprintf("%d", p.TraceBytes)
		}
		fmt.Fprintf(&b, "%-18s %-8s %8d  %-13s %6s %8s %12s\n",
			p.Name, p.Kind, p.Released, strings.Join(p.Modes, "+"), gaps, ks, tb)
	}
	fmt.Fprintf(&b, "%d scenarios verified (%d poisson, %d mmpp, %d trace), 0 invariant violations, KS and re-encode contracts held\n",
		len(points), counts[ArrivalPoisson], counts[ArrivalMMPP], counts[ArrivalTrace])
	return b.String()
}

// The "x15" registry entry is registered from experiments.go's init,
// keeping the artefact order cmd/rtexp has always printed.
