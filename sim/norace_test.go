//go:build !race

package sim

// raceEnabled reports whether the race detector instruments this
// build; the x11 sweep test skips the duplicate instrumented run
// (make ci runs the sweep unraced via rtexp -exp x11).
const raceEnabled = false
