package sim

import (
	"fmt"
	"io"

	"repro/internal/allowance"
	"repro/internal/analysis"
	"repro/internal/aperiodic"
	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/taskset"
	"repro/internal/trace"
	"repro/internal/verify"
	"repro/internal/vtime"
)

// System is a validated, not-yet-run simulation. Build with New,
// FromScenario or Load; each Run compiles a fresh instance, so a
// System may be run repeatedly (every run is identical — all
// randomness is seeded by the scenario).
type System struct {
	sc    Scenario
	spill io.Writer
	// progress, when set (by ObserveProgress), is teed into the run's
	// sink chain to report the advancing virtual clock.
	progress *progressSink
	// resume, when set (by Resume), makes Run continue the checkpointed
	// run instead of starting from time zero.
	resume *Checkpoint
}

// SpillTrace streams the trace's text encoding to w during the run —
// the same bytes RunResult.WriteLog would produce afterwards. It is
// how a streaming-collection run (WithCollection(CollectStream))
// keeps its event stream without the in-memory log; on a retained run
// it simply tees the log as it is recorded. Pass nil to disable.
func (s *System) SpillTrace(w io.Writer) { s.spill = w }

// SetVerify toggles the online invariant oracle on an already-built
// system (the post-load equivalent of WithVerify or the scenario's
// "verify": true — how cmd/rtrun -check arms it on a loaded file).
func (s *System) SetVerify(on bool) { s.sc.Verify = on }

// SetFastForward arms hyperperiod fast-forward on an already-built
// system (the post-load equivalent of WithFastForward or the
// scenario's "fast_forward": true — how cmd/rtrun -fast-forward arms
// it on a loaded file). Unlike SetVerify it can fail: the scenario
// must satisfy the fast_forward eligibility grammar (streaming
// collection, treatment none, no faults, servers or stop jitter).
func (s *System) SetFastForward(on bool) error {
	s.sc.FastForward = on
	return s.sc.Validate()
}

// ObserveProgress registers fn to observe the run's advancing virtual
// clock: it is called from the engine loop with the instant of the
// first event recorded at or after each successive `every` boundary,
// so a long-horizon run reports roughly horizon/every times. The
// callback runs synchronously on the engine goroutine — keep it fast
// and non-blocking (rtserved's SSE progress stream hands the value to
// a channel). every must be positive; fn nil disarms. Resumed
// (checkpoint) runs ignore it.
func (s *System) ObserveProgress(every Duration, fn func(at Duration)) {
	if fn == nil || every.D() <= 0 {
		s.progress = nil
		return
	}
	s.progress = &progressSink{every: every.D(), fn: fn}
}

// progressSink throttles trace events into ObserveProgress callbacks:
// one comparison per event, a callback only when the virtual clock
// crosses the next boundary.
type progressSink struct {
	every vtime.Duration
	next  vtime.Time
	fn    func(Duration)
}

func (p *progressSink) Append(e trace.Event) {
	if !e.At.Before(p.next) {
		p.fn(Duration(e.At.Sub(0)))
		p.next = e.At.Add(p.every)
	}
}

// FromScenario validates a declarative scenario into a System.
func FromScenario(sc Scenario) (*System, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	return &System{sc: sc}, nil
}

// Scenario returns the underlying declarative spec, e.g. to encode it
// back to JSON with scenario.Encode.
func (s *System) Scenario() Scenario { return s.sc }

// RunResult is the outcome of one scenario run.
type RunResult struct {
	// Scenario echoes the spec that produced the run.
	Scenario Scenario
	// Log is the recorded time series (the paper's log file). Empty
	// under streaming collection — use System.SpillTrace to keep the
	// stream, and Report (accumulated online) for the summaries.
	Log *trace.Log
	// Report summarizes jobs and tasks. Retained runs reconstruct it
	// from the log (per-job records included); streaming runs
	// accumulate it online (task summaries and sketch-backed
	// percentiles only — Report.Jobs is nil).
	Report *metrics.Report
	// Admission is the pre-run feasibility report (nil when the
	// scenario skipped admission control).
	Admission *analysis.Report
	// Allowance is the tolerance analysis (nil without admission).
	Allowance *allowance.Table
	// Detections counts detector-flagged faults.
	Detections int64
	// Switches counts dispatch switches.
	Switches int64
	// SkippedCycles is the number of whole hyperperiod cycles a
	// fast-forward run extrapolated analytically (zero when
	// fast-forward was off or never detected a steady state).
	SkippedCycles int64
	// Served maps each declared server task name to its per-request
	// service outcomes.
	Served map[string][]aperiodic.Served
}

// Summary renders the per-task report.
func (r *RunResult) Summary() string { return r.Report.Render() }

// SuccessRatio is the fraction of released jobs that met their
// deadline.
func (r *RunResult) SuccessRatio() float64 { return r.Report.SuccessRatio() }

// WriteLog encodes the trace log (the format cmd/rtchart consumes).
func (r *RunResult) WriteLog(w io.Writer) error { return r.Log.Encode(w) }

// ParseTreatment maps a treatment name to the detect constant. It
// accepts the short command-line vocabulary (none, detect, stop,
// equitable, system) and the paper's long forms (no-detection,
// detect-only, stop-equitable, equitable-allowance,
// system-allowance). The empty string means none.
func ParseTreatment(name string) (detect.Treatment, error) {
	return detect.ParseTreatment(name)
}

// Policies returns the names of all registered scheduling policies.
func Policies() []string { return engine.PolicyNames() }

// Run compiles the scenario and simulates it to the horizon. On a
// System built by Resume it continues the checkpointed run instead.
func (s *System) Run() (*RunResult, error) {
	if s.resume != nil {
		return s.runResumed()
	}
	sc := s.sc
	set, err := taskset.New(taskSlice(sc.Tasks)...)
	if err != nil {
		return nil, err
	}
	plan, err := sc.FaultPlan()
	if err != nil {
		return nil, err
	}
	// Attach each polling server: its task joins the set, its queue
	// model joins the plan. A fault entry declared on a server task
	// composes with the polling model (a buggy server overrunning its
	// declared capacity).
	servers := make(map[string]*aperiodic.PollingServer, len(sc.Servers))
	for _, spec := range sc.Servers {
		ps := spec.Server()
		// A source-fed server materializes its request stream from the
		// declared arrival source (up to the horizon) before Attach
		// compiles the polling model — the model replays a static
		// schedule, so the source resolves here, once, deterministically.
		if reqs, err := sc.ServerRequests(ps.Task.Name); err != nil {
			return nil, err
		} else if reqs != nil {
			ps.Requests = reqs
		}
		declared := plan.For(ps.Task.Name)
		delete(plan, ps.Task.Name)
		set, plan, err = ps.Attach(set, plan)
		if err != nil {
			return nil, err
		}
		if _, isNone := declared.(fault.None); !isNone {
			plan[ps.Task.Name] = fault.Chain{plan[ps.Task.Name], declared}
		}
		servers[ps.Task.Name] = ps
	}
	tr, err := ParseTreatment(sc.Treatment)
	if err != nil {
		return nil, err
	}
	pol, err := engine.NewPolicy(sc.Policy)
	if err != nil {
		return nil, err
	}
	collect := engine.Retain
	if sc.Streaming() {
		collect = engine.Stream
	}
	var spill *trace.WriterSink
	var sink trace.Sink
	if s.spill != nil {
		spill = trace.NewWriterSink(s.spill)
		sink = spill
	}
	if s.progress != nil {
		sink = trace.Tee(s.progress, sink)
	}
	res := &RunResult{Scenario: sc}
	if sc.SkipAdmission || sc.CPUs > 1 {
		// Bare-engine path: overload scenarios skip the uniprocessor
		// admission control deliberately; multiprocessor runs have no
		// uniprocessor admission test to apply (partitioned placement
		// is admitted per core by the bin packing in sc.Partition).
		partition, err := sc.Partition()
		if err != nil {
			return nil, err
		}
		// Task-targeted arrival sources (validation pins them to
		// skip_admission, hence to this path). The slice aligns with
		// the set: periodic tasks first, then server tasks (nil there).
		sources, err := sc.TaskSources()
		if err != nil {
			return nil, err
		}
		var acc *metrics.Accumulator
		if collect == engine.Stream {
			acc = metrics.NewAccumulator()
			sink = trace.Tee(acc, sink)
		}
		// The bare-engine path wires fast-forward itself (no core System
		// exists to do it). The skipped cycles produce no trace events,
		// so a spill or progress observer would see a hole — refuse the
		// combination like core's TraceSink check does.
		var obs engine.CycleObserver
		if sc.FastForward {
			if s.spill != nil || s.progress != nil {
				return nil, fmt.Errorf("sim: fast-forward cannot combine with a trace spill or progress observer (extrapolated cycles produce no events)")
			}
			obs = acc
		}
		var chk *verify.Checker
		if sc.Verify {
			// The bare-engine path wires the oracle itself (no core
			// System exists to do it); treatment is necessarily none
			// here, so no detector offsets apply. The admitted-system
			// twin lives in core.RunWith — change both together.
			chk, err = verify.ForScenario(&sc)
			if err != nil {
				return nil, err
			}
			sink = trace.Tee(chk, sink)
		}
		eng, err := engine.New(engine.Config{
			Tasks:         set,
			Sources:       sources,
			Faults:        plan,
			End:           vtime.Time(sc.Horizon),
			Policy:        pol,
			StopPoll:      sc.StopPoll.D(),
			StopJitterMax: sc.StopJitterMax.D(),
			Seed:          sc.Seed,
			ContextSwitch: sc.ContextSwitch.D(),
			Collect:       collect,
			Sink:          sink,
			CPUs:          sc.CPUs,
			Partition:     partition,
			FastForward:   sc.FastForward,
			Observer:      obs,
		})
		if err != nil {
			return nil, err
		}
		res.Log = eng.Run()
		if chk != nil {
			if verr := chk.FinishErr(); verr != nil {
				// Flush the spill before failing: the spilled trace of
				// the violating run is exactly the debugging artefact.
				flushSpill(spill)
				return nil, fmt.Errorf("sim: invariant oracle: %w", verr)
			}
		}
		if acc != nil {
			res.Report = acc.Report()
		} else {
			res.Report = metrics.Analyze(res.Log)
		}
		res.Switches = eng.Switches()
		res.SkippedCycles = eng.SkippedCycles()
	} else {
		sys, err := core.NewSystem(core.Config{
			Tasks:               set,
			Treatment:           tr,
			Faults:              plan,
			Horizon:             sc.Horizon.D(),
			TimerResolution:     sc.TimerResolution.D(),
			StopPoll:            sc.StopPoll.D(),
			StopJitterMax:       sc.StopJitterMax.D(),
			Seed:                sc.Seed,
			ContextSwitch:       sc.ContextSwitch.D(),
			Policy:              pol,
			Collect:             collect,
			TraceSink:           sink,
			Verify:              sc.Verify,
			VerifyServerBudgets: verify.ServerBudgets(&sc),
			FastForward:         sc.FastForward,
		})
		if err != nil {
			return nil, err
		}
		r, err := sys.Run()
		if err != nil {
			// An invariant-oracle failure surfaces here after the
			// engine ran: keep whatever trace was spilled.
			flushSpill(spill)
			return nil, err
		}
		res.Log = r.Log
		res.Report = r.Report
		res.Admission = r.Admission
		res.Allowance = r.Allowance
		res.Detections = r.Detections
		res.Switches = r.Switches
		res.SkippedCycles = r.SkippedCycles
	}
	if spill != nil {
		if err := spill.Flush(); err != nil {
			return nil, fmt.Errorf("sim: spilling trace: %w", err)
		}
	}
	if len(servers) > 0 {
		res.Served = make(map[string][]aperiodic.Served, len(servers))
		for name, ps := range servers {
			res.Served[name] = ps.Analyze(res.Log)
		}
	}
	return res, nil
}

// flushSpill drains the spill sink on an error path, best effort —
// the run error takes precedence over a flush failure.
func flushSpill(spill *trace.WriterSink) {
	if spill != nil {
		_ = spill.Flush()
	}
}

func taskSlice(specs []Task) []taskset.Task {
	out := make([]taskset.Task, len(specs))
	for i, t := range specs {
		out[i] = t.Task()
	}
	return out
}
