package sim

import (
	"context"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/experiments"
	"repro/internal/vtime"
)

func scenarioPath(name string) string {
	return filepath.Join("..", "testdata", "scenarios", name)
}

// TestRegistryMatchesDirectCalls is the redesign's equivalence
// guarantee: running each experiment through the registry produces
// output byte-identical to the pre-redesign internal/experiments
// entry points.
func TestRegistryMatchesDirectCalls(t *testing.T) {
	ctx := context.Background()
	opt := experiments.RunOptions{}
	direct := map[string]func() (string, error){
		"x1": func() (string, error) {
			points, err := experiments.DetectorOverheadSweepCtx(ctx, []int{2, 4, 8, 16}, 7, opt)
			if err != nil {
				return "", err
			}
			return experiments.RenderOverhead(points), nil
		},
		"x2": func() (string, error) {
			points, err := experiments.FaultMagnitudeSweepCtx(ctx, vtime.Millis(60), vtime.Millis(5), opt)
			if err != nil {
				return "", err
			}
			return experiments.RenderSweep(points), nil
		},
		"x3": func() (string, error) {
			points, err := experiments.TimerResolutionSweepCtx(ctx, opt)
			if err != nil {
				return "", err
			}
			return experiments.RenderResolution(points), nil
		},
		"x4": func() (string, error) {
			points, err := experiments.BaselineComparisonCtx(ctx, vtime.Millis(50), 6*vtime.Second, opt)
			if err != nil {
				return "", err
			}
			return experiments.RenderBaselines(points), nil
		},
		"x5": func() (string, error) {
			points, err := experiments.AcceptanceSweepCtx(ctx,
				[]float64{0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}, 200, 5, 11, opt)
			if err != nil {
				return "", err
			}
			return experiments.RenderAcceptance(points), nil
		},
	}
	for name, fn := range direct {
		name, fn := name, fn
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			want, err := fn()
			if err != nil {
				t.Fatal(err)
			}
			e, ok := LookupExperiment(name)
			if !ok {
				t.Fatalf("experiment %q not registered", name)
			}
			res, err := e.Run(ctx, RunOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if res.Text != want {
				t.Errorf("registry output differs from direct call:\n--- registry ---\n%s\n--- direct ---\n%s", res.Text, want)
			}
			if res.Data == nil {
				t.Error("registry result has no structured data")
			}
		})
	}
}

// TestRegistryCoversRtexpArtefacts pins the registry inventory and
// its order (the order cmd/rtexp prints).
func TestRegistryCoversRtexpArtefacts(t *testing.T) {
	want := []string{"table1", "table2", "table3", "fig3", "fig4", "fig5", "fig6", "fig7",
		"x1", "x2", "x3", "x9", "x5", "x4", "x10", "x11", "x12", "x13", "x14", "x15"}
	got := Experiments()
	if len(got) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(got), len(want))
	}
	for i, e := range got {
		if e.Name() != want[i] {
			t.Errorf("experiment %d = %q, want %q", i, e.Name(), want[i])
		}
		if e.Description() == "" {
			t.Errorf("experiment %q has no description", e.Name())
		}
	}
}

// TestScenarioFigure5MatchesRunFigure: the declarative figure5
// scenario produces the very trace of the hard-coded experiment.
func TestScenarioFigure5MatchesRunFigure(t *testing.T) {
	sys, err := Load(scenarioPath("figure5.json"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	want, err := experiments.RunFigure(experiments.Figure5)
	if err != nil {
		t.Fatal(err)
	}
	if g, w := got.Log.EncodeString(), want.Log.EncodeString(); g != w {
		t.Errorf("scenario trace differs from RunFigure(Figure5):\n--- scenario ---\n%s\n--- direct ---\n%s", g, w)
	}
	if got.Detections != want.Detections {
		t.Errorf("detections = %d, want %d", got.Detections, want.Detections)
	}
	if got.Admission == nil || !got.Admission.Feasible {
		t.Error("admission report missing or infeasible")
	}
}

// TestBuilderMatchesScenarioFile: the functional-options builder and
// the JSON spec compile to identical runs.
func TestBuilderMatchesScenarioFile(t *testing.T) {
	sys, err := New(
		WithName("figure5"),
		WithTasks(
			Task{Name: "tau1", Priority: 20, Period: Millis(200), Deadline: Millis(70), Cost: Millis(29)},
			Task{Name: "tau2", Priority: 18, Period: Millis(250), Deadline: Millis(120), Cost: Millis(29)},
			Task{Name: "tau3", Priority: 16, Period: Millis(1500), Deadline: Millis(120), Cost: Millis(29), Offset: Millis(1000)},
		),
		WithTreatment("stop"),
		WithFaults(Fault{Task: "tau1", Kind: FaultOverrunAt, Job: 5, Extra: Millis(40)}),
		WithHorizon(vtime.Millis(1500)),
		WithTimerResolution(vtime.Millis(10)),
	)
	if err != nil {
		t.Fatal(err)
	}
	built, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	fromFile, err := Load(scenarioPath("figure5.json"))
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := fromFile.Run()
	if err != nil {
		t.Fatal(err)
	}
	if g, w := built.Log.EncodeString(), loaded.Log.EncodeString(); g != w {
		t.Errorf("builder trace differs from scenario-file trace:\n--- builder ---\n%s\n--- file ---\n%s", g, w)
	}
}

func TestOverloadScenarioRuns(t *testing.T) {
	sys, err := Load(scenarioPath("edf-overload.json"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Admission != nil || res.Allowance != nil {
		t.Error("skip_admission run must not carry admission artifacts")
	}
	if r := res.SuccessRatio(); r <= 0 || r >= 1 {
		t.Errorf("overloaded EDF success ratio = %v, want strictly between 0 and 1", r)
	}
}

func TestAperiodicScenarioServesRequests(t *testing.T) {
	sys, err := Load(scenarioPath("aperiodic-server.json"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	served, ok := res.Served["server"]
	if !ok {
		t.Fatalf("no served results for the server task; Served = %v", res.Served)
	}
	if len(served) != 5 {
		t.Fatalf("served %d requests, want 5", len(served))
	}
	done := 0
	for _, s := range served {
		if s.Done {
			done++
		}
	}
	if done == 0 {
		t.Error("no aperiodic request completed within the horizon")
	}
	if failed := res.Report.Tasks["control"].Failed; failed != 0 {
		t.Errorf("periodic task failed %d jobs during the burst, want 0", failed)
	}
}

func TestSystemIsRerunnable(t *testing.T) {
	sys, err := Load(scenarioPath("jitter-stop.json"))
	if err != nil {
		t.Fatal(err)
	}
	first, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	second, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if f, s := first.Log.EncodeString(), second.Log.EncodeString(); f != s {
		t.Error("two runs of one System differ; runs must be deterministic")
	}
}

func TestNewValidates(t *testing.T) {
	if _, err := New(); err == nil {
		t.Error("empty scenario must be rejected")
	}
	if _, err := New(
		WithTasks(Task{Name: "a", Priority: 1, Period: Millis(10), Deadline: Millis(10), Cost: Millis(1)}),
		WithHorizon(vtime.Millis(100)),
		WithPolicy("no-such-policy"),
	); err == nil || !strings.Contains(err.Error(), "no-such-policy") {
		t.Errorf("unknown policy must be named in the error, got %v", err)
	}
	if _, err := New(
		WithTasks(Task{Name: "a", Priority: 1, Period: Millis(10), Deadline: Millis(10), Cost: Millis(1)}),
		WithHorizon(vtime.Millis(100)),
		WithTreatment("stop"),
		WithoutAdmission(),
	); err == nil {
		t.Error("skip_admission with a treatment must be rejected")
	}
}

func TestPoliciesRegistry(t *testing.T) {
	names := Policies()
	want := map[string]bool{"fixed-priority": false, "edf": false, "best-effort": false, "red": false, "d-over": false}
	for _, n := range names {
		if _, ok := want[n]; ok {
			want[n] = true
		}
	}
	for n, seen := range want {
		if !seen {
			t.Errorf("policy %q not registered (got %v)", n, names)
		}
	}
}

func TestParseTreatment(t *testing.T) {
	for _, in := range []string{"", "none", "detect", "stop", "equitable", "system",
		"no-detection", "detect-only", "stop-equitable", "equitable-allowance", "system-allowance"} {
		if _, err := ParseTreatment(in); err != nil {
			t.Errorf("ParseTreatment(%q): %v", in, err)
		}
	}
	if _, err := ParseTreatment("explode"); err == nil {
		t.Error("unknown treatment must error")
	}
}
