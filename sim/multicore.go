package sim

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/runner"
	"repro/internal/taskset"
	"repro/internal/trace"
	"repro/internal/vtime"
	"repro/sim/scenario"
)

// The X13 multiprocessor differential sweep: seeded random task sets
// run on M cores under BOTH dispatch modes with the invariant oracle
// armed. Every run must be oracle-clean (per-core occupancy,
// migration legality, work conservation — see internal/verify), and
// whenever the partitioned bin packing finds a feasible placement the
// global run of the *same* task set must succeed at least as often:
// global dispatch can use the slack a partition strands on other
// cores, so losing jobs to migration freedom would be an engine bug.
// High-utilization draws usually defeat the packing and become
// global-only points, exercising migration under pressure.

// MulticoreSeed and MulticoreCount parameterize the default sweep
// (the "x13" registry entry and `make ci`).
const (
	MulticoreSeed  uint64 = 0x5EED_C04E
	MulticoreCount        = 24
)

// MulticorePoint summarizes one task set of the sweep.
type MulticorePoint struct {
	// Seed derives the task set (and names the reproducer).
	Seed uint64 `json:"seed"`
	// Name labels the generated scenario.
	Name string `json:"name"`
	// Policy is the drawn scheduling policy (fixed-priority or edf).
	Policy string `json:"policy"`
	// CPUs is the drawn core count.
	CPUs int `json:"cpus"`
	// Tasks counts the generated periodic tasks.
	Tasks int `json:"tasks"`
	// Util is the set's total utilization (demand across all cores).
	Util float64 `json:"util"`
	// PartitionFeasible reports whether first-fit decreasing packed
	// the set; when false only the global run exists.
	PartitionFeasible bool `json:"partition_feasible"`
	// GlobalRatio and PartitionedRatio are the success ratios of the
	// two runs (PartitionedRatio is meaningful only when feasible).
	GlobalRatio      float64 `json:"global_ratio"`
	PartitionedRatio float64 `json:"partitioned_ratio,omitempty"`
	// Migrations counts JobMigrate events in the global run.
	Migrations int `json:"migrations"`
}

// MulticoreSweep runs the global-vs-partitioned differential over
// seeds derived from base. Both runs of every point must be
// oracle-clean, and on every feasible-partition point the global
// success ratio must be at least the partitioned one; the first
// violation aborts the sweep.
func MulticoreSweep(ctx context.Context, base uint64, n int, opt RunOptions) ([]MulticorePoint, error) {
	seeds := runner.Seeds(base, n)
	return runner.Map(ctx, runner.Options{Parallelism: opt.Parallelism, Progress: opt.Progress}, seeds,
		func(ctx context.Context, i int, seed uint64) (MulticorePoint, error) {
			return multicoreOne(seed)
		})
}

// multicoreOne runs one seeded task set through both dispatch modes.
func multicoreOne(seed uint64) (MulticorePoint, error) {
	sc := multicoreScenario(seed)
	point := MulticorePoint{
		Seed:   seed,
		Name:   sc.Name,
		Policy: sc.Policy,
		CPUs:   sc.CPUs,
		Tasks:  len(sc.Tasks),
	}
	for _, t := range sc.Tasks {
		point.Util += float64(t.Cost.D()) / float64(t.Period.D())
	}
	resG, err := verifiedRun(sc)
	if err != nil {
		return point, fmt.Errorf("seed %#x (global, %d cpus): %w", seed, sc.CPUs, err)
	}
	point.GlobalRatio = resG.SuccessRatio()
	for _, e := range resG.Log.Events() {
		if e.Kind == trace.JobMigrate {
			point.Migrations++
		}
	}
	part := sc
	part.Placement = scenario.PlacementPartitioned
	if _, perr := part.Partition(); perr != nil {
		// No feasible packing: a legitimate global-only point (the
		// heuristic found no per-core-schedulable split).
		return point, nil
	}
	point.PartitionFeasible = true
	resP, err := verifiedRun(part)
	if err != nil {
		return point, fmt.Errorf("seed %#x (partitioned, %d cpus): %w", seed, sc.CPUs, err)
	}
	point.PartitionedRatio = resP.SuccessRatio()
	if point.GlobalRatio+1e-12 < point.PartitionedRatio {
		return point, fmt.Errorf("seed %#x: global success ratio %.4f below partitioned %.4f on the same task set — migration freedom must not lose jobs",
			seed, point.GlobalRatio, point.PartitionedRatio)
	}
	return point, nil
}

// multicoreScenario derives a multiprocessor scenario from the seed:
// 2 or 4 cores, fixed-priority or EDF, and a UUniFast task set in one
// of two utilization bands. The moderate band (≈0.25–0.35 per core,
// no task above utilization ½) sits inside the global-RM and
// global-EDF sufficient bounds, so both dispatch modes meet every
// deadline and the global ≥ partitioned criterion is exercised on a
// feasible partition. The overload band (>1.0 per core) provably
// defeats any partitioning — pigeonhole puts some core above
// utilization 1 — so those points run global-only, exercising
// migration and deadline handling under pressure.
func multicoreScenario(seed uint64) scenario.Scenario {
	r := taskset.NewRand(seed)
	cpus := 2
	if r.Float64() < 0.5 {
		cpus = 4
	}
	policy := "fixed-priority"
	if r.Float64() < 0.5 {
		policy = "edf"
	}
	perCore, umax := 0.25+0.10*r.Float64(), 0.5
	n := cpus + 1 + r.Intn(2*cpus)
	if r.Float64() < 0.35 {
		// Overload band. Many sub-0.7 tasks keep UUniFast from
		// clamping any draw at utilization 1.0, so the realized total
		// stays above cpus and — by pigeonhole — no partition onto
		// cpus unit-capacity cores can exist.
		perCore, umax = 1.05+0.15*r.Float64(), 0.7
		n = 4 * cpus
	}
	// Redraw concentration outliers: comparison points with a single
	// task above ½ utilization can trip the Dhall effect, where global
	// dispatch legitimately misses a deadline the partitioned split
	// meets. That is a property of the policy, not an engine bug, so
	// keep the comparison band inside the global-schedulability bounds.
	var set *taskset.Set
	var err error
	for attempt := 0; ; attempt++ {
		g := taskset.NewGenerator(r.Uint64())
		g.PeriodMin = 20 * vtime.Millisecond
		g.PeriodMax = 400 * vtime.Millisecond
		if set, err = g.Generate(n, perCore*float64(cpus)); err != nil {
			panic(fmt.Sprintf("sim: multicore task generation: %v", err)) // generator bug
		}
		if maxUtil(set) <= umax {
			break
		}
		if attempt >= 64 {
			panic(fmt.Sprintf("sim: multicore seed %#x: no draw within umax %.2f", seed, umax))
		}
	}
	sc := scenario.Scenario{
		Name:        fmt.Sprintf("mc-%016x", seed),
		Description: "seeded multiprocessor differential scenario (x13)",
		Policy:      policy,
		CPUs:        cpus,
		Horizon:     Duration(2 * vtime.Second),
		Seed:        seed,
	}
	for _, t := range set.Tasks {
		sc.Tasks = append(sc.Tasks, scenario.FromTask(t))
	}
	return sc
}

// maxUtil returns the largest single-task utilization of the set.
func maxUtil(set *taskset.Set) float64 {
	var u float64
	for _, t := range set.Tasks {
		if v := float64(t.Cost) / float64(t.Period); v > u {
			u = v
		}
	}
	return u
}

// RenderMulticore prints the sweep in the artefact table style.
func RenderMulticore(points []MulticorePoint) string {
	var b strings.Builder
	b.WriteString("X13 — multiprocessor differential sweep: oracle-clean on every run, global ≥ partitioned where a partition exists\n")
	fmt.Fprintf(&b, "%-22s %-14s %4s %5s %6s  %-11s %8s %8s %10s\n",
		"scenario", "policy", "cpus", "tasks", "util", "partition", "global", "part", "migrations")
	var feasible, migrations int
	for _, p := range points {
		placed, ratio := "infeasible", "-"
		if p.PartitionFeasible {
			feasible++
			placed = "first-fit"
			ratio = fmt.Sprintf("%.4f", p.PartitionedRatio)
		}
		migrations += p.Migrations
		fmt.Fprintf(&b, "%-22s %-14s %4d %5d %6.3f  %-11s %8.4f %8s %10d\n",
			p.Name, p.Policy, p.CPUs, p.Tasks, p.Util, placed, p.GlobalRatio, ratio, p.Migrations)
	}
	fmt.Fprintf(&b, "%d task sets verified on both dispatch modes, %d feasible partitions beaten-or-matched by global dispatch, %d migrations observed, 0 invariant violations\n",
		len(points), feasible, migrations)
	return b.String()
}
