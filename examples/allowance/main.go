// Allowance walks through the paper's §4 tolerance computations on
// the Table 2 system: the equitable allowance found by binary search,
// the Table 3 shifted response times, the per-task maximum overrun
// behind the system treatment, and a sweep showing how the allowance
// shrinks as the system is loaded.
//
//	go run ./examples/allowance
package main

import (
	"fmt"
	"log"

	"repro/internal/allowance"
	"repro/internal/experiments"
	"repro/internal/taskset"
	"repro/internal/vtime"
)

func main() {
	rows2, err := experiments.Table2()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(experiments.RenderTable2(rows2))
	rows3, err := experiments.Table3()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(experiments.RenderTable3(rows3))

	// How the equitable allowance responds to load: inflate every
	// cost of the Table 2 system step by step and recompute.
	fmt.Println("Allowance vs load (Table 2 system, all costs inflated):")
	fmt.Printf("%10s %8s %12s\n", "extra C", "U", "allowance")
	base := experiments.Table2Set()
	for extra := int64(0); ; extra += 2 {
		s := base.WithCostDelta(vtime.Millis(extra))
		a, err := allowance.Equitable(s, 0)
		if err != nil {
			fmt.Printf("%10s %8.3f %12s\n", vtime.Millis(extra), s.Utilization(), "(infeasible)")
			break
		}
		fmt.Printf("%10s %8.3f %12v\n", vtime.Millis(extra), s.Utilization(), a)
		if a == 0 {
			break
		}
	}

	// The §4.3 view: how much may each task alone overrun?
	fmt.Println("\nPer-task maximum overrun (system allowance):")
	maxo, err := allowance.System(base, 0)
	if err != nil {
		log.Fatal(err)
	}
	for i, t := range base.Tasks {
		fmt.Printf("  %-6s may overrun by %v before some deadline breaks\n", t.Name, maxo[i])
	}

	// A tighter two-task example where the binding constraint moves.
	tight := taskset.MustNew(
		taskset.Task{Name: "a", Priority: 2, Period: vtime.Millis(50), Deadline: vtime.Millis(25), Cost: vtime.Millis(10)},
		taskset.Task{Name: "b", Priority: 1, Period: vtime.Millis(100), Deadline: vtime.Millis(60), Cost: vtime.Millis(20)},
	)
	tab, err := allowance.Compute(tight, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nTwo-task example:")
	for i, t := range tight.Tasks {
		fmt.Printf("  %-3s WCRT=%v  WCRT+A=%v  maxOverrun=%v\n",
			t.Name, tab.WCRT[i], tab.EquitableWCRT[i], tab.MaxOverrun[i])
	}
	fmt.Printf("  equitable allowance: %v\n", tab.Equitable)
}
