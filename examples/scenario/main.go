// Scenario demonstrates the public sim facade: the same figure-5 run
// expressed once through the functional-options builder and once
// loaded from a declarative JSON spec, producing identical traces —
// then an overload variant that swaps the scheduler by name only.
//
//	go run ./examples/scenario
package main

import (
	"fmt"
	"log"

	"repro/internal/vtime"
	"repro/sim"
)

func main() {
	// Front door 1: the builder.
	built, err := sim.New(
		sim.WithName("figure5"),
		sim.WithTasks(
			sim.Task{Name: "tau1", Priority: 20, Period: sim.Millis(200), Deadline: sim.Millis(70), Cost: sim.Millis(29)},
			sim.Task{Name: "tau2", Priority: 18, Period: sim.Millis(250), Deadline: sim.Millis(120), Cost: sim.Millis(29)},
			sim.Task{Name: "tau3", Priority: 16, Period: sim.Millis(1500), Deadline: sim.Millis(120), Cost: sim.Millis(29), Offset: sim.Millis(1000)},
		),
		sim.WithTreatment("stop"),
		sim.WithFaults(sim.Fault{Task: "tau1", Kind: sim.FaultOverrunAt, Job: 5, Extra: sim.Millis(40)}),
		sim.WithHorizon(vtime.Millis(1500)),
		sim.WithTimerResolution(vtime.Millis(10)),
	)
	if err != nil {
		log.Fatal(err)
	}
	builtRes, err := built.Run()
	if err != nil {
		log.Fatal(err)
	}

	// Front door 2: the JSON spec.
	loaded, err := sim.Load("testdata/scenarios/figure5.json")
	if err != nil {
		log.Fatal(err)
	}
	loadedRes, err := loaded.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("figure-5 scenario, built vs loaded:")
	fmt.Printf("  identical traces: %v\n", builtRes.Log.EncodeString() == loadedRes.Log.EncodeString())
	fmt.Printf("  detections=%d success=%.4f\n\n", loadedRes.Detections, loadedRes.SuccessRatio())
	fmt.Print(loadedRes.Summary())

	// Swapping the scheduler is a name change, not a code change.
	fmt.Printf("\nregistered policies: %v\n", sim.Policies())
	overload, err := sim.Load("testdata/scenarios/edf-overload.json")
	if err != nil {
		log.Fatal(err)
	}
	overloadRes, err := overload.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("edf under overload (admission skipped): success=%.4f\n", overloadRes.SuccessRatio())
}
