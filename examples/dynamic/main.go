// Dynamic demonstrates the paper's §7 future work implemented here:
// a system where tasks are added and removed at runtime, with
// admission control re-run and detectors re-derived on every change.
// A task that would break feasibility is rejected; an admitted faulty
// task is contained by its freshly computed detector.
//
//	go run ./examples/dynamic
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/taskset"
	"repro/internal/vtime"
)

func main() {
	base, err := taskset.New(
		taskset.Task{Name: "steady", Priority: 10, Period: vtime.Millis(100), Deadline: vtime.Millis(100), Cost: vtime.Millis(25)},
	)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := core.NewSystem(core.Config{
		Tasks:     base,
		Treatment: detect.Stop,
		// The newcomer "bursty" systematically overruns by 60 ms.
		Faults:          fault.Plan{"bursty": fault.OverrunEvery{K: 1, Extra: vtime.Millis(60)}},
		Horizon:         vtime.Millis(3000),
		TimerResolution: detect.DefaultTimerResolution,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("t=0: start with %d task(s); equitable allowance %v\n",
		base.Len(), sys.Allowance().Equitable)

	res, err := sys.RunWith(func(e *engine.Engine, sup *detect.Supervisor) {
		e.Schedule(vtime.AtMillis(400), func(now vtime.Time) {
			// Admissible addition.
			t := taskset.Task{Name: "bursty", Priority: 5, Period: vtime.Millis(200), Deadline: vtime.Millis(200), Cost: vtime.Millis(30)}
			if err := sup.AdmitTask(e, t); err != nil {
				fmt.Printf("t=%v: ADMIT %s rejected: %v\n", now, t.Name, err)
				return
			}
			fmt.Printf("t=%v: admitted %s; allowance now %v\n", now, t.Name, sup.Table().Equitable)
		})
		e.Schedule(vtime.AtMillis(600), func(now vtime.Time) {
			// Inadmissible addition: would need 80 ms every 100 ms on
			// top of the existing load.
			t := taskset.Task{Name: "greedy", Priority: 4, Period: vtime.Millis(100), Deadline: vtime.Millis(100), Cost: vtime.Millis(80)}
			if err := sup.AdmitTask(e, t); err != nil {
				fmt.Printf("t=%v: admission control rejected %s (as it must): %v\n", now, t.Name, err)
			} else {
				fmt.Printf("t=%v: BUG: %s admitted\n", now, t.Name)
			}
		})
		e.Schedule(vtime.AtMillis(2000), func(now vtime.Time) {
			if err := sup.RemoveTask(e, "bursty"); err != nil {
				fmt.Printf("t=%v: remove failed: %v\n", now, err)
				return
			}
			fmt.Printf("t=%v: removed bursty; allowance back to %v\n", now, sup.Table().Equitable)
		})
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nOutcome:")
	fmt.Print(res.Report.Render())
	s := res.Report.Tasks["steady"]
	fmt.Printf("\nsteady failed %d of %d jobs — the detectors confined every fault of the\n", s.Failed, s.Released)
	fmt.Println("dynamically admitted task (all its overruns were stopped at its WCRT).")
}
