// Aperiodic demonstrates the paper's §7 outlook implemented here: an
// aperiodic workload served by a polling server that admission
// control treats as just another periodic task, so the paper's
// detectors and allowances protect the periodic tasks from any
// aperiodic burst — and from a buggy server that exceeds its declared
// capacity.
//
//	go run ./examples/aperiodic
package main

import (
	"fmt"
	"log"

	"repro/internal/analysis"
	"repro/internal/aperiodic"
	"repro/internal/taskset"
	"repro/internal/vtime"
)

func ms(v int64) vtime.Duration { return vtime.Millis(v) }

func main() {
	periodic, err := taskset.New(
		taskset.Task{Name: "control", Priority: 10, Period: ms(100), Deadline: ms(100), Cost: ms(30)},
	)
	if err != nil {
		log.Fatal(err)
	}
	server := &aperiodic.PollingServer{
		Task: taskset.Task{Name: "server", Priority: 5, Period: ms(50), Deadline: ms(50), Cost: ms(10)},
		Requests: []aperiodic.Request{
			{ID: "cmd-1", Arrival: vtime.AtMillis(10), Cost: ms(8), Deadline: ms(100)},
			{ID: "cmd-2", Arrival: vtime.AtMillis(60), Cost: ms(15), Deadline: ms(250)},
			{ID: "burst-a", Arrival: vtime.AtMillis(300), Cost: ms(20)},
			{ID: "burst-b", Arrival: vtime.AtMillis(300), Cost: ms(20)},
			{ID: "burst-c", Arrival: vtime.AtMillis(300), Cost: ms(20)},
		},
	}

	// The server enters admission control as a plain periodic task.
	set, _, err := server.Attach(periodic, nil)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := analysis.Feasible(set)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Admission control over {control, server}:")
	fmt.Print(rep.Render(set))

	e, served, err := server.Run(periodic, nil, ms(1000))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nAperiodic requests (FIFO through the 10ms/50ms server):")
	fmt.Printf("%-8s %9s %7s %11s %10s %6s\n", "id", "arrival", "cost", "completion", "response", "soft")
	for _, r := range served {
		soft := "-"
		if r.Deadline > 0 {
			if r.MissedSoftDeadline() {
				soft = "MISS"
			} else if r.Done {
				soft = "ok"
			}
		}
		comp := "unserved"
		respStr := "-"
		if r.Done {
			comp = r.Completion.String()
			respStr = r.Response.String()
		}
		fmt.Printf("%-8s %9v %7v %11s %10s %6s\n", r.ID, r.Arrival, r.Cost, comp, respStr, soft)
	}

	missed := 0
	for _, j := range e.Jobs("control") {
		if j.Done() && j.Missed() {
			missed++
		}
	}
	fmt.Printf("\nperiodic task deadline misses during the burst: %d (the capacity cap\n", missed)
	fmt.Println("means no aperiodic load can exceed what admission control budgeted).")
}
