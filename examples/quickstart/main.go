// Quickstart: define a periodic task system, run the paper's
// admission control, execute it with fault detectors under the stop
// treatment, and print the resulting schedule and summary.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/chart"
	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/fault"
	"repro/internal/taskset"
	"repro/internal/vtime"
)

func main() {
	// The paper's Table 2 system: three periodic tasks, RTSJ
	// priorities (larger = higher), milliseconds.
	tasks, err := taskset.New(
		taskset.Task{Name: "tau1", Priority: 20, Period: vtime.Millis(200), Deadline: vtime.Millis(70), Cost: vtime.Millis(29)},
		taskset.Task{Name: "tau2", Priority: 18, Period: vtime.Millis(250), Deadline: vtime.Millis(120), Cost: vtime.Millis(29)},
		taskset.Task{Name: "tau3", Priority: 16, Period: vtime.Millis(1500), Deadline: vtime.Millis(120), Cost: vtime.Millis(29), Offset: vtime.Millis(1000)},
	)
	if err != nil {
		log.Fatal(err)
	}

	// Build the system: admission control runs here and rejects
	// infeasible sets. Inject the §6 fault: τ1's job 5 overruns by
	// 40 ms; the stop treatment contains it.
	sys, err := core.NewSystem(core.Config{
		Tasks:           tasks,
		Treatment:       detect.Stop,
		Faults:          fault.Plan{"tau1": fault.OverrunAt{Job: 5, Extra: vtime.Millis(40)}},
		Horizon:         vtime.Millis(1500),
		TimerResolution: detect.DefaultTimerResolution,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Admission control (exact response-time analysis):")
	fmt.Print(sys.Admission().Render(tasks))
	fmt.Printf("\nEquitable allowance: %v per task; max single-task overrun: %v\n\n",
		sys.Allowance().Equitable, sys.Allowance().MaxOverrun[0])

	res, err := sys.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Execution around the faulty activation (t = 1000 ms):")
	fmt.Println(chart.ASCII(res.Log, chart.Options{
		From:   vtime.AtMillis(990),
		To:     vtime.AtMillis(1140),
		CellMS: 2,
		Tasks:  []string{"tau1", "tau2", "tau3"},
		WCRTMarks: map[string]vtime.Duration{
			"tau1": sys.Allowance().WCRT[0],
			"tau2": sys.Allowance().WCRT[1],
			"tau3": sys.Allowance().WCRT[2],
		},
	}, map[string]vtime.Duration{
		"tau1": vtime.Millis(70), "tau2": vtime.Millis(120), "tau3": vtime.Millis(120),
	}))
	fmt.Println(res.Report.Render())
	fmt.Printf("faults detected: %d\n", res.Detections)
}
