// Rtsjstyle writes the paper's experiment the way its Java code is
// written: against the RTSJ-flavoured API of internal/rtsj —
// RealtimeThreadExtended with the overloaded start() installing a
// PeriodicTimer detector at the WCRT, waitForNextPeriod() maintaining
// the job counter, and a PriorityScheduler whose feasibility methods
// actually work (unlike RI's and jRate's at the time).
//
//	go run ./examples/rtsjstyle
package main

import (
	"fmt"
	"log"

	"repro/internal/chart"
	"repro/internal/metrics"
	"repro/internal/rtsj"
	"repro/internal/vtime"
)

func ms(v int64) vtime.Duration { return vtime.Millis(v) }

func main() {
	vm := rtsj.NewVM(rtsj.VMConfig{
		Horizon:         ms(1500),
		TimerResolution: ms(10), // jRate's PeriodicTimer granularity
	})
	sched := rtsj.NewScheduler()

	// run() bodies in the paper's idiom: wait for the period, do the
	// job's work. τ1's fifth job voluntarily overruns by 40 ms.
	faulty := func(t *rtsj.RealtimeThreadExtended) {
		for t.WaitForNextPeriod() {
			work := ms(29)
			if t.JobIndex() == 5 {
				work += ms(40)
			}
			t.Compute(work)
		}
	}
	clean := func(t *rtsj.RealtimeThreadExtended) {
		for t.WaitForNextPeriod() {
			t.Compute(ms(29))
		}
	}

	tau1 := vm.NewRealtimeThreadExtended("tau1", rtsj.PriorityParameters{Priority: 20},
		rtsj.PeriodicParameters{Period: ms(200), Cost: ms(29), Deadline: ms(70)},
		sched, rtsj.ExtSystemAllowance, faulty)
	tau2 := vm.NewRealtimeThreadExtended("tau2", rtsj.PriorityParameters{Priority: 18},
		rtsj.PeriodicParameters{Period: ms(250), Cost: ms(29), Deadline: ms(120)},
		sched, rtsj.ExtSystemAllowance, clean)
	tau3 := vm.NewRealtimeThreadExtended("tau3", rtsj.PriorityParameters{Priority: 16},
		rtsj.PeriodicParameters{Start: ms(1000), Period: ms(1500), Cost: ms(29), Deadline: ms(120)},
		sched, rtsj.ExtSystemAllowance, clean)

	// start() overload: admission control + detector installation.
	for _, th := range []*rtsj.RealtimeThreadExtended{tau1, tau2, tau3} {
		if err := th.Start(); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("WCRTs from the overloaded start(): %v / %v / %v\n",
		tau1.WCRT(), tau2.WCRT(), tau3.WCRT())

	if feasible, err := sched.IsFeasible(); err != nil || !feasible {
		log.Fatalf("admission control: feasible=%v err=%v", feasible, err)
	}

	if err := vm.Run(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nThe Figure 7 window, via goroutine-backed RTSJ threads:")
	fmt.Println(chart.ASCII(vm.Log(), chart.Options{
		From: vtime.AtMillis(990), To: vtime.AtMillis(1140), CellMS: 2,
		Tasks: []string{"tau1", "tau2", "tau3"},
		WCRTMarks: map[string]vtime.Duration{
			"tau1": tau1.WCRT(), "tau2": tau2.WCRT(), "tau3": tau3.WCRT(),
		},
	}, map[string]vtime.Duration{
		"tau1": ms(70), "tau2": ms(120), "tau3": ms(120),
	}))
	fmt.Println(metrics.Analyze(vm.Log()).Render())
	fmt.Printf("detections: tau1=%d tau2=%d tau3=%d\n",
		tau1.Detections(), tau2.Detections(), tau3.Detections())
}
