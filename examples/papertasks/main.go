// Papertasks replays the paper's whole evaluation (Section 6): the
// Table 2 system with the voluntary cost overrun on τ1, executed under
// all five configurations — Figures 3 through 7 — with an ASCII chart
// and the per-task outcome for each.
//
//	go run ./examples/papertasks
package main

import (
	"fmt"
	"log"

	"repro/internal/chart"
	"repro/internal/experiments"
	"repro/internal/vtime"
)

func main() {
	for _, fig := range []experiments.Figure{
		experiments.Figure3, experiments.Figure4, experiments.Figure5,
		experiments.Figure6, experiments.Figure7,
	} {
		res, err := experiments.RunFigure(fig)
		if err != nil {
			log.Fatal(err)
		}
		o := experiments.Outcome(fig, res)
		fmt.Println(experiments.RenderOutcome(o))
		from, to := experiments.FigureWindow()
		fmt.Println(chart.ASCII(res.Log, chart.Options{
			From: from, To: to, CellMS: 2,
			Tasks: []string{"tau1", "tau2", "tau3"},
			WCRTMarks: map[string]vtime.Duration{
				"tau1": res.Allowance.WCRT[0],
				"tau2": res.Allowance.WCRT[1],
				"tau3": res.Allowance.WCRT[2],
			},
		}, map[string]vtime.Duration{
			"tau1": vtime.Millis(70), "tau2": vtime.Millis(120), "tau3": vtime.Millis(120),
		}))
	}
	fmt.Println("Compare with the paper: Fig 3/4 lose tau3 at 1120 ms; Fig 5 stops tau1 at 1030;")
	fmt.Println("Fig 6 stops tau1 at 1040 (WCRT+11); Fig 7 stops tau1 at 1062 (WCRT+33) and")
	fmt.Println("tau2/tau3 finish just before their deadlines (1091 and exactly 1120).")
}
