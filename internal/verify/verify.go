// Package verify is the online invariant oracle of the reproduction:
// a trace.Sink that validates, event by event, the scheduling axioms
// every correct run must satisfy — regardless of workload. Where the
// golden traces pin known scenarios byte for byte, the checker turns
// *every* run (including fuzzed ones, see the gen subpackage) into a
// self-verifying experiment: feed it the event stream, then ask Err
// for the violations.
//
// The axioms checked, per event:
//
//   - timestamps are monotone (non-decreasing);
//   - at most one job runs per core at any instant, and a dispatch
//     switch is always bracketed by the displaced job's
//     preempt/end/stop;
//   - on multiprocessor runs (CPUs > 1): a resume stays on the job's
//     last core — a cross-core dispatch must be a JobMigrate, which
//     in turn must change core; under partitioned placement every
//     dispatch lands on the task's pinned core and nothing ever
//     migrates; and at every settled instant (all events of that
//     time processed) no core idles while an eligible job waits
//     (work conservation — per core under partitioned placement);
//   - jobs of one task are released exactly per the task's declared
//     release law — strictly periodically (offset + q·T) by default,
//     or, for a task driven by an arrival source (Config.Sources),
//     record for record against a fresh replay of that source: the
//     same seeded stochastic process or trace yields the same arrival
//     instants, so even "random" releases are checked exactly — and
//     dispatched in release order (only the head of a task's backlog
//     may run — the arbitrary-deadline model);
//   - every released job is resolved by its absolute deadline: it
//     completes, is stopped, or a DeadlineMiss is recorded exactly at
//     release + D (a job finishing exactly at its deadline is not a
//     miss, matching the paper's closed inequalities);
//   - each dispatch picks the policy-best ready head — fixed-priority
//     order exactly; EDF and the EDF-ordered overload baselines (RED,
//     best-effort, D-over) via recomputed deadline keys;
//   - detector releases fire exactly at release_q + detector offset,
//     the paper's latest-detection bound (WCRT, or the equitable
//     shifted WCRT, quantized to the timer resolution), and flag only
//     live unfinished jobs;
//   - per-task conservation: releases = completions + stops + jobs
//     still live at the horizon, with every live job either unexpired
//     or flagged as a miss;
//   - a polling server's per-job execution never overdraws its
//     declared capacity (plus charged context-switch overhead).
//
// The checker is pure bookkeeping over the public trace vocabulary —
// it never peeks at engine internals — so it can equally replay a
// decoded log from disk (the golden-trace semantic validation) or run
// live inside a streaming-collection pipeline via trace.Tee.
package verify

import (
	"fmt"
	"strings"

	"repro/internal/taskset"
	"repro/internal/trace"
	"repro/internal/vtime"
)

// Violation is one invariant breach, anchored at the offending event.
type Violation struct {
	// At is the instant of the event that exposed the breach.
	At vtime.Time
	// Rule is the short stable identifier of the violated axiom
	// (e.g. "monotone-time", "dispatch-order", "server-budget").
	Rule string
	// Msg is the human-readable account.
	Msg string
}

// String renders the violation one-per-line style.
func (v Violation) String() string {
	return fmt.Sprintf("t=%v [%s] %s", v.At, v.Rule, v.Msg)
}

// Error aggregates a run's violations; core.Run and sim return it
// (wrapped) when the oracle is enabled and an axiom is broken.
type Error struct {
	// Violations holds the first MaxViolations breaches in event order.
	Violations []Violation
	// Total counts every breach, including ones dropped past the cap.
	Total int
}

// Error summarizes the breaches, newline-separated.
func (e *Error) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "verify: %d invariant violation(s)", e.Total)
	for _, v := range e.Violations {
		b.WriteString("\n  ")
		b.WriteString(v.String())
	}
	if e.Total > len(e.Violations) {
		fmt.Fprintf(&b, "\n  ... %d more", e.Total-len(e.Violations))
	}
	return b.String()
}

// DefaultMaxViolations caps how many violations a checker records
// verbatim; the total keeps counting past it.
const DefaultMaxViolations = 16

// Config parameterizes a Checker with the run's declared ground truth.
type Config struct {
	// Tasks is the declared task system in engine order (declaration
	// index = engine task id, the dispatch tie-breaker). Required.
	Tasks *taskset.Set
	// Policy names the scheduling policy whose priority order
	// dispatches must follow: "" or "fixed-priority" for the paper's
	// scheduler; "edf", "best-effort", "red" and "d-over" share the
	// EDF key. An unrecognized name disables the dispatch-order check
	// (the other axioms still apply).
	Policy string
	// Sources maps task names to a fresh arrival-source iterator for
	// tasks whose releases are source-driven rather than periodic.
	// Each must be a reconstruction (same kind, parameters and seed —
	// never the engine's own instance, which is already consumed): the
	// checker replays it release by release and demands exact arrival
	// instants, per-record deadline overrides applied to the deadline
	// axiom, and no releases past exhaustion. Nil or absent entries
	// keep the periodic offset + q·T law.
	Sources map[string]taskset.Source
	// DetectorOffsets maps task names to the expected detector offset
	// within each period — the latest-detection bound (WCRT or
	// equitable WCRT, quantized). Nil skips detector-timing checks.
	DetectorOffsets map[string]vtime.Duration
	// ServerBudgets maps polling-server task names to their per-job
	// capacity; a server job executing past it (plus charged
	// context-switch overhead) is a violation. Nil skips the check.
	ServerBudgets map[string]vtime.Duration
	// ContextSwitch is the per-dispatch overhead charged by the run,
	// admitted on top of each server budget.
	ContextSwitch vtime.Duration
	// CPUs is the number of processors of the run (0 means 1). The
	// multiprocessor axioms — migration legality, work conservation —
	// arm only when CPUs > 1; per-core occupancy degenerates to the
	// classic single-running-job rule at 1.
	CPUs int
	// Assignment pins task names to cores under partitioned
	// placement; nil means global dispatch. A pinned task dispatched
	// on any other core, or migrating at all, is a violation.
	Assignment map[string]int
	// Horizon is the run's end instant, used by Finish to decide
	// which live jobs legitimately outlast the simulation.
	Horizon vtime.Time
	// MaxViolations caps recorded breaches (0 = DefaultMaxViolations).
	MaxViolations int
}

// dispatch orders the checker can recompute.
type dispatchOrder uint8

const (
	orderUnknown dispatchOrder = iota
	orderFixedPriority
	orderEDF
)

func orderFor(policy string) dispatchOrder {
	switch policy {
	case "", "fixed-priority":
		return orderFixedPriority
	case "edf", "best-effort", "red", "d-over":
		return orderEDF
	default:
		return orderUnknown
	}
}

// jobState is the checker's reconstruction of one job from its events.
type jobState struct {
	tc          *taskCheck
	q           int64
	release     vtime.Time
	absDeadline vtime.Time
	begun       bool
	running     bool
	terminated  bool
	missed      bool
	runSince    vtime.Time
	executed    vtime.Duration
	dispatches  int64
	cpu         int // core the job is running on (or last ran on)
}

func (j *jobState) name() string { return fmt.Sprintf("%s#%d", j.tc.name, j.q) }

// taskCheck is the checker's per-task state.
type taskCheck struct {
	name    string
	id      int
	task    taskset.Task
	known   bool // declared in Config.Tasks (dynamic tasks are not)
	removed bool
	budget  vtime.Duration // server capacity (0 = unchecked)
	core    int            // pinned core under partitioned placement
	pinned  bool           // set when Config.Assignment names the task

	nextQ    int64 // next expected release index
	nextDetQ int64 // next expected detector check index

	// src replays the task's declared arrival source (nil = periodic);
	// srcNext/srcOK stage its next expected release.
	src     taskset.Source
	srcNext taskset.Release
	srcOK   bool

	// queue holds the live (released, unterminated) jobs in release
	// order; queue[head] is the only job of the task allowed to run.
	queue []*jobState
	head  int

	released, completed, stopped, misses int64
}

func (tc *taskCheck) live() int { return len(tc.queue) - tc.head }

func (tc *taskCheck) headJob() *jobState {
	if tc.head < len(tc.queue) {
		return tc.queue[tc.head]
	}
	return nil
}

// jobAt finds a live job by index (binary search over ascending q).
func (tc *taskCheck) jobAt(q int64) *jobState {
	lo, hi := tc.head, len(tc.queue)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if tc.queue[mid].q < q {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(tc.queue) && tc.queue[lo].q == q {
		return tc.queue[lo]
	}
	return nil
}

// consume removes a terminated job from the live queue. Like the
// engine's own pending queue, the consumed prefix is nil'd at once
// and compacted away amortizedly once it dominates the array, so the
// oracle's memory stays proportional to the live backlog — not the
// total releases — and composes with Stream mode's bounded-memory
// guarantee even for tasks that never go idle.
func (tc *taskCheck) consume(j *jobState) {
	if tc.headJob() == j {
		tc.queue[tc.head] = nil
		tc.head++
		if tc.head == len(tc.queue) {
			tc.queue = tc.queue[:0]
			tc.head = 0
		} else if tc.head >= 32 && tc.head*2 >= len(tc.queue) {
			n := copy(tc.queue, tc.queue[tc.head:])
			for i := n; i < len(tc.queue); i++ {
				tc.queue[i] = nil
			}
			tc.queue = tc.queue[:n]
			tc.head = 0
		}
		return
	}
	for i := tc.head; i < len(tc.queue); i++ {
		if tc.queue[i] == j {
			tc.queue = append(tc.queue[:i], tc.queue[i+1:]...)
			return
		}
	}
}

// Checker consumes a run's trace events (it implements trace.Sink)
// and records every invariant violation. Drive it with Append, close
// with Finish, then read Err.
type Checker struct {
	cfg   Config
	order dispatchOrder

	tasks  []*taskCheck
	byName map[string]*taskCheck

	lastAt vtime.Time
	seen   bool
	// running[c] is the job currently occupying core c (nil = idle);
	// length 1 on uniprocessor runs.
	running []*jobState

	// dlheap is a min-heap of live, not-yet-expired jobs by absolute
	// deadline: once the clock passes a deadline, the job there must
	// have terminated or carry a recorded miss.
	dlheap []*jobState

	violations []Violation
	total      int
	finished   bool
}

// New builds a checker from the run's declared configuration.
func New(cfg Config) (*Checker, error) {
	if cfg.Tasks == nil || cfg.Tasks.Len() == 0 {
		return nil, fmt.Errorf("verify: Config.Tasks is required")
	}
	if cfg.MaxViolations <= 0 {
		cfg.MaxViolations = DefaultMaxViolations
	}
	if cfg.CPUs < 0 {
		return nil, fmt.Errorf("verify: Config.CPUs must be non-negative, got %d", cfg.CPUs)
	}
	cpus := cfg.CPUs
	if cpus == 0 {
		cpus = 1
	}
	c := &Checker{
		cfg:     cfg,
		order:   orderFor(cfg.Policy),
		byName:  make(map[string]*taskCheck, cfg.Tasks.Len()),
		running: make([]*jobState, cpus),
	}
	for i, t := range cfg.Tasks.Tasks {
		tc := &taskCheck{name: t.Name, id: i, task: t, known: true}
		if cfg.ServerBudgets != nil {
			tc.budget = cfg.ServerBudgets[t.Name]
		}
		if core, ok := cfg.Assignment[t.Name]; ok {
			if core < 0 || core >= cpus {
				return nil, fmt.Errorf("verify: task %q assigned to core %d of %d", t.Name, core, cpus)
			}
			tc.core, tc.pinned = core, true
		}
		if src := cfg.Sources[t.Name]; src != nil {
			tc.src = src
			tc.srcNext, tc.srcOK = src.Next()
		}
		c.tasks = append(c.tasks, tc)
		c.byName[t.Name] = tc
	}
	return c, nil
}

// violate records one breach.
func (c *Checker) violate(at vtime.Time, rule, format string, args ...any) {
	c.total++
	if len(c.violations) < c.cfg.MaxViolations {
		c.violations = append(c.violations, Violation{At: at, Rule: rule, Msg: fmt.Sprintf(format, args...)})
	}
}

// Violations returns the recorded breaches in event order.
func (c *Checker) Violations() []Violation { return c.violations }

// FinishErr closes the run and returns the aggregate violation error
// (nil when every axiom held) — the one post-run sequence both
// arming sites (core.RunWith and sim's bare-engine path) share, so
// the Finish-then-Err contract lives in one place.
func (c *Checker) FinishErr() error {
	c.Finish()
	return c.Err()
}

// Err returns nil when every axiom held, else the aggregate *Error.
func (c *Checker) Err() error {
	if c.total == 0 {
		return nil
	}
	return &Error{Violations: c.violations, Total: c.total}
}

// task resolves (or lazily creates, for dynamic additions and
// malformed traces) the per-task state behind an event.
func (c *Checker) task(e trace.Event) *taskCheck {
	tc, ok := c.byName[e.Task]
	if !ok {
		if e.Kind != trace.TaskAdded {
			c.violate(e.At, "unknown-task", "event %v for undeclared task %q", e.Kind, e.Task)
		}
		// Track it leniently from here on: conservation still applies,
		// parameter-dependent checks (release times, deadlines,
		// dispatch order) cannot.
		tc = &taskCheck{name: e.Task, id: len(c.tasks), known: false}
		c.tasks = append(c.tasks, tc)
		c.byName[e.Task] = tc
	}
	return tc
}

// better reports whether job a would be dispatched in preference to
// job b by the configured policy — the engine's ready-queue order,
// including its task-id tie-break.
func (c *Checker) better(a, b *jobState) bool {
	switch c.order {
	case orderFixedPriority:
		if a.tc.task.Priority != b.tc.task.Priority {
			return a.tc.task.Priority > b.tc.task.Priority
		}
		if a.release != b.release {
			return a.release.Before(b.release)
		}
	case orderEDF:
		if a.absDeadline != b.absDeadline {
			return a.absDeadline.Before(b.absDeadline)
		}
		if a.release != b.release {
			return a.release.Before(b.release)
		}
		if a.tc.name != b.tc.name {
			return a.tc.name < b.tc.name
		}
	}
	return a.tc.id < b.tc.id
}

// Deadline-heap primitives (min-heap on absDeadline, FIFO seq implicit
// in push order — only "earliest" matters here).

func (c *Checker) dlPush(j *jobState) {
	c.dlheap = append(c.dlheap, j)
	i := len(c.dlheap) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !c.dlheap[i].absDeadline.Before(c.dlheap[p].absDeadline) {
			break
		}
		c.dlheap[i], c.dlheap[p] = c.dlheap[p], c.dlheap[i]
		i = p
	}
}

func (c *Checker) dlPop() *jobState {
	top := c.dlheap[0]
	last := len(c.dlheap) - 1
	c.dlheap[0] = c.dlheap[last]
	c.dlheap = c.dlheap[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < last && c.dlheap[l].absDeadline.Before(c.dlheap[small].absDeadline) {
			small = l
		}
		if r < last && c.dlheap[r].absDeadline.Before(c.dlheap[small].absDeadline) {
			small = r
		}
		if small == i {
			break
		}
		c.dlheap[i], c.dlheap[small] = c.dlheap[small], c.dlheap[i]
		i = small
	}
	return top
}

// expireDeadlines enforces the release-resolution axiom up to instant
// now (exclusive): any job whose deadline strictly precedes now must
// have terminated or carry a recorded miss — the engine records the
// miss exactly at the deadline instant, after completions at that
// same instant (closed inequality).
func (c *Checker) expireDeadlines(now vtime.Time) {
	for len(c.dlheap) > 0 && c.dlheap[0].absDeadline.Before(now) {
		j := c.dlPop()
		if !j.terminated && !j.missed {
			c.violate(j.absDeadline, "deadline-unresolved",
				"job %s passed its deadline %v without completion, stop, or recorded miss", j.name(), j.absDeadline)
		}
	}
}

// core validates an event's core index against the configured CPU
// count, clamping out-of-range values to 0 after flagging them so
// the remaining bookkeeping can proceed.
func (c *Checker) core(e trace.Event) int {
	cpu := int(e.Arg)
	if cpu < 0 || cpu >= len(c.running) {
		c.violate(e.At, "cpu-index", "event %v of %s#%d names core %d of a %d-core run", e.Kind, e.Task, e.Job, cpu, len(c.running))
		return 0
	}
	return cpu
}

// checkDispatch validates one begin/resume/migrate: the job must be
// its task's backlog head and policy-best across the heads competing
// for the same dispatch slot.
func (c *Checker) checkDispatch(at vtime.Time, j *jobState, kind string, cpu int) {
	if other := c.running[cpu]; other != nil && other != j {
		c.violate(at, "double-run", "%s of %s while %s is still running", kind, j.name(), other.name())
	}
	if j.tc.pinned && j.tc.core != cpu {
		c.violate(at, "partition-placement", "%s of %s on core %d, but the task is pinned to core %d",
			kind, j.name(), cpu, j.tc.core)
	}
	if h := j.tc.headJob(); h != j {
		c.violate(at, "dispatch-non-head", "%s of %s but the task's oldest live job is %s (FIFO within a task)",
			kind, j.name(), h.name())
	}
	if c.order == orderUnknown || !j.tc.known {
		return
	}
	mcore := len(c.running) > 1
	for _, tc := range c.tasks {
		if tc == j.tc || !tc.known {
			continue
		}
		if tc.pinned && tc.core != cpu {
			// Partitioned placement: each core dispatches from its own
			// subset only, so cross-core heads never compete.
			continue
		}
		h := tc.headJob()
		if h == nil {
			continue
		}
		if mcore && h.running {
			// On M cores a better-ranked head already occupying
			// another core does not outrank this dispatch slot.
			continue
		}
		if c.better(h, j) {
			c.violate(at, "dispatch-order", "%s of %s while ready job %s is preferred by policy %q",
				kind, j.name(), h.name(), c.cfg.Policy)
		}
	}
}

// dispatched applies the shared bookkeeping of begin/resume/migrate.
func (c *Checker) dispatched(j *jobState, cpu int, at vtime.Time) {
	j.begun, j.running, j.runSince = true, true, at
	j.cpu = cpu
	j.dispatches++
	c.running[cpu] = j
}

// stopRun pauses j's execution accounting at instant now.
func (c *Checker) stopRun(j *jobState, now vtime.Time) {
	if j.running {
		j.executed += now.Sub(j.runSince)
		j.running = false
	}
	if c.running[j.cpu] == j {
		c.running[j.cpu] = nil
	}
}

// workConservation enforces, at a settled instant (every event of
// that time already processed), that no core idles while an eligible
// job waits: global dispatch fills every idle core from the union of
// ready heads; partitioned dispatch fills each core from its own
// subset. Armed only on multiprocessor runs. Polling servers, which
// legally idle on exhausted budget, are excluded.
func (c *Checker) workConservation(at vtime.Time) {
	idle := -1
	for cpu, j := range c.running {
		if j == nil {
			idle = cpu
			break
		}
	}
	if idle < 0 {
		return
	}
	for _, tc := range c.tasks {
		if tc.removed || tc.budget > 0 {
			continue
		}
		h := tc.headJob()
		if h == nil || h.running {
			continue
		}
		if tc.pinned {
			if c.running[tc.core] != nil {
				continue
			}
			c.violate(at, "work-conservation", "core %d idle at settled instant %v while %s waits on it", tc.core, at, h.name())
			return
		}
		c.violate(at, "work-conservation", "core %d idle at settled instant %v while %s is ready", idle, at, h.name())
		return
	}
}

// Append consumes one trace event (trace.Sink).
func (c *Checker) Append(e trace.Event) {
	if c.finished {
		c.violate(e.At, "event-after-finish", "event %v after Finish", e.Kind)
		return
	}
	if c.seen && e.At.Before(c.lastAt) {
		c.violate(e.At, "monotone-time", "event %v at %v after an event at %v", e.Kind, e.At, c.lastAt)
	}
	if c.seen && e.At.After(c.lastAt) && len(c.running) > 1 {
		// Time advanced: the state at lastAt is settled — check it.
		c.workConservation(c.lastAt)
	}
	c.seen = true
	if e.At.After(c.lastAt) {
		c.lastAt = e.At
	}
	c.expireDeadlines(e.At)

	switch e.Kind {
	case trace.TaskAdded:
		tc := c.task(e)
		// Dynamic admission: parameters are not in Config.Tasks, so
		// parameter-dependent checks stay off; releases and
		// conservation are still tracked.
		tc.known = false
		tc.removed = false
		return
	case trace.TaskRemoved:
		c.task(e).removed = true
		return
	}
	if e.Task == "" || e.Job < 0 {
		c.violate(e.At, "malformed-event", "event %v without task/job attribution", e.Kind)
		return
	}
	tc := c.task(e)

	switch e.Kind {
	case trace.JobRelease:
		c.release(e, tc)
	case trace.JobBegin:
		j := tc.jobAt(e.Job)
		if j == nil {
			c.violate(e.At, "dispatch-unknown-job", "begin of %s#%d which is not live", tc.name, e.Job)
			return
		}
		cpu := c.core(e)
		if j.begun {
			c.violate(e.At, "double-begin", "second begin of %s", j.name())
		}
		c.checkDispatch(e.At, j, "begin", cpu)
		c.dispatched(j, cpu, e.At)
	case trace.JobResume:
		j := tc.jobAt(e.Job)
		if j == nil {
			c.violate(e.At, "dispatch-unknown-job", "resume of %s#%d which is not live", tc.name, e.Job)
			return
		}
		cpu := c.core(e)
		if !j.begun {
			c.violate(e.At, "resume-before-begin", "resume of %s which never began", j.name())
		} else if cpu != j.cpu {
			c.violate(e.At, "resume-core", "resume of %s on core %d but it last ran on core %d (a cross-core dispatch must be a migrate)",
				j.name(), cpu, j.cpu)
		}
		if j.running {
			c.violate(e.At, "resume-running", "resume of %s which is already running", j.name())
		}
		c.checkDispatch(e.At, j, "resume", cpu)
		c.dispatched(j, cpu, e.At)
	case trace.JobMigrate:
		j := tc.jobAt(e.Job)
		if j == nil {
			c.violate(e.At, "dispatch-unknown-job", "migrate of %s#%d which is not live", tc.name, e.Job)
			return
		}
		cpu := c.core(e)
		if !j.begun {
			c.violate(e.At, "migrate-before-begin", "migrate of %s which never began", j.name())
		} else if cpu == j.cpu {
			c.violate(e.At, "migrate-same-core", "migrate of %s onto core %d where it already ran (a same-core dispatch is a resume)", j.name(), cpu)
		}
		if j.running {
			c.violate(e.At, "migrate-running", "migrate of %s which is already running", j.name())
		}
		if c.cfg.Assignment != nil {
			c.violate(e.At, "partition-migration", "migrate of %s under partitioned placement (pinned tasks never migrate)", j.name())
		}
		c.checkDispatch(e.At, j, "migrate", cpu)
		c.dispatched(j, cpu, e.At)
	case trace.JobPreempt:
		j := tc.jobAt(e.Job)
		if j == nil {
			c.violate(e.At, "preempt-not-running", "preempt of %s#%d which is not the running job", tc.name, e.Job)
			return
		}
		cpu := c.core(e)
		if !j.running || c.running[cpu] != j {
			c.violate(e.At, "preempt-not-running", "preempt of %s#%d which is not the job running on core %d", tc.name, e.Job, cpu)
		}
		c.stopRun(j, e.At)
	case trace.JobEnd:
		c.terminal(e, tc, false)
	case trace.JobStopped:
		c.terminal(e, tc, true)
	case trace.DeadlineMiss:
		j := tc.jobAt(e.Job)
		if j == nil {
			c.violate(e.At, "miss-after-end", "deadline miss for %s#%d which is not live (a terminated job cannot miss)", tc.name, e.Job)
			return
		}
		if j.missed {
			c.violate(e.At, "double-miss", "second deadline miss for %s", j.name())
		}
		if tc.known && e.At != j.absDeadline {
			c.violate(e.At, "miss-time", "deadline miss for %s at %v, want exactly its deadline %v", j.name(), e.At, j.absDeadline)
		}
		j.missed = true
		tc.misses++
	case trace.DetectorRelease:
		if c.cfg.DetectorOffsets == nil || !tc.known {
			return
		}
		off, ok := c.cfg.DetectorOffsets[tc.name]
		if !ok {
			return
		}
		if e.Job != tc.nextDetQ {
			c.violate(e.At, "detector-order", "detector check of %s#%d, want job %d (checks are periodic, in order)",
				tc.name, e.Job, tc.nextDetQ)
		}
		tc.nextDetQ = e.Job + 1
		want := vtime.Time(tc.task.Offset).Add(vtime.Duration(e.Job) * tc.task.Period).Add(off)
		if e.At != want {
			c.violate(e.At, "detector-time", "detector check of %s#%d at %v, want release+offset = %v (latest-detection bound)",
				tc.name, e.Job, e.At, want)
		}
	case trace.FaultDetected:
		if j := tc.jobAt(e.Job); j == nil {
			c.violate(e.At, "fault-on-terminated", "fault flagged on %s#%d which is not live (detectors only flag unfinished jobs)", tc.name, e.Job)
		}
	case trace.StopRequest:
		if j := tc.jobAt(e.Job); j == nil {
			c.violate(e.At, "stop-on-terminated", "stop requested for %s#%d which is not live", tc.name, e.Job)
		}
	case trace.AllowanceGrant:
		if j := tc.jobAt(e.Job); j == nil {
			c.violate(e.At, "grant-on-terminated", "allowance granted to %s#%d which is not live", tc.name, e.Job)
		}
		// A zero grant is legal: MaxOverrun is 0 on a tightly
		// utilized (yet feasible) system — only a negative grant is
		// nonsense.
		if e.Arg < 0 {
			c.violate(e.At, "grant-negative", "allowance grant of %d ns to %s#%d", e.Arg, tc.name, e.Job)
		}
	}
}

// release handles a JobRelease event.
func (c *Checker) release(e trace.Event, tc *taskCheck) {
	if tc.removed {
		c.violate(e.At, "release-after-removal", "release of %s#%d after the task was removed", tc.name, e.Job)
	}
	if e.Job != tc.nextQ {
		c.violate(e.At, "release-order", "release of %s#%d, want job %d (releases are sequential)", tc.name, e.Job, tc.nextQ)
	}
	tc.nextQ = e.Job + 1
	if tail := len(tc.queue); tail > tc.head && tc.queue[tail-1].q >= e.Job {
		// Keep the live queue strictly increasing in q so jobAt's
		// binary search stays sound even on malformed traces.
		c.violate(e.At, "release-order", "release of %s#%d does not extend the live backlog", tc.name, e.Job)
		return
	}
	j := &jobState{tc: tc, q: e.Job, release: e.At}
	if tc.known {
		deadline := tc.task.Deadline
		if tc.src != nil {
			// Source-driven release law: replay the reconstructed
			// source record for record. Seed-determinism makes even the
			// stochastic kinds exact; a per-record deadline override
			// narrows the deadline axiom for this job.
			if !tc.srcOK {
				c.violate(e.At, "release-source-exhausted", "release of %s#%d but its %s source is exhausted after %d release(s)",
					tc.name, e.Job, tc.src.Kind(), tc.released)
			} else {
				if e.At != tc.srcNext.At {
					c.violate(e.At, "release-time", "release of %s#%d at %v, want the %s source's next arrival %v",
						tc.name, e.Job, e.At, tc.src.Kind(), tc.srcNext.At)
				}
				if tc.srcNext.Deadline != 0 {
					deadline = tc.srcNext.Deadline
				}
				tc.srcNext, tc.srcOK = tc.src.Next()
			}
		} else {
			want := vtime.Time(tc.task.Offset).Add(vtime.Duration(e.Job) * tc.task.Period)
			if e.At != want {
				c.violate(e.At, "release-time", "release of %s#%d at %v, want offset+q·T = %v", tc.name, e.Job, e.At, want)
			}
		}
		j.absDeadline = e.At.Add(deadline)
		c.dlPush(j)
	}
	tc.released++
	tc.queue = append(tc.queue, j)
}

// terminal handles JobEnd and JobStopped.
func (c *Checker) terminal(e trace.Event, tc *taskCheck, stopped bool) {
	kind := "end"
	if stopped {
		kind = "stop"
	}
	j := tc.jobAt(e.Job)
	if j == nil {
		c.violate(e.At, "terminal-unknown-job", "%s of %s#%d which is not live", kind, tc.name, e.Job)
		return
	}
	if j.begun {
		if !j.running || c.running[j.cpu] != j {
			c.violate(e.At, "terminal-not-running", "%s of %s which is not the running job (only the running job can terminate)", kind, j.name())
		}
		if h := tc.headJob(); h != j {
			c.violate(e.At, "terminal-non-head", "%s of %s but the task's oldest live job is %s", kind, j.name(), h.name())
		}
	} else {
		// A job terminating without ever running is an admission-time
		// drop: the policy shed it at its release instant.
		if !stopped {
			c.violate(e.At, "end-before-begin", "completion of %s which never began", j.name())
		} else if e.At != j.release {
			c.violate(e.At, "stop-before-begin", "stop of %s at %v which never began (only admission drops at the release instant %v may)",
				j.name(), e.At, j.release)
		}
	}
	c.stopRun(j, e.At)
	j.terminated = true
	if stopped {
		tc.stopped++
	} else {
		tc.completed++
	}
	if tc.budget > 0 {
		allowed := tc.budget + vtime.Duration(j.dispatches)*c.cfg.ContextSwitch
		if j.executed > allowed {
			c.violate(e.At, "server-budget", "server job %s executed %v, overdrawing its capacity %v (+%v switch overhead)",
				j.name(), j.executed, tc.budget, allowed-tc.budget)
		}
	}
	tc.consume(j)
}

// Finish closes the run at the configured horizon and enforces the
// end-of-run axioms: expired deadlines are resolved and every task's
// releases are conserved (completions + stops + live backlog).
func (c *Checker) Finish() {
	if c.finished {
		return
	}
	c.finished = true
	end := c.cfg.Horizon
	if end < c.lastAt {
		end = c.lastAt
	}
	if c.seen && len(c.running) > 1 {
		// The trace's final state is settled through the horizon.
		c.workConservation(c.lastAt)
	}
	// The engine processes events up to and including the horizon, so
	// a deadline exactly at the horizon has had its miss recorded.
	for len(c.dlheap) > 0 && !c.dlheap[0].absDeadline.After(end) {
		j := c.dlPop()
		if !j.terminated && !j.missed {
			c.violate(j.absDeadline, "deadline-unresolved",
				"job %s passed its deadline %v without completion, stop, or recorded miss", j.name(), j.absDeadline)
		}
	}
	for _, tc := range c.tasks {
		if got := tc.completed + tc.stopped + int64(tc.live()); got != tc.released {
			c.violate(end, "conservation", "task %s released %d jobs but accounts for %d (%d completed + %d stopped + %d live)",
				tc.name, tc.released, got, tc.completed, tc.stopped, tc.live())
		}
		// The other half of the source contract: every arrival due
		// within the horizon must have been released (the engine
		// processes events up to and including End, so the bound is
		// closed). A silently dropped trace suffix fails here.
		if tc.src != nil && tc.srcOK && !tc.srcNext.At.After(end) {
			c.violate(end, "release-missing", "task %s's %s source has an arrival due at %v within the horizon that was never released",
				tc.name, tc.src.Kind(), tc.srcNext.At)
		}
	}
}
