package gen

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/vtime"
	"repro/sim/scenario"
)

// TestScenarioDeterministic pins the generator's contract: a seed is
// a complete reproducer, so the same seed must yield byte-identical
// scenarios.
func TestScenarioDeterministic(t *testing.T) {
	for seed := uint64(0); seed < 32; seed++ {
		a, errA := scenario.Marshal(ptr(Scenario(seed)))
		b, errB := scenario.Marshal(ptr(Scenario(seed)))
		if errA != nil || errB != nil {
			t.Fatalf("seed %d: marshal: %v / %v", seed, errA, errB)
		}
		if string(a) != string(b) {
			t.Fatalf("seed %d: two derivations differ:\n%s\n---\n%s", seed, a, b)
		}
	}
}

func ptr(sc scenario.Scenario) *scenario.Scenario { return &sc }

// TestScenarioValid runs the structural validator over a seed range —
// Scenario itself panics on an invalid derivation, so surviving the
// loop is the assertion.
func TestScenarioValid(t *testing.T) {
	for seed := uint64(0); seed < 128; seed++ {
		sc := Scenario(seed)
		if err := sc.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(sc.Tasks) < 2 || len(sc.Tasks) > 6 {
			t.Fatalf("seed %d: %d tasks, want 2..6", seed, len(sc.Tasks))
		}
	}
}

// TestScenarioSpaceCoverage asserts the generator actually reaches
// the whole scenario space over a modest seed range: every registered
// policy, every treatment, both collection modes, servers, overloads
// and all fault kinds.
func TestScenarioSpaceCoverage(t *testing.T) {
	policies := map[string]bool{}
	treatments := map[string]bool{}
	kinds := map[string]bool{}
	arrivalKinds := map[string]bool{}
	var stream, retain, servers, overload bool
	for seed := uint64(0); seed < 256; seed++ {
		sc := Scenario(seed)
		policies[sc.Policy] = true
		treatments[sc.Treatment] = true
		for _, f := range sc.Faults {
			kinds[f.Kind] = true
		}
		for _, a := range sc.Arrivals {
			arrivalKinds[a.Kind] = true
		}
		if sc.Streaming() {
			stream = true
		} else {
			retain = true
		}
		if len(sc.Servers) > 0 {
			servers = true
		}
		if sc.SkipAdmission {
			overload = true
		}
	}
	for _, p := range []string{"fixed-priority", "edf", "best-effort", "red", "d-over"} {
		if !policies[p] {
			t.Errorf("policy %q never generated", p)
		}
	}
	for _, tr := range []string{"none", "detect", "stop", "equitable", "system"} {
		if !treatments[tr] {
			t.Errorf("treatment %q never generated", tr)
		}
	}
	for _, k := range faultKinds {
		if !kinds[k] {
			t.Errorf("fault kind %q never generated", k)
		}
	}
	if !stream || !retain {
		t.Errorf("collection coverage: stream=%v retain=%v", stream, retain)
	}
	if !servers {
		t.Error("no scenario with a polling server generated")
	}
	if !overload {
		t.Error("no overload (skip-admission) scenario generated")
	}
	for _, k := range []string{scenario.ArrivalPoisson, scenario.ArrivalMMPP, scenario.ArrivalTrace} {
		if !arrivalKinds[k] {
			t.Errorf("arrival kind %q never generated", k)
		}
	}
}

// TestShrinkMinimizes drives the shrinker with a synthetic failure
// predicate ("fails whenever task t2 is present") and expects the
// fixpoint: one task, millisecond horizon, no faults, no servers, no
// knobs.
func TestShrinkMinimizes(t *testing.T) {
	sc := Scenario(7) // any seed with several tasks
	fails := func(cand scenario.Scenario) bool {
		for _, task := range cand.Tasks {
			if task.Name == "t2" {
				return true
			}
		}
		return false
	}
	if !fails(sc) {
		t.Fatal("precondition: generated scenario lacks t2")
	}
	shrunk := Shrink(sc, fails)
	if err := shrunk.Validate(); err != nil {
		t.Fatalf("shrunk scenario invalid: %v", err)
	}
	if !fails(shrunk) {
		t.Fatal("shrunk scenario no longer fails")
	}
	if len(shrunk.Tasks) != 1 || shrunk.Tasks[0].Name != "t2" {
		t.Errorf("tasks not minimized: %+v", shrunk.Tasks)
	}
	if len(shrunk.Faults) != 0 || len(shrunk.Servers) != 0 {
		t.Errorf("faults/servers not dropped: %d/%d", len(shrunk.Faults), len(shrunk.Servers))
	}
	if vtime.Duration(shrunk.Horizon) > 2*vtime.Millisecond {
		t.Errorf("horizon not minimized: %v", shrunk.Horizon)
	}
	if shrunk.Treatment != "none" || shrunk.TimerResolution != 0 || shrunk.Collect != nil {
		t.Errorf("knobs not cleared: treatment=%q resolution=%v collect=%v",
			shrunk.Treatment, shrunk.TimerResolution, shrunk.Collect)
	}
}

// TestWriteReproducer pins the reproducer artefact: canonical JSON,
// named after the scenario, decodable.
func TestWriteReproducer(t *testing.T) {
	dir := t.TempDir()
	sc := Scenario(3)
	path, err := WriteReproducer(dir, sc)
	if err != nil {
		t.Fatal(err)
	}
	back, err := scenario.DecodeFile(path)
	if err != nil {
		t.Fatalf("reproducer does not decode: %v", err)
	}
	want, _ := scenario.Marshal(&sc)
	got, _ := scenario.Marshal(back)
	if string(got) != string(want) {
		t.Error("reproducer round-trip changed the scenario")
	}
}

// TestShrinkPreservesStreamOnlyFailure guards the reproducer's
// replayability: when the failure only manifests under streaming
// collection (the predicate models a stream-only engine bug), the
// shrinker must not drop the "collect" block — the written reproducer
// has to fail when replayed as declared.
func TestShrinkPreservesStreamOnlyFailure(t *testing.T) {
	sc := Scenario(7)
	sc.Servers = nil
	sc.Collect = &scenario.Collect{Mode: scenario.CollectStream}
	fails := func(cand scenario.Scenario) bool {
		return cand.Streaming() // fails only as declared-streaming
	}
	if !fails(sc) {
		t.Fatal("precondition: stamped scenario not streaming")
	}
	shrunk := Shrink(sc, fails)
	if !shrunk.Streaming() {
		t.Fatalf("shrinker dropped the failing collection mode: collect=%v", shrunk.Collect)
	}
	if !fails(shrunk) {
		t.Fatal("shrunk scenario no longer fails as declared")
	}
}

// TestGeneratorPolicyListCurrent guards the pinned policy draw: when
// a new scheduling policy registers, this fails so the generator's
// list is extended *deliberately* (append-only — reordering or
// deriving it from the registry would remap every logged failing
// seed, invalidating reproducers).
func TestGeneratorPolicyListCurrent(t *testing.T) {
	registered := engine.PolicyNames()
	pinned := map[string]bool{}
	for _, p := range policies {
		pinned[p] = true
	}
	for _, p := range registered {
		if !pinned[p] {
			t.Errorf("policy %q is registered but not drawn by the generator — append it to gen.policies (do not reorder: seed stability)", p)
		}
	}
	for _, p := range policies {
		if _, err := engine.NewPolicy(p); err != nil {
			t.Errorf("generator draws unregistered policy %q: %v", p, err)
		}
	}
}

// TestFastForwardableValidAndCovering: every derived fast-forward
// scenario validates as eligible, is deterministic per seed, and the
// seed range reaches both policies, multicore placements, offsets and
// non-multiple horizons.
func TestFastForwardableValidAndCovering(t *testing.T) {
	policies := map[string]bool{}
	var multi, partitioned, offset, tail bool
	hyper := vtime.Millis(200)
	for seed := uint64(0); seed < 128; seed++ {
		sc := FastForwardable(seed)
		if !sc.FastForward {
			t.Fatalf("seed %d: fast_forward not set", seed)
		}
		if err := sc.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		a, _ := scenario.Marshal(ptr(FastForwardable(seed)))
		b, _ := scenario.Marshal(ptr(sc))
		if string(a) != string(b) {
			t.Fatalf("seed %d: two derivations differ", seed)
		}
		for _, task := range sc.Tasks {
			if vtime.Duration(hyper)%vtime.Duration(task.Period) != 0 {
				t.Fatalf("seed %d: period %v does not divide the 200 ms hyperperiod", seed, task.Period)
			}
			if task.Offset > 0 {
				offset = true
			}
		}
		policies[sc.Policy] = true
		if sc.CPUs > 1 {
			multi = true
			if sc.Placement == scenario.PlacementPartitioned {
				partitioned = true
			}
		}
		if vtime.Duration(sc.Horizon)%vtime.Duration(hyper) != 0 {
			tail = true
		}
	}
	for _, p := range []string{"fixed-priority", "edf"} {
		if !policies[p] {
			t.Errorf("policy %q never generated", p)
		}
	}
	if !multi || !partitioned {
		t.Errorf("multicore coverage: multi=%v partitioned=%v", multi, partitioned)
	}
	if !offset {
		t.Error("no scenario with a release offset generated")
	}
	if !tail {
		t.Error("no scenario with a non-multiple horizon tail generated")
	}
}
