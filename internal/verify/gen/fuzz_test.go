package gen_test

import (
	"fmt"
	"testing"

	"repro/internal/verify/gen"
	"repro/sim"
	"repro/sim/scenario"
)

// runVerified runs the scenario under the invariant oracle in the
// given collection mode and returns the run error (nil = all axioms
// held).
func runVerified(sc scenario.Scenario, mode string) error {
	sc.Collect = &scenario.Collect{Mode: mode}
	sc.Verify = true
	sys, err := sim.FromScenario(sc)
	if err != nil {
		return fmt.Errorf("build: %w", err)
	}
	_, err = sys.Run()
	return err
}

// FuzzScenario is the native fuzz target over the scenario space: any
// seed must derive a scenario whose run satisfies every scheduling
// axiom, in every legal collection mode. A failing seed is shrunk to
// a minimal reproducer so the report is actionable.
//
// CI runs this as a short smoke on every PR and a longer non-blocking
// pass nightly: go test -fuzz=FuzzScenario ./internal/verify/gen
func FuzzScenario(f *testing.F) {
	for seed := uint64(0); seed < 8; seed++ {
		f.Add(seed)
	}
	// Multiprocessor corpus: the smallest seeds drawing each core
	// count (49→2, 53→4, 139→8 global; 38/58/25 partitioned), so the
	// fuzzer starts from every placement the codec can express.
	for _, seed := range []uint64{49, 53, 139, 38, 58, 25} {
		f.Add(seed)
	}
	// Fast-forward corpus: seeds whose FastForwardable derivation
	// covers both policies, multicore and long offsets, so the
	// fast-forward leg starts from every eligible shape.
	for _, seed := range []uint64{3, 5, 11, 17} {
		f.Add(seed)
	}
	// Arrival-source corpus: the smallest seeds drawing each source
	// kind (7→poisson, 41→mmpp, 36→trace), so the fuzzer starts from
	// every open-arrival release law the codec can express.
	for _, seed := range []uint64{7, 41, 36} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		// Fast-forward leg: the seed's FastForwardable derivation must
		// reproduce its oracle-verified full run across the analytic
		// jump (counts exactly, percentiles within the widened bound).
		if err := sim.FastForwardCheck(seed); err != nil {
			t.Fatalf("fast-forward differential: %v", err)
		}
		sc := gen.Scenario(seed)
		for _, mode := range gen.LegalCollectModes(&sc) {
			if err := runVerified(sc, mode); err != nil {
				// Stamp the failing mode so the written reproducer
				// replays in it, shrink each candidate under its own
				// collect block (sim.OracleFailure — oracle
				// violations only, per gen.Failure's contract), and
				// persist under the repository's testdata/shrunk so
				// the artefact outlives the test.
				failing := sc
				failing.Collect = &scenario.Collect{Mode: mode}
				repro := gen.Reproduce(gen.ReproducerPath(), failing, sim.OracleFailure)
				t.Fatalf("seed %#x (%s collection) violates the scheduling axioms: %v\nreproducer: %s",
					seed, mode, err, repro)
			}
		}
	})
}

// TestFuzzSeedsSmoke keeps the fuzz body exercised under plain `go
// test` (fuzzing only runs with -fuzz): a deterministic sweep over a
// small seed range.
func TestFuzzSeedsSmoke(t *testing.T) {
	seeds := make([]uint64, 0, 30)
	for seed := uint64(0); seed < 24; seed++ {
		seeds = append(seeds, seed)
	}
	// The multiprocessor corpus seeds (see FuzzScenario).
	seeds = append(seeds, 49, 53, 139, 38, 58, 25)
	// The arrival-source corpus seeds (see FuzzScenario).
	seeds = append(seeds, 7, 41, 36)
	for _, seed := range seeds {
		sc := gen.Scenario(seed)
		for _, mode := range gen.LegalCollectModes(&sc) {
			if err := runVerified(sc, mode); err != nil {
				t.Errorf("seed %d (%s): %v", seed, mode, err)
			}
		}
	}
	// The fast-forward corpus seeds (see FuzzScenario's fast-forward
	// leg); the full x14 sweep covers a wider range.
	for _, seed := range []uint64{3, 5, 11, 17} {
		if err := sim.FastForwardCheck(seed); err != nil {
			t.Errorf("seed %d fast-forward differential: %v", seed, err)
		}
	}
}
