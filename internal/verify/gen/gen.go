// Package gen fuzzes the scenario space the ROADMAP targets: it
// derives, deterministically from a seed, a random-but-valid
// declarative scenario — a UUniFast task set composed with random
// fault chains (overrun / underrun / jitter / interference), a
// registered scheduling policy, optional aperiodic polling servers,
// a collection mode, a core count (1, 2, 4 or 8, global or
// partitioned dispatch) and the run knobs (timer resolution, stop
// poll, stop jitter, context switch) — and greedily shrinks a failing
// scenario to a minimal reproducer (see Shrink). Together with the
// invariant oracle of the parent package, every generated scenario is
// a self-verifying experiment: run it with "verify": true and any
// broken scheduling axiom surfaces without a golden to maintain.
package gen

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/taskset"
	"repro/internal/vtime"
	"repro/sim/scenario"
)

// policies the generator draws from. The list is pinned rather than
// read from engine.PolicyNames() so that a seed is a *stable*
// reproducer: deriving the draw from the registry would remap every
// seed the moment a new policy registers, invalidating logged failing
// seeds. TestGeneratorPolicyListCurrent fails when the registry grows
// so the extension is made deliberately (append only — order is part
// of the seed mapping).
var policies = []string{"best-effort", "d-over", "edf", "fixed-priority", "red"}

// treatments the generator draws from when the policy admits them
// (detectors presuppose fixed-priority analysis).
var treatments = []string{"none", "detect", "stop", "equitable", "system"}

// faultKinds the generator draws from; FaultOverrunAt and
// FaultOverrunEvery both exercise the overrun family.
var faultKinds = []string{
	scenario.FaultOverrunAt,
	scenario.FaultOverrunEvery,
	scenario.FaultUnderrunEvery,
	scenario.FaultJitter,
	scenario.FaultInterference,
}

// genAttempts bounds the feasibility rejection loop before the
// generator falls back to an overload (skip-admission) scenario.
const genAttempts = 16

// Scenario derives a valid scenario from the seed. The derivation is
// a pure function of the seed: the same seed always yields the same
// scenario (the whole point — a failing seed is a reproducer). The
// result always passes scenario.Validate, and non-overload scenarios
// pass the paper's admission control, so sim can run them directly.
func Scenario(seed uint64) scenario.Scenario {
	r := taskset.NewRand(seed)
	policy := policies[r.Intn(len(policies))]

	treatment := "none"
	if policy == "fixed-priority" {
		treatment = treatments[r.Intn(len(treatments))]
	}
	// Overload scenarios (deliberately infeasible, admission skipped)
	// exercise the shedding paths of the overload baselines and the
	// bare-engine backlog handling; they require treatment none.
	overload := treatment == "none" && r.Float64() < 0.35

	n := 2 + r.Intn(5) // 2..6 tasks
	util := 0.30 + 0.40*r.Float64()
	if overload {
		util = 1.10 + 0.50*r.Float64()
	}

	var set *taskset.Set
	for attempt := 0; ; attempt++ {
		g := taskset.NewGenerator(r.Uint64())
		g.PeriodMin = 20 * vtime.Millisecond
		g.PeriodMax = 200 * vtime.Millisecond
		g.DeadlineFactor = 0.70 + 0.30*r.Float64()
		s, err := g.Generate(n, util)
		if err != nil {
			panic(fmt.Sprintf("gen: task generation: %v", err)) // generator bug
		}
		if overload {
			set = s
			break
		}
		if rep, err := analysis.Feasible(s); err == nil && rep.Feasible {
			set = s
			break
		}
		if attempt == genAttempts-1 {
			// The drawn utilization refuses to admit: run it as an
			// overload scenario instead of looping forever.
			overload, treatment, set = true, "none", s
			break
		}
	}

	sc := scenario.Scenario{
		Name:          fmt.Sprintf("gen-%016x", seed),
		Description:   "seeded random scenario (internal/verify/gen)",
		Policy:        policy,
		Treatment:     treatment,
		Horizon:       scenario.Duration(vtime.Millis(1000 + int64(r.Intn(2000)))),
		Seed:          r.Uint64(),
		SkipAdmission: overload,
	}
	for _, t := range set.Tasks {
		sc.Tasks = append(sc.Tasks, scenario.FromTask(t))
	}

	// Run knobs, each drawn independently.
	if treatment != "none" && r.Float64() < 0.5 {
		sc.TimerResolution = scenario.Duration(10 * vtime.Millisecond)
	}
	if r.Float64() < 0.3 {
		sc.StopPoll = scenario.Duration(vtime.Millis(int64(1 + r.Intn(5))))
	}
	if r.Float64() < 0.3 {
		sc.StopJitterMax = scenario.Duration(r.DurationIn(100*vtime.Microsecond, 2*vtime.Millisecond))
	}
	if r.Float64() < 0.25 {
		sc.ContextSwitch = scenario.Duration(r.DurationIn(10*vtime.Microsecond, 200*vtime.Microsecond))
	}

	stream := r.Float64() < 0.5
	if stream {
		sc.Collect = &scenario.Collect{Mode: scenario.CollectStream}
	} else if !overload && r.Float64() < 0.30 {
		// Aperiodic polling servers only combine with retained
		// collection (the service analysis reads the log) and an
		// admitted system (the server is a task like any other).
		addServer(&sc, r, set)
	}

	for i, k := 0, r.Intn(4); i < k; i++ { // 0..3 fault entries
		addFault(&sc, r)
	}

	// Multiprocessor draw, last in the derivation so every logged seed
	// keeps the task set, faults and knobs it has always produced and
	// only *gains* a core count. Multicore runs support treatment none,
	// no servers and the fixed-priority/edf policies only (the codec
	// enforces it), so the draw is gated the same way.
	if treatment == "none" && len(sc.Servers) == 0 &&
		(policy == "fixed-priority" || policy == "edf") && r.Float64() < 0.30 {
		sc.CPUs = []int{2, 4, 8}[r.Intn(3)]
		// cpus > 1 runs the bare engine unconditionally; the codec
		// rejects a redundant skip_admission.
		sc.SkipAdmission = false
		if r.Float64() < 0.5 {
			sc.Placement = scenario.PlacementPartitioned
			if r.Float64() < 0.5 {
				sc.Partitioner = scenario.PartitionBestFit
			}
			if _, err := sc.Partition(); err != nil {
				// The drawn set has no feasible packing onto the drawn
				// core count: run it global instead.
				sc.Placement, sc.Partitioner = "", ""
			}
		}
	}

	// Arrival-source draw, after the multicore draw so every logged
	// seed keeps the exact scenario it has always produced and at most
	// gains an arrivals block. Task-targeted sources ride the bare
	// engine only — the codec's skip_admission rule — so the draw is
	// gated on the overload path (which the multicore draw, when it
	// fired, has already cleared).
	if sc.SkipAdmission && r.Float64() < 0.5 {
		addArrival(&sc, r)
	}

	if err := sc.Validate(); err != nil {
		panic(fmt.Sprintf("gen: seed %#x produced an invalid scenario: %v", seed, err)) // generator bug
	}
	return sc
}

// Checkpointable derives a valid *checkpointable* scenario from the
// seed: the Scenario derivation restricted to the states a mid-run
// snapshot can serialize — treatment none, no polling servers,
// streaming collection, and a policy without closure-bearing timers
// (d-over's latest-start-time watchdog remaps to edf; the remap
// preserves the rest of the seed's draw, so a failing seed reproduces
// here the same way it does under Scenario). It feeds the
// checkpoint/resume differential tests and FuzzCheckpoint.
func Checkpointable(seed uint64) scenario.Scenario {
	sc := Scenario(seed)
	sc.Name = fmt.Sprintf("gen-ckpt-%016x", seed)
	sc.Description = "seeded random checkpointable scenario (internal/verify/gen)"
	sc.Treatment = "none"
	sc.TimerResolution = 0 // detector knob; meaningless without detection
	sc.Servers = nil
	sc.Arrivals = nil // a Source's iterator state is opaque to Snapshot
	sc.Collect = &scenario.Collect{Mode: scenario.CollectStream}
	if sc.Policy == "d-over" {
		sc.Policy = "edf"
	}
	if err := sc.Validate(); err != nil {
		panic(fmt.Sprintf("gen: seed %#x produced an invalid checkpointable scenario: %v", seed, err)) // generator bug
	}
	return sc
}

// FastForwardable derives a valid *fast-forward-eligible* scenario
// from the seed: a harmonic-grid task set whose periods all divide
// 200 ms (so the hyperperiod is exactly 200 ms and steady-state cycles
// actually repeat within a testable horizon), treatment none, no
// faults, servers or stop jitter, streaming collection, an order-only
// policy, and "fast_forward": true. It cannot reuse the Scenario
// derivation the way Checkpointable does — UUniFast period draws make
// hyperperiods up to lcm(20..200 ms), far past any testable horizon.
// About a third of the seeds land on 2 or 4 cores (global or
// partitioned) and the horizon deliberately includes a non-multiple
// tail beyond the last whole cycle. It feeds the x14 fast-forward
// differential sweep and FuzzScenario's fast-forward leg.
func FastForwardable(seed uint64) scenario.Scenario {
	r := taskset.NewRand(seed)
	periodsMS := []int64{20, 40, 50, 100, 200} // every entry divides 200 ms
	policy := []string{"fixed-priority", "edf"}[r.Intn(2)]
	cpus := []int{1, 1, 1, 2, 4}[r.Intn(5)]

	n := 2 + r.Intn(5) // 2..6 tasks
	util := (0.30 + 0.35*r.Float64()) * float64(cpus)

	// Draw the set, retrying with a lighter load until the admission
	// test (uniprocessor) or the partitioner (multicore) accepts it.
	var set *taskset.Set
	for attempt := 0; ; attempt++ {
		// UUniFast-style utilization split over the harmonic grid.
		weights := make([]float64, n)
		var total float64
		for i := range weights {
			weights[i] = 0.1 + r.Float64()
			total += weights[i]
		}
		tasks := make([]taskset.Task, n)
		for i := range tasks {
			period := vtime.Millis(periodsMS[r.Intn(len(periodsMS))])
			cost := vtime.Duration(weights[i] / total * util * float64(period))
			cost = cost / (10 * vtime.Microsecond) * (10 * vtime.Microsecond)
			if cost < vtime.Millisecond {
				cost = vtime.Millisecond
			}
			if cost > period {
				cost = period
			}
			t := taskset.Task{
				Name:     fmt.Sprintf("tau%d", i+1),
				Priority: n - i,
				Period:   period,
				Deadline: period,
				Cost:     cost,
			}
			if r.Float64() < 0.30 {
				// Offsets in 10 ms multiples up to two periods: a
				// transient longer than one hyperperiod for some seeds.
				t.Offset = vtime.Millis(10 * int64(r.Intn(int(2*period/vtime.Millis(10)))))
			}
			tasks[i] = t
		}
		s, err := taskset.New(tasks...)
		if err != nil {
			panic(fmt.Sprintf("gen: fast-forward task build: %v", err)) // generator bug
		}
		if cpus > 1 {
			set = s
			break
		}
		if rep, err := analysis.Feasible(s); err == nil && rep.Feasible {
			set = s
			break
		}
		if attempt == genAttempts-1 {
			// Refuses to admit at the drawn load: a minimal surely
			// feasible set keeps the seed usable.
			set, _ = taskset.New(taskset.Task{
				Name: "tau1", Priority: 1,
				Period: vtime.Millis(100), Deadline: vtime.Millis(100), Cost: vtime.Millis(10),
			})
			break
		}
		util *= 0.8
	}

	hyper := vtime.Millis(200)
	sc := scenario.Scenario{
		Name:        fmt.Sprintf("gen-ff-%016x", seed),
		Description: "seeded random fast-forward scenario (internal/verify/gen)",
		Policy:      policy,
		Treatment:   "none",
		Seed:        r.Uint64(),
		Collect:     &scenario.Collect{Mode: scenario.CollectStream},
		FastForward: true,
	}
	for _, t := range set.Tasks {
		sc.Tasks = append(sc.Tasks, scenario.FromTask(t))
	}
	// 3..42 whole cycles plus, usually, a partial tail in 10 ms steps.
	sc.Horizon = scenario.Duration(vtime.Duration(3+r.Intn(40))*hyper +
		vtime.Millis(10*int64(r.Intn(20))))
	if r.Float64() < 0.25 {
		sc.ContextSwitch = scenario.Duration(r.DurationIn(10*vtime.Microsecond, 200*vtime.Microsecond))
	}
	if cpus > 1 {
		sc.CPUs = cpus
		if r.Float64() < 0.5 {
			sc.Placement = scenario.PlacementPartitioned
			if r.Float64() < 0.5 {
				sc.Partitioner = scenario.PartitionBestFit
			}
			if _, err := sc.Partition(); err != nil {
				// No feasible packing onto the drawn cores: run global.
				sc.Placement, sc.Partitioner = "", ""
			}
		}
	}

	if err := sc.Validate(); err != nil {
		panic(fmt.Sprintf("gen: seed %#x produced an invalid fast-forward scenario: %v", seed, err)) // generator bug
	}
	return sc
}

// addServer appends a polling server that keeps the system feasible;
// on rejection the scenario simply stays server-free.
func addServer(sc *scenario.Scenario, r *taskset.Rand, set *taskset.Set) {
	maxPrio := 0
	for _, t := range set.Tasks {
		if t.Priority > maxPrio {
			maxPrio = t.Priority
		}
	}
	srvTask := taskset.Task{
		Name:     "server",
		Priority: maxPrio + 1, // a high-priority poller, the common setup
		Period:   vtime.Millis(int64(40 + 20*r.Intn(4))),
		Cost:     vtime.Millis(int64(2 + r.Intn(3))),
	}
	srvTask.Deadline = srvTask.Period
	cand := set.Clone()
	cand.Tasks = append(cand.Tasks, srvTask)
	if rep, err := analysis.Feasible(cand); err != nil || !rep.Feasible {
		return
	}
	srv := scenario.Server{Task: scenario.FromTask(srvTask)}
	horizon := vtime.Duration(sc.Horizon)
	for i, k := 0, 1+r.Intn(4); i < k; i++ {
		srv.Requests = append(srv.Requests, scenario.Request{
			ID:      fmt.Sprintf("req%d", i+1),
			Arrival: scenario.Duration(r.DurationIn(0, horizon/2)),
			Cost:    scenario.Duration(r.DurationIn(500*vtime.Microsecond, 2*vtime.Duration(srvTask.Cost))),
		})
	}
	sc.Servers = append(sc.Servers, srv)
}

// addArrival replaces one random task's periodic release law with a
// drawn arrival source: a Poisson stream, a two-state MMPP, or a
// generated (sorted, validated) trace replay. The oracle re-derives
// every expected release from the same parameters, so each drawn
// source is a self-verifying open-arrival experiment.
func addArrival(sc *scenario.Scenario, r *taskset.Rand) {
	target := sc.Tasks[r.Intn(len(sc.Tasks))]
	a := scenario.Arrival{Task: target.Name}
	switch r.Intn(3) {
	case 0:
		a.Kind = scenario.ArrivalPoisson
		a.Mean = scenario.Duration(r.DurationIn(5*vtime.Millisecond, 80*vtime.Millisecond))
		a.Seed = r.Uint64() | 1 // 0 would fall back to the scenario seed
	case 1:
		a.Kind = scenario.ArrivalMMPP
		a.Mean = scenario.Duration(r.DurationIn(20*vtime.Millisecond, 80*vtime.Millisecond))
		a.BurstMean = scenario.Duration(r.DurationIn(2*vtime.Millisecond, 10*vtime.Millisecond))
		a.Dwell = scenario.Duration(r.DurationIn(100*vtime.Millisecond, 400*vtime.Millisecond))
		a.BurstDwell = scenario.Duration(r.DurationIn(50*vtime.Millisecond, 200*vtime.Millisecond))
		a.Seed = r.Uint64() | 1
	default:
		a.Kind = scenario.ArrivalTrace
		horizon := vtime.Duration(sc.Horizon)
		at := vtime.Duration(0)
		for i, k := 0, 1+r.Intn(12); i < k; i++ {
			at += r.DurationIn(vtime.Millisecond, horizon/6)
			rec := scenario.TraceRecord{
				Release: scenario.Duration(at),
				Cost:    scenario.Duration(r.DurationIn(500*vtime.Microsecond, 5*vtime.Millisecond)),
			}
			if r.Float64() < 0.3 {
				rec.Deadline = scenario.Duration(vtime.Duration(rec.Cost) + r.DurationIn(vtime.Millisecond, 40*vtime.Millisecond))
			}
			a.Records = append(a.Records, rec)
		}
	}
	sc.Arrivals = append(sc.Arrivals, a)
}

// addFault appends one fault entry targeting a random periodic task,
// parameterized relative to the victim's declared timing.
func addFault(sc *scenario.Scenario, r *taskset.Rand) {
	victim := sc.Tasks[r.Intn(len(sc.Tasks))]
	period := vtime.Duration(victim.Period)
	f := scenario.Fault{Task: victim.Name, Kind: faultKinds[r.Intn(len(faultKinds))]}
	switch f.Kind {
	case scenario.FaultOverrunAt:
		f.Job = int64(r.Intn(10))
		f.Extra = scenario.Duration(r.DurationIn(vtime.Millisecond, period))
	case scenario.FaultOverrunEvery:
		f.First = int64(r.Intn(5))
		f.Every = int64(1 + r.Intn(3))
		f.Extra = scenario.Duration(r.DurationIn(vtime.Millisecond, period/2))
	case scenario.FaultUnderrunEvery:
		f.Early = scenario.Duration(r.DurationIn(0, vtime.Duration(victim.Cost)))
	case scenario.FaultJitter:
		f.Max = scenario.Duration(r.DurationIn(100*vtime.Microsecond, 3*vtime.Millisecond))
		f.Seed = r.Uint64()
	case scenario.FaultInterference:
		horizon := vtime.Duration(sc.Horizon)
		from := r.DurationIn(0, horizon/2)
		f.From = scenario.Duration(from)
		f.To = scenario.Duration(from + r.DurationIn(period, horizon/2))
		f.Extra = scenario.Duration(r.DurationIn(vtime.Millisecond, period/2))
	}
	sc.Faults = append(sc.Faults, f)
}
