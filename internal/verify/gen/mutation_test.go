package gen_test

import (
	"errors"
	"testing"

	"repro/internal/engine"
	"repro/internal/trace"
	"repro/internal/verify"
	"repro/internal/verify/gen"
	"repro/internal/vtime"
	"repro/sim/scenario"
)

// invertedEDF is the test-only engine mutation: it answers to the
// name "edf" but prefers the *later* absolute deadline — exactly the
// kind of ready-queue comparator bug a perf rework could introduce.
// Running the engine under it while the oracle checks recomputed EDF
// keys must light up the dispatch-order axiom.
type invertedEDF struct{}

func (invertedEDF) Name() string { return "edf" }

func (invertedEDF) Better(a, b *engine.Job) bool {
	if a.AbsDeadline != b.AbsDeadline {
		return a.AbsDeadline.After(b.AbsDeadline) // inverted on purpose
	}
	if a.Release != b.Release {
		return a.Release.Before(b.Release)
	}
	return a.TaskName() < b.TaskName()
}

func (invertedEDF) Admit(*engine.Engine, *engine.Job) bool { return true }

// runMutant executes the scenario on a bare engine driven by the
// mutated policy, with the oracle attached as the trace sink, and
// reports whether the oracle caught a violation.
func runMutant(t *testing.T, sc scenario.Scenario) bool {
	set, err := sc.TaskSet()
	if err != nil {
		return false
	}
	plan, err := sc.FaultPlan()
	if err != nil {
		return false
	}
	chk, err := verify.ForScenario(&sc)
	if err != nil {
		return false
	}
	eng, err := engine.New(engine.Config{
		Tasks:         set,
		Faults:        plan,
		End:           vtime.Time(sc.Horizon),
		Policy:        invertedEDF{},
		Seed:          sc.Seed,
		StopPoll:      sc.StopPoll.D(),
		StopJitterMax: sc.StopJitterMax.D(),
		ContextSwitch: sc.ContextSwitch.D(),
		Sink:          chk,
	})
	if err != nil {
		return false
	}
	eng.Run()
	chk.Finish()
	return chk.Err() != nil
}

// mutantScenario is a six-task EDF workload with enough contention
// that an inverted comparator misdispatches immediately.
func mutantScenario() scenario.Scenario {
	periods := []int64{20, 30, 40, 50, 60, 80}
	sc := scenario.Scenario{
		Name:      "engine-mutation",
		Policy:    "edf",
		Treatment: "none",
		Horizon:   scenario.Duration(vtime.Millis(1000)),
	}
	for i, p := range periods {
		sc.Tasks = append(sc.Tasks, scenario.Task{
			Name:     taskName(i),
			Priority: len(periods) - i,
			Period:   scenario.Duration(vtime.Millis(p)),
			Deadline: scenario.Duration(vtime.Millis(p)),
			Cost:     scenario.Duration(vtime.Millis(2)),
		})
	}
	return sc
}

func taskName(i int) string { return string(rune('a'+i)) + "task" }

// TestOracleCatchesEngineMutation is the acceptance scenario for the
// oracle: an intentionally injected dispatch-order bug (the inverted
// comparator above) must be caught, and the failing scenario must
// shrink to a reproducer of at most 5 tasks.
func TestOracleCatchesEngineMutation(t *testing.T) {
	sc := mutantScenario()
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}

	// The oracle must flag the mutant...
	if !runMutant(t, sc) {
		t.Fatal("oracle did not catch the inverted-comparator mutation")
	}
	// ...and specifically for the dispatch-order axiom.
	chkErr := mutantOracleError(t, sc)
	var verr *verify.Error
	if !errors.As(chkErr, &verr) {
		t.Fatalf("want *verify.Error, got %v", chkErr)
	}
	found := false
	for _, v := range verr.Violations {
		if v.Rule == "dispatch-order" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no dispatch-order violation among: %v", verr)
	}

	// Shrink to a minimal reproducer and persist it.
	shrunk := gen.Shrink(sc, func(cand scenario.Scenario) bool { return runMutant(t, cand) })
	if len(shrunk.Tasks) > 5 {
		t.Errorf("reproducer has %d tasks, want <= 5", len(shrunk.Tasks))
	}
	if !runMutant(t, shrunk) {
		t.Fatal("shrunk reproducer no longer triggers the oracle")
	}
	path, err := gen.WriteReproducer(t.TempDir(), shrunk)
	if err != nil {
		t.Fatal(err)
	}
	back, err := scenario.DecodeFile(path)
	if err != nil {
		t.Fatalf("reproducer does not decode: %v", err)
	}
	if !runMutant(t, *back) {
		t.Fatal("decoded reproducer no longer triggers the oracle")
	}
	t.Logf("mutation shrunk to %d tasks, horizon %v", len(shrunk.Tasks), shrunk.Horizon)
}

// mutantOracleError reruns the mutant and returns the oracle error.
func mutantOracleError(t *testing.T, sc scenario.Scenario) error {
	set, err := sc.TaskSet()
	if err != nil {
		t.Fatal(err)
	}
	chk, err := verify.ForScenario(&sc)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := engine.New(engine.Config{
		Tasks:  set,
		End:    vtime.Time(sc.Horizon),
		Policy: invertedEDF{},
		Sink:   chk,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	chk.Finish()
	return chk.Err()
}

// TestOracleCatchesDroppedEvents mutates the *trace* instead of the
// scheduler: a sink filter that swallows every JobPreempt makes the
// stream claim two jobs run at once, which the single-CPU axiom must
// catch. This guards the oracle against event-stream corruption, the
// failure mode of a buggy sink or spill path.
func TestOracleCatchesDroppedEvents(t *testing.T) {
	sc := mutantScenario()
	sc.Policy = "fixed-priority" // run the stock engine; corrupt only the stream
	set, err := sc.TaskSet()
	if err != nil {
		t.Fatal(err)
	}
	chk, err := verify.ForScenario(&sc)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := engine.New(engine.Config{
		Tasks: set,
		End:   vtime.Time(sc.Horizon),
		Sink:  dropPreempts{chk},
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	chk.Finish()
	var verr *verify.Error
	if err := chk.Err(); !errors.As(err, &verr) {
		t.Fatalf("oracle did not catch the dropped preempt events: %v", err)
	}
}

// dropPreempts forwards every event except JobPreempt.
type dropPreempts struct{ next *verify.Checker }

func (d dropPreempts) Append(e trace.Event) {
	if e.Kind != trace.JobPreempt {
		d.next.Append(e)
	}
}
