package gen

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/vtime"
	"repro/sim/scenario"
)

// Failure reports whether running the candidate scenario still
// reproduces the original failure (an invariant violation, a report
// divergence, a panic caught by the caller — whatever the caller is
// hunting). It must be deterministic; candidates that fail to build
// or run for a *different* reason should report false.
type Failure func(sc scenario.Scenario) bool

// Shrink greedily minimizes a failing scenario: it repeatedly tries
// dropping tasks (with their faults), servers and fault entries,
// halving the horizon, and zeroing the run knobs, keeping each
// candidate only when it still validates and still fails. The loop
// runs to a fixpoint, so the result is 1-minimal with respect to
// those operations. fails(sc) must be true on entry; the returned
// scenario also fails.
func Shrink(sc scenario.Scenario, fails Failure) scenario.Scenario {
	cur := sc
	for changed := true; changed; {
		changed = false
		// Drop whole tasks (and any fault entries naming them).
		for i := 0; i < len(cur.Tasks); {
			if cand, ok := dropTask(cur, i); ok && accept(cand, fails) {
				cur, changed = cand, true
			} else {
				i++
			}
		}
		// Drop servers.
		for i := 0; i < len(cur.Servers); {
			cand := cur
			cand.Servers = deleteAt(cur.Servers, i)
			if accept(cand, fails) {
				cur, changed = cand, true
			} else {
				i++
			}
		}
		// Drop individual fault entries.
		for i := 0; i < len(cur.Faults); {
			cand := cur
			cand.Faults = deleteAt(cur.Faults, i)
			if accept(cand, fails) {
				cur, changed = cand, true
			} else {
				i++
			}
		}
		// Drop arrival sources (the target task reverts to periodic).
		for i := 0; i < len(cur.Arrivals); {
			cand := cur
			cand.Arrivals = deleteAt(cur.Arrivals, i)
			if accept(cand, fails) {
				cur, changed = cand, true
			} else {
				i++
			}
		}
		// Halve a trace source's record list from the tail (releases
		// are sorted, so a prefix is always a valid trace).
		for i := range cur.Arrivals {
			for len(cur.Arrivals[i].Records) > 0 {
				cand := cur
				cand.Arrivals = append([]scenario.Arrival(nil), cur.Arrivals...)
				cand.Arrivals[i].Records = cur.Arrivals[i].Records[:len(cur.Arrivals[i].Records)/2]
				if len(cand.Arrivals[i].Records) == 0 {
					// An empty inline record list is not encodable
					// (records/path exactly-one); stop at a single record.
					break
				}
				if !accept(cand, fails) {
					break
				}
				cur, changed = cand, true
			}
		}
		// Halve the horizon while the failure persists.
		for vtime.Duration(cur.Horizon) >= 2*vtime.Millisecond {
			cand := cur
			cand.Horizon = scenario.Duration((vtime.Duration(cur.Horizon) / 2).Ceil(vtime.Millisecond))
			if !accept(cand, fails) {
				break
			}
			cur, changed = cand, true
		}
		// Zero the incidental knobs one at a time.
		for _, clear := range []func(*scenario.Scenario){
			func(s *scenario.Scenario) { s.TimerResolution = 0 },
			func(s *scenario.Scenario) { s.StopPoll = 0 },
			func(s *scenario.Scenario) { s.StopJitterMax = 0 },
			func(s *scenario.Scenario) { s.ContextSwitch = 0 },
			func(s *scenario.Scenario) { s.Collect = nil },
			func(s *scenario.Scenario) { s.Treatment = "none" },
			func(s *scenario.Scenario) { s.CPUs, s.Placement, s.Partitioner = 0, "", "" },
		} {
			cand := cur
			clear(&cand)
			if !equalSpec(cand, cur) && accept(cand, fails) {
				cur, changed = cand, true
			}
		}
	}
	return cur
}

// accept reports whether a shrink candidate is both valid and still
// failing.
func accept(cand scenario.Scenario, fails Failure) bool {
	return cand.Validate() == nil && fails(cand)
}

// equalSpec compares two scenarios by canonical encoding.
func equalSpec(a, b scenario.Scenario) bool {
	ab, errA := scenario.Marshal(&a)
	bb, errB := scenario.Marshal(&b)
	return errA == nil && errB == nil && string(ab) == string(bb)
}

// dropTask removes task i and every fault entry or arrival source
// naming it. Dropping the last task yields no candidate (a scenario
// needs one task).
func dropTask(sc scenario.Scenario, i int) (scenario.Scenario, bool) {
	if len(sc.Tasks) <= 1 {
		return sc, false
	}
	name := sc.Tasks[i].Name
	out := sc
	out.Tasks = deleteAt(sc.Tasks, i)
	out.Faults = nil
	for _, f := range sc.Faults {
		if f.Task != name {
			out.Faults = append(out.Faults, f)
		}
	}
	out.Arrivals = nil
	for _, a := range sc.Arrivals {
		if a.Task != name {
			out.Arrivals = append(out.Arrivals, a)
		}
	}
	return out, true
}

// deleteAt returns s without element i, leaving s untouched.
func deleteAt[T any](s []T, i int) []T {
	out := make([]T, 0, len(s)-1)
	out = append(out, s[:i]...)
	return append(out, s[i+1:]...)
}

// ReproducerDir is where failing scenarios are written, relative to
// the repository root (the differential sweep and the fuzz harness
// both use it, via ReproducerPath, when run from the repo).
const ReproducerDir = "testdata/shrunk"

// ReproducerPath resolves ReproducerDir against the repository root
// (the nearest ancestor directory holding a go.mod), so reproducers
// land in the one documented place no matter which package's test
// binary — each with its own working directory — hits a failure. It
// falls back to the plain relative dir outside a module.
func ReproducerPath() string {
	dir, err := os.Getwd()
	if err != nil {
		return ReproducerDir
	}
	for d := dir; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return filepath.Join(d, ReproducerDir)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return ReproducerDir
		}
		d = parent
	}
}

// LegalCollectModes lists the collection modes a scenario can legally
// run in: retained always, streaming only without servers (their
// service analysis reads the retained log) — the single rule behind
// the x11 sweep and the FuzzScenario harness.
func LegalCollectModes(sc *scenario.Scenario) []string {
	if len(sc.Servers) > 0 {
		return []string{scenario.CollectRetain}
	}
	return []string{scenario.CollectRetain, scenario.CollectStream}
}

// WriteReproducer persists the (typically shrunk) failing scenario as
// canonical JSON under dir, named after the scenario, and returns the
// file path. The caller embeds the path in its failure report so the
// minimized case is one `rtrun -scenario <path> -check` away.
func WriteReproducer(dir string, sc scenario.Scenario) (string, error) {
	data, err := scenario.Marshal(&sc)
	if err != nil {
		return "", err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	name := sc.Name
	if name == "" {
		name = "reproducer"
	}
	path := filepath.Join(dir, name+".json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// Reproduce is the common failure-path helper: shrink the scenario
// against fails, write the reproducer, and return the path (or, when
// writing fails, the inline JSON) for embedding in an error message.
func Reproduce(dir string, sc scenario.Scenario, fails Failure) string {
	shrunk := Shrink(sc, fails)
	if path, err := WriteReproducer(dir, shrunk); err == nil {
		return path
	}
	data, err := scenario.Marshal(&shrunk)
	if err != nil {
		return fmt.Sprintf("(unencodable reproducer: %v)", err)
	}
	return "inline reproducer:\n" + string(data)
}
