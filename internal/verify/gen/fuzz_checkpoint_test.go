package gen_test

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/trace"
	"repro/internal/verify"
	"repro/internal/verify/gen"
	"repro/sim"
)

// checkpointDifferential runs the checkpointable scenario unsplit and
// split at the given horizon fraction (checkpoint → JSON round trip →
// resume) and returns an error on the first divergence: stitched
// trace not byte-identical, report summaries unequal, or the stitched
// trace violating a scheduling axiom.
func checkpointDifferential(sc sim.Scenario, frac float64) error {
	whole, wholeRes, err := spillRun(sim.FromScenario(sc))
	if err != nil {
		return fmt.Errorf("unsplit: %w", err)
	}

	sys, err := sim.FromScenario(sc)
	if err != nil {
		return fmt.Errorf("build: %w", err)
	}
	var segA bytes.Buffer
	sys.SpillTrace(&segA)
	cp, err := sys.RunToCheckpoint(sim.Duration(float64(sc.Horizon) * frac))
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	raw, err := sim.MarshalCheckpoint(cp)
	if err != nil {
		return fmt.Errorf("marshal: %w", err)
	}
	stitched, splitRes, err := spillRun(sim.Resume(mustDecode(raw)))
	if err != nil {
		return fmt.Errorf("resume: %w", err)
	}
	stitched = segA.String() + stitched

	if stitched != whole {
		return fmt.Errorf("stitched trace diverges from unsplit (%d vs %d bytes)", len(stitched), len(whole))
	}
	if err := diffReports(wholeRes, splitRes); err != nil {
		return err
	}
	chk, err := verify.ForScenario(&sc)
	if err != nil {
		return err
	}
	log, err := trace.DecodeString(stitched)
	if err != nil {
		return fmt.Errorf("decode stitched trace: %w", err)
	}
	for _, e := range log.Events() {
		chk.Append(e)
	}
	if verr := chk.FinishErr(); verr != nil {
		return fmt.Errorf("stitched trace violates the oracle: %w", verr)
	}
	return nil
}

func mustDecode(raw []byte) *sim.Checkpoint {
	cp, err := sim.DecodeCheckpoint(bytes.NewReader(raw))
	if err != nil {
		panic(err)
	}
	return cp
}

// spillRun runs the system with the trace spilled and returns the
// encoded trace plus the result.
func spillRun(sys *sim.System, err error) (string, *sim.RunResult, error) {
	if err != nil {
		return "", nil, err
	}
	var spill bytes.Buffer
	sys.SpillTrace(&spill)
	res, err := sys.Run()
	if err != nil {
		return "", nil, err
	}
	return spill.String(), res, nil
}

// diffReports compares what the checkpoint guarantee promises to
// reproduce exactly: switches and every task-summary field.
func diffReports(a, b *sim.RunResult) error {
	if a.Switches != b.Switches {
		return fmt.Errorf("switches %d vs %d", a.Switches, b.Switches)
	}
	if len(a.Report.Tasks) != len(b.Report.Tasks) {
		return fmt.Errorf("task count %d vs %d", len(a.Report.Tasks), len(b.Report.Tasks))
	}
	for name, ra := range a.Report.Tasks {
		rb := b.Report.Tasks[name]
		if rb == nil {
			return fmt.Errorf("task %s missing from split report", name)
		}
		if *ra != *rb {
			return fmt.Errorf("task %s summary %+v vs %+v", name, ra, rb)
		}
	}
	return nil
}

// FuzzCheckpoint is the native fuzz target over the checkpoint space:
// any seed derives a checkpointable scenario, and any split fraction
// of its horizon must satisfy the differential guarantee — stitched
// trace byte-identical to the unsplit run, equal reports, and a
// stitched trace that passes the invariant oracle.
//
// CI runs this as a short smoke on every PR alongside FuzzScenario:
// go test -fuzz=FuzzCheckpoint ./internal/verify/gen
func FuzzCheckpoint(f *testing.F) {
	for seed := uint64(0); seed < 6; seed++ {
		f.Add(seed, uint8(seed*47))
	}
	// Multiprocessor corpus: the smallest seeds whose checkpointable
	// derivation draws 2, 4 and 8 cores — the split≡unsplit guarantee
	// must hold with per-core running state in the snapshot.
	for _, seed := range []uint64{38, 53, 25} {
		f.Add(seed, uint8(seed*47))
	}
	f.Fuzz(func(t *testing.T, seed uint64, fracByte uint8) {
		sc := gen.Checkpointable(seed)
		frac := float64(fracByte) / 255
		if err := checkpointDifferential(sc, frac); err != nil {
			t.Fatalf("seed %#x frac %.3f: %v", seed, frac, err)
		}
	})
}

// TestFuzzCheckpointSeedsSmoke keeps the fuzz body exercised under
// plain `go test`.
func TestFuzzCheckpointSeedsSmoke(t *testing.T) {
	seeds := make([]uint64, 0, 13)
	for seed := uint64(0); seed < 10; seed++ {
		seeds = append(seeds, seed)
	}
	// The multiprocessor corpus seeds (see FuzzCheckpoint).
	seeds = append(seeds, 38, 53, 25)
	for _, seed := range seeds {
		sc := gen.Checkpointable(seed)
		for _, frac := range []float64{0.2, 0.6, 0.95} {
			if err := checkpointDifferential(sc, frac); err != nil {
				t.Errorf("seed %d frac %.2f: %v", seed, frac, err)
			}
		}
	}
}
