package verify

import (
	"fmt"

	"repro/internal/detect"
	"repro/internal/taskset"
	"repro/internal/vtime"
	"repro/sim/scenario"
)

// ForScenario builds the checker a declarative scenario's run must
// satisfy: the declared tasks (periodic tasks first, then one per
// server, matching the engine's id order), the named policy's
// dispatch order, the detector offsets the treatment arms (recomputed
// from the allowance analysis, exactly as the supervisor does), the
// budgets of servers whose demand is not perturbed by a declared
// fault, and — on multiprocessor scenarios — the CPU count plus the
// partitioned task→core assignment, recomputed by the same bin
// packing the run uses. It is how a decoded trace on disk is
// replayed semantically.
func ForScenario(sc *scenario.Scenario) (*Checker, error) {
	set, err := sc.TaskSet()
	if err != nil {
		return nil, err
	}
	cfg := Config{
		Tasks:         set,
		Policy:        sc.Policy,
		ServerBudgets: ServerBudgets(sc),
		ContextSwitch: sc.ContextSwitch.D(),
		Horizon:       vtime.Time(sc.Horizon),
		CPUs:          sc.CPUs,
	}
	// Source-driven tasks get a fresh replay iterator (same kind,
	// parameters and seed as the run's own): the checker re-derives
	// every expected arrival instead of trusting the trace. Server-fed
	// sources don't appear here — the server task itself stays
	// periodic; its materialized requests are checked by the budget
	// axiom.
	if sources, err := sc.TaskSources(); err != nil {
		return nil, err
	} else if sources != nil {
		cfg.Sources = make(map[string]taskset.Source)
		for i, src := range sources {
			if src != nil {
				cfg.Sources[set.Tasks[i].Name] = src
			}
		}
	}
	if sc.Partitioned() {
		assignment, err := sc.Partition()
		if err != nil {
			return nil, err
		}
		cfg.Assignment = make(map[string]int, set.Len())
		for i, t := range set.Tasks {
			cfg.Assignment[t.Name] = assignment[i]
		}
	}
	tr, err := detect.ParseTreatment(sc.Treatment)
	if err != nil {
		return nil, err
	}
	if tr != detect.NoDetection {
		cfg.DetectorOffsets, err = DetectorOffsets(set, tr, sc.TimerResolution.D())
		if err != nil {
			return nil, err
		}
	}
	return New(cfg)
}

// DetectorOffsets derives the latest-detection bound of every task —
// the per-period detector offset the supervisor arms: the WCRT (or
// the equitable shifted WCRT), quantized up to the timer resolution.
func DetectorOffsets(set *taskset.Set, tr detect.Treatment, resolution vtime.Duration) (map[string]vtime.Duration, error) {
	sup, err := detect.NewSupervisor(set, detect.Config{Treatment: tr, TimerResolution: resolution})
	if err != nil {
		return nil, fmt.Errorf("verify: deriving detector offsets: %w", err)
	}
	offs := make(map[string]vtime.Duration, set.Len())
	for _, t := range set.Tasks {
		if off, ok := sup.DetectorOffset(t.Name); ok {
			offs[t.Name] = off
		}
	}
	return offs, nil
}

// ServerBudgets maps each declared polling server to its per-job
// capacity — except servers targeted by a declared fault entry, whose
// demand is deliberately perturbed beyond the declaration (a "buggy
// server" scenario) and therefore exempt from the budget axiom.
func ServerBudgets(sc *scenario.Scenario) map[string]vtime.Duration {
	if len(sc.Servers) == 0 {
		return nil
	}
	faulted := make(map[string]bool, len(sc.Faults))
	for _, f := range sc.Faults {
		faulted[f.Task] = true
	}
	budgets := make(map[string]vtime.Duration, len(sc.Servers))
	for _, srv := range sc.Servers {
		if !faulted[srv.Task.Name] {
			budgets[srv.Task.Name] = srv.Task.Cost.D()
		}
	}
	return budgets
}
