package verify

import (
	"strings"
	"testing"

	"repro/internal/taskset"
	"repro/internal/trace"
	"repro/internal/vtime"
)

// twoTasks is a minimal fixed-priority system: t1 (high) every 10 ms
// with deadline 10 ms and cost 2 ms, t2 (low) every 20 ms with
// deadline 20 ms and cost 5 ms.
func twoTasks(t *testing.T) *taskset.Set {
	t.Helper()
	return taskset.MustNew(
		taskset.Task{Name: "t1", Priority: 2, Period: vtime.Millis(10), Deadline: vtime.Millis(10), Cost: vtime.Millis(2)},
		taskset.Task{Name: "t2", Priority: 1, Period: vtime.Millis(20), Deadline: vtime.Millis(20), Cost: vtime.Millis(5)},
	)
}

func checker(t *testing.T, cfg Config) *Checker {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// ev abbreviates event construction.
func ev(atMS int64, kind trace.Kind, task string, job int64) trace.Event {
	return trace.Event{At: vtime.AtMillis(atMS), Kind: kind, Task: task, Job: job}
}

// feed drives a sequence and finishes the checker.
func feed(c *Checker, events ...trace.Event) {
	for _, e := range events {
		c.Append(e)
	}
	c.Finish()
}

// wantRule asserts exactly the given rules were violated (in order).
func wantRule(t *testing.T, c *Checker, rules ...string) {
	t.Helper()
	var got []string
	for _, v := range c.Violations() {
		got = append(got, v.Rule)
	}
	if len(got) != len(rules) {
		t.Fatalf("violations %v, want rules %v", c.Violations(), rules)
	}
	for i, r := range rules {
		if got[i] != r {
			t.Fatalf("violation %d is %q (%v), want %q", i, got[i], c.Violations()[i], r)
		}
	}
}

// cleanTrace is a correct two-job schedule of the twoTasks system:
// t1#0 runs 0–2, t2#0 runs 2–7, the next t1 job preempts nothing.
func cleanTrace() []trace.Event {
	return []trace.Event{
		ev(0, trace.JobRelease, "t1", 0),
		ev(0, trace.JobRelease, "t2", 0),
		ev(0, trace.JobBegin, "t1", 0),
		ev(2, trace.JobEnd, "t1", 0),
		ev(2, trace.JobBegin, "t2", 0),
		ev(7, trace.JobEnd, "t2", 0),
		ev(10, trace.JobRelease, "t1", 1),
		ev(10, trace.JobBegin, "t1", 1),
		ev(12, trace.JobEnd, "t1", 1),
	}
}

func TestCleanTracePasses(t *testing.T) {
	c := checker(t, Config{Tasks: twoTasks(t), Horizon: vtime.AtMillis(15)})
	feed(c, cleanTrace()...)
	if err := c.Err(); err != nil {
		t.Fatalf("clean trace flagged: %v", err)
	}
}

func TestMonotoneTime(t *testing.T) {
	c := checker(t, Config{Tasks: twoTasks(t), Horizon: vtime.AtMillis(5)})
	feed(c,
		ev(0, trace.JobRelease, "t1", 0),
		ev(0, trace.JobBegin, "t1", 0),
		ev(2, trace.JobEnd, "t1", 0),
		ev(1, trace.DetectorRelease, "t1", 0), // time went backwards
	)
	wantRule(t, c, "monotone-time")
}

func TestDoubleRun(t *testing.T) {
	c := checker(t, Config{Tasks: twoTasks(t), Horizon: vtime.AtMillis(5)})
	feed(c,
		ev(0, trace.JobRelease, "t1", 0),
		ev(0, trace.JobRelease, "t2", 0),
		ev(0, trace.JobBegin, "t1", 0),
		ev(1, trace.JobBegin, "t2", 0), // t1 still running
		ev(2, trace.JobEnd, "t1", 0),
		ev(6, trace.JobEnd, "t2", 0),
	)
	// The overlapping begin is flagged (and, being the lower-priority
	// job, also misordered); the overlap desyncs the running-job
	// accounting, so t1's end is no longer "the running job" — all
	// three stem from the same corruption.
	wantRule(t, c, "double-run", "dispatch-order", "terminal-not-running")
}

func TestDispatchOrderFixedPriority(t *testing.T) {
	c := checker(t, Config{Tasks: twoTasks(t), Horizon: vtime.AtMillis(10)})
	feed(c,
		ev(0, trace.JobRelease, "t1", 0),
		ev(0, trace.JobRelease, "t2", 0),
		ev(0, trace.JobBegin, "t2", 0), // t1 has higher priority
		ev(5, trace.JobEnd, "t2", 0),
		ev(5, trace.JobBegin, "t1", 0),
		ev(7, trace.JobEnd, "t1", 0),
	)
	wantRule(t, c, "dispatch-order")
}

func TestDispatchOrderEDF(t *testing.T) {
	c := checker(t, Config{Tasks: twoTasks(t), Policy: "edf", Horizon: vtime.AtMillis(10)})
	// Under EDF t1#0 (deadline 10) precedes t2#0 (deadline 20):
	// dispatching t2 first violates the recomputed deadline keys.
	feed(c,
		ev(0, trace.JobRelease, "t1", 0),
		ev(0, trace.JobRelease, "t2", 0),
		ev(0, trace.JobBegin, "t2", 0),
		ev(5, trace.JobEnd, "t2", 0),
		ev(5, trace.JobBegin, "t1", 0),
		ev(7, trace.JobEnd, "t1", 0),
	)
	wantRule(t, c, "dispatch-order")
}

func TestDispatchOrderUnknownPolicySkipped(t *testing.T) {
	c := checker(t, Config{Tasks: twoTasks(t), Policy: "some-exotic-policy", Horizon: vtime.AtMillis(10)})
	feed(c,
		ev(0, trace.JobRelease, "t1", 0),
		ev(0, trace.JobRelease, "t2", 0),
		ev(0, trace.JobBegin, "t2", 0),
		ev(5, trace.JobEnd, "t2", 0),
		ev(5, trace.JobBegin, "t1", 0),
		ev(7, trace.JobEnd, "t1", 0),
	)
	if err := c.Err(); err != nil {
		t.Fatalf("unknown policy must disable only the dispatch-order axiom: %v", err)
	}
}

func TestFIFOWithinTask(t *testing.T) {
	set := taskset.MustNew(
		taskset.Task{Name: "t1", Priority: 1, Period: vtime.Millis(5), Deadline: vtime.Millis(20), Cost: vtime.Millis(4)},
	)
	c := checker(t, Config{Tasks: set, Horizon: vtime.AtMillis(20)})
	feed(c,
		ev(0, trace.JobRelease, "t1", 0),
		ev(0, trace.JobBegin, "t1", 0),
		ev(4, trace.JobEnd, "t1", 0),
		ev(5, trace.JobRelease, "t1", 1),
		ev(10, trace.JobRelease, "t1", 2),
		ev(10, trace.JobBegin, "t1", 2), // job 1 is the head
	)
	wantRule(t, c, "dispatch-non-head")
}

func TestDeadlineUnresolved(t *testing.T) {
	c := checker(t, Config{Tasks: twoTasks(t), Horizon: vtime.AtMillis(30)})
	feed(c,
		ev(0, trace.JobRelease, "t1", 0),
		ev(0, trace.JobBegin, "t1", 0),
		// t1#0's 10 ms deadline passes: no end, no stop, no miss event.
		ev(10, trace.JobRelease, "t1", 1),
		ev(11, trace.DetectorRelease, "t1", 0),
	)
	// t1#0 is flagged when the clock passes 10 ms; t1#1 (deadline
	// 20 ms, never resolved either) is flagged by Finish.
	wantRule(t, c, "deadline-unresolved", "deadline-unresolved")
}

func TestMissRecordedAtDeadlineIsClean(t *testing.T) {
	c := checker(t, Config{Tasks: twoTasks(t), Horizon: vtime.AtMillis(14)})
	feed(c,
		ev(0, trace.JobRelease, "t1", 0),
		ev(0, trace.JobBegin, "t1", 0),
		ev(10, trace.JobRelease, "t1", 1),
		ev(10, trace.DeadlineMiss, "t1", 0),
		ev(12, trace.JobEnd, "t1", 0), // late completion after the miss
		ev(12, trace.JobBegin, "t1", 1),
		ev(14, trace.JobEnd, "t1", 1),
	)
	if err := c.Err(); err != nil {
		t.Fatalf("miss-then-late-completion is legal: %v", err)
	}
}

func TestMissTimeMustEqualDeadline(t *testing.T) {
	c := checker(t, Config{Tasks: twoTasks(t), Horizon: vtime.AtMillis(12)})
	feed(c,
		ev(0, trace.JobRelease, "t1", 0),
		ev(0, trace.JobBegin, "t1", 0),
		ev(9, trace.DeadlineMiss, "t1", 0), // one ms early
		ev(11, trace.JobEnd, "t1", 0),
	)
	wantRule(t, c, "miss-time")
}

func TestMissAfterEnd(t *testing.T) {
	c := checker(t, Config{Tasks: twoTasks(t), Horizon: vtime.AtMillis(12)})
	feed(c,
		ev(0, trace.JobRelease, "t1", 0),
		ev(0, trace.JobBegin, "t1", 0),
		ev(2, trace.JobEnd, "t1", 0),
		ev(10, trace.DeadlineMiss, "t1", 0), // already finished in time
	)
	wantRule(t, c, "miss-after-end")
}

func TestReleaseTimeAndOrder(t *testing.T) {
	c := checker(t, Config{Tasks: twoTasks(t), Horizon: vtime.AtMillis(25)})
	feed(c,
		ev(0, trace.JobRelease, "t1", 0),
		ev(0, trace.JobBegin, "t1", 0),
		ev(2, trace.JobEnd, "t1", 0),
		ev(11, trace.JobRelease, "t1", 1), // one ms late
		ev(11, trace.JobBegin, "t1", 1),
		ev(13, trace.JobEnd, "t1", 1),
		ev(20, trace.JobRelease, "t1", 3), // skips job 2
		ev(20, trace.JobBegin, "t1", 3),
		ev(22, trace.JobEnd, "t1", 3),
	)
	wantRule(t, c, "release-time", "release-order", "release-time")
}

func TestDetectorTiming(t *testing.T) {
	offs := map[string]vtime.Duration{"t1": vtime.Millis(3)}
	c := checker(t, Config{Tasks: twoTasks(t), DetectorOffsets: offs, Horizon: vtime.AtMillis(20)})
	feed(c,
		ev(0, trace.JobRelease, "t1", 0),
		ev(0, trace.JobBegin, "t1", 0),
		ev(2, trace.JobEnd, "t1", 0),
		ev(3, trace.DetectorRelease, "t1", 0),  // exact: release 0 + 3 ms
		ev(14, trace.DetectorRelease, "t1", 1), // want 13 ms
	)
	wantRule(t, c, "detector-time")
}

func TestFaultOnTerminatedJob(t *testing.T) {
	c := checker(t, Config{Tasks: twoTasks(t), Horizon: vtime.AtMillis(10)})
	feed(c,
		ev(0, trace.JobRelease, "t1", 0),
		ev(0, trace.JobBegin, "t1", 0),
		ev(2, trace.JobEnd, "t1", 0),
		ev(3, trace.DetectorRelease, "t1", 0),
		ev(3, trace.FaultDetected, "t1", 0), // finished a ms ago
	)
	wantRule(t, c, "fault-on-terminated")
}

func TestServerBudget(t *testing.T) {
	set := taskset.MustNew(
		taskset.Task{Name: "srv", Priority: 1, Period: vtime.Millis(10), Deadline: vtime.Millis(10), Cost: vtime.Millis(2)},
	)
	c := checker(t, Config{
		Tasks:         set,
		ServerBudgets: map[string]vtime.Duration{"srv": vtime.Millis(2)},
		Horizon:       vtime.AtMillis(10),
	})
	feed(c,
		ev(0, trace.JobRelease, "srv", 0),
		ev(0, trace.JobBegin, "srv", 0),
		ev(3, trace.JobEnd, "srv", 0), // 3 ms of service from a 2 ms budget
	)
	wantRule(t, c, "server-budget")
}

func TestServerBudgetAllowsContextSwitchOverhead(t *testing.T) {
	set := taskset.MustNew(
		taskset.Task{Name: "srv", Priority: 1, Period: vtime.Millis(10), Deadline: vtime.Millis(10), Cost: vtime.Millis(2)},
	)
	c := checker(t, Config{
		Tasks:         set,
		ServerBudgets: map[string]vtime.Duration{"srv": vtime.Millis(2)},
		ContextSwitch: vtime.Millis(1),
		Horizon:       vtime.AtMillis(10),
	})
	feed(c,
		ev(0, trace.JobRelease, "srv", 0),
		ev(0, trace.JobBegin, "srv", 0),
		ev(3, trace.JobEnd, "srv", 0), // 2 ms budget + 1 dispatch × 1 ms
	)
	if err := c.Err(); err != nil {
		t.Fatalf("budget must admit charged switch overhead: %v", err)
	}
}

func TestAdmissionDropIsLegal(t *testing.T) {
	c := checker(t, Config{Tasks: twoTasks(t), Horizon: vtime.AtMillis(10)})
	feed(c,
		ev(0, trace.JobRelease, "t1", 0),
		ev(0, trace.JobStopped, "t1", 0), // shed at release: legal
	)
	if err := c.Err(); err != nil {
		t.Fatalf("admission drop flagged: %v", err)
	}
}

func TestStopWithoutRunningAfterRelease(t *testing.T) {
	c := checker(t, Config{Tasks: twoTasks(t), Horizon: vtime.AtMillis(10)})
	feed(c,
		ev(0, trace.JobRelease, "t1", 0),
		ev(5, trace.JobStopped, "t1", 0), // never began, not at release
	)
	wantRule(t, c, "stop-before-begin")
}

func TestPreemptResumeLifecycle(t *testing.T) {
	set := taskset.MustNew(
		taskset.Task{Name: "t1", Priority: 2, Period: vtime.Millis(10), Deadline: vtime.Millis(10), Cost: vtime.Millis(2), Offset: vtime.Millis(10)},
		taskset.Task{Name: "t2", Priority: 1, Period: vtime.Millis(20), Deadline: vtime.Millis(20), Cost: vtime.Millis(12)},
	)
	c := checker(t, Config{Tasks: set, Horizon: vtime.AtMillis(15)})
	feed(c,
		ev(0, trace.JobRelease, "t2", 0),
		ev(0, trace.JobBegin, "t2", 0),
		ev(10, trace.JobRelease, "t1", 0),
		ev(10, trace.JobPreempt, "t2", 0),
		ev(10, trace.JobBegin, "t1", 0),
		ev(12, trace.JobEnd, "t1", 0),
		ev(12, trace.JobResume, "t2", 0),
		ev(14, trace.JobEnd, "t2", 0),
	)
	if err := c.Err(); err != nil {
		t.Fatalf("legal preempt/resume flagged: %v", err)
	}
}

func TestResumeBeforeBegin(t *testing.T) {
	c := checker(t, Config{Tasks: twoTasks(t), Horizon: vtime.AtMillis(10)})
	feed(c,
		ev(0, trace.JobRelease, "t1", 0),
		ev(0, trace.JobResume, "t1", 0),
		ev(2, trace.JobEnd, "t1", 0),
	)
	wantRule(t, c, "resume-before-begin")
}

func TestPreemptNotRunning(t *testing.T) {
	c := checker(t, Config{Tasks: twoTasks(t), Horizon: vtime.AtMillis(10)})
	feed(c,
		ev(0, trace.JobRelease, "t1", 0),
		ev(1, trace.JobPreempt, "t1", 0), // never dispatched
		ev(1, trace.JobBegin, "t1", 0),
		ev(3, trace.JobEnd, "t1", 0),
	)
	wantRule(t, c, "preempt-not-running")
}

func TestUnknownTask(t *testing.T) {
	c := checker(t, Config{Tasks: twoTasks(t), Horizon: vtime.AtMillis(10)})
	feed(c, ev(0, trace.JobRelease, "ghost", 0))
	// The undeclared task is flagged once, then tracked leniently
	// (its parameters are unknown, so no deadline can be enforced).
	wantRule(t, c, "unknown-task")
}

func TestConservationAtHorizon(t *testing.T) {
	// A live job whose deadline is beyond the horizon is legal.
	c := checker(t, Config{Tasks: twoTasks(t), Horizon: vtime.AtMillis(19)})
	feed(c,
		ev(0, trace.JobRelease, "t2", 0),
		ev(0, trace.JobBegin, "t2", 0),
	)
	if err := c.Err(); err != nil {
		t.Fatalf("live unexpired job at horizon flagged: %v", err)
	}
}

func TestDeadlineExactlyAtHorizonNeedsResolution(t *testing.T) {
	// t2#0's deadline (20 ms) equals the horizon: the engine processes
	// events at the horizon, so an unterminated job must carry a miss.
	c := checker(t, Config{Tasks: twoTasks(t), Horizon: vtime.AtMillis(20)})
	feed(c,
		ev(0, trace.JobRelease, "t2", 0),
		ev(0, trace.JobBegin, "t2", 0),
	)
	wantRule(t, c, "deadline-unresolved")
}

func TestViolationCap(t *testing.T) {
	c := checker(t, Config{Tasks: twoTasks(t), Horizon: vtime.AtMillis(1000), MaxViolations: 3})
	events := []trace.Event{}
	for q := int64(0); q < 10; q++ {
		// Every release one ms late: ten release-time violations.
		events = append(events, trace.Event{At: vtime.AtMillis(q*10 + 1), Kind: trace.JobRelease, Task: "t1", Job: q})
		events = append(events, trace.Event{At: vtime.AtMillis(q*10 + 1), Kind: trace.JobBegin, Task: "t1", Job: q})
		events = append(events, trace.Event{At: vtime.AtMillis(q*10 + 3), Kind: trace.JobEnd, Task: "t1", Job: q})
	}
	feed(c, events...)
	verr, ok := c.Err().(*Error)
	if !ok {
		t.Fatalf("want *Error, got %v", c.Err())
	}
	if len(verr.Violations) != 3 || verr.Total != 10 {
		t.Fatalf("recorded %d/%d violations, want 3 recorded of 10 total:\n%v",
			len(verr.Violations), verr.Total, verr)
	}
	if !strings.Contains(verr.Error(), "... 7 more") {
		t.Fatalf("Error() should mention the dropped tail: %s", verr)
	}
}

// TestZeroGrantIsLegal reproduces the tightly-utilized system whose
// MaxOverrun is zero: the system-allowance treatment records a grant
// of 0 ns, which is a correct run, while a negative grant (which no
// allowance analysis can produce) stays a violation.
func TestZeroGrantIsLegal(t *testing.T) {
	c := checker(t, Config{Tasks: twoTasks(t), Horizon: vtime.AtMillis(10)})
	feed(c,
		ev(0, trace.JobRelease, "t1", 0),
		ev(0, trace.JobBegin, "t1", 0),
		trace.Event{At: vtime.AtMillis(1), Kind: trace.AllowanceGrant, Task: "t1", Job: 0, Arg: 0},
		ev(2, trace.JobEnd, "t1", 0),
	)
	if err := c.Err(); err != nil {
		t.Fatalf("zero grant flagged on a correct run: %v", err)
	}

	c = checker(t, Config{Tasks: twoTasks(t), Horizon: vtime.AtMillis(10)})
	feed(c,
		ev(0, trace.JobRelease, "t1", 0),
		ev(0, trace.JobBegin, "t1", 0),
		trace.Event{At: vtime.AtMillis(1), Kind: trace.AllowanceGrant, Task: "t1", Job: 0, Arg: -5},
		ev(2, trace.JobEnd, "t1", 0),
	)
	wantRule(t, c, "grant-negative")
}

// TestCheckerQueueCompacts pins the oracle's bounded-memory story: a
// never-idle task (cost == period) releasing thousands of jobs must
// not grow the checker's live queue with the horizon — the consumed
// prefix is compacted away, exactly like the engine's pending queue.
func TestCheckerQueueCompacts(t *testing.T) {
	set := taskset.MustNew(
		taskset.Task{Name: "hog", Priority: 1, Period: vtime.Millis(10), Deadline: vtime.Millis(10), Cost: vtime.Millis(10)},
	)
	const jobs = 5000
	c := checker(t, Config{Tasks: set, Horizon: vtime.AtMillis(10 * jobs)})
	for q := int64(0); q < jobs; q++ {
		base := q * 10
		c.Append(trace.Event{At: vtime.AtMillis(base), Kind: trace.JobRelease, Task: "hog", Job: q})
		c.Append(trace.Event{At: vtime.AtMillis(base), Kind: trace.JobBegin, Task: "hog", Job: q})
		c.Append(trace.Event{At: vtime.AtMillis(base + 10), Kind: trace.JobEnd, Task: "hog", Job: q})
	}
	c.Finish()
	if err := c.Err(); err != nil {
		t.Fatalf("saturating task flagged: %v", err)
	}
	tc := c.byName["hog"]
	if cap(tc.queue) > 64 {
		t.Errorf("checker queue capacity %d grew with %d releases (head=%d)", cap(tc.queue), jobs, tc.head)
	}
}

// evc is ev with a core argument, for multiprocessor dispatch events.
func evc(atMS int64, kind trace.Kind, task string, job int64, core int64) trace.Event {
	e := ev(atMS, kind, task, job)
	e.Arg = core
	return e
}

func TestMulticoreCleanTracePasses(t *testing.T) {
	// The canonical migration witness on 2 cores: hi and mid start in
	// parallel, lo follows hi on core 0, is preempted there by hi#1,
	// and migrates onto core 1 once mid completes. No axiom fires.
	set := taskset.MustNew(
		taskset.Task{Name: "hi", Priority: 3, Period: vtime.Millis(50), Deadline: vtime.Millis(50), Cost: vtime.Millis(20)},
		taskset.Task{Name: "mid", Priority: 2, Period: vtime.Millis(200), Deadline: vtime.Millis(200), Cost: vtime.Millis(60)},
		taskset.Task{Name: "lo", Priority: 1, Period: vtime.Millis(200), Deadline: vtime.Millis(200), Cost: vtime.Millis(60)},
	)
	c := checker(t, Config{Tasks: set, CPUs: 2, Horizon: vtime.AtMillis(90)})
	feed(c,
		ev(0, trace.JobRelease, "hi", 0),
		ev(0, trace.JobRelease, "mid", 0),
		ev(0, trace.JobRelease, "lo", 0),
		evc(0, trace.JobBegin, "hi", 0, 0),
		evc(0, trace.JobBegin, "mid", 0, 1),
		ev(20, trace.JobEnd, "hi", 0),
		evc(20, trace.JobBegin, "lo", 0, 0),
		ev(50, trace.JobRelease, "hi", 1),
		evc(50, trace.JobPreempt, "lo", 0, 0),
		evc(50, trace.JobBegin, "hi", 1, 0),
		ev(60, trace.JobEnd, "mid", 0),
		evc(60, trace.JobMigrate, "lo", 0, 1),
		ev(70, trace.JobEnd, "hi", 1),
		ev(90, trace.JobEnd, "lo", 0),
	)
	if err := c.Err(); err != nil {
		t.Fatalf("clean 2-core trace flagged: %v", err)
	}
}

func TestResumeOnDifferentCore(t *testing.T) {
	c := checker(t, Config{Tasks: twoTasks(t), CPUs: 2, Horizon: vtime.AtMillis(10)})
	feed(c,
		ev(0, trace.JobRelease, "t1", 0),
		evc(0, trace.JobBegin, "t1", 0, 0),
		evc(1, trace.JobPreempt, "t1", 0, 0),
		evc(1, trace.JobResume, "t1", 0, 1), // cross-core resume, not a migrate
		ev(3, trace.JobEnd, "t1", 0),
	)
	wantRule(t, c, "resume-core")
}

func TestMigrateOntoSameCore(t *testing.T) {
	c := checker(t, Config{Tasks: twoTasks(t), CPUs: 2, Horizon: vtime.AtMillis(10)})
	feed(c,
		ev(0, trace.JobRelease, "t1", 0),
		evc(0, trace.JobBegin, "t1", 0, 0),
		evc(1, trace.JobPreempt, "t1", 0, 0),
		evc(1, trace.JobMigrate, "t1", 0, 0), // same core: must be a resume
		ev(3, trace.JobEnd, "t1", 0),
	)
	wantRule(t, c, "migrate-same-core")
}

func TestPartitionPlacement(t *testing.T) {
	c := checker(t, Config{
		Tasks: twoTasks(t), CPUs: 2, Horizon: vtime.AtMillis(10),
		Assignment: map[string]int{"t1": 0, "t2": 1},
	})
	feed(c,
		ev(0, trace.JobRelease, "t1", 0),
		evc(0, trace.JobBegin, "t1", 0, 1), // t1 is pinned to core 0
		ev(2, trace.JobEnd, "t1", 0),
	)
	wantRule(t, c, "partition-placement")
}

func TestPartitionedMigrationForbidden(t *testing.T) {
	c := checker(t, Config{
		Tasks: twoTasks(t), CPUs: 2, Horizon: vtime.AtMillis(10),
		Assignment: map[string]int{"t1": 0, "t2": 1},
	})
	feed(c,
		ev(0, trace.JobRelease, "t1", 0),
		evc(0, trace.JobBegin, "t1", 0, 0),
		evc(1, trace.JobPreempt, "t1", 0, 0),
		evc(1, trace.JobMigrate, "t1", 0, 1),
		ev(3, trace.JobEnd, "t1", 0),
	)
	// The migrate itself is outlawed under partitioned placement, and
	// it also lands the job off its pinned core.
	wantRule(t, c, "partition-migration", "partition-placement")
}

func TestWorkConservation(t *testing.T) {
	// Core 1 idles over (0,1) while t2's released job waits: global
	// dispatch on 2 cores must have filled the idle core.
	c := checker(t, Config{Tasks: twoTasks(t), CPUs: 2, Horizon: vtime.AtMillis(10)})
	feed(c,
		ev(0, trace.JobRelease, "t1", 0),
		ev(0, trace.JobRelease, "t2", 0),
		evc(0, trace.JobBegin, "t1", 0, 0),
		evc(1, trace.JobBegin, "t2", 0, 1), // late: should have begun at 0
		ev(2, trace.JobEnd, "t1", 0),
		ev(6, trace.JobEnd, "t2", 0),
	)
	wantRule(t, c, "work-conservation")
}

func TestWorkConservationPartitionedIgnoresOtherCores(t *testing.T) {
	// Under partitioned placement t2 (pinned to busy core 1) waiting
	// while core 0 idles is legal — that is the whole point of the
	// partitioned/global differential.
	c := checker(t, Config{
		Tasks: twoTasks(t), CPUs: 2, Horizon: vtime.AtMillis(20),
		Assignment: map[string]int{"t1": 1, "t2": 1},
	})
	feed(c,
		ev(0, trace.JobRelease, "t1", 0),
		ev(0, trace.JobRelease, "t2", 0),
		evc(0, trace.JobBegin, "t1", 0, 1),
		ev(2, trace.JobEnd, "t1", 0),
		evc(2, trace.JobBegin, "t2", 0, 1),
		ev(7, trace.JobEnd, "t2", 0),
	)
	if err := c.Err(); err != nil {
		t.Fatalf("partitioned wait flagged: %v", err)
	}
}

func TestCPUIndexOutOfRange(t *testing.T) {
	c := checker(t, Config{Tasks: twoTasks(t), CPUs: 2, Horizon: vtime.AtMillis(10)})
	feed(c,
		ev(0, trace.JobRelease, "t1", 0),
		evc(0, trace.JobBegin, "t1", 0, 5),
		ev(2, trace.JobEnd, "t1", 0),
	)
	wantRule(t, c, "cpu-index")
}
