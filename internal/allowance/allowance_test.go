package allowance

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/taskset"
	"repro/internal/vtime"
)

func ms(v int64) vtime.Duration { return vtime.Millis(v) }

func table2() *taskset.Set {
	return taskset.MustNew(
		taskset.Task{Name: "tau1", Priority: 20, Period: ms(200), Deadline: ms(70), Cost: ms(29)},
		taskset.Task{Name: "tau2", Priority: 18, Period: ms(250), Deadline: ms(120), Cost: ms(29)},
		taskset.Task{Name: "tau3", Priority: 16, Period: ms(1500), Deadline: ms(120), Cost: ms(29)},
	)
}

func TestEquitableMatchesPaperTable2(t *testing.T) {
	// Paper Table 2: Ai = 11 ms for every task.
	a, err := Equitable(table2(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if a != ms(11) {
		t.Fatalf("equitable allowance = %v, want 11ms", a)
	}
}

func TestSystemAllowanceMatchesPaper(t *testing.T) {
	// Paper §6.5: "all the system time available in the worst
	// execution case, that is to say thirty three milliseconds" is
	// granted to the first faulty task (τ1).
	maxo, err := System(table2(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if maxo[0] != ms(33) {
		t.Fatalf("max overrun of tau1 = %v, want 33ms", maxo[0])
	}
	// τ2's own bound: R3 = 87 + X ≤ 120 also gives 33; τ3's bound is
	// limited by its own deadline: 87 + X ≤ 120 → 33.
	if maxo[1] != ms(33) || maxo[2] != ms(33) {
		t.Fatalf("max overruns = %v, want [33ms 33ms 33ms]", maxo)
	}
}

func TestComputeTable3(t *testing.T) {
	// Paper Table 3: with every task overrunning by A = 11 ms, the
	// worst-case response times shift to WCRT1+11, WCRT2+22, WCRT3+33.
	tab, err := Compute(table2(), 0)
	if err != nil {
		t.Fatal(err)
	}
	wantBase := []vtime.Duration{ms(29), ms(58), ms(87)}
	wantShift := []vtime.Duration{ms(29 + 11), ms(58 + 22), ms(87 + 33)}
	for i := range wantBase {
		if tab.WCRT[i] != wantBase[i] {
			t.Errorf("WCRT[%d] = %v, want %v", i, tab.WCRT[i], wantBase[i])
		}
		if tab.EquitableWCRT[i] != wantShift[i] {
			t.Errorf("EquitableWCRT[%d] = %v, want %v", i, tab.EquitableWCRT[i], wantShift[i])
		}
	}
	if tab.Equitable != ms(11) {
		t.Errorf("Equitable = %v, want 11ms", tab.Equitable)
	}
}

func TestEquitableKeepsSystemFeasible(t *testing.T) {
	// Definition check: the inflated system is feasible at the
	// computed allowance and infeasible one granule above.
	s := table2()
	a, err := Equitable(s, ms(1))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := analysis.Feasible(s.WithCostDelta(a))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Feasible {
		t.Fatalf("system must remain feasible at the allowance %v", a)
	}
	rep, err = analysis.Feasible(s.WithCostDelta(a + ms(1)))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Feasible {
		t.Fatalf("system must be infeasible one granule above the allowance %v", a)
	}
}

func TestMaxOverrunBoundary(t *testing.T) {
	s := table2()
	for i := range s.Tasks {
		x, err := MaxOverrun(s, i, ms(1))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := analysis.Feasible(s.WithTaskCostDelta(i, x))
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Feasible {
			t.Fatalf("task %d: system infeasible at its own max overrun %v", i, x)
		}
		rep, err = analysis.Feasible(s.WithTaskCostDelta(i, x+ms(1)))
		if err != nil {
			t.Fatal(err)
		}
		if rep.Feasible {
			t.Fatalf("task %d: still feasible one granule above max overrun %v", i, x)
		}
	}
}

func TestInfeasibleBaseSystemRejected(t *testing.T) {
	s := taskset.MustNew(
		taskset.Task{Name: "a", Priority: 2, Period: ms(10), Deadline: ms(5), Cost: ms(5)},
		taskset.Task{Name: "b", Priority: 1, Period: ms(10), Deadline: ms(6), Cost: ms(5)},
	)
	if _, err := Equitable(s, 0); err == nil {
		t.Fatal("expected error: base system infeasible (b's WCRT 10 > D 6)")
	}
}

func TestFinerGranularity(t *testing.T) {
	// At 100 µs resolution the allowance refines within
	// [11ms, 12ms): the exact boundary for Table 2 is 11ms exactly
	// (3·(29+A) ≤ 120 ⇒ A ≤ 11), so a finer search returns 11ms too.
	a, err := Equitable(table2(), vtime.Micros(100))
	if err != nil {
		t.Fatal(err)
	}
	if a != ms(11) {
		t.Fatalf("fine-grained equitable allowance = %v, want exactly 11ms", a)
	}
}

func TestAllowanceMonotoneUnderSlack(t *testing.T) {
	// Shrinking every cost can only grow the allowance.
	gen := taskset.NewGenerator(99)
	for trial := 0; trial < 50; trial++ {
		s, err := gen.Generate(3, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := analysis.Feasible(s)
		if err != nil || !rep.Feasible {
			continue
		}
		a1, err := Equitable(s, ms(1))
		if err != nil {
			continue
		}
		shrunk := s.Clone()
		ok := true
		for i := range shrunk.Tasks {
			if shrunk.Tasks[i].Cost <= ms(2) {
				ok = false
				break
			}
			shrunk.Tasks[i].Cost -= ms(1)
		}
		if !ok {
			continue
		}
		a2, err := Equitable(shrunk, ms(1))
		if err != nil {
			t.Fatalf("trial %d: shrunk system lost its allowance: %v", trial, err)
		}
		if a2 < a1 {
			t.Fatalf("trial %d: shrinking costs shrank allowance %v -> %v", trial, a1, a2)
		}
	}
}

func TestSearchRejectsUnbounded(t *testing.T) {
	// ok() that never fails must be reported as unbounded, not loop.
	_, err := search(ms(1), func(vtime.Duration) (bool, error) { return true, nil })
	if err == nil {
		t.Fatal("expected unbounded-allowance error")
	}
}
