// Package allowance computes the paper's tolerance factors (§4.2 and
// §4.3): how much extra cost the tasks can absorb while the system
// remains theoretically feasible. The equitable allowance is the
// maximum Δ addable to *every* task cost; the system allowance is the
// maximum overrun a *single* task may make, granted entirely to the
// first faulty task with the leftover redistributed to later ones.
package allowance

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/taskset"
	"repro/internal/vtime"
)

// DefaultGranularity is the search resolution. The paper works in
// whole milliseconds (Table 2 reports A = 11 ms); finer searches are
// possible but pointless below the platform timer resolution.
const DefaultGranularity = vtime.Millisecond

// Equitable performs the paper's §4.2 computation: a binary search for
// the maximum value that can be added to the costs of all the tasks so
// that the system remains feasible under the Figure 2 analysis. The
// granularity bounds the search resolution (0 means
// DefaultGranularity).
func Equitable(s *taskset.Set, granularity vtime.Duration) (vtime.Duration, error) {
	return search(granularity, func(delta vtime.Duration) (bool, error) {
		return feasibleWith(s.WithCostDelta(delta))
	})
}

// MaxOverrun returns the maximum cost overrun task i alone can make
// while the whole system stays feasible — the per-task bound behind
// the §4.3 system allowance ("looking for the maximum cost overrun
// this task can do").
func MaxOverrun(s *taskset.Set, i int, granularity vtime.Duration) (vtime.Duration, error) {
	if i < 0 || i >= s.Len() {
		return 0, fmt.Errorf("allowance: task index %d out of range", i)
	}
	return search(granularity, func(delta vtime.Duration) (bool, error) {
		return feasibleWith(s.WithTaskCostDelta(i, delta))
	})
}

// System computes the §4.3 system allowance: the maximum free time in
// the system, i.e. the largest overrun grantable in full to the first
// faulty task. It is the minimum over tasks of nothing — concretely,
// the paper grants the first faulty task its own MaxOverrun; because
// any task's overrun must keep every lower-priority task feasible,
// the highest-priority task's MaxOverrun is the figure the paper
// quotes (33 ms for Table 2). System returns MaxOverrun for every
// task, in set order.
func System(s *taskset.Set, granularity vtime.Duration) ([]vtime.Duration, error) {
	out := make([]vtime.Duration, s.Len())
	for i := range s.Tasks {
		a, err := MaxOverrun(s, i, granularity)
		if err != nil {
			return nil, fmt.Errorf("allowance: task %s: %w", s.Tasks[i].Name, err)
		}
		out[i] = a
	}
	return out, nil
}

// search binary-searches the largest delta (a multiple of the
// granularity) for which ok(delta) holds. ok must be monotone
// (feasible at 0, eventually infeasible). Returns 0 when even the
// base system is infeasible at delta 0 but ok(0) holds vacuously —
// callers should admission-check first.
func search(granularity vtime.Duration, ok func(vtime.Duration) (bool, error)) (vtime.Duration, error) {
	if granularity <= 0 {
		granularity = DefaultGranularity
	}
	if feas, err := ok(0); err != nil {
		return 0, err
	} else if !feas {
		return 0, fmt.Errorf("allowance: system infeasible with no overrun; nothing to grant")
	}
	// Exponential probe for an infeasible upper bound.
	hi := granularity
	for {
		feas, err := ok(hi)
		if err != nil {
			return 0, err
		}
		if !feas {
			break
		}
		if hi > vtime.Duration(1)<<50 {
			return 0, fmt.Errorf("allowance: allowance appears unbounded (system never becomes infeasible)")
		}
		hi *= 2
	}
	// Invariant: ok(lo) holds, ok(hi) fails.
	lo := vtime.Duration(0)
	for hi-lo > granularity {
		mid := lo + ((hi - lo) / 2).Floor(granularity)
		if mid <= lo {
			mid = lo + granularity
		}
		feas, err := ok(mid)
		if err != nil {
			return 0, err
		}
		if feas {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, nil
}

func feasibleWith(s *taskset.Set) (bool, error) {
	// A cost inflated past its deadline is infeasible by definition;
	// Set.Validate would reject it, so test directly here.
	for _, t := range s.Tasks {
		if t.Cost > t.Deadline {
			return false, nil
		}
	}
	if s.Utilization() > 1 {
		return false, nil
	}
	wcrt, err := analysis.ResponseTimes(s)
	if err != nil {
		if err == analysis.ErrUnbounded {
			return false, nil
		}
		// ResponseTimes wraps ErrUnbounded with the task name; treat
		// any unbounded response as infeasible rather than fatal.
		return false, nil
	}
	for i, t := range s.Tasks {
		if wcrt[i] > t.Deadline {
			return false, nil
		}
	}
	return true, nil
}

// Table is the result of the full allowance analysis used by the
// treatments: per-task WCRT, the equitable allowance and the shifted
// WCRTs of the paper's Table 3, and the per-task maximum overruns for
// the system treatment.
type Table struct {
	// WCRT is the nominal worst-case response time per task.
	WCRT []vtime.Duration
	// Equitable is the per-task allowance Δ of §4.2 (a single value,
	// equal for all tasks).
	Equitable vtime.Duration
	// EquitableWCRT is the worst-case response time of each task when
	// every task overruns by Equitable — the paper's Table 3 values
	// WCRT_i + Σ_{j: Pj ≥ Pi} A. Detectors under the equitable
	// treatment fire at these offsets.
	EquitableWCRT []vtime.Duration
	// MaxOverrun is the §4.3 per-task maximum single-task overrun;
	// MaxOverrun of the highest-priority task is the paper's "maximum
	// free time available in the system" (33 ms for Table 2).
	MaxOverrun []vtime.Duration
}

// Compute runs the complete allowance analysis at the given
// granularity (0 means DefaultGranularity).
func Compute(s *taskset.Set, granularity vtime.Duration) (*Table, error) {
	wcrt, err := analysis.ResponseTimes(s)
	if err != nil {
		return nil, err
	}
	eq, err := Equitable(s, granularity)
	if err != nil {
		return nil, err
	}
	eqWCRT, err := analysis.ResponseTimes(s.WithCostDelta(eq))
	if err != nil {
		return nil, fmt.Errorf("allowance: WCRT with equitable overruns: %w", err)
	}
	maxo, err := System(s, granularity)
	if err != nil {
		return nil, err
	}
	return &Table{WCRT: wcrt, Equitable: eq, EquitableWCRT: eqWCRT, MaxOverrun: maxo}, nil
}
