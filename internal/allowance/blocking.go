package allowance

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/taskset"
	"repro/internal/vtime"
)

// EquitableWithBlocking answers the paper's §7 question — "it would
// be advisable to study the influence of tolerance on the
// determination of the blocking time (bi)" — in the forward
// direction: the equitable allowance of a system whose tasks incur
// the given blocking terms. Blocking consumes slack exactly like
// extra cost at the blocked task's level, so the allowance shrinks
// monotonically with every b_i.
func EquitableWithBlocking(s *taskset.Set, blocking []vtime.Duration, granularity vtime.Duration) (vtime.Duration, error) {
	return search(granularity, func(delta vtime.Duration) (bool, error) {
		return feasibleBlocked(s.WithCostDelta(delta), blocking)
	})
}

// MaxBlockingTolerance is the converse direction: the largest uniform
// blocking term every task could incur while the system stays
// feasible *with* the equitable allowance already granted — i.e. how
// much lock contention the §4.2 treatment leaves room for.
func MaxBlockingTolerance(s *taskset.Set, allowanceGrant vtime.Duration, granularity vtime.Duration) (vtime.Duration, error) {
	inflated := s.WithCostDelta(allowanceGrant)
	return search(granularity, func(b vtime.Duration) (bool, error) {
		blocking := make([]vtime.Duration, s.Len())
		for i := range blocking {
			blocking[i] = b
		}
		return feasibleBlocked(inflated, blocking)
	})
}

func feasibleBlocked(s *taskset.Set, blocking []vtime.Duration) (bool, error) {
	for _, t := range s.Tasks {
		if t.Cost > t.Deadline {
			return false, nil
		}
	}
	ok, err := analysis.FeasibleWithBlocking(s, blocking)
	if err != nil {
		return false, nil // unbounded at some level: infeasible
	}
	return ok, nil
}

// BlockingTable reports, for a range of uniform blocking terms, the
// equitable allowance that survives — the §7 interaction quantified.
type BlockingTable struct {
	Blocking  []vtime.Duration
	Allowance []vtime.Duration
}

// SweepBlocking computes the allowance at each uniform blocking term
// in steps of step up to max. Entries where the system is infeasible
// even without any overrun carry a -1 sentinel.
func SweepBlocking(s *taskset.Set, max, step vtime.Duration, granularity vtime.Duration) (*BlockingTable, error) {
	if step <= 0 {
		return nil, fmt.Errorf("allowance: step must be positive")
	}
	var tab BlockingTable
	for b := vtime.Duration(0); b <= max; b += step {
		blocking := make([]vtime.Duration, s.Len())
		for i := range blocking {
			blocking[i] = b
		}
		a, err := searchWithBase(granularity, func(delta vtime.Duration) (bool, error) {
			return feasibleBlocked(s.WithCostDelta(delta), blocking)
		})
		tab.Blocking = append(tab.Blocking, b)
		tab.Allowance = append(tab.Allowance, a)
		_ = err
	}
	return &tab, nil
}

// searchWithBase is search, but an infeasible base yields -1 instead
// of an error (for sweeps that intentionally cross the boundary).
func searchWithBase(granularity vtime.Duration, ok func(vtime.Duration) (bool, error)) (vtime.Duration, error) {
	a, err := search(granularity, ok)
	if err != nil {
		if feas, ferr := ok(0); ferr == nil && !feas {
			return -1, nil
		}
		return 0, err
	}
	return a, nil
}
