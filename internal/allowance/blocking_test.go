package allowance

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/vtime"
)

func TestEquitableWithBlockingShrinks(t *testing.T) {
	s := table2()
	base, err := Equitable(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Uniform 5 ms blocking: τ3's binding constraint becomes
	// 3·(29+A) + 5 ≤ 120 → A ≤ 9 (whole ms).
	blocking := []vtime.Duration{ms(5), ms(5), ms(5)}
	withB, err := EquitableWithBlocking(s, blocking, 0)
	if err != nil {
		t.Fatal(err)
	}
	if withB >= base {
		t.Fatalf("blocking must shrink the allowance: %v -> %v", base, withB)
	}
	if withB != ms(9) {
		t.Fatalf("allowance under uniform 5ms blocking = %v, want 9ms", withB)
	}
	// Blocking only tasks above the binding one leaves A unchanged:
	// τ3's constraint does not see b1/b2.
	same, err := EquitableWithBlocking(s, []vtime.Duration{ms(5), ms(5), 0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if same != base {
		t.Fatalf("blocking non-binding tasks changed the allowance: %v -> %v", base, same)
	}
}

func TestBlockingOnBindingTask(t *testing.T) {
	s := table2()
	// τ3 is the binding constraint (3·(29+A) + b3 ≤ 120). With
	// b3 = 6, A drops to 9: 3·38+6 = 120.
	blocking := []vtime.Duration{0, 0, ms(6)}
	a, err := EquitableWithBlocking(s, blocking, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a != ms(9) {
		t.Fatalf("allowance with b3=6 is %v, want 9ms", a)
	}
}

func TestMaxBlockingTolerance(t *testing.T) {
	s := table2()
	// With the full allowance (11) granted, τ3's bound is exactly
	// tight (3·40 = 120): zero blocking tolerance remains.
	b, err := MaxBlockingTolerance(s, ms(11), 0)
	if err != nil {
		t.Fatal(err)
	}
	if b != 0 {
		t.Fatalf("blocking tolerance at full allowance = %v, want 0", b)
	}
	// With no allowance granted, τ3 has 120−87 = 33 of slack.
	b, err = MaxBlockingTolerance(s, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if b != ms(33) {
		t.Fatalf("blocking tolerance with no allowance = %v, want 33ms", b)
	}
	// Halfway: A = 5 → τ3 at 3·34 = 102, slack 18.
	b, err = MaxBlockingTolerance(s, ms(5), 0)
	if err != nil {
		t.Fatal(err)
	}
	if b != ms(18) {
		t.Fatalf("blocking tolerance at A=5 = %v, want 18ms", b)
	}
}

func TestSweepBlocking(t *testing.T) {
	s := table2()
	tab, err := SweepBlocking(s, ms(40), ms(10), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Blocking) != 5 {
		t.Fatalf("points = %d, want 5", len(tab.Blocking))
	}
	// Allowance decreases monotonically and hits the -1 sentinel
	// once blocking alone breaks feasibility (b=40 > 33 slack).
	for i := 1; i < len(tab.Allowance); i++ {
		prev, cur := tab.Allowance[i-1], tab.Allowance[i]
		if prev >= 0 && cur >= 0 && cur > prev {
			t.Fatalf("allowance grew with blocking: %v -> %v", prev, cur)
		}
	}
	if tab.Allowance[0] != ms(11) {
		t.Errorf("b=0 allowance = %v, want 11ms", tab.Allowance[0])
	}
	last := tab.Allowance[len(tab.Allowance)-1]
	if last != -1 {
		t.Errorf("b=40ms must be infeasible (sentinel -1), got %v", last)
	}
}

func TestCeilingBlockingDerivation(t *testing.T) {
	s := table2()
	cs := []vtime.Duration{ms(2), ms(7), ms(4)}
	b, err := analysis.CeilingBlocking(s, cs)
	if err != nil {
		t.Fatal(err)
	}
	// τ1 blocked by the longest lower section (max of 7, 4) = 7;
	// τ2 by τ3's 4; τ3 by nobody.
	want := []vtime.Duration{ms(7), ms(4), 0}
	for i := range want {
		if b[i] != want[i] {
			t.Errorf("b[%d] = %v, want %v", i, b[i], want[i])
		}
	}
	if _, err := analysis.CeilingBlocking(s, cs[:1]); err == nil {
		t.Error("length mismatch must error")
	}
}

func TestResponseTimesWithBlocking(t *testing.T) {
	s := table2()
	wcrt, err := analysis.ResponseTimesWithBlocking(s, []vtime.Duration{ms(10), 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if wcrt[0] != ms(39) || wcrt[1] != ms(58) || wcrt[2] != ms(87) {
		t.Fatalf("WCRTs with b1=10: %v", wcrt)
	}
	if _, err := analysis.ResponseTimesWithBlocking(s, []vtime.Duration{ms(1)}); err == nil {
		t.Error("length mismatch must error")
	}
	ok, err := analysis.FeasibleWithBlocking(s, []vtime.Duration{0, 0, ms(33)})
	if err != nil || !ok {
		t.Errorf("b3=33 exactly fills τ3's slack: feasible, got %v %v", ok, err)
	}
	ok, err = analysis.FeasibleWithBlocking(s, []vtime.Duration{0, 0, ms(34)})
	if err != nil || ok {
		t.Errorf("b3=34 must be infeasible, got %v %v", ok, err)
	}
}
