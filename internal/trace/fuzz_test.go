package trace

import (
	"testing"
)

// FuzzDecode fuzzes the log parser with arbitrary text: it must never
// panic, and whatever it accepts must re-encode canonically — i.e.
// encode(decode(s)) is a fixpoint: decoding it again succeeds and
// yields identical bytes. This is the property that lets a spilled
// trace be re-read and re-spilled indefinitely without drift.
func FuzzDecode(f *testing.F) {
	f.Add("t=0 release tau1 0\nt=2 end tau1 0\n")
	f.Add("t=5 grant tau1 2 arg=120\n")
	f.Add("# comment\n\nt=0 detector - -1\n")
	f.Add("t=abc end tau1 0\n")
	f.Add("t=-3 begin a 0\nt=9223372036854775807 miss b 1\n")
	f.Fuzz(func(t *testing.T, s string) {
		l, err := DecodeString(s)
		if err != nil {
			return // rejection is fine; panics are not
		}
		canon := l.EncodeString()
		back, err := DecodeString(canon)
		if err != nil {
			t.Fatalf("canonical encoding rejected: %v\ninput: %q\ncanonical: %q", err, s, canon)
		}
		if re := back.EncodeString(); re != canon {
			t.Fatalf("encode/decode not a fixpoint:\nfirst:  %q\nsecond: %q", canon, re)
		}
	})
}
