// Package trace records the key dates in the system life, exactly the
// data the paper's measurement tools collect (§5): the beginning and
// end of each job, detector releases, plus the scheduling detail the
// charts draw (starts, preemptions, resumptions, stops, deadline
// misses). Events carry nanosecond virtual timestamps. Like the
// paper's StringBuffer discipline, the recorder appends to a
// preallocated in-memory buffer during the run and is encoded to a
// log file only afterwards, so recording cannot perturb the system.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/vtime"
)

// Kind enumerates trace event kinds.
type Kind uint8

// Event kinds. JobBegin/JobEnd correspond to the paper's
// computeBeforePeriodic()/computeAfterPeriodic() instants;
// DetectorRelease is the release of a detector; the rest are
// scheduler-level detail.
const (
	// JobRelease: a job became eligible (period boundary).
	JobRelease Kind = iota
	// JobBegin: the job's first dispatch (computeBeforePeriodic).
	JobBegin
	// JobPreempt: the running job was preempted.
	JobPreempt
	// JobResume: a preempted job was dispatched again.
	JobResume
	// JobEnd: the job completed its work (computeAfterPeriodic).
	JobEnd
	// DeadlineMiss: the job's absolute deadline passed unfinished.
	DeadlineMiss
	// DetectorRelease: a detector timer fired and checked the job.
	DetectorRelease
	// FaultDetected: the detector found the job unfinished.
	FaultDetected
	// StopRequest: a treatment asked the task to stop.
	StopRequest
	// JobStopped: the job observed the stop flag and terminated
	// without completing its work.
	JobStopped
	// AllowanceGrant: the system-allowance treatment granted extra
	// time to a faulty task (Arg = grant in ns).
	AllowanceGrant
	// TaskAdded: dynamic admission added a task at runtime.
	TaskAdded
	// TaskRemoved: dynamic admission removed a task at runtime.
	TaskRemoved
	// JobMigrate: a preempted job was dispatched again on a
	// different core than it last ran on (Arg = new core). Global
	// multiprocessor dispatch only; never emitted at cpus=1 or under
	// partitioned placement.
	JobMigrate
)

var kindNames = [...]string{
	JobRelease:      "release",
	JobBegin:        "begin",
	JobPreempt:      "preempt",
	JobResume:       "resume",
	JobEnd:          "end",
	DeadlineMiss:    "miss",
	DetectorRelease: "detector",
	FaultDetected:   "fault",
	StopRequest:     "stopreq",
	JobStopped:      "stopped",
	AllowanceGrant:  "grant",
	TaskAdded:       "addtask",
	TaskRemoved:     "rmtask",
	JobMigrate:      "migrate",
}

// String names the kind as used in the log format.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", k)
}

// parseKind inverts String.
func parseKind(s string) (Kind, error) {
	for k, name := range kindNames {
		if name == s {
			return Kind(k), nil
		}
	}
	return 0, fmt.Errorf("trace: unknown event kind %q", s)
}

// Event is one timestamped occurrence.
type Event struct {
	// At is the virtual instant of the event.
	At vtime.Time
	// Kind classifies the event.
	Kind Kind
	// Task names the task concerned ("" for system-wide events).
	Task string
	// Job is the 0-based job index within the task (-1 if n/a).
	Job int64
	// Arg carries event-specific data: for AllowanceGrant the grant
	// duration in ns, for StopRequest the scheduled stop instant,
	// and for JobBegin/JobResume/JobPreempt/JobMigrate the core the
	// job (is/was) running on. Core 0 encodes as an absent arg, so
	// single-processor traces are byte-identical to the pre-M-core
	// format.
	Arg int64
}

// Sink consumes trace events as they are recorded. The in-memory Log
// is the retaining sink; WriterSink streams the text encoding without
// retention; metrics.Accumulator summarizes without retention. Sinks
// are driven from the single-threaded engine loop and need not be
// safe for concurrent use.
type Sink interface {
	Append(Event)
}

// Discard is the sink that drops every event — the bounded-memory
// choice when neither the log nor an encoded spill is wanted.
var Discard Sink = discard{}

type discard struct{}

func (discard) Append(Event) {}

// Tee fans every event out to each sink in order. Nil entries are
// skipped, so callers can pass optional sinks unconditionally.
func Tee(sinks ...Sink) Sink {
	var active multiSink
	for _, s := range sinks {
		if s != nil {
			active = append(active, s)
		}
	}
	if len(active) == 1 {
		return active[0]
	}
	return active
}

type multiSink []Sink

func (m multiSink) Append(e Event) {
	for _, s := range m {
		s.Append(e)
	}
}

// WriterSink encodes events to w as they arrive, in exactly the
// format Log.Encode produces, so a spilled trace is byte-identical to
// a retained log of the same events. Writes are buffered; call Flush
// once the run is over. The first write error is latched and returned
// by Flush — later Appends are dropped.
type WriterSink struct {
	bw  *bufio.Writer
	err error
}

// NewWriterSink returns a sink streaming the text encoding to w.
func NewWriterSink(w io.Writer) *WriterSink {
	return &WriterSink{bw: bufio.NewWriter(w)}
}

// Append encodes one event.
func (s *WriterSink) Append(e Event) {
	if s.err == nil {
		s.err = writeEvent(s.bw, e)
	}
}

// Flush drains the buffer and reports the first error seen.
func (s *WriterSink) Flush() error {
	if s.err != nil {
		return s.err
	}
	return s.bw.Flush()
}

// Log is an append-only sequence of events ordered by record time. It
// implements Sink.
type Log struct {
	events []Event
}

// NewLog returns a Log preallocated for n events, mirroring the
// paper's preallocated StringBuffer fields (§5): appends during a run
// should not allocate.
func NewLog(n int) *Log {
	return &Log{events: make([]Event, 0, n)}
}

// Append records an event.
func (l *Log) Append(e Event) { l.events = append(l.events, e) }

// Events returns the recorded events in record order. The slice is
// the log's backing store; callers must not mutate it.
func (l *Log) Events() []Event { return l.events }

// Len returns the number of recorded events.
func (l *Log) Len() int { return len(l.events) }

// Filter returns the events satisfying keep, preserving order.
func (l *Log) Filter(keep func(Event) bool) []Event {
	var out []Event
	for _, e := range l.events {
		if keep(e) {
			out = append(out, e)
		}
	}
	return out
}

// TaskEvents returns the events of one task, preserving order.
func (l *Log) TaskEvents(task string) []Event {
	return l.Filter(func(e Event) bool { return e.Task == task })
}

// Window returns the events with from ≤ At < to, preserving order.
func (l *Log) Window(from, to vtime.Time) []Event {
	return l.Filter(func(e Event) bool { return !e.At.Before(from) && e.At.Before(to) })
}

// Tasks returns the sorted set of task names appearing in the log.
func (l *Log) Tasks() []string {
	seen := map[string]bool{}
	for _, e := range l.events {
		if e.Task != "" {
			seen[e.Task] = true
		}
	}
	out := make([]string, 0, len(seen))
	for t := range seen {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// Encode writes the log in the text format parsed by Decode:
// one event per line, "t=<ns> <kind> <task> <job> [arg=<int>]".
func (l *Log) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, e := range l.events {
		if err := writeEvent(bw, e); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// writeEvent emits one line of the text format — the single encoder
// behind Log.Encode and WriterSink, so retained and streamed traces
// are byte-identical.
func writeEvent(bw *bufio.Writer, e Event) error {
	task := e.Task
	if task == "" {
		task = "-"
	}
	if _, err := fmt.Fprintf(bw, "t=%d %s %s %d", int64(e.At), e.Kind, task, e.Job); err != nil {
		return err
	}
	if e.Arg != 0 {
		if _, err := fmt.Fprintf(bw, " arg=%d", e.Arg); err != nil {
			return err
		}
	}
	return bw.WriteByte('\n')
}

// EncodeString returns the text encoding of the log.
func (l *Log) EncodeString() string {
	var b strings.Builder
	// Strings.Builder writes cannot fail.
	_ = l.Encode(&b)
	return b.String()
}

// Decode parses a log in the Encode format.
func Decode(r io.Reader) (*Log, error) {
	l := NewLog(256)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			return nil, fmt.Errorf("trace: line %d: want at least 4 fields, got %q", lineno, line)
		}
		tsStr, ok := strings.CutPrefix(fields[0], "t=")
		if !ok {
			return nil, fmt.Errorf("trace: line %d: missing t= timestamp", lineno)
		}
		ts, err := strconv.ParseInt(tsStr, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad timestamp: %v", lineno, err)
		}
		kind, err := parseKind(fields[1])
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %v", lineno, err)
		}
		task := fields[2]
		if task == "-" {
			task = ""
		}
		job, err := strconv.ParseInt(fields[3], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad job index: %v", lineno, err)
		}
		e := Event{At: vtime.Time(ts), Kind: kind, Task: task, Job: job}
		for _, f := range fields[4:] {
			if v, ok := strings.CutPrefix(f, "arg="); ok {
				e.Arg, err = strconv.ParseInt(v, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("trace: line %d: bad arg: %v", lineno, err)
				}
			} else {
				return nil, fmt.Errorf("trace: line %d: unknown field %q", lineno, f)
			}
		}
		l.Append(e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: reading log: %v", err)
	}
	return l, nil
}

// DecodeString parses an in-memory log.
func DecodeString(s string) (*Log, error) { return Decode(strings.NewReader(s)) }
