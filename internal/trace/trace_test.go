package trace

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/vtime"
)

func ev(atMS int64, k Kind, task string, job int64) Event {
	return Event{At: vtime.AtMillis(atMS), Kind: k, Task: task, Job: job}
}

func sample() *Log {
	l := NewLog(16)
	l.Append(ev(0, JobRelease, "tau1", 0))
	l.Append(ev(0, JobBegin, "tau1", 0))
	l.Append(ev(29, JobEnd, "tau1", 0))
	l.Append(ev(30, DetectorRelease, "tau1", 0))
	l.Append(ev(1000, JobRelease, "tau3", 0))
	l.Append(ev(1120, DeadlineMiss, "tau3", 0))
	l.Append(Event{At: vtime.AtMillis(1030), Kind: AllowanceGrant, Task: "tau1", Job: 5, Arg: 33_000_000})
	l.Append(Event{At: vtime.AtMillis(2000), Kind: TaskAdded, Task: "dyn", Job: -1})
	return l
}

func TestAppendAndAccessors(t *testing.T) {
	l := sample()
	if l.Len() != 8 {
		t.Fatalf("Len = %d, want 8", l.Len())
	}
	if len(l.Events()) != l.Len() {
		t.Fatal("Events length mismatch")
	}
}

func TestFilterWindowTaskEvents(t *testing.T) {
	l := sample()
	if n := len(l.TaskEvents("tau1")); n != 5 {
		t.Errorf("tau1 events = %d, want 5", n)
	}
	w := l.Window(vtime.AtMillis(1000), vtime.AtMillis(1200))
	if len(w) != 3 {
		t.Errorf("window events = %d, want 3 (release, miss, grant)", len(w))
	}
	misses := l.Filter(func(e Event) bool { return e.Kind == DeadlineMiss })
	if len(misses) != 1 || misses[0].Task != "tau3" {
		t.Errorf("misses = %+v", misses)
	}
}

func TestTasksSorted(t *testing.T) {
	got := sample().Tasks()
	want := []string{"dyn", "tau1", "tau3"}
	if len(got) != len(want) {
		t.Fatalf("Tasks = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Tasks = %v, want %v", got, want)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	l := sample()
	text := l.EncodeString()
	back, err := DecodeString(text)
	if err != nil {
		t.Fatalf("decode: %v\n%s", err, text)
	}
	if back.Len() != l.Len() {
		t.Fatalf("round trip lost events: %d vs %d", back.Len(), l.Len())
	}
	for i, e := range l.Events() {
		if back.Events()[i] != e {
			t.Errorf("event %d mismatch: %+v vs %+v", i, e, back.Events()[i])
		}
	}
}

func TestDecodeToleratesCommentsAndBlankLines(t *testing.T) {
	text := "# a comment\n\nt=1000000 release tau1 0\n"
	l, err := DecodeString(text)
	if err != nil || l.Len() != 1 {
		t.Fatalf("decode: %v, len %d", err, l.Len())
	}
	e := l.Events()[0]
	if e.At != vtime.AtMillis(1) || e.Kind != JobRelease || e.Task != "tau1" {
		t.Errorf("decoded %+v", e)
	}
}

func TestDecodeSystemEvents(t *testing.T) {
	// "-" denotes the empty task name.
	l, err := DecodeString("t=5 addtask - -1\n")
	if err != nil {
		t.Fatal(err)
	}
	if l.Events()[0].Task != "" || l.Events()[0].Job != -1 {
		t.Errorf("decoded %+v", l.Events()[0])
	}
}

func TestDecodeErrors(t *testing.T) {
	bad := []string{
		"t=1 release tau1",          // missing job
		"x=1 release tau1 0",        // missing t=
		"t=abc release tau1 0",      // bad timestamp
		"t=1 explode tau1 0",        // unknown kind
		"t=1 release tau1 zero",     // bad job
		"t=1 release tau1 0 arg=z",  // bad arg
		"t=1 release tau1 0 zork=1", // unknown field
	}
	for _, s := range bad {
		if _, err := DecodeString(s); err == nil {
			t.Errorf("expected decode error for %q", s)
		}
	}
}

func TestKindStrings(t *testing.T) {
	for k := JobRelease; k <= TaskRemoved; k++ {
		s := k.String()
		if s == "" || strings.HasPrefix(s, "kind(") {
			t.Errorf("kind %d has no name", k)
		}
		back, err := parseKind(s)
		if err != nil || back != k {
			t.Errorf("parseKind(%q) = %v, %v", s, back, err)
		}
	}
	if Kind(200).String() == "" {
		t.Error("out-of-range kind must still render")
	}
}

// Property: encode/decode round-trips arbitrary events.
func TestQuickRoundTrip(t *testing.T) {
	f := func(atNS int64, kindRaw uint8, job int64, arg int64) bool {
		if atNS < 0 {
			atNS = -atNS
		}
		k := Kind(kindRaw % 13)
		l := NewLog(1)
		l.Append(Event{At: vtime.Time(atNS), Kind: k, Task: "t", Job: job, Arg: arg})
		back, err := DecodeString(l.EncodeString())
		if err != nil || back.Len() != 1 {
			return false
		}
		return back.Events()[0] == l.Events()[0]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestAppendDoesNotAllocateWithinCapacity(t *testing.T) {
	l := NewLog(1000)
	allocs := testing.AllocsPerRun(100, func() {
		if l.Len() >= 900 {
			l.events = l.events[:0]
		}
		l.Append(Event{At: 1, Kind: JobBegin, Task: "x"})
	})
	if allocs > 0 {
		t.Errorf("Append allocates %.1f per call within capacity; the §5 recording discipline requires none", allocs)
	}
}
