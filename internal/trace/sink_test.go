package trace

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/vtime"
)

func sinkEvents() []Event {
	return []Event{
		{At: 0, Kind: JobRelease, Task: "tau1", Job: 0},
		{At: vtime.AtMillis(2), Kind: JobBegin, Task: "tau1", Job: 0},
		{At: vtime.AtMillis(5), Kind: AllowanceGrant, Task: "tau1", Job: 0, Arg: 11},
		{At: vtime.AtMillis(9), Kind: JobEnd, Task: "tau1", Job: 0},
		{At: vtime.AtMillis(9), Kind: TaskAdded, Task: "", Job: -1},
	}
}

// TestWriterSinkMatchesLogEncode: streaming the events through a
// WriterSink must produce byte-identical output to encoding a
// retained log of the same events.
func TestWriterSinkMatchesLogEncode(t *testing.T) {
	l := NewLog(8)
	var streamed strings.Builder
	ws := NewWriterSink(&streamed)
	for _, e := range sinkEvents() {
		l.Append(e)
		ws.Append(e)
	}
	if err := ws.Flush(); err != nil {
		t.Fatal(err)
	}
	if streamed.String() != l.EncodeString() {
		t.Errorf("streamed bytes differ from Log.Encode:\n--- stream ---\n%s--- log ---\n%s",
			streamed.String(), l.EncodeString())
	}
	// And the streamed form must round-trip through Decode.
	back, err := DecodeString(streamed.String())
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != len(sinkEvents()) {
		t.Errorf("round trip lost events: %d of %d", back.Len(), len(sinkEvents()))
	}
}

type failWriter struct{ n int }

func (w *failWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, errors.New("disk full")
	}
	if len(p) > w.n {
		p = p[:w.n]
	}
	w.n -= len(p)
	return len(p), nil
}

// TestWriterSinkLatchesError: the first write failure surfaces from
// Flush; later appends are dropped rather than panicking.
func TestWriterSinkLatchesError(t *testing.T) {
	ws := NewWriterSink(&failWriter{n: 4})
	// Overflow the 4-byte capacity through the bufio layer.
	for i := 0; i < 10000; i++ {
		ws.Append(Event{At: vtime.AtMillis(int64(i)), Kind: JobRelease, Task: "t", Job: int64(i)})
	}
	if err := ws.Flush(); err == nil {
		t.Fatal("Flush must report the write error")
	}
}

// TestTee fans out to every sink, skips nils, and collapses to the
// single non-nil sink when there is only one.
func TestTee(t *testing.T) {
	a, b := NewLog(4), NewLog(4)
	tee := Tee(a, nil, b)
	ev := Event{At: 1, Kind: JobRelease, Task: "x", Job: 0}
	tee.Append(ev)
	if a.Len() != 1 || b.Len() != 1 {
		t.Errorf("tee delivered %d/%d events, want 1/1", a.Len(), b.Len())
	}
	if got := Tee(nil, a, nil); got != Sink(a) {
		t.Error("Tee with one live sink must return it directly")
	}
	Discard.Append(ev) // must not panic and retains nothing
}
