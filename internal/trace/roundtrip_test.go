package trace

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/taskset"
	"repro/internal/vtime"
)

// randomLog derives a random but encodable event sequence: valid
// kinds, whitespace-free task names (the engine's vocabulary),
// non-negative job indices with the occasional -1 system event, and
// non-decreasing timestamps, as the engine records them.
func randomLog(seed uint64, n int) *Log {
	r := taskset.NewRand(seed)
	tasks := []string{"tau1", "tau2", "t3", "server", ""}
	l := NewLog(n)
	at := vtime.Time(0)
	for i := 0; i < n; i++ {
		at = at.Add(vtime.Duration(r.Intn(3_000_000))) // 0..3 ms steps
		e := Event{
			At:   at,
			Kind: Kind(r.Intn(len(kindNames))),
			Task: tasks[r.Intn(len(tasks))],
			Job:  int64(r.Intn(100)),
		}
		if e.Task == "" {
			e.Job = -1
		}
		if r.Intn(4) == 0 {
			e.Arg = int64(r.Uint64() % 1_000_000)
		}
		l.Append(e)
	}
	return l
}

// TestDecodeRoundTripProperty: for seeded random event sequences,
// encode → decode reproduces the events exactly and re-encoding is
// byte-identical — Decode∘Encode is the identity on encoder output.
func TestDecodeRoundTripProperty(t *testing.T) {
	for seed := uint64(1); seed <= 50; seed++ {
		l := randomLog(seed, 200)
		enc := l.EncodeString()
		back, err := DecodeString(enc)
		if err != nil {
			t.Fatalf("seed %d: decode of encoder output failed: %v", seed, err)
		}
		if back.Len() != l.Len() {
			t.Fatalf("seed %d: %d events decoded, want %d", seed, back.Len(), l.Len())
		}
		for i, e := range back.Events() {
			if e != l.Events()[i] {
				t.Fatalf("seed %d: event %d decoded as %+v, want %+v", seed, i, e, l.Events()[i])
			}
		}
		if re := back.EncodeString(); re != enc {
			t.Fatalf("seed %d: re-encode differs from original encoding", seed)
		}
	}
}

// TestDecodeMalformedPositional: malformed input is rejected with the
// line number in the error, so a corrupt multi-megabyte log names the
// offending line instead of just failing.
func TestDecodeMalformedPositional(t *testing.T) {
	valid := "t=0 release tau1 0\nt=1 begin tau1 0\n"
	cases := []struct {
		name string
		line string // appended as line 3
		want string // substring of the expected error
	}{
		{"too-few-fields", "t=2 end tau1", "line 3"},
		{"missing-timestamp", "2 end tau1 0", "line 3: missing t="},
		{"bad-timestamp", "t=abc end tau1 0", "line 3: bad timestamp"},
		{"unknown-kind", "t=2 explode tau1 0", "unknown event kind \"explode\""},
		{"bad-job", "t=2 end tau1 x", "line 3: bad job index"},
		{"bad-arg", "t=2 grant tau1 0 arg=z", "line 3: bad arg"},
		{"unknown-field", "t=2 end tau1 0 blah=1", "line 3: unknown field"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := DecodeString(valid + tc.line + "\n")
			if err == nil {
				t.Fatalf("malformed line %q decoded without error", tc.line)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

// TestDecodeSkipsBlankAndComments: the tolerated non-event lines do
// not shift the reported line numbers of later errors.
func TestDecodeSkipsBlankAndComments(t *testing.T) {
	in := "# a comment\n\nt=0 release tau1 0\n# another\nt=zzz end tau1 0\n"
	_, err := DecodeString(in)
	if err == nil || !strings.Contains(err.Error(), "line 5") {
		t.Fatalf("want a line 5 error, got %v", err)
	}
}

// TestDecodeArgZeroCanonicalizes: an explicit arg=0 decodes fine and
// re-encodes without the redundant field (the canonical form).
func TestDecodeArgZeroCanonicalizes(t *testing.T) {
	l, err := DecodeString("t=5 grant tau1 2 arg=0\n")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := l.EncodeString(), "t=5 grant tau1 2\n"; got != want {
		t.Fatalf("re-encoded %q, want %q", got, want)
	}
}

// TestEncodeUnknownKindDoesNotRoundTrip documents the encoder edge: a
// Kind outside the vocabulary renders as kind(N), which Decode
// rejects — it cannot silently round-trip as a different event.
func TestEncodeUnknownKindDoesNotRoundTrip(t *testing.T) {
	l := NewLog(1)
	l.Append(Event{At: 1, Kind: Kind(200), Task: "x", Job: 0})
	if _, err := DecodeString(l.EncodeString()); err == nil ||
		!strings.Contains(err.Error(), fmt.Sprintf("kind(%d)", 200)) {
		t.Fatalf("want an unknown-kind error naming kind(200), got %v", err)
	}
}
