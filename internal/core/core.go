// Package core is the library facade of the reproduction: it wires
// admission control (package analysis), the allowance computation
// (package allowance), the simulated real-time platform (package
// engine) and the fault detectors and treatments (package detect)
// into a single System that mirrors the paper's workflow — parse the
// tasks, run admission control, start the system with detectors, and
// collect the time-series log.
package core

import (
	"fmt"

	"repro/internal/allowance"
	"repro/internal/analysis"
	"repro/internal/detect"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/taskset"
	"repro/internal/trace"
	"repro/internal/verify"
	"repro/internal/vtime"
)

// Config assembles a fault-tolerant real-time system run.
type Config struct {
	// Tasks is the periodic task system.
	Tasks *taskset.Set
	// Treatment selects the paper's fault response (§4); the zero
	// value is NoDetection (Figure 3).
	Treatment detect.Treatment
	// Faults injects cost overruns per task (nil = fault free).
	Faults fault.Plan
	// Horizon is the simulated duration (must be positive).
	Horizon vtime.Duration
	// TimerResolution quantizes detector releases (0 = exact;
	// detect.DefaultTimerResolution reproduces jRate's 10 ms).
	TimerResolution vtime.Duration
	// StopPoll is the stop-flag poll granularity (§4.1; 0 = 1 ms).
	StopPoll vtime.Duration
	// StopJitterMax bounds the unbounded-cost poll jitter (§4.1).
	StopJitterMax vtime.Duration
	// Seed drives all randomness (stop jitter).
	Seed uint64
	// ContextSwitch charges a dispatch-switch overhead.
	ContextSwitch vtime.Duration
	// Policy orders ready jobs; nil means the paper's preemptive
	// fixed-priority scheduler. Non-default policies only combine
	// with NoDetection: the detectors' WCRT arming presupposes
	// fixed-priority response-time analysis.
	Policy engine.Policy
	// Collect selects run-data retention: engine.Retain (default)
	// keeps the full log and job history; engine.Stream bounds memory
	// for long horizons — the Report comes from a streaming
	// metrics.Accumulator and Result.Log stays empty.
	Collect engine.Collect
	// TraceSink, when non-nil, receives every trace event as it is
	// recorded: alongside the log under Retain, instead of it under
	// Stream (spill-to-disk via trace.NewWriterSink; the caller
	// flushes after Run).
	TraceSink trace.Sink
	// FastForward enables the engine's steady-state cycle detection:
	// once two consecutive hyperperiod boundaries fingerprint equal,
	// the remaining whole cycles are extrapolated analytically and only
	// the tail is simulated (engine/fastforward.go). Requires Stream
	// collection and NoDetection treatment, and excludes faults, stop
	// jitter, TraceSink and Verify — everything that would either break
	// periodicity or observe the event hole the jump leaves.
	FastForward bool
	// Verify enables the online invariant oracle (package verify):
	// every trace event is checked against the scheduling axioms as
	// it is recorded — in Retain and Stream collection alike — and
	// Run fails with a wrapped *verify.Error on any violation.
	Verify bool
	// VerifyServerBudgets optionally maps polling-server task names
	// to their per-job capacity for the oracle's budget axiom (the
	// sim facade fills it; core itself has no server notion). Only
	// meaningful with Verify.
	VerifyServerBudgets map[string]vtime.Duration
}

// Result is the outcome of a run.
type Result struct {
	// Log is the recorded time series (the paper's log file).
	Log *trace.Log
	// Report summarizes jobs and tasks from the log.
	Report *metrics.Report
	// Admission is the pre-run feasibility report.
	Admission *analysis.Report
	// Allowance is the tolerance analysis (nil with NoDetection and
	// an infeasible-for-allowance system).
	Allowance *allowance.Table
	// Detections counts detector-flagged faults.
	Detections int64
	// Switches counts dispatch switches (overhead sweeps).
	Switches int64
	// SkippedCycles counts the hyperperiod cycles fast-forward
	// extrapolated instead of simulating (zero unless
	// Config.FastForward engaged).
	SkippedCycles int64
}

// System is a configured, not-yet-run reproduction instance.
type System struct {
	cfg Config
	sup *detect.Supervisor
	adm *analysis.Report
}

// NewSystem validates the configuration and performs the paper's
// admission control. It fails when the declared system is not
// theoretically feasible — the paper's detectors presuppose an
// admitted system whose WCRTs exist.
func NewSystem(cfg Config) (*System, error) {
	if cfg.Tasks == nil {
		return nil, fmt.Errorf("core: no tasks configured")
	}
	if cfg.Horizon <= 0 {
		return nil, fmt.Errorf("core: horizon must be positive")
	}
	if cfg.Policy != nil && cfg.Policy.Name() != (engine.FixedPriority{}).Name() &&
		cfg.Treatment != detect.NoDetection {
		return nil, fmt.Errorf("core: policy %q cannot combine with treatment %v: detectors presuppose fixed-priority analysis", cfg.Policy.Name(), cfg.Treatment)
	}
	if cfg.FastForward {
		if err := fastForwardable(cfg); err != nil {
			return nil, err
		}
	}
	adm, err := analysis.Feasible(cfg.Tasks)
	if err != nil {
		return nil, err
	}
	if !adm.Feasible {
		return nil, fmt.Errorf("core: admission control rejects the system (misses: %v)", adm.Misses)
	}
	sup, err := detect.NewSupervisor(cfg.Tasks, detect.Config{
		Treatment:       cfg.Treatment,
		TimerResolution: cfg.TimerResolution,
	})
	if err != nil {
		return nil, err
	}
	return &System{cfg: cfg, sup: sup}, nil
}

// fastForwardable rejects configurations the steady-state fast-forward
// cannot serve: detector treatments hold re-arming timers that poison
// every hyperperiod boundary, Retain collection retains what the jump
// skips, faults and stop jitter break periodicity, and TraceSink /
// Verify observe the event stream directly — the extrapolated cycles
// emit no events, so either would see a hole.
func fastForwardable(cfg Config) error {
	if cfg.Treatment != detect.NoDetection {
		return fmt.Errorf("core: fast-forward requires treatment %v (detector timers re-arm every period, suppressing cycle detection), have %v", detect.NoDetection, cfg.Treatment)
	}
	if cfg.Collect != engine.Stream {
		return fmt.Errorf("core: fast-forward requires Stream collection")
	}
	if len(cfg.Faults) > 0 {
		return fmt.Errorf("core: fast-forward cannot combine with a fault plan")
	}
	if cfg.StopJitterMax > 0 {
		return fmt.Errorf("core: fast-forward cannot combine with stop jitter")
	}
	if cfg.TraceSink != nil {
		return fmt.Errorf("core: fast-forward cannot combine with a trace sink (extrapolated cycles emit no events)")
	}
	if cfg.Verify {
		return fmt.Errorf("core: fast-forward cannot combine with the online oracle (extrapolated cycles emit no events to check)")
	}
	return nil
}

// policyName resolves the configured policy's registry name (nil
// means the default fixed-priority scheduler).
func (s *System) policyName() string {
	if s.cfg.Policy == nil {
		return engine.FixedPriority{}.Name()
	}
	return s.cfg.Policy.Name()
}

// Admission returns the pre-run feasibility report.
func (s *System) Admission() *analysis.Report {
	if s.adm == nil {
		s.adm, _ = analysis.Feasible(s.cfg.Tasks)
	}
	return s.adm
}

// Allowance returns the tolerance table backing the treatments.
func (s *System) Allowance() *allowance.Table { return s.sup.Table() }

// Supervisor exposes the detector supervisor (for dynamic admission).
func (s *System) Supervisor() *detect.Supervisor { return s.sup }

// Run simulates the system to the horizon and returns the result.
// Run may be called once per System; build a fresh System to re-run.
func (s *System) Run() (*Result, error) {
	return s.RunWith(nil)
}

// RunWith exposes the engine to a caller-driven scenario (dynamic
// admission examples): setup runs after detectors are attached and
// may schedule events on the engine before it starts.
func (s *System) RunWith(setup func(e *engine.Engine, sup *detect.Supervisor)) (*Result, error) {
	p, err := s.prepare(setup)
	if err != nil {
		return nil, err
	}
	log := p.eng.Run()
	return s.finish(p, log)
}

// prepared is a wired-but-not-yet-run instance: the engine with its
// sink chain (accumulator, oracle, spill) assembled and the
// supervisor attached.
type prepared struct {
	eng *engine.Engine
	acc *metrics.Accumulator
	chk *verify.Checker
}

// prepare assembles the sink chain and the engine — everything RunWith
// does before eng.Run(). Split out so the checkpoint entry points
// (RunToCheckpoint, RunFrom) reuse the exact wiring of a plain run.
func (s *System) prepare(setup func(e *engine.Engine, sup *detect.Supervisor)) (*prepared, error) {
	var acc *metrics.Accumulator
	sink := s.cfg.TraceSink
	if s.cfg.Collect == engine.Stream {
		// Streaming: the accumulator summarizes the event stream in
		// place of the post-hoc Analyze; the optional TraceSink sees
		// the same events (Tee skips it when nil).
		acc = metrics.NewAccumulator()
		sink = trace.Tee(acc, sink)
	}
	var obs engine.CycleObserver
	if s.cfg.FastForward {
		// The accumulator doubles as the cycle observer so the metrics
		// stay exact across the analytic jump.
		obs = acc
	}
	// Oracle arming for admitted systems; the bare-engine twin (no
	// supervisor, hence no detector offsets) lives in sim.System.Run's
	// SkipAdmission branch — change both together.
	var chk *verify.Checker
	if s.cfg.Verify {
		vcfg := verify.Config{
			Tasks:         s.cfg.Tasks,
			Policy:        s.policyName(),
			ServerBudgets: s.cfg.VerifyServerBudgets,
			ContextSwitch: s.cfg.ContextSwitch,
			Horizon:       vtime.Time(s.cfg.Horizon),
		}
		if s.cfg.Treatment != detect.NoDetection {
			// The oracle checks detector fires against the same
			// latest-detection bounds the supervisor armed.
			offs := make(map[string]vtime.Duration, s.cfg.Tasks.Len())
			for _, t := range s.cfg.Tasks.Tasks {
				if off, ok := s.sup.DetectorOffset(t.Name); ok {
					offs[t.Name] = off
				}
			}
			vcfg.DetectorOffsets = offs
		}
		var err error
		chk, err = verify.New(vcfg)
		if err != nil {
			return nil, err
		}
		sink = trace.Tee(chk, sink)
	}
	eng, err := engine.New(engine.Config{
		Tasks:         s.cfg.Tasks,
		Faults:        s.cfg.Faults,
		End:           vtime.Time(s.cfg.Horizon),
		Policy:        s.cfg.Policy,
		StopPoll:      s.cfg.StopPoll,
		StopJitterMax: s.cfg.StopJitterMax,
		Seed:          s.cfg.Seed,
		ContextSwitch: s.cfg.ContextSwitch,
		Collect:       s.cfg.Collect,
		Sink:          sink,
		FastForward:   s.cfg.FastForward,
		Observer:      obs,
		Hooks:         s.sup.Hooks(),
	})
	if err != nil {
		return nil, err
	}
	s.sup.Attach(eng)
	if setup != nil {
		setup(eng, s.sup)
	}
	return &prepared{eng: eng, acc: acc, chk: chk}, nil
}

// finish settles a completed run: oracle verdict, report, result.
func (s *System) finish(p *prepared, log *trace.Log) (*Result, error) {
	if p.chk != nil {
		if verr := p.chk.FinishErr(); verr != nil {
			return nil, fmt.Errorf("core: invariant oracle: %w", verr)
		}
	}
	var rep *metrics.Report
	if p.acc != nil {
		rep = p.acc.Report()
	} else {
		rep = metrics.Analyze(log)
	}
	return &Result{
		Log:           log,
		Report:        rep,
		Admission:     s.Admission(),
		Allowance:     s.sup.Table(),
		Detections:    s.sup.Detections(),
		Switches:      p.eng.Switches(),
		SkippedCycles: p.eng.SkippedCycles(),
	}, nil
}

// CheckpointState pairs the two halves of a mid-run snapshot: the
// engine's scheduling state and the streaming accumulator's metric
// state. Together with the originating Config they are everything a
// resumed run needs; the sim facade wraps them with the scenario into
// a self-contained file format.
type CheckpointState struct {
	Engine  *engine.Checkpoint
	Metrics *metrics.AccumulatorState
}

// checkpointable rejects configurations whose runtime state cannot be
// serialized: detector treatments hold closure-bearing timers, Retain
// collection carries the full log and job history, and the online
// oracle is a mid-stream observer whose verdict would be meaningless
// split across processes (run verify.ForScenario over the concatenated
// spill trace instead).
func (s *System) checkpointable() error {
	if s.cfg.Treatment != detect.NoDetection {
		return fmt.Errorf("core: checkpointing requires treatment %v (detector timers are not serializable), have %v", detect.NoDetection, s.cfg.Treatment)
	}
	if s.cfg.Collect != engine.Stream {
		return fmt.Errorf("core: checkpointing requires Stream collection")
	}
	if s.cfg.Verify {
		return fmt.Errorf("core: checkpointing cannot combine with the online oracle; replay the concatenated trace through verify instead")
	}
	if s.cfg.FastForward {
		return fmt.Errorf("core: checkpointing cannot combine with fast-forward (the jump skips the boundary instants a snapshot would capture)")
	}
	return nil
}

// RunToCheckpoint simulates the system up to instant at (exclusive of
// later events), then snapshots it. Events strictly before or at `at`
// have fired; the partial trace reaches cfg.TraceSink; the returned
// state resumes with RunFrom on a fresh System built from the same
// Config. Like Run, it consumes the System.
func (s *System) RunToCheckpoint(at vtime.Duration) (*CheckpointState, error) {
	if err := s.checkpointable(); err != nil {
		return nil, err
	}
	p, err := s.prepare(nil)
	if err != nil {
		return nil, err
	}
	if err := p.eng.RunUntil(vtime.Time(at)); err != nil {
		return nil, err
	}
	ecp, err := p.eng.Snapshot()
	if err != nil {
		return nil, err
	}
	return &CheckpointState{Engine: ecp, Metrics: p.acc.State()}, nil
}

// RunFrom restores a checkpoint into this (not-yet-run) System and
// completes the horizon. The System must be built from the Config that
// produced the checkpoint; the resumed segment's events reach
// cfg.TraceSink, and the returned Report covers the whole run —
// segment one arrives inside the checkpoint's accumulator state.
func (s *System) RunFrom(cp *CheckpointState) (*Result, error) {
	if err := s.checkpointable(); err != nil {
		return nil, err
	}
	if cp == nil || cp.Engine == nil || cp.Metrics == nil {
		return nil, fmt.Errorf("core: RunFrom needs both engine and metrics state")
	}
	p, err := s.prepare(nil)
	if err != nil {
		return nil, err
	}
	if err := p.acc.RestoreState(cp.Metrics); err != nil {
		return nil, err
	}
	if err := p.eng.Restore(cp.Engine); err != nil {
		return nil, err
	}
	log := p.eng.Run()
	return s.finish(p, log)
}
