package core

import (
	"testing"

	"repro/internal/detect"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/taskset"
	"repro/internal/vtime"
)

func ms(v int64) vtime.Duration { return vtime.Millis(v) }

func figureSet() *taskset.Set {
	return taskset.MustNew(
		taskset.Task{Name: "tau1", Priority: 20, Period: ms(200), Deadline: ms(70), Cost: ms(29)},
		taskset.Task{Name: "tau2", Priority: 18, Period: ms(250), Deadline: ms(120), Cost: ms(29)},
		taskset.Task{Name: "tau3", Priority: 16, Period: ms(1500), Deadline: ms(120), Cost: ms(29), Offset: ms(1000)},
	)
}

func TestNewSystemValidation(t *testing.T) {
	if _, err := NewSystem(Config{Horizon: ms(10)}); err == nil {
		t.Error("nil tasks must fail")
	}
	if _, err := NewSystem(Config{Tasks: figureSet()}); err == nil {
		t.Error("zero horizon must fail")
	}
	bad := taskset.MustNew(
		taskset.Task{Name: "a", Priority: 2, Period: ms(10), Deadline: ms(5), Cost: ms(5)},
		taskset.Task{Name: "b", Priority: 1, Period: ms(10), Deadline: ms(6), Cost: ms(5)},
	)
	if _, err := NewSystem(Config{Tasks: bad, Horizon: ms(100)}); err == nil {
		t.Error("infeasible system must be rejected by admission control")
	}
}

func TestRunProducesFullResult(t *testing.T) {
	sys, err := NewSystem(Config{
		Tasks:           figureSet(),
		Treatment:       detect.SystemAllowance,
		Faults:          fault.Plan{"tau1": fault.OverrunAt{Job: 5, Extra: ms(40)}},
		Horizon:         ms(1500),
		TimerResolution: detect.DefaultTimerResolution,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Admission() == nil || !sys.Admission().Feasible {
		t.Fatal("admission report missing")
	}
	if sys.Allowance().Equitable != ms(11) {
		t.Fatalf("allowance = %v, want 11ms", sys.Allowance().Equitable)
	}
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Log.Len() == 0 || res.Report == nil || res.Allowance == nil {
		t.Fatal("result incomplete")
	}
	if res.Detections == 0 {
		t.Error("the injected fault must be detected")
	}
	if res.Switches == 0 {
		t.Error("switches must be counted")
	}
	j, ok := res.Report.Job("tau1", 5)
	if !ok || !j.Stopped || j.End != vtime.AtMillis(1062) {
		t.Errorf("tau1#5 = %+v, want stopped at 1062ms", j)
	}
}

func TestRunWithDynamicSetup(t *testing.T) {
	sys, err := NewSystem(Config{
		Tasks:     figureSet(),
		Treatment: detect.Stop,
		Horizon:   ms(3000),
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.RunWith(func(e *engine.Engine, sup *detect.Supervisor) {
		e.Schedule(vtime.AtMillis(500), func(now vtime.Time) {
			err := sup.AdmitTask(e, taskset.Task{
				Name: "late", Priority: 10, Period: ms(500), Deadline: ms(500), Cost: ms(20),
			})
			if err != nil {
				t.Errorf("AdmitTask: %v", err)
			}
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	s, ok := res.Report.Tasks["late"]
	if !ok || s.Released == 0 {
		t.Fatal("dynamically admitted task never ran")
	}
	if s.Failed != 0 {
		t.Errorf("late task failed %d jobs", s.Failed)
	}
}

func TestSupervisorAccessor(t *testing.T) {
	sys, err := NewSystem(Config{Tasks: figureSet(), Horizon: ms(100)})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Supervisor() == nil {
		t.Fatal("supervisor must be exposed")
	}
}
