package metrics

import (
	"math/rand"
	"testing"

	"repro/internal/trace"
	"repro/internal/vtime"
)

// feed streams every event of the log through a fresh accumulator.
func feed(l *trace.Log) *Accumulator {
	a := NewAccumulator()
	for _, e := range l.Events() {
		a.Append(e)
	}
	return a
}

// diffSummaries fails the test wherever the streaming summaries
// disagree with the Analyze summaries on any exported field.
func diffSummaries(t *testing.T, want, got *Report) {
	t.Helper()
	if len(got.Tasks) != len(want.Tasks) {
		t.Fatalf("task count: got %d, want %d", len(got.Tasks), len(want.Tasks))
	}
	for name, w := range want.Tasks {
		g, ok := got.Tasks[name]
		if !ok {
			t.Errorf("missing task %s", name)
			continue
		}
		if g.Released != w.Released || g.Finished != w.Finished || g.Stopped != w.Stopped ||
			g.Missed != w.Missed || g.Failed != w.Failed || g.Detected != w.Detected {
			t.Errorf("%s counts: got %+v, want %+v", name, g, w)
		}
		if g.MinResponse != w.MinResponse || g.MaxResponse != w.MaxResponse || g.MeanResponse != w.MeanResponse {
			t.Errorf("%s responses: got min=%v max=%v mean=%v, want min=%v max=%v mean=%v",
				name, g.MinResponse, g.MaxResponse, g.MeanResponse,
				w.MinResponse, w.MaxResponse, w.MeanResponse)
		}
		if g.SuccessRatio() != w.SuccessRatio() {
			t.Errorf("%s success ratio: got %v, want %v", name, g.SuccessRatio(), w.SuccessRatio())
		}
	}
}

// TestAccumulatorMatchesAnalyze: on the handcrafted log covering
// completions, stops, misses and grants, the streaming summaries
// equal the post-hoc ones field for field.
func TestAccumulatorMatchesAnalyze(t *testing.T) {
	l := buildLog()
	diffSummaries(t, Analyze(l), feed(l).Report())
}

// TestAccumulatorEdgeJobs covers the job shapes Analyze handles
// implicitly: a dropped job (release + stopped at the same instant),
// a job that misses its deadline and still completes, a job that
// misses and never terminates, and a job pending at the horizon.
func TestAccumulatorEdgeJobs(t *testing.T) {
	l := trace.NewLog(16)
	// Dropped at release: response 0, stopped, failed, not missed.
	l.Append(ev(0, trace.JobRelease, "drop", 0))
	l.Append(ev(0, trace.JobStopped, "drop", 0))
	// Missed then finished late: failed once, finished, response 50.
	l.Append(ev(0, trace.JobRelease, "late", 0))
	l.Append(ev(30, trace.DeadlineMiss, "late", 0))
	l.Append(ev(50, trace.JobEnd, "late", 0))
	// Missed, never terminated.
	l.Append(ev(100, trace.JobRelease, "late", 1))
	l.Append(ev(130, trace.DeadlineMiss, "late", 1))
	// Released, still pending.
	l.Append(ev(0, trace.JobRelease, "pend", 0))
	l.Append(ev(0, trace.JobBegin, "pend", 0))

	acc := feed(l)
	diffSummaries(t, Analyze(l), acc.Report())
	rep := acc.Report()
	if s := rep.Tasks["drop"]; s.Stopped != 1 || s.Failed != 1 || s.Missed != 0 || s.MinResponse != 0 {
		t.Errorf("dropped job summary: %+v", s)
	}
	if s := rep.Tasks["late"]; s.Released != 2 || s.Finished != 1 || s.Failed != 2 || s.Missed != 2 {
		t.Errorf("late task summary: %+v", s)
	}
	// The two unterminated jobs (late#1, pend#0) remain live; the
	// terminated ones were released.
	if acc.Live() != 2 {
		t.Errorf("live jobs = %d, want 2", acc.Live())
	}
}

// TestAccumulatorSchedulerDetailIgnored: begin/preempt/resume and
// detector releases must not create job records (they do not in
// Analyze either), and system-wide events are skipped.
func TestAccumulatorSchedulerDetailIgnored(t *testing.T) {
	l := trace.NewLog(8)
	l.Append(ev(0, trace.JobPreempt, "a", 0))
	l.Append(ev(0, trace.JobResume, "a", 0))
	l.Append(ev(0, trace.DetectorRelease, "a", 3))
	l.Append(ev(0, trace.StopRequest, "a", 3))
	l.Append(trace.Event{At: 0, Kind: trace.TaskAdded, Task: "a", Job: -1})
	rep := feed(l).Report()
	if len(rep.Tasks) != 0 {
		t.Errorf("scheduler detail created summaries: %+v", rep.Tasks)
	}
}

// TestStreamingReportShape: a streaming report has no job records,
// reports itself as streaming, and answers percentiles from the
// sketch.
func TestStreamingReportShape(t *testing.T) {
	rep := feed(buildLog()).Report()
	if !rep.Streaming() {
		t.Fatal("accumulator report must identify as streaming")
	}
	if rep.Jobs != nil {
		t.Fatal("streaming report must not retain job records")
	}
	if _, ok := rep.Job("tau1", 0); ok {
		t.Error("job lookup on a streaming report must miss")
	}
	// tau1's only successful job responded in 29ms.
	if p, ok := rep.ResponsePercentile("tau1", 50); !ok || p != vtime.Millis(29) {
		t.Errorf("tau1 p50 = %v, %v; want 29ms", p, ok)
	}
	if _, ok := rep.ResponsePercentile("ghost", 50); ok {
		t.Error("unknown task must report no percentile")
	}
	if _, ok := rep.ResponsePercentile("tau1", 0); ok {
		t.Error("p=0 must be rejected")
	}
}

// TestReportIsASnapshot: a mid-run Report must not drift as the
// accumulator keeps consuming — its percentiles come from a sketch
// copy consistent with its frozen counts.
func TestReportIsASnapshot(t *testing.T) {
	acc := NewAccumulator()
	addJob := func(q int64, respMS int64) {
		acc.Append(trace.Event{At: vtime.AtMillis(q * 100), Kind: trace.JobRelease, Task: "a", Job: q})
		acc.Append(trace.Event{At: vtime.AtMillis(q*100 + respMS), Kind: trace.JobEnd, Task: "a", Job: q})
	}
	for q := int64(0); q < 10; q++ {
		addJob(q, 5)
	}
	mid := acc.Report()
	for q := int64(10); q < 20; q++ {
		addJob(q, 500)
	}
	if mid.Tasks["a"].Released != 10 {
		t.Errorf("snapshot counts drifted: %+v", mid.Tasks["a"])
	}
	if p, ok := mid.ResponsePercentile("a", 100); !ok || p != vtime.Millis(5) {
		t.Errorf("snapshot p100 = %v, %v; want the 5ms seen at snapshot time", p, ok)
	}
	if p, ok := acc.Report().ResponsePercentile("a", 100); !ok || p != vtime.Millis(500) {
		t.Errorf("final p100 = %v, %v; want 500ms", p, ok)
	}
}

// TestAccumulatorLargeRandomStream cross-checks the accumulator
// against Analyze on a large pseudo-random event stream with mixed
// outcomes, and checks that its transient state stays bounded by the
// number of unterminated jobs.
func TestAccumulatorLargeRandomStream(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	l := trace.NewLog(1 << 14)
	tasks := []string{"a", "b", "c"}
	for q := int64(0); q < 2000; q++ {
		for _, task := range tasks {
			rel := vtime.AtMillis(q * 10)
			l.Append(trace.Event{At: rel, Kind: trace.JobRelease, Task: task, Job: q})
			resp := vtime.Millis(1 + rng.Int63n(20))
			switch rng.Intn(5) {
			case 0: // stopped
				l.Append(trace.Event{At: rel.Add(resp), Kind: trace.JobStopped, Task: task, Job: q})
			case 1: // missed then finished
				l.Append(trace.Event{At: rel.Add(resp / 2), Kind: trace.DeadlineMiss, Task: task, Job: q})
				l.Append(trace.Event{At: rel.Add(resp), Kind: trace.JobEnd, Task: task, Job: q})
			default: // clean finish
				l.Append(trace.Event{At: rel.Add(resp), Kind: trace.JobEnd, Task: task, Job: q})
			}
		}
	}
	acc := feed(l)
	diffSummaries(t, Analyze(l), acc.Report())
	if acc.Live() != 0 {
		t.Errorf("all jobs terminated but %d remain live", acc.Live())
	}
}
