package metrics

import (
	"math"
	"sort"

	"repro/internal/vtime"
)

// DefaultSketchEpsilon is the rank-error bound of the streaming
// quantile sketch used by Accumulator: a query for percentile p over
// n observations returns a value whose exact rank is within ±εn of
// ⌈p·n/100⌉.
const DefaultSketchEpsilon = 0.01

// Sketch is a Greenwald–Khanna ε-approximate quantile summary over
// response times. It is deterministic (no sampling), supports online
// insertion, and retains O((1/ε)·log(εn)) tuples instead of the n
// observations a sort-based percentile needs — the piece that lets
// streaming collection answer percentile queries with bounded memory.
//
// Guarantee (the bound the property test pins): after n Adds, Query(q)
// returns an observed value whose rank r in the sorted input satisfies
// |r − ⌈q·n⌉| ≤ ⌈εn⌉.
type Sketch struct {
	eps float64
	n   int64
	t   []gkTuple // sorted by v
}

// gkTuple is one GK summary entry: v was observed; g is the gap in
// minimum rank to the previous tuple; delta bounds the rank
// uncertainty of v itself.
type gkTuple struct {
	v        vtime.Duration
	g, delta int64
}

// NewSketch returns an empty sketch with rank-error bound eps
// (0 < eps < 1); out-of-range values fall back to
// DefaultSketchEpsilon.
func NewSketch(eps float64) *Sketch {
	if eps <= 0 || eps >= 1 {
		eps = DefaultSketchEpsilon
	}
	return &Sketch{eps: eps}
}

// Epsilon returns the sketch's rank-error bound.
func (s *Sketch) Epsilon() float64 { return s.eps }

// Clone returns an independent copy: later Adds to the original do
// not affect the clone's answers.
func (s *Sketch) Clone() *Sketch {
	return &Sketch{eps: s.eps, n: s.n, t: append([]gkTuple(nil), s.t...)}
}

// N returns the number of observations added.
func (s *Sketch) N() int64 { return s.n }

// Merge folds another sketch into this one (the other is unchanged):
// the tuple lists interleave by value, and each surviving tuple's
// rank uncertainty widens by the local uncertainty of its neighbour
// from the other summary. Merging an εa- and an εb-summary yields an
// (εa+εb)-summary — the sketch's Epsilon is widened accordingly, so
// the bound it reports stays honest; one level of merging (shards →
// aggregate) is the intended use, repeated pairwise merging keeps
// summing the bounds. The property test pins the merged guarantee
// against exact ranks over random splits.
func (s *Sketch) Merge(o *Sketch) {
	if o.n == 0 {
		return
	}
	if s.n == 0 {
		s.n, s.t = o.n, append([]gkTuple(nil), o.t...)
		if o.eps > s.eps {
			s.eps = o.eps
		}
		return
	}
	merged := make([]gkTuple, 0, len(s.t)+len(o.t))
	var from []bool // true = tuple came from s
	i, j := 0, 0
	for i < len(s.t) || j < len(o.t) {
		if j >= len(o.t) || (i < len(s.t) && s.t[i].v <= o.t[j].v) {
			merged = append(merged, s.t[i])
			from = append(from, true)
			i++
		} else {
			merged = append(merged, o.t[j])
			from = append(from, false)
			j++
		}
	}
	// Widen each tuple's delta by the uncertainty band of the next
	// tuple from the *other* summary: between them, that summary may
	// hide up to g+delta-1 observations on either side.
	for k := range merged {
		for n := k + 1; n < len(merged); n++ {
			if from[n] != from[k] {
				if w := merged[n].g + merged[n].delta - 1; w > 0 {
					merged[k].delta += w
				}
				break
			}
		}
	}
	s.t = merged
	s.n += o.n
	s.eps += o.eps
	s.compress()
}

// ScaleMerge folds k−1 additional identical copies of the sketch into
// itself: afterwards the summary describes the k-fold multiset of
// everything Added so far (the engine's steady-state fast-forward uses
// this to account K extrapolated hyperperiod cycles at once), and the
// summary's ε rank-error bound is UNCHANGED. That is strictly tighter
// than folding the same data in with k−1 repeated Merges, which would
// widen the bound to k·ε; the property test pins the unchanged-ε
// guarantee across the test distributions.
//
// Two cases keep the per-tuple invariant g+Δ ≤ 2εn that Query's bound
// rests on. A tuple already inside the scaled budget just scales — the
// invariant is linear (g+Δ ≤ 2εn ⇒ k(g+Δ) ≤ 2ε·kn). An exact tuple
// (g = 1, Δ = 0 — the only kind a small un-compressed summary holds)
// whose scaled gap k would overflow the budget is instead split into
// same-value tuples with gaps ≤ ⌊2ε·kn⌋: its k copies really do occupy
// k consecutive ranks, so each chunk's rank is still exact.
func (s *Sketch) ScaleMerge(k int64) {
	if k <= 1 || s.n == 0 {
		return
	}
	n2 := s.n * k
	budget := int64(2 * s.eps * float64(n2))
	chunk := budget
	if chunk < 1 {
		chunk = 1
	}
	out := make([]gkTuple, 0, len(s.t))
	for _, t := range s.t {
		if (t.g+t.delta)*k <= budget || t.g != 1 || t.delta != 0 {
			out = append(out, gkTuple{v: t.v, g: t.g * k, delta: t.delta * k})
			continue
		}
		for rest := k; rest > 0; rest -= chunk {
			g := chunk
			if rest < chunk {
				g = rest
			}
			out = append(out, gkTuple{v: t.v, g: g})
		}
	}
	s.t = out
	s.n = n2
}

// Add inserts one observation.
func (s *Sketch) Add(v vtime.Duration) {
	i := sort.Search(len(s.t), func(i int) bool { return s.t[i].v > v })
	var delta int64
	if i > 0 && i < len(s.t) && len(s.t) >= int(1/(2*s.eps)) {
		// Interior insertion into a full summary inherits the local
		// uncertainty budget (GK §2: Δ = ⌊2εn⌋ − 1). Extremes keep
		// Δ = 0 so min and max stay exact.
		if delta = int64(2*s.eps*float64(s.n)) - 1; delta < 0 {
			delta = 0
		}
	}
	s.t = append(s.t, gkTuple{})
	copy(s.t[i+1:], s.t[i:])
	s.t[i] = gkTuple{v: v, g: 1, delta: delta}
	s.n++
	// Compress every ~1/(2ε) insertions: amortized O(1) per Add and
	// enough to keep the summary at its logarithmic bound.
	if period := int64(1 / (2 * s.eps)); period > 0 && s.n%period == 0 {
		s.compress()
	}
}

// compress merges adjacent tuples whose combined uncertainty stays
// within the 2εn budget, front to back, keeping the extremes exact.
func (s *Sketch) compress() {
	if len(s.t) < 3 {
		return
	}
	budget := int64(2 * s.eps * float64(s.n))
	out := s.t[:1]
	for i := 1; i < len(s.t); i++ {
		cur := s.t[i]
		last := out[len(out)-1]
		// Merging deletes the earlier tuple, folding its gap into the
		// later one. The first tuple is never merged away (keeps the
		// minimum exact); the final tuple always survives as a merge
		// target (keeps the maximum exact).
		if len(out) > 1 && last.g+cur.g+cur.delta < budget {
			cur.g += last.g
			out[len(out)-1] = cur
		} else {
			out = append(out, cur)
		}
	}
	s.t = out
}

// Query returns the value at quantile q (0 < q ≤ 1) within the
// sketch's rank-error bound. The second result is false when the
// sketch is empty or q is out of range.
func (s *Sketch) Query(q float64) (vtime.Duration, bool) {
	if s.n == 0 || q <= 0 || q > 1 {
		return 0, false
	}
	rank := int64(math.Ceil(q * float64(s.n)))
	if rank < 1 {
		rank = 1
	}
	// The extremes are held exactly (Δ = 0 at both ends, and neither
	// end is ever merged away), so answer them directly instead of
	// letting the ⌈εn⌉ slack pick a neighbour.
	if rank <= 1 {
		return s.t[0].v, true
	}
	if rank >= s.n {
		return s.t[len(s.t)-1].v, true
	}
	// GK query: return a tuple whose possible rank interval
	// [rmin, rmax] lies within ±e of the target rank. The summary
	// invariant guarantees one exists; the midpoint fallback guards
	// degenerate cases without weakening the tested bound.
	e := int64(math.Ceil(s.eps * float64(s.n)))
	var rmin int64
	best := s.t[0].v
	bestDist := int64(math.MaxInt64)
	for _, t := range s.t {
		rmin += t.g
		rmax := rmin + t.delta
		if rank-rmin <= e && rmax-rank <= e {
			return t.v, true
		}
		mid := (rmin + rmax) / 2
		d := mid - rank
		if d < 0 {
			d = -d
		}
		if d < bestDist {
			bestDist, best = d, t.v
		}
	}
	return best, true
}
