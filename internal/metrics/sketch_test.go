package metrics

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/vtime"
)

// exactWindow returns the values at the rank window [rank-e, rank+e]
// (1-based, clamped) of the sorted slice — the interval a sketch
// answer must fall into to satisfy the ε rank-error bound.
func exactWindow(sorted []vtime.Duration, q, eps float64) (lo, hi vtime.Duration) {
	n := len(sorted)
	rank := int(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	e := int(math.Ceil(eps * float64(n)))
	lor, hir := rank-e, rank+e
	if lor < 1 {
		lor = 1
	}
	if hir > n {
		hir = n
	}
	return sorted[lor-1], sorted[hir-1]
}

// checkBound asserts every queried quantile of the sketch lies within
// the documented ε rank window of the exact sorted values.
func checkBound(t *testing.T, name string, values []vtime.Duration, sk *Sketch) {
	t.Helper()
	sorted := append([]vtime.Duration(nil), values...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, q := range []float64{0.01, 0.05, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0} {
		got, ok := sk.Query(q)
		if !ok {
			t.Fatalf("%s: Query(%v) failed on %d values", name, q, len(values))
		}
		lo, hi := exactWindow(sorted, q, sk.Epsilon())
		if got < lo || got > hi {
			t.Errorf("%s: q=%v: sketch=%v outside rank window [%v, %v] (n=%d)",
				name, q, got, lo, hi, len(values))
		}
	}
}

// TestSketchErrorBoundProperty: across distributions and sizes, the
// streaming quantile sketch stays within its documented ε rank-error
// bound of the exact sort-based percentile.
func TestSketchErrorBoundProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	gens := map[string]func() vtime.Duration{
		"uniform":   func() vtime.Duration { return vtime.Duration(rng.Int63n(1_000_000)) },
		"exp":       func() vtime.Duration { return vtime.Duration(rng.ExpFloat64() * 50_000) },
		"bimodal":   func() vtime.Duration { return vtime.Duration(rng.Int63n(1000) + rng.Int63n(2)*900_000) },
		"constant":  func() vtime.Duration { return vtime.Millis(29) },
		"ascending": nil, // filled per size below
		"duplicate": func() vtime.Duration { return vtime.Duration(rng.Int63n(5)) },
	}
	for _, n := range []int{1, 10, 100, 1000, 20000} {
		for name, gen := range gens {
			values := make([]vtime.Duration, n)
			for i := range values {
				if name == "ascending" {
					values[i] = vtime.Duration(i)
				} else {
					values[i] = gen()
				}
			}
			sk := NewSketch(DefaultSketchEpsilon)
			for _, v := range values {
				sk.Add(v)
			}
			if sk.N() != int64(n) {
				t.Fatalf("%s/%d: N = %d", name, n, sk.N())
			}
			checkBound(t, name, values, sk)
		}
	}
}

// TestSketchBoundedSize: the summary must stay far below the input
// size — the whole point of streaming percentiles.
func TestSketchBoundedSize(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	sk := NewSketch(DefaultSketchEpsilon)
	const n = 200_000
	for i := 0; i < n; i++ {
		sk.Add(vtime.Duration(rng.Int63n(1 << 40)))
	}
	// GK retains O((1/ε)·log(εn)) tuples; with ε=0.01 and n=2e5 that
	// is a few hundred. 2000 leaves a generous margin while still
	// failing loudly if compression ever stops working.
	if len(sk.t) > 2000 {
		t.Errorf("sketch holds %d tuples for %d inputs; compression is broken", len(sk.t), n)
	}
}

// TestSketchExtremes: minimum and maximum stay exact, and queries on
// an empty or out-of-range sketch fail cleanly.
func TestSketchExtremes(t *testing.T) {
	sk := NewSketch(DefaultSketchEpsilon)
	if _, ok := sk.Query(0.5); ok {
		t.Error("empty sketch must not answer")
	}
	rng := rand.New(rand.NewSource(11))
	min, max := vtime.Duration(math.MaxInt64), vtime.Duration(0)
	for i := 0; i < 50_000; i++ {
		v := vtime.Duration(rng.Int63n(1 << 30))
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
		sk.Add(v)
	}
	if got, _ := sk.Query(1.0); got != max {
		t.Errorf("q=1.0 = %v, want exact max %v", got, max)
	}
	for _, q := range []float64{0, -1, 1.01} {
		if _, ok := sk.Query(q); ok {
			t.Errorf("Query(%v) must be rejected", q)
		}
	}
	if NewSketch(-5).Epsilon() != DefaultSketchEpsilon {
		t.Error("out-of-range epsilon must fall back to the default")
	}
}
