package metrics

import (
	"encoding/json"
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/trace"
	"repro/internal/vtime"
)

// appendJob streams one released-and-completed job with the given
// response time through the accumulator.
func appendJob(a *Accumulator, task string, q int64, release vtime.Time, resp vtime.Duration) {
	a.Append(trace.Event{At: release, Kind: trace.JobRelease, Task: task, Job: q})
	a.Append(trace.Event{At: release.Add(resp), Kind: trace.JobEnd, Task: task, Job: q})
}

// TestStateRoundTrip: snapshotting a mid-stream accumulator and
// restoring it into a fresh one reproduces the internal state exactly
// — continuing the same event stream through both yields identical
// reports, percentiles included.
func TestStateRoundTrip(t *testing.T) {
	l := buildLog()
	events := l.Events()
	for _, cut := range []int{0, 1, len(events) / 2, len(events) - 1, len(events)} {
		a := NewAccumulator()
		for _, e := range events[:cut] {
			a.Append(e)
		}
		st := a.State()

		// The state survives a JSON round trip (the wire format of the
		// checkpoint and sharding pipelines).
		raw, err := json.Marshal(st)
		if err != nil {
			t.Fatalf("cut %d: marshal: %v", cut, err)
		}
		var decoded AccumulatorState
		if err := json.Unmarshal(raw, &decoded); err != nil {
			t.Fatalf("cut %d: unmarshal: %v", cut, err)
		}

		b := NewAccumulator()
		if err := b.RestoreState(&decoded); err != nil {
			t.Fatalf("cut %d: restore: %v", cut, err)
		}
		for _, e := range events[cut:] {
			a.Append(e)
			b.Append(e)
		}
		diffSummaries(t, a.Report(), b.Report())
		diffPercentiles(t, a.Report(), b.Report())
	}
}

// diffPercentiles fails wherever two streaming reports answer a
// percentile query differently.
func diffPercentiles(t *testing.T, want, got *Report) {
	t.Helper()
	for name := range want.Tasks {
		for _, p := range []float64{1, 25, 50, 75, 90, 95, 99, 100} {
			w, wok := want.ResponsePercentile(name, p)
			g, gok := got.ResponsePercentile(name, p)
			if wok != gok || w != g {
				t.Errorf("%s p%v: got (%v, %v), want (%v, %v)", name, p, g, gok, w, wok)
			}
		}
	}
}

// TestRestoreStateRejects: version mismatches and non-empty targets
// are refused rather than silently blended.
func TestRestoreStateRejects(t *testing.T) {
	a := feed(buildLog())
	st := a.State()

	bad := *st
	bad.Version = AccumulatorStateVersion + 1
	if err := NewAccumulator().RestoreState(&bad); err == nil {
		t.Error("version mismatch accepted")
	}
	if err := a.RestoreState(st); err == nil {
		t.Error("restore into a non-empty accumulator accepted")
	}
}

// TestStateFromReportRoundTrip: a worker serializing its final
// streaming report and the parent rebuilding it agree field for field
// and percentile for percentile — the contract the process-sharded
// sweep leans on.
func TestStateFromReportRoundTrip(t *testing.T) {
	rep := feed(buildLog()).Report()
	st, err := StateFromReport(rep)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ReportFromState(st)
	if err != nil {
		t.Fatal(err)
	}
	diffSummaries(t, rep, back)
	diffPercentiles(t, rep, back)
	if !back.Streaming() {
		t.Error("rebuilt report is not streaming")
	}
}

// TestStateFromReportRejectsRetained: a retained (sort-based) report
// has no sketches to ship.
func TestStateFromReportRejectsRetained(t *testing.T) {
	if _, err := StateFromReport(Analyze(buildLog())); err == nil {
		t.Error("retained report accepted")
	}
}

// TestAbsorbMatchesUnsharded: feeding disjoint halves of a stream into
// two accumulators and absorbing both states into a third reproduces
// the aggregate counters and moments of an unsharded run exactly, with
// percentiles within the merged (summed) rank-error bound.
func TestAbsorbMatchesUnsharded(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var all []vtime.Duration
	whole, shardA, shardB := NewAccumulator(), NewAccumulator(), NewAccumulator()
	accs := []*Accumulator{shardA, shardB}
	for q := int64(0); q < 4000; q++ {
		resp := vtime.Duration(rng.Int63n(1_000_000))
		all = append(all, resp)
		for _, a := range []*Accumulator{whole, accs[q%2]} {
			appendJob(a, "t1", q, vtime.Time(q)*vtime.Time(vtime.Millisecond), resp)
		}
	}
	agg := NewAccumulator()
	for _, sh := range accs {
		st, err := StateFromReport(sh.Report())
		if err != nil {
			t.Fatal(err)
		}
		if err := agg.Absorb(st); err != nil {
			t.Fatal(err)
		}
	}
	wantRep, gotRep := whole.Report(), agg.Report()
	diffSummaries(t, wantRep, gotRep)

	// Percentiles: the merged sketch honours the widened εa+εb bound.
	sorted := append([]vtime.Duration(nil), all...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, p := range []float64{1, 25, 50, 75, 90, 95, 99, 100} {
		got, ok := gotRep.ResponsePercentile("t1", p)
		if !ok {
			t.Fatalf("p%v: no answer", p)
		}
		lo, hi := exactWindow(sorted, p/100, 2*DefaultSketchEpsilon)
		if got < lo || got > hi {
			t.Errorf("p%v: merged=%v outside rank window [%v, %v]", p, got, lo, hi)
		}
	}
}

// TestAbsorbLiveCollision: two shards reporting the same in-flight job
// means they overlapped — an error, not a silent merge.
func TestAbsorbLiveCollision(t *testing.T) {
	st := &AccumulatorState{
		Version: AccumulatorStateVersion,
		Epsilon: DefaultSketchEpsilon,
		Live:    []LiveJobState{{Task: "t1", Q: 3, Release: 10}},
	}
	a := NewAccumulator()
	if err := a.Absorb(st); err != nil {
		t.Fatal(err)
	}
	if err := a.Absorb(st); err == nil {
		t.Error("live-job collision accepted")
	}
}

// TestSketchMergeBoundProperty: across random splits of several
// distributions, querying the merged sketch stays within the summed
// εa+εb rank window of the exact sorted union, and the merged sketch
// reports that widened bound itself.
func TestSketchMergeBoundProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	gens := map[string]func() vtime.Duration{
		"uniform": func() vtime.Duration { return vtime.Duration(rng.Int63n(1_000_000)) },
		"exp":     func() vtime.Duration { return vtime.Duration(rng.ExpFloat64() * 50_000) },
		"bimodal": func() vtime.Duration { return vtime.Duration(rng.Int63n(1000) + rng.Int63n(2)*900_000) },
		"sorted":  func() vtime.Duration { return vtime.Duration(rng.Int63n(100)) },
	}
	for name, gen := range gens {
		for _, n := range []int{10, 500, 5000} {
			a, b := NewSketch(DefaultSketchEpsilon), NewSketch(DefaultSketchEpsilon)
			var values []vtime.Duration
			for i := 0; i < n; i++ {
				v := gen()
				values = append(values, v)
				if rng.Intn(2) == 0 {
					a.Add(v)
				} else {
					b.Add(v)
				}
			}
			a.Merge(b)
			if a.N() != int64(n) {
				t.Fatalf("%s n=%d: merged N=%d", name, n, a.N())
			}
			wantEps := 2 * DefaultSketchEpsilon
			if math.Abs(a.Epsilon()-wantEps) > 1e-12 {
				t.Fatalf("%s n=%d: merged eps=%v, want %v", name, n, a.Epsilon(), wantEps)
			}
			checkBound(t, name, values, a)
		}
	}
}

// TestSketchMergeEmpty: merging with or into an empty sketch is the
// identity on the data (no widening for a summary holding nothing).
func TestSketchMergeEmpty(t *testing.T) {
	full := NewSketch(DefaultSketchEpsilon)
	for i := 0; i < 100; i++ {
		full.Add(vtime.Duration(i))
	}
	into := full.Clone()
	into.Merge(NewSketch(DefaultSketchEpsilon))
	if !reflect.DeepEqual(into, full) {
		t.Error("merging an empty sketch changed the receiver")
	}
	empty := NewSketch(DefaultSketchEpsilon)
	empty.Merge(full)
	if empty.N() != full.N() || empty.Epsilon() != full.Epsilon() {
		t.Errorf("empty.Merge(full): n=%d eps=%v, want n=%d eps=%v",
			empty.N(), empty.Epsilon(), full.N(), full.Epsilon())
	}
	v1, _ := empty.Query(0.5)
	v2, _ := full.Query(0.5)
	if v1 != v2 {
		t.Errorf("median after merge into empty: %v, want %v", v1, v2)
	}
}
