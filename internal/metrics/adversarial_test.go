package metrics

import (
	"testing"

	"repro/internal/trace"
	"repro/internal/vtime"
)

// These tests pit the accumulator against adversarial event streams —
// tasks with zero terminated jobs, tasks where every job fails, and
// orderings where misses, stops and detector flags interleave — and
// require field-for-field agreement with the post-hoc Analyze on the
// same stream (the streaming pipeline's core contract).

func compareReports(t *testing.T, l *trace.Log) {
	t.Helper()
	want := Analyze(l)
	acc := NewAccumulator()
	for _, e := range l.Events() {
		acc.Append(e)
	}
	got := acc.Report()
	if len(got.Tasks) != len(want.Tasks) {
		t.Fatalf("accumulator tracked %d tasks, Analyze %d", len(got.Tasks), len(want.Tasks))
	}
	for name, w := range want.Tasks {
		g := got.Tasks[name]
		if g == nil {
			t.Fatalf("task %s missing from streamed report", name)
		}
		if g.Released != w.Released || g.Finished != w.Finished || g.Stopped != w.Stopped ||
			g.Missed != w.Missed || g.Failed != w.Failed || g.Detected != w.Detected {
			t.Errorf("task %s counters diverge:\nstream  %+v\nanalyze %+v", name, *g, *w)
		}
		if g.MinResponse != w.MinResponse || g.MaxResponse != w.MaxResponse || g.MeanResponse != w.MeanResponse {
			t.Errorf("task %s responses diverge:\nstream  min=%v max=%v mean=%v\nanalyze min=%v max=%v mean=%v",
				name, g.MinResponse, g.MaxResponse, g.MeanResponse, w.MinResponse, w.MaxResponse, w.MeanResponse)
		}
	}
}

func at(ms int64) vtime.Time { return vtime.AtMillis(ms) }

// TestAccumulatorZeroJobTask: a task that only ever releases (no job
// terminates within the horizon) must report released counts with
// zero response statistics, matching Analyze.
func TestAccumulatorZeroJobTask(t *testing.T) {
	l := trace.NewLog(8)
	l.Append(trace.Event{At: at(0), Kind: trace.JobRelease, Task: "idle", Job: 0})
	l.Append(trace.Event{At: at(10), Kind: trace.JobRelease, Task: "idle", Job: 1})
	// A second task that does work, so maps differ in shape.
	l.Append(trace.Event{At: at(0), Kind: trace.JobRelease, Task: "busy", Job: 0})
	l.Append(trace.Event{At: at(0), Kind: trace.JobBegin, Task: "busy", Job: 0})
	l.Append(trace.Event{At: at(3), Kind: trace.JobEnd, Task: "busy", Job: 0})
	compareReports(t, l)

	acc := NewAccumulator()
	for _, e := range l.Events() {
		acc.Append(e)
	}
	rep := acc.Report()
	idle := rep.Tasks["idle"]
	if idle.Released != 2 || idle.Finished != 0 || idle.MaxResponse != 0 {
		t.Errorf("zero-job task summary wrong: %+v", *idle)
	}
	if _, ok := rep.ResponsePercentile("idle", 50); ok {
		t.Error("percentile answered for a task with no successful jobs")
	}
	if acc.Live() != 2 {
		t.Errorf("live backlog %d, want the 2 unterminated jobs", acc.Live())
	}
}

// TestAccumulatorAllFailedTask: every job of the task fails — one
// missing its deadline then finishing late, one stopped, one missed
// and then stopped. The percentile sketch must stay empty (it covers
// successes only) while counts and responses match Analyze.
func TestAccumulatorAllFailedTask(t *testing.T) {
	l := trace.NewLog(16)
	// Job 0: miss at 10, late completion at 12.
	l.Append(trace.Event{At: at(0), Kind: trace.JobRelease, Task: "bad", Job: 0})
	l.Append(trace.Event{At: at(0), Kind: trace.JobBegin, Task: "bad", Job: 0})
	l.Append(trace.Event{At: at(10), Kind: trace.DeadlineMiss, Task: "bad", Job: 0})
	l.Append(trace.Event{At: at(12), Kind: trace.JobEnd, Task: "bad", Job: 0})
	// Job 1: detector flags it, stop treatment kills it.
	l.Append(trace.Event{At: at(10), Kind: trace.JobRelease, Task: "bad", Job: 1})
	l.Append(trace.Event{At: at(12), Kind: trace.JobBegin, Task: "bad", Job: 1})
	l.Append(trace.Event{At: at(15), Kind: trace.DetectorRelease, Task: "bad", Job: 1})
	l.Append(trace.Event{At: at(15), Kind: trace.FaultDetected, Task: "bad", Job: 1})
	l.Append(trace.Event{At: at(15), Kind: trace.StopRequest, Task: "bad", Job: 1})
	l.Append(trace.Event{At: at(16), Kind: trace.JobStopped, Task: "bad", Job: 1})
	// Job 2: misses, then is stopped — failed once, not twice.
	l.Append(trace.Event{At: at(20), Kind: trace.JobRelease, Task: "bad", Job: 2})
	l.Append(trace.Event{At: at(21), Kind: trace.JobBegin, Task: "bad", Job: 2})
	l.Append(trace.Event{At: at(30), Kind: trace.DeadlineMiss, Task: "bad", Job: 2})
	l.Append(trace.Event{At: at(31), Kind: trace.JobStopped, Task: "bad", Job: 2})
	compareReports(t, l)

	acc := NewAccumulator()
	for _, e := range l.Events() {
		acc.Append(e)
	}
	rep := acc.Report()
	s := rep.Tasks["bad"]
	if s.Released != 3 || s.Failed != 3 || s.Missed != 2 || s.Stopped != 2 || s.Finished != 1 {
		t.Errorf("all-failed summary wrong: %+v", *s)
	}
	if s.SuccessRatio() != 0 {
		t.Errorf("success ratio %v, want 0", s.SuccessRatio())
	}
	if _, ok := rep.ResponsePercentile("bad", 99); ok {
		t.Error("percentile answered from failed jobs (sketch must cover successes only)")
	}
	if acc.Live() != 0 {
		t.Errorf("live backlog %d after all jobs terminated", acc.Live())
	}
}

// TestAccumulatorDropsAtRelease: an admission drop is release +
// immediate stop; the response is zero but the job still counts as
// released and failed, identically in both pipelines.
func TestAccumulatorDropsAtRelease(t *testing.T) {
	l := trace.NewLog(4)
	l.Append(trace.Event{At: at(5), Kind: trace.JobRelease, Task: "shed", Job: 0})
	l.Append(trace.Event{At: at(5), Kind: trace.JobStopped, Task: "shed", Job: 0})
	compareReports(t, l)
}

// TestAccumulatorIgnoresSchedulerDetail: begin/preempt/resume and
// detector releases for jobs never released must not create job
// records in either pipeline (a regression guard for the released
// count, which only JobRelease-class events may establish).
func TestAccumulatorIgnoresSchedulerDetail(t *testing.T) {
	l := trace.NewLog(8)
	l.Append(trace.Event{At: at(0), Kind: trace.JobRelease, Task: "a", Job: 0})
	l.Append(trace.Event{At: at(0), Kind: trace.JobBegin, Task: "a", Job: 0})
	l.Append(trace.Event{At: at(1), Kind: trace.JobPreempt, Task: "a", Job: 0})
	l.Append(trace.Event{At: at(2), Kind: trace.JobResume, Task: "a", Job: 0})
	l.Append(trace.Event{At: at(3), Kind: trace.JobEnd, Task: "a", Job: 0})
	// Detector probes a job of "b" that never released in this window.
	l.Append(trace.Event{At: at(3), Kind: trace.DetectorRelease, Task: "b", Job: 7})
	compareReports(t, l)

	acc := NewAccumulator()
	for _, e := range l.Events() {
		acc.Append(e)
	}
	if s, ok := acc.Report().Tasks["b"]; ok && s.Released != 0 {
		t.Errorf("detector release inflated task b to %+v", *s)
	}
}
