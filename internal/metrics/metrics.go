// Package metrics summarizes traces into the quantities the paper's
// evaluation discusses: which jobs finished, which missed their
// deadlines, which were stopped, and the observed response times. It
// works from the trace log alone, so the cmd tools can analyze logs
// produced by earlier runs.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/trace"
	"repro/internal/vtime"
)

// JobRecord reconstructs one job's life from the trace.
type JobRecord struct {
	Task    string
	Q       int64
	Release vtime.Time
	// Begin is the first dispatch (zero Time if never dispatched).
	Begin vtime.Time
	// End is the completion or stop instant (zero if still pending
	// at the end of the trace).
	End vtime.Time
	// Detected is true when a detector flagged the job.
	Detected bool
	// Stopped is true when the job terminated on its stop flag.
	Stopped bool
	// MissedDeadline is true when the deadline passed unfinished.
	MissedDeadline bool
	// Granted is the system-allowance grant, if any.
	Granted vtime.Duration

	begun, ended bool
}

// Failed reports job failure in the paper's sense: a deadline missed
// or a forced stop before completion.
func (j JobRecord) Failed() bool { return j.MissedDeadline || j.Stopped }

// Response returns End − Release for terminated jobs, else 0.
func (j JobRecord) Response() vtime.Duration {
	if !j.ended {
		return 0
	}
	return j.End.Sub(j.Release)
}

// TaskSummary aggregates one task's jobs.
type TaskSummary struct {
	Task     string
	Released int
	Finished int
	Stopped  int
	Missed   int // deadline misses (a stopped job may also miss)
	Failed   int // Missed ∪ Stopped
	Detected int
	// MinResponse, MaxResponse and MeanResponse cover terminated jobs
	// (completions and stops alike, matching the ended set Analyze
	// reconstructs).
	MinResponse  vtime.Duration
	MaxResponse  vtime.Duration
	MeanResponse vtime.Duration

	respSum vtime.Duration
	respN   int64
}

// SuccessRatio is the fraction of released jobs that neither missed
// their deadline nor were stopped.
func (s TaskSummary) SuccessRatio() float64 {
	if s.Released == 0 {
		return 1
	}
	return float64(s.Released-s.Failed) / float64(s.Released)
}

// Report is the full analysis of a trace. Analyze builds it with
// per-job records; Accumulator.Report builds it from streaming
// collection, in which case Jobs is nil and percentile queries answer
// from fixed-size quantile sketches instead of the job list.
type Report struct {
	Jobs  []JobRecord
	Tasks map[string]*TaskSummary

	// sketches backs ResponsePercentile for streaming reports.
	sketches map[string]*Sketch
}

// Streaming reports whether this report came from streaming
// collection: no per-job records, sketch-backed percentiles.
func (r *Report) Streaming() bool { return r.sketches != nil }

// Analyze reconstructs jobs and summaries from a trace log.
func Analyze(l *trace.Log) *Report {
	type key struct {
		task string
		q    int64
	}
	jobs := map[key]*JobRecord{}
	var order []key
	get := func(k key) *JobRecord {
		j, ok := jobs[k]
		if !ok {
			j = &JobRecord{Task: k.task, Q: k.q}
			jobs[k] = j
			order = append(order, k)
		}
		return j
	}
	for _, e := range l.Events() {
		if e.Task == "" || e.Job < 0 {
			continue
		}
		k := key{e.Task, e.Job}
		switch e.Kind {
		case trace.JobRelease:
			j := get(k)
			j.Release = e.At
		case trace.JobBegin:
			j := get(k)
			j.Begin = e.At
			j.begun = true
		case trace.JobEnd:
			j := get(k)
			j.End = e.At
			j.ended = true
		case trace.JobStopped:
			j := get(k)
			j.End = e.At
			j.ended = true
			j.Stopped = true
		case trace.DeadlineMiss:
			get(k).MissedDeadline = true
		case trace.FaultDetected:
			get(k).Detected = true
		case trace.AllowanceGrant:
			get(k).Granted = vtime.Duration(e.Arg)
		}
	}
	rep := &Report{Tasks: map[string]*TaskSummary{}}
	for _, k := range order {
		j := jobs[k]
		rep.Jobs = append(rep.Jobs, *j)
		s, ok := rep.Tasks[k.task]
		if !ok {
			s = &TaskSummary{Task: k.task}
			rep.Tasks[k.task] = s
		}
		s.Released++
		if j.ended && !j.Stopped {
			s.Finished++
		}
		if j.Stopped {
			s.Stopped++
		}
		if j.MissedDeadline {
			s.Missed++
		}
		if j.Failed() {
			s.Failed++
		}
		if j.Detected {
			s.Detected++
		}
		if j.ended {
			r := j.Response()
			if r > s.MaxResponse {
				s.MaxResponse = r
			}
			if s.respN == 0 || r < s.MinResponse {
				s.MinResponse = r
			}
			s.respSum += r
			s.respN++
		}
	}
	for _, s := range rep.Tasks {
		if s.respN > 0 {
			s.MeanResponse = s.respSum / vtime.Duration(s.respN)
		}
	}
	return rep
}

// Job returns the record of one job, if present.
func (r *Report) Job(task string, q int64) (JobRecord, bool) {
	for _, j := range r.Jobs {
		if j.Task == task && j.Q == q {
			return j, true
		}
	}
	return JobRecord{}, false
}

// TaskNames returns the summarized tasks, sorted.
func (r *Report) TaskNames() []string {
	out := make([]string, 0, len(r.Tasks))
	for t := range r.Tasks {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// TotalFailed sums failures across tasks.
func (r *Report) TotalFailed() int {
	n := 0
	for _, s := range r.Tasks {
		n += s.Failed
	}
	return n
}

// TotalReleased sums releases across tasks.
func (r *Report) TotalReleased() int {
	n := 0
	for _, s := range r.Tasks {
		n += s.Released
	}
	return n
}

// SuccessRatio is the system-wide fraction of non-failed jobs.
func (r *Report) SuccessRatio() float64 {
	rel := r.TotalReleased()
	if rel == 0 {
		return 1
	}
	return float64(rel-r.TotalFailed()) / float64(rel)
}

// Render prints the per-task table.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %9s %9s %8s %7s %7s %9s %12s %12s\n",
		"task", "released", "finished", "stopped", "missed", "failed", "detected", "maxResp", "meanResp")
	for _, name := range r.TaskNames() {
		s := r.Tasks[name]
		fmt.Fprintf(&b, "%-8s %9d %9d %8d %7d %7d %9d %12v %12v\n",
			s.Task, s.Released, s.Finished, s.Stopped, s.Missed, s.Failed, s.Detected, s.MaxResponse, s.MeanResponse)
	}
	fmt.Fprintf(&b, "success ratio: %.4f\n", r.SuccessRatio())
	return b.String()
}

// ResponsePercentile returns the p-th percentile (0 < p <= 100) of
// the task's successful response times — jobs that completed their
// work without being stopped and without missing their deadline —
// using nearest-rank. Failed jobs are excluded: a stopped job's
// "response" is its stop instant and a missed job's is already past
// its deadline, so neither describes the service the task delivered.
// The second result is false when the task has no successful jobs or
// p is out of range.
//
// On a streaming report (see Accumulator) the answer comes from the
// task's quantile sketch: the returned value's rank among the exact
// sorted responses is within ±εn of the nearest-rank target, with
// ε = DefaultSketchEpsilon (or the accumulator's configured bound).
func (r *Report) ResponsePercentile(task string, p float64) (vtime.Duration, bool) {
	if p <= 0 || p > 100 {
		return 0, false
	}
	if r.Streaming() {
		sk, ok := r.sketches[task]
		if !ok {
			return 0, false
		}
		return sk.Query(p / 100)
	}
	var resp []vtime.Duration
	for _, j := range r.Jobs {
		if j.Task == task && j.ended && !j.Failed() {
			resp = append(resp, j.Response())
		}
	}
	if len(resp) == 0 {
		return 0, false
	}
	sort.Slice(resp, func(i, j int) bool { return resp[i] < resp[j] })
	rank := int(math.Ceil(p / 100 * float64(len(resp))))
	if rank < 1 {
		rank = 1
	}
	return resp[rank-1], true
}
