package metrics

import (
	"fmt"
	"sort"

	"repro/internal/vtime"
)

// AccumulatorState is the complete serializable state of an
// Accumulator: per-task summaries with their response moments, the
// quantile sketches, and the transient live-job records. It is the
// wire format of the checkpoint/resume pipeline (a resumed run's
// accumulator continues field-for-field from the snapshot) and of the
// process-sharded sweeps (workers stream it back, the parent rebuilds
// reports or folds shards into an aggregate with Absorb). Slices are
// sorted (tasks by name, live jobs by task then q, sketch tuples by
// value) so the JSON encoding of a deterministic run is canonical.
type AccumulatorState struct {
	Version int            `json:"version"`
	Epsilon float64        `json:"epsilon"`
	Tasks   []TaskState    `json:"tasks,omitempty"`
	Live    []LiveJobState `json:"live,omitempty"`
}

// AccumulatorStateVersion stamps AccumulatorState encodings.
const AccumulatorStateVersion = 1

// TaskState is one task's accumulated summary plus its sketch.
type TaskState struct {
	Task        string       `json:"task"`
	Released    int          `json:"released"`
	Finished    int          `json:"finished"`
	Stopped     int          `json:"stopped,omitempty"`
	Missed      int          `json:"missed,omitempty"`
	Failed      int          `json:"failed,omitempty"`
	Detected    int          `json:"detected,omitempty"`
	MinResponse int64        `json:"min_response"`
	MaxResponse int64        `json:"max_response"`
	RespSum     int64        `json:"resp_sum"`
	RespN       int64        `json:"resp_n"`
	Sketch      *SketchState `json:"sketch,omitempty"`
}

// SketchState is a GK quantile summary as data: (value, g, delta)
// triples in value order.
type SketchState struct {
	Epsilon float64    `json:"epsilon"`
	N       int64      `json:"n"`
	Tuples  [][3]int64 `json:"tuples,omitempty"`
}

// LiveJobState is one released-but-unterminated job.
type LiveJobState struct {
	Task     string `json:"task"`
	Q        int64  `json:"q"`
	Release  int64  `json:"release"`
	Missed   bool   `json:"missed,omitempty"`
	Detected bool   `json:"detected,omitempty"`
}

// State snapshots the accumulator, live jobs included, so a restored
// accumulator resumes mid-run exactly (RestoreState).
func (a *Accumulator) State() *AccumulatorState {
	st := &AccumulatorState{Version: AccumulatorStateVersion, Epsilon: a.eps}
	names := make([]string, 0, len(a.tasks))
	for name := range a.tasks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		s := a.tasks[name]
		ts := TaskState{
			Task:        name,
			Released:    s.Released,
			Finished:    s.Finished,
			Stopped:     s.Stopped,
			Missed:      s.Missed,
			Failed:      s.Failed,
			Detected:    s.Detected,
			MinResponse: int64(s.MinResponse),
			MaxResponse: int64(s.MaxResponse),
			RespSum:     int64(s.respSum),
			RespN:       s.respN,
		}
		if sk, ok := a.sketch[name]; ok {
			ts.Sketch = sk.State()
		}
		st.Tasks = append(st.Tasks, ts)
	}
	for k, lj := range a.live {
		st.Live = append(st.Live, LiveJobState{
			Task:     k.task,
			Q:        k.q,
			Release:  int64(lj.release),
			Missed:   lj.missed,
			Detected: lj.detected,
		})
	}
	sort.Slice(st.Live, func(i, j int) bool {
		if st.Live[i].Task != st.Live[j].Task {
			return st.Live[i].Task < st.Live[j].Task
		}
		return st.Live[i].Q < st.Live[j].Q
	})
	return st
}

// RestoreState loads a snapshot into an empty accumulator; subsequent
// Appends continue exactly where the snapshot left off.
func (a *Accumulator) RestoreState(st *AccumulatorState) error {
	if st.Version != AccumulatorStateVersion {
		return fmt.Errorf("metrics: accumulator state version %d, want %d", st.Version, AccumulatorStateVersion)
	}
	if len(a.tasks) != 0 || len(a.live) != 0 {
		return fmt.Errorf("metrics: RestoreState on a non-empty accumulator")
	}
	a.eps = st.Epsilon
	for _, ts := range st.Tasks {
		a.tasks[ts.Task] = ts.summary()
		if ts.Sketch != nil {
			a.sketch[ts.Task] = ts.Sketch.sketch()
		}
	}
	for _, lj := range st.Live {
		a.live[jobKey{lj.Task, lj.Q}] = &liveJob{
			release:  vtime.Time(lj.Release),
			missed:   lj.Missed,
			detected: lj.Detected,
		}
	}
	return nil
}

// summary converts the serialized form back to a TaskSummary.
func (ts TaskState) summary() *TaskSummary {
	return &TaskSummary{
		Task:        ts.Task,
		Released:    ts.Released,
		Finished:    ts.Finished,
		Stopped:     ts.Stopped,
		Missed:      ts.Missed,
		Failed:      ts.Failed,
		Detected:    ts.Detected,
		MinResponse: vtime.Duration(ts.MinResponse),
		MaxResponse: vtime.Duration(ts.MaxResponse),
		respSum:     vtime.Duration(ts.RespSum),
		respN:       ts.RespN,
	}
}

// Absorb folds a completed shard's state into the accumulator:
// counters sum, response extremes and moments fold, sketches merge
// (see Sketch.Merge for the widened rank-error bound), live jobs
// union. It is how the parent of a process-sharded sweep builds the
// aggregate view from streamed worker states.
func (a *Accumulator) Absorb(st *AccumulatorState) error {
	if st.Version != AccumulatorStateVersion {
		return fmt.Errorf("metrics: accumulator state version %d, want %d", st.Version, AccumulatorStateVersion)
	}
	for _, ts := range st.Tasks {
		s := a.summary(ts.Task)
		incoming := ts.summary()
		if incoming.respN > 0 && (s.respN == 0 || incoming.MinResponse < s.MinResponse) {
			s.MinResponse = incoming.MinResponse
		}
		if incoming.MaxResponse > s.MaxResponse {
			s.MaxResponse = incoming.MaxResponse
		}
		s.Released += incoming.Released
		s.Finished += incoming.Finished
		s.Stopped += incoming.Stopped
		s.Missed += incoming.Missed
		s.Failed += incoming.Failed
		s.Detected += incoming.Detected
		s.respSum += incoming.respSum
		s.respN += incoming.respN
		if ts.Sketch != nil {
			in := ts.Sketch.sketch()
			if sk, ok := a.sketch[ts.Task]; ok {
				sk.Merge(in)
			} else {
				a.sketch[ts.Task] = in
			}
		}
	}
	for _, lj := range st.Live {
		k := jobKey{lj.Task, lj.Q}
		if _, dup := a.live[k]; dup {
			return fmt.Errorf("metrics: Absorb live-job collision %s#%d (shards must cover disjoint runs)", lj.Task, lj.Q)
		}
		a.live[k] = &liveJob{release: vtime.Time(lj.Release), missed: lj.Missed, detected: lj.Detected}
	}
	return nil
}

// StateFromReport converts a streaming run's final report into the
// wire state (live jobs are gone by then — every released job either
// terminated or stays counted in Released). It is how sharded-sweep
// workers serialize a RunResult without access to the accumulator.
func StateFromReport(r *Report) (*AccumulatorState, error) {
	if !r.Streaming() {
		return nil, fmt.Errorf("metrics: StateFromReport needs a streaming report (sketch-backed percentiles)")
	}
	st := &AccumulatorState{Version: AccumulatorStateVersion, Epsilon: DefaultSketchEpsilon}
	names := make([]string, 0, len(r.Tasks))
	for name := range r.Tasks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		s := r.Tasks[name]
		ts := TaskState{
			Task:        name,
			Released:    s.Released,
			Finished:    s.Finished,
			Stopped:     s.Stopped,
			Missed:      s.Missed,
			Failed:      s.Failed,
			Detected:    s.Detected,
			MinResponse: int64(s.MinResponse),
			MaxResponse: int64(s.MaxResponse),
			RespSum:     int64(s.respSum),
			RespN:       s.respN,
		}
		if sk, ok := r.sketches[name]; ok {
			ts.Sketch = sk.State()
			st.Epsilon = sk.Epsilon()
		}
		st.Tasks = append(st.Tasks, ts)
	}
	return st, nil
}

// ReportFromState is the receiving end of StateFromReport: it
// rebuilds the streaming report a worker's run produced, equal
// field-for-field (summaries, mean included) and percentile-for-
// percentile (the sketches travel verbatim).
func ReportFromState(st *AccumulatorState) (*Report, error) {
	if st.Version != AccumulatorStateVersion {
		return nil, fmt.Errorf("metrics: accumulator state version %d, want %d", st.Version, AccumulatorStateVersion)
	}
	rep := &Report{
		Tasks:    make(map[string]*TaskSummary, len(st.Tasks)),
		sketches: make(map[string]*Sketch, len(st.Tasks)),
	}
	for _, ts := range st.Tasks {
		s := ts.summary()
		if s.respN > 0 {
			s.MeanResponse = s.respSum / vtime.Duration(s.respN)
		}
		rep.Tasks[ts.Task] = s
		if ts.Sketch != nil {
			rep.sketches[ts.Task] = ts.Sketch.sketch()
		}
	}
	return rep, nil
}

// State serializes the sketch.
func (s *Sketch) State() *SketchState {
	st := &SketchState{Epsilon: s.eps, N: s.n}
	for _, t := range s.t {
		st.Tuples = append(st.Tuples, [3]int64{int64(t.v), t.g, t.delta})
	}
	return st
}

// sketch rebuilds the live form.
func (st *SketchState) sketch() *Sketch {
	sk := &Sketch{eps: st.Epsilon, n: st.N}
	for _, t := range st.Tuples {
		sk.t = append(sk.t, gkTuple{v: vtime.Duration(t[0]), g: t[1], delta: t[2]})
	}
	return sk
}
