package metrics

import (
	"repro/internal/trace"
	"repro/internal/vtime"
)

// Accumulator is the streaming counterpart of Analyze: it consumes
// trace events one at a time (it implements trace.Sink, so the engine
// can feed it directly in streaming collection mode) and maintains
// per-task counts, success ratios, response min/mean/max and an
// ε-approximate response-time quantile sketch — without retaining
// jobs or events. Transient per-job state is kept only for jobs that
// have not yet terminated, so memory is bounded by the live-job
// backlog, not the horizon.
//
// For any event sequence the engine emits, Report() agrees with
// Analyze on every TaskSummary field exactly; percentiles answer from
// the sketch within DefaultSketchEpsilon rank error (both pinned by
// the cross-mode equivalence tests). Like Analyze, the per-job event
// order assumed is the engine's: a job's terminal event (end or stop)
// is its last.
type Accumulator struct {
	eps    float64
	tasks  map[string]*TaskSummary
	sketch map[string]*Sketch
	live   map[jobKey]*liveJob

	// Cycle tracking backs the engine's steady-state fast-forward
	// (engine.CycleObserver): CycleMark snapshots per-task counters at
	// a hyperperiod boundary and resets the per-cycle sketches;
	// ExtrapolateCycles folds K identical cycles in analytically. Both
	// maps stay nil until the first CycleMark, so plain runs pay
	// nothing.
	cycleBase   map[string]cycleBase
	cycleSketch map[string]*Sketch
}

// cycleBase is a task's counter snapshot at the last CycleMark; the
// delta to the current counters is exactly one hyperperiod cycle when
// the engine detects a fingerprint match at the next boundary.
type cycleBase struct {
	released, finished, stopped, missed, failed, detected int
	respSum                                               vtime.Duration
	respN                                                 int64
}

type jobKey struct {
	task string
	q    int64
}

// liveJob is the transient state of a job seen but not yet
// terminated: exactly what summarizing its terminal event requires.
type liveJob struct {
	release  vtime.Time
	missed   bool
	detected bool
}

// NewAccumulator returns an empty accumulator using the default
// sketch error bound.
func NewAccumulator() *Accumulator { return NewAccumulatorEpsilon(DefaultSketchEpsilon) }

// NewAccumulatorEpsilon returns an empty accumulator whose percentile
// sketches carry rank-error bound eps.
func NewAccumulatorEpsilon(eps float64) *Accumulator {
	return &Accumulator{
		eps:    eps,
		tasks:  map[string]*TaskSummary{},
		sketch: map[string]*Sketch{},
		live:   map[jobKey]*liveJob{},
	}
}

// ensure returns the live record of job k, creating it — and counting
// the job as released, mirroring Analyze's distinct-job accounting —
// on first sight.
func (a *Accumulator) ensure(k jobKey, s *TaskSummary) *liveJob {
	if lj, ok := a.live[k]; ok {
		return lj
	}
	lj := &liveJob{}
	a.live[k] = lj
	s.Released++
	return lj
}

// summary returns task's summary, creating it on first sight.
func (a *Accumulator) summary(task string) *TaskSummary {
	s, ok := a.tasks[task]
	if !ok {
		s = &TaskSummary{Task: task}
		a.tasks[task] = s
	}
	return s
}

// Append consumes one trace event (trace.Sink).
func (a *Accumulator) Append(e trace.Event) {
	if e.Task == "" || e.Job < 0 {
		return
	}
	// Only the event kinds Analyze folds into job records may create
	// one here; scheduler detail (begin/preempt/resume, detector
	// releases) must not inflate the released count.
	switch e.Kind {
	case trace.JobRelease, trace.JobBegin, trace.JobEnd, trace.JobStopped,
		trace.DeadlineMiss, trace.FaultDetected, trace.AllowanceGrant:
	default:
		return
	}
	k := jobKey{e.Task, e.Job}
	s := a.summary(e.Task)
	lj := a.ensure(k, s)
	switch e.Kind {
	case trace.JobRelease:
		lj.release = e.At
	case trace.JobEnd:
		a.terminate(k, s, lj, e.At, false)
	case trace.JobStopped:
		a.terminate(k, s, lj, e.At, true)
	case trace.DeadlineMiss:
		if !lj.missed {
			lj.missed = true
			s.Missed++
			s.Failed++
		}
	case trace.FaultDetected:
		if !lj.detected {
			lj.detected = true
			s.Detected++
		}
	}
}

// terminate folds a job's terminal event into its task summary and
// releases the transient record.
func (a *Accumulator) terminate(k jobKey, s *TaskSummary, lj *liveJob, at vtime.Time, stopped bool) {
	resp := at.Sub(lj.release)
	if stopped {
		s.Stopped++
		if !lj.missed {
			// A deadline miss has already been counted as the job's
			// failure; otherwise the stop is it.
			s.Failed++
		}
	} else {
		s.Finished++
	}
	if resp > s.MaxResponse {
		s.MaxResponse = resp
	}
	if s.respN == 0 || resp < s.MinResponse {
		s.MinResponse = resp
	}
	s.respSum += resp
	s.respN++
	if !stopped && !lj.missed {
		// The percentile sketch covers successful responses only,
		// matching ResponsePercentile's exact path.
		sk, ok := a.sketch[k.task]
		if !ok {
			sk = NewSketch(a.eps)
			a.sketch[k.task] = sk
		}
		sk.Add(resp)
		if a.cycleSketch != nil {
			cs, ok := a.cycleSketch[k.task]
			if !ok {
				cs = NewSketch(a.eps)
				a.cycleSketch[k.task] = cs
			}
			cs.Add(resp)
		}
	}
	delete(a.live, k)
}

// CycleMark records a hyperperiod boundary (engine.CycleObserver): it
// snapshots every task's counters and starts a fresh per-cycle sketch,
// so that if the engine proves the next boundary revisits this exact
// state, the counter deltas and cycle sketches describe one full cycle.
func (a *Accumulator) CycleMark() {
	if a.cycleBase == nil {
		a.cycleBase = map[string]cycleBase{}
		a.cycleSketch = map[string]*Sketch{}
	}
	for name, s := range a.tasks {
		a.cycleBase[name] = cycleBase{
			released: s.Released, finished: s.Finished, stopped: s.Stopped,
			missed: s.Missed, failed: s.Failed, detected: s.Detected,
			respSum: s.respSum, respN: s.respN,
		}
	}
	for name := range a.cycleSketch {
		delete(a.cycleSketch, name)
	}
}

// ExtrapolateCycles folds k additional cycles of length h into the
// summaries (engine.CycleObserver), where one cycle is the delta since
// the last CycleMark: counters and response-moment sums scale
// linearly (so Released/Finished/…/MeanResponse stay exact — the
// simulated cycle already contributed the Min/Max extremes), the
// per-cycle sketch is scale-merged k-fold (ε-preserving, see
// Sketch.ScaleMerge) and folded into the main sketch with a single
// Merge — so percentile bounds widen by exactly one additive merge
// (2ε total), independent of k. Live jobs — the backlog crossing the
// boundary — are re-keyed into the post-jump cycle: job index
// advanced by k·jobsPerCycle of their task, release shifted by k·h,
// matching the engine's own state jump.
func (a *Accumulator) ExtrapolateCycles(k int64, h vtime.Duration, jobsPerCycle map[string]int64) {
	if k <= 0 || a.cycleBase == nil {
		return
	}
	ki := int(k)
	for name, s := range a.tasks {
		b := a.cycleBase[name]
		s.Released += ki * (s.Released - b.released)
		s.Finished += ki * (s.Finished - b.finished)
		s.Stopped += ki * (s.Stopped - b.stopped)
		s.Missed += ki * (s.Missed - b.missed)
		s.Failed += ki * (s.Failed - b.failed)
		s.Detected += ki * (s.Detected - b.detected)
		s.respSum += vtime.Duration(k) * (s.respSum - b.respSum)
		s.respN += k * (s.respN - b.respN)
	}
	for name, cs := range a.cycleSketch {
		if cs.N() == 0 {
			continue
		}
		cs.ScaleMerge(k)
		main, ok := a.sketch[name]
		if !ok {
			main = NewSketch(a.eps)
			a.sketch[name] = main
		}
		main.Merge(cs)
		delete(a.cycleSketch, name)
	}
	shift := vtime.Duration(k) * h
	remapped := make(map[jobKey]*liveJob, len(a.live))
	for key, lj := range a.live {
		lj.release = lj.release.Add(shift)
		remapped[jobKey{key.task, key.q + k*jobsPerCycle[key.task]}] = lj
	}
	a.live = remapped
}

// Live returns the number of jobs currently tracked as released but
// not terminated — the accumulator's only horizon-dependent state,
// bounded by the scheduling backlog.
func (a *Accumulator) Live() int { return len(a.live) }

// Report snapshots the accumulated summaries as a *Report. The report
// carries no per-job records (Jobs is nil); ResponsePercentile
// answers from the quantile sketches instead. Report may be called
// repeatedly (e.g. mid-run for progress and again at the end) — the
// returned report is a true snapshot: summaries and sketches are
// copies, unaffected by events accumulated afterwards.
func (a *Accumulator) Report() *Report {
	rep := &Report{
		Tasks:    make(map[string]*TaskSummary, len(a.tasks)),
		sketches: make(map[string]*Sketch, len(a.sketch)),
	}
	for name, s := range a.tasks {
		c := *s
		if c.respN > 0 {
			c.MeanResponse = c.respSum / vtime.Duration(c.respN)
		}
		rep.Tasks[name] = &c
	}
	for name, sk := range a.sketch {
		rep.sketches[name] = sk.Clone()
	}
	return rep
}
