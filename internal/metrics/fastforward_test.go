package metrics

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/trace"
	"repro/internal/vtime"
)

// TestScaleMergeErrorBoundProperty: ScaleMerge(k) must summarize the
// k-fold multiset within the sketch's ORIGINAL ε rank-error bound —
// the ε-preserving guarantee documented on the method, strictly
// tighter than the ε·k bound k−1 repeated Merges would give. Pinned
// across the same distributions as TestSketchErrorBoundProperty.
func TestScaleMergeErrorBoundProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	gens := map[string]func() vtime.Duration{
		"uniform":  func() vtime.Duration { return vtime.Duration(rng.Int63n(1_000_000)) },
		"exp":      func() vtime.Duration { return vtime.Duration(rng.ExpFloat64() * 50_000) },
		"bimodal":  func() vtime.Duration { return vtime.Duration(rng.Int63n(1000) + rng.Int63n(2)*900_000) },
		"constant": func() vtime.Duration { return vtime.Millis(29) },
	}
	for _, n := range []int{1, 10, 1000, 5000} {
		for _, k := range []int64{2, 7, 64} {
			for name, gen := range gens {
				values := make([]vtime.Duration, n)
				sk := NewSketch(DefaultSketchEpsilon)
				for i := range values {
					values[i] = gen()
					sk.Add(values[i])
				}
				sk.ScaleMerge(k)
				if sk.N() != int64(n)*k {
					t.Fatalf("%s n=%d k=%d: N = %d, want %d", name, n, k, sk.N(), int64(n)*k)
				}
				if sk.Epsilon() != DefaultSketchEpsilon {
					t.Fatalf("%s: ScaleMerge widened epsilon to %v", name, sk.Epsilon())
				}
				// The k-fold multiset: every observation repeated k times.
				folded := make([]vtime.Duration, 0, n*int(k))
				for _, v := range values {
					for i := int64(0); i < k; i++ {
						folded = append(folded, v)
					}
				}
				checkBound(t, name, folded, sk)
			}
		}
	}
}

// TestExtrapolateCyclesMatchesFullStream replays the fast-forward
// contract at the accumulator level: a transient, one simulated cycle
// bracketed by CycleMark, an ExtrapolateCycles(k) jump, and a tail
// must reproduce — exactly on every summary field and within the
// widened 2ε rank bound on percentiles — the accumulator fed the full
// expanded event stream. The workload includes a task ("b") whose
// jobs span cycle boundaries, exercising the live-backlog re-keying.
func TestExtrapolateCyclesMatchesFullStream(t *testing.T) {
	const (
		h         = 200 // cycle length (ms)
		t0        = 300 // first boundary: transient fully drained
		numCycles = 6   // cycles in the full run
		k         = 5   // cycles the fast-forward path extrapolates
	)
	// Transient: task a jobs 0..2 (responses 10/20/30ms), task b jobs
	// 0..1 released (b#0 terminated, b#1 still running at t0).
	transient := []trace.Event{
		ev(0, trace.JobRelease, "a", 0), ev(0, trace.JobRelease, "b", 0),
		ev(10, trace.JobEnd, "a", 0),
		ev(100, trace.JobRelease, "a", 1),
		ev(120, trace.JobEnd, "a", 1),
		ev(200, trace.JobRelease, "b", 1),
		ev(200, trace.JobRelease, "a", 2),
		ev(230, trace.JobEnd, "a", 2),
		ev(250, trace.JobEnd, "b", 0),
	}
	// One steady-state cycle starting at boundary 300+200j: task a
	// releases 2 jobs/cycle (responses 15/25ms), task b releases
	// 1 job/cycle with a 250ms response that crosses into the next
	// cycle (so one b job is always live at a boundary).
	cycle := func(j int64) []trace.Event {
		base := int64(t0 + h*j)
		return []trace.Event{
			ev(base, trace.JobRelease, "a", 3+2*j),
			ev(base+15, trace.JobEnd, "a", 3+2*j),
			ev(base+100, trace.JobRelease, "b", 2+j),
			ev(base+100, trace.JobRelease, "a", 4+2*j),
			ev(base+125, trace.JobEnd, "a", 4+2*j),
			ev(base+150, trace.JobEnd, "b", 1+j),
		}
	}
	tail := func() []trace.Event {
		base := int64(t0 + h*numCycles)
		return []trace.Event{
			ev(base, trace.JobRelease, "a", 3+2*numCycles),
			ev(base+15, trace.JobEnd, "a", 3+2*numCycles),
		}
	}

	full := NewAccumulator()
	for _, e := range transient {
		full.Append(e)
	}
	for j := int64(0); j < numCycles; j++ {
		for _, e := range cycle(j) {
			full.Append(e)
		}
	}
	for _, e := range tail() {
		full.Append(e)
	}

	ff := NewAccumulator()
	for _, e := range transient {
		ff.Append(e)
	}
	ff.CycleMark() // boundary t0, before boundary-instant events
	for _, e := range cycle(0) {
		ff.Append(e)
	}
	// Boundary t0+h fingerprints equal to t0: extrapolate k cycles.
	ff.ExtrapolateCycles(k, vtime.Millis(h), map[string]int64{"a": 2, "b": 1})
	for _, e := range tail() {
		ff.Append(e)
	}

	if full.Live() != ff.Live() {
		t.Fatalf("live backlog: full %d, fast-forward %d", full.Live(), ff.Live())
	}
	fullRep, ffRep := full.Report(), ff.Report()
	for _, task := range fullRep.TaskNames() {
		fs, xs := fullRep.Tasks[task], ffRep.Tasks[task]
		if xs == nil {
			t.Fatalf("task %s missing from fast-forward report", task)
		}
		if *fs != *xs {
			t.Errorf("task %s summary diverged:\nfull: %+v\nff:   %+v", task, *fs, *xs)
		}
	}
	// Percentiles: the ff sketch went through one ScaleMerge + Merge,
	// so its bound is 2ε; check against the exact successful responses
	// of the full stream.
	exact := map[string][]vtime.Duration{}
	addResp := func(task string, ms int64) {
		exact[task] = append(exact[task], vtime.Millis(ms))
	}
	addResp("a", 10)
	addResp("a", 20)
	addResp("a", 30)
	addResp("b", 250)
	for j := 0; j < numCycles; j++ {
		addResp("a", 15)
		addResp("a", 25)
		addResp("b", 250)
	}
	addResp("a", 15) // tail job
	for task, values := range exact {
		sorted := append([]vtime.Duration(nil), values...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		for _, p := range []float64{50, 90, 99} {
			got, ok := ffRep.ResponsePercentile(task, p)
			if !ok {
				t.Fatalf("%s: p%v query failed", task, p)
			}
			lo, hi := exactWindow(sorted, p/100, 2*DefaultSketchEpsilon)
			if got < lo || got > hi {
				t.Errorf("%s p%v: fast-forward sketch %v outside 2ε window [%v, %v]", task, p, got, lo, hi)
			}
		}
	}
}
