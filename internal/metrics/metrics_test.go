package metrics

import (
	"strings"
	"testing"

	"repro/internal/trace"
	"repro/internal/vtime"
)

func ev(atMS int64, k trace.Kind, task string, job int64) trace.Event {
	return trace.Event{At: vtime.AtMillis(atMS), Kind: k, Task: task, Job: job}
}

// buildLog constructs a small trace: tau1#0 completes in time, tau1#1
// is detected faulty and stopped, tau2#0 misses its deadline and
// completes late.
func buildLog() *trace.Log {
	l := trace.NewLog(32)
	l.Append(ev(0, trace.JobRelease, "tau1", 0))
	l.Append(ev(0, trace.JobBegin, "tau1", 0))
	l.Append(ev(29, trace.JobEnd, "tau1", 0))

	l.Append(ev(200, trace.JobRelease, "tau1", 1))
	l.Append(ev(200, trace.JobBegin, "tau1", 1))
	l.Append(ev(230, trace.DetectorRelease, "tau1", 1))
	l.Append(ev(230, trace.FaultDetected, "tau1", 1))
	l.Append(trace.Event{At: vtime.AtMillis(230), Kind: trace.AllowanceGrant, Task: "tau1", Job: 1, Arg: int64(vtime.Millis(33))})
	l.Append(ev(262, trace.JobStopped, "tau1", 1))

	l.Append(ev(0, trace.JobRelease, "tau2", 0))
	l.Append(ev(29, trace.JobBegin, "tau2", 0))
	l.Append(ev(120, trace.DeadlineMiss, "tau2", 0))
	l.Append(ev(127, trace.JobEnd, "tau2", 0))
	return l
}

func TestAnalyzeJobRecords(t *testing.T) {
	rep := Analyze(buildLog())
	j0, ok := rep.Job("tau1", 0)
	if !ok || j0.Failed() || j0.Response() != vtime.Millis(29) {
		t.Fatalf("tau1#0: %+v", j0)
	}
	j1, ok := rep.Job("tau1", 1)
	if !ok || !j1.Stopped || !j1.Failed() || !j1.Detected {
		t.Fatalf("tau1#1: %+v", j1)
	}
	if j1.Granted != vtime.Millis(33) {
		t.Errorf("tau1#1 grant = %v", j1.Granted)
	}
	if j1.Response() != vtime.Millis(62) {
		t.Errorf("tau1#1 response = %v, want 62ms", j1.Response())
	}
	j2, ok := rep.Job("tau2", 0)
	if !ok || !j2.MissedDeadline || j2.Stopped || !j2.Failed() {
		t.Fatalf("tau2#0: %+v", j2)
	}
	if _, ok := rep.Job("ghost", 0); ok {
		t.Error("unknown job lookup must fail")
	}
}

func TestTaskSummaries(t *testing.T) {
	rep := Analyze(buildLog())
	s1 := rep.Tasks["tau1"]
	if s1.Released != 2 || s1.Finished != 1 || s1.Stopped != 1 || s1.Failed != 1 || s1.Detected != 1 {
		t.Fatalf("tau1 summary: %+v", s1)
	}
	if s1.MaxResponse != vtime.Millis(62) {
		t.Errorf("tau1 max response = %v", s1.MaxResponse)
	}
	if want := (vtime.Millis(29) + vtime.Millis(62)) / 2; s1.MeanResponse != want {
		t.Errorf("tau1 mean response = %v, want %v", s1.MeanResponse, want)
	}
	if got := s1.SuccessRatio(); got != 0.5 {
		t.Errorf("tau1 success ratio = %v, want 0.5", got)
	}
	s2 := rep.Tasks["tau2"]
	if s2.Missed != 1 || s2.Failed != 1 || s2.Finished != 1 {
		t.Fatalf("tau2 summary: %+v", s2)
	}
}

func TestSystemAggregates(t *testing.T) {
	rep := Analyze(buildLog())
	if rep.TotalReleased() != 3 || rep.TotalFailed() != 2 {
		t.Fatalf("aggregates: released %d failed %d", rep.TotalReleased(), rep.TotalFailed())
	}
	want := float64(3-2) / 3
	if rep.SuccessRatio() != want {
		t.Errorf("success ratio = %v, want %v", rep.SuccessRatio(), want)
	}
	names := rep.TaskNames()
	if len(names) != 2 || names[0] != "tau1" || names[1] != "tau2" {
		t.Errorf("TaskNames = %v", names)
	}
}

func TestEmptyLog(t *testing.T) {
	rep := Analyze(trace.NewLog(0))
	if rep.TotalReleased() != 0 || rep.SuccessRatio() != 1 {
		t.Fatalf("empty log: %+v", rep)
	}
	var zero TaskSummary
	if zero.SuccessRatio() != 1 {
		t.Error("zero-release task must have success ratio 1")
	}
}

func TestSystemEventsIgnored(t *testing.T) {
	l := trace.NewLog(4)
	l.Append(trace.Event{At: 0, Kind: trace.TaskAdded, Task: "dyn", Job: -1})
	l.Append(trace.Event{At: 0, Kind: trace.TaskRemoved, Task: "", Job: -1})
	rep := Analyze(l)
	if rep.TotalReleased() != 0 {
		t.Fatalf("system events must not create job records: %+v", rep.Jobs)
	}
}

func TestRender(t *testing.T) {
	out := Analyze(buildLog()).Render()
	for _, want := range []string{"tau1", "tau2", "success ratio"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q:\n%s", want, out)
		}
	}
}

func TestPendingJobAtTraceEnd(t *testing.T) {
	l := trace.NewLog(4)
	l.Append(ev(0, trace.JobRelease, "a", 0))
	l.Append(ev(0, trace.JobBegin, "a", 0))
	rep := Analyze(l)
	j, ok := rep.Job("a", 0)
	if !ok {
		t.Fatal("pending job missing")
	}
	if j.Response() != 0 {
		t.Error("pending job must have zero response")
	}
	if rep.Tasks["a"].Finished != 0 {
		t.Error("pending job must not count as finished")
	}
}

func TestResponsePercentile(t *testing.T) {
	l := trace.NewLog(64)
	for i := int64(0); i < 10; i++ {
		l.Append(trace.Event{At: vtime.AtMillis(i * 100), Kind: trace.JobRelease, Task: "a", Job: i})
		l.Append(trace.Event{At: vtime.AtMillis(i*100 + i + 1), Kind: trace.JobEnd, Task: "a", Job: i})
	}
	rep := Analyze(l)
	// Responses are 1..10 ms.
	if p50, ok := rep.ResponsePercentile("a", 50); !ok || p50 != vtime.Millis(5) {
		t.Errorf("p50 = %v, %v; want 5ms", p50, ok)
	}
	if p100, ok := rep.ResponsePercentile("a", 100); !ok || p100 != vtime.Millis(10) {
		t.Errorf("p100 = %v, %v; want 10ms", p100, ok)
	}
	if p1, ok := rep.ResponsePercentile("a", 1); !ok || p1 != vtime.Millis(1) {
		t.Errorf("p1 = %v, %v; want 1ms", p1, ok)
	}
	if _, ok := rep.ResponsePercentile("a", 0); ok {
		t.Error("p=0 must be rejected")
	}
	if _, ok := rep.ResponsePercentile("a", 101); ok {
		t.Error("p>100 must be rejected")
	}
	if _, ok := rep.ResponsePercentile("ghost", 50); ok {
		t.Error("unknown task must report no percentile")
	}
	// Boundary values of the open-closed (0, 100] domain.
	if _, ok := rep.ResponsePercentile("a", -0.5); ok {
		t.Error("negative p must be rejected")
	}
	if p, ok := rep.ResponsePercentile("a", 0.0001); !ok || p != vtime.Millis(1) {
		t.Errorf("tiny positive p = %v, %v; want the minimum 1ms", p, ok)
	}
	if p, ok := rep.ResponsePercentile("a", 100); !ok || p != vtime.Millis(10) {
		t.Errorf("p=100 = %v, %v; want the maximum 10ms", p, ok)
	}
}

// TestResponsePercentileExcludesFailedJobs: stopped jobs and deadline
// misses do not contribute — their "responses" describe the failure
// instant, not delivered service — and a task whose jobs all failed
// (or never finished) has no percentile at all.
func TestResponsePercentileExcludesFailedJobs(t *testing.T) {
	l := trace.NewLog(32)
	// a: responses 1..4 ms successful, plus a stopped job (9 ms) and
	// a missed-but-finished job (8 ms) that must not count.
	for i := int64(0); i < 4; i++ {
		l.Append(trace.Event{At: vtime.AtMillis(i * 100), Kind: trace.JobRelease, Task: "a", Job: i})
		l.Append(trace.Event{At: vtime.AtMillis(i*100 + i + 1), Kind: trace.JobEnd, Task: "a", Job: i})
	}
	l.Append(ev(400, trace.JobRelease, "a", 4))
	l.Append(ev(409, trace.JobStopped, "a", 4))
	l.Append(ev(500, trace.JobRelease, "a", 5))
	l.Append(ev(505, trace.DeadlineMiss, "a", 5))
	l.Append(ev(508, trace.JobEnd, "a", 5))
	// b: only a stopped job — no successful responses at all.
	l.Append(ev(0, trace.JobRelease, "b", 0))
	l.Append(ev(7, trace.JobStopped, "b", 0))
	// c: released but never terminated.
	l.Append(ev(0, trace.JobRelease, "c", 0))

	rep := Analyze(l)
	if p, ok := rep.ResponsePercentile("a", 100); !ok || p != vtime.Millis(4) {
		t.Errorf("a p100 = %v, %v; want 4ms (failed responses excluded)", p, ok)
	}
	if p, ok := rep.ResponsePercentile("a", 50); !ok || p != vtime.Millis(2) {
		t.Errorf("a p50 = %v, %v; want 2ms", p, ok)
	}
	for _, task := range []string{"b", "c"} {
		if _, ok := rep.ResponsePercentile(task, 50); ok {
			t.Errorf("task %s has no successful jobs: percentile must report false", task)
		}
	}
	// The streaming path agrees: same exclusions, sketch-backed.
	acc := NewAccumulator()
	for _, e := range l.Events() {
		acc.Append(e)
	}
	srep := acc.Report()
	if p, ok := srep.ResponsePercentile("a", 100); !ok || p != vtime.Millis(4) {
		t.Errorf("streaming a p100 = %v, %v; want 4ms", p, ok)
	}
	for _, task := range []string{"b", "c"} {
		if _, ok := srep.ResponsePercentile(task, 50); ok {
			t.Errorf("streaming: task %s must report no percentile", task)
		}
	}
}
