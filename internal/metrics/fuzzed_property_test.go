package metrics_test

// The cross-pipeline property on *fuzzed* workloads: for generator
// scenarios whose runs the invariant oracle has vetted, feeding the
// retained trace through a fresh Accumulator reproduces Analyze's
// report field for field. This extends PR 3's single cross-mode test
// from one committed scenario to the open scenario space.

import (
	"testing"

	"repro/internal/metrics"
	"repro/internal/verify/gen"
	"repro/sim"
	"repro/sim/scenario"
)

func TestAccumulatorMatchesAnalyzeOnFuzzedTraces(t *testing.T) {
	const seeds = 20
	checked := 0
	for seed := uint64(100); seed < 100+seeds; seed++ {
		sc := gen.Scenario(seed)
		// Force retained collection so the full log exists to replay;
		// the oracle stays armed, so only axiom-clean traces feed the
		// comparison.
		sc.Collect = &scenario.Collect{Mode: scenario.CollectRetain}
		sc.Verify = true
		sys, err := sim.FromScenario(sc)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		res, err := sys.Run()
		if err != nil {
			t.Fatalf("seed %d: oracle rejected the run: %v", seed, err)
		}
		want := metrics.Analyze(res.Log)
		acc := metrics.NewAccumulator()
		for _, e := range res.Log.Events() {
			acc.Append(e)
		}
		got := acc.Report()
		if len(got.Tasks) != len(want.Tasks) {
			t.Fatalf("seed %d: %d tasks streamed vs %d analyzed", seed, len(got.Tasks), len(want.Tasks))
		}
		for name, w := range want.Tasks {
			g := got.Tasks[name]
			if g == nil {
				t.Fatalf("seed %d: task %s missing from streamed report", seed, name)
			}
			if g.Released != w.Released || g.Finished != w.Finished || g.Stopped != w.Stopped ||
				g.Missed != w.Missed || g.Failed != w.Failed || g.Detected != w.Detected ||
				g.MinResponse != w.MinResponse || g.MaxResponse != w.MaxResponse ||
				g.MeanResponse != w.MeanResponse {
				t.Errorf("seed %d task %s diverges:\nstream  %+v\nanalyze %+v", seed, name, *g, *w)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("property checked zero tasks")
	}
}
