// Package rtsj emulates the slice of the Real-Time Specification for
// Java that the paper builds on, over the repository's virtual clock:
// RealtimeThread with WaitForNextPeriod, periodic release parameters,
// the PriorityScheduler with a *working* feasibility test (the
// methods the paper found deficient in RI and missing in jRate), the
// PeriodicTimer used by the detectors, and the paper's
// RealtimeThreadExtended with its overloaded start() and
// waitForNextPeriod() (§3.1).
//
// Threads are real goroutines scheduled cooperatively in virtual
// time: the VM resumes exactly one goroutine at a time and a resumed
// goroutine always returns control by calling Compute,
// WaitForNextPeriod or returning — a synchronous handoff that makes
// runs fully deterministic despite true concurrency. Go's garbage
// collector never pauses the *virtual* clock, which is precisely why
// the reproduction simulates time instead of using wall time (see
// DESIGN.md).
package rtsj

import (
	"fmt"
	"sync"

	"repro/internal/taskset"
	"repro/internal/trace"
	"repro/internal/vtime"
)

// VMConfig parameterizes the virtual machine.
type VMConfig struct {
	// Horizon ends the run; threads blocked at the horizon are
	// released with a false WaitForNextPeriod result so their run
	// loops exit.
	Horizon vtime.Duration
	// StopPoll is the §4.1 stop-flag polling granularity (0 = 1 ms).
	StopPoll vtime.Duration
	// TimerResolution quantizes PeriodicTimer first releases upward,
	// like jRate's 10 ms timer (0 = exact).
	TimerResolution vtime.Duration
	// Log receives trace events (fresh log if nil).
	Log *trace.Log
}

// request is a thread → VM transition.
type request struct {
	th   *RealtimeThread
	kind reqKind
	d    vtime.Duration // Compute amount
}

type reqKind uint8

const (
	reqCompute reqKind = iota
	reqWait
	reqExit
)

// resumeMsg is a VM → thread transition.
type resumeMsg struct {
	// ok is false when the VM is shutting down (WaitForNextPeriod
	// returns false / Compute aborts).
	ok bool
}

// VM is the virtual machine instance.
type VM struct {
	cfg VMConfig
	log *trace.Log

	threads []*RealtimeThread
	timers  []*PeriodicTimer
	req     chan request

	heap []vmEvent
	seq  uint64
	now  vtime.Time

	running bool
	wg      sync.WaitGroup
}

type vmEvent struct {
	at  vtime.Time
	seq uint64
	fn  func(now vtime.Time)
}

// NewVM builds a virtual machine.
func NewVM(cfg VMConfig) *VM {
	if cfg.StopPoll <= 0 {
		cfg.StopPoll = vtime.Millisecond
	}
	if cfg.Log == nil {
		cfg.Log = trace.NewLog(4096)
	}
	return &VM{cfg: cfg, log: cfg.Log, req: make(chan request)}
}

// Log returns the VM's trace log.
func (vm *VM) Log() *trace.Log { return vm.log }

// Now returns the current virtual instant (the RTSJ Clock).
func (vm *VM) Now() vtime.Time { return vm.now }

// schedule enqueues a VM event.
func (vm *VM) schedule(at vtime.Time, fn func(now vtime.Time)) {
	if at < vm.now {
		at = vm.now
	}
	vm.seq++
	vm.heap = append(vm.heap, vmEvent{at, vm.seq, fn})
	i := len(vm.heap) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !vm.lessEv(i, p) {
			break
		}
		vm.heap[i], vm.heap[p] = vm.heap[p], vm.heap[i]
		i = p
	}
}

func (vm *VM) lessEv(i, j int) bool {
	if vm.heap[i].at != vm.heap[j].at {
		return vm.heap[i].at < vm.heap[j].at
	}
	return vm.heap[i].seq < vm.heap[j].seq
}

func (vm *VM) popEv() (vmEvent, bool) {
	if len(vm.heap) == 0 {
		return vmEvent{}, false
	}
	top := vm.heap[0]
	last := len(vm.heap) - 1
	vm.heap[0] = vm.heap[last]
	vm.heap = vm.heap[:last]
	n := last
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < n && vm.lessEv(l, s) {
			s = l
		}
		if r < n && vm.lessEv(r, s) {
			s = r
		}
		if s == i {
			break
		}
		vm.heap[i], vm.heap[s] = vm.heap[s], vm.heap[i]
		i = s
	}
	return top, true
}

// TaskSet derives the analytic task set from the started threads, for
// the PriorityScheduler feasibility methods.
func (vm *VM) TaskSet() (*taskset.Set, error) {
	tasks := make([]taskset.Task, 0, len(vm.threads))
	for _, th := range vm.threads {
		if !th.started {
			continue
		}
		tasks = append(tasks, th.task())
	}
	return taskset.New(tasks...)
}

// Run executes the virtual machine until the horizon. Every started
// thread's goroutine is guaranteed to have exited when Run returns.
func (vm *VM) Run() error {
	if vm.running {
		return fmt.Errorf("rtsj: VM already ran")
	}
	vm.running = true
	horizon := vtime.Time(vm.cfg.Horizon)
	if horizon <= 0 {
		return fmt.Errorf("rtsj: horizon must be positive")
	}
	for _, tm := range vm.timers {
		tm.arm(vm)
	}
	for _, th := range vm.threads {
		th.armReleases(vm)
	}
	for {
		vm.drainTruncated()
		run := vm.pickRunnable()
		var nextEv vtime.Time = vtime.Forever
		if len(vm.heap) > 0 {
			nextEv = vm.heap[0].at
		}
		if run == nil {
			// Idle: jump to the next event.
			if nextEv == vtime.Forever || nextEv > horizon {
				break
			}
			ev, _ := vm.popEv()
			vm.now = ev.at
			ev.fn(ev.at)
			continue
		}
		// Advance until the running thread's compute completes or an
		// event intervenes (possibly preempting it).
		done := vm.now.Add(run.remaining)
		if nextEv < done {
			if nextEv > horizon {
				break
			}
			ev, _ := vm.popEv()
			elapsed := ev.at.Sub(vm.now)
			vm.burst(run, vm.now, ev.at)
			run.remaining -= elapsed
			run.consumed += elapsed
			vm.now = ev.at
			ev.fn(ev.at)
			continue
		}
		if done > horizon {
			break
		}
		vm.burst(run, vm.now, done)
		run.consumed += run.remaining
		run.remaining = 0
		run.computing = false
		vm.now = done
		// Resume the thread and wait for its next call.
		vm.dispatch(run, resumeMsg{ok: !run.stopTruncated})
	}
	vm.shutdown(horizon)
	return nil
}

// burst records an execution interval in the trace as begin/resume +
// preempt pairs reconstructed by the chart package.
func (vm *VM) burst(th *RealtimeThread, from, to vtime.Time) {
	if to <= from {
		return
	}
	kind := trace.JobResume
	if !th.begunJob {
		th.begunJob = true
		kind = trace.JobBegin
	}
	vm.log.Append(trace.Event{At: from, Kind: kind, Task: th.name, Job: th.jobIndex})
	vm.log.Append(trace.Event{At: to, Kind: trace.JobPreempt, Task: th.name, Job: th.jobIndex})
}

// dispatch resumes a thread goroutine and processes its next request,
// returning once the thread has blocked again (or exited).
func (vm *VM) dispatch(th *RealtimeThread, msg resumeMsg) {
	th.gate <- msg
	r := <-vm.req
	vm.handle(r)
}

// handle processes one thread request.
func (vm *VM) handle(r request) {
	th := r.th
	switch r.kind {
	case reqCompute:
		th.remaining = r.d
		th.computeStart = th.consumed
		th.stopTruncated = false
		th.computing = true
		if th.stopFlag && r.d > 0 {
			// Stop already requested: the poll at the loop top sees
			// it after at most one poll granule.
			vm.truncateForStop(th)
		}
		if th.remaining <= 0 {
			// Nothing to execute (zero compute, or truncated at the
			// call boundary): resume immediately.
			th.computing = false
			vm.dispatch(th, resumeMsg{ok: !th.stopTruncated})
		}
	case reqWait:
		vm.completeJob(th)
		if th.pendingReleases > 0 {
			th.pendingReleases--
			vm.beginJob(th)
			// Release already pending: return immediately.
			vm.dispatch(th, resumeMsg{ok: true})
			return
		}
		th.waiting = true
	case reqExit:
		th.dead = true
	}
}

// drainTruncated resumes any thread whose in-flight compute was
// truncated to zero by a stop request raised from an event handler —
// the thread's poll observed the flag with no work left to burn.
func (vm *VM) drainTruncated() {
	for {
		var hit *RealtimeThread
		for _, th := range vm.threads {
			if th.started && !th.dead && !th.waiting && th.computing && th.remaining <= 0 {
				hit = th
				break
			}
		}
		if hit == nil {
			return
		}
		hit.computing = false
		vm.dispatch(hit, resumeMsg{ok: !hit.stopTruncated})
	}
}

// pickRunnable returns the highest-priority thread with pending
// compute (RTSJ PriorityScheduler: larger value first; FIFO within a
// priority by start order).
func (vm *VM) pickRunnable() *RealtimeThread {
	var best *RealtimeThread
	for _, th := range vm.threads {
		if !th.started || th.dead || th.waiting || th.remaining <= 0 {
			continue
		}
		if best == nil || th.priority > best.priority {
			best = th
		}
	}
	return best
}

// completeJob marks the current job finished (computeAfterPeriodic).
func (vm *VM) completeJob(th *RealtimeThread) {
	if !th.inJob {
		return
	}
	th.inJob = false
	kind := trace.JobEnd
	if th.stopFlag && th.stopJob == th.jobIndex && th.stopTruncated {
		kind = trace.JobStopped
	}
	vm.log.Append(trace.Event{At: vm.now, Kind: kind, Task: th.name, Job: th.jobIndex})
	th.finishedJobs++
	if th.onJobEnd != nil {
		th.onJobEnd(vm.now, th.jobIndex, kind == trace.JobStopped)
	}
}

// beginJob starts the next job (computeBeforePeriodic).
func (vm *VM) beginJob(th *RealtimeThread) {
	th.jobIndex++
	th.inJob = true
	th.begunJob = false
	th.stopTruncated = false
	if th.stopJob != th.jobIndex {
		th.stopFlag = false
	}
	if th.onJobBegin != nil {
		th.onJobBegin(vm.now, th.jobIndex)
	}
}

// truncateForStop shortens the thread's current compute to the next
// poll boundary relative to the compute call's start.
func (vm *VM) truncateForStop(th *RealtimeThread) {
	sinceCall := th.consumed - th.computeStart
	boundary := sinceCall.Ceil(vm.cfg.StopPoll)
	if boundary < th.remaining+sinceCall {
		th.remaining = boundary - sinceCall
		th.stopTruncated = true
	}
}

// shutdown releases every blocked or live goroutine so Run can join
// them deterministically.
func (vm *VM) shutdown(horizon vtime.Time) {
	vm.now = horizon
	for {
		progressed := false
		for _, th := range vm.threads {
			if !th.started || th.dead {
				continue
			}
			progressed = true
			th.waiting = false
			th.remaining = 0
			th.computing = false
			vm.dispatch(th, resumeMsg{ok: false})
			break // handle may have changed states; rescan
		}
		if !progressed {
			break
		}
	}
	vm.wg.Wait()
}
