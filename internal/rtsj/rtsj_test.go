package rtsj

import (
	"testing"

	"repro/internal/metrics"
	"repro/internal/trace"
	"repro/internal/vtime"
)

func ms(v int64) vtime.Duration { return vtime.Millis(v) }
func at(v int64) vtime.Time     { return vtime.AtMillis(v) }

// periodicLogic is the idiomatic RTSJ run() body: wait, compute the
// job's cost, repeat.
func periodicLogic(cost func(q int64) vtime.Duration) Logic {
	return func(t *RealtimeThread) {
		for t.WaitForNextPeriod() {
			t.Compute(cost(t.JobIndex()))
		}
	}
}

func fixed(d vtime.Duration) func(int64) vtime.Duration {
	return func(int64) vtime.Duration { return d }
}

func TestSingleThreadPeriodicExecution(t *testing.T) {
	vm := NewVM(VMConfig{Horizon: ms(100)})
	th := vm.NewRealtimeThread("a", PriorityParameters{5},
		PeriodicParameters{Period: ms(10), Cost: ms(3), Deadline: ms(10)},
		periodicLogic(fixed(ms(3))))
	if err := th.Start(); err != nil {
		t.Fatal(err)
	}
	if err := vm.Run(); err != nil {
		t.Fatal(err)
	}
	rep := metrics.Analyze(vm.Log())
	s := rep.Tasks["a"]
	if s == nil || s.Finished < 9 {
		t.Fatalf("thread a finished %v jobs, want >= 9", s)
	}
	if s.Failed != 0 {
		t.Fatalf("fault-free thread failed %d jobs", s.Failed)
	}
	if s.MaxResponse != ms(3) {
		t.Errorf("max response %v, want 3ms", s.MaxResponse)
	}
}

func TestDoubleStartRejected(t *testing.T) {
	vm := NewVM(VMConfig{Horizon: ms(10)})
	th := vm.NewRealtimeThread("a", PriorityParameters{1},
		PeriodicParameters{Period: ms(10), Cost: ms(1), Deadline: ms(10)},
		periodicLogic(fixed(ms(1))))
	if err := th.Start(); err != nil {
		t.Fatal(err)
	}
	if err := th.Start(); err == nil {
		t.Fatal("second Start must fail")
	}
	if err := vm.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestPreemptionAcrossThreads(t *testing.T) {
	// Table 2 critical instant: three threads released together
	// complete at 29, 58, 87 ms.
	vm := NewVM(VMConfig{Horizon: ms(200)})
	mk := func(name string, prio int, period int64) *RealtimeThread {
		return vm.NewRealtimeThread(name, PriorityParameters{prio},
			PeriodicParameters{Period: ms(period), Cost: ms(29), Deadline: ms(120)},
			periodicLogic(fixed(ms(29))))
	}
	t1, t2, t3 := mk("tau1", 20, 200), mk("tau2", 18, 250), mk("tau3", 16, 1500)
	for _, th := range []*RealtimeThread{t1, t2, t3} {
		if err := th.Start(); err != nil {
			t.Fatal(err)
		}
	}
	if err := vm.Run(); err != nil {
		t.Fatal(err)
	}
	rep := metrics.Analyze(vm.Log())
	want := map[string]vtime.Time{"tau1": at(29), "tau2": at(58), "tau3": at(87)}
	for name, end := range want {
		j, ok := rep.Job(name, 0)
		if !ok {
			t.Fatalf("%s#0 missing from trace", name)
		}
		if j.End != end {
			t.Errorf("%s#0 end %v, want %v", name, j.End, end)
		}
	}
}

func TestVMTaskSetAndScheduler(t *testing.T) {
	vm := NewVM(VMConfig{Horizon: ms(100)})
	sched := NewScheduler()
	th := vm.NewRealtimeThread("a", PriorityParameters{9},
		PeriodicParameters{Period: ms(10), Cost: ms(4), Deadline: ms(10)},
		periodicLogic(fixed(ms(4))))
	sched.AddToFeasibility(th)
	if err := th.Start(); err != nil {
		t.Fatal(err)
	}
	feasible, err := sched.IsFeasible()
	if err != nil || !feasible {
		t.Fatalf("IsFeasible = %v, %v; want feasible", feasible, err)
	}
	wcrts, err := sched.ResponseTimes()
	if err != nil || wcrts[0] != ms(4) {
		t.Fatalf("ResponseTimes = %v, %v", wcrts, err)
	}
	set, err := vm.TaskSet()
	if err != nil || set.Len() != 1 {
		t.Fatalf("TaskSet: %v, %v", set, err)
	}
	// Remove and verify the feasibility set empties.
	sched.RemoveFromFeasibility(th)
	if _, err := sched.IsFeasible(); err == nil {
		t.Fatal("empty feasibility set must error")
	}
	if err := vm.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSchedulerDetectsInfeasible(t *testing.T) {
	vm := NewVM(VMConfig{Horizon: ms(100)})
	sched := NewScheduler()
	a := vm.NewRealtimeThread("a", PriorityParameters{9},
		PeriodicParameters{Period: ms(10), Cost: ms(6), Deadline: ms(10)}, periodicLogic(fixed(ms(6))))
	b := vm.NewRealtimeThread("b", PriorityParameters{1},
		PeriodicParameters{Period: ms(10), Cost: ms(6), Deadline: ms(10)}, periodicLogic(fixed(ms(6))))
	sched.AddToFeasibility(a)
	sched.AddToFeasibility(b)
	feasible, err := sched.IsFeasible()
	if err != nil {
		t.Fatal(err)
	}
	if feasible {
		t.Fatal("U = 1.2 must be infeasible")
	}
}

// TestExtendedReproducesFigure5: the full paper pipeline through the
// RTSJ API — extended threads, detectors from the overloaded start(),
// stop treatment — reproduces the Figure 5 outcomes.
func TestExtendedReproducesFigure5(t *testing.T) {
	vm := NewVM(VMConfig{Horizon: ms(1500), TimerResolution: ms(10)})
	sched := NewScheduler()
	logic := func(extra func(q int64) vtime.Duration) func(*RealtimeThreadExtended) {
		return func(t *RealtimeThreadExtended) {
			for t.WaitForNextPeriod() {
				t.Compute(ms(29) + extra(t.JobIndex()))
			}
		}
	}
	none := func(int64) vtime.Duration { return 0 }
	faulty := func(q int64) vtime.Duration {
		if q == 5 {
			return ms(40)
		}
		return 0
	}
	t1 := vm.NewRealtimeThreadExtended("tau1", PriorityParameters{20},
		PeriodicParameters{Period: ms(200), Cost: ms(29), Deadline: ms(70)}, sched, ExtStop, logic(faulty))
	t2 := vm.NewRealtimeThreadExtended("tau2", PriorityParameters{18},
		PeriodicParameters{Period: ms(250), Cost: ms(29), Deadline: ms(120)}, sched, ExtStop, logic(none))
	t3 := vm.NewRealtimeThreadExtended("tau3", PriorityParameters{16},
		PeriodicParameters{Start: ms(1000), Period: ms(1500), Cost: ms(29), Deadline: ms(120)}, sched, ExtStop, logic(none))
	for _, th := range []*RealtimeThreadExtended{t1, t2, t3} {
		if err := th.Start(); err != nil {
			t.Fatal(err)
		}
	}
	// The overloaded start() computed the paper's WCRTs.
	if t1.WCRT() != ms(29) || t2.WCRT() != ms(58) || t3.WCRT() != ms(87) {
		t.Fatalf("WCRTs = %v/%v/%v, want 29/58/87", t1.WCRT(), t2.WCRT(), t3.WCRT())
	}
	if err := vm.Run(); err != nil {
		t.Fatal(err)
	}
	rep := metrics.Analyze(vm.Log())
	j1, _ := rep.Job("tau1", 5)
	if !j1.Stopped || j1.End != at(1030) {
		t.Errorf("tau1#5 stopped=%v end=%v, want stopped at 1030ms", j1.Stopped, j1.End)
	}
	j2, _ := rep.Job("tau2", 4)
	if j2.Failed() || j2.End != at(1059) {
		t.Errorf("tau2#4 end=%v failed=%v, want 1059ms met", j2.End, j2.Failed())
	}
	j3, _ := rep.Job("tau3", 0)
	if j3.Failed() || j3.End != at(1088) {
		t.Errorf("tau3#0 end=%v failed=%v, want 1088ms met", j3.End, j3.Failed())
	}
	if t1.Detections() == 0 {
		t.Error("tau1's detector must have fired")
	}
	if t2.Detections()+t3.Detections() != 0 {
		t.Errorf("tau2/tau3 detectors fired %d/%d times, want 0 under stop", t2.Detections(), t3.Detections())
	}
}

// TestExtendedSystemAllowanceFigure7: the RTSJ pipeline under the
// system allowance stops τ1 at WCRT+33 and lets τ2/τ3 finish at
// 1091/1120 exactly as Figure 7.
func TestExtendedSystemAllowanceFigure7(t *testing.T) {
	vm := NewVM(VMConfig{Horizon: ms(1500), TimerResolution: ms(10)})
	sched := NewScheduler()
	faulty := func(tt *RealtimeThreadExtended) {
		for tt.WaitForNextPeriod() {
			extra := vtime.Duration(0)
			if tt.JobIndex() == 5 {
				extra = ms(40)
			}
			tt.Compute(ms(29) + extra)
		}
	}
	clean := func(tt *RealtimeThreadExtended) {
		for tt.WaitForNextPeriod() {
			tt.Compute(ms(29))
		}
	}
	t1 := vm.NewRealtimeThreadExtended("tau1", PriorityParameters{20},
		PeriodicParameters{Period: ms(200), Cost: ms(29), Deadline: ms(70)}, sched, ExtSystemAllowance, faulty)
	t2 := vm.NewRealtimeThreadExtended("tau2", PriorityParameters{18},
		PeriodicParameters{Period: ms(250), Cost: ms(29), Deadline: ms(120)}, sched, ExtSystemAllowance, clean)
	t3 := vm.NewRealtimeThreadExtended("tau3", PriorityParameters{16},
		PeriodicParameters{Start: ms(1000), Period: ms(1500), Cost: ms(29), Deadline: ms(120)}, sched, ExtSystemAllowance, clean)
	for _, th := range []*RealtimeThreadExtended{t1, t2, t3} {
		if err := th.Start(); err != nil {
			t.Fatal(err)
		}
	}
	if err := vm.Run(); err != nil {
		t.Fatal(err)
	}
	rep := metrics.Analyze(vm.Log())
	j1, _ := rep.Job("tau1", 5)
	// Paper Figure 7: τ1 stopped exactly 33 ms after its WCRT.
	if !j1.Stopped || j1.End != at(1062) {
		t.Errorf("tau1#5 stopped=%v end=%v, want stopped at 1062ms (WCRT+33)", j1.Stopped, j1.End)
	}
	j2, _ := rep.Job("tau2", 4)
	j3, _ := rep.Job("tau3", 0)
	if j2.Failed() || j2.End != at(1091) {
		t.Errorf("tau2#4 end=%v failed=%v, want completed 1091ms", j2.End, j2.Failed())
	}
	if j3.Failed() || j3.End != at(1120) {
		t.Errorf("tau3#0 end=%v failed=%v, want completed exactly at its 1120ms deadline", j3.End, j3.Failed())
	}
	if t1.Detections() == 0 {
		t.Error("tau1's detector must have fired")
	}
}

// TestStopFlagPollGranularity: a stop raised mid-compute truncates at
// the next poll boundary of the compute call.
func TestStopFlagPollGranularity(t *testing.T) {
	vm := NewVM(VMConfig{Horizon: ms(100), StopPoll: ms(4)})
	th := vm.NewRealtimeThread("a", PriorityParameters{1},
		PeriodicParameters{Period: ms(50), Cost: ms(30), Deadline: ms(50)},
		periodicLogic(fixed(ms(30))))
	if err := th.Start(); err != nil {
		t.Fatal(err)
	}
	vm.schedule(at(10), func(now vtime.Time) { th.requestStop(vm, 0, now) })
	if err := vm.Run(); err != nil {
		t.Fatal(err)
	}
	rep := metrics.Analyze(vm.Log())
	j, _ := rep.Job("a", 0)
	if !j.Stopped || j.End != at(12) {
		t.Errorf("stopped=%v end=%v, want stopped at 12ms (next 4ms poll)", j.Stopped, j.End)
	}
	// The next job is unaffected (flag cleared on job change).
	j1, ok := rep.Job("a", 1)
	if !ok || j1.Stopped {
		t.Errorf("job 1 must run normally: %+v", j1)
	}
}

func TestZeroComputeAndNegativeCompute(t *testing.T) {
	vm := NewVM(VMConfig{Horizon: ms(30)})
	calls := 0
	th := vm.NewRealtimeThread("a", PriorityParameters{1},
		PeriodicParameters{Period: ms(10), Cost: ms(1), Deadline: ms(10)},
		func(t *RealtimeThread) {
			for t.WaitForNextPeriod() {
				if !t.Compute(0) {
					return
				}
				if !t.Compute(-5) {
					return
				}
				calls++
			}
		})
	if err := th.Start(); err != nil {
		t.Fatal(err)
	}
	if err := vm.Run(); err != nil {
		t.Fatal(err)
	}
	if calls < 2 {
		t.Fatalf("zero-cost computes executed %d loops, want >= 2", calls)
	}
}

func TestPeriodicTimerQuantization(t *testing.T) {
	vm := NewVM(VMConfig{Horizon: ms(100), TimerResolution: ms(10)})
	var fires []vtime.Time
	vm.NewPeriodicTimer(ms(29), ms(25), func(now vtime.Time) {
		fires = append(fires, now)
	})
	if err := vm.Run(); err != nil {
		t.Fatal(err)
	}
	// First release quantized 29 → 30, then every 25 ms.
	want := []vtime.Time{at(30), at(55), at(80)}
	if len(fires) < len(want) {
		t.Fatalf("timer fired %d times: %v", len(fires), fires)
	}
	for i, w := range want {
		if fires[i] != w {
			t.Errorf("fire %d at %v, want %v", i, fires[i], w)
		}
	}
}

func TestTimerWithoutHandlerOrIntervalIgnored(t *testing.T) {
	vm := NewVM(VMConfig{Horizon: ms(50)})
	vm.NewPeriodicTimer(ms(10), 0, func(vtime.Time) { t.Error("zero-interval timer must not fire") })
	vm.NewPeriodicTimer(ms(10), ms(10), nil)
	if err := vm.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestRunTwiceFails(t *testing.T) {
	vm := NewVM(VMConfig{Horizon: ms(10)})
	if err := vm.Run(); err != nil {
		t.Fatal(err)
	}
	if err := vm.Run(); err == nil {
		t.Fatal("second Run must fail")
	}
}

func TestRunZeroHorizonFails(t *testing.T) {
	vm := NewVM(VMConfig{})
	if err := vm.Run(); err == nil {
		t.Fatal("zero horizon must fail")
	}
}

func TestDeadlineMissRecordedThroughVM(t *testing.T) {
	// Two threads overloading the processor: the low one misses.
	vm := NewVM(VMConfig{Horizon: ms(40)})
	hi := vm.NewRealtimeThread("hi", PriorityParameters{2},
		PeriodicParameters{Period: ms(10), Cost: ms(8), Deadline: ms(10)},
		periodicLogic(fixed(ms(8))))
	lo := vm.NewRealtimeThread("lo", PriorityParameters{1},
		PeriodicParameters{Period: ms(20), Cost: ms(8), Deadline: ms(20)},
		periodicLogic(fixed(ms(8))))
	if err := hi.Start(); err != nil {
		t.Fatal(err)
	}
	if err := lo.Start(); err != nil {
		t.Fatal(err)
	}
	if err := vm.Run(); err != nil {
		t.Fatal(err)
	}
	misses := vm.Log().Filter(func(e trace.Event) bool {
		return e.Kind == trace.DeadlineMiss && e.Task == "lo"
	})
	if len(misses) == 0 {
		t.Fatal("overloaded low thread must miss deadlines")
	}
}

// TestDeterministicVMTraces: two identical VM runs produce identical
// traces despite using real goroutines.
func TestDeterministicVMTraces(t *testing.T) {
	build := func() *VM {
		vm := NewVM(VMConfig{Horizon: ms(500), TimerResolution: ms(10)})
		for i, name := range []string{"a", "b", "c"} {
			th := vm.NewRealtimeThread(name, PriorityParameters{10 - i},
				PeriodicParameters{Period: ms(int64(20 + 10*i)), Cost: ms(5), Deadline: ms(int64(20 + 10*i))},
				periodicLogic(fixed(ms(5))))
			if err := th.Start(); err != nil {
				t.Fatal(err)
			}
		}
		return vm
	}
	v1, v2 := build(), build()
	if err := v1.Run(); err != nil {
		t.Fatal(err)
	}
	if err := v2.Run(); err != nil {
		t.Fatal(err)
	}
	if v1.Log().EncodeString() != v2.Log().EncodeString() {
		t.Fatal("VM runs are not deterministic")
	}
}
