package rtsj

import (
	"fmt"

	"repro/internal/taskset"
	"repro/internal/trace"
	"repro/internal/vtime"
)

// PriorityParameters carries the RTSJ scheduling priority (larger is
// higher, as in javax.realtime.PriorityParameters).
type PriorityParameters struct {
	Priority int
}

// PeriodicParameters mirrors javax.realtime.PeriodicParameters: the
// release characteristics admission control reasons about.
type PeriodicParameters struct {
	// Start is the first release, relative to time zero.
	Start vtime.Duration
	// Period separates releases.
	Period vtime.Duration
	// Cost is the declared worst-case execution time.
	Cost vtime.Duration
	// Deadline is relative to each release.
	Deadline vtime.Duration
}

// Logic is the body of a real-time thread, the equivalent of the Java
// run() method. Idiomatic shape:
//
//	func(t *RealtimeThread) {
//		for t.WaitForNextPeriod() {
//			t.Compute(work)
//		}
//	}
type Logic func(t *RealtimeThread)

// RealtimeThread models javax.realtime.RealtimeThread backed by a
// goroutine scheduled in virtual time by the VM.
type RealtimeThread struct {
	vm       *VM
	name     string
	priority int
	release  PeriodicParameters
	logic    Logic

	gate chan resumeMsg

	started bool
	dead    bool
	waiting bool

	// scheduling state (owned by the VM loop)
	computing     bool
	remaining     vtime.Duration
	consumed      vtime.Duration
	computeStart  vtime.Duration
	stopTruncated bool

	// job bookkeeping (§3.1: the boolean value and job counter)
	jobIndex        int64
	inJob           bool
	begunJob        bool
	finishedJobs    int64
	pendingReleases int64

	// stop flag (§4.1): polled at StopPoll granularity.
	stopFlag bool
	stopJob  int64

	// extension hooks (RealtimeThreadExtended)
	onJobBegin func(now vtime.Time, q int64)
	onJobEnd   func(now vtime.Time, q int64, stopped bool)
}

// NewRealtimeThread registers a thread with the VM. The thread does
// not execute until Start is called and the VM runs.
func (vm *VM) NewRealtimeThread(name string, prio PriorityParameters, rel PeriodicParameters, logic Logic) *RealtimeThread {
	th := &RealtimeThread{
		vm:       vm,
		name:     name,
		priority: prio.Priority,
		release:  rel,
		logic:    logic,
		gate:     make(chan resumeMsg),
		jobIndex: -1,
		stopJob:  -1,
	}
	vm.threads = append(vm.threads, th)
	return th
}

// Name returns the thread name.
func (th *RealtimeThread) Name() string { return th.name }

// Priority returns the scheduling priority.
func (th *RealtimeThread) Priority() int { return th.priority }

// ReleaseParameters returns the periodic parameters.
func (th *RealtimeThread) ReleaseParameters() PeriodicParameters { return th.release }

// task converts the thread to its analytic model.
func (th *RealtimeThread) task() taskset.Task {
	return taskset.Task{
		Name:     th.name,
		Priority: th.priority,
		Period:   th.release.Period,
		Deadline: th.release.Deadline,
		Cost:     th.release.Cost,
		Offset:   th.release.Start,
	}
}

// Start marks the thread live; releases begin when the VM runs. It
// mirrors RealtimeThread.start().
func (th *RealtimeThread) Start() error {
	if th.started {
		return fmt.Errorf("rtsj: thread %s already started", th.name)
	}
	if err := th.task().Validate(); err != nil {
		return err
	}
	th.started = true
	return nil
}

// armReleases schedules the periodic releases and launches the
// goroutine (called by VM.Run).
func (th *RealtimeThread) armReleases(vm *VM) {
	if !th.started {
		return
	}
	vm.wg.Add(1)
	go func() {
		defer vm.wg.Done()
		if msg := <-th.gate; !msg.ok {
			// VM shut down before the first release.
			th.call(request{th: th, kind: reqExit})
			return
		}
		th.logic(th)
		th.call(request{th: th, kind: reqExit})
	}()
	th.scheduleRelease(vm, 0)
}

// scheduleRelease arms release q; each release re-arms the next, so
// the chain survives the heap being drained between jobs.
func (th *RealtimeThread) scheduleRelease(vm *VM, q int64) {
	at := vtime.Time(th.release.Start).Add(vtime.Duration(q) * th.release.Period)
	vm.schedule(at, func(now vtime.Time) {
		if th.dead {
			return
		}
		vm.log.Append(trace.Event{At: now, Kind: trace.JobRelease, Task: th.name, Job: q})
		// Deadline check for job q.
		vm.schedule(now.Add(th.release.Deadline), func(at vtime.Time) {
			if th.finishedJobs <= q {
				vm.log.Append(trace.Event{At: at, Kind: trace.DeadlineMiss, Task: th.name, Job: q})
			}
		})
		if q == 0 && !th.waiting && th.jobIndex < 0 {
			// First release: wake the goroutine so its logic runs;
			// the logic's first WaitForNextPeriod consumes this
			// release immediately (the paper recommends calling
			// waitForNextPeriod() before the first job).
			th.pendingReleases++
			vm.dispatch(th, resumeMsg{ok: true})
		} else if th.waiting {
			th.waiting = false
			vm.beginJob(th)
			vm.dispatch(th, resumeMsg{ok: true})
		} else {
			th.pendingReleases++
		}
		th.scheduleRelease(vm, q+1)
	})
}

// call sends a request to the VM and blocks until resumed, returning
// the resume message.
func (th *RealtimeThread) call(r request) resumeMsg {
	th.vm.req <- r
	if r.kind == reqExit {
		return resumeMsg{}
	}
	return <-th.gate
}

// Compute consumes d of CPU time under preemptive fixed-priority
// scheduling. It returns false when the job was truncated by a stop
// request (§4.1) or the VM is shutting down; the logic should then
// abandon the job and call WaitForNextPeriod.
func (th *RealtimeThread) Compute(d vtime.Duration) bool {
	if d < 0 {
		d = 0
	}
	msg := th.call(request{th: th, kind: reqCompute, d: d})
	return msg.ok
}

// WaitForNextPeriod completes the current job and blocks until the
// next release, mirroring RealtimeThread.waitForNextPeriod(). It
// returns false when the VM reached its horizon.
func (th *RealtimeThread) WaitForNextPeriod() bool {
	msg := th.call(request{th: th, kind: reqWait})
	return msg.ok
}

// JobIndex returns the current 0-based job index (-1 before the first
// release).
func (th *RealtimeThread) JobIndex() int64 { return th.jobIndex }

// FinishedJobs returns the number of completed jobs (the §3.1 job
// counter).
func (th *RealtimeThread) FinishedJobs() int64 { return th.finishedJobs }

// Stopped reports whether the thread's current job was asked to stop.
func (th *RealtimeThread) Stopped() bool { return th.stopFlag }

// requestStop raises the §4.1 boolean; the running compute (if any)
// is truncated at its next poll boundary.
func (th *RealtimeThread) requestStop(vm *VM, q int64, now vtime.Time) {
	if th.finishedJobs > q || th.dead {
		return
	}
	vm.log.Append(trace.Event{At: now, Kind: trace.StopRequest, Task: th.name, Job: q})
	th.stopFlag = true
	th.stopJob = q
	if th.jobIndex == q && th.remaining > 0 {
		vm.truncateForStop(th)
	}
}

// AsyncEventHandler is the RTSJ handler type fired by timers.
type AsyncEventHandler func(now vtime.Time)

// PeriodicTimer mirrors javax.realtime.PeriodicTimer: first release
// at Start (quantized up to the VM timer resolution, like jRate's
// 10 ms PeriodicTimer), then every Interval.
type PeriodicTimer struct {
	Start    vtime.Duration
	Interval vtime.Duration
	Handler  AsyncEventHandler

	armed bool
}

// NewPeriodicTimer registers a timer with the VM.
func (vm *VM) NewPeriodicTimer(start, interval vtime.Duration, h AsyncEventHandler) *PeriodicTimer {
	tm := &PeriodicTimer{Start: start, Interval: interval, Handler: h}
	vm.timers = append(vm.timers, tm)
	return tm
}

// arm schedules the quantized first release and the periodic chain.
func (tm *PeriodicTimer) arm(vm *VM) {
	if tm.armed || tm.Handler == nil || tm.Interval <= 0 {
		return
	}
	tm.armed = true
	first := tm.Start.Ceil(vm.cfg.TimerResolution)
	var fire func(at vtime.Time, k int64)
	fire = func(at vtime.Time, k int64) {
		vm.schedule(at, func(now vtime.Time) {
			tm.Handler(now)
			fire(now.Add(tm.Interval), k+1)
		})
	}
	fire(vtime.Time(first), 0)
}
