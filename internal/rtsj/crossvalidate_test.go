package rtsj

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/taskset"
	"repro/internal/vtime"
)

// TestVMMatchesEngineOnRandomSets runs the same random periodic
// systems through the cost-driven discrete-event engine and through
// the goroutine-backed RTSJ VM, and requires identical job completion
// instants. The two substrates share no scheduling code, so
// agreement pins both against each other (and, transitively, against
// the response-time analysis the engine is already validated on).
func TestVMMatchesEngineOnRandomSets(t *testing.T) {
	gen := taskset.NewGenerator(31)
	horizon := vtime.Millis(2000)
	for trial := 0; trial < 20; trial++ {
		s, err := gen.Generate(4, 0.75)
		if err != nil {
			t.Fatal(err)
		}
		// Engine run.
		e, err := engine.New(engine.Config{Tasks: s, End: vtime.Time(horizon)})
		if err != nil {
			t.Fatal(err)
		}
		engRep := metrics.Analyze(e.Run())

		// VM run of the same system.
		vm := NewVM(VMConfig{Horizon: horizon})
		for _, task := range s.Tasks {
			cost := task.Cost
			th := vm.NewRealtimeThread(task.Name,
				PriorityParameters{task.Priority},
				PeriodicParameters{Start: task.Offset, Period: task.Period, Cost: cost, Deadline: task.Deadline},
				func(th *RealtimeThread) {
					for th.WaitForNextPeriod() {
						th.Compute(cost)
					}
				})
			if err := th.Start(); err != nil {
				t.Fatal(err)
			}
		}
		if err := vm.Run(); err != nil {
			t.Fatal(err)
		}
		vmRep := metrics.Analyze(vm.Log())

		for _, task := range s.Tasks {
			ej := engRep.Tasks[task.Name]
			vj := vmRep.Tasks[task.Name]
			if ej == nil || vj == nil {
				t.Fatalf("trial %d: task %s missing from a trace", trial, task.Name)
			}
			// Compare every completed job's end instant. The engine
			// may have released one more job right at the horizon.
			for _, je := range engRep.Jobs {
				if je.Task != task.Name || je.End == 0 {
					continue
				}
				jv, ok := vmRep.Job(task.Name, je.Q)
				if !ok {
					// The VM stops dispatching at the horizon; a job
					// completing exactly there may be absent. Only
					// tolerate that at the boundary.
					if je.End >= vtime.Time(horizon)-vtime.Time(vtime.Millis(1)) {
						continue
					}
					t.Fatalf("trial %d: %s#%d missing from VM trace (engine end %v)",
						trial, task.Name, je.Q, je.End)
				}
				if jv.End == 0 {
					if je.End >= vtime.Time(horizon)-vtime.Time(vtime.Millis(1)) {
						continue
					}
					t.Fatalf("trial %d: %s#%d unfinished in VM (engine end %v)",
						trial, task.Name, je.Q, je.End)
				}
				if jv.End != je.End {
					t.Fatalf("trial %d: %s#%d ends differ: engine %v vs vm %v",
						trial, task.Name, je.Q, je.End, jv.End)
				}
			}
		}
	}
}
