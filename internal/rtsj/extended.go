package rtsj

import (
	"fmt"

	"repro/internal/allowance"
	"repro/internal/analysis"
	"repro/internal/taskset"
	"repro/internal/trace"
	"repro/internal/vtime"
)

// Scheduler mirrors the RTSJ PriorityScheduler with the feasibility
// methods the paper implements (its javax.realtime.extended package):
// addToFeasibility/removeFromFeasibility maintain the analysed set
// and IsFeasible runs the exact Figure 2 test — the "deficient
// methods of RI and missing ones in jRate".
type Scheduler struct {
	threads []*RealtimeThread
}

// NewScheduler returns an empty feasibility context.
func NewScheduler() *Scheduler { return &Scheduler{} }

// AddToFeasibility adds a schedulable to the analysed set.
func (s *Scheduler) AddToFeasibility(th *RealtimeThread) {
	for _, t := range s.threads {
		if t == th {
			return
		}
	}
	s.threads = append(s.threads, th)
}

// RemoveFromFeasibility removes a schedulable from the analysed set.
func (s *Scheduler) RemoveFromFeasibility(th *RealtimeThread) {
	for i, t := range s.threads {
		if t == th {
			s.threads = append(s.threads[:i], s.threads[i+1:]...)
			return
		}
	}
}

// taskSet converts the feasibility set to the analytic model.
func (s *Scheduler) taskSet() (*taskset.Set, error) {
	if len(s.threads) == 0 {
		return nil, fmt.Errorf("rtsj: empty feasibility set")
	}
	tasks := make([]taskset.Task, len(s.threads))
	for i, th := range s.threads {
		tasks[i] = th.task()
	}
	return taskset.New(tasks...)
}

// IsFeasible runs the exact response-time admission control (paper
// Section 2) over the registered schedulables.
func (s *Scheduler) IsFeasible() (bool, error) {
	set, err := s.taskSet()
	if err != nil {
		return false, err
	}
	rep, err := analysis.Feasible(set)
	if err != nil {
		return false, err
	}
	return rep.Feasible, nil
}

// ResponseTimes returns the WCRT of each registered schedulable, in
// registration order.
func (s *Scheduler) ResponseTimes() ([]vtime.Duration, error) {
	set, err := s.taskSet()
	if err != nil {
		return nil, err
	}
	return analysis.ResponseTimes(set)
}

// ExtendedTreatment selects the RealtimeThreadExtended behaviour on
// detection, matching package detect's treatments.
type ExtendedTreatment int

// Extended treatments.
const (
	// ExtDetectOnly records faults without intervening.
	ExtDetectOnly ExtendedTreatment = iota
	// ExtStop raises the stop flag at the WCRT.
	ExtStop
	// ExtEquitable raises it at the allowance-shifted WCRT.
	ExtEquitable
	// ExtSystemAllowance raises it at WCRT + the task's maximum
	// single-task overrun.
	ExtSystemAllowance
)

// RealtimeThreadExtended is the paper's §3.1 class: it overloads
// start() to install a periodic detector with an offset equal to the
// worst case response time, and waitForNextPeriod() to maintain the
// job counter and finished flag through computeBeforePeriodic /
// computeAfterPeriodic.
type RealtimeThreadExtended struct {
	*RealtimeThread
	vm        *VM
	sched     *Scheduler
	treatment ExtendedTreatment

	// derived at StartAll time
	wcrt     vtime.Duration
	stopOff  vtime.Duration
	detected int64
}

// NewRealtimeThreadExtended wraps a thread with the paper's detector
// machinery. The scheduler accumulates the feasibility set shared by
// all extended threads of the VM.
func (vm *VM) NewRealtimeThreadExtended(name string, prio PriorityParameters, rel PeriodicParameters, sched *Scheduler, treatment ExtendedTreatment, logic func(t *RealtimeThreadExtended)) *RealtimeThreadExtended {
	ext := &RealtimeThreadExtended{vm: vm, sched: sched, treatment: treatment}
	ext.RealtimeThread = vm.NewRealtimeThread(name, prio, rel, func(t *RealtimeThread) {
		logic(ext)
	})
	sched.AddToFeasibility(ext.RealtimeThread)
	return ext
}

// Detections returns how many times this thread's detector flagged an
// unfinished job.
func (ext *RealtimeThreadExtended) Detections() int64 { return ext.detected }

// WCRT returns the worst case response time computed at Start.
func (ext *RealtimeThreadExtended) WCRT() vtime.Duration { return ext.wcrt }

// Start overloads RealtimeThread.Start: after starting the thread it
// computes the WCRT over the scheduler's feasibility set and installs
// the periodic detector (period = task period, offset = WCRT,
// quantized up to the VM timer resolution).
func (ext *RealtimeThreadExtended) Start() error {
	if err := ext.RealtimeThread.Start(); err != nil {
		return err
	}
	set, err := ext.sched.taskSet()
	if err != nil {
		return err
	}
	rep, err := analysis.Feasible(set)
	if err != nil {
		return err
	}
	if !rep.Feasible {
		return fmt.Errorf("rtsj: admission control rejects the system (misses: %v)", rep.Misses)
	}
	idx := set.IndexByName(ext.name)
	ext.wcrt = rep.WCRT[idx]
	ext.stopOff = ext.wcrt
	// Detector placement mirrors package detect: the timer sits at
	// the (quantized) WCRT — shifted to the Table 3 bound under the
	// equitable treatment — and the system-allowance treatment
	// schedules the actual stop separately at the exact instant
	// release + WCRT + MaxOverrun (Figure 7's "thirty-three
	// milliseconds after its worst case response time").
	detBase := ext.wcrt
	switch ext.treatment {
	case ExtEquitable:
		tab, err := allowance.Compute(set, 0)
		if err != nil {
			return err
		}
		detBase = tab.EquitableWCRT[idx]
		ext.stopOff = detBase
	case ExtSystemAllowance:
		maxo, err := allowance.MaxOverrun(set, idx, 0)
		if err != nil {
			return err
		}
		ext.stopOff = ext.wcrt + maxo
	}
	detOff := detBase.Ceil(ext.vm.cfg.TimerResolution)
	ext.vm.NewPeriodicTimer(ext.release.Start+detOff, ext.release.Period, func(now vtime.Time) {
		// Which job does this firing watch? Releases are periodic
		// from Start; firing k watches job k.
		q := int64((vtime.Duration(now) - ext.release.Start - detOff) / ext.release.Period)
		ext.vm.log.Append(trace.Event{At: now, Kind: trace.DetectorRelease, Task: ext.name, Job: q})
		if ext.finishedJobs > q {
			return // job completed in time
		}
		ext.detected++
		ext.vm.log.Append(trace.Event{At: now, Kind: trace.FaultDetected, Task: ext.name, Job: q})
		switch ext.treatment {
		case ExtStop, ExtEquitable:
			ext.requestStop(ext.vm, q, now)
		case ExtSystemAllowance:
			release := vtime.Time(ext.release.Start + vtime.Duration(q)*ext.release.Period)
			stopAt := release.Add(ext.stopOff)
			if stopAt < now {
				stopAt = now
			}
			ext.vm.log.Append(trace.Event{At: now, Kind: trace.AllowanceGrant, Task: ext.name, Job: q, Arg: int64(ext.stopOff - ext.wcrt)})
			ext.vm.schedule(stopAt, func(at vtime.Time) {
				if ext.finishedJobs <= q {
					ext.requestStop(ext.vm, q, at)
				}
			})
		}
	})
	return nil
}

// WaitForNextPeriod overloads the RTSJ method exactly as the paper's
// listing does:
//
//	computeAfterPeriodic();
//	boolean r = super.waitForNextPeriod();
//	computeBeforePeriodic();
//	return r;
//
// In this emulation the before/after bookkeeping (job counter and
// finished flag) lives in the VM's completeJob/beginJob, invoked
// around the blocking wait; the overload is therefore behaviourally
// identical and kept for API fidelity.
func (ext *RealtimeThreadExtended) WaitForNextPeriod() bool {
	return ext.RealtimeThread.WaitForNextPeriod()
}
