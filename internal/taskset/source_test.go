package taskset

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/vtime"
)

// drain pulls n releases from a source (which must not exhaust).
func drain(t *testing.T, src Source, n int) []Release {
	t.Helper()
	out := make([]Release, n)
	for i := range out {
		rel, ok := src.Next()
		if !ok {
			t.Fatalf("source %s exhausted after %d release(s)", src.Kind(), i)
		}
		out[i] = rel
	}
	return out
}

// TestPoissonDeterministic pins the seed contract the verify oracle
// depends on: the same (mean, seed) replays the identical arrival
// sequence, a different seed diverges, and the clock strictly
// advances (the 1 ns gap floor).
func TestPoissonDeterministic(t *testing.T) {
	mk := func(seed uint64) Source {
		src, err := NewPoisson(30*vtime.Millisecond, seed)
		if err != nil {
			t.Fatal(err)
		}
		return src
	}
	a, b := drain(t, mk(7), 500), drain(t, mk(7), 500)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("release %d differs across identically-seeded sources: %v vs %v", i, a[i], b[i])
		}
		if a[i].Cost != 0 || a[i].Deadline != 0 {
			t.Fatalf("release %d carries overrides %v/%v; a stochastic source must use nominal cost/deadline", i, a[i].Cost, a[i].Deadline)
		}
		if i > 0 && !a[i].At.After(a[i-1].At) {
			t.Fatalf("release %d at %v does not advance past %v", i, a[i].At, a[i-1].At)
		}
	}
	c := drain(t, mk(8), 500)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 7 and 8 produced identical sequences")
	}

	// Realized mean within a loose factor-of-two band: 500 draws of a
	// 30ms-mean exponential are deterministic given the seed, so this
	// cannot flake — it only catches a mis-scaled ExpDuration.
	var sum vtime.Duration
	prev := vtime.Time(0)
	for _, rel := range a {
		sum += vtime.Duration(rel.At.Sub(prev))
		prev = rel.At
	}
	mean := sum / vtime.Duration(len(a))
	if mean < 15*vtime.Millisecond || mean > 60*vtime.Millisecond {
		t.Errorf("realized mean gap %v implausible for a 30ms-mean Poisson source", mean)
	}
}

// TestMMPPStateModulation pins the two-state behaviour: identical
// seeds replay identically, and with a sharply faster burst state the
// realized arrival density inside burst windows exceeds the base
// windows' (the point of the modulation).
func TestMMPPStateModulation(t *testing.T) {
	const (
		baseMean   = 50 * vtime.Millisecond
		burstMean  = 2 * vtime.Millisecond
		baseDwell  = 200 * vtime.Millisecond
		burstDwell = 100 * vtime.Millisecond
	)
	mk := func() Source {
		src, err := NewMMPP(baseMean, burstMean, baseDwell, burstDwell, 11)
		if err != nil {
			t.Fatal(err)
		}
		return src
	}
	a, b := drain(t, mk(), 400), drain(t, mk(), 400)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("release %d differs across identically-seeded sources", i)
		}
		if i > 0 && !a[i].At.After(a[i-1].At) {
			t.Fatalf("release %d at %v does not advance past %v", i, a[i].At, a[i-1].At)
		}
	}
	// Count arrivals per state window. The cycle is [0,200)ms base,
	// [200,300)ms burst, repeating every 300ms.
	cycle := baseDwell + burstDwell
	var base, burst int
	for _, rel := range a {
		if vtime.Duration(rel.At)%cycle < baseDwell {
			base++
		} else {
			burst++
		}
	}
	// Burst windows are half the width of base windows but 25× the
	// rate; anything short of a clear majority means the states are
	// not modulating.
	if burst <= base {
		t.Errorf("burst windows saw %d arrivals vs %d in base windows; expected burst-dominated", burst, base)
	}
}

// TestNewTraceOrdering pins construction-time strictness: an empty
// trace and a single record are valid; out-of-order records are an
// error, never a silent sort.
func TestNewTraceOrdering(t *testing.T) {
	if src, err := NewTrace(nil); err != nil {
		t.Fatalf("empty trace: %v", err)
	} else if _, ok := src.Next(); ok {
		t.Fatal("empty trace yielded a release")
	}

	one := []TraceRecord{{Release: 5 * vtime.Millisecond, Cost: vtime.Millisecond}}
	src, err := NewTrace(one)
	if err != nil {
		t.Fatalf("single-record trace: %v", err)
	}
	rel, ok := src.Next()
	if !ok || rel.At != vtime.Time(5*vtime.Millisecond) || rel.Cost != vtime.Millisecond {
		t.Fatalf("single-record trace yielded %v, %v", rel, ok)
	}
	if _, ok := src.Next(); ok {
		t.Fatal("single-record trace did not exhaust")
	}

	_, err = NewTrace([]TraceRecord{
		{Release: 10 * vtime.Millisecond, Cost: vtime.Millisecond},
		{Release: 5 * vtime.Millisecond, Cost: vtime.Millisecond},
	})
	if err == nil || !strings.Contains(err.Error(), "out of order") {
		t.Fatalf("out-of-order trace: err = %v, want out-of-order rejection", err)
	}
}

// TestParseTracePositionalErrors pins the importer's error contract:
// every rejection names the 1-based line of the offending record.
func TestParseTracePositionalErrors(t *testing.T) {
	cases := []struct {
		name, input, wantSub string
	}{
		{"malformed-line-2", "{\"release\":\"1ms\",\"cost\":\"1ms\"}\nnot json\n", "line 2"},
		{"blank-line", "{\"release\":\"1ms\",\"cost\":\"1ms\"}\n\n{\"release\":\"2ms\",\"cost\":\"1ms\"}\n", "line 2: blank line"},
		{"out-of-order", "{\"release\":\"10ms\",\"cost\":\"1ms\"}\n{\"release\":\"5ms\",\"cost\":\"1ms\"}\n", "line 2: release 5ms out of order"},
		{"non-canonical-duration", "{\"release\":\"300us\",\"cost\":\"1ms\"}\n", `"300us" is not canonical`},
		{"reordered-keys", "{\"cost\":\"1ms\",\"release\":\"1ms\"}\n", "line 1"},
		{"zero-cost", "{\"release\":\"1ms\",\"cost\":\"0ms\"}\n", "cost must be positive"},
		{"cost-over-deadline", "{\"release\":\"1ms\",\"cost\":\"5ms\",\"deadline\":\"2ms\"}\n", "exceeds deadline"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ParseTrace([]byte(c.input))
			if err == nil {
				t.Fatal("accepted invalid trace")
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Errorf("error %q does not contain %q", err, c.wantSub)
			}
		})
	}
	if recs, err := ParseTrace(nil); err != nil || len(recs) != 0 {
		t.Errorf("empty input: got %d records, err %v; want a valid empty trace", len(recs), err)
	}
}

// TestTraceRoundTrip pins the canonical-form identity both ways:
// EncodeTrace ∘ ParseTrace on a canonical file is byte-identity, and
// ParseTrace ∘ EncodeTrace on in-memory records is value-identity.
func TestTraceRoundTrip(t *testing.T) {
	canonical := []byte("{\"release\":\"0ms\",\"cost\":\"1.5ms\"}\n" +
		"{\"release\":\"300ms\",\"cost\":\"20ms\",\"deadline\":\"100ms\"}\n" +
		"{\"release\":\"300ms\",\"cost\":\"0.3ms\"}\n" +
		"{\"release\":\"1000ms\",\"cost\":\"2ms\"}\n")
	recs, err := ParseTrace(canonical)
	if err != nil {
		t.Fatal(err)
	}
	if got := EncodeTrace(recs); !bytes.Equal(got, canonical) {
		t.Errorf("re-encode differs from canonical input:\n got %q\nwant %q", got, canonical)
	}

	back, err := ParseTrace(EncodeTrace(recs))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(recs) {
		t.Fatalf("round trip changed record count: %d vs %d", len(back), len(recs))
	}
	for i := range recs {
		if back[i] != recs[i] {
			t.Errorf("record %d changed across round trip: %v vs %v", i, back[i], recs[i])
		}
	}
}
