package taskset

import (
	"bytes"
	"fmt"
	"strings"

	"repro/internal/vtime"
)

// This file defines arrival sources: generators of job releases that
// replace the periodic offset+q·T law for open-arrival workloads. A
// Source drives one task (or one polling server's request stream) and
// yields releases in non-decreasing time order; the engine pulls the
// next release lazily, so an infinite stochastic source costs nothing
// past the horizon. Every source is seed-deterministic — the same
// construction parameters replay the same arrival sequence bit for
// bit, which is what lets the invariant oracle re-derive the expected
// release times independently (verify's per-source release contract).

// Source kinds, as named in scenario files and rtrun flags.
const (
	SourcePoisson = "poisson"
	SourceMMPP    = "mmpp"
	SourceTrace   = "trace"
)

// Release is one source-driven job release. A zero Cost or Deadline
// means "use the task's nominal value"; trace records may override
// both per release.
type Release struct {
	// At is the absolute release instant.
	At vtime.Time
	// Cost overrides the task's nominal cost when positive.
	Cost vtime.Duration
	// Deadline overrides the task's nominal relative deadline when
	// positive.
	Deadline vtime.Duration
}

// Source yields successive job releases in non-decreasing time order.
// Next returns ok=false when the source is exhausted (stochastic
// sources never are; the engine stops pulling at the horizon).
type Source interface {
	// Kind returns the source kind name (SourcePoisson, ...).
	Kind() string
	// Next returns the next release and whether one exists.
	Next() (Release, bool)
}

// PoissonSource releases jobs as a Poisson process: independent
// exponential inter-arrival gaps with the configured mean. The first
// arrival is one gap after time zero (no deterministic release at the
// origin). Gaps are floored at 1 ns so successive releases always
// advance the clock.
type PoissonSource struct {
	mean vtime.Duration
	rng  *Rand
	cur  vtime.Time
}

// NewPoisson returns a Poisson source with the given mean
// inter-arrival time and RNG seed.
func NewPoisson(mean vtime.Duration, seed uint64) (*PoissonSource, error) {
	if mean <= 0 {
		return nil, fmt.Errorf("taskset: poisson source needs a positive mean inter-arrival, got %v", mean)
	}
	return &PoissonSource{mean: mean, rng: NewRand(seed)}, nil
}

// Kind returns "poisson".
func (p *PoissonSource) Kind() string { return SourcePoisson }

// Next returns the next arrival; a Poisson source never exhausts.
func (p *PoissonSource) Next() (Release, bool) {
	p.cur = p.cur.Add(p.rng.ExpDuration(p.mean))
	return Release{At: p.cur}, true
}

// MMPPSource is a two-state Markov-modulated Poisson process: a base
// state and a burst state, each with its own mean inter-arrival time,
// alternating after fixed dwell times. Fixed (rather than exponential)
// dwells are a deliberate simplification: state flips land at
// predictable instants, which keeps the burst phase testable (a flip
// exactly at the horizon is a pinnable edge case) without losing the
// bursty character — arrivals within each state are still exponential.
// When a drawn gap crosses the state boundary it is discarded and
// redrawn from the boundary under the new state's rate, which is
// distribution-correct for exponential gaps (memorylessness) and keeps
// the sequence a pure function of the seed.
type MMPPSource struct {
	mean     [2]vtime.Duration // inter-arrival mean per state
	dwell    [2]vtime.Duration // fixed dwell per state
	rng      *Rand
	cur      vtime.Time
	state    int
	stateEnd vtime.Time
}

// NewMMPP returns a two-state MMPP source. baseMean/burstMean are the
// mean inter-arrival times in the base and burst states; baseDwell/
// burstDwell the fixed state dwell times. The process starts in the
// base state at time zero.
func NewMMPP(baseMean, burstMean, baseDwell, burstDwell vtime.Duration, seed uint64) (*MMPPSource, error) {
	switch {
	case baseMean <= 0:
		return nil, fmt.Errorf("taskset: mmpp source needs a positive base mean inter-arrival, got %v", baseMean)
	case burstMean <= 0:
		return nil, fmt.Errorf("taskset: mmpp source needs a positive burst mean inter-arrival, got %v", burstMean)
	case baseDwell <= 0:
		return nil, fmt.Errorf("taskset: mmpp source needs a positive base dwell, got %v", baseDwell)
	case burstDwell <= 0:
		return nil, fmt.Errorf("taskset: mmpp source needs a positive burst dwell, got %v", burstDwell)
	}
	return &MMPPSource{
		mean:     [2]vtime.Duration{baseMean, burstMean},
		dwell:    [2]vtime.Duration{baseDwell, burstDwell},
		rng:      NewRand(seed),
		stateEnd: vtime.Time(baseDwell),
	}, nil
}

// Kind returns "mmpp".
func (m *MMPPSource) Kind() string { return SourceMMPP }

// Next returns the next arrival; an MMPP source never exhausts.
func (m *MMPPSource) Next() (Release, bool) {
	for {
		cand := m.cur.Add(m.rng.ExpDuration(m.mean[m.state]))
		if !cand.After(m.stateEnd) {
			m.cur = cand
			return Release{At: cand}, true
		}
		m.cur = vtime.Time(m.stateEnd)
		m.state = 1 - m.state
		m.stateEnd = m.stateEnd.Add(m.dwell[m.state])
	}
}

// TraceRecord is one record of a trace file: a release instant (as an
// offset from time zero) with its execution cost and an optional
// relative deadline (0 = the task's nominal deadline).
type TraceRecord struct {
	Release  vtime.Duration
	Cost     vtime.Duration
	Deadline vtime.Duration
}

// Validate checks a single record in isolation.
func (r TraceRecord) Validate() error {
	switch {
	case r.Release < 0:
		return fmt.Errorf("taskset: trace record release must be non-negative, got %v", r.Release)
	case r.Cost <= 0:
		return fmt.Errorf("taskset: trace record cost must be positive, got %v", r.Cost)
	case r.Deadline < 0:
		return fmt.Errorf("taskset: trace record deadline must be non-negative, got %v", r.Deadline)
	case r.Deadline > 0 && r.Cost > r.Deadline:
		return fmt.Errorf("taskset: trace record cost %v exceeds deadline %v", r.Cost, r.Deadline)
	}
	return nil
}

// TraceSource replays a finite recorded arrival log. Records must be
// in non-decreasing release order — a trace is a measurement, and
// silently sorting one would mask a corrupted or mis-merged log, so
// out-of-order input is an error at construction, not a repair.
type TraceSource struct {
	records []TraceRecord
	idx     int
}

// NewTrace returns a source replaying records verbatim. An empty
// trace is valid (the task simply never releases).
func NewTrace(records []TraceRecord) (*TraceSource, error) {
	for i, r := range records {
		if err := r.Validate(); err != nil {
			return nil, fmt.Errorf("record %d: %w", i+1, err)
		}
		if i > 0 && r.Release < records[i-1].Release {
			return nil, fmt.Errorf("taskset: trace record %d out of order: release %v before record %d's %v (traces must be pre-sorted; refusing to sort a measurement)",
				i+1, r.Release, i, records[i-1].Release)
		}
	}
	return &TraceSource{records: append([]TraceRecord(nil), records...)}, nil
}

// Kind returns "trace".
func (t *TraceSource) Kind() string { return SourceTrace }

// Next returns the next recorded release, exhausting at the end.
func (t *TraceSource) Next() (Release, bool) {
	if t.idx >= len(t.records) {
		return Release{}, false
	}
	r := t.records[t.idx]
	t.idx++
	return Release{At: vtime.Time(r.Release), Cost: r.Cost, Deadline: r.Deadline}, true
}

// Len returns the number of records.
func (t *TraceSource) Len() int { return len(t.records) }

// The trace file format is JSON lines, one record per line, durations
// in the repository's usual string form ("300ms", "1.5ms", "250us"):
//
//	{"release":"300ms","cost":"20ms","deadline":"100ms"}
//	{"release":"340ms","cost":"5ms"}
//
// "deadline" is optional (the task's nominal deadline applies).
// EncodeTrace emits exactly this canonical form — fixed key order,
// no whitespace, deadline omitted when zero, one trailing newline per
// record — so a canonical trace file round-trips byte-identically
// through ParseTrace ∘ EncodeTrace.

// ParseTrace decodes a JSON-lines trace. Errors carry the 1-based
// line number of the offending record. Blank lines are rejected —
// the canonical form has none, and tolerating them would break the
// re-encode byte-identity contract. An empty input is a valid empty
// trace.
func ParseTrace(data []byte) ([]TraceRecord, error) {
	var records []TraceRecord
	line := 0
	for len(data) > 0 {
		line++
		var raw []byte
		if i := bytes.IndexByte(data, '\n'); i >= 0 {
			raw, data = data[:i], data[i+1:]
		} else {
			raw, data = data, nil
		}
		rec, err := parseTraceLine(raw)
		if err != nil {
			return nil, fmt.Errorf("taskset: trace line %d: %w", line, err)
		}
		if err := rec.Validate(); err != nil {
			return nil, fmt.Errorf("taskset: trace line %d: %w", line, err)
		}
		if len(records) > 0 && rec.Release < records[len(records)-1].Release {
			return nil, fmt.Errorf("taskset: trace line %d: release %v out of order (line %d released at %v; traces must be pre-sorted, refusing to sort a measurement)",
				line, rec.Release, line-1, records[len(records)-1].Release)
		}
		records = append(records, rec)
	}
	return records, nil
}

// parseTraceLine decodes one record. A hand-rolled parser keeps the
// accepted grammar exactly the canonical grammar (encoding/json would
// admit reordered keys, whitespace and numeric forms that EncodeTrace
// can never reproduce).
func parseTraceLine(raw []byte) (TraceRecord, error) {
	s := string(raw)
	if s == "" {
		return TraceRecord{}, fmt.Errorf("blank line (canonical traces have one record per line, no blanks)")
	}
	rest, ok := strings.CutPrefix(s, `{"release":"`)
	if !ok {
		return TraceRecord{}, fmt.Errorf("record must start with {\"release\":\"...\", got %q", s)
	}
	relStr, rest, ok := strings.Cut(rest, `"`)
	if !ok {
		return TraceRecord{}, fmt.Errorf("unterminated release value in %q", s)
	}
	rel, err := parseTraceDuration(relStr, "release")
	if err != nil {
		return TraceRecord{}, err
	}
	rest, ok = strings.CutPrefix(rest, `,"cost":"`)
	if !ok {
		return TraceRecord{}, fmt.Errorf("expected \"cost\" after release in %q", s)
	}
	costStr, rest, ok := strings.Cut(rest, `"`)
	if !ok {
		return TraceRecord{}, fmt.Errorf("unterminated cost value in %q", s)
	}
	cost, err := parseTraceDuration(costStr, "cost")
	if err != nil {
		return TraceRecord{}, err
	}
	rec := TraceRecord{Release: rel, Cost: cost}
	if rest == "}" {
		return rec, nil
	}
	rest, ok = strings.CutPrefix(rest, `,"deadline":"`)
	if !ok {
		return TraceRecord{}, fmt.Errorf("expected \"deadline\" or end of record in %q", s)
	}
	dlStr, rest, ok := strings.Cut(rest, `"`)
	if !ok {
		return TraceRecord{}, fmt.Errorf("unterminated deadline value in %q", s)
	}
	if rest != "}" {
		return TraceRecord{}, fmt.Errorf("trailing content %q after deadline in %q", rest, s)
	}
	dl, err := parseTraceDuration(dlStr, "deadline")
	if err != nil {
		return TraceRecord{}, err
	}
	rec.Deadline = dl
	return rec, nil
}

// parseTraceDuration parses a duration field and insists on the
// canonical rendering, so every accepted file re-encodes to itself.
func parseTraceDuration(s, field string) (vtime.Duration, error) {
	d, err := vtime.ParseDuration(s)
	if err != nil {
		return 0, fmt.Errorf("%s: %w", field, err)
	}
	if d.String() != s {
		return 0, fmt.Errorf("%s %q is not canonical (canonical form is %q)", field, s, d.String())
	}
	return d, nil
}

// EncodeTrace renders records in the canonical JSON-lines form.
// ParseTrace(EncodeTrace(r)) == r, and for canonical input files
// EncodeTrace(ParseTrace(data)) == data byte for byte.
func EncodeTrace(records []TraceRecord) []byte {
	var b bytes.Buffer
	for _, r := range records {
		fmt.Fprintf(&b, `{"release":%q,"cost":%q`, r.Release.String(), r.Cost.String())
		if r.Deadline != 0 {
			fmt.Fprintf(&b, `,"deadline":%q`, r.Deadline.String())
		}
		b.WriteString("}\n")
	}
	return b.Bytes()
}
