package taskset

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/vtime"
)

// The task-file format mirrors the paper's measurement tool: a plain
// text file describing the tasks of the system, one task per line.
//
//	# comment
//	task <name> priority=<int> period=<dur> deadline=<dur> cost=<dur> [offset=<dur>] [value=<float>]
//
// Durations accept ns/us/ms/s suffixes; a bare number is milliseconds
// (the unit of the paper's tables). Example, the paper's Table 2:
//
//	task tau1 priority=20 period=200 deadline=70  cost=29
//	task tau2 priority=18 period=250 deadline=120 cost=29
//	task tau3 priority=16 period=1500 deadline=120 cost=29

// Parse reads a task file from r and builds the validated Set.
func Parse(r io.Reader) (*Set, error) {
	var tasks []Task
	sc := bufio.NewScanner(r)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if fields[0] != "task" {
			return nil, fmt.Errorf("taskset: line %d: expected \"task\", got %q", lineno, fields[0])
		}
		if len(fields) < 2 {
			return nil, fmt.Errorf("taskset: line %d: task line needs a name", lineno)
		}
		t := Task{Name: fields[1]}
		seen := map[string]bool{}
		for _, f := range fields[2:] {
			key, val, ok := strings.Cut(f, "=")
			if !ok {
				return nil, fmt.Errorf("taskset: line %d: malformed attribute %q (want key=value)", lineno, f)
			}
			if seen[key] {
				return nil, fmt.Errorf("taskset: line %d: duplicate attribute %q", lineno, key)
			}
			seen[key] = true
			var err error
			switch key {
			case "priority":
				t.Priority, err = strconv.Atoi(val)
			case "period":
				t.Period, err = vtime.ParseDuration(val)
			case "deadline":
				t.Deadline, err = vtime.ParseDuration(val)
			case "cost":
				t.Cost, err = vtime.ParseDuration(val)
			case "offset":
				t.Offset, err = vtime.ParseDuration(val)
			case "value":
				t.Value, err = strconv.ParseFloat(val, 64)
			default:
				return nil, fmt.Errorf("taskset: line %d: unknown attribute %q", lineno, key)
			}
			if err != nil {
				return nil, fmt.Errorf("taskset: line %d: attribute %s: %v", lineno, key, err)
			}
		}
		for _, req := range []string{"priority", "period", "deadline", "cost"} {
			if !seen[req] {
				return nil, fmt.Errorf("taskset: line %d: task %s is missing required attribute %q", lineno, t.Name, req)
			}
		}
		tasks = append(tasks, t)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("taskset: reading task file: %v", err)
	}
	return New(tasks...)
}

// ParseString is Parse over an in-memory task description.
func ParseString(s string) (*Set, error) {
	return Parse(strings.NewReader(s))
}

// Format renders the set back into the task-file format accepted by
// Parse, so that Parse(Format(s)) round-trips.
func Format(s *Set) string {
	var b strings.Builder
	for _, t := range s.Tasks {
		fmt.Fprintf(&b, "task %s priority=%d period=%s deadline=%s cost=%s",
			t.Name, t.Priority, t.Period, t.Deadline, t.Cost)
		if t.Offset != 0 {
			fmt.Fprintf(&b, " offset=%s", t.Offset)
		}
		if t.Value != 0 {
			fmt.Fprintf(&b, " value=%g", t.Value)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
