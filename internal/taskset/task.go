// Package taskset defines the periodic task model of the paper: a task
// τi has a cost Ci, a relative deadline Di, a period Ti and a priority
// Pi (RTSJ convention: a larger Pi value means a higher priority). The
// package also provides validation, a text task-file parser (the
// paper's first measurement tool parses such a file and builds the
// tasks automatically) and a deterministic synthetic generator used by
// the extension experiments.
package taskset

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/vtime"
)

// Task describes one periodic task.
type Task struct {
	// Name identifies the task in traces and charts (e.g. "tau1").
	Name string
	// Priority is the fixed scheduling priority. Larger is higher,
	// following the RTSJ PriorityScheduler convention used in the
	// paper's Table 2 (20 > 18 > 16).
	Priority int
	// Period Ti between successive job releases.
	Period vtime.Duration
	// Deadline Di relative to each release. May exceed the period
	// (arbitrary-deadline model, Lehoczky 1990).
	Deadline vtime.Duration
	// Cost Ci, the declared worst-case execution time used by
	// admission control. Actual per-job execution may exceed it when
	// a fault is injected.
	Cost vtime.Duration
	// Offset delays the first release relative to time zero. The
	// paper's analysis assumes synchronous release (offset 0); the
	// figure scenarios use an offset on τ3 (see DESIGN.md §2).
	Offset vtime.Duration
	// Value is the job value used by the value-based overload
	// baselines (Locke best-effort, RED, D-over). Zero means
	// "value equals cost", the usual convention in that literature.
	Value float64
}

// EffectiveValue returns the task's value for value-based policies,
// defaulting to the cost in milliseconds when unset.
func (t Task) EffectiveValue() float64 {
	if t.Value > 0 {
		return t.Value
	}
	return float64(t.Cost) / float64(vtime.Millisecond)
}

// Utilization returns Ci/Ti.
func (t Task) Utilization() float64 {
	if t.Period <= 0 {
		return 0
	}
	return float64(t.Cost) / float64(t.Period)
}

// Validate reports whether the task parameters are well formed.
func (t Task) Validate() error {
	switch {
	case t.Name == "":
		return fmt.Errorf("taskset: task has no name")
	case t.Period <= 0:
		return fmt.Errorf("taskset: task %s: period must be positive, got %v", t.Name, t.Period)
	case t.Cost <= 0:
		return fmt.Errorf("taskset: task %s: cost must be positive, got %v", t.Name, t.Cost)
	case t.Deadline <= 0:
		return fmt.Errorf("taskset: task %s: deadline must be positive, got %v", t.Name, t.Deadline)
	case t.Cost > t.Deadline:
		return fmt.Errorf("taskset: task %s: cost %v exceeds deadline %v (trivially infeasible)", t.Name, t.Cost, t.Deadline)
	case t.Offset < 0:
		return fmt.Errorf("taskset: task %s: offset must be non-negative, got %v", t.Name, t.Offset)
	}
	return nil
}

// String renders the task in the paper's table layout.
func (t Task) String() string {
	return fmt.Sprintf("%s{P=%d T=%v D=%v C=%v}", t.Name, t.Priority, t.Period, t.Deadline, t.Cost)
}

// Set is an ordered collection of tasks. The order of the underlying
// slice is preserved as declared; analysis code orders by priority
// itself.
type Set struct {
	Tasks []Task
}

// New builds a Set from tasks, validating each task and the collection
// (unique names, unique priorities — fixed-priority analysis in the
// paper assumes a total priority order).
func New(tasks ...Task) (*Set, error) {
	s := &Set{Tasks: append([]Task(nil), tasks...)}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// MustNew is New panicking on error, for tests and fixed fixtures.
func MustNew(tasks ...Task) *Set {
	s, err := New(tasks...)
	if err != nil {
		panic(err)
	}
	return s
}

// Validate checks every task and the set-level invariants.
func (s *Set) Validate() error {
	if len(s.Tasks) == 0 {
		return fmt.Errorf("taskset: empty task set")
	}
	names := make(map[string]bool, len(s.Tasks))
	prios := make(map[int]string, len(s.Tasks))
	for _, t := range s.Tasks {
		if err := t.Validate(); err != nil {
			return err
		}
		if names[t.Name] {
			return fmt.Errorf("taskset: duplicate task name %q", t.Name)
		}
		names[t.Name] = true
		if other, dup := prios[t.Priority]; dup {
			return fmt.Errorf("taskset: tasks %q and %q share priority %d; fixed-priority analysis requires a total order", other, t.Name, t.Priority)
		}
		prios[t.Priority] = t.Name
	}
	return nil
}

// Len returns the number of tasks.
func (s *Set) Len() int { return len(s.Tasks) }

// ByName returns the task with the given name, or nil.
func (s *Set) ByName(name string) *Task {
	for i := range s.Tasks {
		if s.Tasks[i].Name == name {
			return &s.Tasks[i]
		}
	}
	return nil
}

// IndexByName returns the index of the named task, or -1.
func (s *Set) IndexByName(name string) int {
	for i := range s.Tasks {
		if s.Tasks[i].Name == name {
			return i
		}
	}
	return -1
}

// ByPriority returns the task indices sorted from highest priority
// (largest Pi) to lowest. The returned slice indexes into s.Tasks.
func (s *Set) ByPriority() []int {
	idx := make([]int, len(s.Tasks))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return s.Tasks[idx[a]].Priority > s.Tasks[idx[b]].Priority
	})
	return idx
}

// HigherOrEqualPriority returns the indices of tasks with priority
// strictly higher than that of task i, in descending priority order.
// This is the HP(S) set of the paper's Figure 2 algorithm (the task
// itself is handled separately by the q-iteration).
func (s *Set) HigherOrEqualPriority(i int) []int {
	var out []int
	for _, j := range s.ByPriority() {
		if j != i && s.Tasks[j].Priority >= s.Tasks[i].Priority {
			out = append(out, j)
		}
	}
	return out
}

// Utilization returns the total system load U = Σ Ci/Ti (paper Eq. 1).
func (s *Set) Utilization() float64 {
	u := 0.0
	for _, t := range s.Tasks {
		u += t.Utilization()
	}
	return u
}

// HyperperiodError names the task on which the hyperperiod
// computation failed: a non-positive period (the LCM is undefined) or
// an LCM exceeding the 2^62 ns overflow guard.
type HyperperiodError struct {
	Task     string         // offending task
	Period   vtime.Duration // its declared period
	Overflow bool           // true: LCM overflow; false: non-positive period
}

func (e *HyperperiodError) Error() string {
	if e.Overflow {
		return fmt.Sprintf("taskset: hyperperiod overflows 2^62 ns at task %q (period %v)", e.Task, e.Period)
	}
	return fmt.Sprintf("taskset: task %q has non-positive period %v; hyperperiod undefined", e.Task, e.Period)
}

// Hyperperiod returns the least common multiple of all periods.
// Offsets are ignored. The error is a *HyperperiodError naming the
// offending task when a period is non-positive (historically such
// tasks were silently skipped, which could zero the whole LCM) or
// when the running LCM would exceed 2^62 ns. An empty set has
// hyperperiod 1 ns (the neutral element).
func (s *Set) Hyperperiod() (vtime.Duration, error) {
	l := int64(1)
	for i := range s.Tasks {
		t := &s.Tasks[i]
		if t.Period <= 0 {
			return 0, &HyperperiodError{Task: t.Name, Period: t.Period}
		}
		g := gcd(l, int64(t.Period))
		step := int64(t.Period) / g
		if l > (1<<62)/step {
			return 0, &HyperperiodError{Task: t.Name, Period: t.Period, Overflow: true}
		}
		l *= step
	}
	return vtime.Duration(l), nil
}

func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// Clone returns a deep copy of the set.
func (s *Set) Clone() *Set {
	return &Set{Tasks: append([]Task(nil), s.Tasks...)}
}

// WithCostDelta returns a copy of the set in which every task's cost is
// increased by delta. Used by the allowance binary search (paper §4.2).
func (s *Set) WithCostDelta(delta vtime.Duration) *Set {
	c := s.Clone()
	for i := range c.Tasks {
		c.Tasks[i].Cost += delta
	}
	return c
}

// WithTaskCostDelta returns a copy of the set in which only task i's
// cost is increased by delta. Used by the system-allowance search
// (paper §4.3).
func (s *Set) WithTaskCostDelta(i int, delta vtime.Duration) *Set {
	c := s.Clone()
	c.Tasks[i].Cost += delta
	return c
}

// String renders the set as the paper's task tables do.
func (s *Set) String() string {
	var b strings.Builder
	b.WriteString("taskset[")
	for i, t := range s.Tasks {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(t.String())
	}
	b.WriteString("]")
	return b.String()
}
