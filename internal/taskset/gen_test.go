package taskset

import "testing"

// TestGenerateDeadlineSlackProperty sweeps the generator over seeds ×
// DeadlineFactor and pins the clamp-ordering contract: every drawn
// task satisfies cost ≤ deadline ≤ period, and whenever the draw
// leaves room (cost + one granule ≤ period) the deadline keeps at
// least one granule of slack above the cost. The historical clamp
// collapsed small-factor draws to deadline == cost — zero-slack tasks
// that skewed acceptance sweeps.
func TestGenerateDeadlineSlackProperty(t *testing.T) {
	factors := []float64{0.5, 0.8, 1.0}
	utils := []float64{0.3, 0.9, 2.5} // 2.5 over 6 tasks forces near-saturated draws
	for _, df := range factors {
		for _, u := range utils {
			for seed := uint64(1); seed <= 40; seed++ {
				g := NewGenerator(seed)
				g.DeadlineFactor = df
				set, err := g.Generate(6, u)
				if err != nil {
					t.Fatalf("df=%g u=%g seed=%d: %v", df, u, seed, err)
				}
				for _, task := range set.Tasks {
					if task.Cost > task.Deadline || task.Deadline > task.Period {
						t.Fatalf("df=%g u=%g seed=%d task %s: want cost ≤ deadline ≤ period, got C=%v D=%v T=%v",
							df, u, seed, task.Name, task.Cost, task.Deadline, task.Period)
					}
					if task.Cost+g.Granularity <= task.Period && task.Deadline < task.Cost+g.Granularity {
						t.Fatalf("df=%g u=%g seed=%d task %s: zero-slack deadline %v with cost %v in period %v (room existed for a granule of slack)",
							df, u, seed, task.Name, task.Deadline, task.Cost, task.Period)
					}
				}
			}
		}
	}
}

// TestGenerateImplicitDeadlinesUnchanged pins that the slack clamp is
// inert for the default implicit-deadline configuration: with
// DeadlineFactor 1.0 every deadline still equals its period, so none
// of the seeded sweep experiments built on the default drift.
func TestGenerateImplicitDeadlinesUnchanged(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		set, err := NewGenerator(seed).Generate(5, 0.7)
		if err != nil {
			t.Fatal(err)
		}
		for _, task := range set.Tasks {
			if task.Deadline != task.Period {
				t.Fatalf("seed %d task %s: implicit-deadline draw produced D=%v ≠ T=%v", seed, task.Name, task.Deadline, task.Period)
			}
		}
	}
}
