package taskset

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/vtime"
)

func ms(v int64) vtime.Duration { return vtime.Millis(v) }

func valid(name string, prio int, T, D, C int64) Task {
	return Task{Name: name, Priority: prio, Period: ms(T), Deadline: ms(D), Cost: ms(C)}
}

func TestValidateRejectsBadTasks(t *testing.T) {
	cases := []struct {
		name string
		task Task
	}{
		{"no name", Task{Priority: 1, Period: ms(10), Deadline: ms(10), Cost: ms(1)}},
		{"zero period", Task{Name: "x", Period: 0, Deadline: ms(10), Cost: ms(1)}},
		{"negative period", Task{Name: "x", Period: -ms(1), Deadline: ms(10), Cost: ms(1)}},
		{"zero cost", Task{Name: "x", Period: ms(10), Deadline: ms(10), Cost: 0}},
		{"zero deadline", Task{Name: "x", Period: ms(10), Deadline: 0, Cost: ms(1)}},
		{"cost over deadline", Task{Name: "x", Period: ms(10), Deadline: ms(2), Cost: ms(3)}},
		{"negative offset", Task{Name: "x", Period: ms(10), Deadline: ms(10), Cost: ms(1), Offset: -ms(1)}},
	}
	for _, c := range cases {
		if err := c.task.Validate(); err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
	if err := valid("ok", 1, 10, 10, 1).Validate(); err != nil {
		t.Errorf("valid task rejected: %v", err)
	}
}

func TestSetInvariants(t *testing.T) {
	if _, err := New(); err == nil {
		t.Error("empty set must be rejected")
	}
	if _, err := New(valid("a", 1, 10, 10, 1), valid("a", 2, 20, 20, 1)); err == nil {
		t.Error("duplicate names must be rejected")
	}
	if _, err := New(valid("a", 1, 10, 10, 1), valid("b", 1, 20, 20, 1)); err == nil {
		t.Error("duplicate priorities must be rejected")
	}
}

func TestByPriorityOrdersDescending(t *testing.T) {
	s := MustNew(valid("lo", 1, 30, 30, 1), valid("hi", 9, 10, 10, 1), valid("mid", 5, 20, 20, 1))
	idx := s.ByPriority()
	gotNames := []string{s.Tasks[idx[0]].Name, s.Tasks[idx[1]].Name, s.Tasks[idx[2]].Name}
	want := []string{"hi", "mid", "lo"}
	for i := range want {
		if gotNames[i] != want[i] {
			t.Fatalf("ByPriority order = %v, want %v", gotNames, want)
		}
	}
}

func TestHigherOrEqualPriorityExcludesSelf(t *testing.T) {
	s := MustNew(valid("a", 3, 10, 10, 1), valid("b", 2, 20, 20, 1), valid("c", 1, 30, 30, 1))
	hp := s.HigherOrEqualPriority(1) // task "b"
	if len(hp) != 1 || s.Tasks[hp[0]].Name != "a" {
		t.Fatalf("HP(b) = %v, want [a]", hp)
	}
	if got := s.HigherOrEqualPriority(0); len(got) != 0 {
		t.Fatalf("HP(highest) = %v, want empty", got)
	}
}

func TestHyperperiod(t *testing.T) {
	s := MustNew(valid("a", 3, 200, 70, 29), valid("b", 2, 250, 120, 29), valid("c", 1, 1500, 120, 29))
	h, err := s.Hyperperiod()
	if err != nil {
		t.Fatalf("hyperperiod: %v", err)
	}
	if h != ms(3000) {
		t.Fatalf("hyperperiod = %v, want 3000ms (lcm of 200, 250, 1500)", h)
	}
}

func TestLookupHelpers(t *testing.T) {
	s := MustNew(valid("a", 2, 10, 10, 1), valid("b", 1, 20, 20, 2))
	if s.ByName("b") == nil || s.ByName("b").Cost != ms(2) {
		t.Error("ByName(b) lookup failed")
	}
	if s.ByName("zzz") != nil {
		t.Error("ByName of missing task must be nil")
	}
	if s.IndexByName("a") != 0 || s.IndexByName("zzz") != -1 {
		t.Error("IndexByName misbehaved")
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d, want 2", s.Len())
	}
}

func TestCostDeltaHelpers(t *testing.T) {
	s := MustNew(valid("a", 2, 10, 10, 1), valid("b", 1, 20, 20, 2))
	all := s.WithCostDelta(ms(3))
	if all.Tasks[0].Cost != ms(4) || all.Tasks[1].Cost != ms(5) {
		t.Errorf("WithCostDelta: got %v/%v", all.Tasks[0].Cost, all.Tasks[1].Cost)
	}
	one := s.WithTaskCostDelta(1, ms(3))
	if one.Tasks[0].Cost != ms(1) || one.Tasks[1].Cost != ms(5) {
		t.Errorf("WithTaskCostDelta: got %v/%v", one.Tasks[0].Cost, one.Tasks[1].Cost)
	}
	// Originals untouched.
	if s.Tasks[0].Cost != ms(1) || s.Tasks[1].Cost != ms(2) {
		t.Error("delta helpers mutated the original set")
	}
}

func TestParseTable2File(t *testing.T) {
	src := `
# the paper's Table 2 system
task tau1 priority=20 period=200 deadline=70  cost=29
task tau2 priority=18 period=250 deadline=120 cost=29
task tau3 priority=16 period=1500 deadline=120 cost=29 offset=1000
`
	s, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3 {
		t.Fatalf("parsed %d tasks, want 3", s.Len())
	}
	tau3 := s.ByName("tau3")
	if tau3.Period != ms(1500) || tau3.Offset != ms(1000) || tau3.Priority != 16 {
		t.Fatalf("tau3 parsed wrong: %+v", tau3)
	}
}

func TestParseUnits(t *testing.T) {
	s, err := ParseString("task a priority=1 period=1s deadline=500000us cost=250ms value=3.5")
	if err != nil {
		t.Fatal(err)
	}
	a := s.Tasks[0]
	if a.Period != vtime.Second || a.Deadline != ms(500) || a.Cost != ms(250) || a.Value != 3.5 {
		t.Fatalf("unit parsing wrong: %+v", a)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"job a priority=1 period=10 deadline=10 cost=1", // bad keyword
		"task", // missing name
		"task a priority=1 period=10 deadline=10",                   // missing cost
		"task a priority=1 period=10 deadline=10 cost",              // malformed attr
		"task a priority=x period=10 deadline=10 cost=1",            // bad int
		"task a priority=1 period=ten deadline=10 cost=1",           // bad duration
		"task a priority=1 priority=2 period=10 deadline=10 cost=1", // dup attr
		"task a priority=1 period=10 deadline=10 cost=1 color=red",  // unknown attr
	}
	for _, src := range cases {
		if _, err := ParseString(src); err == nil {
			t.Errorf("expected parse error for %q", src)
		}
	}
}

func TestFormatParseRoundTrip(t *testing.T) {
	s := MustNew(
		Task{Name: "a", Priority: 5, Period: ms(100), Deadline: ms(80), Cost: ms(10), Offset: ms(50), Value: 2},
		Task{Name: "b", Priority: 4, Period: ms(200), Deadline: ms(200), Cost: ms(20)},
	)
	back, err := ParseString(Format(s))
	if err != nil {
		t.Fatalf("round-trip parse: %v\n%s", err, Format(s))
	}
	if back.Len() != s.Len() {
		t.Fatalf("round trip lost tasks")
	}
	for i := range s.Tasks {
		if s.Tasks[i] != back.Tasks[i] {
			t.Errorf("task %d round-trip mismatch: %+v vs %+v", i, s.Tasks[i], back.Tasks[i])
		}
	}
}

func TestUUniFastSumsToTotal(t *testing.T) {
	g := NewGenerator(1)
	for _, n := range []int{1, 2, 5, 20} {
		us := g.UUniFast(n, 0.75)
		sum := 0.0
		for _, u := range us {
			if u < 0 {
				t.Fatalf("negative utilization draw %v", u)
			}
			sum += u
		}
		if diff := sum - 0.75; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("n=%d: UUniFast sum = %v, want 0.75", n, sum)
		}
	}
}

func TestGenerateProducesValidRMSets(t *testing.T) {
	g := NewGenerator(2)
	for trial := 0; trial < 100; trial++ {
		s, err := g.Generate(5, 0.7)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("trial %d: generated invalid set: %v", trial, err)
		}
		// Rate-monotonic: higher priority implies period no longer.
		idx := s.ByPriority()
		for i := 1; i < len(idx); i++ {
			if s.Tasks[idx[i-1]].Period > s.Tasks[idx[i]].Period {
				t.Fatalf("trial %d: priorities not rate monotonic", trial)
			}
		}
	}
}

func TestGenerateRejectsBadArgs(t *testing.T) {
	g := NewGenerator(3)
	if _, err := g.Generate(0, 0.5); err == nil {
		t.Error("n=0 must error")
	}
	if _, err := g.Generate(3, 0); err == nil {
		t.Error("U=0 must error")
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(123), NewRand(123)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give identical streams")
		}
	}
	if NewRand(1).Uint64() == NewRand(2).Uint64() {
		t.Error("different seeds should diverge immediately (SplitMix64)")
	}
}

func TestRandFloat64Range(t *testing.T) {
	f := func(seed uint64) bool {
		v := NewRand(seed).Float64()
		return v >= 0 && v < 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestRandDurationIn(t *testing.T) {
	r := NewRand(9)
	for i := 0; i < 1000; i++ {
		d := r.DurationIn(ms(5), ms(10))
		if d < ms(5) || d > ms(10) {
			t.Fatalf("DurationIn out of range: %v", d)
		}
	}
	if d := r.DurationIn(ms(7), ms(7)); d != ms(7) {
		t.Errorf("degenerate range: %v, want 7ms", d)
	}
}

func TestEffectiveValue(t *testing.T) {
	tk := valid("a", 1, 10, 10, 4)
	if v := tk.EffectiveValue(); v != 4 {
		t.Errorf("default value = %v, want cost in ms (4)", v)
	}
	tk.Value = 2.5
	if v := tk.EffectiveValue(); v != 2.5 {
		t.Errorf("explicit value = %v, want 2.5", v)
	}
}

func TestStringRenderings(t *testing.T) {
	s := MustNew(valid("a", 2, 10, 10, 1), valid("b", 1, 20, 20, 2))
	if !strings.Contains(s.String(), "a{P=2") || !strings.Contains(s.String(), "b{P=1") {
		t.Errorf("Set.String() = %q", s.String())
	}
}
