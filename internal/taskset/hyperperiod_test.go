package taskset

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/vtime"
)

// setOf builds an unvalidated set straight from periods — Hyperperiod
// must be trustworthy even on sets that never went through Validate
// (the fast-forward eligibility check calls it first).
func setOf(periods ...int64) *Set {
	s := &Set{}
	for i, p := range periods {
		s.Tasks = append(s.Tasks, Task{
			Name:     string(rune('a' + i)),
			Priority: len(periods) - i,
			Period:   vtime.Duration(p),
			Deadline: vtime.Duration(p),
			Cost:     1,
		})
	}
	return s
}

// TestHyperperiodProperties: for random sets of small periods, the
// result satisfies the LCM axioms — every period divides it, it is
// minimal (no proper divisor works), and it is invariant under task
// order and duplication.
func TestHyperperiodProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(6)
		// Periods ≤ 100 keep even the 6-task product below 2^62, so
		// the overflow guard never triggers in this property sweep.
		periods := make([]int64, n)
		for i := range periods {
			periods[i] = int64(1 + rng.Intn(100))
		}
		s := setOf(periods...)
		h, err := s.Hyperperiod()
		if err != nil {
			t.Fatalf("trial %d (%v): %v", trial, periods, err)
		}
		for _, p := range periods {
			if int64(h)%p != 0 {
				t.Fatalf("trial %d: period %d does not divide hyperperiod %d", trial, p, h)
			}
		}
		// Minimality: h/q for every prime q dividing h must break at
		// least one divisibility (checked via the smallest prime
		// factors ≤ h).
		for _, q := range []int64{2, 3, 5, 7, 11, 13} {
			if int64(h)%q != 0 {
				continue
			}
			smaller := int64(h) / q
			divisible := true
			for _, p := range periods {
				if smaller%p != 0 {
					divisible = false
					break
				}
			}
			if divisible {
				t.Fatalf("trial %d: %d/%d still divisible by all of %v — not the least common multiple", trial, h, q, periods)
			}
		}
		// Order and duplication invariance.
		shuffled := append([]int64(nil), periods...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		doubled := append(append([]int64(nil), shuffled...), periods...)
		if h2, err := setOf(doubled...).Hyperperiod(); err != nil || h2 != h {
			t.Fatalf("trial %d: shuffled+duplicated set gave %v (%v), want %v", trial, h2, err, h)
		}
	}
}

// TestHyperperiodRejectsNonPositive: zero and negative periods fail
// with a HyperperiodError naming the offending task, instead of being
// silently skipped (which historically zeroed the whole LCM).
func TestHyperperiodRejectsNonPositive(t *testing.T) {
	for _, bad := range []int64{0, -1, -5000} {
		s := setOf(100, 200)
		s.Tasks[1].Period = vtime.Duration(bad)
		_, err := s.Hyperperiod()
		var herr *HyperperiodError
		if !errors.As(err, &herr) {
			t.Fatalf("period %d: err = %v, want *HyperperiodError", bad, err)
		}
		if herr.Task != "b" || herr.Overflow || herr.Period != vtime.Duration(bad) {
			t.Fatalf("period %d: error fields %+v, want task b, no overflow", bad, herr)
		}
	}
}

// TestHyperperiodOverflowBoundary pins the 2^62 guard exactly: a set
// whose LCM is 2^62 succeeds, and the first set pushing past it fails
// with the offending task identified.
func TestHyperperiodOverflowBoundary(t *testing.T) {
	// 2^62 exactly: ok (l > 2^62/step ⇔ l·step > 2^62 for powers of 2).
	s := setOf(1<<62, 1<<10)
	h, err := s.Hyperperiod()
	if err != nil || h != vtime.Duration(int64(1)<<62) {
		t.Fatalf("2^62 LCM: got %v, %v; want exactly 2^62", h, err)
	}
	// 2^62 · 3: overflow, attributed to the task that pushed past.
	s = setOf(1<<62, 3)
	_, err = s.Hyperperiod()
	var herr *HyperperiodError
	if !errors.As(err, &herr) || !herr.Overflow || herr.Task != "b" {
		t.Fatalf("2^62·3: err = %v, want overflow at task b", err)
	}
	// Two large coprime odd periods whose product exceeds 2^62.
	s = setOf((1<<31)+1, (1<<31)+3)
	if _, err = s.Hyperperiod(); !errors.As(err, &herr) || !herr.Overflow {
		t.Fatalf("coprime 2^31±1: err = %v, want overflow", err)
	}
	// Empty set: the neutral element, no error.
	if h, err := (&Set{}).Hyperperiod(); err != nil || h != 1 {
		t.Fatalf("empty set: got %v, %v; want 1ns", h, err)
	}
}
