package taskset

import (
	"fmt"
	"math"

	"repro/internal/vtime"
)

// Generator produces deterministic synthetic task sets for the sweep
// experiments (DESIGN.md X1–X6). Utilizations follow the UUniFast
// algorithm (Bini & Buttazzo), periods are log-uniform over a range,
// and priorities are assigned rate-monotonically by default — the
// standard methodology in the fixed-priority literature the paper
// builds on.
type Generator struct {
	rng *Rand
	// PeriodMin and PeriodMax bound the log-uniform period draw.
	PeriodMin, PeriodMax vtime.Duration
	// DeadlineFactor scales deadlines relative to periods:
	// D = DeadlineFactor * T. 1.0 gives implicit deadlines; values
	// below 1 give constrained deadlines like the paper's Table 2.
	DeadlineFactor float64
	// Granularity rounds periods and costs to a multiple of this
	// duration (default 1 ms) so that hyperperiods stay tractable.
	Granularity vtime.Duration
}

// NewGenerator returns a Generator with the given seed and defaults:
// periods in [10ms, 1s], implicit deadlines, 1 ms granularity.
func NewGenerator(seed uint64) *Generator {
	return &Generator{
		rng:            NewRand(seed),
		PeriodMin:      10 * vtime.Millisecond,
		PeriodMax:      1000 * vtime.Millisecond,
		DeadlineFactor: 1.0,
		Granularity:    vtime.Millisecond,
	}
}

// UUniFast draws n task utilizations summing to totalU. It is the
// classic unbiased algorithm: each step splits the remaining
// utilization with an appropriately-powered uniform draw.
func (g *Generator) UUniFast(n int, totalU float64) []float64 {
	us := make([]float64, n)
	sum := totalU
	for i := 0; i < n-1; i++ {
		next := sum * math.Pow(g.rng.Float64(), 1.0/float64(n-i-1))
		us[i] = sum - next
		sum = next
	}
	us[n-1] = sum
	return us
}

// Generate builds a validated set of n tasks with total utilization
// totalU. Priorities are rate monotonic (shorter period = higher
// priority; ties broken by draw order). Costs are rounded up to the
// granularity and forced to be at least one granule, so the achieved
// utilization can slightly exceed totalU on tiny draws.
func (g *Generator) Generate(n int, totalU float64) (*Set, error) {
	if n <= 0 {
		return nil, fmt.Errorf("taskset: generator needs n > 0, got %d", n)
	}
	if totalU <= 0 {
		return nil, fmt.Errorf("taskset: generator needs totalU > 0, got %g", totalU)
	}
	us := g.UUniFast(n, totalU)
	tasks := make([]Task, n)
	for i := 0; i < n; i++ {
		period := g.logUniformPeriod()
		cost := vtime.Duration(float64(period) * us[i])
		cost = cost.Ceil(g.Granularity)
		if cost < g.Granularity {
			cost = g.Granularity
		}
		if cost > period {
			cost = period
		}
		deadline := vtime.Duration(float64(period) * g.DeadlineFactor).Floor(g.Granularity)
		// Guarantee cost ≤ deadline ≤ period with at least one granule
		// of slack whenever the draw leaves room. The historical clamp
		// (deadline = cost) produced zero-slack tasks on small
		// DeadlineFactor draws — the ceil'd cost overtook the floor'd
		// deadline — which skewed acceptance sweeps with trivially
		// infeasible-in-practice points. When cost already fills the
		// whole period no slack exists to give, and the deadline pins to
		// the period.
		minDeadline := cost + g.Granularity
		if minDeadline > period {
			minDeadline = period
		}
		if deadline < minDeadline {
			deadline = minDeadline
		}
		if deadline > period {
			deadline = period
		}
		tasks[i] = Task{
			Name:     fmt.Sprintf("t%d", i+1),
			Period:   period,
			Deadline: deadline,
			Cost:     cost,
		}
	}
	// Rate-monotonic priorities: shorter period gets a larger value.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	// insertion sort by period ascending, stable
	for i := 1; i < n; i++ {
		for j := i; j > 0 && tasks[order[j]].Period < tasks[order[j-1]].Period; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	for rank, idx := range order {
		tasks[idx].Priority = n - rank // highest rank → priority n
	}
	return New(tasks...)
}

// logUniformPeriod draws a period log-uniformly in
// [PeriodMin, PeriodMax], rounded to the granularity.
func (g *Generator) logUniformPeriod() vtime.Duration {
	lo := math.Log(float64(g.PeriodMin))
	hi := math.Log(float64(g.PeriodMax))
	p := math.Exp(lo + (hi-lo)*g.rng.Float64())
	d := vtime.Duration(p).Round(g.Granularity)
	if d < g.PeriodMin {
		d = g.PeriodMin
	}
	if d > g.PeriodMax {
		d = g.PeriodMax
	}
	return d
}

// Rand is a small deterministic PRNG (SplitMix64). The reproduction
// never uses math/rand's global state so that every experiment is
// byte-for-byte repeatable from its seed.
type Rand struct{ state uint64 }

// NewRand seeds a SplitMix64 stream.
func NewRand(seed uint64) *Rand { return &Rand{state: seed} }

// State exposes the stream position for checkpointing: a Rand built
// with SetState(State()) continues the exact same draw sequence.
func (r *Rand) State() uint64 { return r.state }

// SetState repositions the stream (the checkpoint-restore twin of
// State).
func (r *Rand) SetState(s uint64) { r.state = s }

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform draw in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform draw in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("taskset: Intn needs n > 0")
	}
	return int(r.Uint64() % uint64(n))
}

// ExpDuration returns an exponential draw with the given mean — the
// inter-arrival law of the Poisson/MMPP sources. The draw is floored
// at 1 ns so a sequence of gaps always advances the clock (a zero gap
// would release two jobs of one task at the same instant).
func (r *Rand) ExpDuration(mean vtime.Duration) vtime.Duration {
	d := vtime.Duration(-math.Log(1-r.Float64()) * float64(mean))
	if d < 1 {
		d = 1
	}
	return d
}

// DurationIn returns a uniform draw in [lo, hi].
func (r *Rand) DurationIn(lo, hi vtime.Duration) vtime.Duration {
	if hi <= lo {
		return lo
	}
	span := uint64(hi - lo + 1)
	return lo + vtime.Duration(r.Uint64()%span)
}
