// Package chart renders trace logs as time-series charts, the second
// measurement tool of the paper's Section 5. The ASCII renderer uses
// the paper's glyph conventions — ↑ marks periods (releases), ↓ marks
// deadlines, ◆ marks detector releases, > marks worst-case response
// times — with execution drawn as filled blocks; an SVG renderer
// produces the same chart for documents.
package chart

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/trace"
	"repro/internal/vtime"
)

// Options control rendering.
type Options struct {
	// From and To bound the charted window.
	From, To vtime.Time
	// CellMS is the ASCII time resolution in milliseconds per
	// character cell (default 2).
	CellMS int64
	// Tasks orders the lanes (default: log task order, sorted).
	Tasks []string
	// WCRTMarks places the paper's > markers: per task, the offset
	// after each release at which the worst-case response time
	// falls. Optional.
	WCRTMarks map[string]vtime.Duration
}

// Glyphs (ASCII-safe with Unicode accents matching the paper).
const (
	glyphExec     = '█'
	glyphRelease  = '↑'
	glyphDeadline = '↓'
	glyphDetector = '◆'
	glyphWCRT     = '>'
	glyphStop     = 'X'
	glyphMiss     = '!'
	glyphIdle     = '·'
)

// burst is a half-open execution interval of one task.
type burst struct {
	from, to vtime.Time
}

// laneData is everything drawn for one task.
type laneData struct {
	task      string
	bursts    []burst
	releases  []vtime.Time
	deadlines []vtime.Time // deadline miss instants
	detectors []vtime.Time
	stops     []vtime.Time
	ends      []vtime.Time
}

// extract reconstructs per-task lanes from the log. Deadline glyphs
// require deadline durations, which the log does not carry; the
// caller may supply them through opts.WCRTMarks-style map via
// Deadlines (see Render signature below) — instead we mark recorded
// DeadlineMiss events with '!' and draw '↓' from the optional
// deadline map.
func extract(l *trace.Log, tasks []string, from, to vtime.Time) map[string]*laneData {
	lanes := make(map[string]*laneData, len(tasks))
	for _, t := range tasks {
		lanes[t] = &laneData{task: t}
	}
	open := map[string]vtime.Time{} // task → burst start
	for _, e := range l.Events() {
		ln, ok := lanes[e.Task]
		if !ok {
			continue
		}
		switch e.Kind {
		case trace.JobBegin, trace.JobResume, trace.JobMigrate:
			open[e.Task] = e.At
		case trace.JobPreempt, trace.JobEnd, trace.JobStopped:
			if s, running := open[e.Task]; running {
				if e.At > s {
					ln.bursts = append(ln.bursts, burst{s, e.At})
				}
				delete(open, e.Task)
			}
			if e.Kind == trace.JobStopped {
				ln.stops = append(ln.stops, e.At)
			}
			if e.Kind == trace.JobEnd {
				ln.ends = append(ln.ends, e.At)
			}
		case trace.JobRelease:
			ln.releases = append(ln.releases, e.At)
		case trace.DeadlineMiss:
			ln.deadlines = append(ln.deadlines, e.At)
		case trace.DetectorRelease:
			ln.detectors = append(ln.detectors, e.At)
		}
	}
	// Close bursts still open at the window end.
	for task, s := range open {
		if s < to {
			lanes[task].bursts = append(lanes[task].bursts, burst{s, to})
		}
	}
	return lanes
}

// taskOrder resolves the lane order.
func taskOrder(l *trace.Log, opts Options) []string {
	if len(opts.Tasks) > 0 {
		return opts.Tasks
	}
	ts := l.Tasks()
	sort.Strings(ts)
	return ts
}

// ASCII renders the window as text, one lane per task plus an axis.
// Deadline ↓ glyphs are drawn from the optional deadlines map (task →
// relative deadline); misses are marked '!'.
func ASCII(l *trace.Log, opts Options, deadlines map[string]vtime.Duration) string {
	if opts.CellMS <= 0 {
		opts.CellMS = 2
	}
	from, to := opts.From, opts.To
	if to <= from {
		to = from.Add(vtime.Millis(100))
	}
	cells := int((to.Sub(from).Milliseconds() + opts.CellMS - 1) / opts.CellMS)
	if cells <= 0 {
		cells = 1
	}
	tasks := taskOrder(l, opts)
	lanes := extract(l, tasks, from, to)

	cellOf := func(t vtime.Time) int {
		return int(t.Sub(from).Milliseconds() / opts.CellMS)
	}
	in := func(t vtime.Time) bool { return !t.Before(from) && t.Before(to) }

	var b strings.Builder
	nameW := 6
	for _, t := range tasks {
		if len(t) > nameW {
			nameW = len(t)
		}
	}
	for _, task := range tasks {
		ln := lanes[task]
		row := make([]rune, cells)
		for i := range row {
			row[i] = glyphIdle
		}
		for _, bu := range ln.bursts {
			s, e := bu.from, bu.to
			if e.Before(from) || !s.Before(to) {
				continue
			}
			cs, ce := cellOf(vtime.Max(s, from)), cellOf(vtime.Min(e, to))
			if ce >= cells {
				ce = cells - 1
			}
			for i := cs; i <= ce && i >= 0; i++ {
				row[i] = glyphExec
			}
		}
		put := func(ts []vtime.Time, g rune) {
			for _, t := range ts {
				if in(t) {
					if c := cellOf(t); c >= 0 && c < cells {
						row[c] = g
					}
				}
			}
		}
		// WCRT marks: one per release in the window, at the offset.
		if off, ok := opts.WCRTMarks[task]; ok {
			var marks []vtime.Time
			for _, r := range ln.releases {
				marks = append(marks, r.Add(off))
			}
			put(marks, glyphWCRT)
		}
		if d, ok := deadlines[task]; ok {
			var dls []vtime.Time
			for _, r := range ln.releases {
				dls = append(dls, r.Add(d))
			}
			put(dls, glyphDeadline)
		}
		put(ln.detectors, glyphDetector)
		put(ln.releases, glyphRelease)
		put(ln.stops, glyphStop)
		put(ln.deadlines, glyphMiss)
		fmt.Fprintf(&b, "%-*s |%s|\n", nameW, task, string(row))
	}
	// Axis: tick every 10 cells.
	axis := make([]rune, cells)
	for i := range axis {
		axis[i] = ' '
	}
	var labels strings.Builder
	fmt.Fprintf(&labels, "%-*s  ", nameW, "")
	lastEnd := 0
	for i := 0; i < cells; i += 10 {
		axis[i] = '|'
		label := fmt.Sprintf("%d", from.Milliseconds()+int64(i)*opts.CellMS)
		pad := i - lastEnd
		if pad < 0 {
			continue
		}
		labels.WriteString(strings.Repeat(" ", pad))
		labels.WriteString(label)
		lastEnd = i + len(label)
	}
	fmt.Fprintf(&b, "%-*s |%s|\n", nameW, "t(ms)", string(axis))
	b.WriteString(labels.String())
	b.WriteByte('\n')
	b.WriteString(legend())
	return b.String()
}

// legend explains the glyphs, echoing the paper's figure caption.
func legend() string {
	return fmt.Sprintf("legend: %c exec  %c release  %c deadline  %c detector  %c wcrt  %c stopped  %c miss\n",
		glyphExec, glyphRelease, glyphDeadline, glyphDetector, glyphWCRT, glyphStop, glyphMiss)
}

// SVG renders the same window as a standalone SVG document.
func SVG(l *trace.Log, opts Options, deadlines map[string]vtime.Duration) string {
	from, to := opts.From, opts.To
	if to <= from {
		to = from.Add(vtime.Millis(100))
	}
	tasks := taskOrder(l, opts)
	lanes := extract(l, tasks, from, to)

	const (
		laneH   = 40
		padL    = 80
		padT    = 20
		pxPerMS = 6.0
	)
	spanMS := float64(to.Sub(from).Milliseconds())
	width := padL + int(spanMS*pxPerMS) + 20
	height := padT + laneH*len(tasks) + 40
	x := func(t vtime.Time) float64 {
		return float64(padL) + float64(t.Sub(from).Nanoseconds())/1e6*pxPerMS
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="monospace" font-size="11">`+"\n", width, height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	for i, task := range tasks {
		ln := lanes[task]
		y := padT + i*laneH
		base := y + laneH - 12
		fmt.Fprintf(&b, `<text x="4" y="%d">%s</text>`+"\n", base, task)
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#999"/>`+"\n", padL, base, width-10, base)
		for _, bu := range ln.bursts {
			s, e := vtime.Max(bu.from, from), vtime.Min(bu.to, to)
			if e <= s {
				continue
			}
			fmt.Fprintf(&b, `<rect x="%.1f" y="%d" width="%.1f" height="14" fill="#4a7db3"/>`+"\n",
				x(s), base-14, x(e)-x(s))
		}
		mark := func(ts []vtime.Time, draw func(px float64, y int) string) {
			for _, t := range ts {
				if t.Before(from) || !t.Before(to) {
					continue
				}
				b.WriteString(draw(x(t), base))
				b.WriteByte('\n')
			}
		}
		mark(ln.releases, func(px float64, y int) string { // up arrow
			return fmt.Sprintf(`<path d="M%.1f %d l-3 8 h6 z" fill="black"/>`, px, y-24)
		})
		if d, ok := deadlines[task]; ok {
			var dls []vtime.Time
			for _, r := range ln.releases {
				dls = append(dls, r.Add(d))
			}
			mark(dls, func(px float64, y int) string { // down arrow
				return fmt.Sprintf(`<path d="M%.1f %d l-3 -8 h6 z" fill="#c33"/>`, px, y+10)
			})
		}
		mark(ln.detectors, func(px float64, y int) string { // diamond
			return fmt.Sprintf(`<path d="M%.1f %d l4 4 l-4 4 l-4 -4 z" fill="#7a3db3"/>`, px, y-30)
		})
		if off, ok := opts.WCRTMarks[task]; ok {
			var ms []vtime.Time
			for _, r := range ln.releases {
				ms = append(ms, r.Add(off))
			}
			mark(ms, func(px float64, y int) string { // chevron
				return fmt.Sprintf(`<path d="M%.1f %d l5 4 l-5 4" stroke="#2a2" fill="none"/>`, px, y-26)
			})
		}
		mark(ln.stops, func(px float64, y int) string { // X
			return fmt.Sprintf(`<path d="M%.1f %d l6 6 m0 -6 l-6 6" stroke="#c33" stroke-width="2"/>`, px-3, y-20)
		})
		mark(ln.deadlines, func(px float64, y int) string { // miss !
			return fmt.Sprintf(`<text x="%.1f" y="%d" fill="#c00" font-weight="bold">!</text>`, px-2, y-18)
		})
	}
	// Axis ticks every 20 ms.
	axisY := padT + laneH*len(tasks) + 8
	for t := from; t.Before(to.Add(1)); t = t.Add(vtime.Millis(20)) {
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="#666"/>`+"\n", x(t), axisY-4, x(t), axisY)
		fmt.Fprintf(&b, `<text x="%.1f" y="%d">%d</text>`+"\n", x(t)-10, axisY+14, t.Milliseconds())
	}
	b.WriteString("</svg>\n")
	return b.String()
}
