package chart

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/fault"
	"repro/internal/taskset"
	"repro/internal/trace"
	"repro/internal/vtime"
)

func ms(v int64) vtime.Duration { return vtime.Millis(v) }

func figureRun(t *testing.T, tr detect.Treatment) *core.Result {
	t.Helper()
	s := taskset.MustNew(
		taskset.Task{Name: "tau1", Priority: 20, Period: ms(200), Deadline: ms(70), Cost: ms(29)},
		taskset.Task{Name: "tau2", Priority: 18, Period: ms(250), Deadline: ms(120), Cost: ms(29)},
		taskset.Task{Name: "tau3", Priority: 16, Period: ms(1500), Deadline: ms(120), Cost: ms(29), Offset: ms(1000)},
	)
	sys, err := core.NewSystem(core.Config{
		Tasks:           s,
		Treatment:       tr,
		Faults:          fault.Plan{"tau1": fault.OverrunAt{Job: 5, Extra: ms(40)}},
		Horizon:         ms(1500),
		TimerResolution: detect.DefaultTimerResolution,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func figOpts() Options {
	return Options{
		From:   vtime.AtMillis(990),
		To:     vtime.AtMillis(1140),
		CellMS: 2,
		Tasks:  []string{"tau1", "tau2", "tau3"},
		WCRTMarks: map[string]vtime.Duration{
			"tau1": ms(29), "tau2": ms(58), "tau3": ms(87),
		},
	}
}

func figDeadlines() map[string]vtime.Duration {
	return map[string]vtime.Duration{"tau1": ms(70), "tau2": ms(120), "tau3": ms(120)}
}

func TestASCIIFigure3ShowsMiss(t *testing.T) {
	res := figureRun(t, detect.NoDetection)
	out := ASCII(res.Log, figOpts(), figDeadlines())
	for _, want := range []string{"tau1", "tau2", "tau3", "legend", "█", "↑", "!"} {
		if !strings.Contains(out, want) {
			t.Errorf("ASCII chart missing %q:\n%s", want, out)
		}
	}
	// Three lanes plus axis: at least 5 lines.
	if strings.Count(out, "\n") < 5 {
		t.Errorf("chart too short:\n%s", out)
	}
}

func TestASCIIFigure5ShowsStopAndDetectors(t *testing.T) {
	res := figureRun(t, detect.Stop)
	out := ASCII(res.Log, figOpts(), figDeadlines())
	if !strings.Contains(out, "X") {
		t.Errorf("stop glyph missing:\n%s", out)
	}
	if !strings.Contains(out, "◆") {
		t.Errorf("detector glyph missing:\n%s", out)
	}
	lanes := out[:strings.Index(out, "legend")]
	if strings.Contains(lanes, "!") {
		t.Errorf("no deadline miss expected under stop (only tau1 is stopped):\n%s", out)
	}
}

func TestASCIIDefaults(t *testing.T) {
	res := figureRun(t, detect.NoDetection)
	// No options: defaults must not panic and must include all tasks.
	out := ASCII(res.Log, Options{From: vtime.AtMillis(0), To: vtime.AtMillis(200)}, nil)
	for _, task := range []string{"tau1", "tau2", "tau3"} {
		if !strings.Contains(out, task) {
			t.Errorf("default chart missing %s", task)
		}
	}
	// Degenerate window.
	out = ASCII(res.Log, Options{From: vtime.AtMillis(50), To: vtime.AtMillis(50)}, nil)
	if out == "" {
		t.Error("degenerate window must still render")
	}
}

func TestSVGWellFormed(t *testing.T) {
	res := figureRun(t, detect.SystemAllowance)
	out := SVG(res.Log, figOpts(), figDeadlines())
	checks := []string{
		"<svg", "</svg>", "xmlns=\"http://www.w3.org/2000/svg\"",
		"tau1", "tau2", "tau3", "<rect", "<path",
	}
	for _, want := range checks {
		if !strings.Contains(out, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	if strings.Count(out, "<svg") != 1 || strings.Count(out, "</svg>") != 1 {
		t.Error("SVG must have exactly one root element")
	}
}

func TestBurstReconstruction(t *testing.T) {
	// Synthetic log: a burst split by preemption renders as two
	// separate execution runs with a gap.
	l := trace.NewLog(8)
	add := func(atMS int64, k trace.Kind) {
		l.Append(trace.Event{At: vtime.AtMillis(atMS), Kind: k, Task: "a", Job: 0})
	}
	add(0, trace.JobRelease)
	add(0, trace.JobBegin)
	add(10, trace.JobPreempt)
	add(30, trace.JobResume)
	add(40, trace.JobEnd)
	out := ASCII(l, Options{From: 0, To: vtime.AtMillis(50), CellMS: 2, Tasks: []string{"a"}}, nil)
	lane := strings.SplitN(out, "\n", 2)[0]
	// Cells 0..4 exec, 5..14 idle, 15..19 exec.
	if !strings.Contains(lane, "█████") {
		t.Errorf("first burst missing: %s", lane)
	}
	if !strings.Contains(lane, "·····") {
		t.Errorf("preemption gap missing: %s", lane)
	}
}

func TestOpenBurstAtWindowEnd(t *testing.T) {
	l := trace.NewLog(4)
	l.Append(trace.Event{At: vtime.AtMillis(0), Kind: trace.JobBegin, Task: "a", Job: 0})
	out := ASCII(l, Options{From: 0, To: vtime.AtMillis(20), CellMS: 2, Tasks: []string{"a"}}, nil)
	if !strings.Contains(out, "██████████") {
		t.Errorf("open burst must extend to the window end:\n%s", out)
	}
}
