// Package fault defines the temporal-fault models of the paper's
// Section 3: a fault is a job taking more CPU time than its declared
// cost Ci, "either because it was underestimated, or because of an
// external event with the system". Models map a job index to the
// job's actual execution demand; the engine draws from them at each
// release. The paper's evaluation injects a single voluntary cost
// overrun into the highest-priority task; richer models support the
// extension sweeps.
package fault

import (
	"fmt"

	"repro/internal/taskset"
	"repro/internal/vtime"
)

// Model yields the actual execution demand of job q (0-based) of a
// task whose declared cost is nominal. Implementations must be
// deterministic functions of (q, nominal) and any seed captured at
// construction, so that runs are reproducible.
type Model interface {
	// ActualCost returns the job's true demand. Values below nominal
	// model cost under-runs (paper §7); values above model faults.
	ActualCost(q int64, nominal vtime.Duration) vtime.Duration
}

// None is the fault-free model: every job takes exactly its cost.
type None struct{}

// ActualCost returns nominal unchanged.
func (None) ActualCost(_ int64, nominal vtime.Duration) vtime.Duration { return nominal }

// OverrunAt injects a single cost overrun into one job, the paper's
// §6 scenario ("a cost overrun was voluntarily added for the priority
// task").
type OverrunAt struct {
	// Job is the 0-based index of the faulty job.
	Job int64
	// Extra is added to the nominal cost of that job.
	Extra vtime.Duration
}

// ActualCost returns nominal, plus Extra on the selected job.
func (o OverrunAt) ActualCost(q int64, nominal vtime.Duration) vtime.Duration {
	if q == o.Job {
		return nominal + o.Extra
	}
	return nominal
}

// OverrunEvery injects a recurring overrun: every Kth job starting at
// job First overruns by Extra. With K = 1 every job is faulty — a
// systematically underestimated cost.
type OverrunEvery struct {
	First int64
	K     int64
	Extra vtime.Duration
}

// ActualCost returns nominal plus Extra on every selected job.
func (o OverrunEvery) ActualCost(q int64, nominal vtime.Duration) vtime.Duration {
	k := o.K
	if k <= 0 {
		k = 1
	}
	if q >= o.First && (q-o.First)%k == 0 {
		return nominal + o.Extra
	}
	return nominal
}

// UnderrunEvery models overestimated costs (paper §7 future work):
// every job completes Early sooner than declared, floored at one
// microsecond of real work.
type UnderrunEvery struct {
	Early vtime.Duration
}

// ActualCost returns nominal minus Early, floored at 1 µs.
func (u UnderrunEvery) ActualCost(_ int64, nominal vtime.Duration) vtime.Duration {
	c := nominal - u.Early
	if c < vtime.Microsecond {
		c = vtime.Microsecond
	}
	return c
}

// RandomJitter adds a bounded pseudo-random overrun to every job,
// modelling the paper's §4.1 observation that polling the stop flag
// through RealtimeThread.currentRealtimeThread() makes tasks
// "regularly make small cost overruns, about a few milliseconds".
type RandomJitter struct {
	rng *taskset.Rand
	max vtime.Duration
}

// NewRandomJitter returns a jitter model with the given seed and
// maximum per-job overrun.
func NewRandomJitter(seed uint64, max vtime.Duration) *RandomJitter {
	return &RandomJitter{rng: taskset.NewRand(seed), max: max}
}

// ActualCost returns nominal plus a uniform draw in [0, max].
func (r *RandomJitter) ActualCost(_ int64, nominal vtime.Duration) vtime.Duration {
	if r.max <= 0 {
		return nominal
	}
	return nominal + r.rng.DurationIn(0, r.max)
}

// stateful is the internal face of models carrying mutable draw
// state (today only RandomJitter's RNG): the pieces a checkpoint must
// capture for a resumed run to draw the same sequence.
type stateful interface {
	faultState() uint64
	setFaultState(uint64)
}

func (r *RandomJitter) faultState() uint64     { return r.rng.State() }
func (r *RandomJitter) setFaultState(s uint64) { r.rng.SetState(s) }

// ModelState flattens the mutable state of a model (recursing through
// Chain) into a checkpointable word list. Stateless models contribute
// nothing; a nil model is allowed and yields nil.
func ModelState(m Model) []uint64 {
	var out []uint64
	appendModelState(m, &out)
	return out
}

func appendModelState(m Model, out *[]uint64) {
	switch v := m.(type) {
	case stateful:
		*out = append(*out, v.faultState())
	case Chain:
		for _, c := range v {
			appendModelState(c, out)
		}
	}
}

// SetModelState is the restore twin of ModelState: it walks the model
// in the same order and reinjects the captured words. It fails if the
// state length does not match the model's shape (a checkpoint from a
// different fault plan).
func SetModelState(m Model, state []uint64) error {
	rest, err := setModelState(m, state)
	if err != nil {
		return err
	}
	if len(rest) != 0 {
		return fmt.Errorf("fault: model state has %d extra words (checkpoint from a different fault plan?)", len(rest))
	}
	return nil
}

func setModelState(m Model, state []uint64) ([]uint64, error) {
	switch v := m.(type) {
	case stateful:
		if len(state) == 0 {
			return nil, fmt.Errorf("fault: model state exhausted (checkpoint from a different fault plan?)")
		}
		v.setFaultState(state[0])
		return state[1:], nil
	case Chain:
		var err error
		for _, c := range v {
			if state, err = setModelState(c, state); err != nil {
				return nil, err
			}
		}
	}
	return state, nil
}

// Chain composes models: each model's delta relative to nominal is
// accumulated. An OverrunAt chained with RandomJitter reproduces a
// faulty task on a noisy platform.
type Chain []Model

// ActualCost applies every model's delta to the nominal cost.
func (c Chain) ActualCost(q int64, nominal vtime.Duration) vtime.Duration {
	actual := nominal
	for _, m := range c {
		actual += m.ActualCost(q, nominal) - nominal
	}
	if actual < vtime.Microsecond {
		actual = vtime.Microsecond
	}
	return actual
}

// Plan maps task names to fault models; tasks not present are
// fault-free. The zero value is usable.
type Plan map[string]Model

// For returns the model for a task, defaulting to None.
func (p Plan) For(task string) Model {
	if p == nil {
		return None{}
	}
	if m, ok := p[task]; ok && m != nil {
		return m
	}
	return None{}
}

// Interference models an external event window (paper §3: a fault may
// arise "because of an external event with the system"): every job
// released within [From, To) incurs Extra additional demand —
// interrupt storms, cache pollution from a co-located load, and the
// like. The model needs the task's release pattern to map job
// indices to instants.
type Interference struct {
	// Offset and Period describe the victim task's releases.
	Offset, Period vtime.Duration
	// From (inclusive) and To (exclusive) bound the window.
	From, To vtime.Time
	// Extra is added to every job released inside the window.
	Extra vtime.Duration
}

// ActualCost returns nominal plus Extra for jobs released in the
// window.
func (iv Interference) ActualCost(q int64, nominal vtime.Duration) vtime.Duration {
	release := vtime.Time(iv.Offset) + vtime.Time(vtime.Duration(q)*iv.Period)
	if !release.Before(iv.From) && release.Before(iv.To) {
		return nominal + iv.Extra
	}
	return nominal
}
