package fault

import (
	"testing"
	"testing/quick"

	"repro/internal/vtime"
)

func ms(v int64) vtime.Duration { return vtime.Millis(v) }

func TestNone(t *testing.T) {
	m := None{}
	for q := int64(0); q < 10; q++ {
		if m.ActualCost(q, ms(29)) != ms(29) {
			t.Fatal("None must not change the cost")
		}
	}
}

func TestOverrunAt(t *testing.T) {
	m := OverrunAt{Job: 5, Extra: ms(40)}
	if m.ActualCost(5, ms(29)) != ms(69) {
		t.Error("job 5 must overrun by 40")
	}
	for _, q := range []int64{0, 4, 6, 100} {
		if m.ActualCost(q, ms(29)) != ms(29) {
			t.Errorf("job %d must be clean", q)
		}
	}
}

func TestOverrunEvery(t *testing.T) {
	m := OverrunEvery{First: 1, K: 2, Extra: ms(10)}
	faulty := map[int64]bool{1: true, 3: true, 5: true}
	for q := int64(0); q < 6; q++ {
		want := ms(20)
		if faulty[q] {
			want = ms(30)
		}
		if got := m.ActualCost(q, ms(20)); got != want {
			t.Errorf("job %d: %v, want %v", q, got, want)
		}
	}
	// K <= 0 behaves as every job from First.
	m0 := OverrunEvery{First: 2, K: 0, Extra: ms(1)}
	if m0.ActualCost(1, ms(5)) != ms(5) || m0.ActualCost(2, ms(5)) != ms(6) || m0.ActualCost(3, ms(5)) != ms(6) {
		t.Error("K=0 must behave as K=1")
	}
}

func TestUnderrunEvery(t *testing.T) {
	m := UnderrunEvery{Early: ms(5)}
	if m.ActualCost(0, ms(29)) != ms(24) {
		t.Error("under-run must subtract")
	}
	// Floor at 1 µs.
	if m.ActualCost(0, ms(3)) != vtime.Microsecond {
		t.Errorf("under-run floor: %v", m.ActualCost(0, ms(3)))
	}
}

func TestRandomJitterBoundedAndDeterministic(t *testing.T) {
	a := NewRandomJitter(1, ms(3))
	b := NewRandomJitter(1, ms(3))
	for q := int64(0); q < 200; q++ {
		ca, cb := a.ActualCost(q, ms(29)), b.ActualCost(q, ms(29))
		if ca != cb {
			t.Fatal("same seed must give identical jitter")
		}
		if ca < ms(29) || ca > ms(32) {
			t.Fatalf("jitter out of bounds: %v", ca)
		}
	}
	z := NewRandomJitter(1, 0)
	if z.ActualCost(0, ms(29)) != ms(29) {
		t.Error("zero max must disable jitter")
	}
}

func TestChainComposesDeltas(t *testing.T) {
	c := Chain{OverrunAt{Job: 2, Extra: ms(10)}, UnderrunEvery{Early: ms(4)}}
	if got := c.ActualCost(0, ms(20)); got != ms(16) {
		t.Errorf("clean chained job: %v, want 16ms", got)
	}
	if got := c.ActualCost(2, ms(20)); got != ms(26) {
		t.Errorf("faulty chained job: %v, want 26ms (20+10-4)", got)
	}
	// Floor guard.
	deep := Chain{UnderrunEvery{Early: ms(100)}}
	if got := deep.ActualCost(0, ms(1)); got != vtime.Microsecond {
		t.Errorf("chain floor: %v", got)
	}
}

func TestPlanDefaults(t *testing.T) {
	var nilPlan Plan
	if _, ok := nilPlan.For("x").(None); !ok {
		t.Error("nil plan must yield None")
	}
	p := Plan{"a": OverrunAt{Job: 1, Extra: ms(5)}, "b": nil}
	if _, ok := p.For("a").(OverrunAt); !ok {
		t.Error("plan lookup failed")
	}
	if _, ok := p.For("b").(None); !ok {
		t.Error("nil model entry must default to None")
	}
	if _, ok := p.For("missing").(None); !ok {
		t.Error("missing task must default to None")
	}
}

// Property: every model returns a positive cost for positive nominals.
func TestQuickPositiveCosts(t *testing.T) {
	models := []Model{
		None{},
		OverrunAt{Job: 3, Extra: ms(7)},
		OverrunEvery{First: 0, K: 3, Extra: ms(2)},
		UnderrunEvery{Early: ms(50)},
		NewRandomJitter(9, ms(2)),
		Chain{OverrunAt{Job: 1, Extra: ms(1)}, NewRandomJitter(3, ms(1))},
	}
	f := func(q uint16, nomMS uint8) bool {
		nominal := ms(int64(nomMS%100) + 1)
		for _, m := range models {
			if m.ActualCost(int64(q), nominal) <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestInterferenceWindow(t *testing.T) {
	// Task with period 100: jobs release at 0, 100, 200, ...
	iv := Interference{
		Period: ms(100),
		From:   vtime.AtMillis(150),
		To:     vtime.AtMillis(350),
		Extra:  ms(7),
	}
	want := map[int64]vtime.Duration{
		0: ms(20), // release 0: outside
		1: ms(20), // release 100: outside
		2: ms(27), // release 200: inside
		3: ms(27), // release 300: inside
		4: ms(20), // release 400: outside (To exclusive)
	}
	for q, w := range want {
		if got := iv.ActualCost(q, ms(20)); got != w {
			t.Errorf("job %d: %v, want %v", q, got, w)
		}
	}
	// Boundary: release exactly at From is inside; at To is outside.
	edge := Interference{Period: ms(100), From: vtime.AtMillis(100), To: vtime.AtMillis(200), Extra: ms(1)}
	if edge.ActualCost(1, ms(5)) != ms(6) {
		t.Error("release at From must be inside")
	}
	if edge.ActualCost(2, ms(5)) != ms(5) {
		t.Error("release at To must be outside")
	}
	// Offset shifts releases.
	off := Interference{Offset: ms(50), Period: ms(100), From: vtime.AtMillis(150), To: vtime.AtMillis(151), Extra: ms(1)}
	if off.ActualCost(1, ms(5)) != ms(6) {
		t.Error("offset release 50+100=150 must be inside")
	}
}
