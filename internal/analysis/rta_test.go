package analysis

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/taskset"
	"repro/internal/vtime"
)

// table1 is the paper's Table 1: τ1(P20, D6, T6, C3), τ2(P15, D2, T4,
// C2). Under RTSJ priorities τ1 is the higher-priority task; the
// system has U = 1 exactly and τ2's responses exceed its period, so
// the arbitrary-deadline iteration is required.
func table1() *taskset.Set {
	return taskset.MustNew(
		taskset.Task{Name: "tau1", Priority: 20, Period: vtime.Millis(6), Deadline: vtime.Millis(6), Cost: vtime.Millis(3)},
		taskset.Task{Name: "tau2", Priority: 15, Period: vtime.Millis(4), Deadline: vtime.Millis(6), Cost: vtime.Millis(2)},
	)
}

// table2 is the paper's Table 2 evaluation system.
func table2() *taskset.Set {
	return taskset.MustNew(
		taskset.Task{Name: "tau1", Priority: 20, Period: vtime.Millis(200), Deadline: vtime.Millis(70), Cost: vtime.Millis(29)},
		taskset.Task{Name: "tau2", Priority: 18, Period: vtime.Millis(250), Deadline: vtime.Millis(120), Cost: vtime.Millis(29)},
		taskset.Task{Name: "tau3", Priority: 16, Period: vtime.Millis(1500), Deadline: vtime.Millis(120), Cost: vtime.Millis(29)},
	)
}

func ms(v int64) vtime.Duration { return vtime.Millis(v) }

func TestTable2ResponseTimes(t *testing.T) {
	// Paper Table 2: WCRT = 29, 58, 87 ms.
	s := table2()
	want := []vtime.Duration{ms(29), ms(58), ms(87)}
	got, err := ResponseTimes(s)
	if err != nil {
		t.Fatalf("ResponseTimes: %v", err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("WCRT[%s] = %v, want %v", s.Tasks[i].Name, got[i], want[i])
		}
	}
}

func TestTable1JobResponseTimes(t *testing.T) {
	// The level-2 busy period of τ2 contains three jobs with
	// responses 5, 6, 4 ms: the worst case is the *second* job, not
	// the critical-instant job — the paper's Figure 1 point.
	s := table1()
	jobs, err := JobResponseTimes(s, 1, 0)
	if err != nil {
		t.Fatalf("JobResponseTimes: %v", err)
	}
	wantResp := []vtime.Duration{ms(5), ms(6), ms(4)}
	if len(jobs) != len(wantResp) {
		t.Fatalf("got %d jobs in busy period, want %d (%+v)", len(jobs), len(wantResp), jobs)
	}
	for i, w := range wantResp {
		if jobs[i].Response != w {
			t.Errorf("job q=%d response = %v, want %v", i, jobs[i].Response, w)
		}
	}
	wcrt, err := WCResponseTime(s, 1, 0)
	if err != nil {
		t.Fatalf("WCResponseTime: %v", err)
	}
	if wcrt != ms(6) {
		t.Errorf("WCRT(tau2) = %v, want 6ms", wcrt)
	}
	if jobs[0].Response >= wcrt {
		t.Errorf("critical-instant job response %v should be below the WCRT %v", jobs[0].Response, wcrt)
	}
}

func TestTable1HigherPriorityTask(t *testing.T) {
	// τ1 is the highest-priority task: its WCRT is its own cost.
	wcrt, err := WCResponseTime(table1(), 0, 0)
	if err != nil {
		t.Fatalf("WCResponseTime: %v", err)
	}
	if wcrt != ms(3) {
		t.Errorf("WCRT(tau1) = %v, want 3ms", wcrt)
	}
}

func TestLoadTest(t *testing.T) {
	if v := LoadTest(table1()); v != VerdictInconclusive {
		t.Errorf("Table 1 has U = 1: load test must be inconclusive, got %v", v)
	}
	over := taskset.MustNew(
		taskset.Task{Name: "a", Priority: 2, Period: ms(10), Deadline: ms(10), Cost: ms(6)},
		taskset.Task{Name: "b", Priority: 1, Period: ms(10), Deadline: ms(10), Cost: ms(5)},
	)
	if v := LoadTest(over); v != VerdictInfeasible {
		t.Errorf("U = 1.1 must be infeasible by Eq. 1, got %v", v)
	}
}

func TestUtilization(t *testing.T) {
	if u := Utilization(table1()); math.Abs(u-1.0) > 1e-12 {
		t.Errorf("Table 1 U = %v, want 1.0", u)
	}
	u := Utilization(table2())
	want := 29.0/200 + 29.0/250 + 29.0/1500
	if math.Abs(u-want) > 1e-12 {
		t.Errorf("Table 2 U = %v, want %v", u, want)
	}
}

func TestLiuLaylandAndHyperbolicBounds(t *testing.T) {
	// Table 2: U ≈ 0.2797, well under both bounds.
	s := table2()
	if v := LiuLaylandBound(s); v != VerdictFeasible {
		t.Errorf("LL bound on Table 2 = %v, want feasible", v)
	}
	if v := HyperbolicBound(s); v != VerdictFeasible {
		t.Errorf("hyperbolic bound on Table 2 = %v, want feasible", v)
	}
	// Three tasks at U=0.78 total exceed the LL bound (~0.7798) per
	// task set but pass hyperbolic only sometimes; construct a case
	// passing hyperbolic and failing LL to show dominance:
	// utilizations 0.5, 0.2, 0.1: LL bound 3(2^{1/3}-1)=0.7798 < 0.8;
	// hyperbolic: 1.5*1.2*1.1 = 1.98 ≤ 2 → feasible.
	s2 := taskset.MustNew(
		taskset.Task{Name: "a", Priority: 3, Period: ms(10), Deadline: ms(10), Cost: ms(5)},
		taskset.Task{Name: "b", Priority: 2, Period: ms(20), Deadline: ms(20), Cost: ms(4)},
		taskset.Task{Name: "c", Priority: 1, Period: ms(40), Deadline: ms(40), Cost: ms(4)},
	)
	if v := LiuLaylandBound(s2); v != VerdictInconclusive {
		t.Errorf("LL bound at U=0.8 with n=3 = %v, want inconclusive", v)
	}
	if v := HyperbolicBound(s2); v != VerdictFeasible {
		t.Errorf("hyperbolic bound on Π(Ui+1)=1.98 = %v, want feasible", v)
	}
}

func TestUnboundedResponseTime(t *testing.T) {
	s := taskset.MustNew(
		taskset.Task{Name: "hog", Priority: 9, Period: ms(10), Deadline: ms(100), Cost: ms(8)},
		taskset.Task{Name: "low", Priority: 1, Period: ms(10), Deadline: ms(100), Cost: ms(5)},
	)
	if _, err := WCResponseTime(s, 1, 0); err == nil {
		t.Fatal("expected unbounded response time at load 1.3")
	}
}

func TestBlockingTermExtendsResponse(t *testing.T) {
	// A blocking term models lower-priority critical sections (paper
	// §7 future work); it must add to every job's demand.
	s := table2()
	base, err := WCResponseTime(s, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	blocked, err := WCResponseTime(s, 1, ms(5))
	if err != nil {
		t.Fatal(err)
	}
	if blocked != base+ms(5) {
		t.Errorf("blocking 5ms: WCRT %v, want %v", blocked, base+ms(5))
	}
}

func TestFeasibleReport(t *testing.T) {
	rep, err := Feasible(table2())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Feasible || rep.Unbounded {
		t.Fatalf("Table 2 must be feasible: %+v", rep)
	}
	if len(rep.Misses) != 0 {
		t.Errorf("no misses expected, got %v", rep.Misses)
	}
	// Tighten τ3's deadline below its WCRT: infeasible with τ3 named.
	s := table2()
	s.Tasks[2].Deadline = ms(80)
	rep, err = Feasible(s)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Feasible {
		t.Fatal("deadline 80 < WCRT 87 must be infeasible")
	}
	if len(rep.Misses) != 1 || rep.Misses[0] != "tau3" {
		t.Errorf("misses = %v, want [tau3]", rep.Misses)
	}
	if got := rep.Render(s); got == "" {
		t.Error("Render returned empty report")
	}
}

func TestFeasibleOverload(t *testing.T) {
	s := taskset.MustNew(
		taskset.Task{Name: "a", Priority: 2, Period: ms(10), Deadline: ms(10), Cost: ms(7)},
		taskset.Task{Name: "b", Priority: 1, Period: ms(10), Deadline: ms(10), Cost: ms(7)},
	)
	rep, err := Feasible(s)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Unbounded || rep.Feasible {
		t.Fatalf("U=1.4 must report unbounded: %+v", rep)
	}
}

// TestWCRTDominatesCriticalInstant: the WCRT returned by the Figure 2
// algorithm is never below the critical-instant (q=0) response.
func TestWCRTDominatesCriticalInstant(t *testing.T) {
	gen := taskset.NewGenerator(42)
	for trial := 0; trial < 200; trial++ {
		s, err := gen.Generate(4, 0.85)
		if err != nil {
			t.Fatal(err)
		}
		for i := range s.Tasks {
			jobs, err := JobResponseTimes(s, i, 0)
			if err != nil {
				continue // level load may reach 1 on rounding; skip
			}
			wcrt, err := WCResponseTime(s, i, 0)
			if err != nil {
				t.Fatalf("trial %d: jobs converged but WCRT failed: %v", trial, err)
			}
			var max vtime.Duration
			for _, j := range jobs {
				if j.Response > max {
					max = j.Response
				}
			}
			if wcrt != max {
				t.Fatalf("trial %d task %d: WCRT %v != max job response %v", trial, i, wcrt, max)
			}
			if wcrt < jobs[0].Response {
				t.Fatalf("trial %d task %d: WCRT %v below critical-instant response %v", trial, i, wcrt, jobs[0].Response)
			}
		}
	}
}

// Property: WCRT is monotone in every task's cost — inflating any cost
// can never shrink any response time. This is the monotonicity the
// allowance binary search relies on.
func TestWCRTMonotoneInCost(t *testing.T) {
	gen := taskset.NewGenerator(7)
	for trial := 0; trial < 100; trial++ {
		s, err := gen.Generate(3, 0.6)
		if err != nil {
			t.Fatal(err)
		}
		base, err := ResponseTimes(s)
		if err != nil {
			continue
		}
		inflated, err := ResponseTimes(s.WithCostDelta(vtime.Millis(1)))
		if err != nil {
			continue // may have become unbounded — fine
		}
		for i := range base {
			if inflated[i] < base[i] {
				t.Fatalf("trial %d: inflating costs shrank WCRT[%d]: %v -> %v", trial, i, base[i], inflated[i])
			}
		}
	}
}

// Property (testing/quick): for two-task sets with the high-priority
// task's utilization strictly under 1, WCRT of the low-priority task
// equals the first idle-point fixed point and is at least C_low +
// C_high (both run at the critical instant).
func TestQuickTwoTaskLowerBound(t *testing.T) {
	f := func(c1, t1, c2, t2 uint8) bool {
		C1 := vtime.Millis(int64(c1%20) + 1)
		T1 := C1 + vtime.Millis(int64(t1%50)+1)
		C2 := vtime.Millis(int64(c2%20) + 1)
		T2 := C2 + vtime.Millis(int64(t2%50)+1)
		s := taskset.MustNew(
			taskset.Task{Name: "hi", Priority: 2, Period: T1, Deadline: 10 * T1, Cost: C1},
			taskset.Task{Name: "lo", Priority: 1, Period: T2, Deadline: 10 * T2, Cost: C2},
		)
		if s.Utilization() > 1 {
			return true // out of scope
		}
		wcrt, err := WCResponseTime(s, 1, 0)
		if err != nil {
			return s.Utilization() >= 1
		}
		return wcrt >= C1+C2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestVerdictString(t *testing.T) {
	cases := map[Verdict]string{
		VerdictFeasible:     "feasible",
		VerdictInfeasible:   "infeasible",
		VerdictInconclusive: "inconclusive",
	}
	for v, want := range cases {
		if v.String() != want {
			t.Errorf("Verdict(%d).String() = %q, want %q", v, v.String(), want)
		}
	}
}

func TestWCRTConstrainedAgreesWithGeneral(t *testing.T) {
	s := table2()
	for i := range s.Tasks {
		fast, err := WCRTConstrained(s, i, 0)
		if err != nil {
			t.Fatal(err)
		}
		general, err := WCResponseTime(s, i, 0)
		if err != nil {
			t.Fatal(err)
		}
		if fast != general {
			t.Errorf("task %d: fast path %v != general %v", i, fast, general)
		}
	}
	// Random constrained-deadline sets agree wherever both converge.
	gen := taskset.NewGenerator(13)
	gen.DeadlineFactor = 1.0
	for trial := 0; trial < 50; trial++ {
		rs, err := gen.Generate(4, 0.8)
		if err != nil {
			t.Fatal(err)
		}
		for i := range rs.Tasks {
			fast, ferr := WCRTConstrained(rs, i, 0)
			general, gerr := WCResponseTime(rs, i, 0)
			if (ferr == nil) != (gerr == nil) {
				t.Fatalf("trial %d task %d: convergence disagrees (%v vs %v)", trial, i, ferr, gerr)
			}
			if ferr == nil && general <= rs.Tasks[i].Period && fast != general {
				t.Fatalf("trial %d task %d: %v vs %v", trial, i, fast, general)
			}
		}
	}
}

func TestWCRTConstrainedRejectsArbitraryDeadlines(t *testing.T) {
	s := table1() // tau2 has D 6 > T 4
	if _, err := WCRTConstrained(s, 1, 0); err == nil {
		t.Fatal("D > T must be rejected by the fast path")
	}
}
