package analysis

import (
	"fmt"
	"strings"

	"repro/internal/taskset"
	"repro/internal/vtime"
)

// Report is the full admission-control result for a task set: the
// outcome the paper's FeasibilityAnalysis class delegates to from the
// overloaded addToFeasibility()/removeFromFeasibility() methods.
type Report struct {
	// Utilization is the system load U (paper Eq. 1).
	Utilization float64
	// WCRT holds the worst-case response time per task (set order),
	// valid only when Unbounded is false.
	WCRT []vtime.Duration
	// Feasible reports whether every task's WCRT is within its
	// deadline — the exact test the paper installs.
	Feasible bool
	// Unbounded is true when U > 1 at some priority level and
	// response times diverge; the system is then infeasible.
	Unbounded bool
	// Misses names the tasks whose WCRT exceeds the deadline.
	Misses []string
}

// Feasible runs the exact admission control: the Eq. 1 load test
// followed by the Figure 2 response-time computation for every task,
// comparing each WCRT to its deadline.
func Feasible(s *taskset.Set) (*Report, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	rep := &Report{Utilization: s.Utilization()}
	if rep.Utilization > 1 {
		rep.Unbounded = true
		return rep, nil
	}
	wcrt, err := ResponseTimes(s)
	if err != nil {
		if isUnbounded(err) {
			rep.Unbounded = true
			return rep, nil
		}
		return nil, err
	}
	rep.WCRT = wcrt
	rep.Feasible = true
	for i, t := range s.Tasks {
		if wcrt[i] > t.Deadline {
			rep.Feasible = false
			rep.Misses = append(rep.Misses, t.Name)
		}
	}
	return rep, nil
}

func isUnbounded(err error) bool {
	return err != nil && strings.Contains(err.Error(), ErrUnbounded.Error())
}

// String renders the report as a table in the paper's layout
// (name, P, T, D, C, WCRT, verdict).
func (r *Report) Render(s *taskset.Set) string {
	var b strings.Builder
	fmt.Fprintf(&b, "U = %.4f\n", r.Utilization)
	if r.Unbounded {
		b.WriteString("system load exceeds 1 at some priority level: infeasible\n")
		return b.String()
	}
	fmt.Fprintf(&b, "%-8s %4s %10s %10s %10s %12s %s\n", "task", "P", "T", "D", "C", "WCRT", "ok")
	for i, t := range s.Tasks {
		ok := "yes"
		if r.WCRT[i] > t.Deadline {
			ok = "MISS"
		}
		fmt.Fprintf(&b, "%-8s %4d %10v %10v %10v %12v %s\n",
			t.Name, t.Priority, t.Period, t.Deadline, t.Cost, r.WCRT[i], ok)
	}
	if r.Feasible {
		b.WriteString("verdict: feasible\n")
	} else {
		fmt.Fprintf(&b, "verdict: infeasible (misses: %s)\n", strings.Join(r.Misses, ", "))
	}
	return b.String()
}
