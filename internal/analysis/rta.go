// Package analysis implements the admission control of the paper's
// Section 2: the load test (Eq. 1), the classical utilization bounds,
// and the exact worst-case response time computation of Figure 2 —
// the fixed-priority preemptive response-time analysis generalized by
// Lehoczky to deadlines larger than periods. These are the "deficient
// methods of RI and missing ones in jRate" that the paper implements.
package analysis

import (
	"fmt"
	"math"

	"repro/internal/taskset"
	"repro/internal/vtime"
)

// ErrUnbounded is returned when a response time diverges (the level-i
// busy period never closes because the relevant load is >= 1).
var ErrUnbounded = fmt.Errorf("analysis: response time unbounded (load at this priority level >= 1)")

// maxIterations bounds the fixed-point and job iterations defensively;
// with the load guard it should never trigger on valid inputs.
const maxIterations = 1 << 20

// WCResponseTime implements the paper's Figure 2 verbatim: the worst
// case response time of task i in set s under fixed-priority
// preemptive scheduling, with arbitrary deadlines. It iterates over
// the successive jobs q = 0, 1, ... of the level-i busy period started
// at the critical instant; for each job it solves the fixed point
//
//	R_q = (q+1)·Ci + Σ_{j ∈ HP(i)} ⌈R_q/Tj⌉·Cj
//
// and it stops at the first q whose completion R_q ≤ (q+1)·Ti, i.e.
// the first job not pushing work onto its successor. The result is
// max_q (R_q − q·Ti). An optional blocking term (from shared
// resources, paper §7) is added once to every job's demand.
func WCResponseTime(s *taskset.Set, i int, blocking vtime.Duration) (vtime.Duration, error) {
	if i < 0 || i >= s.Len() {
		return 0, fmt.Errorf("analysis: task index %d out of range", i)
	}
	// Divergence guard: the busy period closes iff the utilization of
	// the task plus all higher-priority tasks is < 1, or equals 1 with
	// a completion landing exactly on a period boundary. We allow
	// load == 1 (the paper's Table 1 system has U exactly 1) and rely
	// on the per-job test, but bail out if load > 1.
	hp := s.HigherOrEqualPriority(i)
	load := s.Tasks[i].Utilization()
	for _, j := range hp {
		load += s.Tasks[j].Utilization()
	}
	if load > 1 {
		return 0, ErrUnbounded
	}

	self := s.Tasks[i]
	var rmax vtime.Duration
	for q := int64(0); ; q++ {
		if q >= maxIterations {
			return 0, ErrUnbounded
		}
		rq, err := jobCompletion(s, i, hp, q, blocking)
		if err != nil {
			return 0, err
		}
		resp := rq - vtime.Duration(q)*self.Period
		if resp > rmax {
			rmax = resp
		}
		if rq <= vtime.Duration(q+1)*self.Period {
			break
		}
	}
	return rmax, nil
}

// jobCompletion solves the fixed point for the completion time of the
// q-th job (0-based) of task i within the level-i busy period.
func jobCompletion(s *taskset.Set, i int, hp []int, q int64, blocking vtime.Duration) (vtime.Duration, error) {
	self := s.Tasks[i]
	work := vtime.Duration(q+1)*self.Cost + blocking
	r := work
	for iter := 0; ; iter++ {
		if iter >= maxIterations {
			return 0, ErrUnbounded
		}
		next := work
		for _, j := range hp {
			tj := s.Tasks[j]
			next += ceilDiv(r, tj.Period) * tj.Cost
		}
		if next == r {
			return r, nil
		}
		r = next
	}
}

// ceilDiv returns ⌈a/b⌉ for positive b, as a Duration count.
func ceilDiv(a, b vtime.Duration) vtime.Duration {
	if a <= 0 {
		return 0
	}
	return vtime.Duration((int64(a) + int64(b) - 1) / int64(b))
}

// JobResponse is the response time of one job within the level-i busy
// period, as charted in the paper's Figure 1.
type JobResponse struct {
	// Q is the 0-based job index within the busy period.
	Q int64
	// Release is the job's release instant relative to the critical
	// instant (q·Ti).
	Release vtime.Duration
	// Completion is the job's completion instant relative to the
	// critical instant (the fixed point R_q).
	Completion vtime.Duration
	// Response = Completion − Release.
	Response vtime.Duration
}

// JobResponseTimes returns the response time of every job of task i in
// the level-i busy period started at the critical instant — the data
// behind the paper's Table 1 / Figure 1 demonstration that, when
// response times may exceed the period, the worst case is not
// necessarily the first job.
func JobResponseTimes(s *taskset.Set, i int, blocking vtime.Duration) ([]JobResponse, error) {
	hp := s.HigherOrEqualPriority(i)
	load := s.Tasks[i].Utilization()
	for _, j := range hp {
		load += s.Tasks[j].Utilization()
	}
	if load > 1 {
		return nil, ErrUnbounded
	}
	self := s.Tasks[i]
	var out []JobResponse
	for q := int64(0); ; q++ {
		if q >= maxIterations {
			return nil, ErrUnbounded
		}
		rq, err := jobCompletion(s, i, hp, q, blocking)
		if err != nil {
			return nil, err
		}
		rel := vtime.Duration(q) * self.Period
		out = append(out, JobResponse{Q: q, Release: rel, Completion: rq, Response: rq - rel})
		if rq <= vtime.Duration(q+1)*self.Period {
			break
		}
	}
	return out, nil
}

// ResponseTimes computes the WCRT of every task in the set, in the
// set's declared order. Any task whose response time diverges yields
// an error naming it.
func ResponseTimes(s *taskset.Set) ([]vtime.Duration, error) {
	out := make([]vtime.Duration, s.Len())
	for i := range s.Tasks {
		r, err := WCResponseTime(s, i, 0)
		if err != nil {
			return nil, fmt.Errorf("analysis: task %s: %w", s.Tasks[i].Name, err)
		}
		out[i] = r
	}
	return out, nil
}

// Utilization returns the system load U = Σ Ci/Ti (paper Eq. 1).
func Utilization(s *taskset.Set) float64 { return s.Utilization() }

// LoadTest applies the paper's Section 2.1 test: U > 1 means not
// feasible; otherwise the load condition alone is inconclusive.
func LoadTest(s *taskset.Set) Verdict {
	if s.Utilization() > 1 {
		return VerdictInfeasible
	}
	return VerdictInconclusive
}

// LiuLaylandBound applies the classical rate-monotonic sufficient
// bound U ≤ n(2^{1/n} − 1) (Liu & Layland 1973, [11]). It is only a
// sufficient test and only sound for implicit deadlines (D = T) with
// RM priorities; callers needing an exact answer use response times.
func LiuLaylandBound(s *taskset.Set) Verdict {
	n := float64(s.Len())
	bound := n * (math.Pow(2, 1/n) - 1)
	if s.Utilization() <= bound {
		return VerdictFeasible
	}
	return VerdictInconclusive
}

// HyperbolicBound applies Bini & Buttazzo's hyperbolic test [2]:
// Π(Ui + 1) ≤ 2 is sufficient for RM with implicit deadlines, and
// strictly dominates the Liu–Layland bound.
func HyperbolicBound(s *taskset.Set) Verdict {
	p := 1.0
	for _, t := range s.Tasks {
		p *= t.Utilization() + 1
	}
	if p <= 2 {
		return VerdictFeasible
	}
	return VerdictInconclusive
}

// Verdict is the outcome of a feasibility test.
type Verdict int

// Verdict values. Sufficient-only tests never return
// VerdictInfeasible; necessary-only tests never return
// VerdictFeasible.
const (
	VerdictInconclusive Verdict = iota
	VerdictFeasible
	VerdictInfeasible
)

// String names the verdict.
func (v Verdict) String() string {
	switch v {
	case VerdictFeasible:
		return "feasible"
	case VerdictInfeasible:
		return "infeasible"
	default:
		return "inconclusive"
	}
}

// WCRTConstrained is the constrained-deadline (D ≤ T) fast path — the
// Joseph–Pandya recurrence, which the paper's Figure 2 algorithm
// reduces to when the q = 0 job already completes within its period.
// It errors if the task's deadline exceeds its period (callers should
// use WCResponseTime there).
func WCRTConstrained(s *taskset.Set, i int, blocking vtime.Duration) (vtime.Duration, error) {
	if i < 0 || i >= s.Len() {
		return 0, fmt.Errorf("analysis: task index %d out of range", i)
	}
	t := s.Tasks[i]
	if t.Deadline > t.Period {
		return 0, fmt.Errorf("analysis: task %s has D > T; use WCResponseTime", t.Name)
	}
	hp := s.HigherOrEqualPriority(i)
	r, err := jobCompletion(s, i, hp, 0, blocking)
	if err != nil {
		return 0, err
	}
	// With D ≤ T a response beyond the period is already a deadline
	// miss; report the fixed point regardless so the caller compares
	// against D (matching the general algorithm's q = 0 value).
	return r, nil
}
