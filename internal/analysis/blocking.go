package analysis

import (
	"fmt"

	"repro/internal/taskset"
	"repro/internal/vtime"
)

// The paper's §7 notes that shared resources introduce a blocking
// time bi into the response-time analysis and asks how the tolerance
// interacts with it. The functions here extend the Figure 2 analysis
// with per-task blocking terms (computed, e.g., under the priority
// ceiling protocol: at most one critical section of one
// lower-priority task per job), so the allowance package can answer
// that question quantitatively.

// ResponseTimesWithBlocking computes every task's WCRT with the given
// per-task blocking term added once to each job's demand (the
// standard b_i treatment for priority-ceiling style protocols).
// blocking must have one entry per task in set order; nil means no
// blocking anywhere.
func ResponseTimesWithBlocking(s *taskset.Set, blocking []vtime.Duration) ([]vtime.Duration, error) {
	if blocking != nil && len(blocking) != s.Len() {
		return nil, fmt.Errorf("analysis: blocking has %d entries for %d tasks", len(blocking), s.Len())
	}
	out := make([]vtime.Duration, s.Len())
	for i := range s.Tasks {
		var b vtime.Duration
		if blocking != nil {
			b = blocking[i]
		}
		r, err := WCResponseTime(s, i, b)
		if err != nil {
			return nil, fmt.Errorf("analysis: task %s: %w", s.Tasks[i].Name, err)
		}
		out[i] = r
	}
	return out, nil
}

// FeasibleWithBlocking runs the admission control with blocking
// terms: WCRT_i(b_i) ≤ D_i for every task.
func FeasibleWithBlocking(s *taskset.Set, blocking []vtime.Duration) (bool, error) {
	if s.Utilization() > 1 {
		return false, nil
	}
	wcrt, err := ResponseTimesWithBlocking(s, blocking)
	if err != nil {
		if isUnbounded(err) {
			return false, nil
		}
		return false, err
	}
	for i, t := range s.Tasks {
		if wcrt[i] > t.Deadline {
			return false, nil
		}
	}
	return true, nil
}

// CeilingBlocking derives per-task blocking terms for a priority
// ceiling protocol from critical-section lengths: task i can be
// blocked by at most one critical section of one lower-priority task
// whose resource ceiling reaches i's priority. Given each task's
// longest critical section (cs, set order; zero = takes no locks) and
// assuming every resource is shared by all tasks (the most
// pessimistic ceiling), b_i = max over lower-priority j of cs_j. The
// lowest-priority task is never blocked.
func CeilingBlocking(s *taskset.Set, cs []vtime.Duration) ([]vtime.Duration, error) {
	if len(cs) != s.Len() {
		return nil, fmt.Errorf("analysis: cs has %d entries for %d tasks", len(cs), s.Len())
	}
	out := make([]vtime.Duration, s.Len())
	for i, ti := range s.Tasks {
		for j, tj := range s.Tasks {
			if tj.Priority < ti.Priority && cs[j] > out[i] {
				out[i] = cs[j]
			}
		}
	}
	return out, nil
}
