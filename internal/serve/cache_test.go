package serve

import (
	"errors"
	"testing"
)

// TestCacheLRUEviction pins the memory bound: completed results
// beyond max evict coldest-first, a re-touched entry survives, and an
// in-flight entry can never be evicted (its waiters would hang).
func TestCacheLRUEviction(t *testing.T) {
	c := newCache(2)
	complete := func(d string) *entry {
		e, created := c.lookup(d)
		if !created {
			t.Fatalf("%s already present", d)
		}
		c.completed(e, &result{report: []byte(d)}, nil)
		return e
	}
	complete("a")
	complete("b")
	if _, created := c.lookup("a"); created {
		t.Fatal("a evicted below capacity")
	}
	// a is now most-recent; inserting c evicts b.
	complete("c")
	if _, created := c.lookup("b"); !created {
		t.Error("b survived eviction (LRU order wrong)")
	}
	// That lookup re-created b in-flight; finish it to keep state sane.
	e, _ := c.lookup("b")
	c.completed(e, &result{}, nil)

	// In-flight entries are pinned: filling the LRU past max around
	// one must not evict it.
	inflight, created := c.lookup("pinned")
	if !created {
		t.Fatal("pinned already present")
	}
	complete("x")
	complete("y")
	complete("z")
	if got, again := c.lookup("pinned"); again {
		t.Error("in-flight entry was evicted")
	} else if got != inflight {
		t.Error("lookup returned a different in-flight entry")
	}
	c.completed(inflight, &result{}, nil)
}

// TestCacheErrorNotCached pins that failures are forgotten: the next
// lookup owns a fresh attempt, and waiters of the failed entry saw
// the error.
func TestCacheErrorNotCached(t *testing.T) {
	c := newCache(4)
	e, created := c.lookup("d")
	if !created {
		t.Fatal("d already present")
	}
	boom := errors.New("boom")
	c.completed(e, nil, boom)
	<-e.done
	if !errors.Is(e.err, boom) {
		t.Errorf("waiter error = %v, want boom", e.err)
	}
	if _, created := c.lookup("d"); !created {
		t.Error("failed result was cached")
	}
}

// TestEntryProgressPubSub pins the SSE plumbing: subscribers get
// observations, late subscribers get the latest replayed, cancel
// detaches, and a full subscriber drops rather than blocks.
func TestEntryProgressPubSub(t *testing.T) {
	e := newEntry("d")
	ch, cancel := e.subscribe()
	e.publish(Progress{AtMS: 10, HorizonMS: 100, Percent: 10})
	select {
	case p := <-ch:
		if p.AtMS != 10 {
			t.Errorf("got %+v", p)
		}
	default:
		t.Fatal("subscriber missed the observation")
	}

	late, lateCancel := e.subscribe()
	defer lateCancel()
	select {
	case p := <-late:
		if p.AtMS != 10 {
			t.Errorf("late replay %+v", p)
		}
	default:
		t.Fatal("late subscriber did not get the latest observation replayed")
	}

	cancel()
	e.publish(Progress{AtMS: 20, HorizonMS: 100, Percent: 20})
	select {
	case p := <-ch:
		t.Errorf("cancelled subscriber still got %+v", p)
	default:
	}

	// Saturate the late subscriber's buffer: publish must not block.
	for i := 0; i < 100; i++ {
		e.publish(Progress{AtMS: int64(30 + i), HorizonMS: 100})
	}
}
