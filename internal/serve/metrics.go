package serve

import (
	"sync"
	"sync/atomic"
	"time"

	gk "repro/internal/metrics"
	"repro/internal/vtime"
)

// Metrics aggregates the server's operational counters plus a
// request-latency quantile sketch — the same Greenwald–Khanna
// summary (gk.Sketch, ε=0.01) the simulator uses for response times,
// so /metrics reports p50/p90/p99 in O(1/ε·log εn) memory however
// long the server runs.
type Metrics struct {
	requests    atomic.Int64
	simulate    atomic.Int64
	hits        atomic.Int64
	misses      atomic.Int64
	throttled   atomic.Int64
	badRequests atomic.Int64
	runErrors   atomic.Int64
	simulations atomic.Int64

	mu      sync.Mutex
	latency *gk.Sketch
}

func newMetrics() *Metrics {
	return &Metrics{latency: gk.NewSketch(0.01)}
}

// observeLatency records one served-request wall time.
func (m *Metrics) observeLatency(d time.Duration) {
	m.mu.Lock()
	m.latency.Add(vtime.Duration(d.Nanoseconds()))
	m.mu.Unlock()
}

// LatencySnapshot is the sketch part of a /metrics response.
type LatencySnapshot struct {
	Count int64   `json:"count"`
	P50MS float64 `json:"p50_ms"`
	P90MS float64 `json:"p90_ms"`
	P99MS float64 `json:"p99_ms"`
}

// Snapshot is the machine-readable /metrics document.
type Snapshot struct {
	RequestsTotal    int64           `json:"requests_total"`
	SimulateRequests int64           `json:"simulate_requests"`
	CacheHits        int64           `json:"cache_hits"`
	CacheMisses      int64           `json:"cache_misses"`
	Throttled        int64           `json:"throttled"`
	BadRequests      int64           `json:"bad_requests"`
	RunErrors        int64           `json:"run_errors"`
	SimulationsRun   int64           `json:"simulations_run"`
	QueueDepth       int             `json:"queue_depth"`
	QueueCap         int             `json:"queue_cap"`
	InFlight         int             `json:"in_flight"`
	CacheEntries     int             `json:"cache_entries"`
	Latency          LatencySnapshot `json:"latency"`
}

func (m *Metrics) latencySnapshot() LatencySnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := LatencySnapshot{Count: m.latency.N()}
	ms := func(q float64) float64 {
		v, ok := m.latency.Query(q)
		if !ok {
			return 0
		}
		return float64(v) / float64(vtime.Millisecond)
	}
	out.P50MS = ms(0.50)
	out.P90MS = ms(0.90)
	out.P99MS = ms(0.99)
	return out
}
