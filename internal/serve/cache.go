package serve

import (
	"container/list"
	"sync"
)

// Progress is one observation of an in-flight simulation's virtual
// clock, published to SSE subscribers of the run's cache entry.
type Progress struct {
	// AtMS is the virtual instant reached, in milliseconds.
	AtMS int64 `json:"at_ms"`
	// HorizonMS is the scenario horizon, in milliseconds.
	HorizonMS int64 `json:"horizon_ms"`
	// Percent is 100*AtMS/HorizonMS, pre-computed for dashboards.
	Percent float64 `json:"percent"`
}

// result is the terminal state of one completed simulation — exactly
// the deterministic fields every response for the same digest is
// rendered from, so a cache hit returns bytes equal to the original
// response. No wall-clock or per-request data belongs here.
type result struct {
	report       []byte // rendered per-task report, byte-equal to rtrun's summary
	detections   int64
	switches     int64
	successRatio float64
}

// entry is one content-addressed cache slot. It doubles as the
// singleflight rendezvous: the request that creates it owns the
// simulation, every other request for the same digest waits on done.
type entry struct {
	digest string
	done   chan struct{} // closed once res/err are final
	res    *result
	err    error

	mu      sync.Mutex
	subs    []chan Progress
	last    Progress
	hasLast bool
}

func newEntry(digest string) *entry {
	return &entry{digest: digest, done: make(chan struct{})}
}

// complete publishes the terminal state and wakes every waiter. Must
// be called exactly once.
func (e *entry) complete(res *result, err error) {
	e.res, e.err = res, err
	close(e.done)
}

// subscribe registers a progress listener, replaying the most recent
// observation (if any) so late subscribers are not blind until the
// next boundary. The returned cancel is idempotent and must be called
// to release the slot.
func (e *entry) subscribe() (<-chan Progress, func()) {
	ch := make(chan Progress, 16)
	e.mu.Lock()
	if e.hasLast {
		ch <- e.last // buffered, cannot block
	}
	e.subs = append(e.subs, ch)
	e.mu.Unlock()
	cancel := func() {
		e.mu.Lock()
		for i, c := range e.subs {
			if c == ch {
				e.subs = append(e.subs[:i], e.subs[i+1:]...)
				break
			}
		}
		e.mu.Unlock()
	}
	return ch, cancel
}

// publish fans a progress observation out to subscribers. Sends are
// non-blocking: a slow SSE client drops observations instead of
// stalling the engine goroutine.
func (e *entry) publish(p Progress) {
	e.mu.Lock()
	e.last, e.hasLast = p, true
	for _, ch := range e.subs {
		select {
		case ch <- p:
		default:
		}
	}
	e.mu.Unlock()
}

// cache is the content-addressed result store. Completed entries form
// an LRU bounded at max (so the server's memory is bounded no matter
// how many distinct scenarios arrive); in-flight entries live only in
// the map and cannot be evicted, so singleflight rendezvous is never
// lost mid-run.
type cache struct {
	mu      sync.Mutex
	max     int
	entries map[string]*entry
	lru     *list.List // completed digests, front = most recent
	pos     map[string]*list.Element
}

func newCache(max int) *cache {
	return &cache{
		max:     max,
		entries: make(map[string]*entry),
		lru:     list.New(),
		pos:     make(map[string]*list.Element),
	}
}

// lookup returns the entry for digest, creating an in-flight one when
// absent. created reports whether the caller owns the simulation (the
// singleflight winner); everyone else waits on the entry.
func (c *cache) lookup(digest string) (e *entry, created bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[digest]; ok {
		if el, ok := c.pos[digest]; ok {
			c.lru.MoveToFront(el)
		}
		return e, false
	}
	e = newEntry(digest)
	c.entries[digest] = e
	return e, true
}

// completed finalizes an entry. Successes join the LRU (evicting the
// coldest results beyond max); failures are forgotten so a transient
// error — notably admission-queue overload — is retried by the next
// request instead of being served forever.
func (c *cache) completed(e *entry, res *result, err error) {
	e.complete(res, err)
	c.mu.Lock()
	defer c.mu.Unlock()
	if err != nil {
		delete(c.entries, e.digest)
		return
	}
	c.pos[e.digest] = c.lru.PushFront(e.digest)
	for c.lru.Len() > c.max {
		el := c.lru.Back()
		d := el.Value.(string)
		c.lru.Remove(el)
		delete(c.pos, d)
		delete(c.entries, d)
	}
}

// len is the number of resident entries (completed + in-flight).
func (c *cache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
