// Package serve implements simulation-as-a-service: the HTTP/JSON
// layer behind cmd/rtserved. A POST /v1/simulate accepts a canonical
// sim/scenario document and returns exactly the report a local
// `rtrun -scenario` run prints (byte-equal, pinned by test), backed
// by three load-bearing pieces:
//
//   - A content-addressed result cache keyed by scenario.Digest()
//     (SHA-256 of the canonical scenario bytes + schema version) with
//     singleflight deduplication: N identical in-flight requests cost
//     one simulation, repeats cost zero. Simulations are deterministic
//     functions of their scenario, so the cache is exact, and the
//     digest's SchemaVersion pin means an engine behaviour change
//     invalidates every stale key. Completed results form an LRU
//     bounded at Config.CacheEntries.
//
//   - An admission/backpressure layer: simulations are scheduled onto
//     a bounded runner.Pool, and when the accept queue is full the
//     server answers 429 + Retry-After instead of queueing without
//     bound — saturating load degrades into fast rejections, never
//     OOM. GET /healthz and GET /metrics (counters, queue depth,
//     in-flight, and a GK-sketch latency histogram) expose the state.
//
//   - Optional progress streaming: POST /v1/simulate?stream=sse (or
//     Accept: text/event-stream) answers with server-sent events —
//     queued, then throttled progress observations of the virtual
//     clock from the run's trace stream, then the result — so a
//     long-horizon run is observable while it computes.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"time"

	"repro/internal/runner"
	"repro/internal/vtime"
	"repro/sim"
	"repro/sim/scenario"
)

// Config tunes a Server. The zero value is ready to use.
type Config struct {
	// Workers is the simulation worker count (<= 0: GOMAXPROCS).
	Workers int
	// QueueDepth bounds the accept queue (<= 0: 2× workers). A full
	// queue is surfaced as HTTP 429.
	QueueDepth int
	// CacheEntries bounds the completed-result LRU (<= 0: 1024).
	CacheEntries int
	// MaxBodyBytes caps a request body (<= 0: 8 MiB).
	MaxBodyBytes int64
	// RetryAfter is the 429 Retry-After hint (<= 0: 1s).
	RetryAfter time.Duration
	// Verify arms the online invariant oracle on every served run: a
	// scheduling-axiom violation fails the request instead of serving
	// a wrong report.
	Verify bool
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (c Config) cacheEntries() int {
	if c.CacheEntries > 0 {
		return c.CacheEntries
	}
	return 1024
}

func (c Config) maxBody() int64 {
	if c.MaxBodyBytes > 0 {
		return c.MaxBodyBytes
	}
	return 8 << 20
}

func (c Config) retryAfter() time.Duration {
	if c.RetryAfter > 0 {
		return c.RetryAfter
	}
	return time.Second
}

// errOverloaded marks a cache entry whose owning request could not be
// admitted: waiters turn it into their own 429.
var errOverloaded = errors.New("serve: accept queue full")

// Server is the simulation service. It implements http.Handler; use
// New, serve it, then Close to drain the worker pool.
type Server struct {
	cfg   Config
	pool  *runner.Pool
	cache *cache
	met   *Metrics
	mux   *http.ServeMux

	// run executes one simulation. Tests substitute it to pin
	// scheduling behaviour (singleflight, shedding) without real runs.
	run func(ctx context.Context, sc *scenario.Scenario, progress func(Progress)) (*result, error)
}

// New builds a Server and starts its worker pool.
func New(cfg Config) *Server {
	s := &Server{
		cfg:   cfg,
		pool:  runner.NewPool(runner.Options{Parallelism: cfg.workers(), QueueDepth: cfg.QueueDepth}),
		cache: newCache(cfg.cacheEntries()),
		met:   newMetrics(),
		mux:   http.NewServeMux(),
	}
	s.run = s.simulate
	s.mux.HandleFunc("POST /v1/simulate", func(w http.ResponseWriter, r *http.Request) {
		s.met.simulate.Add(1)
		start := time.Now()
		s.handleSimulate(w, r)
		s.met.observeLatency(time.Since(start))
	})
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// Close drains the worker pool (in-flight simulations finish and
// complete their cache entries, so no waiter is left hanging).
func (s *Server) Close() { s.pool.Close() }

// Metrics exposes the server's counters, e.g. for tests.
func (s *Server) Metrics() Snapshot { return s.snapshot() }

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.met.requests.Add(1)
	s.mux.ServeHTTP(w, r)
}

func (s *Server) snapshot() Snapshot {
	return Snapshot{
		RequestsTotal:    s.met.requests.Load(),
		SimulateRequests: s.met.simulate.Load(),
		CacheHits:        s.met.hits.Load(),
		CacheMisses:      s.met.misses.Load(),
		Throttled:        s.met.throttled.Load(),
		BadRequests:      s.met.badRequests.Load(),
		RunErrors:        s.met.runErrors.Load(),
		SimulationsRun:   s.met.simulations.Load(),
		QueueDepth:       s.pool.QueueDepth(),
		QueueCap:         s.pool.QueueCap(),
		InFlight:         s.pool.InFlight(),
		CacheEntries:     s.cache.len(),
		Latency:          s.met.latencySnapshot(),
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, `{"status":"ok"}`)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	b, err := json.MarshalIndent(s.snapshot(), "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(b)
	w.Write([]byte("\n"))
}

// errorBody writes the uniform JSON error shape.
func errorBody(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

// throttle answers 429 + Retry-After — the admission layer's contract
// under saturation — and counts the shed response.
//
// Retry-After only has whole-second resolution, so the configured
// backoff is ceiled, never rounded: rounding a sub-second RetryAfter
// down would emit "Retry-After: 0", telling every shed client to
// hammer the saturated server again immediately — the opposite of
// backpressure.
func (s *Server) throttle(w http.ResponseWriter) {
	s.met.throttled.Add(1)
	ra := int64((s.cfg.retryAfter() + time.Second - 1) / time.Second)
	if ra < 1 {
		ra = 1
	}
	w.Header().Set("Retry-After", strconv.FormatInt(ra, 10))
	errorBody(w, http.StatusTooManyRequests, "accept queue full, retry later")
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, s.cfg.maxBody())
	sc, err := scenario.Decode(body)
	if err != nil {
		s.met.badRequests.Add(1)
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			errorBody(w, http.StatusRequestEntityTooLarge, err.Error())
			return
		}
		errorBody(w, http.StatusBadRequest, err.Error())
		return
	}
	// A path-referenced trace source is rejected outright: the digest
	// covers only the scenario document, so the file's content is
	// invisible to the cache key — two different traces behind the
	// same path would alias one cache entry (and the path names a
	// client-local file this server has no business reading anyway).
	if sc.HasPathSource() {
		s.met.badRequests.Add(1)
		errorBody(w, http.StatusBadRequest, "trace arrival sources must inline their records (\"records\"): a \"path\" reference is not content-addressable")
		return
	}
	digest, err := sc.Digest()
	if err != nil {
		s.met.badRequests.Add(1)
		errorBody(w, http.StatusBadRequest, err.Error())
		return
	}

	e, created := s.cache.lookup(digest)
	if created {
		// Singleflight owner: this request (alone) pays for admission.
		// Everyone else for the same digest — concurrent or later —
		// joins the entry without consuming a queue slot.
		s.met.misses.Add(1)
		job := func(ctx context.Context) {
			s.met.simulations.Add(1)
			res, rerr := s.run(ctx, sc, e.publish)
			if rerr != nil {
				s.met.runErrors.Add(1)
			}
			s.cache.completed(e, res, rerr)
		}
		if err := s.pool.TrySubmit(job); err != nil {
			// Shed the load; the failed entry is removed so the next
			// request retries, and any waiter that raced in sees
			// errOverloaded and sheds too.
			s.cache.completed(e, nil, errOverloaded)
			s.throttle(w)
			return
		}
	} else {
		s.met.hits.Add(1)
	}
	cacheStatus := "miss"
	if !created {
		cacheStatus = "hit"
	}

	if wantsSSE(r) {
		s.streamSimulate(w, r, e, digest, cacheStatus)
		return
	}

	select {
	case <-e.done:
	case <-r.Context().Done():
		// Client gone. The simulation (if any) keeps running and
		// completes the cache — the work is addressed by content, not
		// by this request.
		return
	}
	if e.err != nil {
		if errors.Is(e.err, errOverloaded) {
			s.throttle(w)
			return
		}
		// The scenario decoded but its run failed (admission found it
		// infeasible, or the invariant oracle tripped): deterministic
		// for this document, but not cached so a fixed engine retries.
		errorBody(w, http.StatusUnprocessableEntity, e.err.Error())
		return
	}
	s.writeResult(w, r, e, digest, cacheStatus)
}

// envelope is the deterministic JSON response for one digest: rebuilt
// from the cached result on every request, so repeated responses are
// byte-equal. Cache status deliberately travels in the X-Cache header,
// not here — it is per-request, not per-result.
type envelope struct {
	Digest       string  `json:"digest"`
	Report       string  `json:"report"`
	Detections   int64   `json:"detections"`
	Switches     int64   `json:"switches"`
	SuccessRatio float64 `json:"success_ratio"`
}

func resultEnvelope(digest string, res *result) envelope {
	return envelope{
		Digest:       digest,
		Report:       string(res.report),
		Detections:   res.detections,
		Switches:     res.switches,
		SuccessRatio: res.successRatio,
	}
}

func (s *Server) writeResult(w http.ResponseWriter, r *http.Request, e *entry, digest, cacheStatus string) {
	h := w.Header()
	h.Set("X-Scenario-Digest", digest)
	h.Set("X-Cache", cacheStatus)
	if r.URL.Query().Get("format") == "report" {
		// The raw report: byte-equal to the summary `rtrun -scenario`
		// prints, so `cmp` against the CLI works from a shell.
		h.Set("Content-Type", "text/plain; charset=utf-8")
		w.Write(e.res.report)
		return
	}
	h.Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(resultEnvelope(digest, e.res))
}

// simulate is the real run function: scenario → sim.System → report.
// The context is only consulted up front (the engine is not
// preemptible); a pool drained by Close simply finishes its queue.
func (s *Server) simulate(ctx context.Context, sc *scenario.Scenario, progress func(Progress)) (*result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sys, err := sim.FromScenario(*sc)
	if err != nil {
		return nil, err
	}
	if s.cfg.Verify {
		sys.SetVerify(true)
	}
	if progress != nil {
		horizonMS := sc.Horizon.D().Milliseconds()
		every := sc.Horizon.D() / 100
		if every < vtime.Millis(1) {
			every = vtime.Millis(1)
		}
		sys.ObserveProgress(scenario.Duration(every), func(at scenario.Duration) {
			atMS := at.D().Milliseconds()
			progress(Progress{
				AtMS:      atMS,
				HorizonMS: horizonMS,
				Percent:   100 * float64(atMS) / float64(horizonMS),
			})
		})
	}
	res, err := sys.Run()
	if err != nil {
		return nil, err
	}
	return &result{
		report:       []byte(res.Summary()),
		detections:   res.Detections,
		switches:     res.Switches,
		successRatio: res.SuccessRatio(),
	}, nil
}
