package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/vtime"
	"repro/sim"
	"repro/sim/scenario"
)

func testScenarioJSON(t *testing.T, name string, seed uint64) []byte {
	t.Helper()
	sc := scenario.Scenario{
		Name: name,
		Tasks: []scenario.Task{
			{Name: "tau1", Priority: 2, Period: scenario.Duration(vtime.Millis(10)), Deadline: scenario.Duration(vtime.Millis(10)), Cost: scenario.Duration(vtime.Millis(2))},
			{Name: "tau2", Priority: 1, Period: scenario.Duration(vtime.Millis(20)), Deadline: scenario.Duration(vtime.Millis(20)), Cost: scenario.Duration(vtime.Millis(5))},
		},
		Horizon: scenario.Duration(vtime.Millis(100)),
		Seed:    seed,
	}
	b, err := scenario.Marshal(&sc)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func post(t *testing.T, h http.Handler, path string, body []byte) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("POST", path, bytes.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// TestServedReportMatchesLocalRun pins the service's core contract
// for every committed example scenario: the served report is
// byte-equal to the summary a local `rtrun -scenario` run prints
// (rtrun prints RunResult.Summary() verbatim — the CLI-level twin of
// this pin is scripts/serve_smoke.sh, which cmp's against the real
// binary). The repeat POST must be a cache hit with an identical
// body.
func TestServedReportMatchesLocalRun(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "testdata", "scenarios", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no example scenarios found")
	}
	s := New(Config{Workers: 2})
	defer s.Close()
	for _, path := range files {
		t.Run(filepath.Base(path), func(t *testing.T) {
			sys, err := sim.Load(path)
			if err != nil {
				t.Fatal(err)
			}
			res, err := sys.Run()
			if err != nil {
				t.Fatal(err)
			}
			want := res.Summary()

			raw, err := scenario.DecodeFile(path)
			if err != nil {
				t.Fatal(err)
			}
			body, err := scenario.Marshal(raw)
			if err != nil {
				t.Fatal(err)
			}

			rec := post(t, s, "/v1/simulate?format=report", body)
			if rec.Code != http.StatusOK {
				t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
			}
			if got := rec.Body.String(); got != want {
				t.Errorf("served report differs from local run:\n--- served ---\n%s\n--- local ---\n%s", got, want)
			}
			if cs := rec.Header().Get("X-Cache"); cs != "miss" {
				t.Errorf("first POST X-Cache = %q, want miss", cs)
			}

			rec2 := post(t, s, "/v1/simulate?format=report", body)
			if rec2.Code != http.StatusOK {
				t.Fatalf("repeat status %d", rec2.Code)
			}
			if cs := rec2.Header().Get("X-Cache"); cs != "hit" {
				t.Errorf("repeat POST X-Cache = %q, want hit", cs)
			}
			if !bytes.Equal(rec2.Body.Bytes(), rec.Body.Bytes()) {
				t.Error("cache hit returned different bytes than the original response")
			}

			// The JSON envelope is deterministic too, and carries the
			// pinned digest.
			recJ := post(t, s, "/v1/simulate", body)
			recJ2 := post(t, s, "/v1/simulate", body)
			if !bytes.Equal(recJ.Body.Bytes(), recJ2.Body.Bytes()) {
				t.Error("envelope bytes differ between miss-path and hit-path responses")
			}
			var env envelope
			if err := json.Unmarshal(recJ.Body.Bytes(), &env); err != nil {
				t.Fatalf("envelope: %v", err)
			}
			if env.Report != want {
				t.Error("envelope report differs from local run")
			}
			wantDigest, err := raw.Digest()
			if err != nil {
				t.Fatal(err)
			}
			if env.Digest != wantDigest {
				t.Errorf("envelope digest %s, want %s", env.Digest, wantDigest)
			}
		})
	}
}

// TestSingleflightConcurrentIdenticalPosts pins the dedup guarantee
// with a gated run function: N identical in-flight POSTs cost exactly
// one simulation, every response is 200 with identical bytes, and
// exactly one response is the cache miss.
func TestSingleflightConcurrentIdenticalPosts(t *testing.T) {
	const n = 16
	s := New(Config{Workers: 2, QueueDepth: 4})
	defer s.Close()

	var runs atomic.Int64
	release := make(chan struct{})
	s.run = func(ctx context.Context, sc *scenario.Scenario, progress func(Progress)) (*result, error) {
		runs.Add(1)
		<-release
		return &result{report: []byte("stub report\n"), successRatio: 1}, nil
	}

	body := testScenarioJSON(t, "singleflight", 1)
	recs := make([]*httptest.ResponseRecorder, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			recs[i] = post(t, s, "/v1/simulate", body)
		}(i)
	}
	// Wait until every request has passed the cache lookup (the miss
	// plus n-1 joined hits), then let the single simulation finish.
	deadline := time.Now().Add(10 * time.Second)
	for s.met.hits.Load()+s.met.misses.Load() < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d requests reached the cache", s.met.hits.Load()+s.met.misses.Load(), n)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if got := runs.Load(); got != 1 {
		t.Errorf("%d identical concurrent POSTs ran %d simulations, want exactly 1", n, got)
	}
	misses := 0
	for i, rec := range recs {
		if rec.Code != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, rec.Code, rec.Body.String())
		}
		if !bytes.Equal(rec.Body.Bytes(), recs[0].Body.Bytes()) {
			t.Errorf("request %d returned different bytes", i)
		}
		if rec.Header().Get("X-Cache") == "miss" {
			misses++
		}
	}
	if misses != 1 {
		t.Errorf("%d responses claim the miss, want exactly 1", misses)
	}

	// A straggler after completion is a plain cache hit: same bytes,
	// still one simulation.
	late := post(t, s, "/v1/simulate", body)
	if late.Code != http.StatusOK || late.Header().Get("X-Cache") != "hit" {
		t.Errorf("late POST: status %d X-Cache %q", late.Code, late.Header().Get("X-Cache"))
	}
	if !bytes.Equal(late.Body.Bytes(), recs[0].Body.Bytes()) {
		t.Error("late cache hit returned different bytes")
	}
	if got := runs.Load(); got != 1 {
		t.Errorf("late hit re-ran the simulation (%d runs)", got)
	}
}

// TestSingleflightRealRun repeats the dedup pin without stubbing: the
// real simulation function wrapped in a counter. Timing no longer
// forces overlap, but content addressing makes the count exact anyway:
// whether requests overlap or arrive after completion, one simulation
// serves all of them.
func TestSingleflightRealRun(t *testing.T) {
	const n = 8
	s := New(Config{Workers: 2, QueueDepth: 4})
	defer s.Close()
	var runs atomic.Int64
	real := s.run
	s.run = func(ctx context.Context, sc *scenario.Scenario, progress func(Progress)) (*result, error) {
		runs.Add(1)
		return real(ctx, sc, progress)
	}
	body := testScenarioJSON(t, "singleflight-real", 2)
	var wg sync.WaitGroup
	wg.Add(n)
	codes := make([]int, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			codes[i] = post(t, s, "/v1/simulate", body).Code
		}(i)
	}
	wg.Wait()
	for i, c := range codes {
		if c != http.StatusOK {
			t.Errorf("request %d: status %d", i, c)
		}
	}
	if got := runs.Load(); got != 1 {
		t.Errorf("ran %d simulations for %d identical POSTs, want 1", got, n)
	}
}

// TestQueueFullSheds pins the admission layer: with one worker busy
// and the single queue slot taken, a third distinct scenario gets 429
// + Retry-After instead of queueing, /metrics reflects the shed, and
// the admitted work still completes.
func TestQueueFullSheds(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 1, RetryAfter: 2 * time.Second})
	defer s.Close()

	release := make(chan struct{})
	started := make(chan struct{}, 8)
	s.run = func(ctx context.Context, sc *scenario.Scenario, progress func(Progress)) (*result, error) {
		started <- struct{}{}
		<-release
		return &result{report: []byte(sc.Name + "\n"), successRatio: 1}, nil
	}

	results := make(chan *httptest.ResponseRecorder, 2)
	go func() { results <- post(t, s, "/v1/simulate", testScenarioJSON(t, "a", 1)) }()
	<-started // the worker owns scenario a; queue empty
	go func() { results <- post(t, s, "/v1/simulate", testScenarioJSON(t, "b", 2)) }()
	// Wait for b to occupy the queue slot.
	deadline := time.Now().Add(10 * time.Second)
	for s.pool.QueueDepth() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("second scenario never reached the queue")
		}
		time.Sleep(time.Millisecond)
	}

	rec := post(t, s, "/v1/simulate", testScenarioJSON(t, "c", 3))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("saturated POST: status %d, want 429", rec.Code)
	}
	if ra := rec.Header().Get("Retry-After"); ra != "2" {
		t.Errorf("Retry-After = %q, want \"2\"", ra)
	}
	if snap := s.Metrics(); snap.Throttled == 0 {
		t.Error("metrics do not reflect the shed request")
	}

	close(release)
	for i := 0; i < 2; i++ {
		if rec := <-results; rec.Code != http.StatusOK {
			t.Errorf("admitted request finished with status %d", rec.Code)
		}
	}

	// Capacity freed: the shed scenario is accepted on retry (its
	// failed entry was not cached).
	rec = post(t, s, "/v1/simulate", testScenarioJSON(t, "c", 3))
	if rec.Code != http.StatusOK {
		t.Errorf("retry after drain: status %d, want 200", rec.Code)
	}
}

// TestThrottleRetryAfterCeiling pins the Retry-After arithmetic: the
// header has whole-second resolution, so sub-second configurations
// must ceil to "1" — the old Round()-based computation emitted
// "Retry-After: 0" for anything under 500ms, inviting an immediate
// retry storm against a saturated server.
func TestThrottleRetryAfterCeiling(t *testing.T) {
	cases := []struct {
		cfg  time.Duration
		want string
	}{
		{200 * time.Millisecond, "1"}, // pre-fix: "0"
		{499 * time.Millisecond, "1"}, // pre-fix: "0"
		{999 * time.Millisecond, "1"},
		{time.Second, "1"},
		{1001 * time.Millisecond, "2"}, // ceiling, not rounding
		{2 * time.Second, "2"},         // the TestQueueFullSheds pin
		{0, "1"},                       // config default (1s)
	}
	for _, c := range cases {
		s := New(Config{Workers: 1, RetryAfter: c.cfg})
		rec := httptest.NewRecorder()
		s.throttle(rec)
		if got := rec.Header().Get("Retry-After"); got != c.want {
			t.Errorf("RetryAfter %v: header %q, want %q", c.cfg, got, c.want)
		}
		if rec.Code != http.StatusTooManyRequests {
			t.Errorf("RetryAfter %v: status %d, want 429", c.cfg, rec.Code)
		}
		s.Close()
	}
}

// TestPathSourceRejected pins the cache-safety rule: a scenario whose
// trace arrival reads a file path is refused with 400 — the digest
// does not cover the file's content, so two different traces behind
// one path would alias a single cache entry.
func TestPathSourceRejected(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	sc := scenario.Scenario{
		Name: "path-trace",
		Tasks: []scenario.Task{
			{Name: "replay", Priority: 1, Period: scenario.Duration(vtime.Millis(20)), Deadline: scenario.Duration(vtime.Millis(20)), Cost: scenario.Duration(vtime.Millis(2))},
		},
		Arrivals:      []scenario.Arrival{{Task: "replay", Kind: scenario.ArrivalTrace, Path: "does-not-matter.jsonl"}},
		Horizon:       scenario.Duration(vtime.Millis(100)),
		SkipAdmission: true,
	}
	body, err := scenario.Marshal(&sc)
	if err != nil {
		t.Fatal(err)
	}
	rec := post(t, s, "/v1/simulate", body)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("path-source POST: status %d, want 400", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "content-addressable") {
		t.Errorf("error body %q does not explain the path rejection", rec.Body.String())
	}
	if snap := s.Metrics(); snap.BadRequests == 0 {
		t.Error("metrics do not count the rejected request")
	}
}

// TestSSEProgress pins the streaming contract: ?stream=sse yields a
// queued event, at least one progress observation of the virtual
// clock, and a result event whose envelope equals the blocking
// response.
func TestSSEProgress(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	body := testScenarioJSON(t, "sse", 4)

	rec := post(t, s, "/v1/simulate?stream=sse", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type %q", ct)
	}
	events := parseSSE(t, rec.Body.String())
	if len(events["queued"]) != 1 {
		t.Errorf("want exactly 1 queued event, got %d", len(events["queued"]))
	}
	if len(events["progress"]) == 0 {
		t.Error("no progress events streamed")
	}
	for _, raw := range events["progress"] {
		var p Progress
		if err := json.Unmarshal([]byte(raw), &p); err != nil {
			t.Fatalf("progress event: %v", err)
		}
		if p.HorizonMS != 100 || p.AtMS < 0 || p.AtMS > p.HorizonMS {
			t.Errorf("implausible progress %+v", p)
		}
	}
	if len(events["result"]) != 1 {
		t.Fatalf("want exactly 1 result event, got %d (errors: %v)", len(events["result"]), events["error"])
	}

	blocking := post(t, s, "/v1/simulate", body)
	if got, want := strings.TrimSpace(events["result"][0]), strings.TrimSpace(blocking.Body.String()); got != want {
		t.Errorf("SSE result envelope differs from blocking response:\n%s\nvs\n%s", got, want)
	}
}

func parseSSE(t *testing.T, s string) map[string][]string {
	t.Helper()
	out := map[string][]string{}
	var event string
	for _, line := range strings.Split(s, "\n") {
		if v, ok := strings.CutPrefix(line, "event: "); ok {
			event = v
		} else if v, ok := strings.CutPrefix(line, "data: "); ok {
			if event == "" {
				t.Fatalf("data without event: %q", line)
			}
			out[event] = append(out[event], v)
			event = ""
		}
	}
	return out
}

// TestBadRequests pins the error contract: malformed JSON, unknown
// fields, and invalid scenarios are 400s (counted, never cached,
// never simulated); an infeasible-but-valid scenario is a 422.
func TestBadRequests(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	for name, body := range map[string]string{
		"malformed":     "{not json",
		"unknown-field": `{"tasks":[],"horizon":"1s","bogus":1}`,
		"no-tasks":      `{"tasks":[],"horizon":"1s"}`,
	} {
		t.Run(name, func(t *testing.T) {
			rec := post(t, s, "/v1/simulate", []byte(body))
			if rec.Code != http.StatusBadRequest {
				t.Errorf("status %d, want 400", rec.Code)
			}
		})
	}
	if s.Metrics().BadRequests != 3 {
		t.Errorf("bad_requests = %d, want 3", s.Metrics().BadRequests)
	}
	if s.Metrics().SimulationsRun != 0 {
		t.Error("a bad request reached the simulator")
	}

	// Structurally valid but infeasible under admission control: the
	// run fails deterministically → 422, not cached.
	over := scenario.Scenario{
		Name: "infeasible",
		Tasks: []scenario.Task{
			{Name: "tau1", Priority: 2, Period: scenario.Duration(vtime.Millis(10)), Deadline: scenario.Duration(vtime.Millis(10)), Cost: scenario.Duration(vtime.Millis(6))},
			{Name: "tau2", Priority: 1, Period: scenario.Duration(vtime.Millis(10)), Deadline: scenario.Duration(vtime.Millis(10)), Cost: scenario.Duration(vtime.Millis(6))},
		},
		Horizon: scenario.Duration(vtime.Millis(100)),
	}
	b, err := scenario.Marshal(&over)
	if err != nil {
		t.Fatal(err)
	}
	rec := post(t, s, "/v1/simulate", b)
	if rec.Code != http.StatusUnprocessableEntity {
		t.Errorf("infeasible scenario: status %d, want 422: %s", rec.Code, rec.Body.String())
	}
	if got := s.cache.len(); got != 0 {
		t.Errorf("failed run left %d cache entries", got)
	}
}

// TestMetricsEndpoint pins the /metrics document shape and that the
// counters move.
func TestMetricsEndpoint(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	body := testScenarioJSON(t, "metrics", 5)
	for i := 0; i < 3; i++ {
		if rec := post(t, s, "/v1/simulate", body); rec.Code != http.StatusOK {
			t.Fatalf("POST %d: status %d", i, rec.Code)
		}
	}

	req := httptest.NewRequest("GET", "/metrics", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /metrics: %d", rec.Code)
	}
	var snap Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("metrics JSON: %v", err)
	}
	if snap.CacheMisses != 1 || snap.CacheHits != 2 {
		t.Errorf("hits/misses = %d/%d, want 2/1", snap.CacheHits, snap.CacheMisses)
	}
	if snap.SimulationsRun != 1 {
		t.Errorf("simulations_run = %d, want 1", snap.SimulationsRun)
	}
	if snap.Latency.Count != 3 {
		t.Errorf("latency count = %d, want 3", snap.Latency.Count)
	}
	if snap.Latency.P99MS < snap.Latency.P50MS {
		t.Errorf("p99 %v < p50 %v", snap.Latency.P99MS, snap.Latency.P50MS)
	}

	hreq := httptest.NewRequest("GET", "/healthz", nil)
	hrec := httptest.NewRecorder()
	s.ServeHTTP(hrec, hreq)
	if hrec.Code != http.StatusOK || !strings.Contains(hrec.Body.String(), `"ok"`) {
		t.Errorf("healthz: %d %q", hrec.Code, hrec.Body.String())
	}
}

// TestVerifyConfig pins that Config.Verify arms the oracle on served
// runs (a healthy scenario still passes — the wiring, not the oracle,
// is under test here).
func TestVerifyConfig(t *testing.T) {
	s := New(Config{Workers: 1, Verify: true})
	defer s.Close()
	rec := post(t, s, "/v1/simulate", testScenarioJSON(t, "verified", 6))
	if rec.Code != http.StatusOK {
		t.Fatalf("verified run: status %d: %s", rec.Code, rec.Body.String())
	}
}
