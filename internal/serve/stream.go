package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
)

// wantsSSE reports whether the request opted into progress streaming,
// either with ?stream=sse or an Accept: text/event-stream header.
func wantsSSE(r *http.Request) bool {
	if r.URL.Query().Get("stream") == "sse" {
		return true
	}
	return strings.Contains(r.Header.Get("Accept"), "text/event-stream")
}

// streamSimulate answers one simulate request as a server-sent event
// stream: a "queued" event immediately, throttled "progress" events
// while the simulation advances its virtual clock (driven by the
// run's trace stream via sim.System.ObserveProgress), then a terminal
// "result" (the same deterministic envelope the blocking path
// returns) or "error" event. A cache hit skips straight to "result".
// SSE necessarily commits the 200 status before the run finishes, so
// failures travel as "error" events rather than status codes.
func (s *Server) streamSimulate(w http.ResponseWriter, r *http.Request, e *entry, digest, cacheStatus string) {
	fl, ok := w.(http.Flusher)
	if !ok {
		// No streaming transport; degrade to the blocking contract.
		select {
		case <-e.done:
		case <-r.Context().Done():
			return
		}
		if e.err != nil {
			if errors.Is(e.err, errOverloaded) {
				s.throttle(w)
			} else {
				errorBody(w, http.StatusUnprocessableEntity, e.err.Error())
			}
			return
		}
		s.writeResult(w, r, e, digest, cacheStatus)
		return
	}

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Scenario-Digest", digest)
	h.Set("X-Cache", cacheStatus)
	w.WriteHeader(http.StatusOK)

	emit := func(event string, data any) {
		b, err := json.Marshal(data)
		if err != nil {
			return
		}
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, b)
		fl.Flush()
	}

	emit("queued", map[string]any{
		"digest":      digest,
		"cache":       cacheStatus,
		"queue_depth": s.pool.QueueDepth(),
	})

	ch, cancel := e.subscribe()
	defer cancel()
	for {
		select {
		case p := <-ch:
			emit("progress", p)
		case <-e.done:
			// Drain progress observed before completion, then finish.
			for {
				select {
				case p := <-ch:
					emit("progress", p)
					continue
				default:
				}
				break
			}
			if e.err != nil {
				emit("error", map[string]string{"error": e.err.Error()})
			} else {
				emit("result", resultEnvelope(digest, e.res))
			}
			return
		case <-r.Context().Done():
			return
		}
	}
}
