package baselines

import "repro/internal/engine"

// The overload baselines join the engine's policy registry so that
// declarative scenarios can select them by name (X4's comparison
// columns: edf, best-effort, red, d-over).
func init() {
	engine.RegisterPolicy(EDF{}.Name(), func() engine.Policy { return EDF{} })
	engine.RegisterPolicy(BestEffort{}.Name(), func() engine.Policy { return BestEffort{} })
	engine.RegisterPolicy(RED{}.Name(), func() engine.Policy { return RED{} })
	engine.RegisterPolicy(DOver{}.Name(), func() engine.Policy { return DOver{} })
}
