package baselines

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/taskset"
	"repro/internal/vtime"
)

func ms(v int64) vtime.Duration { return vtime.Millis(v) }
func at(v int64) vtime.Time     { return vtime.AtMillis(v) }

func feasibleSet() *taskset.Set {
	return taskset.MustNew(
		taskset.Task{Name: "a", Priority: 3, Period: ms(100), Deadline: ms(100), Cost: ms(30), Value: 10},
		taskset.Task{Name: "b", Priority: 2, Period: ms(150), Deadline: ms(150), Cost: ms(30), Value: 5},
		taskset.Task{Name: "c", Priority: 1, Period: ms(300), Deadline: ms(300), Cost: ms(60), Value: 1},
	)
}

// overloadedSet has U = 1.4: sustained overload.
func overloadedSet() *taskset.Set {
	return taskset.MustNew(
		taskset.Task{Name: "hi", Priority: 3, Period: ms(100), Deadline: ms(100), Cost: ms(60), Value: 10},
		taskset.Task{Name: "mid", Priority: 2, Period: ms(100), Deadline: ms(100), Cost: ms(50), Value: 5},
		taskset.Task{Name: "lo", Priority: 1, Period: ms(100), Deadline: ms(100), Cost: ms(30), Value: 1},
	)
}

func runPolicy(t *testing.T, s *taskset.Set, p engine.Policy, horizon int64) *metrics.Report {
	t.Helper()
	e, err := engine.New(engine.Config{Tasks: s, Policy: p, End: at(horizon)})
	if err != nil {
		t.Fatal(err)
	}
	return metrics.Analyze(e.Run())
}

func TestEDFSchedulesFeasibleSetPerfectly(t *testing.T) {
	// EDF is optimal on a uniprocessor: U ≈ 0.7 → zero failures.
	rep := runPolicy(t, feasibleSet(), EDF{}, 3000)
	if rep.TotalFailed() != 0 {
		t.Fatalf("EDF failed %d jobs on a feasible set\n%s", rep.TotalFailed(), rep.Render())
	}
}

func TestEDFOrdering(t *testing.T) {
	s := feasibleSet()
	e, err := engine.New(engine.Config{Tasks: s, Policy: EDF{}, End: at(100)})
	if err != nil {
		t.Fatal(err)
	}
	_ = e // ordering is exercised through Better below on synthetic jobs
	p := EDF{}
	if p.Name() != "edf" {
		t.Errorf("Name = %q", p.Name())
	}
	// Construct jobs via a run and compare orderings indirectly: the
	// earliest-deadline ready job must run first. c has the latest
	// deadline (300) so a and b finish strictly earlier.
	rep := runPolicy(t, s, EDF{}, 300)
	ja, _ := rep.Job("a", 0)
	jc, _ := rep.Job("c", 0)
	if !ja.End.Before(jc.End) {
		t.Errorf("EDF must finish a (D=100) before c (D=300): %v vs %v", ja.End, jc.End)
	}
}

func TestEDFDominoUnderOverload(t *testing.T) {
	// Plain EDF under 140% load thrashes: many tasks miss.
	rep := runPolicy(t, overloadedSet(), EDF{}, 2000)
	if rep.TotalFailed() == 0 {
		t.Fatal("overloaded EDF cannot meet everything")
	}
}

func TestBestEffortPrefersHighValueUnderOverload(t *testing.T) {
	be := runPolicy(t, overloadedSet(), BestEffort{}, 2000)
	edf := runPolicy(t, overloadedSet(), EDF{}, 2000)
	// The high-value task must do at least as well under best-effort
	// as under blind EDF, and the shedding must keep hi mostly
	// successful (its utilization alone is 0.6).
	if be.Tasks["hi"].Failed > edf.Tasks["hi"].Failed {
		t.Errorf("best-effort hurt the high-value task: %d vs EDF's %d failures",
			be.Tasks["hi"].Failed, edf.Tasks["hi"].Failed)
	}
	if be.Tasks["hi"].SuccessRatio() < 0.8 {
		t.Errorf("hi success ratio %.2f under best-effort, want >= 0.8\n%s",
			be.Tasks["hi"].SuccessRatio(), be.Render())
	}
}

func TestBestEffortNoSheddingWhenFeasible(t *testing.T) {
	rep := runPolicy(t, feasibleSet(), BestEffort{}, 3000)
	if rep.TotalFailed() != 0 {
		t.Fatalf("best-effort shed jobs in an underloaded system\n%s", rep.Render())
	}
}

func TestREDRejectsAtAdmission(t *testing.T) {
	rep := runPolicy(t, overloadedSet(), RED{}, 2000)
	// RED must keep the guaranteed (admitted) jobs successful: every
	// job that was not dropped at admission meets its deadline.
	for name, s := range rep.Tasks {
		// failures among *admitted* jobs: Stopped counts shed ones;
		// deadline misses of admitted jobs should be rare. We accept
		// stops (recovery shedding) but not plain misses for "hi".
		if name == "hi" && s.Missed > s.Stopped {
			t.Errorf("RED let admitted hi jobs miss: %+v", s)
		}
	}
	if rep.Tasks["hi"].SuccessRatio() < 0.8 {
		t.Errorf("hi success %.2f under RED, want >= 0.8\n%s", rep.Tasks["hi"].SuccessRatio(), rep.Render())
	}
}

func TestREDAcceptsEverythingWhenFeasible(t *testing.T) {
	rep := runPolicy(t, feasibleSet(), RED{}, 3000)
	if rep.TotalFailed() != 0 {
		t.Fatalf("RED rejected jobs in an underloaded system\n%s", rep.Render())
	}
}

func TestDOverProtectsValueUnderOverload(t *testing.T) {
	do := runPolicy(t, overloadedSet(), DOver{}, 2000)
	if do.Tasks["hi"].SuccessRatio() < 0.5 {
		t.Errorf("hi success %.2f under d-over, want >= 0.5\n%s", do.Tasks["hi"].SuccessRatio(), do.Render())
	}
}

func TestDOverFeasibleNoInterference(t *testing.T) {
	rep := runPolicy(t, feasibleSet(), DOver{}, 3000)
	if rep.TotalFailed() != 0 {
		t.Fatalf("d-over interfered with a feasible set\n%s", rep.Render())
	}
}

func TestPolicyNames(t *testing.T) {
	if (BestEffort{}).Name() != "best-effort" || (RED{}).Name() != "red" || (DOver{}).Name() != "d-over" {
		t.Error("policy names wrong")
	}
}

// TestValueOrderingUnderFaults: with a fault inflating the mid task,
// the value-aware policies keep the high-value task above EDF.
func TestValueOrderingUnderFaults(t *testing.T) {
	faults := fault.Plan{"mid": fault.OverrunEvery{K: 1, Extra: ms(40)}}
	run := func(p engine.Policy) *metrics.Report {
		e, err := engine.New(engine.Config{Tasks: feasibleSet(), Policy: p, Faults: faults, End: at(3000)})
		if err != nil {
			t.Fatal(err)
		}
		return metrics.Analyze(e.Run())
	}
	edf := run(EDF{})
	be := run(BestEffort{})
	if be.Tasks["a"].Failed > edf.Tasks["a"].Failed {
		t.Errorf("best-effort hurt the high-value task under faults: %d vs %d",
			be.Tasks["a"].Failed, edf.Tasks["a"].Failed)
	}
}

// TestDeterministicBaselineRuns: value policies make runs no less
// deterministic.
func TestDeterministicBaselineRuns(t *testing.T) {
	run := func() string {
		e, err := engine.New(engine.Config{Tasks: overloadedSet(), Policy: BestEffort{}, End: at(1000)})
		if err != nil {
			t.Fatal(err)
		}
		return e.Run().EncodeString()
	}
	if run() != run() {
		t.Fatal("best-effort runs differ between executions")
	}
}
