// Package baselines implements the overload-handling schedulers the
// paper positions its approach against (§1): "an approach usually met
// in the literature is to install overload detection and treatment
// mechanisms [12, 9, 5]" — Locke's best-effort value-density
// scheduling [12], Koren & Shasha's D-over [9], and Buttazzo &
// Stankovic's RED (robust earliest deadline) [5]. All three are
// dynamic-priority policies built on the same simulation engine, so
// the X4 extension experiment can compare them with the paper's
// admission-control-plus-detectors approach under identical faults.
//
// The implementations follow the published algorithms' decision
// structure (EDF ordering; value-based shedding on overload;
// admission-time rejection for RED; latest-start-time abandonment for
// D-over) at the granularity the engine exposes. They are faithful
// baselines for shape comparison, not bit-exact reimplementations of
// the original schedulers' bookkeeping.
package baselines

import (
	"sort"

	"repro/internal/engine"
	"repro/internal/vtime"
)

// EDF is plain earliest-deadline-first: optimal when U ≤ 1 but
// subject to the domino effect under overload — the motivation for
// the three robust variants below.
type EDF struct{}

// Name returns "edf".
func (EDF) Name() string { return "edf" }

// Better prefers the earlier absolute deadline.
func (EDF) Better(a, b *engine.Job) bool {
	if a.AbsDeadline != b.AbsDeadline {
		return a.AbsDeadline.Before(b.AbsDeadline)
	}
	if a.Release != b.Release {
		return a.Release.Before(b.Release)
	}
	return a.TaskName() < b.TaskName()
}

// Admit accepts every job.
func (EDF) Admit(*engine.Engine, *engine.Job) bool { return true }

// valueDensity is the Locke heuristic: value per unit of remaining
// computation.
func valueDensity(j *engine.Job) float64 {
	rem := float64(j.Remaining()) / float64(vtime.Millisecond)
	if rem <= 0 {
		rem = 1e-9
	}
	return j.Task().EffectiveValue() / rem
}

// overloaded checks EDF schedulability of the jobs at instant now:
// processing them in deadline order, does any cumulative completion
// overshoot its deadline? Returns the first failing index (into the
// deadline-sorted slice) or -1.
func overloaded(now vtime.Time, jobs []*engine.Job) (sorted []*engine.Job, failIdx int) {
	sorted = append(sorted, jobs...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].AbsDeadline != sorted[j].AbsDeadline {
			return sorted[i].AbsDeadline.Before(sorted[j].AbsDeadline)
		}
		return sorted[i].TaskName() < sorted[j].TaskName()
	})
	t := now
	for i, j := range sorted {
		t = t.Add(j.Remaining())
		if t.After(j.AbsDeadline) {
			return sorted, i
		}
	}
	return sorted, -1
}

// BestEffort is Locke's best-effort scheduler [12]: EDF ordering
// with value-density shedding when the ready set becomes overloaded.
// On each release that creates an overload, the lowest value-density
// jobs among those at or before the failing point are abandoned until
// the remainder is schedulable.
type BestEffort struct{ EDF }

// Name returns "best-effort".
func (BestEffort) Name() string { return "best-effort" }

// Admit sheds on overload. The released job itself may be the victim
// (return false); already-queued victims are stopped via the engine.
func (BestEffort) Admit(e *engine.Engine, j *engine.Job) bool {
	now := e.Now()
	candidate := append(e.ReadyJobs(), j)
	for {
		sorted, fail := overloaded(now, candidate)
		if fail < 0 {
			return true
		}
		// Shed the lowest value-density job among sorted[0..fail].
		victim := sorted[0]
		for _, s := range sorted[1 : fail+1] {
			if valueDensity(s) < valueDensity(victim) {
				victim = s
			}
		}
		if victim == j {
			return false
		}
		e.StopJob(victim.TaskName(), victim.Q, now)
		candidate = removeJob(candidate, victim)
	}
}

// RED is Buttazzo & Stankovic's robust earliest deadline [5]: an
// admission-time guarantee test. A released job is accepted only if
// the ready set plus the newcomer is EDF-schedulable; otherwise the
// newcomer is rejected outright unless its value exceeds that of a
// set of lesser jobs whose removal restores schedulability (the
// recovery strategy), in which case those are shed instead.
type RED struct{ EDF }

// Name returns "red".
func (RED) Name() string { return "red" }

// Admit runs the guarantee routine.
func (RED) Admit(e *engine.Engine, j *engine.Job) bool {
	now := e.Now()
	candidate := append(e.ReadyJobs(), j)
	if _, fail := overloaded(now, candidate); fail < 0 {
		return true
	}
	// Recovery: find the cheapest set of other jobs whose removal
	// admits j; greedy by ascending value.
	others := removeJob(append([]*engine.Job(nil), candidate...), j)
	sort.Slice(others, func(a, b int) bool {
		return others[a].Task().EffectiveValue() < others[b].Task().EffectiveValue()
	})
	var shed []*engine.Job
	kept := append([]*engine.Job(nil), candidate...)
	sacrificed := 0.0
	for _, victim := range others {
		if sacrificed >= j.Task().EffectiveValue() {
			break // not worth it: reject the newcomer
		}
		kept = removeJob(kept, victim)
		shed = append(shed, victim)
		sacrificed += victim.Task().EffectiveValue()
		if _, fail := overloaded(now, kept); fail < 0 {
			if sacrificed >= j.Task().EffectiveValue() {
				return false // the shed set is worth more than j
			}
			for _, v := range shed {
				e.StopJob(v.TaskName(), v.Q, now)
			}
			return true
		}
	}
	return false
}

// DOver approximates Koren & Shasha's D-over [9]: EDF until a job
// reaches its latest start time (LST = deadline − remaining work)
// while not executing; at that moment the scheduler keeps whichever
// of {LST job, running set} carries more value, abandoning the other.
type DOver struct{ EDF }

// Name returns "d-over".
func (DOver) Name() string { return "d-over" }

// Admit always accepts, but arms an LST watchdog for the job.
func (DOver) Admit(e *engine.Engine, j *engine.Job) bool {
	task := j.TaskName()
	q := j.Q
	var arm func(at vtime.Time)
	arm = func(at vtime.Time) {
		e.Schedule(at, func(now vtime.Time) {
			jj, ok := e.JobAt(task, q)
			if !ok || jj.Done() {
				return
			}
			lst := jj.AbsDeadline.Add(-jj.Remaining())
			if lst.After(now) {
				arm(lst) // received CPU since; re-arm at the new LST
				return
			}
			// At (or past) the LST and still not finished: compare
			// against the competing ready jobs with earlier
			// deadlines; abandon the side with less value.
			best := jj
			for _, r := range e.ReadyJobs() {
				if r == jj || r.Done() {
					continue
				}
				if r.AbsDeadline.Before(jj.AbsDeadline) || (DOver{}).Better(r, jj) {
					if r.Task().EffectiveValue() > best.Task().EffectiveValue() {
						best = r
					}
				}
			}
			if best == jj {
				// jj wins: shed every earlier-deadline competitor so
				// jj runs immediately.
				for _, r := range e.ReadyJobs() {
					if r != jj && (DOver{}).Better(r, jj) {
						e.StopJob(r.TaskName(), r.Q, now)
					}
				}
			} else {
				e.StopJob(task, q, now)
			}
		})
	}
	arm(j.AbsDeadline.Add(-j.Remaining()))
	return true
}

// removeJob returns jobs without the victim (pointer identity).
func removeJob(jobs []*engine.Job, victim *engine.Job) []*engine.Job {
	out := jobs[:0]
	for _, j := range jobs {
		if j != victim {
			out = append(out, j)
		}
	}
	return out
}
