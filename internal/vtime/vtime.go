// Package vtime provides the virtual time base used throughout the
// reproduction. All simulation and analysis code measures time as an
// integer number of nanoseconds on a virtual clock, mirroring the
// paper's use of the RDTSC cycle counter for nanosecond-precision
// timestamps while remaining fully deterministic (no wall-clock reads).
package vtime

import (
	"fmt"
	"strconv"
	"strings"
)

// Time is an absolute instant on the virtual clock, in nanoseconds
// since the start of the system (time zero is the simulation origin,
// analogous to machine start-up for RDTSC).
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration int64

// Common durations.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Forever is a sentinel instant later than any reachable simulation
// time. It is used for "no deadline" and unreachable timer expirations.
const Forever Time = 1<<63 - 1

// Millis returns a Duration of ms milliseconds.
func Millis(ms int64) Duration { return Duration(ms) * Millisecond }

// Micros returns a Duration of us microseconds.
func Micros(us int64) Duration { return Duration(us) * Microsecond }

// Nanos returns a Duration of ns nanoseconds.
func Nanos(ns int64) Duration { return Duration(ns) }

// AtMillis returns the absolute instant ms milliseconds after time zero.
func AtMillis(ms int64) Time { return Time(Millis(ms)) }

// Add returns t shifted forward by d (backward if d is negative).
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration elapsed from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Before reports whether t is strictly earlier than u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t is strictly later than u.
func (t Time) After(u Time) bool { return t > u }

// Milliseconds returns the instant expressed in whole milliseconds,
// truncating toward zero.
func (t Time) Milliseconds() int64 { return int64(t) / int64(Millisecond) }

// Nanoseconds returns the raw nanosecond count.
func (t Time) Nanoseconds() int64 { return int64(t) }

// Milliseconds returns the duration in whole milliseconds, truncating
// toward zero.
func (d Duration) Milliseconds() int64 { return int64(d) / int64(Millisecond) }

// Nanoseconds returns the raw nanosecond count.
func (d Duration) Nanoseconds() int64 { return int64(d) }

// Ceil returns d rounded up to the next multiple of step. Ceil of a
// non-positive step returns d unchanged.
func (d Duration) Ceil(step Duration) Duration {
	if step <= 0 {
		return d
	}
	r := d % step
	if r == 0 {
		return d
	}
	if d < 0 {
		return d - r
	}
	return d + step - r
}

// Floor returns d rounded down to the previous multiple of step.
func (d Duration) Floor(step Duration) Duration {
	if step <= 0 {
		return d
	}
	r := d % step
	if r == 0 {
		return d
	}
	if d < 0 {
		return d - step - r
	}
	return d - r
}

// Round returns d rounded to the nearest multiple of step, with ties
// rounding up. This models jRate's PeriodicTimer release quantization
// (paper §6.2: releases are only accurate at multiples of 10 ms).
func (d Duration) Round(step Duration) Duration {
	if step <= 0 {
		return d
	}
	r := d % step
	if r == 0 {
		return d
	}
	if 2*r >= step {
		return d + step - r
	}
	return d - r
}

// String renders the instant as milliseconds with fractional part when
// needed, e.g. "1029ms" or "1029.5ms". The paper's charts are labelled
// in milliseconds.
func (t Time) String() string {
	if t == Forever {
		return "∞"
	}
	return Duration(t).String()
}

// String renders the duration in milliseconds, e.g. "29ms", "1.5ms".
func (d Duration) String() string {
	ms := int64(d) / int64(Millisecond)
	frac := int64(d) % int64(Millisecond)
	if frac == 0 {
		return strconv.FormatInt(ms, 10) + "ms"
	}
	if frac < 0 {
		frac = -frac
	}
	s := strconv.FormatInt(frac, 10)
	s = strings.Repeat("0", 6-len(s)) + s
	s = strings.TrimRight(s, "0")
	return fmt.Sprintf("%d.%sms", ms, s)
}

// ParseDuration parses a duration written with one of the suffixes
// "ns", "us", "ms" or "s" (e.g. "29ms", "250us", "1.5ms"). A bare
// number is interpreted as milliseconds, matching the paper's task
// tables.
func ParseDuration(s string) (Duration, error) {
	orig := s
	s = strings.TrimSpace(s)
	unit := Millisecond
	switch {
	case strings.HasSuffix(s, "ns"):
		unit, s = Nanosecond, strings.TrimSuffix(s, "ns")
	case strings.HasSuffix(s, "us"):
		unit, s = Microsecond, strings.TrimSuffix(s, "us")
	case strings.HasSuffix(s, "ms"):
		unit, s = Millisecond, strings.TrimSuffix(s, "ms")
	case strings.HasSuffix(s, "s"):
		unit, s = Second, strings.TrimSuffix(s, "s")
	}
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, fmt.Errorf("vtime: empty duration %q", orig)
	}
	if i := strings.IndexByte(s, '.'); i >= 0 {
		whole, err := parseInt(s[:i], orig)
		if err != nil {
			return 0, err
		}
		fracStr := s[i+1:]
		if fracStr == "" {
			return Duration(whole) * unit, nil
		}
		frac, err := parseInt(fracStr, orig)
		if err != nil {
			return 0, err
		}
		scale := int64(unit)
		for range fracStr {
			scale /= 10
		}
		if scale == 0 {
			return 0, fmt.Errorf("vtime: too many fractional digits in %q", orig)
		}
		d := Duration(whole)*unit + Duration(frac*scale)
		if whole < 0 || strings.HasPrefix(s, "-") {
			d = Duration(whole)*unit - Duration(frac*scale)
		}
		return d, nil
	}
	whole, err := parseInt(s, orig)
	if err != nil {
		return 0, err
	}
	return Duration(whole) * unit, nil
}

func parseInt(s, orig string) (int64, error) {
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("vtime: bad duration %q", orig)
	}
	return v, nil
}

// Max returns the later of a and b.
func Max(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// Min returns the earlier of a and b.
func Min(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}

// MaxDur returns the longer of a and b.
func MaxDur(a, b Duration) Duration {
	if a > b {
		return a
	}
	return b
}

// MinDur returns the shorter of a and b.
func MinDur(a, b Duration) Duration {
	if a < b {
		return a
	}
	return b
}
