package vtime

import (
	"testing"
	"testing/quick"
)

func TestConstructorsAndAccessors(t *testing.T) {
	if Millis(29) != 29_000_000 {
		t.Errorf("Millis(29) = %d ns", Millis(29))
	}
	if Micros(5) != 5_000 {
		t.Errorf("Micros(5) = %d ns", Micros(5))
	}
	if Nanos(7) != 7 {
		t.Errorf("Nanos(7) = %d", Nanos(7))
	}
	if AtMillis(1000).Milliseconds() != 1000 {
		t.Errorf("AtMillis(1000).Milliseconds() = %d", AtMillis(1000).Milliseconds())
	}
	if Millis(3).Nanoseconds() != 3_000_000 {
		t.Error("Duration.Nanoseconds wrong")
	}
	if AtMillis(3).Nanoseconds() != 3_000_000 {
		t.Error("Time.Nanoseconds wrong")
	}
}

func TestArithmetic(t *testing.T) {
	a := AtMillis(1000)
	b := a.Add(Millis(29))
	if b != AtMillis(1029) {
		t.Errorf("Add: %v", b)
	}
	if b.Sub(a) != Millis(29) {
		t.Errorf("Sub: %v", b.Sub(a))
	}
	if !a.Before(b) || !b.After(a) || a.After(b) || b.Before(a) {
		t.Error("Before/After inconsistent")
	}
}

func TestRounding(t *testing.T) {
	step := Millis(10)
	cases := []struct {
		in                 Duration
		ceil, floor, round Duration
	}{
		{Millis(29), Millis(30), Millis(20), Millis(30)},
		{Millis(58), Millis(60), Millis(50), Millis(60)},
		{Millis(87), Millis(90), Millis(80), Millis(90)},
		{Millis(30), Millis(30), Millis(30), Millis(30)},
		{Millis(24), Millis(30), Millis(20), Millis(20)},
		{Millis(25), Millis(30), Millis(20), Millis(30)},
		{0, 0, 0, 0},
	}
	for _, c := range cases {
		if got := c.in.Ceil(step); got != c.ceil {
			t.Errorf("Ceil(%v) = %v, want %v", c.in, got, c.ceil)
		}
		if got := c.in.Floor(step); got != c.floor {
			t.Errorf("Floor(%v) = %v, want %v", c.in, got, c.floor)
		}
		if got := c.in.Round(step); got != c.round {
			t.Errorf("Round(%v) = %v, want %v", c.in, got, c.round)
		}
	}
	// Degenerate step: identity.
	if Millis(7).Ceil(0) != Millis(7) || Millis(7).Floor(0) != Millis(7) || Millis(7).Round(0) != Millis(7) {
		t.Error("zero step must be identity")
	}
}

// TestPaperDetectorRounding encodes the paper's §6.2 observation: with
// jRate's 10 ms timer, detector offsets 29/58/87 ms are released with
// delays of 1, 2 and 3 ms respectively (i.e. at 30, 60, 90).
func TestPaperDetectorRounding(t *testing.T) {
	wcrts := []Duration{Millis(29), Millis(58), Millis(87)}
	delays := []Duration{Millis(1), Millis(2), Millis(3)}
	for i, w := range wcrts {
		got := w.Round(Millis(10)) - w
		if got != delays[i] {
			t.Errorf("detector %d delay = %v, want %v", i+1, got, delays[i])
		}
	}
}

func TestQuickCeilFloorInvariants(t *testing.T) {
	f := func(raw int64, stepMs uint8) bool {
		d := Duration(raw % 1_000_000_000)
		if d < 0 {
			d = -d
		}
		step := Millis(int64(stepMs%50) + 1)
		c, fl, r := d.Ceil(step), d.Floor(step), d.Round(step)
		if c%step != 0 || fl%step != 0 || r%step != 0 {
			return false
		}
		if c < d || fl > d {
			return false
		}
		if c-d >= step || d-fl >= step {
			return false
		}
		return r == c || r == fl
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestStrings(t *testing.T) {
	cases := map[Duration]string{
		Millis(29):              "29ms",
		Millis(1) + Micros(500): "1.5ms",
		0:                       "0ms",
		Nanos(1):                "0.000001ms",
	}
	for d, want := range cases {
		if d.String() != want {
			t.Errorf("%d.String() = %q, want %q", d, d.String(), want)
		}
	}
	if AtMillis(1020).String() != "1020ms" {
		t.Errorf("Time.String() = %q", AtMillis(1020).String())
	}
	if Forever.String() != "∞" {
		t.Errorf("Forever.String() = %q", Forever.String())
	}
}

func TestParseDuration(t *testing.T) {
	good := map[string]Duration{
		"29":      Millis(29),
		"29ms":    Millis(29),
		"1.5ms":   Millis(1) + Micros(500),
		"250us":   Micros(250),
		"100ns":   Nanos(100),
		"2s":      2 * Second,
		" 10 ms ": Millis(10),
		"0.25s":   250 * Millisecond,
	}
	for in, want := range good {
		got, err := ParseDuration(in)
		if err != nil {
			t.Errorf("ParseDuration(%q): %v", in, err)
			continue
		}
		if got != want {
			t.Errorf("ParseDuration(%q) = %v, want %v", in, got, want)
		}
	}
	bad := []string{"", "ms", "x2ms", "1.2.3ms", "1.0000001ms"}
	for _, in := range bad {
		if _, err := ParseDuration(in); err == nil {
			t.Errorf("ParseDuration(%q): expected error", in)
		}
	}
}

func TestParseFormatsRoundTrip(t *testing.T) {
	f := func(msVal uint16) bool {
		d := Millis(int64(msVal))
		back, err := ParseDuration(d.String())
		return err == nil && back == d
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestMinMax(t *testing.T) {
	if Max(AtMillis(1), AtMillis(2)) != AtMillis(2) || Min(AtMillis(1), AtMillis(2)) != AtMillis(1) {
		t.Error("Time Min/Max wrong")
	}
	if MaxDur(Millis(1), Millis(2)) != Millis(2) || MinDur(Millis(1), Millis(2)) != Millis(1) {
		t.Error("Duration Min/Max wrong")
	}
}
