package aperiodic

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/detect"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/taskset"
	"repro/internal/vtime"
)

func ms(v int64) vtime.Duration { return vtime.Millis(v) }
func at(v int64) vtime.Time     { return vtime.AtMillis(v) }

func periodicSet() *taskset.Set {
	return taskset.MustNew(
		taskset.Task{Name: "hard", Priority: 10, Period: ms(100), Deadline: ms(100), Cost: ms(30)},
	)
}

func server(prio int) *PollingServer {
	return &PollingServer{
		Task: taskset.Task{Name: "server", Priority: prio, Period: ms(50), Deadline: ms(50), Cost: ms(10)},
	}
}

func TestValidate(t *testing.T) {
	ps := server(5)
	ps.Requests = []Request{{ID: "bad", Arrival: at(10), Cost: 0}}
	if err := ps.Validate(); err == nil {
		t.Error("zero-cost request must be rejected")
	}
	ps.Requests = []Request{{ID: "neg", Arrival: -1, Cost: ms(1)}}
	if err := ps.Validate(); err == nil {
		t.Error("negative arrival must be rejected")
	}
	ps.Requests = nil
	if err := ps.Validate(); err != nil {
		t.Errorf("valid server rejected: %v", err)
	}
}

func TestServerIsAdmissionControllable(t *testing.T) {
	// The server joins the analysed set like any periodic task — the
	// §7 point: the paper's machinery applies unchanged.
	ps := server(5)
	set, _, err := ps.Attach(periodicSet(), nil)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := analysis.Feasible(set)
	if err != nil || !rep.Feasible {
		t.Fatalf("set with server must be feasible: %v %v", rep, err)
	}
}

func TestSingleRequestServedAtFirstPoll(t *testing.T) {
	ps := server(5)
	ps.Requests = []Request{{ID: "r1", Arrival: at(10), Cost: ms(8), Deadline: ms(200)}}
	_, served, err := ps.Run(periodicSet(), nil, ms(500))
	if err != nil {
		t.Fatal(err)
	}
	r := served[0]
	if !r.Done {
		t.Fatal("request unserved")
	}
	// Arrival 10 is after the poll at 0 (empty queue) and before the
	// poll at 50; the hard task runs [0,30] and [100,130]; the server
	// job at 50 has the CPU free → serves [50,58].
	if r.Completion != at(58) {
		t.Errorf("completion %v, want 58ms", r.Completion)
	}
	if r.Response != ms(48) {
		t.Errorf("response %v, want 48ms", r.Response)
	}
	if r.MissedSoftDeadline() {
		t.Error("soft deadline 200ms not missed at response 48ms")
	}
}

func TestRequestSpanningMultiplePolls(t *testing.T) {
	// A 25ms request at capacity 10 needs three server jobs.
	ps := server(5)
	ps.Requests = []Request{{ID: "big", Arrival: at(0), Cost: ms(25)}}
	_, served, err := ps.Run(periodicSet(), nil, ms(500))
	if err != nil {
		t.Fatal(err)
	}
	r := served[0]
	if !r.Done {
		t.Fatal("request unserved")
	}
	// Poll at 0: demand 10, but the hard task (prio 10 > 5) runs
	// first: server [30,40]. Poll at 50: [50,60]. Poll at 100:
	// demand 5; hard runs [100,130], server [130,135].
	if r.Completion != at(135) {
		t.Errorf("completion %v, want 135ms", r.Completion)
	}
}

func TestFIFOOrderAcrossRequests(t *testing.T) {
	ps := server(5)
	ps.Requests = []Request{
		{ID: "first", Arrival: at(5), Cost: ms(6)},
		{ID: "second", Arrival: at(6), Cost: ms(6)},
	}
	_, served, err := ps.Run(periodicSet(), nil, ms(500))
	if err != nil {
		t.Fatal(err)
	}
	if !served[0].Done || !served[1].Done {
		t.Fatal("both requests must complete")
	}
	if !served[0].Completion.Before(served[1].Completion) {
		t.Errorf("FIFO violated: %v vs %v", served[0].Completion, served[1].Completion)
	}
	// Poll at 50 serves first fully (6) and second partially (4);
	// poll at 100 finishes second after the hard task: [130,132].
	if served[0].Completion != at(56) || served[1].Completion != at(132) {
		t.Errorf("completions %v/%v, want 56ms/132ms", served[0].Completion, served[1].Completion)
	}
}

// TestBurstCannotHurtPeriodicTasks is the §7 headline: a huge
// aperiodic burst saturates the server but every periodic deadline
// still holds, because the server's demand is capped at its declared
// capacity — which admission control already accounted for.
func TestBurstCannotHurtPeriodicTasks(t *testing.T) {
	ps := server(20) // even at the highest priority
	for i := 0; i < 50; i++ {
		ps.Requests = append(ps.Requests, Request{
			ID: "burst", Arrival: at(100), Cost: ms(20),
		})
	}
	e, served, err := ps.Run(periodicSet(), nil, ms(3000))
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range e.Jobs("hard") {
		if j.Done() && j.Missed() {
			t.Fatalf("hard#%d failed under aperiodic burst", j.Q)
		}
	}
	// The server drains at most 10ms per 50ms: in 2900ms after the
	// burst it serves at most ~580ms of the 1000ms backlog.
	var done int
	for _, r := range served {
		if r.Done {
			done++
		}
	}
	if done == 0 || done >= len(served) {
		t.Fatalf("burst should be partially served, got %d/%d", done, len(served))
	}
}

func TestDetectorsApplyToServer(t *testing.T) {
	// The server task carries a detector like any periodic task; a
	// misdeclared (overrunning) server is stopped, protecting lower
	// tasks — fault tolerance for the aperiodic subsystem.
	low := taskset.MustNew(
		taskset.Task{Name: "victim", Priority: 1, Period: ms(100), Deadline: ms(60), Cost: ms(20)},
	)
	srv := &PollingServer{
		Task: taskset.Task{Name: "server", Priority: 9, Period: ms(50), Deadline: ms(50), Cost: ms(10)},
	}
	set, plan, err := srv.Attach(low, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Sabotage: wrap the polling model so every job overruns by 30ms
	// (a buggy server exceeding its declared capacity).
	plan["server"] = fault.Chain{plan["server"], fault.OverrunEvery{K: 1, Extra: ms(30)}}
	sup, err := detect.NewSupervisor(set, detect.Config{Treatment: detect.Stop, TimerResolution: ms(10)})
	if err != nil {
		t.Fatal(err)
	}
	e, err := engine.New(engine.Config{Tasks: set, Faults: plan, End: at(1000), Hooks: sup.Hooks()})
	if err != nil {
		t.Fatal(err)
	}
	sup.Attach(e)
	e.Run()
	if sup.Detections() == 0 {
		t.Fatal("the overrunning server must be detected")
	}
	for _, j := range e.Jobs("victim") {
		if j.Done() && j.Missed() {
			t.Fatalf("victim#%d failed despite server detectors", j.Q)
		}
	}
}

func TestEmptyPollsAreCheap(t *testing.T) {
	ps := server(5)
	e, _, err := ps.Run(periodicSet(), nil, ms(1000))
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range e.Jobs("server") {
		if j.Done() && j.Executed > ms(1) {
			t.Fatalf("idle poll consumed %v", j.Executed)
		}
	}
}

func TestAnalyzeUnservedRequests(t *testing.T) {
	ps := server(5)
	ps.Requests = []Request{{ID: "late", Arrival: at(900), Cost: ms(50)}}
	_, served, err := ps.Run(periodicSet(), nil, ms(1000))
	if err != nil {
		t.Fatal(err)
	}
	if served[0].Done {
		t.Fatal("a 50ms request arriving at 900 cannot finish by 1000 at 10ms/50ms")
	}
	if served[0].MissedSoftDeadline() {
		t.Error("unserved requests must not count as soft misses")
	}
}

func TestModelOutOfOrderPanics(t *testing.T) {
	ps := server(5)
	m := ps.Model()
	m.ActualCost(3, ms(10))
	defer func() {
		if recover() == nil {
			t.Error("out-of-order query must panic")
		}
	}()
	m.ActualCost(1, ms(10))
}
