// Package aperiodic implements the paper's §7 outlook — "studying the
// faults detection and tolerance in the case of aperiodic tasks" —
// with the classical fixed-priority vehicle for aperiodic load: a
// polling server. The server is a periodic task (period Ts, capacity
// Cs) that admission control treats exactly like any other task, so
// the paper's detectors and allowances apply unchanged; aperiodic
// requests are served FIFO from the server's budget, and a burst of
// arrivals can never endanger the periodic tasks because the per-job
// demand is capped at the declared capacity.
package aperiodic

import (
	"fmt"
	"sort"

	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/taskset"
	"repro/internal/trace"
	"repro/internal/vtime"
)

// Request is one aperiodic arrival.
type Request struct {
	// ID names the request in results.
	ID string
	// Arrival is the absolute arrival instant.
	Arrival vtime.Time
	// Cost is the service demand.
	Cost vtime.Duration
	// Deadline is the (soft) relative deadline used for reporting;
	// zero means none.
	Deadline vtime.Duration
}

// PollingServer models the server task and its request queue.
type PollingServer struct {
	// Task is the server's periodic parameters: Cost is the capacity
	// Cs, Period the polling period Ts. Admission control sees
	// exactly this task.
	Task taskset.Task
	// Requests is the arrival schedule, sorted by Analyze if needed.
	Requests []Request
}

// Validate checks the server parameters and arrival schedule.
func (ps *PollingServer) Validate() error {
	if err := ps.Task.Validate(); err != nil {
		return err
	}
	for i, r := range ps.Requests {
		if r.Cost <= 0 {
			return fmt.Errorf("aperiodic: request %d (%s) has non-positive cost", i, r.ID)
		}
		if r.Arrival < 0 {
			return fmt.Errorf("aperiodic: request %d (%s) has negative arrival", i, r.ID)
		}
	}
	return nil
}

// Model returns the fault.Model that drives the server's per-job
// demand: at each release the server polls its queue and takes
// min(capacity, backlog). The model is stateful and assumes releases
// are queried in order, which the engine guarantees (one release
// event per job, ascending). A zero-backlog poll yields the minimum
// representable demand (the engine requires positive costs; the
// polling itself is not free).
func (ps *PollingServer) Model() fault.Model {
	arr := append([]Request(nil), ps.Requests...)
	sort.SliceStable(arr, func(i, j int) bool { return arr[i].Arrival < arr[j].Arrival })
	return &pollModel{server: ps.Task, arrivals: arr}
}

type pollModel struct {
	server   taskset.Task
	arrivals []Request

	next    int            // first arrival not yet enqueued
	backlog vtime.Duration // queued but unserved work
	lastQ   int64
}

// ActualCost computes the server's demand for job q.
func (m *pollModel) ActualCost(q int64, nominal vtime.Duration) vtime.Duration {
	if q < m.lastQ {
		// Re-query of an old job (defensive): demands are a function
		// of history, so recomputation is not supported.
		panic("aperiodic: polling model queried out of order")
	}
	m.lastQ = q
	release := vtime.Time(m.server.Offset) + vtime.Time(vtime.Duration(q)*m.server.Period)
	for m.next < len(m.arrivals) && m.arrivals[m.next].Arrival <= release {
		m.backlog += m.arrivals[m.next].Cost
		m.next++
	}
	demand := m.backlog
	if demand > nominal {
		demand = nominal // capacity cap: bursts cannot exceed Cs
	}
	if demand <= 0 {
		demand = vtime.Microsecond // the poll itself
	} else {
		m.backlog -= demand
	}
	return demand
}

// Served is the outcome of one request.
type Served struct {
	Request
	// Completion is when its last unit of service finished
	// (zero Time if unserved within the horizon).
	Completion vtime.Time
	// Response = Completion − Arrival.
	Response vtime.Duration
	// Done reports full service.
	Done bool
}

// MissedSoftDeadline reports whether a served request exceeded its
// (soft) deadline.
func (s Served) MissedSoftDeadline() bool {
	return s.Done && s.Deadline > 0 && s.Response > s.Deadline
}

// Analyze replays the server's execution from the trace and
// attributes service to requests FIFO, yielding per-request response
// times. It reconstructs the exact per-job allocation the polling
// model made (min(capacity, backlog at release)), so the 1 µs
// demands of empty polls are never misattributed to a request that
// arrived after the poll's queue snapshot.
func (ps *PollingServer) Analyze(log *trace.Log) []Served {
	reqs := append([]Request(nil), ps.Requests...)
	sort.SliceStable(reqs, func(i, j int) bool { return reqs[i].Arrival < reqs[j].Arrival })
	out := make([]Served, len(reqs))
	for i, r := range reqs {
		out[i] = Served{Request: r}
	}
	// Per-job execution bursts, keyed by job index.
	type burst struct{ from, to vtime.Time }
	bursts := map[int64][]burst{}
	var jobs []int64
	var open vtime.Time
	openJob := int64(-1)
	running := false
	for _, e := range log.TaskEvents(ps.Task.Name) {
		switch e.Kind {
		case trace.JobRelease:
			jobs = append(jobs, e.Job)
		case trace.JobBegin, trace.JobResume, trace.JobMigrate:
			open, openJob, running = e.At, e.Job, true
		case trace.JobPreempt, trace.JobEnd, trace.JobStopped:
			if running && e.At > open {
				bursts[openJob] = append(bursts[openJob], burst{open, e.At})
			}
			running = false
		}
	}
	// Replay the allocation and pay requests FIFO from each job's
	// allocated demand, at the job's actual burst times.
	next, i := 0, 0
	var backlog vtime.Duration
	for _, q := range jobs {
		release := vtime.Time(ps.Task.Offset) + vtime.Time(vtime.Duration(q)*ps.Task.Period)
		for next < len(reqs) && reqs[next].Arrival <= release {
			backlog += reqs[next].Cost
			next++
		}
		allocated := backlog
		if allocated > ps.Task.Cost {
			allocated = ps.Task.Cost
		}
		if allocated <= 0 {
			continue // empty poll: its µs demand serves nobody
		}
		backlog -= allocated
		for _, b := range bursts[q] {
			t := b.from
			for i < len(out) && t < b.to && allocated > 0 {
				r := &out[i]
				need := r.Cost - r.Response // Response doubles as paid-so-far
				pay := vtime.MinDur(vtime.MinDur(need, b.to.Sub(t)), allocated)
				r.Response += pay
				allocated -= pay
				t = t.Add(pay)
				if r.Response >= r.Cost {
					r.Completion = t
					r.Done = true
					r.Response = r.Completion.Sub(r.Arrival)
					i++
				}
			}
		}
	}
	// Unfinished requests keep Done=false; normalize partial pay.
	for j := i; j < len(out); j++ {
		out[j].Response = 0
	}
	return out
}

// Attach wires the server into an engine configuration: it appends
// the server task to the set and registers the polling model in the
// plan. Call before engine.New.
func (ps *PollingServer) Attach(set *taskset.Set, plan fault.Plan) (*taskset.Set, fault.Plan, error) {
	if err := ps.Validate(); err != nil {
		return nil, nil, err
	}
	out := set.Clone()
	out.Tasks = append(out.Tasks, ps.Task)
	if err := out.Validate(); err != nil {
		return nil, nil, err
	}
	if plan == nil {
		plan = fault.Plan{}
	} else {
		np := fault.Plan{}
		for k, v := range plan {
			np[k] = v
		}
		plan = np
	}
	plan[ps.Task.Name] = ps.Model()
	return out, plan, nil
}

// Run is a convenience: simulate the set plus server to the horizon
// and return the engine plus the served requests.
func (ps *PollingServer) Run(set *taskset.Set, plan fault.Plan, horizon vtime.Duration) (*engine.Engine, []Served, error) {
	full, fullPlan, err := ps.Attach(set, plan)
	if err != nil {
		return nil, nil, err
	}
	e, err := engine.New(engine.Config{Tasks: full, Faults: fullPlan, End: vtime.Time(horizon)})
	if err != nil {
		return nil, nil, err
	}
	log := e.Run()
	return e, ps.Analyze(log), nil
}
