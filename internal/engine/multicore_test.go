package engine

import (
	"bytes"
	"testing"

	"repro/internal/taskset"
	"repro/internal/trace"
)

// threeForTwoCores: a high-priority short task plus two long tasks,
// sized so global dispatch on two cores preempts the low task on core
// 0 and later resumes it on core 1 — the minimal migration witness.
func threeForTwoCores() *taskset.Set {
	return taskset.MustNew(
		taskset.Task{Name: "hi", Priority: 3, Period: ms(50), Deadline: ms(50), Cost: ms(20)},
		taskset.Task{Name: "mid", Priority: 2, Period: ms(200), Deadline: ms(200), Cost: ms(60)},
		taskset.Task{Name: "lo", Priority: 1, Period: ms(200), Deadline: ms(200), Cost: ms(60)},
	)
}

func kinds(log *trace.Log, k trace.Kind) []trace.Event {
	var out []trace.Event
	for _, e := range log.Events() {
		if e.Kind == k {
			out = append(out, e)
		}
	}
	return out
}

func TestGlobalDispatchRunsTwoJobsInParallel(t *testing.T) {
	e, log := run(t, Config{Tasks: threeForTwoCores(), End: at(100), CPUs: 2})
	// t=0: hi begins on core 0, mid on core 1 — in policy-rank order.
	begins := kinds(log, trace.JobBegin)
	if len(begins) < 2 {
		t.Fatalf("want ≥2 begins, got %v", begins)
	}
	if begins[0].Task != "hi" || begins[0].Arg != 0 {
		t.Errorf("first begin = %+v, want hi on core 0", begins[0])
	}
	if begins[1].Task != "mid" || begins[1].Arg != 1 {
		t.Errorf("second begin = %+v, want mid on core 1", begins[1])
	}
	// With 140 ms of work on two cores nothing misses in 100 ms.
	for _, name := range e.TaskNames() {
		for _, j := range e.Jobs(name) {
			if j.Done() && j.Missed() {
				t.Errorf("%s#%d missed on a 2-core platform", name, j.Q)
			}
		}
	}
}

func TestGlobalDispatchMigratesPreemptedJob(t *testing.T) {
	// lo begins on core 0 at t=20 (after hi#0), is preempted there by
	// hi#1 at t=50, and when mid completes core 1 at t=60 the global
	// dispatcher resumes lo on core 1: a migration.
	_, log := run(t, Config{Tasks: threeForTwoCores(), End: at(100), CPUs: 2})
	migs := kinds(log, trace.JobMigrate)
	if len(migs) != 1 {
		t.Fatalf("want exactly one migration, got %v", migs)
	}
	m := migs[0]
	if m.Task != "lo" || m.At != at(60) || m.Arg != 1 {
		t.Errorf("migration = %+v, want lo at t=60ms onto core 1", m)
	}
	// The preemption it resumes from names core 0.
	for _, p := range kinds(log, trace.JobPreempt) {
		if p.Task == "lo" && p.Arg != 0 {
			t.Errorf("lo preempted on core %d, want 0", p.Arg)
		}
	}
}

func TestPartitionedDispatchPinsTasks(t *testing.T) {
	// hi+lo pinned to core 0, mid to core 1: lo waits behind hi on
	// core 0 even while core 1 idles after mid completes, and nothing
	// ever migrates.
	e, log := run(t, Config{
		Tasks:     threeForTwoCores(),
		End:       at(200),
		CPUs:      2,
		Partition: []int{0, 1, 0},
	})
	if n := kinds(log, trace.JobMigrate); len(n) != 0 {
		t.Errorf("partitioned run migrated: %v", n)
	}
	core := map[string]int64{"hi": 0, "mid": 1, "lo": 0}
	for _, ev := range log.Events() {
		switch ev.Kind {
		case trace.JobBegin, trace.JobResume, trace.JobPreempt:
			if ev.Arg != core[ev.Task] {
				t.Errorf("%s dispatched on core %d, want %d: %+v", ev.Task, ev.Arg, core[ev.Task], ev)
			}
		}
	}
	// lo still completes (300 ms of pinned work fits a 200 ms horizon
	// on core 0: hi uses 20/50ms, leaving 30 ms/period for lo).
	jobs := e.Jobs("lo")
	if len(jobs) == 0 || !jobs[0].Done() || jobs[0].Missed() {
		t.Errorf("lo#0 did not complete cleanly on its pinned core: %+v", jobs)
	}
}

func TestSingleCoreExplicitCPUsIsByteIdentical(t *testing.T) {
	// CPUs=1 must produce the historical single-slot trace exactly —
	// core 0 encodes as an absent arg.
	_, legacy := run(t, Config{Tasks: table2WithOffset(), End: at(3000), ContextSwitch: ms(1)})
	_, explicit := run(t, Config{Tasks: table2WithOffset(), End: at(3000), ContextSwitch: ms(1), CPUs: 1})
	if legacy.EncodeString() != explicit.EncodeString() {
		t.Fatal("CPUs=1 trace differs from the implicit uniprocessor trace")
	}
}

func TestPartitionValidation(t *testing.T) {
	set := threeForTwoCores()
	if _, err := New(Config{Tasks: set, End: at(100), CPUs: 2, Partition: []int{0, 1}}); err == nil {
		t.Error("short partition accepted")
	}
	if _, err := New(Config{Tasks: set, End: at(100), CPUs: 2, Partition: []int{0, 1, 2}}); err == nil {
		t.Error("out-of-range core accepted")
	}
	if _, err := New(Config{Tasks: set, End: at(100), CPUs: -1}); err == nil {
		t.Error("negative CPUs accepted")
	}
}

func TestAddTaskRejectedUnderPartitionedDispatch(t *testing.T) {
	e, err := New(Config{Tasks: threeForTwoCores(), End: at(100), CPUs: 2, Partition: []int{0, 1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	add := taskset.Task{Name: "late", Priority: 9, Period: ms(100), Deadline: ms(100), Cost: ms(10)}
	if err := e.AddTask(add, nil, 0); err == nil {
		t.Error("AddTask accepted under partitioned dispatch")
	}
	// Global M-core dispatch admits dynamically.
	g, err := New(Config{Tasks: threeForTwoCores(), End: at(100), CPUs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.AddTask(add, nil, 0); err != nil {
		t.Errorf("AddTask under global dispatch: %v", err)
	}
}

func TestMulticoreCheckpointSplitEqualsUnsplit(t *testing.T) {
	for _, tc := range []struct {
		name      string
		partition []int
	}{
		{"global", nil},
		{"partitioned", []int{0, 1, 0}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := Config{Tasks: threeForTwoCores(), End: at(400), CPUs: 2, Partition: tc.partition, Collect: Stream}
			var whole, stitched bytes.Buffer
			eng, err := New(withSink(cfg, &whole))
			if err != nil {
				t.Fatal(err)
			}
			eng.Run()

			first, err := New(withSink(cfg, &stitched))
			if err != nil {
				t.Fatal(err)
			}
			if err := first.RunUntil(at(130)); err != nil {
				t.Fatal(err)
			}
			cp, err := first.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			second, err := New(withSink(cfg, &stitched))
			if err != nil {
				t.Fatal(err)
			}
			if err := second.Restore(cp); err != nil {
				t.Fatal(err)
			}
			second.Run()
			if whole.String() != stitched.String() {
				t.Error("split 2-core run diverges from the unsplit run")
			}
		})
	}
}

// withSink clones cfg with a flushed-per-event writer sink attached.
func withSink(cfg Config, b *bytes.Buffer) Config {
	cfg.Sink = flushingSink{trace.NewWriterSink(b)}
	return cfg
}

// flushingSink flushes after every event so buffer comparison never
// races the WriterSink's internal buffering.
type flushingSink struct{ w *trace.WriterSink }

func (f flushingSink) Append(e trace.Event) {
	f.w.Append(e)
	_ = f.w.Flush()
}
