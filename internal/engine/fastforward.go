package engine

import (
	"sort"

	"repro/internal/fault"
	"repro/internal/vtime"
)

// Steady-state fast-forward. A periodic task system with no faults, no
// stop jitter and no external timers is a deterministic finite-state
// machine whose inputs repeat with the hyperperiod H = lcm(periods):
// once the scheduling-relevant state at one hyperperiod boundary
// matches the state one hyperperiod earlier, every subsequent cycle
// replays the same trace shifted by H. The engine exploits this in
// Run: at each boundary it fingerprints the clock-relative state, and
// when two consecutive boundaries match it jumps the remaining K whole
// cycles analytically — shifting the event heap and pending jobs by
// K·H, scaling the dispatch-switch counter, and handing the metrics
// extrapolation to Config.Observer — then simulates only the tail.
// Long horizons thus cost O(transient + one cycle + tail) instead of
// O(horizon).
//
// The fingerprint is a 64-bit FNV-1a hash over canonical state:
// event-heap entries in (at, class, seq) order with instants taken
// relative to the boundary and deadline events resolved to
// (task, Q−nextQ); every pending job's relative fields; the running
// task per core; the stop-jitter RNG; and any fault-model state. Heap
// and ready-queue array layout, absolute sequence numbers and slot
// indices are excluded — dispatch depends only on the ordered multiset,
// which the hash covers. A hash collision is astronomically unlikely
// and at worst extrapolates a cycle that was about to repeat anyway in
// every field the fingerprint covers.
//
// Boundaries with an external timer in flight (or a callback event in
// the heap) are skipped and the previous fingerprint discarded — a
// one-shot timer merely delays detection, a re-arming timer suppresses
// it permanently. Dynamic admission (AddTask/RemoveTask) abandons
// fast-forward for the rest of the run: it changes the task system the
// hyperperiod was computed from.

// CycleObserver receives hyperperiod-boundary callbacks from a
// fast-forwarding engine so streaming metrics stay exact across the
// analytic jump. metrics.Accumulator implements it.
type CycleObserver interface {
	// CycleMark fires at each fingerprinted hyperperiod boundary,
	// before any boundary-instant event is processed.
	CycleMark()
	// ExtrapolateCycles fires once when the engine jumps k whole
	// cycles of length h; jobsPerCycle gives each task's releases per
	// cycle (h / period), for re-keying live jobs past the jump.
	ExtrapolateCycles(k int64, h vtime.Duration, jobsPerCycle map[string]int64)
}

// ffState is the fast-forward bookkeeping of one run.
type ffState struct {
	h            vtime.Duration // hyperperiod
	prev         uint64         // fingerprint at the previous boundary
	havePrev     bool
	prevSwitches int64 // dispatch-switch counter at the previous boundary
	abandoned    bool  // task system changed mid-run
	skipped      int64 // cycles jumped (0 until detection)
}

// SkippedCycles returns the number of whole hyperperiod cycles the run
// fast-forwarded over analytically (zero when fast-forward is off,
// was abandoned, or never detected a steady state).
func (e *Engine) SkippedCycles() int64 {
	if e.ff != nil {
		return e.ff.skipped
	}
	return 0
}

// Hyperperiod returns the task system's hyperperiod when fast-forward
// is armed, zero otherwise.
func (e *Engine) Hyperperiod() vtime.Duration {
	if e.ff != nil {
		return e.ff.h
	}
	return 0
}

// runFastForward drives the run boundary to boundary until it either
// detects a repeating cycle (jumping the remaining whole cycles) or
// runs out of boundaries; the caller's ordinary event loop finishes
// the tail either way.
func (e *Engine) runFastForward() {
	f := e.ff
	step := int64(f.h)
	boundary := vtime.Time((int64(e.now)/step + 1) * step)
	for boundary < e.cfg.End {
		// Drain strictly below the boundary, then fingerprint with the
		// boundary-instant events still in the heap (at relative 0):
		// the state "just before processing instant n·H" is what must
		// recur for the cycle proof.
		e.runTo(boundary)
		if f.abandoned {
			return
		}
		fp, ok := e.fingerprint()
		if !ok {
			// External timer in flight: this boundary proves nothing.
			f.havePrev = false
			boundary = boundary.Add(f.h)
			continue
		}
		if f.havePrev && fp == f.prev {
			if k := int64(e.cfg.End.Sub(boundary)) / step; k > 0 {
				e.jumpCycles(k, f.h, e.switches-f.prevSwitches)
				f.skipped = k
			}
			return
		}
		f.prev, f.havePrev = fp, true
		f.prevSwitches = e.switches
		if e.observer != nil {
			e.observer.CycleMark()
		}
		boundary = boundary.Add(f.h)
	}
}

// runTo processes every event strictly before limit and advances the
// clock to it (events at limit itself stay queued).
func (e *Engine) runTo(limit vtime.Time) {
	for len(e.heap) > 0 && e.heap[0].at < limit {
		ev, _ := e.pop()
		e.advance(ev.at)
		e.step(ev)
	}
	e.advance(limit)
}

// jumpCycles advances the engine k whole cycles of length h without
// simulating them: the event heap and every pending job shift
// uniformly by k·h (preserving heap order and queue order), release
// counters and job indices advance by k releases-per-cycle, the
// dispatch-switch counter gains k times the measured per-cycle
// switches, and the observer extrapolates its metrics. The RNG and
// fault models are untouched — nothing eligible for fast-forward
// draws from them.
func (e *Engine) jumpCycles(k int64, h vtime.Duration, cycleSwitches int64) {
	shift := vtime.Duration(k) * h
	for i := range e.heap {
		e.heap[i].at = e.heap[i].at.Add(shift)
	}
	jpc := make(map[string]int64, len(e.tasks))
	for _, ts := range e.tasks {
		n := int64(h) / int64(ts.task.Period)
		jpc[ts.task.Name] = n
		ts.nextQ += k * n
		for _, j := range ts.pending[ts.phead:] {
			j.Q += k * n
			j.Release = j.Release.Add(shift)
			j.AbsDeadline = j.AbsDeadline.Add(shift)
		}
	}
	e.now = e.now.Add(shift)
	e.switches += k * cycleSwitches
	if e.observer != nil {
		e.observer.ExtrapolateCycles(k, h, jpc)
	}
}

// fnv64 is an incremental FNV-1a hash over the canonical state walk.
type fnv64 uint64

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func (f *fnv64) u64(v uint64) {
	h := uint64(*f)
	for i := 0; i < 8; i++ {
		h = (h ^ (v & 0xff)) * fnvPrime64
		v >>= 8
	}
	*f = fnv64(h)
}

func (f *fnv64) i64(v int64) { f.u64(uint64(v)) }

func (f *fnv64) bit(v bool) {
	if v {
		f.u64(1)
	} else {
		f.u64(0)
	}
}

// fingerprint hashes the scheduling-relevant state relative to the
// current instant. It reports ok=false when an external timer is in
// flight — callback closures cannot be compared, so such boundaries
// prove nothing. The walk mirrors Snapshot's field coverage, hashed
// instead of encoded.
func (e *Engine) fingerprint() (uint64, bool) {
	if e.liveTimers() > 0 {
		return 0, false
	}
	f := fnv64(fnvOffset64)

	// Event heap, canonically ordered. The array layout is heap-shape
	// dependent; the pop order (at, class, seq) is the state.
	ord := make([]int, len(e.heap))
	for i := range ord {
		ord[i] = i
	}
	sort.Slice(ord, func(a, b int) bool { return e.less(ord[a], ord[b]) })
	f.i64(int64(len(e.heap)))
	for _, i := range ord {
		ev := &e.heap[i]
		if ev.kind == evCallback {
			return 0, false
		}
		f.i64(int64(ev.at.Sub(e.now)))
		f.u64(uint64(ev.class))
		f.u64(uint64(ev.kind))
		switch ev.kind {
		case evDeadline:
			// Slot numbers are allocation history; the identity is
			// (task, cycle-relative job index).
			j := e.jobSlots[ev.arg]
			f.i64(int64(j.task.id))
			f.i64(j.Q - j.task.nextQ)
		default:
			// evRelease: task id. evCompletion: core. Both stable.
			f.i64(int64(ev.arg))
		}
	}

	// Tasks in id order: pending jobs with clock-relative instants and
	// release-counter-relative indices, plus the fault-model state (a
	// formality — fast-forward refuses fault plans).
	for _, ts := range e.tasks {
		f.bit(ts.removed)
		f.i64(int64(ts.live()))
		for _, j := range ts.pending[ts.phead:] {
			f.i64(j.Q - ts.nextQ)
			f.i64(int64(j.Release.Sub(e.now)))
			f.i64(int64(j.AbsDeadline.Sub(e.now)))
			f.i64(int64(j.Actual))
			f.i64(int64(j.Executed))
			f.i64(int64(j.overhead))
			f.i64(int64(j.workLimit))
			f.i64(int64(j.cpu))
			f.bit(j.limited)
			f.bit(j.begun)
			f.bit(j.missed)
		}
		for _, w := range fault.ModelState(ts.model) {
			f.u64(w)
		}
	}

	// Per-core running task (the job itself is its task's head, already
	// hashed) and the stop-jitter RNG position.
	for _, j := range e.running {
		if j == nil {
			f.i64(-1)
		} else {
			f.i64(int64(j.task.id))
		}
	}
	f.u64(e.rng.State())
	return uint64(f), true
}
