package engine

import (
	"fmt"
	"sort"
	"sync"
)

// The policy registry maps scheduling-policy names to factories, so
// declarative scenarios (repro/sim) and the command-line tools can
// select a scheduler without compiling code. Packages providing
// policies register themselves at init time; the engine registers its
// own fixed-priority policy here.
var (
	registryMu sync.RWMutex
	registry   = map[string]func() Policy{}
)

// RegisterPolicy makes a policy available by name. It panics on a
// duplicate or empty name — registration happens at init time, where
// a collision is a programming error.
func RegisterPolicy(name string, factory func() Policy) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if name == "" {
		panic("engine: RegisterPolicy with empty name")
	}
	if factory == nil {
		panic(fmt.Sprintf("engine: RegisterPolicy %q with nil factory", name))
	}
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("engine: policy %q registered twice", name))
	}
	registry[name] = factory
}

// NewPolicy instantiates the named policy. The empty name yields the
// default fixed-priority policy, matching Config.Policy's nil default.
func NewPolicy(name string) (Policy, error) {
	if name == "" {
		return FixedPriority{}, nil
	}
	registryMu.RLock()
	factory, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("engine: unknown policy %q (registered: %v)", name, PolicyNames())
	}
	return factory(), nil
}

// PolicyNames returns every registered policy name, sorted.
func PolicyNames() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func init() {
	RegisterPolicy(FixedPriority{}.Name(), func() Policy { return FixedPriority{} })
}
