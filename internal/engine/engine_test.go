package engine

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/fault"
	"repro/internal/taskset"
	"repro/internal/trace"
	"repro/internal/vtime"
)

// wcrtOf bridges to the analytic WCRT for cross-validation tests.
func wcrtOf(s *taskset.Set, i int) (vtime.Duration, error) {
	return analysis.WCResponseTime(s, i, 0)
}

func ms(v int64) vtime.Duration { return vtime.Millis(v) }
func at(v int64) vtime.Time     { return vtime.AtMillis(v) }

func table2WithOffset() *taskset.Set {
	return taskset.MustNew(
		taskset.Task{Name: "tau1", Priority: 20, Period: ms(200), Deadline: ms(70), Cost: ms(29)},
		taskset.Task{Name: "tau2", Priority: 18, Period: ms(250), Deadline: ms(120), Cost: ms(29)},
		taskset.Task{Name: "tau3", Priority: 16, Period: ms(1500), Deadline: ms(120), Cost: ms(29), Offset: ms(1000)},
	)
}

func run(t *testing.T, cfg Config) (*Engine, *trace.Log) {
	t.Helper()
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e, e.Run()
}

func TestFaultFreeTable2MeetsAllDeadlines(t *testing.T) {
	e, _ := run(t, Config{Tasks: table2WithOffset(), End: at(3000)})
	for _, name := range e.TaskNames() {
		for _, j := range e.Jobs(name) {
			if !j.Done() {
				continue // cut off by the horizon
			}
			if j.Missed() {
				t.Errorf("%s#%d missed its deadline in a fault-free feasible system (end %v)", name, j.Q, j.FinishedAt)
			}
		}
	}
}

// TestCriticalInstantResponseTimes: at the synchronous release
// (t = 1000 for all three tasks), completions chain exactly as the
// response-time analysis predicts: 29, 58, 87 ms.
func TestCriticalInstantResponseTimes(t *testing.T) {
	e, _ := run(t, Config{Tasks: table2WithOffset(), End: at(1500)})
	wantEnd := map[string]vtime.Time{"tau1": at(1029), "tau2": at(1058), "tau3": at(1087)}
	wantQ := map[string]int64{"tau1": 5, "tau2": 4, "tau3": 0}
	for name, end := range wantEnd {
		j, ok := e.JobAt(name, wantQ[name])
		if !ok || !j.Done() {
			t.Fatalf("%s#%d did not finish", name, wantQ[name])
		}
		if j.FinishedAt != end {
			t.Errorf("%s#%d finished at %v, want %v", name, wantQ[name], j.FinishedAt, end)
		}
	}
}

// TestFigure3Execution: the 40 ms overrun on τ1's job 5 without any
// detection: τ1 and τ2 meet their deadlines, τ3 misses (paper §6.1).
func TestFigure3Execution(t *testing.T) {
	e, log := run(t, Config{
		Tasks:  table2WithOffset(),
		Faults: fault.Plan{"tau1": fault.OverrunAt{Job: 5, Extra: ms(40)}},
		End:    at(1500),
	})
	j1, _ := e.JobAt("tau1", 5)
	j2, _ := e.JobAt("tau2", 4)
	j3, _ := e.JobAt("tau3", 0)
	if j1.FinishedAt != at(1069) || j1.Missed() {
		t.Errorf("tau1#5: finished %v missed=%v, want 1069ms met", j1.FinishedAt, j1.Missed())
	}
	if j2.FinishedAt != at(1098) || j2.Missed() {
		t.Errorf("tau2#4: finished %v missed=%v, want 1098ms met", j2.FinishedAt, j2.Missed())
	}
	if j3.FinishedAt != at(1127) || !j3.Missed() {
		t.Errorf("tau3#0: finished %v missed=%v, want 1127ms MISSED", j3.FinishedAt, j3.Missed())
	}
	// The miss event is recorded at the deadline instant, 1120 ms.
	misses := log.Filter(func(ev trace.Event) bool { return ev.Kind == trace.DeadlineMiss })
	if len(misses) != 1 || misses[0].At != at(1120) || misses[0].Task != "tau3" {
		t.Errorf("miss events = %+v, want single tau3 miss at 1120ms", misses)
	}
}

func TestPreemptionByHigherPriority(t *testing.T) {
	// low releases at 0 and runs 10ms of work; high releases at 3ms
	// and preempts immediately; low resumes at 8ms and ends at 15ms.
	s := taskset.MustNew(
		taskset.Task{Name: "high", Priority: 2, Period: ms(100), Deadline: ms(100), Cost: ms(5), Offset: ms(3)},
		taskset.Task{Name: "low", Priority: 1, Period: ms(100), Deadline: ms(100), Cost: ms(10)},
	)
	e, log := run(t, Config{Tasks: s, End: at(50)})
	jl, _ := e.JobAt("low", 0)
	jh, _ := e.JobAt("high", 0)
	if jh.FinishedAt != at(8) {
		t.Errorf("high finished %v, want 8ms", jh.FinishedAt)
	}
	if jl.FinishedAt != at(15) {
		t.Errorf("low finished %v, want 15ms", jl.FinishedAt)
	}
	var kinds []trace.Kind
	for _, ev := range log.TaskEvents("low") {
		kinds = append(kinds, ev.Kind)
	}
	want := []trace.Kind{trace.JobRelease, trace.JobBegin, trace.JobPreempt, trace.JobResume, trace.JobEnd}
	if len(kinds) < len(want) {
		t.Fatalf("low events: %v", kinds)
	}
	for i, k := range want {
		if kinds[i] != k {
			t.Fatalf("low event %d = %v, want %v (all: %v)", i, kinds[i], k, kinds)
		}
	}
}

func TestBackToBackJobsQueue(t *testing.T) {
	// A task whose response exceeds its period queues jobs in FIFO
	// order (the RTSJ thread is sequential) — Table 1's τ2.
	s := taskset.MustNew(
		taskset.Task{Name: "tau1", Priority: 20, Period: ms(6), Deadline: ms(6), Cost: ms(3)},
		taskset.Task{Name: "tau2", Priority: 15, Period: ms(4), Deadline: ms(6), Cost: ms(2)},
	)
	e, _ := run(t, Config{Tasks: s, End: at(24)})
	// Expected completions of tau2 jobs (releases 0,4,8,12,...):
	// q0: [3,5] → 5; q1: [5,6]+[9,10] → 10; q2: [10,12] → 12;
	// q3 (rel 12): [15,17] → 17; q4 (rel 16): [17,18]+[21,22] → 22.
	want := []vtime.Time{at(5), at(10), at(12), at(17), at(22)}
	jobs := e.Jobs("tau2")
	if len(jobs) < len(want) {
		t.Fatalf("only %d tau2 jobs", len(jobs))
	}
	for i, w := range want {
		if !jobs[i].Done() || jobs[i].FinishedAt != w {
			t.Errorf("tau2#%d finished %v (done=%v), want %v", i, jobs[i].FinishedAt, jobs[i].Done(), w)
		}
	}
	// Per-job responses 5,6,4,5,6 — max 6 = the analysis WCRT.
	wantResp := []vtime.Duration{ms(5), ms(6), ms(4), ms(5), ms(6)}
	for i, w := range wantResp {
		if jobs[i].ResponseTime() != w {
			t.Errorf("tau2#%d response %v, want %v", i, jobs[i].ResponseTime(), w)
		}
	}
}

func TestStopJobPollSemantics(t *testing.T) {
	s := taskset.MustNew(
		taskset.Task{Name: "a", Priority: 1, Period: ms(100), Deadline: ms(100), Cost: ms(50)},
	)
	e, err := New(Config{Tasks: s, End: at(100), StopPoll: ms(4)})
	if err != nil {
		t.Fatal(err)
	}
	// Request a stop at t=10: the job has executed 10ms, next 4ms
	// poll boundary is 12ms of executed work → stops at t=12.
	e.Schedule(at(10), func(now vtime.Time) { e.StopJob("a", 0, now) })
	e.Run()
	j, _ := e.JobAt("a", 0)
	if !j.Stopped() || j.FinishedAt != at(12) {
		t.Errorf("job stopped=%v at %v, want stopped at 12ms", j.Stopped(), j.FinishedAt)
	}
	if !j.Missed() {
		t.Error("a stopped incomplete job counts as failed")
	}
}

func TestStopExactlyAtBoundaryIsImmediate(t *testing.T) {
	s := taskset.MustNew(
		taskset.Task{Name: "a", Priority: 1, Period: ms(100), Deadline: ms(100), Cost: ms(50)},
	)
	e, _ := New(Config{Tasks: s, End: at(100), StopPoll: ms(5)})
	e.Schedule(at(10), func(now vtime.Time) { e.StopJob("a", 0, now) })
	e.Run()
	j, _ := e.JobAt("a", 0)
	if j.FinishedAt != at(10) {
		t.Errorf("stop at a poll boundary must be immediate, got %v", j.FinishedAt)
	}
}

func TestStopJitterAddsBoundedCost(t *testing.T) {
	s := taskset.MustNew(
		taskset.Task{Name: "a", Priority: 1, Period: ms(100), Deadline: ms(100), Cost: ms(50)},
	)
	e, _ := New(Config{Tasks: s, End: at(100), StopPoll: ms(1), StopJitterMax: ms(3), Seed: 7})
	e.Schedule(at(10), func(now vtime.Time) { e.StopJob("a", 0, now) })
	e.Run()
	j, _ := e.JobAt("a", 0)
	if j.FinishedAt < at(10) || j.FinishedAt > at(13) {
		t.Errorf("jittered stop at %v, want within [10ms,13ms]", j.FinishedAt)
	}
}

func TestStopFinishedJobIsNoOp(t *testing.T) {
	s := taskset.MustNew(
		taskset.Task{Name: "a", Priority: 1, Period: ms(100), Deadline: ms(100), Cost: ms(5)},
	)
	e, _ := New(Config{Tasks: s, End: at(100)})
	e.Schedule(at(50), func(now vtime.Time) { e.StopJob("a", 0, now) })
	log := e.Run()
	j, _ := e.JobAt("a", 0)
	if j.Stopped() || j.Missed() || j.FinishedAt != at(5) {
		t.Errorf("stop after completion must be a no-op: %+v", j)
	}
	if n := len(log.Filter(func(ev trace.Event) bool { return ev.Kind == trace.StopRequest })); n != 0 {
		t.Errorf("no StopRequest should be recorded for a done job, got %d", n)
	}
}

func TestStopPreemptedJob(t *testing.T) {
	// The low job is preempted when the stop arrives; it terminates
	// upon its next dispatch (executed time already past boundary?
	// no: executed 5ms, limit ceil(5/2)=6ms → runs 1ms more).
	s := taskset.MustNew(
		taskset.Task{Name: "high", Priority: 2, Period: ms(100), Deadline: ms(100), Cost: ms(10), Offset: ms(5)},
		taskset.Task{Name: "low", Priority: 1, Period: ms(100), Deadline: ms(100), Cost: ms(30)},
	)
	e, _ := New(Config{Tasks: s, End: at(100), StopPoll: ms(2)})
	e.Schedule(at(8), func(now vtime.Time) { e.StopJob("low", 0, now) }) // low preempted since t=5
	e.Run()
	j, _ := e.JobAt("low", 0)
	// low executed [0,5] = 5ms; limit = 6ms; resumes at 15, stops at 16.
	if !j.Stopped() || j.FinishedAt != at(16) {
		t.Errorf("preempted stop: stopped=%v at %v, want 16ms", j.Stopped(), j.FinishedAt)
	}
}

func TestDeterministicTraces(t *testing.T) {
	cfg := Config{
		Tasks:  table2WithOffset(),
		Faults: fault.Plan{"tau1": fault.OverrunAt{Job: 5, Extra: ms(40)}},
		End:    at(3000),
		Seed:   42,
	}
	_, log1 := run(t, cfg)
	_, log2 := run(t, cfg)
	if log1.EncodeString() != log2.EncodeString() {
		t.Fatal("identical configurations must produce byte-identical traces")
	}
}

func TestContextSwitchOverheadCharged(t *testing.T) {
	s := taskset.MustNew(
		taskset.Task{Name: "a", Priority: 1, Period: ms(100), Deadline: ms(100), Cost: ms(10)},
	)
	e, _ := run(t, Config{Tasks: s, End: at(50), ContextSwitch: ms(1)})
	j, _ := e.JobAt("a", 0)
	if j.FinishedAt != at(11) {
		t.Errorf("with 1ms dispatch overhead the job ends at %v, want 11ms", j.FinishedAt)
	}
}

func TestSwitchesCounted(t *testing.T) {
	e, _ := run(t, Config{Tasks: table2WithOffset(), End: at(3000)})
	if e.Switches() == 0 {
		t.Error("dispatch switches must be counted")
	}
}

func TestDynamicAddAndRemove(t *testing.T) {
	s := taskset.MustNew(
		taskset.Task{Name: "a", Priority: 2, Period: ms(100), Deadline: ms(100), Cost: ms(10)},
	)
	e, _ := New(Config{Tasks: s, End: at(1000)})
	e.Schedule(at(150), func(now vtime.Time) {
		if err := e.AddTask(taskset.Task{Name: "b", Priority: 1, Period: ms(100), Deadline: ms(100), Cost: ms(5), Offset: ms(10)}, nil, now); err != nil {
			t.Errorf("AddTask: %v", err)
		}
	})
	e.Schedule(at(500), func(now vtime.Time) { e.RemoveTask("b", now) })
	log := e.Run()
	jobs := e.Jobs("b")
	// b releases at 160, 260, 360, 460 then is removed before 560.
	if len(jobs) != 4 {
		t.Fatalf("b released %d jobs, want 4", len(jobs))
	}
	if jobs[0].Release != at(160) {
		t.Errorf("b first release %v, want 160ms", jobs[0].Release)
	}
	for _, j := range jobs {
		if !j.Done() || j.Missed() {
			t.Errorf("b#%d should finish cleanly: %+v", j.Q, j)
		}
	}
	added := log.Filter(func(ev trace.Event) bool { return ev.Kind == trace.TaskAdded })
	removed := log.Filter(func(ev trace.Event) bool { return ev.Kind == trace.TaskRemoved })
	if len(added) != 1 || len(removed) != 1 {
		t.Errorf("add/remove events: %d/%d, want 1/1", len(added), len(removed))
	}
}

func TestAddTaskRejectsDuplicatesAndInvalid(t *testing.T) {
	s := taskset.MustNew(
		taskset.Task{Name: "a", Priority: 2, Period: ms(100), Deadline: ms(100), Cost: ms(10)},
	)
	e, _ := New(Config{Tasks: s, End: at(1000)})
	if err := e.AddTask(taskset.Task{Name: "a", Priority: 1, Period: ms(100), Deadline: ms(100), Cost: ms(1)}, nil, 0); err == nil {
		t.Error("duplicate task name must be rejected")
	}
	if err := e.AddTask(taskset.Task{Name: "bad", Priority: 1, Period: 0, Deadline: ms(10), Cost: ms(1)}, nil, 0); err == nil {
		t.Error("invalid task must be rejected")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{End: at(10)}); err == nil {
		t.Error("nil task set must be rejected")
	}
	s := taskset.MustNew(taskset.Task{Name: "a", Priority: 1, Period: ms(10), Deadline: ms(10), Cost: ms(1)})
	if _, err := New(Config{Tasks: s}); err == nil {
		t.Error("zero horizon must be rejected")
	}
}

func TestIdleTimeBetweenBursts(t *testing.T) {
	// Cost 1ms, period 10ms: the processor idles 9ms per period; job
	// k finishes exactly at 10k+1.
	s := taskset.MustNew(taskset.Task{Name: "a", Priority: 1, Period: ms(10), Deadline: ms(10), Cost: ms(1)})
	e, _ := run(t, Config{Tasks: s, End: at(100)})
	for _, j := range e.Jobs("a") {
		if !j.Done() {
			continue
		}
		want := j.Release.Add(ms(1))
		if j.FinishedAt != want {
			t.Errorf("a#%d finished %v, want %v", j.Q, j.FinishedAt, want)
		}
	}
}

func TestFixedPriorityPolicyOrdering(t *testing.T) {
	s := taskset.MustNew(
		taskset.Task{Name: "hi", Priority: 9, Period: ms(10), Deadline: ms(10), Cost: ms(1)},
		taskset.Task{Name: "lo", Priority: 1, Period: ms(10), Deadline: ms(10), Cost: ms(1)},
	)
	e, _ := New(Config{Tasks: s, End: at(10)})
	a := &Job{task: e.byName["hi"], Release: at(5)}
	b := &Job{task: e.byName["lo"], Release: at(0)}
	p := FixedPriority{}
	if !p.Better(a, b) || p.Better(b, a) {
		t.Error("higher priority must win regardless of release order")
	}
	c := &Job{task: e.byName["hi"], Release: at(0)}
	if !p.Better(c, a) {
		t.Error("same priority: earlier release wins")
	}
	if p.Name() == "" || !p.Admit(e, a) {
		t.Error("FixedPriority must have a name and admit everything")
	}
}

func TestJobAccessors(t *testing.T) {
	e, _ := run(t, Config{Tasks: table2WithOffset(), End: at(100)})
	j, ok := e.JobAt("tau1", 0)
	if !ok {
		t.Fatal("tau1#0 missing")
	}
	if j.TaskName() != "tau1" || j.Task().Priority != 20 {
		t.Error("job accessors wrong")
	}
	if j.Remaining() != 0 {
		t.Errorf("finished job remaining = %v", j.Remaining())
	}
	if j.Dropped() {
		t.Error("job was not dropped")
	}
	if _, ok := e.JobAt("nope", 0); ok {
		t.Error("unknown task lookup must fail")
	}
	if _, ok := e.JobAt("tau1", 9999); ok {
		t.Error("unknown job lookup must fail")
	}
}

// shedding policy for testing Admit: drops every job of "shed".
type shedPolicy struct{ FixedPriority }

func (shedPolicy) Name() string { return "shed-test" }
func (shedPolicy) Admit(_ *Engine, j *Job) bool {
	return j.TaskName() != "shed"
}

func TestPolicyAdmitDropsJobs(t *testing.T) {
	s := taskset.MustNew(
		taskset.Task{Name: "keep", Priority: 2, Period: ms(10), Deadline: ms(10), Cost: ms(1)},
		taskset.Task{Name: "shed", Priority: 1, Period: ms(10), Deadline: ms(10), Cost: ms(1)},
	)
	e, _ := run(t, Config{Tasks: s, End: at(50), Policy: shedPolicy{}})
	for _, j := range e.Jobs("shed") {
		if !j.Dropped() || !j.Missed() {
			t.Errorf("shed#%d should be dropped and counted failed", j.Q)
		}
	}
	for _, j := range e.Jobs("keep") {
		if j.Dropped() {
			t.Errorf("keep#%d wrongly dropped", j.Q)
		}
	}
	if e.PolicyName() != "shed-test" {
		t.Errorf("PolicyName = %q", e.PolicyName())
	}
}

// TestConservationOfCPU: in any run, the total executed time across
// jobs never exceeds the horizon (uniprocessor conservation).
func TestConservationOfCPU(t *testing.T) {
	gen := taskset.NewGenerator(11)
	for trial := 0; trial < 25; trial++ {
		s, err := gen.Generate(4, 0.9)
		if err != nil {
			t.Fatal(err)
		}
		horizon := ms(2000)
		e, _ := run(t, Config{Tasks: s, End: vtime.Time(horizon)})
		var total vtime.Duration
		for _, name := range e.TaskNames() {
			for _, j := range e.Jobs(name) {
				total += j.Executed
			}
		}
		if total > horizon {
			t.Fatalf("trial %d: executed %v exceeds horizon %v", trial, total, horizon)
		}
	}
}

// TestSimulationMatchesAnalysis: for random feasible sets released
// synchronously, the simulated maximum response of each task never
// exceeds the analytic WCRT, and the critical-instant job achieves
// exactly the q=0 completion. This cross-validates the Figure 2
// algorithm against the executing engine.
func TestSimulationMatchesAnalysis(t *testing.T) {
	gen := taskset.NewGenerator(5)
	tested := 0
	for trial := 0; trial < 400 && tested < 30; trial++ {
		s, err := gen.Generate(4, 0.75)
		if err != nil {
			t.Fatal(err)
		}
		hyper, err := s.Hyperperiod()
		if err != nil || hyper > ms(60_000) {
			continue
		}
		feasible := true
		wcrts := make([]vtime.Duration, s.Len())
		for i := range s.Tasks {
			w, err := wcrtOf(s, i)
			if err != nil || w > s.Tasks[i].Deadline {
				feasible = false
				break
			}
			wcrts[i] = w
		}
		if !feasible {
			continue
		}
		tested++
		e, _ := run(t, Config{Tasks: s, End: vtime.Time(2 * hyper)})
		for i, task := range s.Tasks {
			for _, j := range e.Jobs(task.Name) {
				if !j.Done() {
					continue
				}
				if j.ResponseTime() > wcrts[i] {
					t.Fatalf("trial %d: %s#%d response %v exceeds analytic WCRT %v",
						trial, task.Name, j.Q, j.ResponseTime(), wcrts[i])
				}
			}
		}
	}
	if tested < 10 {
		t.Fatalf("only %d feasible sets exercised; generator parameters too tight", tested)
	}
}

// TestWorkConservation: the scheduler never idles while a ready job
// has remaining work. Verified by replaying the trace: between any
// job's release and its completion, every instant is covered either
// by some task executing or by nothing being ready — equivalently,
// total busy time up to each completion equals total demand completed
// plus in-progress work. We check the simpler invariant that in a
// saturated system (U = 1, synchronous release) the processor never
// idles within the hyperperiod.
func TestWorkConservation(t *testing.T) {
	s := taskset.MustNew(
		taskset.Task{Name: "a", Priority: 2, Period: ms(6), Deadline: ms(12), Cost: ms(3)},
		taskset.Task{Name: "b", Priority: 1, Period: ms(4), Deadline: ms(12), Cost: ms(2)},
	)
	e, log := run(t, Config{Tasks: s, End: at(120)})
	// Build the busy intervals from begin/resume..preempt/end pairs.
	type iv struct{ from, to vtime.Time }
	var busy []iv
	open := map[string]vtime.Time{}
	for _, ev := range log.Events() {
		switch ev.Kind {
		case trace.JobBegin, trace.JobResume:
			open[ev.Task] = ev.At
		case trace.JobPreempt, trace.JobEnd, trace.JobStopped:
			if s, ok := open[ev.Task]; ok {
				if ev.At > s {
					busy = append(busy, iv{s, ev.At})
				}
				delete(open, ev.Task)
			}
		}
	}
	var total vtime.Duration
	for _, b := range busy {
		total += b.to.Sub(b.from)
	}
	// U = 1 with synchronous release: the processor is busy the
	// whole horizon (minus any final open burst, closed at End by
	// the engine's bookkeeping — jobs still running contribute via
	// Executed instead).
	var running vtime.Duration
	for _, name := range e.TaskNames() {
		for _, j := range e.Jobs(name) {
			if !j.Done() {
				running += j.Executed
			}
		}
	}
	got := total + running
	if got < ms(119) {
		t.Fatalf("saturated system idled: busy %v of 120ms", got)
	}
}

// TestTraceWellFormed: every job's events are properly bracketed —
// release before begin, begin before end, preempts and resumes
// alternate.
func TestTraceWellFormed(t *testing.T) {
	gen := taskset.NewGenerator(77)
	for trial := 0; trial < 10; trial++ {
		s, err := gen.Generate(4, 0.8)
		if err != nil {
			t.Fatal(err)
		}
		_, log := run(t, Config{Tasks: s, End: at(2000)})
		type key struct {
			task string
			q    int64
		}
		state := map[key]string{} // "", "released", "running", "paused", "done"
		for _, ev := range log.Events() {
			k := key{ev.Task, ev.Job}
			st := state[k]
			switch ev.Kind {
			case trace.JobRelease:
				if st != "" {
					t.Fatalf("trial %d: %v released twice", trial, k)
				}
				state[k] = "released"
			case trace.JobBegin:
				if st != "released" {
					t.Fatalf("trial %d: %v began from state %q", trial, k, st)
				}
				state[k] = "running"
			case trace.JobResume:
				if st != "paused" {
					t.Fatalf("trial %d: %v resumed from state %q", trial, k, st)
				}
				state[k] = "running"
			case trace.JobPreempt:
				if st != "running" {
					t.Fatalf("trial %d: %v preempted from state %q", trial, k, st)
				}
				state[k] = "paused"
			case trace.JobEnd, trace.JobStopped:
				if st != "running" {
					t.Fatalf("trial %d: %v ended from state %q", trial, k, st)
				}
				state[k] = "done"
			}
		}
	}
}
