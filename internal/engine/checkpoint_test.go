package engine

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/trace"
	"repro/internal/vtime"
)

// streamCfg builds a Stream-collection config spilling to sink.
func streamCfg(sink trace.Sink, end vtime.Time) Config {
	return Config{Tasks: table2WithOffset(), End: end, Collect: Stream, Sink: sink}
}

// TestRunUntilThenRunMatchesRun: splitting the engine loop at an
// arbitrary instant (no checkpoint involved) produces the identical
// event stream — the boundary semantics Snapshot builds on.
func TestRunUntilThenRunMatchesRun(t *testing.T) {
	var whole strings.Builder
	e, err := New(streamCfg(trace.NewWriterSink(&whole), at(3000)))
	if err != nil {
		t.Fatal(err)
	}
	e.Run()

	var split strings.Builder
	e2, err := New(streamCfg(trace.NewWriterSink(&split), at(3000)))
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []vtime.Time{at(700), at(700), at(1501), at(2999)} {
		if err := e2.RunUntil(cut); err != nil {
			t.Fatalf("RunUntil(%v): %v", cut, err)
		}
	}
	e2.Run()
	if whole.String() != split.String() {
		t.Error("split loop produced a different event stream")
	}
}

// TestRunUntilRejects: going backwards or past the horizon errors.
func TestRunUntilRejects(t *testing.T) {
	e, err := New(streamCfg(trace.Discard, at(1000)))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RunUntil(at(500)); err != nil {
		t.Fatal(err)
	}
	if err := e.RunUntil(at(400)); err == nil {
		t.Error("RunUntil backwards accepted")
	}
	if err := e.RunUntil(at(1001)); err == nil {
		t.Error("RunUntil past the horizon accepted")
	}
}

// TestSnapshotRestoreMidRun: snapshot mid-run, restore into a fresh
// engine, and the continued stream matches an unsplit run byte for
// byte — with the checkpoint surviving a JSON round trip, and the
// snapshotted engine left runnable (Snapshot does not consume it).
func TestSnapshotRestoreMidRun(t *testing.T) {
	var whole strings.Builder
	e, err := New(streamCfg(trace.NewWriterSink(&whole), at(3000)))
	if err != nil {
		t.Fatal(err)
	}
	e.Run()

	var segA strings.Builder
	e1, err := New(streamCfg(trace.NewWriterSink(&segA), at(3000)))
	if err != nil {
		t.Fatal(err)
	}
	if err := e1.RunUntil(at(1250)); err != nil {
		t.Fatal(err)
	}
	cp, err := e1.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	raw, err := json.Marshal(cp)
	if err != nil {
		t.Fatal(err)
	}
	var decoded Checkpoint
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatal(err)
	}

	var segB strings.Builder
	e2, err := New(streamCfg(trace.NewWriterSink(&segB), at(3000)))
	if err != nil {
		t.Fatal(err)
	}
	if err := e2.Restore(&decoded); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	e2.Run()
	if segA.String()+segB.String() != whole.String() {
		t.Error("restored run's stream diverges from the unsplit run")
	}

	// The donor engine is still runnable and finishes identically.
	e1.Run()
	if segA.String() != whole.String() {
		t.Error("snapshotted engine's continued stream diverges")
	}
}

// TestSnapshotRejectsRetain: Retain collection is not checkpointable.
func TestSnapshotRejectsRetain(t *testing.T) {
	e, err := New(Config{Tasks: table2WithOffset(), End: at(1000)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Snapshot(); err == nil {
		t.Error("Snapshot under Retain accepted")
	}
}

// TestSnapshotRejectsLiveTimers: an in-flight external timer (a
// closure) blocks the snapshot.
func TestSnapshotRejectsLiveTimers(t *testing.T) {
	e, err := New(streamCfg(trace.Discard, at(1000)))
	if err != nil {
		t.Fatal(err)
	}
	e.Schedule(at(900), func(vtime.Time) {})
	if err := e.RunUntil(at(500)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Snapshot(); err == nil || !strings.Contains(err.Error(), "timer") {
		t.Errorf("Snapshot with a live timer: %v, want a timer error", err)
	}
}

// TestRestoreRejects pins the identity checks.
func TestRestoreRejects(t *testing.T) {
	e, err := New(streamCfg(trace.Discard, at(2000)))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RunUntil(at(1000)); err != nil {
		t.Fatal(err)
	}
	cp, err := e.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	fresh := func() *Engine {
		t.Helper()
		e, err := New(streamCfg(trace.Discard, at(2000)))
		if err != nil {
			t.Fatal(err)
		}
		return e
	}

	bad := *cp
	bad.Version = CheckpointVersion + 1
	if err := fresh().Restore(&bad); err == nil {
		t.Error("version mismatch accepted")
	}
	bad = *cp
	bad.Policy = "edf"
	if err := fresh().Restore(&bad); err == nil {
		t.Error("policy mismatch accepted")
	}
	bad = *cp
	bad.Now = int64(at(5000))
	if err := fresh().Restore(&bad); err == nil {
		t.Error("instant past the horizon accepted")
	}
	bad = *cp
	bad.Tasks = bad.Tasks[:len(bad.Tasks)-1]
	if err := fresh().Restore(&bad); err == nil {
		t.Error("task-count mismatch accepted")
	}
	retained, err := New(Config{Tasks: table2WithOffset(), End: at(2000)})
	if err != nil {
		t.Fatal(err)
	}
	if err := retained.Restore(cp); err == nil {
		t.Error("Restore into a Retain engine accepted")
	}
}
