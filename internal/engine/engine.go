// Package engine simulates the paper's execution platform: a
// uniprocessor running a set of periodic real-time tasks under a
// preemptive scheduler, with nanosecond virtual time. It substitutes
// for the paper's jRate virtual machine on a TimeSys real-time kernel
// (see DESIGN.md §2): the scheduling decisions — who runs when, who
// preempts whom, who misses a deadline — are identical in kind, while
// the clock is virtual and fully deterministic.
//
// The engine is event driven: job releases, deadline checks, timers
// (used by the detectors of package detect) and predicted completions
// are heap-ordered events; between events the running job consumes
// CPU linearly. Stops follow the paper's §4.1 semantics: a task
// cannot be killed, it polls a boolean between instructions, so a stop
// request takes effect only at the job's next poll boundary, possibly
// inflated by an unbounded-cost jitter term.
package engine

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/taskset"
	"repro/internal/trace"
	"repro/internal/vtime"
)

// Collect selects how much run data the engine retains.
type Collect uint8

// Collection modes.
const (
	// Retain is the default: every Job is kept for post-hoc queries
	// (Jobs, JobAt, metrics.Analyze) and every event is appended to
	// the in-memory log. Memory grows with the horizon.
	Retain Collect = iota
	// Stream bounds memory for long-horizon runs: finished Job
	// records are released for collection as soon as they leave the
	// pending queue, and events bypass the in-memory log, going only
	// to Config.Sink (a metrics.Accumulator, a spill writer, or
	// nothing). Jobs returns nil and JobAt resolves live jobs only.
	Stream
)

// Config parameterizes a run.
type Config struct {
	// Tasks is the static task system started at time zero.
	Tasks *taskset.Set
	// Faults maps task names to fault models (nil = fault free).
	Faults fault.Plan
	// End is the simulation horizon; events strictly later are not
	// processed.
	End vtime.Time
	// Policy orders ready jobs; nil means fixed-priority preemptive,
	// the scheduler all RTSJ implementations must offer.
	Policy Policy
	// StopPoll is the granularity at which tasks poll their stop
	// flag (paper §4.1: the flag "is checked after each instruction
	// of the loop"). A stop request takes effect at the job's next
	// multiple of StopPoll of executed time. Zero means 1 ms.
	StopPoll vtime.Duration
	// StopJitterMax bounds the extra cost of the poll through
	// RealtimeThread.currentRealtimeThread(), "the cost of which is
	// not bounded" (§4.1). Each effective stop consumes an
	// additional uniform draw in [0, StopJitterMax]. Zero disables.
	StopJitterMax vtime.Duration
	// Seed drives the stop-jitter RNG.
	Seed uint64
	// ContextSwitch is charged to the incoming job at every dispatch
	// switch (zero by default; used by the detector-overhead sweep).
	ContextSwitch vtime.Duration
	// Log receives trace events; a fresh log is created when nil.
	// Only meaningful with Retain collection — combining it with
	// Stream is a configuration error.
	Log *trace.Log
	// Collect selects Retain (default) or Stream collection.
	Collect Collect
	// Sink, when non-nil, receives every trace event as it is
	// recorded — in addition to the log under Retain, instead of it
	// under Stream. Typical streaming sinks: metrics.Accumulator,
	// trace.WriterSink, or a trace.Tee of both.
	Sink trace.Sink
	// Hooks observe the run (all optional).
	Hooks Hooks
}

// Hooks are observation points used by the fault-tolerance supervisor
// and by tests.
type Hooks struct {
	// OnRelease fires after a job is released and admitted.
	OnRelease func(e *Engine, j *Job)
	// OnFinish fires when a job completes its work.
	OnFinish func(e *Engine, j *Job)
	// OnStopped fires when a job terminates early on its stop flag.
	OnStopped func(e *Engine, j *Job)
	// OnTaskAdded fires when dynamic admission adds a task.
	OnTaskAdded func(e *Engine, task string)
}

// Policy orders the ready queue and admits released jobs. The
// fixed-priority policy admits everything; the overload baselines
// (package baselines) shed load here.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Better reports whether job a should run in preference to b.
	// It must be a strict weak ordering for determinism.
	Better(a, b *Job) bool
	// Admit is consulted at release; returning false drops the job
	// (it is recorded as released, then immediately abandoned).
	Admit(e *Engine, j *Job) bool
}

// FixedPriority is the preemptive fixed-priority policy of the paper:
// larger task priority wins; ties (impossible within a validated set)
// fall back to release order then task id.
type FixedPriority struct{}

// Name returns "fixed-priority".
func (FixedPriority) Name() string { return "fixed-priority" }

// Better prefers the higher-priority task.
func (FixedPriority) Better(a, b *Job) bool {
	if a.task.task.Priority != b.task.task.Priority {
		return a.task.task.Priority > b.task.task.Priority
	}
	if a.Release != b.Release {
		return a.Release.Before(b.Release)
	}
	return a.task.id < b.task.id
}

// Admit accepts every job.
func (FixedPriority) Admit(*Engine, *Job) bool { return true }

// Job is one activation of a periodic task.
type Job struct {
	task *taskState
	// Q is the 0-based job index.
	Q int64
	// Release is the activation instant.
	Release vtime.Time
	// AbsDeadline = Release + D.
	AbsDeadline vtime.Time
	// Actual is the job's true demand (nominal cost ± fault delta).
	Actual vtime.Duration
	// Executed is the CPU time consumed so far.
	Executed vtime.Duration
	// FinishedAt is the completion or stop instant (valid if done).
	FinishedAt vtime.Time

	overhead  vtime.Duration // charged context-switch cost
	workLimit vtime.Duration // executed-work bound from a stop request
	limited   bool
	begun     bool
	done      bool
	stopped   bool
	missed    bool
	dropped   bool
}

// TaskName returns the owning task's name.
func (j *Job) TaskName() string { return j.task.task.Name }

// Task returns a copy of the owning task's parameters.
func (j *Job) Task() taskset.Task { return j.task.task }

// Done reports whether the job has terminated (completed or stopped).
func (j *Job) Done() bool { return j.done }

// Stopped reports whether the job was terminated by a stop request
// before completing its work.
func (j *Job) Stopped() bool { return j.stopped }

// Missed reports whether the job failed: its deadline passed
// unfinished, or it was stopped incomplete.
func (j *Job) Missed() bool { return j.missed || j.stopped }

// Dropped reports whether the policy refused the job at release.
func (j *Job) Dropped() bool { return j.dropped }

// Remaining returns the work still owed (zero once done).
func (j *Job) Remaining() vtime.Duration {
	d := j.demand() - j.Executed
	if d < 0 {
		return 0
	}
	return d
}

// ResponseTime returns FinishedAt − Release for terminated jobs.
func (j *Job) ResponseTime() vtime.Duration {
	return j.FinishedAt.Sub(j.Release)
}

// demand is the effective work the job will perform before
// terminating: its actual demand plus charged overhead, truncated by
// any stop limit.
func (j *Job) demand() vtime.Duration {
	d := j.Actual + j.overhead
	if j.limited && j.workLimit < d {
		d = j.workLimit
	}
	return d
}

// taskState is the runtime record of one task.
type taskState struct {
	task    taskset.Task
	id      int
	model   fault.Model
	nextQ   int64
	pending []*Job // released, unfinished jobs in FIFO order
	removed bool
	// jobs retains every job for metrics (bounded by horizon/period).
	// Left empty under Stream collection, where finished jobs must be
	// collectible.
	jobs []*Job
}

// head returns the task's earliest unfinished job, or nil. Jobs of
// one task execute in release order: the RTSJ thread is sequential,
// a late job delays its successors (the arbitrary-deadline model).
// Consumed jobs are compacted out of the queue in place — re-slicing
// the prefix away instead would pin the backing array and every
// popped *Job for the run's lifetime.
func (ts *taskState) head() *Job {
	n := 0
	for n < len(ts.pending) && ts.pending[n].done {
		n++
	}
	if n > 0 {
		m := copy(ts.pending, ts.pending[n:])
		for i := m; i < len(ts.pending); i++ {
			ts.pending[i] = nil
		}
		ts.pending = ts.pending[:m]
	}
	if len(ts.pending) == 0 {
		return nil
	}
	return ts.pending[0]
}

// event is a heap entry; fn runs with the clock advanced to at.
// Events at the same instant run in class order, then insertion
// order: completions and releases (classNormal) are observed before
// detector checks (classDetector), which precede deadline checks
// (classDeadline). A job finishing exactly at its WCRT is therefore
// not flagged faulty, and a job finishing exactly at its deadline is
// not a miss — both matching the paper's closed inequalities.
type event struct {
	at    vtime.Time
	class uint8
	seq   uint64
	fn    func(now vtime.Time)
}

// Event classes, in same-instant execution order.
const (
	classNormal uint8 = iota
	classDetector
	classDeadline
)

// Engine is the simulation instance. Create with New, drive with Run.
type Engine struct {
	cfg    Config
	log    *trace.Log
	sink   trace.Sink // nil unless Config.Sink was set
	stream bool       // Config.Collect == Stream
	policy Policy
	rng    *taskset.Rand

	tasks  []*taskState
	byName map[string]*taskState

	heap    []event
	seq     uint64
	now     vtime.Time
	running *Job
	// epoch invalidates stale completion-recheck events.
	epoch uint64

	switches int64 // dispatch switches, for the overhead sweep
}

// New validates the configuration and prepares a run.
func New(cfg Config) (*Engine, error) {
	if cfg.Tasks == nil || cfg.Tasks.Len() == 0 {
		return nil, fmt.Errorf("engine: no tasks")
	}
	if err := cfg.Tasks.Validate(); err != nil {
		return nil, err
	}
	if cfg.End <= 0 {
		return nil, fmt.Errorf("engine: End horizon must be positive")
	}
	if cfg.StopPoll <= 0 {
		cfg.StopPoll = vtime.Millisecond
	}
	switch cfg.Collect {
	case Retain, Stream:
	default:
		return nil, fmt.Errorf("engine: unknown collection mode %d", cfg.Collect)
	}
	if cfg.Collect == Stream && cfg.Log != nil {
		return nil, fmt.Errorf("engine: Config.Log cannot combine with Stream collection (events go to Config.Sink)")
	}
	e := &Engine{
		cfg:    cfg,
		log:    cfg.Log,
		sink:   cfg.Sink,
		stream: cfg.Collect == Stream,
		policy: cfg.Policy,
		rng:    taskset.NewRand(cfg.Seed),
		byName: make(map[string]*taskState, cfg.Tasks.Len()),
	}
	if e.log == nil {
		n := 4096
		if e.stream {
			n = 0 // stays empty: Run still returns a valid, empty log
		}
		e.log = trace.NewLog(n)
	}
	if e.policy == nil {
		e.policy = FixedPriority{}
	}
	for _, t := range cfg.Tasks.Tasks {
		e.addTaskState(t, cfg.Faults.For(t.Name))
	}
	return e, nil
}

func (e *Engine) addTaskState(t taskset.Task, m fault.Model) *taskState {
	ts := &taskState{task: t, id: len(e.tasks), model: m}
	e.tasks = append(e.tasks, ts)
	e.byName[t.Name] = ts
	first := vtime.Time(t.Offset)
	if first < e.now {
		first = e.now
	}
	e.Schedule(first, func(now vtime.Time) { e.release(ts, now) })
	return ts
}

// Now returns the current virtual instant.
func (e *Engine) Now() vtime.Time { return e.now }

// Log returns the trace log (empty under Stream collection).
func (e *Engine) Log() *trace.Log { return e.log }

// Switches returns the number of dispatch switches so far.
func (e *Engine) Switches() int64 { return e.switches }

// PolicyName returns the active policy's name.
func (e *Engine) PolicyName() string { return e.policy.Name() }

// Record appends a trace event; exported for the supervisor. Under
// Retain collection the event lands in the in-memory log (plus the
// optional sink); under Stream it goes to the sink alone.
func (e *Engine) Record(ev trace.Event) {
	if !e.stream {
		e.log.Append(ev)
	}
	if e.sink != nil {
		e.sink.Append(ev)
	}
}

// Schedule enqueues fn to run at instant at (clamped to now).
func (e *Engine) Schedule(at vtime.Time, fn func(now vtime.Time)) {
	e.scheduleClass(at, classNormal, fn)
}

// ScheduleDetector enqueues a detector check at instant at: at equal
// instants it runs after completions but before deadline checks.
func (e *Engine) ScheduleDetector(at vtime.Time, fn func(now vtime.Time)) {
	e.scheduleClass(at, classDetector, fn)
}

func (e *Engine) scheduleClass(at vtime.Time, class uint8, fn func(now vtime.Time)) {
	if at < e.now {
		at = e.now
	}
	e.seq++
	e.heap = append(e.heap, event{at: at, class: class, seq: e.seq, fn: fn})
	e.up(len(e.heap) - 1)
}

// heap primitives (min-heap on (at, class, seq)).
func (e *Engine) less(i, j int) bool {
	if e.heap[i].at != e.heap[j].at {
		return e.heap[i].at < e.heap[j].at
	}
	if e.heap[i].class != e.heap[j].class {
		return e.heap[i].class < e.heap[j].class
	}
	return e.heap[i].seq < e.heap[j].seq
}

func (e *Engine) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !e.less(i, p) {
			break
		}
		e.heap[i], e.heap[p] = e.heap[p], e.heap[i]
		i = p
	}
}

func (e *Engine) down(i int) {
	n := len(e.heap)
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && e.less(l, small) {
			small = l
		}
		if r < n && e.less(r, small) {
			small = r
		}
		if small == i {
			return
		}
		e.heap[i], e.heap[small] = e.heap[small], e.heap[i]
		i = small
	}
}

func (e *Engine) pop() (event, bool) {
	if len(e.heap) == 0 {
		return event{}, false
	}
	top := e.heap[0]
	last := len(e.heap) - 1
	e.heap[0] = e.heap[last]
	e.heap = e.heap[:last]
	if last > 0 {
		e.down(0)
	}
	return top, true
}

// Run executes the simulation to the horizon and returns the log.
func (e *Engine) Run() *trace.Log {
	for {
		ev, ok := e.pop()
		if !ok || ev.at > e.cfg.End {
			break
		}
		e.advance(ev.at)
		ev.fn(ev.at)
		e.finishIfDone(ev.at)
		e.reschedule(ev.at)
	}
	e.advance(e.cfg.End)
	e.now = e.cfg.End
	return e.log
}

// advance accrues CPU time to the running job up to instant t.
func (e *Engine) advance(t vtime.Time) {
	if t < e.now {
		return
	}
	if e.running != nil && !e.running.done {
		e.running.Executed += t.Sub(e.now)
		if e.running.Executed > e.running.demand() {
			// Events are placed exactly at predicted completions, so
			// overshoot indicates an engine bug, not a user error.
			panic(fmt.Sprintf("engine: job %s#%d executed %v past demand %v",
				e.running.TaskName(), e.running.Q, e.running.Executed, e.running.demand()))
		}
	}
	e.now = t
}

// release activates job nextQ of ts and schedules the following one.
func (e *Engine) release(ts *taskState, now vtime.Time) {
	if ts.removed {
		return
	}
	q := ts.nextQ
	ts.nextQ++
	j := &Job{
		task:        ts,
		Q:           q,
		Release:     now,
		AbsDeadline: now.Add(ts.task.Deadline),
		Actual:      ts.model.ActualCost(q, ts.task.Cost),
	}
	if !e.stream {
		// Streaming keeps no per-job history: once a finished job
		// leaves the pending queue, nothing but in-flight events
		// (its deadline check, at the latest) reference it.
		ts.jobs = append(ts.jobs, j)
	}
	e.Record(trace.Event{At: now, Kind: trace.JobRelease, Task: ts.task.Name, Job: q})
	if !e.policy.Admit(e, j) {
		j.dropped = true
		j.done = true
		j.missed = true
		j.FinishedAt = now
		// A shed job terminates incomplete at its release: record it
		// as stopped so trace-based metrics count the failure.
		e.Record(trace.Event{At: now, Kind: trace.JobStopped, Task: ts.task.Name, Job: q})
	} else {
		ts.pending = append(ts.pending, j)
		// Deadline check: record a miss the instant the deadline
		// passes with the job unfinished, as the paper's charts do.
		e.scheduleClass(j.AbsDeadline, classDeadline, func(at vtime.Time) {
			if !j.done {
				j.missed = true
				e.Record(trace.Event{At: at, Kind: trace.DeadlineMiss, Task: ts.task.Name, Job: j.Q})
			}
		})
		if e.cfg.Hooks.OnRelease != nil {
			e.cfg.Hooks.OnRelease(e, j)
		}
	}
	e.Schedule(now.Add(ts.task.Period), func(at vtime.Time) { e.release(ts, at) })
}

// finishIfDone terminates the running job once it has consumed its
// effective demand.
func (e *Engine) finishIfDone(now vtime.Time) {
	j := e.running
	if j == nil || j.done || j.Executed < j.demand() {
		return
	}
	j.done = true
	j.FinishedAt = now
	if j.limited && j.Actual+j.overhead > j.workLimit {
		j.stopped = true
		e.Record(trace.Event{At: now, Kind: trace.JobStopped, Task: j.TaskName(), Job: j.Q})
		if e.cfg.Hooks.OnStopped != nil {
			e.cfg.Hooks.OnStopped(e, j)
		}
	} else {
		e.Record(trace.Event{At: now, Kind: trace.JobEnd, Task: j.TaskName(), Job: j.Q})
		if e.cfg.Hooks.OnFinish != nil {
			e.cfg.Hooks.OnFinish(e, j)
		}
	}
	e.running = nil
}

// reschedule dispatches the best ready job and predicts completion.
func (e *Engine) reschedule(now vtime.Time) {
	best := e.bestReady()
	if best != e.running {
		if e.running != nil && !e.running.done {
			e.Record(trace.Event{At: now, Kind: trace.JobPreempt, Task: e.running.TaskName(), Job: e.running.Q})
		}
		if best != nil {
			if !best.begun {
				best.begun = true
				e.Record(trace.Event{At: now, Kind: trace.JobBegin, Task: best.TaskName(), Job: best.Q})
			} else {
				e.Record(trace.Event{At: now, Kind: trace.JobResume, Task: best.TaskName(), Job: best.Q})
			}
			if e.cfg.ContextSwitch > 0 && e.running != best {
				best.overhead += e.cfg.ContextSwitch
			}
			e.switches++
		}
		e.running = best
	}
	if e.running != nil {
		j := e.running
		e.epoch++
		epoch := e.epoch
		done := now.Add(j.Remaining())
		e.Schedule(done, func(at vtime.Time) {
			// Stale if any dispatch happened since; a fresh event
			// exists in that case.
			if e.epoch == epoch {
				e.finishIfDone(at)
			}
		})
	}
}

// bestReady scans the heads of all task queues under the policy.
func (e *Engine) bestReady() *Job {
	var best *Job
	for _, ts := range e.tasks {
		h := ts.head()
		if h == nil {
			continue
		}
		if best == nil || e.policy.Better(h, best) {
			best = h
		}
	}
	return best
}

// JobAt returns task's job q and whether it exists. Under Stream
// collection only live (released, not yet consumed) jobs resolve;
// callers — the detectors, D-over's watchdog — already treat a
// missing job the same as a finished one.
func (e *Engine) JobAt(task string, q int64) (*Job, bool) {
	ts, ok := e.byName[task]
	if !ok || q < 0 {
		return nil, false
	}
	if e.stream {
		for _, j := range ts.pending {
			if j.Q == q {
				return j, true
			}
		}
		return nil, false
	}
	if q >= int64(len(ts.jobs)) {
		return nil, false
	}
	return ts.jobs[q], true
}

// Jobs returns every job of the task released so far, in order. Under
// Stream collection job history is not retained and Jobs returns nil;
// use a metrics.Accumulator sink for summaries instead.
func (e *Engine) Jobs(task string) []*Job {
	ts, ok := e.byName[task]
	if !ok || e.stream {
		return nil
	}
	return ts.jobs
}

// TaskNames returns the names of all tasks ever added, in add order.
func (e *Engine) TaskNames() []string {
	out := make([]string, len(e.tasks))
	for i, ts := range e.tasks {
		out[i] = ts.task.Name
	}
	return out
}

// ReadyJobs snapshots the current heads of all task queues (the jobs
// competing for the CPU), for value-based policies.
func (e *Engine) ReadyJobs() []*Job {
	var out []*Job
	for _, ts := range e.tasks {
		if h := ts.head(); h != nil {
			out = append(out, h)
		}
	}
	return out
}

// StopJob requests the stop of job q of the task, honouring the §4.1
// poll semantics: the job terminates at its next StopPoll boundary of
// executed work (plus optional jitter), never retroactively. A no-op
// if the job is already done or not yet released.
func (e *Engine) StopJob(task string, q int64, now vtime.Time) {
	j, ok := e.JobAt(task, q)
	if !ok || j.done {
		return
	}
	e.Record(trace.Event{At: now, Kind: trace.StopRequest, Task: task, Job: q})
	limit := j.Executed.Ceil(e.cfg.StopPoll)
	if e.cfg.StopJitterMax > 0 {
		limit += e.rng.DurationIn(0, e.cfg.StopJitterMax)
	}
	if !j.limited || limit < j.workLimit {
		j.limited = true
		j.workLimit = limit
	}
	// If the stopped job is currently running its completion
	// prediction shrank; if it is preempted, nothing changes until it
	// is dispatched again. Either way the caller's event loop
	// iteration ends with reschedule(), which re-predicts.
}

// AddTask performs dynamic admission (paper §7): the task joins the
// system now (its offset is relative to the current instant). The
// caller is responsible for re-running admission control.
func (e *Engine) AddTask(t taskset.Task, m fault.Model, now vtime.Time) error {
	if err := t.Validate(); err != nil {
		return err
	}
	if _, exists := e.byName[t.Name]; exists {
		return fmt.Errorf("engine: task %q already present", t.Name)
	}
	if m == nil {
		m = e.cfg.Faults.For(t.Name)
	}
	t.Offset += vtime.Duration(now)
	e.addTaskState(t, m)
	e.Record(trace.Event{At: now, Kind: trace.TaskAdded, Task: t.Name, Job: -1})
	if e.cfg.Hooks.OnTaskAdded != nil {
		e.cfg.Hooks.OnTaskAdded(e, t.Name)
	}
	return nil
}

// RemoveTask cancels all future releases of the task; its current
// jobs run to completion. A no-op for unknown tasks.
func (e *Engine) RemoveTask(name string, now vtime.Time) {
	ts, ok := e.byName[name]
	if !ok || ts.removed {
		return
	}
	ts.removed = true
	e.Record(trace.Event{At: now, Kind: trace.TaskRemoved, Task: name, Job: -1})
}
