// Package engine simulates the paper's execution platform: a
// uniprocessor running a set of periodic real-time tasks under a
// preemptive scheduler, with nanosecond virtual time. It substitutes
// for the paper's jRate virtual machine on a TimeSys real-time kernel
// (see DESIGN.md §2): the scheduling decisions — who runs when, who
// preempts whom, who misses a deadline — are identical in kind, while
// the clock is virtual and fully deterministic.
//
// Beyond the paper, the engine generalizes to M identical processors
// (Config.CPUs): global dispatch runs the M policy-best ready jobs,
// migrating preempted jobs freely between cores (trace.JobMigrate),
// while partitioned dispatch (Config.Partition) pins each task to one
// core and schedules every core independently. CPUs=1 is the paper's
// model and stays byte-identical to the historical single-slot trace
// format: dispatch events carry the core in trace.Event.Arg, and core
// 0 encodes as an absent arg.
//
// The engine is event driven: job releases, deadline checks, timers
// (used by the detectors of package detect) and predicted completions
// are heap-ordered events; between events the running job consumes
// CPU linearly. The event loop is typed and allocation free in the
// steady state: releases, deadline checks and the completion
// prediction are fixed-size records dispatched through a switch, not
// heap-allocated closures (only external timers — detectors, the
// supervisor's allowance stops, test hooks — carry a callback).
// Deadline and completion events are cancelled eagerly: the heap
// tracks each cancellable event's position, a job's deadline check is
// removed the moment the job finishes, and the single completion
// prediction is updated in place at every dispatch, so the heap stays
// proportional to the live work (pending jobs + one release per task
// + external timers) instead of accumulating stale entries. Dispatch
// picks the next job from an incrementally maintained policy-ordered
// ready queue of task heads — O(log tasks) per update — rather than
// scanning every task. Stops follow the paper's §4.1 semantics: a
// task cannot be killed, it polls a boolean between instructions, so
// a stop request takes effect only at the job's next poll boundary,
// possibly inflated by an unbounded-cost jitter term.
package engine

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/taskset"
	"repro/internal/trace"
	"repro/internal/vtime"
)

// Collect selects how much run data the engine retains.
type Collect uint8

// Collection modes.
const (
	// Retain is the default: every Job is kept for post-hoc queries
	// (Jobs, JobAt, metrics.Analyze) and every event is appended to
	// the in-memory log. Memory grows with the horizon.
	Retain Collect = iota
	// Stream bounds memory for long-horizon runs: finished Job
	// records are recycled through an internal pool as soon as they
	// leave the pending queue, and events bypass the in-memory log,
	// going only to Config.Sink (a metrics.Accumulator, a spill
	// writer, or nothing). Jobs returns nil and JobAt resolves live
	// jobs only.
	Stream
)

// Config parameterizes a run.
type Config struct {
	// Tasks is the static task system started at time zero.
	Tasks *taskset.Set
	// Faults maps task names to fault models (nil = fault free).
	Faults fault.Plan
	// Sources, when non-empty, must align index-for-index with
	// Tasks.Tasks: a non-nil Sources[i] replaces task i's periodic
	// release law (offset + q·T) with source-driven releases — the
	// engine pulls the next arrival lazily and a release may override
	// the task's nominal cost and relative deadline per job (trace
	// records do). nil entries keep the periodic law. Source-driven
	// tasks are statically ineligible for FastForward (no hyperperiod)
	// and for checkpointing (a Source carries hidden iterator state).
	Sources []taskset.Source
	// End is the simulation horizon; events strictly later are not
	// processed.
	End vtime.Time
	// Policy orders ready jobs; nil means fixed-priority preemptive,
	// the scheduler all RTSJ implementations must offer.
	Policy Policy
	// StopPoll is the granularity at which tasks poll their stop
	// flag (paper §4.1: the flag "is checked after each instruction
	// of the loop"). A stop request takes effect at the job's next
	// multiple of StopPoll of executed time. Zero means 1 ms.
	StopPoll vtime.Duration
	// StopJitterMax bounds the extra cost of the poll through
	// RealtimeThread.currentRealtimeThread(), "the cost of which is
	// not bounded" (§4.1). Each effective stop consumes an
	// additional uniform draw in [0, StopJitterMax]. Zero disables.
	StopJitterMax vtime.Duration
	// Seed drives the stop-jitter RNG.
	Seed uint64
	// ContextSwitch is charged to the incoming job at every dispatch
	// switch (zero by default; used by the detector-overhead sweep).
	ContextSwitch vtime.Duration
	// CPUs is the number of identical processors. Zero or one selects
	// the paper's uniprocessor model.
	CPUs int
	// Partition, when non-nil, pins task i of Tasks to core
	// Partition[i] and dispatches every core independently from its
	// own subset (partitioned multiprocessor scheduling; see
	// sched.FirstFitDecreasing / sched.BestFitDecreasing for packing
	// heuristics). nil with CPUs > 1 selects global dispatch: the M
	// policy-best ready jobs run, wherever a core is free. Dynamic
	// admission (AddTask) is global-only.
	Partition []int
	// Log receives trace events; a fresh log is created when nil.
	// Only meaningful with Retain collection — combining it with
	// Stream is a configuration error.
	Log *trace.Log
	// Collect selects Retain (default) or Stream collection.
	Collect Collect
	// Sink, when non-nil, receives every trace event as it is
	// recorded — in addition to the log under Retain, instead of it
	// under Stream. Typical streaming sinks: metrics.Accumulator,
	// trace.WriterSink, or a trace.Tee of both.
	Sink trace.Sink
	// FastForward enables steady-state cycle detection: Run
	// fingerprints the state at every hyperperiod boundary and, once
	// two consecutive boundaries match, extrapolates the remaining
	// whole cycles analytically (see fastforward.go). Requires Stream
	// collection, an empty fault plan, no stop jitter and a computable
	// hyperperiod; New rejects ineligible configurations. Note the
	// extrapolated cycles emit no trace events — a Sink that records
	// events (rather than a CycleObserver-aware accumulator) would see
	// a hole, so combine FastForward only with Observer-style sinks.
	FastForward bool
	// Observer, with FastForward, receives hyperperiod-boundary marks
	// and the cycle extrapolation so streaming metrics stay exact
	// across the jump. Typically the same metrics.Accumulator as Sink.
	Observer CycleObserver
	// Hooks observe the run (all optional).
	Hooks Hooks
}

// Hooks are observation points used by the fault-tolerance supervisor
// and by tests. Under Stream collection the *Job passed to a hook is
// recycled once the hook returns — read what you need, do not retain
// the pointer; and the job is already consumed from its task's queue
// when OnFinish/OnStopped run, so a JobAt for it inside the hook
// reports it missing (see JobAt's contract).
type Hooks struct {
	// OnRelease fires after a job is released and admitted.
	OnRelease func(e *Engine, j *Job)
	// OnFinish fires when a job completes its work.
	OnFinish func(e *Engine, j *Job)
	// OnStopped fires when a job terminates early on its stop flag.
	OnStopped func(e *Engine, j *Job)
	// OnTaskAdded fires when dynamic admission adds a task.
	OnTaskAdded func(e *Engine, task string)
}

// Policy orders the ready queue and admits released jobs. The
// fixed-priority policy admits everything; the overload baselines
// (package baselines) shed load here.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Better reports whether job a should run in preference to b.
	// It must be a strict weak ordering for determinism, and it must
	// be a fixed function of each job's release-time fields (task,
	// Q, Release, AbsDeadline, priority): the engine caches the
	// order in an incrementally maintained ready heap that is only
	// re-keyed when a task's head job changes, so an ordering that
	// depends on mutable state (Executed, Remaining, stop limits)
	// would dispatch from stale comparisons. Policies that need
	// dynamic state act through Admit and StopJob instead, as the
	// overload baselines do.
	Better(a, b *Job) bool
	// Admit is consulted at release; returning false drops the job
	// (it is recorded as released, then immediately abandoned).
	Admit(e *Engine, j *Job) bool
}

// FixedPriority is the preemptive fixed-priority policy of the paper:
// larger task priority wins; ties (impossible within a validated set)
// fall back to release order then task id.
type FixedPriority struct{}

// Name returns "fixed-priority".
func (FixedPriority) Name() string { return "fixed-priority" }

// Better prefers the higher-priority task.
func (FixedPriority) Better(a, b *Job) bool { return fpBetter(a, b) }

// fpBetter is the fixed-priority order, shared with the ready queue's
// interface-free fast path.
func fpBetter(a, b *Job) bool {
	if a.task.task.Priority != b.task.task.Priority {
		return a.task.task.Priority > b.task.task.Priority
	}
	if a.Release != b.Release {
		return a.Release.Before(b.Release)
	}
	return a.task.id < b.task.id
}

// Admit accepts every job.
func (FixedPriority) Admit(*Engine, *Job) bool { return true }

// Job is one activation of a periodic task.
type Job struct {
	task *taskState
	// Q is the 0-based job index.
	Q int64
	// Release is the activation instant.
	Release vtime.Time
	// AbsDeadline = Release + D.
	AbsDeadline vtime.Time
	// Actual is the job's true demand (nominal cost ± fault delta).
	Actual vtime.Duration
	// Executed is the CPU time consumed so far.
	Executed vtime.Duration
	// FinishedAt is the completion or stop instant (valid if done).
	FinishedAt vtime.Time

	overhead  vtime.Duration // charged context-switch cost
	workLimit vtime.Duration // executed-work bound from a stop request
	dlPos     int            // heap position of the deadline check (-1 = none)
	slot      int32          // jobSlots index backing the deadline event
	cpu       int32          // core the job runs (or last ran) on
	limited   bool
	begun     bool
	done      bool
	stopped   bool
	missed    bool
	dropped   bool
}

// TaskName returns the owning task's name.
func (j *Job) TaskName() string { return j.task.task.Name }

// Task returns a copy of the owning task's parameters.
func (j *Job) Task() taskset.Task { return j.task.task }

// Done reports whether the job has terminated (completed or stopped).
func (j *Job) Done() bool { return j.done }

// Stopped reports whether the job was terminated by a stop request
// before completing its work.
func (j *Job) Stopped() bool { return j.stopped }

// Missed reports whether the job failed: its deadline passed
// unfinished, or it was stopped incomplete.
func (j *Job) Missed() bool { return j.missed || j.stopped }

// Dropped reports whether the policy refused the job at release.
func (j *Job) Dropped() bool { return j.dropped }

// Remaining returns the work still owed (zero once done).
func (j *Job) Remaining() vtime.Duration {
	d := j.demand() - j.Executed
	if d < 0 {
		return 0
	}
	return d
}

// ResponseTime returns FinishedAt − Release for terminated jobs.
func (j *Job) ResponseTime() vtime.Duration {
	return j.FinishedAt.Sub(j.Release)
}

// demand is the effective work the job will perform before
// terminating: its actual demand plus charged overhead, truncated by
// any stop limit.
func (j *Job) demand() vtime.Duration {
	d := j.Actual + j.overhead
	if j.limited && j.workLimit < d {
		d = j.workLimit
	}
	return d
}

// taskState is the runtime record of one task.
type taskState struct {
	task  taskset.Task
	id    int
	model fault.Model
	nextQ int64
	// pending[phead:] are the released, unfinished jobs in FIFO
	// order; only the head can terminate (jobs of one task execute
	// in release order — the RTSJ thread is sequential, a late job
	// delays its successors, the arbitrary-deadline model). Consumed
	// slots are nil'd and compacted amortizedly so the backing array
	// stays proportional to the live backlog.
	pending []*Job
	phead   int
	// rdPos is the task's position in its dispatch domain's ready
	// queue (-1 when it has no live job).
	rdPos int
	// dom is the task's dispatch domain: 0 under global dispatch
	// (one domain feeds every core), the pinned core under
	// partitioned dispatch.
	dom     int32
	removed bool
	// jobs retains every job for metrics (bounded by horizon/period).
	// Left empty under Stream collection, where finished jobs are
	// recycled.
	jobs []*Job
	// src, when non-nil, drives releases instead of the periodic law;
	// srcNext holds the already-pulled release the next evRelease
	// event consumes (the 24-byte event record cannot carry per-
	// release cost/deadline overrides, so they stage here).
	src     taskset.Source
	srcNext taskset.Release
}

// live returns the number of released, unfinished jobs.
func (ts *taskState) live() int { return len(ts.pending) - ts.phead }

// head returns the task's earliest unfinished job, or nil.
func (ts *taskState) head() *Job {
	if ts.phead < len(ts.pending) {
		return ts.pending[ts.phead]
	}
	return nil
}

// popFront consumes the head job. The vacated slot is nil'd at once
// (so the record is collectible or poolable) and the consumed prefix
// is compacted away once it dominates the array — re-slicing it off
// instead would pin the backing array for the run's lifetime.
func (ts *taskState) popFront() *Job {
	j := ts.pending[ts.phead]
	ts.pending[ts.phead] = nil
	ts.phead++
	if ts.phead == len(ts.pending) {
		ts.pending = ts.pending[:0]
		ts.phead = 0
	} else if ts.phead >= 32 && ts.phead*2 >= len(ts.pending) {
		n := copy(ts.pending, ts.pending[ts.phead:])
		for i := n; i < len(ts.pending); i++ {
			ts.pending[i] = nil
		}
		ts.pending = ts.pending[:n]
		ts.phead = 0
	}
	return j
}

// eventKind discriminates the typed event records of the loop.
type eventKind uint8

const (
	// evCallback runs an arbitrary function: detector timers,
	// supervisor stop timers, test hooks. The only event kind that
	// costs an allocation to schedule.
	evCallback eventKind = iota
	// evRelease activates task ts's next job and re-arms itself one
	// period later.
	evRelease
	// evDeadline checks job at its absolute deadline; cancelled by
	// removal the moment the job finishes earlier.
	evDeadline
	// evCompletion is a running job's predicted completion (arg =
	// core). At most one exists per core; reschedule updates it in
	// place.
	evCompletion
)

// event is a typed heap entry. Events at the same instant run in
// class order, then insertion order: completions and releases
// (classNormal) are observed before detector checks (classDetector),
// which precede deadline checks (classDeadline). A job finishing
// exactly at its WCRT is therefore not flagged faulty, and a job
// finishing exactly at its deadline is not a miss — both matching the
// paper's closed inequalities.
//
// The record is deliberately pointer free (24 bytes): arg is a handle
// into a side table — the task index for releases, a job slot for
// deadline checks, a callback slot for timers. Sift operations on a
// pointer-bearing struct spend most of their time in GC write
// barriers; with a flat record a swap is a plain copy and the event
// heap never needs scanning.
type event struct {
	at    vtime.Time
	seq   uint64
	arg   int32
	class uint8
	kind  eventKind
}

// Event classes, in same-instant execution order.
const (
	classNormal uint8 = iota
	classDetector
	classDeadline
)

// Engine is the simulation instance. Create with New, drive with Run.
type Engine struct {
	cfg    Config
	log    *trace.Log
	sink   trace.Sink // nil unless Config.Sink was set
	stream bool       // Config.Collect == Stream
	policy Policy
	fpFast bool // policy is the built-in FixedPriority: skip interface calls
	rng    *taskset.Rand

	tasks  []*taskState
	byName map[string]*taskState

	heap []event
	seq  uint64
	// cmplPos[c] is the heap position of core c's completion
	// prediction (-1 = none).
	cmplPos []int
	now     vtime.Time
	// running[c] is the job executing on core c (nil = idle).
	running []*Job
	// cpus and partitioned cache the Config topology; sel backs the
	// global top-M selection between events.
	cpus        int
	partitioned bool
	sel         []*Job

	// jobSlots resolves a live deadline event's arg to its job; the
	// slot is allocated at admission and freed when the deadline
	// check fires or is cancelled.
	jobSlots  []*Job
	freeSlots []int32
	// fns resolves a callback event's arg; one entry per in-flight
	// timer, freed as the callback pops.
	fns     []func(now vtime.Time)
	freeFns []int32

	// ready[d] is dispatch domain d's policy-ordered min-heap of the
	// ids of tasks with at least one live job, keyed by their head
	// job; ties break on task id so dispatch picks exactly the job
	// the historical linear scan did. One domain under global
	// dispatch, one per core under partitioned.
	ready [][]int32

	// scratch backs ReadyJobs between events.
	scratch []*Job
	// pool recycles Job records under Stream collection.
	pool []*Job
	// arena hands out retained Job records in chunks under Retain
	// collection (the records live for the whole run anyway).
	arena []Job

	switches int64 // dispatch switches, for the overhead sweep

	// ff is the fast-forward state (nil unless Config.FastForward);
	// observer receives its cycle callbacks.
	ff       *ffState
	observer CycleObserver
}

// New validates the configuration and prepares a run.
func New(cfg Config) (*Engine, error) {
	if cfg.Tasks == nil || cfg.Tasks.Len() == 0 {
		return nil, fmt.Errorf("engine: no tasks")
	}
	if err := cfg.Tasks.Validate(); err != nil {
		return nil, err
	}
	if cfg.End <= 0 {
		return nil, fmt.Errorf("engine: End horizon must be positive")
	}
	if cfg.StopPoll <= 0 {
		cfg.StopPoll = vtime.Millisecond
	}
	switch cfg.Collect {
	case Retain, Stream:
	default:
		return nil, fmt.Errorf("engine: unknown collection mode %d", cfg.Collect)
	}
	if cfg.Collect == Stream && cfg.Log != nil {
		return nil, fmt.Errorf("engine: Config.Log cannot combine with Stream collection (events go to Config.Sink)")
	}
	if cfg.CPUs < 0 {
		return nil, fmt.Errorf("engine: CPUs must be non-negative, got %d", cfg.CPUs)
	}
	if cfg.CPUs == 0 {
		cfg.CPUs = 1
	}
	if cfg.Partition != nil {
		if len(cfg.Partition) != cfg.Tasks.Len() {
			return nil, fmt.Errorf("engine: Partition has %d entries for %d tasks", len(cfg.Partition), cfg.Tasks.Len())
		}
		for i, c := range cfg.Partition {
			if c < 0 || c >= cfg.CPUs {
				return nil, fmt.Errorf("engine: Partition[%d] = %d out of range for %d CPUs", i, c, cfg.CPUs)
			}
		}
	}
	if len(cfg.Sources) > 0 && len(cfg.Sources) != cfg.Tasks.Len() {
		return nil, fmt.Errorf("engine: Sources has %d entries for %d tasks (must align index-for-index, nil = periodic)", len(cfg.Sources), cfg.Tasks.Len())
	}
	hasSource := false
	for _, s := range cfg.Sources {
		if s != nil {
			hasSource = true
			break
		}
	}
	var ff *ffState
	if cfg.FastForward {
		if cfg.Collect != Stream {
			return nil, fmt.Errorf("engine: FastForward requires Stream collection")
		}
		if hasSource {
			return nil, fmt.Errorf("engine: FastForward cannot combine with arrival sources (source-driven releases have no hyperperiod)")
		}
		if len(cfg.Faults) > 0 {
			return nil, fmt.Errorf("engine: FastForward cannot combine with a fault plan (fault arrivals break hyperperiod periodicity)")
		}
		if cfg.StopJitterMax > 0 {
			return nil, fmt.Errorf("engine: FastForward cannot combine with stop jitter (random draws break hyperperiod periodicity)")
		}
		h, err := cfg.Tasks.Hyperperiod()
		if err != nil {
			return nil, fmt.Errorf("engine: FastForward needs a computable hyperperiod: %w", err)
		}
		ff = &ffState{h: h}
	}
	e := &Engine{
		cfg:         cfg,
		log:         cfg.Log,
		ff:          ff,
		observer:    cfg.Observer,
		sink:        cfg.Sink,
		stream:      cfg.Collect == Stream,
		policy:      cfg.Policy,
		rng:         taskset.NewRand(cfg.Seed),
		byName:      make(map[string]*taskState, cfg.Tasks.Len()),
		cpus:        cfg.CPUs,
		partitioned: cfg.Partition != nil,
		running:     make([]*Job, cfg.CPUs),
		cmplPos:     make([]int, cfg.CPUs),
	}
	for c := range e.cmplPos {
		e.cmplPos[c] = -1
	}
	domains := 1
	if e.partitioned {
		domains = e.cpus
	}
	e.ready = make([][]int32, domains)
	if e.log == nil {
		n := 4096
		if e.stream {
			n = 0 // stays empty: Run still returns a valid, empty log
		}
		e.log = trace.NewLog(n)
	}
	if e.policy == nil {
		e.policy = FixedPriority{}
	}
	_, e.fpFast = e.policy.(FixedPriority)
	for i, t := range cfg.Tasks.Tasks {
		var src taskset.Source
		if i < len(cfg.Sources) {
			src = cfg.Sources[i]
		}
		ts := e.addSourcedTaskState(t, cfg.Faults.For(t.Name), src)
		if e.partitioned {
			ts.dom = int32(cfg.Partition[i])
		}
	}
	return e, nil
}

func (e *Engine) addTaskState(t taskset.Task, m fault.Model) *taskState {
	return e.addSourcedTaskState(t, m, nil)
}

func (e *Engine) addSourcedTaskState(t taskset.Task, m fault.Model, src taskset.Source) *taskState {
	ts := &taskState{task: t, id: len(e.tasks), model: m, rdPos: -1, src: src}
	e.tasks = append(e.tasks, ts)
	e.byName[t.Name] = ts
	if src != nil {
		// Source-driven: the first release is wherever the source says
		// (an exhausted source — e.g. an empty trace — releases
		// nothing at all). The task's Offset does not apply; the
		// source owns the whole release law.
		rel, ok := src.Next()
		if !ok {
			return ts
		}
		ts.srcNext = rel
		at := rel.At
		if at < e.now {
			at = e.now
		}
		e.push(event{at: at, class: classNormal, kind: evRelease, arg: int32(ts.id)})
		return ts
	}
	first := vtime.Time(t.Offset)
	if first < e.now {
		first = e.now
	}
	e.push(event{at: first, class: classNormal, kind: evRelease, arg: int32(ts.id)})
	return ts
}

// Now returns the current virtual instant.
func (e *Engine) Now() vtime.Time { return e.now }

// Log returns the trace log (empty under Stream collection).
func (e *Engine) Log() *trace.Log { return e.log }

// Switches returns the number of dispatch switches so far.
func (e *Engine) Switches() int64 { return e.switches }

// PolicyName returns the active policy's name.
func (e *Engine) PolicyName() string { return e.policy.Name() }

// Record appends a trace event; exported for the supervisor. Under
// Retain collection the event lands in the in-memory log (plus the
// optional sink); under Stream it goes to the sink alone.
func (e *Engine) Record(ev trace.Event) {
	if !e.stream {
		e.log.Append(ev)
	}
	if e.sink != nil {
		e.sink.Append(ev)
	}
}

// Schedule enqueues fn to run at instant at (clamped to now).
func (e *Engine) Schedule(at vtime.Time, fn func(now vtime.Time)) {
	e.scheduleClass(at, classNormal, fn)
}

// ScheduleDetector enqueues a detector check at instant at: at equal
// instants it runs after completions but before deadline checks.
func (e *Engine) ScheduleDetector(at vtime.Time, fn func(now vtime.Time)) {
	e.scheduleClass(at, classDetector, fn)
}

func (e *Engine) scheduleClass(at vtime.Time, class uint8, fn func(now vtime.Time)) {
	if at < e.now {
		at = e.now
	}
	var slot int32
	if n := len(e.freeFns); n > 0 {
		slot = e.freeFns[n-1]
		e.freeFns = e.freeFns[:n-1]
		e.fns[slot] = fn
	} else {
		slot = int32(len(e.fns))
		e.fns = append(e.fns, fn)
	}
	e.push(event{at: at, class: class, kind: evCallback, arg: slot})
}

// Event-heap primitives: a min-heap on (at, class, seq) that tracks
// the positions of cancellable entries (deadline checks through
// Job.dlPos, the per-core completion predictions through
// Engine.cmplPos) so they can be removed or rekeyed in O(log n)
// instead of lingering until their instant passes.

func (e *Engine) push(ev event) {
	e.seq++
	ev.seq = e.seq
	i := len(e.heap)
	e.heap = append(e.heap, ev)
	e.placed(i)
	e.up(i)
}

// placed records element i's new position in its owner's back-pointer.
func (e *Engine) placed(i int) {
	ev := &e.heap[i]
	switch ev.kind {
	case evDeadline:
		e.jobSlots[ev.arg].dlPos = i
	case evCompletion:
		e.cmplPos[ev.arg] = i
	}
}

func (e *Engine) less(i, j int) bool {
	if e.heap[i].at != e.heap[j].at {
		return e.heap[i].at < e.heap[j].at
	}
	if e.heap[i].class != e.heap[j].class {
		return e.heap[i].class < e.heap[j].class
	}
	return e.heap[i].seq < e.heap[j].seq
}

func (e *Engine) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !e.less(i, p) {
			break
		}
		e.heap[i], e.heap[p] = e.heap[p], e.heap[i]
		e.placed(i)
		e.placed(p)
		i = p
	}
}

// down sifts element i toward the leaves; it reports whether the
// element moved, so fix-style callers can fall back to up.
func (e *Engine) down(i int) bool {
	n := len(e.heap)
	start := i
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && e.less(l, small) {
			small = l
		}
		if r < n && e.less(r, small) {
			small = r
		}
		if small == i {
			return i != start
		}
		e.heap[i], e.heap[small] = e.heap[small], e.heap[i]
		e.placed(i)
		e.placed(small)
		i = small
	}
}

// clearPos resets the back-pointer of the event at position i before
// it leaves the heap.
func (e *Engine) clearPos(i int) {
	ev := &e.heap[i]
	switch ev.kind {
	case evDeadline:
		e.jobSlots[ev.arg].dlPos = -1
	case evCompletion:
		e.cmplPos[ev.arg] = -1
	}
}

// removeAt cancels the event at heap position i.
func (e *Engine) removeAt(i int) {
	e.clearPos(i)
	last := len(e.heap) - 1
	if i != last {
		e.heap[i] = e.heap[last]
		e.placed(i)
	}
	e.heap = e.heap[:last]
	if i != last {
		if !e.down(i) {
			e.up(i)
		}
	}
}

// freeSlot releases a job's deadline-event slot once the event left
// the heap.
func (e *Engine) freeSlot(s int32) {
	e.jobSlots[s] = nil
	e.freeSlots = append(e.freeSlots, s)
}

func (e *Engine) pop() (event, bool) {
	if len(e.heap) == 0 {
		return event{}, false
	}
	top := e.heap[0]
	e.clearPos(0)
	last := len(e.heap) - 1
	if last > 0 {
		e.heap[0] = e.heap[last]
		e.placed(0)
	}
	e.heap = e.heap[:last]
	if last > 0 {
		e.down(0)
	}
	return top, true
}

// setCompletion predicts core c's running-job completion at instant
// at, updating the existing prediction in place when one is pending.
// The refreshed seq keeps the historical ordering: the prediction
// always ranks after every event scheduled before the current
// dispatch, as it did when each dispatch pushed a fresh (then-newest)
// event.
func (e *Engine) setCompletion(c int, at vtime.Time) {
	e.seq++
	if i := e.cmplPos[c]; i >= 0 {
		e.heap[i].at = at
		e.heap[i].seq = e.seq
		if !e.down(i) {
			e.up(i)
		}
		return
	}
	i := len(e.heap)
	e.heap = append(e.heap, event{at: at, class: classNormal, kind: evCompletion, seq: e.seq, arg: int32(c)})
	e.placed(i)
	e.up(i)
}

// Run executes the simulation to the horizon and returns the log.
// After a RunUntil (or a Restore), Run picks up from the current
// instant and completes the remaining horizon.
func (e *Engine) Run() *trace.Log {
	if e.ff != nil && !e.ff.abandoned {
		// Fast-forward drives the run hyperperiod to hyperperiod and,
		// on detecting a repeated boundary state, jumps the remaining
		// whole cycles; the ordinary loop below finishes the tail.
		e.runFastForward()
	}
	for len(e.heap) > 0 && e.heap[0].at <= e.cfg.End {
		ev, _ := e.pop()
		e.advance(ev.at)
		e.step(ev)
	}
	e.advance(e.cfg.End)
	e.now = e.cfg.End
	return e.log
}

// RunUntil executes the simulation up to and including instant t:
// every event at t is fully processed, so t is a checkpoint boundary
// — a Snapshot taken here, restored into a fresh engine and Run to
// the horizon, reproduces the unsplit run's remaining trace byte for
// byte (the split merely divides the running job's linear CPU accrual
// at t, which Executed already accounts for).
func (e *Engine) RunUntil(t vtime.Time) error {
	if t < e.now {
		return fmt.Errorf("engine: RunUntil(%v) is in the past (now %v)", t, e.now)
	}
	if t > e.cfg.End {
		return fmt.Errorf("engine: RunUntil(%v) is past the horizon %v", t, e.cfg.End)
	}
	for len(e.heap) > 0 && e.heap[0].at <= t {
		ev, _ := e.pop()
		e.advance(ev.at)
		e.step(ev)
	}
	e.advance(t)
	e.now = t
	return nil
}

// step dispatches one popped event; the caller has advanced to its
// instant already.
func (e *Engine) step(ev event) {
	switch ev.kind {
	case evCallback:
		fn := e.fns[ev.arg]
		e.fns[ev.arg] = nil
		e.freeFns = append(e.freeFns, ev.arg)
		fn(ev.at)
	case evRelease:
		e.release(e.tasks[ev.arg], ev.at)
	case evDeadline:
		j := e.jobSlots[ev.arg]
		e.freeSlot(ev.arg)
		// Reached only while the job is unfinished — completion
		// cancels the check — but stay defensive: a stale miss
		// would corrupt the trace.
		if !j.done {
			j.missed = true
			e.Record(trace.Event{At: ev.at, Kind: trace.DeadlineMiss, Task: j.task.task.Name, Job: j.Q})
		}
	case evCompletion:
		// finishIfDone below observes the predicted completion.
	}
	e.finishIfDone(ev.at)
	e.reschedule(ev.at)
}

// advance accrues CPU time to every core's running job up to instant
// t.
func (e *Engine) advance(t vtime.Time) {
	if t < e.now {
		return
	}
	d := t.Sub(e.now)
	for _, j := range e.running {
		if j != nil && !j.done {
			j.Executed += d
			if j.Executed > j.demand() {
				// Events are placed exactly at predicted completions,
				// so overshoot indicates an engine bug, not a user
				// error.
				panic(fmt.Sprintf("engine: job %s#%d executed %v past demand %v",
					j.TaskName(), j.Q, j.Executed, j.demand()))
			}
		}
	}
	e.now = t
}

// newJob returns a Job record: recycled from the pool under Stream
// collection, carved from a chunked arena under Retain (where every
// record is retained to the end of the run regardless).
func (e *Engine) newJob() *Job {
	if e.stream {
		if n := len(e.pool); n > 0 {
			j := e.pool[n-1]
			e.pool[n-1] = nil
			e.pool = e.pool[:n-1]
			return j
		}
		return &Job{}
	}
	if len(e.arena) == 0 {
		e.arena = make([]Job, 256)
	}
	j := &e.arena[0]
	e.arena = e.arena[1:]
	return j
}

// recycle returns a terminated, fully dereferenced job to the pool.
// Only called under Stream collection, where no history retains it.
func (e *Engine) recycle(j *Job) {
	e.pool = append(e.pool, j)
}

// release activates job nextQ of ts and schedules the following one.
func (e *Engine) release(ts *taskState, now vtime.Time) {
	if ts.removed {
		return
	}
	q := ts.nextQ
	ts.nextQ++
	cost, deadline := ts.task.Cost, ts.task.Deadline
	if ts.src != nil {
		// Per-release overrides staged by the pull that scheduled this
		// event (trace records carry their own cost/deadline; the
		// stochastic sources leave both nominal).
		if ts.srcNext.Cost > 0 {
			cost = ts.srcNext.Cost
		}
		if ts.srcNext.Deadline > 0 {
			deadline = ts.srcNext.Deadline
		}
	}
	j := e.newJob()
	*j = Job{
		task:        ts,
		Q:           q,
		Release:     now,
		AbsDeadline: now.Add(deadline),
		Actual:      ts.model.ActualCost(q, cost),
		dlPos:       -1,
	}
	if !e.stream {
		// Streaming keeps no per-job history: once a finished job
		// leaves the pending queue, nothing references it and the
		// record returns to the pool.
		ts.jobs = append(ts.jobs, j)
	}
	e.Record(trace.Event{At: now, Kind: trace.JobRelease, Task: ts.task.Name, Job: q})
	if !e.policy.Admit(e, j) {
		j.dropped = true
		j.done = true
		j.missed = true
		j.FinishedAt = now
		// A shed job terminates incomplete at its release: record it
		// as stopped so trace-based metrics count the failure.
		e.Record(trace.Event{At: now, Kind: trace.JobStopped, Task: ts.task.Name, Job: q})
		if e.stream {
			e.recycle(j)
		}
	} else {
		wasIdle := ts.live() == 0
		ts.pending = append(ts.pending, j)
		// Deadline check: records a miss the instant the deadline
		// passes with the job unfinished, as the paper's charts do.
		// finishIfDone cancels it when the job terminates earlier.
		if n := len(e.freeSlots); n > 0 {
			j.slot = e.freeSlots[n-1]
			e.freeSlots = e.freeSlots[:n-1]
			e.jobSlots[j.slot] = j
		} else {
			j.slot = int32(len(e.jobSlots))
			e.jobSlots = append(e.jobSlots, j)
		}
		e.push(event{at: j.AbsDeadline, class: classDeadline, kind: evDeadline, arg: j.slot})
		if wasIdle {
			e.readyPush(ts)
		}
		if e.cfg.Hooks.OnRelease != nil {
			e.cfg.Hooks.OnRelease(e, j)
		}
	}
	if ts.src != nil {
		// Pull the next arrival lazily; exhaustion (a finite trace)
		// simply stops scheduling. Sources promise non-decreasing
		// times, so clamping to now only defends against a buggy
		// source, never reorders a correct one.
		rel, ok := ts.src.Next()
		if !ok {
			return
		}
		ts.srcNext = rel
		at := rel.At
		if at < now {
			at = now
		}
		e.push(event{at: at, class: classNormal, kind: evRelease, arg: int32(ts.id)})
		return
	}
	e.push(event{at: now.Add(ts.task.Period), class: classNormal, kind: evRelease, arg: int32(ts.id)})
}

// finishIfDone terminates every running job that has consumed its
// effective demand, in core order.
func (e *Engine) finishIfDone(now vtime.Time) {
	for c := range e.running {
		e.finishCore(c, now)
	}
}

// finishCore terminates core c's running job once it has consumed its
// effective demand: it cancels the pending deadline check, consumes
// the job from its task's queue, rekeys the ready queue, and (under
// Stream collection) recycles the record after the hooks ran.
func (e *Engine) finishCore(c int, now vtime.Time) {
	j := e.running[c]
	if j == nil || j.done || j.Executed < j.demand() {
		return
	}
	j.done = true
	j.FinishedAt = now
	if j.dlPos >= 0 {
		e.removeAt(j.dlPos)
		e.freeSlot(j.slot)
	}
	ts := j.task
	if ts.head() != j {
		panic(fmt.Sprintf("engine: finished job %s#%d is not its task's head", j.TaskName(), j.Q))
	}
	ts.popFront()
	if ts.live() > 0 {
		e.readyFix(ts)
	} else {
		e.readyRemove(ts)
	}
	if j.limited && j.Actual+j.overhead > j.workLimit {
		j.stopped = true
		e.Record(trace.Event{At: now, Kind: trace.JobStopped, Task: j.TaskName(), Job: j.Q})
		if e.cfg.Hooks.OnStopped != nil {
			e.cfg.Hooks.OnStopped(e, j)
		}
	} else {
		e.Record(trace.Event{At: now, Kind: trace.JobEnd, Task: j.TaskName(), Job: j.Q})
		if e.cfg.Hooks.OnFinish != nil {
			e.cfg.Hooks.OnFinish(e, j)
		}
	}
	e.running[c] = nil
	if e.stream {
		e.recycle(j)
	}
}

// reschedule dispatches the best ready jobs and predicts completions:
// per-core from each core's own domain under single-core and
// partitioned dispatch, top-M from the shared domain under global
// multiprocessor dispatch.
func (e *Engine) reschedule(now vtime.Time) {
	if e.cpus > 1 && !e.partitioned {
		e.rescheduleGlobal(now)
		return
	}
	for c := 0; c < e.cpus; c++ {
		e.rescheduleCore(c, now)
	}
}

// rescheduleCore dispatches domain c's best ready job onto core c —
// the historical single-slot logic, with the core riding in the
// trace events' Arg (0, and therefore absent, on a uniprocessor).
func (e *Engine) rescheduleCore(c int, now vtime.Time) {
	var best *Job
	if q := e.ready[c]; len(q) > 0 {
		best = e.tasks[q[0]].head()
	}
	if best != e.running[c] {
		if run := e.running[c]; run != nil && !run.done {
			e.Record(trace.Event{At: now, Kind: trace.JobPreempt, Task: run.TaskName(), Job: run.Q, Arg: int64(c)})
		}
		if best != nil {
			e.dispatch(best, c, now)
		}
		e.running[c] = best
	}
	e.predictCompletion(c, now)
}

// rescheduleGlobal dispatches the M policy-best ready jobs onto the M
// cores. Selection pops up to M task heads off the shared ready heap
// in policy order (then pushes them back), so selection rank obeys
// the same total order — task-id tie-break included — as the
// single-core root. Jobs that stay selected keep their cores;
// displaced jobs are preempted in core order; newly selected jobs
// take the lowest-indexed free cores in policy-rank order, migrating
// (trace.JobMigrate) when they last ran elsewhere.
func (e *Engine) rescheduleGlobal(now vtime.Time) {
	sel := e.sel[:0]
	for len(sel) < e.cpus && len(e.ready[0]) > 0 {
		ts := e.tasks[e.ready[0][0]]
		e.readyRemove(ts)
		sel = append(sel, ts.head())
	}
	for _, j := range sel {
		e.readyPush(j.task)
	}
	// Keep still-selected jobs where they run (their slot in sel is
	// cleared); preempt the displaced.
	for c, run := range e.running {
		if run == nil {
			continue
		}
		kept := false
		for i, j := range sel {
			if j == run {
				sel[i] = nil
				kept = true
				break
			}
		}
		if !kept {
			if !run.done {
				e.Record(trace.Event{At: now, Kind: trace.JobPreempt, Task: run.TaskName(), Job: run.Q, Arg: int64(c)})
			}
			e.running[c] = nil
		}
	}
	free := 0
	for _, j := range sel {
		if j == nil {
			continue
		}
		for e.running[free] != nil {
			free++
		}
		e.dispatch(j, free, now)
		e.running[free] = j
	}
	e.sel = sel[:0]
	for c := range e.running {
		e.predictCompletion(c, now)
	}
}

// dispatch places job j on core c, recording begin on first dispatch,
// migrate when the job last ran on a different core, resume
// otherwise, and charging the context-switch cost.
func (e *Engine) dispatch(j *Job, c int, now vtime.Time) {
	kind := trace.JobResume
	if !j.begun {
		j.begun = true
		kind = trace.JobBegin
	} else if j.cpu != int32(c) {
		kind = trace.JobMigrate
	}
	j.cpu = int32(c)
	e.Record(trace.Event{At: now, Kind: kind, Task: j.TaskName(), Job: j.Q, Arg: int64(c)})
	if e.cfg.ContextSwitch > 0 {
		j.overhead += e.cfg.ContextSwitch
	}
	e.switches++
}

// predictCompletion re-predicts core c's completion event from its
// running job's remaining demand, or cancels it when the core idles.
func (e *Engine) predictCompletion(c int, now vtime.Time) {
	if j := e.running[c]; j != nil {
		e.setCompletion(c, now.Add(j.Remaining()))
	} else if e.cmplPos[c] >= 0 {
		e.removeAt(e.cmplPos[c])
	}
}

// Ready-queue primitives: per-domain min-heaps of task ids keyed by
// each task's head job under the policy order, with ties broken by
// task id — exactly the job the historical linear scan over task
// heads selected. Entries are plain ints so sifts stay barrier free.

// readyLess orders tasks a and b by their head jobs.
func (e *Engine) readyLess(a, b int32) bool {
	ta, tb := e.tasks[a], e.tasks[b]
	ha, hb := ta.pending[ta.phead], tb.pending[tb.phead]
	if e.fpFast {
		return fpBetter(ha, hb) // total order: id tie-break built in
	}
	if e.policy.Better(ha, hb) {
		return true
	}
	if e.policy.Better(hb, ha) {
		return false
	}
	return a < b
}

func (e *Engine) readyPush(ts *taskState) {
	d := ts.dom
	ts.rdPos = len(e.ready[d])
	e.ready[d] = append(e.ready[d], int32(ts.id))
	e.readyUp(d, ts.rdPos)
}

func (e *Engine) readyUp(d int32, i int) {
	q := e.ready[d]
	for i > 0 {
		p := (i - 1) / 2
		if !e.readyLess(q[i], q[p]) {
			break
		}
		q[i], q[p] = q[p], q[i]
		e.tasks[q[i]].rdPos = i
		e.tasks[q[p]].rdPos = p
		i = p
	}
}

func (e *Engine) readyDown(d int32, i int) bool {
	q := e.ready[d]
	n := len(q)
	start := i
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && e.readyLess(q[l], q[small]) {
			small = l
		}
		if r < n && e.readyLess(q[r], q[small]) {
			small = r
		}
		if small == i {
			return i != start
		}
		q[i], q[small] = q[small], q[i]
		e.tasks[q[i]].rdPos = i
		e.tasks[q[small]].rdPos = small
		i = small
	}
}

// readyFix restores ts's heap position after its head job changed.
func (e *Engine) readyFix(ts *taskState) {
	if i := ts.rdPos; i >= 0 {
		if !e.readyDown(ts.dom, i) {
			e.readyUp(ts.dom, i)
		}
	}
}

func (e *Engine) readyRemove(ts *taskState) {
	i := ts.rdPos
	if i < 0 {
		return
	}
	d := ts.dom
	ts.rdPos = -1
	q := e.ready[d]
	last := len(q) - 1
	if i != last {
		q[i] = q[last]
		e.tasks[q[i]].rdPos = i
	}
	e.ready[d] = q[:last]
	if i != last {
		if !e.readyDown(d, i) {
			e.readyUp(d, i)
		}
	}
}

// JobAt returns task's job q and whether it exists. Under Stream
// collection only live (released, unfinished) jobs resolve — a binary
// search over the release-ordered pending queue. The contract is
// therefore: a missing job is a terminated (or never-released) one,
// and that holds from the very instant the job terminates — a query
// issued by a callback at the job's own completion instant (a
// detector check, an OnFinish/OnStopped hook, a same-tick timer)
// already reports it missing, because finishIfDone consumes the job
// from the pending queue before any hook runs. Callers must treat
// missing as done, never as "not yet released"; the detectors and
// D-over's watchdog do exactly that, and
// TestJobAtSameInstantCompletion pins the behaviour in both modes.
func (e *Engine) JobAt(task string, q int64) (*Job, bool) {
	ts, ok := e.byName[task]
	if !ok {
		return nil, false
	}
	return e.jobAt(ts, q)
}

// TaskID returns the dense index the engine assigned to the task
// (-1 if unknown): a stable handle for hot-path queries through
// JobAtID that skips the name lookup.
func (e *Engine) TaskID(task string) int {
	if ts, ok := e.byName[task]; ok {
		return ts.id
	}
	return -1
}

// JobAtID is JobAt addressed by a TaskID handle.
func (e *Engine) JobAtID(id int, q int64) (*Job, bool) {
	if id < 0 || id >= len(e.tasks) {
		return nil, false
	}
	return e.jobAt(e.tasks[id], q)
}

func (e *Engine) jobAt(ts *taskState, q int64) (*Job, bool) {
	if q < 0 {
		return nil, false
	}
	if e.stream {
		// pending[phead:] is strictly increasing in Q (dropped jobs
		// leave gaps, so index arithmetic alone cannot address it).
		lo, hi := ts.phead, len(ts.pending)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if ts.pending[mid].Q < q {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo < len(ts.pending) && ts.pending[lo].Q == q {
			return ts.pending[lo], true
		}
		return nil, false
	}
	if q >= int64(len(ts.jobs)) {
		return nil, false
	}
	return ts.jobs[q], true
}

// Jobs returns every job of the task released so far, in order. Under
// Stream collection job history is not retained and Jobs returns nil;
// use a metrics.Accumulator sink for summaries instead.
func (e *Engine) Jobs(task string) []*Job {
	ts, ok := e.byName[task]
	if !ok || e.stream {
		return nil
	}
	return ts.jobs
}

// TaskNames returns the names of all tasks ever added, in add order.
func (e *Engine) TaskNames() []string {
	out := make([]string, len(e.tasks))
	for i, ts := range e.tasks {
		out[i] = ts.task.Name
	}
	return out
}

// ReadyJobs snapshots the current heads of all task queues (the jobs
// competing for the CPU) in task-definition order, for value-based
// policies. The returned slice is backed by an engine-owned scratch
// buffer: it is valid until the next ReadyJobs call and must not be
// retained across events (the value policies consume it within one
// Admit or watchdog callback).
func (e *Engine) ReadyJobs() []*Job {
	out := e.scratch[:0]
	for _, ts := range e.tasks {
		if h := ts.head(); h != nil {
			out = append(out, h)
		}
	}
	e.scratch = out
	return out
}

// StopJob requests the stop of job q of the task, honouring the §4.1
// poll semantics: the job terminates at its next StopPoll boundary of
// executed work (plus optional jitter), never retroactively. A no-op
// if the job is already done or not yet released.
func (e *Engine) StopJob(task string, q int64, now vtime.Time) {
	j, ok := e.JobAt(task, q)
	if !ok || j.done {
		return
	}
	e.Record(trace.Event{At: now, Kind: trace.StopRequest, Task: task, Job: q})
	limit := j.Executed.Ceil(e.cfg.StopPoll)
	if e.cfg.StopJitterMax > 0 {
		limit += e.rng.DurationIn(0, e.cfg.StopJitterMax)
	}
	if !j.limited || limit < j.workLimit {
		j.limited = true
		j.workLimit = limit
	}
	// If the stopped job is currently running its completion
	// prediction shrank; if it is preempted, nothing changes until it
	// is dispatched again. Either way the caller's event loop
	// iteration ends with reschedule(), which re-predicts.
}

// AddTask performs dynamic admission (paper §7): the task joins the
// system now (its offset is relative to the current instant). The
// caller is responsible for re-running admission control.
func (e *Engine) AddTask(t taskset.Task, m fault.Model, now vtime.Time) error {
	if err := t.Validate(); err != nil {
		return err
	}
	if e.partitioned {
		return fmt.Errorf("engine: dynamic admission needs a core assignment under partitioned dispatch; use global dispatch")
	}
	if _, exists := e.byName[t.Name]; exists {
		return fmt.Errorf("engine: task %q already present", t.Name)
	}
	if m == nil {
		m = e.cfg.Faults.For(t.Name)
	}
	t.Offset += vtime.Duration(now)
	if e.ff != nil {
		// The hyperperiod and per-cycle release counts were computed
		// from the static set; a dynamic task invalidates both.
		e.ff.abandoned = true
	}
	e.addTaskState(t, m)
	e.Record(trace.Event{At: now, Kind: trace.TaskAdded, Task: t.Name, Job: -1})
	if e.cfg.Hooks.OnTaskAdded != nil {
		e.cfg.Hooks.OnTaskAdded(e, t.Name)
	}
	return nil
}

// RemoveTask cancels all future releases of the task; its current
// jobs run to completion. A no-op for unknown tasks.
func (e *Engine) RemoveTask(name string, now vtime.Time) {
	ts, ok := e.byName[name]
	if !ok || ts.removed {
		return
	}
	ts.removed = true
	if e.ff != nil {
		e.ff.abandoned = true
	}
	e.Record(trace.Event{At: now, Kind: trace.TaskRemoved, Task: name, Job: -1})
}
