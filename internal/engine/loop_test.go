package engine

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/taskset"
	"repro/internal/trace"
	"repro/internal/vtime"
)

// TestStreamSteadyStateAllocFree pins the typed event loop's central
// property: once warm, a streaming run allocates nothing per event.
// Two identical configurations differing only in horizon are measured
// with testing.AllocsPerRun; the longer run simulates 50 extra
// virtual seconds (thousands of events — releases, completions,
// deadline checks, preemptions, stop-limited jobs through the fault
// plan) and must not allocate more than a fixed handful beyond the
// shorter one (slice-capacity settling), i.e. ~0 allocs/event.
func TestStreamSteadyStateAllocFree(t *testing.T) {
	perHorizon := func(end vtime.Time) float64 {
		return testing.AllocsPerRun(5, func() {
			e, err := New(Config{
				Tasks:   table2WithOffset(),
				Faults:  fault.Plan{"tau1": fault.OverrunEvery{First: 1, K: 3, Extra: ms(45)}},
				End:     end,
				Collect: Stream,
				Sink:    trace.Discard,
			})
			if err != nil {
				t.Fatal(err)
			}
			e.Run()
		})
	}
	short := perHorizon(at(10_000))
	long := perHorizon(at(60_000))
	// ~50 s × ~45 events/s ≈ 2250 extra events; allow a few allocs of
	// slack for amortized container growth crossing the boundary.
	const slack = 8
	if long > short+slack {
		t.Errorf("steady state allocates: %.0f allocs at 10s vs %.0f at 60s (+%.2f per extra event)",
			short, long, (long-short)/2250)
	}
}

// TestHeapBoundedByLiveWork pins the cancellation rework: after a
// long soak the event heap holds only live entries — one deadline
// check per pending job, one release per task, at most one completion
// prediction — instead of growing with stale epoch-guarded events.
func TestHeapBoundedByLiveWork(t *testing.T) {
	e, _ := run(t, Config{
		Tasks:  table2WithOffset(),
		Faults: fault.Plan{"tau1": fault.OverrunEvery{First: 0, K: 2, Extra: ms(45)}},
		End:    at(120_000),
	})
	live := 0
	for _, ts := range e.tasks {
		live += ts.live()
	}
	bound := live + len(e.tasks) + 1
	if len(e.heap) > bound {
		t.Errorf("heap holds %d events after the soak, want <= %d (%d live jobs + %d release timers + 1 completion)",
			len(e.heap), bound, live, len(e.tasks))
	}
	// The deadline-slot table is recycled alongside: it must be
	// bounded by the peak backlog, not the number of released jobs.
	if len(e.jobSlots) > 64 {
		t.Errorf("jobSlots grew to %d entries over %d releases", len(e.jobSlots), e.tasks[0].nextQ)
	}
}

// TestReadyJobsReusesScratch: ReadyJobs must not allocate per call —
// the value policies invoke it on every release and watchdog check.
func TestReadyJobsReusesScratch(t *testing.T) {
	e, err := New(Config{Tasks: table2WithOffset(), End: at(1000)})
	if err != nil {
		t.Fatal(err)
	}
	// Stop at 50 ms: tau1 and tau2 have live head jobs then.
	var allocs float64
	e.Schedule(at(50), func(now vtime.Time) {
		first := e.ReadyJobs()
		if len(first) == 0 {
			t.Fatal("no ready jobs at 50ms")
		}
		allocs = testing.AllocsPerRun(100, func() {
			if len(e.ReadyJobs()) != len(first) {
				t.Fatal("ready set changed between calls")
			}
		})
	})
	e.Run()
	if allocs != 0 {
		t.Errorf("ReadyJobs allocates %.1f times per call, want 0", allocs)
	}
}

// TestJobAtStreamBinarySearch: under Stream, JobAt must resolve any
// live job of a deep backlog (and reject absent indices) — the
// indexed replacement for the linear pending scan.
func TestJobAtStreamBinarySearch(t *testing.T) {
	// An overloaded low-priority task accumulates a long backlog.
	set := taskset.MustNew(
		taskset.Task{Name: "hog", Priority: 10, Period: ms(10), Deadline: ms(10), Cost: ms(9)},
		taskset.Task{Name: "bg", Priority: 5, Period: ms(30), Deadline: ms(3000), Cost: ms(20)},
	)
	e, err := New(Config{Tasks: set, End: at(3000), Collect: Stream, Sink: trace.Discard})
	if err != nil {
		t.Fatal(err)
	}
	checked := false
	e.Schedule(at(2900), func(now vtime.Time) {
		ts := e.byName["bg"]
		if ts.live() < 10 {
			t.Fatalf("backlog too small for the test: %d", ts.live())
		}
		lo, hi := ts.head().Q, ts.pending[len(ts.pending)-1].Q
		for q := lo; q <= hi; q++ {
			j, ok := e.JobAt("bg", q)
			if !ok || j.Q != q {
				t.Fatalf("live job bg#%d not resolved (ok=%v)", q, ok)
			}
		}
		if _, ok := e.JobAt("bg", lo-1); lo > 0 && ok {
			t.Error("consumed job must not resolve under Stream")
		}
		if _, ok := e.JobAt("bg", hi+1); ok {
			t.Error("unreleased job must not resolve")
		}
		checked = true
	})
	e.Run()
	if !checked {
		t.Fatal("backlog check never ran")
	}
}
