package engine

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/taskset"
	"repro/internal/trace"
)

// TestStreamEmitsIdenticalEvents: the same configuration run under
// Stream collection delivers, through its sink, exactly the event
// sequence Retain collection appends to the log.
func TestStreamEmitsIdenticalEvents(t *testing.T) {
	cfg := Config{
		Tasks:  table2WithOffset(),
		Faults: fault.Plan{"tau1": fault.OverrunEvery{First: 1, K: 3, Extra: ms(45)}},
		End:    at(6000),
	}
	_, retained := run(t, cfg)

	sunk := trace.NewLog(4096)
	streamCfg := cfg
	streamCfg.Tasks = table2WithOffset()
	streamCfg.Collect = Stream
	streamCfg.Sink = sunk
	e, log := run(t, streamCfg)
	if log.Len() != 0 {
		t.Errorf("streaming run retained %d events in its log", log.Len())
	}
	if sunk.EncodeString() != retained.EncodeString() {
		t.Error("streamed event sequence differs from the retained log")
	}
	if e.Log().Len() != 0 {
		t.Error("Log() must stay empty under Stream")
	}
}

// TestStreamRecyclesJobs: under Stream no job history survives —
// Jobs is nil, JobAt resolves live jobs only — while live jobs stay
// reachable for the detectors' StopJob path.
func TestStreamRecyclesJobs(t *testing.T) {
	sawLive := false
	cfg := Config{
		Tasks:   table2WithOffset(),
		End:     at(3000),
		Collect: Stream,
		Hooks: Hooks{
			OnRelease: func(e *Engine, j *Job) {
				if jj, ok := e.JobAt(j.TaskName(), j.Q); ok && jj == j {
					sawLive = true
				}
			},
		},
	}
	e, _ := run(t, cfg)
	if !sawLive {
		t.Error("live jobs must resolve through JobAt while pending")
	}
	if jobs := e.Jobs("tau1"); jobs != nil {
		t.Errorf("Jobs must be nil under Stream, got %d jobs", len(jobs))
	}
	if _, ok := e.JobAt("tau1", 0); ok {
		t.Error("finished jobs must not resolve under Stream")
	}
	for _, ts := range e.tasks {
		if len(ts.jobs) != 0 {
			t.Errorf("%s retained %d job records under Stream", ts.task.Name, len(ts.jobs))
		}
	}
}

// TestPendingQueueCompacts: consuming the pending queue must not pin
// the popped prefix. An overloaded task (cost > period, no admission
// here) accumulates a backlog; the consumed prefix must still be
// compacted away rather than re-sliced into a growing dead zone.
func TestPendingQueueCompacts(t *testing.T) {
	set := taskset.MustNew(
		taskset.Task{Name: "hog", Priority: 10, Period: ms(10), Deadline: ms(10), Cost: ms(9)},
		taskset.Task{Name: "bg", Priority: 5, Period: ms(100), Deadline: ms(100), Cost: ms(5)},
	)
	e, _ := run(t, Config{Tasks: set, End: at(20000)})
	for _, ts := range e.tasks {
		// After a run every released job of a schedulable task is
		// done; head() must have compacted them all out.
		if h := ts.head(); h == nil && len(ts.pending) != 0 {
			t.Errorf("%s: %d done jobs left in pending", ts.task.Name, len(ts.pending))
		}
		// The queue never held more than the small live window, so
		// its backing array must not have grown with the horizon
		// (2000 hog jobs released).
		if cap(ts.pending) > 64 {
			t.Errorf("%s: pending capacity %d grew with the horizon", ts.task.Name, cap(ts.pending))
		}
	}
}

// TestPendingPrefixNiledOut: consuming the head nils the vacated slot
// at once (so finished jobs are collectible or poolable while the
// array is reused) and the consumed prefix is compacted away once it
// dominates the array.
func TestPendingPrefixNiledOut(t *testing.T) {
	ts := &taskState{task: taskset.Task{Name: "x"}}
	jobs := make([]*Job, 100)
	for i := range jobs {
		jobs[i] = &Job{task: ts, Q: int64(i)}
	}
	ts.pending = append([]*Job(nil), jobs...)
	for i := 0; i < 3; i++ {
		if got := ts.popFront(); got != jobs[i] {
			t.Fatalf("popFront #%d = %v, want job %d", i, got, i)
		}
	}
	if h := ts.head(); h != jobs[3] {
		t.Fatalf("head = %v, want job 3", h)
	}
	if ts.live() != 97 {
		t.Fatalf("live = %d, want 97", ts.live())
	}
	for i := 0; i < ts.phead; i++ {
		if ts.pending[i] != nil {
			t.Errorf("vacated slot %d still references a job", i)
		}
	}
	// Consuming most of the queue triggers the in-place compaction:
	// the prefix must not keep growing with the consumption count.
	for ts.live() > 10 {
		ts.popFront()
	}
	if ts.phead >= 64 {
		t.Errorf("consumed prefix (%d slots) was never compacted", ts.phead)
	}
	if h := ts.head(); h == nil || h.Q != 90 {
		t.Fatalf("head after compaction = %+v, want Q=90", h)
	}
}

// TestStreamConfigValidation: Stream refuses a caller-provided Log,
// and unknown collection modes are rejected.
func TestStreamConfigValidation(t *testing.T) {
	set := table2WithOffset()
	if _, err := New(Config{Tasks: set, End: at(100), Collect: Stream, Log: trace.NewLog(1)}); err == nil {
		t.Error("Stream plus Config.Log must be rejected")
	}
	if _, err := New(Config{Tasks: set, End: at(100), Collect: Collect(99)}); err == nil {
		t.Error("unknown collection mode must be rejected")
	}
}

// TestRetainSinkTees: a sink set on a retained run sees the same
// events the log records.
func TestRetainSinkTees(t *testing.T) {
	sunk := trace.NewLog(1024)
	e, log := run(t, Config{Tasks: table2WithOffset(), End: at(1500), Sink: sunk})
	if sunk.EncodeString() != log.EncodeString() {
		t.Error("retained-run sink saw different events than the log")
	}
	if e.Log() != log {
		t.Error("Log() must return the retained log")
	}
}

// TestJobAtSameInstantCompletion pins JobAt's terminated-job
// contract at the trickiest instant — a query from the OnFinish hook,
// i.e. the very tick the job completes. Under Stream the job has
// already left the pending queue (and is about to be recycled), so it
// must report missing; under Retain the full history resolves it and
// shows it done. Either way, "missing or done" is what a same-instant
// caller (a detector firing at the completion tick) must treat as
// "finished in time".
func TestJobAtSameInstantCompletion(t *testing.T) {
	for _, mode := range []Collect{Retain, Stream} {
		mode := mode
		name := map[Collect]string{Retain: "retain", Stream: "stream"}[mode]
		t.Run(name, func(t *testing.T) {
			queried := false
			cfg := Config{
				Tasks:   table2WithOffset(),
				End:     at(3000),
				Collect: mode,
				Hooks: Hooks{
					OnFinish: func(e *Engine, j *Job) {
						queried = true
						jj, ok := e.JobAt(j.TaskName(), j.Q)
						switch mode {
						case Stream:
							if ok {
								t.Errorf("%s#%d: JobAt resolved a job that completed this instant under Stream", j.TaskName(), j.Q)
							}
						case Retain:
							if !ok || jj != j || !jj.Done() {
								t.Errorf("%s#%d: JobAt under Retain = (%v, %v), want the done job", j.TaskName(), j.Q, jj, ok)
							}
						}
					},
				},
			}
			run(t, cfg)
			if !queried {
				t.Fatal("OnFinish never fired")
			}
		})
	}
}
