package engine

import (
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/taskset"
	"repro/internal/trace"
	"repro/internal/vtime"
)

// ffSet is an eligible workload whose transient outlasts a whole
// hyperperiod: H = lcm(20, 50, 100) = 100ms, but t2's offset delays
// its first release past the second boundary, so the steady state
// cannot be proven before t = 300ms.
func ffSet() *taskset.Set {
	return &taskset.Set{Tasks: []taskset.Task{
		{Name: "t1", Priority: 3, Period: ms(20), Deadline: ms(20), Cost: ms(5), Offset: ms(5)},
		{Name: "t2", Priority: 2, Period: ms(50), Deadline: ms(50), Cost: ms(10), Offset: ms(230)},
		{Name: "t3", Priority: 1, Period: ms(100), Deadline: ms(100), Cost: ms(20)},
	}}
}

// runPair runs the same configuration with fast-forward off and on
// (each with its own accumulator) and returns both engines and
// accumulators. The caller sets everything except Collect, Sink,
// Observer and FastForward.
func runPair(t *testing.T, cfg Config) (full, ff *Engine, fullAcc, ffAcc *metrics.Accumulator) {
	t.Helper()
	fullAcc = metrics.NewAccumulator()
	c := cfg
	c.Collect = Stream
	c.Sink = fullAcc
	var err error
	if full, err = New(c); err != nil {
		t.Fatalf("full engine: %v", err)
	}
	full.Run()

	ffAcc = metrics.NewAccumulator()
	c = cfg
	c.Collect = Stream
	c.Sink = ffAcc
	c.Observer = ffAcc
	c.FastForward = true
	if ff, err = New(c); err != nil {
		t.Fatalf("fast-forward engine: %v", err)
	}
	ff.Run()
	return full, ff, fullAcc, ffAcc
}

// compareRuns asserts the fast-forwarded run reproduced the full run
// exactly on every summary field, the switch counter, the clock and
// the live backlog.
func compareRuns(t *testing.T, full, ff *Engine, fullAcc, ffAcc *metrics.Accumulator) {
	t.Helper()
	if full.Now() != ff.Now() {
		t.Fatalf("clock diverged: full %v, fast-forward %v", full.Now(), ff.Now())
	}
	if full.Switches() != ff.Switches() {
		t.Errorf("switches diverged: full %d, fast-forward %d", full.Switches(), ff.Switches())
	}
	if fullAcc.Live() != ffAcc.Live() {
		t.Errorf("live backlog diverged: full %d, fast-forward %d", fullAcc.Live(), ffAcc.Live())
	}
	fullRep, ffRep := fullAcc.Report(), ffAcc.Report()
	if len(fullRep.Tasks) != len(ffRep.Tasks) {
		t.Fatalf("task count diverged: full %d, fast-forward %d", len(fullRep.Tasks), len(ffRep.Tasks))
	}
	for name, fs := range fullRep.Tasks {
		xs := ffRep.Tasks[name]
		if xs == nil {
			t.Fatalf("task %s missing from fast-forward report", name)
		}
		if *fs != *xs {
			t.Errorf("task %s summary diverged:\nfull: %+v\nff:   %+v", name, *fs, *xs)
		}
	}
}

// TestFastForwardMatchesFullRun covers the tentpole contract on a set
// whose transient exceeds one hyperperiod and whose horizon is not a
// multiple of the cycle (the jump must land and resume a partial tail).
func TestFastForwardMatchesFullRun(t *testing.T) {
	cfg := Config{Tasks: ffSet(), End: at(10_037)}
	full, ff, fullAcc, ffAcc := runPair(t, cfg)
	if ff.SkippedCycles() == 0 {
		t.Fatal("fast-forward never engaged on an eligible steady-state run")
	}
	// The first boundary (100ms) cannot match the second (200ms): t2's
	// pending first release sits 130ms ahead of one and 30ms ahead of
	// the other. Earliest detection is therefore the third boundary,
	// capping the jump at horizon/H − 3 cycles.
	if max := int64(10_037/100) - 3; ff.SkippedCycles() > max {
		t.Errorf("skipped %d cycles, transient allows at most %d", ff.SkippedCycles(), max)
	}
	compareRuns(t, full, ff, fullAcc, ffAcc)
}

// TestFastForwardContextSwitchCost: the per-dispatch overhead charge
// is deterministic state and must survive the jump.
func TestFastForwardContextSwitchCost(t *testing.T) {
	cfg := Config{Tasks: ffSet(), End: at(5_000), ContextSwitch: vtime.Micros(50)}
	full, ff, fullAcc, ffAcc := runPair(t, cfg)
	if ff.SkippedCycles() == 0 {
		t.Fatal("fast-forward never engaged")
	}
	compareRuns(t, full, ff, fullAcc, ffAcc)
}

// eventRecorder captures the raw event stream for byte-level
// comparisons.
type eventRecorder struct{ events []trace.Event }

func (r *eventRecorder) Append(e trace.Event) { r.events = append(r.events, e) }

// TestFastForwardShortHorizonIsFullRun: a horizon shorter than two
// hyperperiods can never prove a cycle — the run must degrade to a
// plain full simulation with an identical event stream (K = 0).
func TestFastForwardShortHorizonIsFullRun(t *testing.T) {
	for _, horizon := range []int64{150, 199} {
		plain := &eventRecorder{}
		e1, err := New(Config{Tasks: ffSet(), End: at(horizon), Collect: Stream, Sink: plain})
		if err != nil {
			t.Fatal(err)
		}
		e1.Run()
		rec := &eventRecorder{}
		e2, err := New(Config{Tasks: ffSet(), End: at(horizon), Collect: Stream, Sink: rec, FastForward: true})
		if err != nil {
			t.Fatal(err)
		}
		e2.Run()
		if e2.SkippedCycles() != 0 {
			t.Fatalf("horizon %dms: skipped %d cycles inside a sub-2H horizon", horizon, e2.SkippedCycles())
		}
		if len(plain.events) != len(rec.events) {
			t.Fatalf("horizon %dms: %d events plain, %d fast-forward", horizon, len(plain.events), len(rec.events))
		}
		for i := range plain.events {
			if plain.events[i] != rec.events[i] {
				t.Fatalf("horizon %dms: event %d diverged: %+v vs %+v", horizon, i, plain.events[i], rec.events[i])
			}
		}
	}
}

// TestFastForwardOneShotTimerDelaysDetection: an external timer in
// flight poisons the boundaries it spans — the previous fingerprint is
// discarded — but once it pops, detection resumes.
func TestFastForwardOneShotTimerDelaysDetection(t *testing.T) {
	fired := 0
	cfg := Config{Tasks: ffSet(), End: at(10_000)}
	ffAcc := metrics.NewAccumulator()
	e, err := New(Config{Tasks: cfg.Tasks, End: cfg.End, Collect: Stream,
		Sink: ffAcc, Observer: ffAcc, FastForward: true})
	if err != nil {
		t.Fatal(err)
	}
	// In flight across boundaries 100..500, popping at 550.
	e.Schedule(vtime.AtMillis(550), func(vtime.Time) { fired++ })
	e.Run()
	if fired != 1 {
		t.Fatalf("timer fired %d times, want 1", fired)
	}
	if e.SkippedCycles() == 0 {
		t.Fatal("detection never resumed after the one-shot timer popped")
	}
	// ≥ 2 clean boundaries after 550ms are needed before a jump, so no
	// more than horizon/H − 7 cycles can be skipped.
	if max := int64(10_000/100) - 7; e.SkippedCycles() > max {
		t.Errorf("skipped %d cycles, timer poisons boundaries through 500ms (max %d)", e.SkippedCycles(), max)
	}

	fullAcc := metrics.NewAccumulator()
	f, err := New(Config{Tasks: cfg.Tasks, End: cfg.End, Collect: Stream, Sink: fullAcc})
	if err != nil {
		t.Fatal(err)
	}
	f.Schedule(vtime.AtMillis(550), func(vtime.Time) {})
	f.Run()
	compareRuns(t, f, e, fullAcc, ffAcc)
}

// TestFastForwardRearmingTimerSuppresses: a timer that always re-arms
// keeps a callback in flight at every boundary, so fast-forward never
// engages and the run is a plain full simulation.
func TestFastForwardRearmingTimerSuppresses(t *testing.T) {
	acc := metrics.NewAccumulator()
	e, err := New(Config{Tasks: ffSet(), End: at(3_000), Collect: Stream,
		Sink: acc, Observer: acc, FastForward: true})
	if err != nil {
		t.Fatal(err)
	}
	var rearm func(now vtime.Time)
	rearm = func(now vtime.Time) { e.Schedule(now.Add(ms(60)), rearm) }
	e.Schedule(vtime.AtMillis(60), rearm)
	e.Run()
	if e.SkippedCycles() != 0 {
		t.Fatalf("skipped %d cycles with a permanently re-arming timer", e.SkippedCycles())
	}
}

// TestFastForwardAbandonedOnDynamicAdmission: AddTask mid-run changes
// the task system the hyperperiod was computed from; fast-forward must
// abandon permanently and still match the full run.
func TestFastForwardAbandonedOnDynamicAdmission(t *testing.T) {
	extra := taskset.Task{Name: "late", Priority: 4, Period: ms(25), Deadline: ms(25), Cost: ms(2)}
	addAt := vtime.AtMillis(450)

	fullAcc := metrics.NewAccumulator()
	full, err := New(Config{Tasks: ffSet(), End: at(4_000), Collect: Stream, Sink: fullAcc})
	if err != nil {
		t.Fatal(err)
	}
	full.Schedule(addAt, func(now vtime.Time) {
		if err := full.AddTask(extra, nil, now); err != nil {
			t.Errorf("AddTask: %v", err)
		}
	})
	full.Run()

	ffAcc := metrics.NewAccumulator()
	ff, err := New(Config{Tasks: ffSet(), End: at(4_000), Collect: Stream,
		Sink: ffAcc, Observer: ffAcc, FastForward: true})
	if err != nil {
		t.Fatal(err)
	}
	ff.Schedule(addAt, func(now vtime.Time) {
		if err := ff.AddTask(extra, nil, now); err != nil {
			t.Errorf("AddTask: %v", err)
		}
	})
	ff.Run()
	if ff.SkippedCycles() != 0 {
		t.Fatalf("skipped %d cycles after dynamic admission", ff.SkippedCycles())
	}
	compareRuns(t, full, ff, fullAcc, ffAcc)
}

// TestFastForwardMulticore: global and partitioned dispatch on two
// cores both reach a steady state and extrapolate it faithfully.
func TestFastForwardMulticore(t *testing.T) {
	set := &taskset.Set{Tasks: []taskset.Task{
		{Name: "m1", Priority: 4, Period: ms(20), Deadline: ms(20), Cost: ms(9)},
		{Name: "m2", Priority: 3, Period: ms(25), Deadline: ms(25), Cost: ms(11), Offset: ms(3)},
		{Name: "m3", Priority: 2, Period: ms(50), Deadline: ms(50), Cost: ms(17), Offset: ms(7)},
		{Name: "m4", Priority: 1, Period: ms(100), Deadline: ms(100), Cost: ms(21)},
	}}
	for _, tc := range []struct {
		name      string
		partition []int
	}{
		{"global", nil},
		{"partitioned", []int{0, 1, 0, 1}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := Config{Tasks: set, End: at(7_031), CPUs: 2, Partition: tc.partition}
			full, ff, fullAcc, ffAcc := runPair(t, cfg)
			if ff.SkippedCycles() == 0 {
				t.Fatal("fast-forward never engaged")
			}
			compareRuns(t, full, ff, fullAcc, ffAcc)
		})
	}
}

// TestFastForwardEligibility pins the static refusals.
func TestFastForwardEligibility(t *testing.T) {
	base := func() Config {
		return Config{Tasks: ffSet(), End: at(1_000), Collect: Stream, FastForward: true}
	}
	for _, tc := range []struct {
		name string
		mut  func(*Config)
		want string
	}{
		{"retain", func(c *Config) { c.Collect = Retain }, "Stream"},
		{"faults", func(c *Config) {
			c.Faults = fault.Plan{"t1": fault.OverrunEvery{K: 3, Extra: ms(1)}}
		}, "fault plan"},
		{"jitter", func(c *Config) { c.StopJitterMax = ms(1) }, "stop jitter"},
		{"hyperperiod", func(c *Config) {
			c.Tasks = &taskset.Set{Tasks: []taskset.Task{
				{Name: "h1", Priority: 2, Period: vtime.Duration(1<<31 + 1), Deadline: vtime.Duration(1<<31 + 1), Cost: 1},
				{Name: "h2", Priority: 1, Period: vtime.Duration(1<<31 + 3), Deadline: vtime.Duration(1<<31 + 3), Cost: 1},
			}}
		}, "hyperperiod"},
	} {
		cfg := base()
		tc.mut(&cfg)
		_, err := New(cfg)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want mention of %q", tc.name, err, tc.want)
		}
	}
	if _, err := New(base()); err != nil {
		t.Errorf("eligible config rejected: %v", err)
	}
}
