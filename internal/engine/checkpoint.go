package engine

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/vtime"
)

// CheckpointVersion is the serialization version stamped into every
// Checkpoint. Bump it on any change to the checkpoint structures or
// to the engine state they capture; Restore rejects other versions.
const CheckpointVersion = 2

// Checkpoint is the complete serializable state of a streaming-mode
// engine at an event boundary: virtual time, the typed event heap
// (positions and sequence numbers preserved, so the restored heap is
// structurally identical), every task's release counter and pending
// job queue, the deadline-event slot table, the stop-jitter RNG and
// any stateful fault models. It is pure data — canonical JSON like
// sim/scenario — and carries everything a fresh engine built from the
// same Config needs to continue the run: a run split at a checkpoint
// boundary produces a byte-identical trace to the unsplit run.
//
// Checkpoints cover Stream collection only (Retain runs keep the full
// job history and log, which is exactly what a long-horizon run must
// not carry), and only instants with no in-flight external timers —
// detector treatments, polling servers and d-over's watchdog hold
// closure-bearing timers the checkpoint cannot capture. Snapshot
// reports both conditions as errors.
type Checkpoint struct {
	Version int `json:"version"`
	// Policy and End echo the originating Config so Restore can
	// reject a checkpoint applied under a different run description.
	Policy string `json:"policy"`
	End    int64  `json:"end"`
	// Now is the boundary instant; Seq and Switches continue the
	// event and dispatch counters; Rng is the stop-jitter stream.
	Now      int64  `json:"now"`
	Seq      uint64 `json:"seq"`
	Switches int64  `json:"switches"`
	Rng      uint64 `json:"rng"`
	// CPUs and Partition echo the processor topology of the
	// originating Config; Restore rejects a checkpoint applied under
	// a different topology.
	CPUs      int   `json:"cpus"`
	Partition []int `json:"partition,omitempty"`
	// Running names, per core, the task whose head job holds that
	// core (-1 idle).
	Running []int32 `json:"running"`
	// Tasks, Events and JobSlots mirror the engine's task table, event
	// heap (in heap-array order) and deadline-slot table.
	Tasks    []TaskCheckpoint  `json:"tasks"`
	Events   []EventCheckpoint `json:"events"`
	JobSlots []SlotCheckpoint  `json:"job_slots"`
	// FreeSlots and FreeFns preserve the slot free lists so a resumed
	// engine allocates slots in the same order the unsplit run does.
	FreeSlots []int32 `json:"free_slots,omitempty"`
	FreeFns   []int32 `json:"free_fns,omitempty"`
	// FnSlots is the callback-table length (every entry free — live
	// callbacks are not checkpointable).
	FnSlots int `json:"fn_slots"`
}

// TaskCheckpoint is one task's dynamic state.
type TaskCheckpoint struct {
	Name    string `json:"name"`
	NextQ   int64  `json:"next_q"`
	Removed bool   `json:"removed,omitempty"`
	// FaultState captures stateful fault models (fault.ModelState).
	FaultState []uint64 `json:"fault_state,omitempty"`
	// Pending lists the released, unfinished jobs in FIFO order.
	Pending []JobCheckpoint `json:"pending,omitempty"`
}

// JobCheckpoint is one live job. Terminated jobs never appear: they
// leave the pending queue the instant they finish.
type JobCheckpoint struct {
	Q           int64 `json:"q"`
	Release     int64 `json:"release"`
	AbsDeadline int64 `json:"abs_deadline"`
	Actual      int64 `json:"actual"`
	Executed    int64 `json:"executed"`
	Overhead    int64 `json:"overhead,omitempty"`
	WorkLimit   int64 `json:"work_limit,omitempty"`
	Slot        int32 `json:"slot"`
	CPU         int32 `json:"cpu,omitempty"`
	Limited     bool  `json:"limited,omitempty"`
	Begun       bool  `json:"begun,omitempty"`
	Missed      bool  `json:"missed,omitempty"`
}

// EventCheckpoint is one typed heap entry, positionally identical to
// the live heap array (a valid binary heap serializes as-is).
type EventCheckpoint struct {
	At    int64  `json:"at"`
	Seq   uint64 `json:"seq"`
	Arg   int32  `json:"arg"`
	Class uint8  `json:"class"`
	Kind  uint8  `json:"kind"`
}

// SlotCheckpoint resolves one deadline-event slot to its job by
// (task id, q); Task is -1 for a free slot.
type SlotCheckpoint struct {
	Task int32 `json:"task"`
	Q    int64 `json:"q,omitempty"`
}

// liveTimers counts in-flight external timers (scheduled callbacks
// whose closure has not yet popped).
func (e *Engine) liveTimers() int { return len(e.fns) - len(e.freeFns) }

// Snapshot captures the engine's state at the current event boundary
// (reach one with RunUntil). It fails under Retain collection and
// while external timers are in flight — see Checkpoint.
func (e *Engine) Snapshot() (*Checkpoint, error) {
	if !e.stream {
		return nil, fmt.Errorf("engine: Snapshot requires Stream collection (Retain runs carry the full log and job history)")
	}
	if n := e.liveTimers(); n > 0 {
		return nil, fmt.Errorf("engine: Snapshot with %d external timer(s) in flight (detector treatments, polling servers and watchdog policies are not checkpointable)", n)
	}
	for _, ts := range e.tasks {
		if ts.src != nil {
			return nil, fmt.Errorf("engine: Snapshot cannot serialize task %q's arrival source (source iterator state is opaque)", ts.task.Name)
		}
	}
	cp := &Checkpoint{
		Version:   CheckpointVersion,
		Policy:    e.policy.Name(),
		End:       int64(e.cfg.End),
		Now:       int64(e.now),
		Seq:       e.seq,
		Switches:  e.switches,
		Rng:       e.rng.State(),
		CPUs:      e.cpus,
		Partition: append([]int(nil), e.cfg.Partition...),
		Running:   make([]int32, e.cpus),
		Tasks:     make([]TaskCheckpoint, len(e.tasks)),
		Events:    make([]EventCheckpoint, len(e.heap)),
		JobSlots:  make([]SlotCheckpoint, len(e.jobSlots)),
		FreeSlots: append([]int32(nil), e.freeSlots...),
		FreeFns:   append([]int32(nil), e.freeFns...),
		FnSlots:   len(e.fns),
	}
	for c, j := range e.running {
		cp.Running[c] = -1
		if j != nil {
			cp.Running[c] = int32(j.task.id)
		}
	}
	for i, ts := range e.tasks {
		tc := TaskCheckpoint{
			Name:       ts.task.Name,
			NextQ:      ts.nextQ,
			Removed:    ts.removed,
			FaultState: fault.ModelState(ts.model),
		}
		for _, j := range ts.pending[ts.phead:] {
			tc.Pending = append(tc.Pending, JobCheckpoint{
				Q:           j.Q,
				Release:     int64(j.Release),
				AbsDeadline: int64(j.AbsDeadline),
				Actual:      int64(j.Actual),
				Executed:    int64(j.Executed),
				Overhead:    int64(j.overhead),
				WorkLimit:   int64(j.workLimit),
				Slot:        j.slot,
				CPU:         j.cpu,
				Limited:     j.limited,
				Begun:       j.begun,
				Missed:      j.missed,
			})
		}
		cp.Tasks[i] = tc
	}
	for i, ev := range e.heap {
		cp.Events[i] = EventCheckpoint{
			At:    int64(ev.at),
			Seq:   ev.seq,
			Arg:   ev.arg,
			Class: ev.class,
			Kind:  uint8(ev.kind),
		}
	}
	for s, j := range e.jobSlots {
		if j == nil {
			cp.JobSlots[s] = SlotCheckpoint{Task: -1}
		} else {
			cp.JobSlots[s] = SlotCheckpoint{Task: int32(j.task.id), Q: j.Q}
		}
	}
	return cp, nil
}

// Restore loads a checkpoint into a freshly built engine (same Config
// that produced the snapshot: identical tasks, faults, policy, knobs;
// the horizon may extend past the checkpoint's). After Restore, Run
// completes the remaining horizon exactly as the unsplit run would.
func (e *Engine) Restore(cp *Checkpoint) error {
	if cp.Version != CheckpointVersion {
		return fmt.Errorf("engine: checkpoint version %d, want %d", cp.Version, CheckpointVersion)
	}
	if !e.stream {
		return fmt.Errorf("engine: Restore requires Stream collection")
	}
	if got := e.policy.Name(); got != cp.Policy {
		return fmt.Errorf("engine: checkpoint policy %q, engine runs %q", cp.Policy, got)
	}
	if len(cp.Tasks) != len(e.tasks) {
		return fmt.Errorf("engine: checkpoint has %d tasks, engine %d", len(cp.Tasks), len(e.tasks))
	}
	if cp.CPUs != e.cpus {
		return fmt.Errorf("engine: checkpoint has %d CPUs, engine %d", cp.CPUs, e.cpus)
	}
	if len(cp.Partition) != len(e.cfg.Partition) {
		return fmt.Errorf("engine: checkpoint partition has %d entries, engine %d", len(cp.Partition), len(e.cfg.Partition))
	}
	for i, c := range cp.Partition {
		if e.cfg.Partition[i] != c {
			return fmt.Errorf("engine: checkpoint pins task %d to core %d, engine to %d", i, c, e.cfg.Partition[i])
		}
	}
	if len(cp.Running) != e.cpus {
		return fmt.Errorf("engine: checkpoint has %d run slots for %d CPUs", len(cp.Running), e.cpus)
	}
	if at := vtime.Time(cp.Now); at > e.cfg.End {
		return fmt.Errorf("engine: checkpoint instant %v is past the horizon %v", at, e.cfg.End)
	}
	for i, tc := range cp.Tasks {
		if e.tasks[i].task.Name != tc.Name {
			return fmt.Errorf("engine: checkpoint task %d is %q, engine has %q", i, tc.Name, e.tasks[i].task.Name)
		}
	}
	e.now = vtime.Time(cp.Now)
	e.seq = cp.Seq
	e.switches = cp.Switches
	e.rng.SetState(cp.Rng)

	// Task table: rebuild each pending queue with fresh Job records.
	for i, tc := range cp.Tasks {
		ts := e.tasks[i]
		ts.nextQ = tc.NextQ
		ts.removed = tc.Removed
		ts.pending = ts.pending[:0]
		ts.phead = 0
		ts.rdPos = -1
		ts.jobs = nil
		if err := fault.SetModelState(ts.model, tc.FaultState); err != nil {
			return fmt.Errorf("engine: task %q: %w", tc.Name, err)
		}
		for _, jc := range tc.Pending {
			j := e.newJob()
			*j = Job{
				task:        ts,
				Q:           jc.Q,
				Release:     vtime.Time(jc.Release),
				AbsDeadline: vtime.Time(jc.AbsDeadline),
				Actual:      vtime.Duration(jc.Actual),
				Executed:    vtime.Duration(jc.Executed),
				overhead:    vtime.Duration(jc.Overhead),
				workLimit:   vtime.Duration(jc.WorkLimit),
				slot:        jc.Slot,
				cpu:         jc.CPU,
				limited:     jc.Limited,
				begun:       jc.Begun,
				missed:      jc.Missed,
				dlPos:       -1,
			}
			ts.pending = append(ts.pending, j)
		}
	}

	// Slot tables before the heap: placed() resolves deadline events
	// through jobSlots.
	e.jobSlots = make([]*Job, len(cp.JobSlots))
	for s, sc := range cp.JobSlots {
		if sc.Task < 0 {
			continue
		}
		if int(sc.Task) >= len(e.tasks) {
			return fmt.Errorf("engine: checkpoint slot %d references task %d of %d", s, sc.Task, len(e.tasks))
		}
		j, ok := e.jobAt(e.tasks[sc.Task], sc.Q)
		if !ok {
			return fmt.Errorf("engine: checkpoint slot %d references missing job %s#%d", s, e.tasks[sc.Task].task.Name, sc.Q)
		}
		e.jobSlots[s] = j
	}
	e.freeSlots = append(e.freeSlots[:0], cp.FreeSlots...)
	e.fns = make([]func(now vtime.Time), cp.FnSlots)
	e.freeFns = append(e.freeFns[:0], cp.FreeFns...)

	// Event heap: the serialized array is a valid heap; loading it
	// positionally and replaying placed() restores every back-pointer
	// (Job.dlPos, Engine.cmplPos).
	for c := range e.cmplPos {
		e.cmplPos[c] = -1
	}
	e.heap = e.heap[:0]
	for _, ec := range cp.Events {
		if eventKind(ec.Kind) == evCallback {
			return fmt.Errorf("engine: checkpoint carries an external-timer event (not checkpointable)")
		}
		e.heap = append(e.heap, event{
			at:    vtime.Time(ec.At),
			seq:   ec.Seq,
			arg:   ec.Arg,
			class: ec.Class,
			kind:  eventKind(ec.Kind),
		})
	}
	for i := range e.heap {
		switch e.heap[i].kind {
		case evDeadline:
			s := e.heap[i].arg
			if int(s) >= len(e.jobSlots) || e.jobSlots[s] == nil {
				return fmt.Errorf("engine: checkpoint deadline event references empty slot %d", s)
			}
		case evCompletion:
			if c := e.heap[i].arg; int(c) >= e.cpus {
				return fmt.Errorf("engine: checkpoint completion event references core %d of %d", c, e.cpus)
			}
		}
		e.placed(i)
	}

	// Ready queue: a task is ready iff it has a live job; pushing in
	// id order yields a valid heap whose root is the policy-best head
	// (readyLess is a total order, so the array layout is irrelevant
	// to dispatch).
	for d := range e.ready {
		e.ready[d] = e.ready[d][:0]
	}
	for _, ts := range e.tasks {
		if ts.live() > 0 {
			e.readyPush(ts)
		}
	}

	for c := range e.running {
		e.running[c] = nil
		id := cp.Running[c]
		if id < 0 {
			continue
		}
		if int(id) >= len(e.tasks) {
			return fmt.Errorf("engine: checkpoint running task %d of %d", id, len(e.tasks))
		}
		j := e.tasks[id].head()
		if j == nil {
			return fmt.Errorf("engine: checkpoint running task %q has no live job", e.tasks[id].task.Name)
		}
		e.running[c] = j
	}
	return nil
}
