// Package experiments defines one constructor per table and figure of
// the paper's evaluation, plus the extension sweeps catalogued in
// DESIGN.md §4. Each experiment produces printable rows in the shape
// the paper reports, so the benchmark harness and cmd/rtexp regenerate
// the published artefacts.
package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/allowance"
	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/runner"
	"repro/internal/taskset"
	"repro/internal/vtime"
)

// RunOptions configures how a sweep executes its independent
// simulations through the internal/runner worker pool. The zero value
// uses every core. Because the runner collects results in input order
// and every job draws from its own derived seed, the rendered tables
// are byte-identical at any parallelism — Parallelism: 1 is the
// serial escape hatch the cross-check tests diff against.
type RunOptions struct {
	// Parallelism is the worker count: 0 = GOMAXPROCS, 1 = serial.
	Parallelism int
	// Progress, when non-nil, observes completed-simulation counts.
	Progress func(done, total int)
	// Stream runs each simulation with streaming collection
	// (engine.Stream): bounded memory per simulation, identical
	// rendered artefacts — the sweeps consume only task-summary
	// counts, which streaming reproduces exactly. Honoured by the
	// sweeps that need no job-level records or trace: X2 and X4.
	// X1 measures trace size and X3 reads per-job records, so they
	// always retain.
	Stream bool
}

// collect maps the option to the engine's collection mode.
func (o RunOptions) collect() engine.Collect {
	if o.Stream {
		return engine.Stream
	}
	return engine.Retain
}

func (o RunOptions) pool() runner.Options {
	return runner.Options{Parallelism: o.Parallelism, Progress: o.Progress}
}

// Table1Set returns the paper's Table 1 system (the arbitrary-deadline
// response-time demonstration).
func Table1Set() *taskset.Set {
	return taskset.MustNew(
		taskset.Task{Name: "tau1", Priority: 20, Period: vtime.Millis(6), Deadline: vtime.Millis(6), Cost: vtime.Millis(3)},
		taskset.Task{Name: "tau2", Priority: 15, Period: vtime.Millis(4), Deadline: vtime.Millis(6), Cost: vtime.Millis(2)},
	)
}

// Table2Set returns the paper's Table 2 evaluation system.
func Table2Set() *taskset.Set {
	return taskset.MustNew(
		taskset.Task{Name: "tau1", Priority: 20, Period: vtime.Millis(200), Deadline: vtime.Millis(70), Cost: vtime.Millis(29)},
		taskset.Task{Name: "tau2", Priority: 18, Period: vtime.Millis(250), Deadline: vtime.Millis(120), Cost: vtime.Millis(29)},
		taskset.Task{Name: "tau3", Priority: 16, Period: vtime.Millis(1500), Deadline: vtime.Millis(120), Cost: vtime.Millis(29)},
	)
}

// FigureSet returns the Table 2 system as run in Figures 3–7: τ3
// carries a 1000 ms release offset so that the published window —
// τ1's job 5, τ2's job 4 and a τ3 job all released at t = 1000 ms —
// occurs (see DESIGN.md §2, substitution table).
func FigureSet() *taskset.Set {
	s := Table2Set()
	s.Tasks[2].Offset = vtime.Millis(1000)
	return s
}

// FaultyJob identifies the injected fault of the figures: τ1's job
// released at t = 1000 ms is job index 5 (jobs 0..4 release at
// 0..800 ms).
const FaultyJob = 5

// FigureFaultExtra is the injected overrun. The paper does not print
// the magnitude; 40 ms reproduces every published outcome: without
// treatment τ1 finishes at 1069 (before its 1070 deadline), τ2 at
// 1098 (before 1120), τ3 at 1127 (missing 1120) — Figure 3's "τ1 ends
// before its deadline, just as task τ2, but task τ3 misses its
// deadline".
const FigureFaultExtra = 40 * vtime.Millisecond

// FigureWindow is the charted interval around the faulty activation.
func FigureWindow() (from, to vtime.Time) {
	return vtime.AtMillis(990), vtime.AtMillis(1140)
}

// FigureHorizon covers one full hyperperiod beyond the fault window.
const FigureHorizon = 1500 * vtime.Millisecond

// Table1Row is one line of the Table 1 / Figure 1 reproduction.
type Table1Row struct {
	Task string
	Jobs []analysis.JobResponse
	WCRT vtime.Duration
}

// Table1 computes per-job response times over the level-i busy period
// for both Table 1 tasks.
func Table1() ([]Table1Row, error) {
	s := Table1Set()
	out := make([]Table1Row, 0, s.Len())
	for i, t := range s.Tasks {
		jobs, err := analysis.JobResponseTimes(s, i, 0)
		if err != nil {
			return nil, fmt.Errorf("experiments: table1 task %s: %w", t.Name, err)
		}
		wcrt, err := analysis.WCResponseTime(s, i, 0)
		if err != nil {
			return nil, err
		}
		out = append(out, Table1Row{Task: t.Name, Jobs: jobs, WCRT: wcrt})
	}
	return out, nil
}

// RenderTable1 prints the rows in the paper's layout plus the per-job
// responses charted in Figure 1.
func RenderTable1(rows []Table1Row) string {
	var b strings.Builder
	b.WriteString("Table 1 / Figure 1 — worst case is not the critical-instant job\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6s WCRT=%v  per-job responses:", r.Task, r.WCRT)
		for _, j := range r.Jobs {
			fmt.Fprintf(&b, " q%d=%v", j.Q, j.Response)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Table2Row is one line of the paper's Table 2 (with allowance).
type Table2Row struct {
	Task       taskset.Task
	WCRT       vtime.Duration
	Allowance  vtime.Duration
	MaxOverrun vtime.Duration
}

// Table2 reproduces the paper's Table 2: parameters, WCRTs and the
// equitable allowance Ai, plus the §4.3 per-task maximum overrun.
func Table2() ([]Table2Row, error) {
	s := Table2Set()
	tab, err := allowance.Compute(s, 0)
	if err != nil {
		return nil, err
	}
	out := make([]Table2Row, s.Len())
	for i, t := range s.Tasks {
		out[i] = Table2Row{Task: t, WCRT: tab.WCRT[i], Allowance: tab.Equitable, MaxOverrun: tab.MaxOverrun[i]}
	}
	return out, nil
}

// RenderTable2 prints Table 2 in the paper's column order.
func RenderTable2(rows []Table2Row) string {
	var b strings.Builder
	b.WriteString("Table 2 — tested tasks system\n")
	fmt.Fprintf(&b, "%-6s %4s %6s %6s %6s %8s %5s %6s\n", "task", "P", "T", "D", "C", "WCRT", "A", "maxOv")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6s %4d %6d %6d %6d %8d %5d %6d\n",
			r.Task.Name, r.Task.Priority,
			r.Task.Period.Milliseconds(), r.Task.Deadline.Milliseconds(), r.Task.Cost.Milliseconds(),
			r.WCRT.Milliseconds(), r.Allowance.Milliseconds(), r.MaxOverrun.Milliseconds())
	}
	return b.String()
}

// Table3Row is one line of the paper's Table 3 (WCRT with overruns).
type Table3Row struct {
	Task          string
	WCRT          vtime.Duration
	EquitableWCRT vtime.Duration
	Shift         vtime.Duration
}

// Table3 reproduces the paper's Table 3: the worst case response
// times when every task overruns by the equitable allowance.
func Table3() ([]Table3Row, error) {
	s := Table2Set()
	tab, err := allowance.Compute(s, 0)
	if err != nil {
		return nil, err
	}
	out := make([]Table3Row, s.Len())
	for i, t := range s.Tasks {
		out[i] = Table3Row{
			Task:          t.Name,
			WCRT:          tab.WCRT[i],
			EquitableWCRT: tab.EquitableWCRT[i],
			Shift:         tab.EquitableWCRT[i] - tab.WCRT[i],
		}
	}
	return out, nil
}

// RenderTable3 prints Table 3 in the paper's shape.
func RenderTable3(rows []Table3Row) string {
	var b strings.Builder
	b.WriteString("Table 3 — worst case response time with cost overruns\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6s WCRT+%dms = %v\n", r.Task, r.Shift.Milliseconds(), r.EquitableWCRT)
	}
	return b.String()
}

// Figure identifies one of the paper's execution figures.
type Figure int

// The five execution charts of Section 6.
const (
	Figure3 Figure = 3 // no detection
	Figure4 Figure = 4 // detection, no treatment
	Figure5 Figure = 5 // immediate stop
	Figure6 Figure = 6 // equitable allowance
	Figure7 Figure = 7 // system allowance
)

// Treatment maps the figure to its §4 treatment.
func (f Figure) Treatment() detect.Treatment {
	switch f {
	case Figure3:
		return detect.NoDetection
	case Figure4:
		return detect.DetectOnly
	case Figure5:
		return detect.Stop
	case Figure6:
		return detect.Equitable
	case Figure7:
		return detect.SystemAllowance
	default:
		panic(fmt.Sprintf("experiments: unknown figure %d", int(f)))
	}
}

// Title echoes the paper's subsection captions.
func (f Figure) Title() string {
	switch f {
	case Figure3:
		return "Figure 3 — execution without detection"
	case Figure4:
		return "Figure 4 — execution with detection, without treatments"
	case Figure5:
		return "Figure 5 — instantaneous stop of the faulty tasks"
	case Figure6:
		return "Figure 6 — allowance granted equitably to all tasks"
	case Figure7:
		return "Figure 7 — allowance granted totally to the first faulty task"
	default:
		return fmt.Sprintf("figure %d", int(f))
	}
}

// RunFigure executes the paper's §6 scenario under the figure's
// treatment: the Table 2 system, τ3 offset 1000 ms, a 40 ms overrun
// injected into τ1's job 5, jRate's 10 ms timer resolution.
func RunFigure(f Figure) (*core.Result, error) {
	sys, err := core.NewSystem(core.Config{
		Tasks:           FigureSet(),
		Treatment:       f.Treatment(),
		Faults:          fault.Plan{"tau1": fault.OverrunAt{Job: FaultyJob, Extra: FigureFaultExtra}},
		Horizon:         FigureHorizon,
		TimerResolution: detect.DefaultTimerResolution,
	})
	if err != nil {
		return nil, err
	}
	return sys.Run()
}

// FigureOutcome condenses a figure run into the facts the paper's
// prose states: per-task failure of the jobs released at t = 1000 ms
// and the completion instants.
type FigureOutcome struct {
	Figure Figure
	// Tau1End, Tau2End, Tau3End are the termination instants of the
	// jobs released at 1000 ms (stop or completion).
	Tau1End, Tau2End, Tau3End vtime.Time
	// Tau1Failed etc. report job failure (miss or stop).
	Tau1Failed, Tau2Failed, Tau3Failed bool
	// Detections counts flagged faults over the whole run.
	Detections int64
}

// Outcome extracts the FigureOutcome from a run result.
func Outcome(f Figure, res *core.Result) FigureOutcome {
	o := FigureOutcome{Figure: f, Detections: res.Detections}
	if j, ok := res.Report.Job("tau1", FaultyJob); ok {
		o.Tau1End, o.Tau1Failed = j.End, j.Failed()
	}
	if j, ok := res.Report.Job("tau2", 4); ok {
		o.Tau2End, o.Tau2Failed = j.End, j.Failed()
	}
	if j, ok := res.Report.Job("tau3", 0); ok {
		o.Tau3End, o.Tau3Failed = j.End, j.Failed()
	}
	return o
}

// RenderOutcome prints the outcome next to the paper's statement.
func RenderOutcome(o FigureOutcome) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", o.Figure.Title())
	fmt.Fprintf(&b, "  tau1 job%d end=%v failed=%v\n", FaultyJob, o.Tau1End, o.Tau1Failed)
	fmt.Fprintf(&b, "  tau2 job4 end=%v failed=%v\n", o.Tau2End, o.Tau2Failed)
	fmt.Fprintf(&b, "  tau3 job0 end=%v failed=%v\n", o.Tau3End, o.Tau3Failed)
	fmt.Fprintf(&b, "  detections=%d\n", o.Detections)
	return b.String()
}

// SweepPoint is one sample of the X2 fault-magnitude sweep.
type SweepPoint struct {
	Extra        vtime.Duration
	Treatment    detect.Treatment
	SuccessRatio float64
	Tau2Failed   int
	Tau3Failed   int
}

// FaultMagnitudeSweep generalizes Figures 3–7 (extension X2): it
// sweeps the injected overrun of τ1's job 5 from 0 to max in steps,
// for every treatment, reporting the system success ratio and the
// collateral failures of the lower-priority tasks.
//
// Deprecated: use FaultMagnitudeSweepCtx (or the "x2" entry of the
// repro/sim experiment registry), which adds cancellation and
// parallel execution.
func FaultMagnitudeSweep(maxExtra, step vtime.Duration) ([]SweepPoint, error) {
	return FaultMagnitudeSweepCtx(context.Background(), maxExtra, step, RunOptions{})
}

// FaultMagnitudeSweepCtx is FaultMagnitudeSweep with cancellation and
// parallel execution: every (magnitude, treatment) point is an
// independent simulation submitted to the runner pool.
func FaultMagnitudeSweepCtx(ctx context.Context, maxExtra, step vtime.Duration, opt RunOptions) ([]SweepPoint, error) {
	treatments := []detect.Treatment{
		detect.NoDetection, detect.DetectOnly, detect.Stop,
		detect.Equitable, detect.SystemAllowance,
	}
	type job struct {
		extra vtime.Duration
		tr    detect.Treatment
	}
	var jobs []job
	for extra := vtime.Duration(0); extra <= maxExtra; extra += step {
		for _, tr := range treatments {
			jobs = append(jobs, job{extra, tr})
		}
	}
	return runner.Map(ctx, opt.pool(), jobs, func(_ context.Context, _ int, j job) (SweepPoint, error) {
		sys, err := core.NewSystem(core.Config{
			Tasks:           FigureSet(),
			Treatment:       j.tr,
			Faults:          fault.Plan{"tau1": fault.OverrunAt{Job: FaultyJob, Extra: j.extra}},
			Horizon:         FigureHorizon,
			TimerResolution: detect.DefaultTimerResolution,
			Collect:         opt.collect(),
		})
		if err != nil {
			return SweepPoint{}, err
		}
		res, err := sys.Run()
		if err != nil {
			return SweepPoint{}, err
		}
		return SweepPoint{
			Extra:        j.extra,
			Treatment:    j.tr,
			SuccessRatio: res.Report.SuccessRatio(),
			Tau2Failed:   res.Report.Tasks["tau2"].Failed,
			Tau3Failed:   res.Report.Tasks["tau3"].Failed,
		}, nil
	})
}

// RenderSweep prints the X2 sweep as a series table.
func RenderSweep(points []SweepPoint) string {
	var b strings.Builder
	b.WriteString("X2 — success ratio vs fault magnitude (tau1 job 5 overrun)\n")
	fmt.Fprintf(&b, "%8s %-20s %9s %6s %6s\n", "extra", "treatment", "success", "tau2F", "tau3F")
	for _, p := range points {
		fmt.Fprintf(&b, "%8v %-20s %9.4f %6d %6d\n", p.Extra, p.Treatment, p.SuccessRatio, p.Tau2Failed, p.Tau3Failed)
	}
	return b.String()
}

// ResolutionPoint is one sample of the X3 timer-resolution sweep.
type ResolutionPoint struct {
	Resolution vtime.Duration
	Treatment  detect.Treatment
	// Tau1Ran is how long the faulty job executed before ending.
	Tau1Ran vtime.Duration
	// Collateral counts failures of tau2/tau3.
	Collateral int
}

// TimerResolutionSweep (extension X3) reruns the Figure 5–7 scenarios
// under detector quantizations of 0 (exact), 1, 5 and 10 ms,
// measuring how much CPU the faulty task obtained and whether the
// quantization-induced delay caused collateral misses.
//
// Deprecated: use TimerResolutionSweepCtx (or the "x3" entry of the
// repro/sim experiment registry), which adds cancellation and
// parallel execution.
func TimerResolutionSweep() ([]ResolutionPoint, error) {
	return TimerResolutionSweepCtx(context.Background(), RunOptions{})
}

// TimerResolutionSweepCtx is TimerResolutionSweep over the runner
// pool, one simulation per (resolution, treatment) point.
func TimerResolutionSweepCtx(ctx context.Context, opt RunOptions) ([]ResolutionPoint, error) {
	type job struct {
		res vtime.Duration
		tr  detect.Treatment
	}
	var jobs []job
	for _, res := range []vtime.Duration{0, vtime.Millis(1), vtime.Millis(5), vtime.Millis(10)} {
		for _, tr := range []detect.Treatment{detect.Stop, detect.Equitable, detect.SystemAllowance} {
			jobs = append(jobs, job{res, tr})
		}
	}
	return runner.Map(ctx, opt.pool(), jobs, func(_ context.Context, _ int, j job) (ResolutionPoint, error) {
		sys, err := core.NewSystem(core.Config{
			Tasks:           FigureSet(),
			Treatment:       j.tr,
			Faults:          fault.Plan{"tau1": fault.OverrunAt{Job: FaultyJob, Extra: FigureFaultExtra}},
			Horizon:         FigureHorizon,
			TimerResolution: j.res,
		})
		if err != nil {
			return ResolutionPoint{}, err
		}
		r, err := sys.Run()
		if err != nil {
			return ResolutionPoint{}, err
		}
		p := ResolutionPoint{Resolution: j.res, Treatment: j.tr}
		if jb, ok := r.Report.Job("tau1", FaultyJob); ok {
			p.Tau1Ran = jb.End.Sub(jb.Begin)
		}
		p.Collateral = r.Report.Tasks["tau2"].Failed + r.Report.Tasks["tau3"].Failed
		return p, nil
	})
}

// OverheadPoint is one sample of the X1 detector-overhead sweep.
type OverheadPoint struct {
	Tasks      int
	Detectors  bool
	Switches   int64
	TraceBytes int
}

// DetectorOverheadSweep (extension X1) quantifies the paper's §6.2
// remark — "the more tasks in the system, the more sensors, hence the
// higher the influence of this overrun" — by running n-task systems
// with and without detectors and comparing dispatch switches.
//
// Deprecated: use DetectorOverheadSweepCtx (or the "x1" entry of the
// repro/sim experiment registry), which adds cancellation and
// parallel execution.
func DetectorOverheadSweep(sizes []int, seed uint64) ([]OverheadPoint, error) {
	return DetectorOverheadSweepCtx(context.Background(), sizes, seed, RunOptions{})
}

// DetectorOverheadSweepCtx is DetectorOverheadSweep over the runner
// pool. Each (size, detectors) point regenerates its task set from a
// fresh Generator seeded identically, so no job shares RNG state yet
// both detector settings of a size see the very same system.
func DetectorOverheadSweepCtx(ctx context.Context, sizes []int, seed uint64, opt RunOptions) ([]OverheadPoint, error) {
	type job struct {
		n       int
		withDet bool
	}
	var jobs []job
	for _, n := range sizes {
		jobs = append(jobs, job{n, false}, job{n, true})
	}
	return runner.Map(ctx, opt.pool(), jobs, func(_ context.Context, _ int, j job) (OverheadPoint, error) {
		gen := taskset.NewGenerator(seed)
		gen.DeadlineFactor = 1.0
		s, err := gen.Generate(j.n, 0.5)
		if err != nil {
			return OverheadPoint{}, err
		}
		tr := detect.NoDetection
		if j.withDet {
			tr = detect.DetectOnly
		}
		sys, err := core.NewSystem(core.Config{
			Tasks:           s,
			Treatment:       tr,
			Horizon:         2 * vtime.Second,
			TimerResolution: detect.DefaultTimerResolution,
		})
		if err != nil {
			return OverheadPoint{}, err
		}
		r, err := sys.Run()
		if err != nil {
			return OverheadPoint{}, err
		}
		return OverheadPoint{
			Tasks:      j.n,
			Detectors:  j.withDet,
			Switches:   r.Switches,
			TraceBytes: len(r.Log.EncodeString()),
		}, nil
	})
}

// AcceptancePoint is one sample of the X5 admission-test comparison.
type AcceptancePoint struct {
	U          float64
	LLAccept   float64
	HypAccept  float64
	ExactAccpt float64
}

// AcceptanceSweep (extension X5) measures, over random implicit-
// deadline task sets, the acceptance ratio of the Liu–Layland bound,
// the hyperbolic bound and the exact response-time test at each
// utilization level — the classical justification for implementing
// Figure 2 rather than relying on Eq. 1.
// Note: since the runner refactor each level draws from its own
// derived seed (see AcceptanceSweepCtx), so the sampled task sets —
// and hence the exact ratios — differ from artefacts generated
// before that change; the dominance and monotonicity properties the
// tests pin are seed-independent.
//
// Deprecated: use AcceptanceSweepCtx (or the "x5" entry of the
// repro/sim experiment registry), which adds cancellation and
// parallel execution.
func AcceptanceSweep(levels []float64, perLevel int, n int, seed uint64) ([]AcceptancePoint, error) {
	return AcceptanceSweepCtx(context.Background(), levels, perLevel, n, seed, RunOptions{})
}

// AcceptanceSweepCtx is AcceptanceSweep over the runner pool, one job
// per utilization level. Each level draws its task sets from its own
// runner.DeriveSeed(seed, level) stream instead of one generator
// shared across levels, so levels are independent of execution order
// and the sweep renders identically at any parallelism.
func AcceptanceSweepCtx(ctx context.Context, levels []float64, perLevel int, n int, seed uint64, opt RunOptions) ([]AcceptancePoint, error) {
	return runner.Map(ctx, opt.pool(), levels, func(_ context.Context, i int, u float64) (AcceptancePoint, error) {
		gen := taskset.NewGenerator(runner.DeriveSeed(seed, i))
		var ll, hyp, exact int
		for k := 0; k < perLevel; k++ {
			s, err := gen.Generate(n, u)
			if err != nil {
				return AcceptancePoint{}, err
			}
			if analysis.LiuLaylandBound(s) == analysis.VerdictFeasible {
				ll++
			}
			if analysis.HyperbolicBound(s) == analysis.VerdictFeasible {
				hyp++
			}
			rep, err := analysis.Feasible(s)
			if err == nil && rep.Feasible {
				exact++
			}
		}
		return AcceptancePoint{
			U:          u,
			LLAccept:   float64(ll) / float64(perLevel),
			HypAccept:  float64(hyp) / float64(perLevel),
			ExactAccpt: float64(exact) / float64(perLevel),
		}, nil
	})
}

// RenderAcceptance prints the X5 series.
func RenderAcceptance(points []AcceptancePoint) string {
	var b strings.Builder
	b.WriteString("X5 — acceptance ratio by admission test\n")
	fmt.Fprintf(&b, "%6s %8s %8s %8s\n", "U", "LL", "hyperb", "exact")
	for _, p := range points {
		fmt.Fprintf(&b, "%6.2f %8.3f %8.3f %8.3f\n", p.U, p.LLAccept, p.HypAccept, p.ExactAccpt)
	}
	return b.String()
}

// SummaryOf is a convenience for benches: per-task failures as a map.
func SummaryOf(res *core.Result) map[string]metrics.TaskSummary {
	out := make(map[string]metrics.TaskSummary, len(res.Report.Tasks))
	for name, s := range res.Report.Tasks {
		out[name] = *s
	}
	return out
}
