package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/engine"
	"repro/internal/runner"
	"repro/internal/taskset"
	"repro/internal/trace"
	"repro/internal/vtime"
)

// Extension X10 — task-count scaling of the simulation substrate.
// The paper's §6.2 observation ("the more tasks in the system, the
// more sensors, hence the higher the influence of this overrun")
// makes task count a first-class workload axis, but exploring it is
// only honest if the simulator's own per-event cost does not grow
// with the task count. X10 pins that: synthetic systems from 10 to
// 500 tasks run to the same horizon under streaming collection, and
// the engine-loop events/sec is reported next to the dispatch
// switches. With the policy-ordered ready queue the per-event cost
// grows sub-linearly (logarithmically) in the task count — pinned by
// TestDispatchCostSubLinear at the repository root.

// ScalingSizes is the default X10 axis.
var ScalingSizes = []int{10, 50, 100, 250, 500}

// Scaling sweep constants: every point draws its task set from a
// per-size derived seed at the same total utilization and runs to the
// same horizon.
const (
	ScalingHorizon     = 60 * vtime.Second
	ScalingUtilization = 0.6
	ScalingSeed        = 23
)

// ScalingPoint is one sample of the X10 task-count scaling sweep.
type ScalingPoint struct {
	Tasks int
	// Jobs counts released jobs over the horizon.
	Jobs int64
	// Events counts trace events — the loop iterations the engine
	// actually performed.
	Events int64
	// Switches counts dispatch switches.
	Switches int64
	// Wall is the wall-clock time of the engine loop alone.
	Wall time.Duration
	// EventsPerSec = Events / Wall.
	EventsPerSec float64
}

// scalingSink counts events and releases without retaining anything.
type scalingSink struct{ events, jobs int64 }

func (s *scalingSink) Append(ev trace.Event) {
	s.events++
	if ev.Kind == trace.JobRelease {
		s.jobs++
	}
}

// ScalingSet draws the synthetic n-task system of the X10 sweep:
// UUniFast utilizations at U=0.6, log-uniform periods, rate-monotonic
// priorities, from a per-size derived seed. The generator's default
// 1 ms cost granule would inflate a 500-task set's utilization ~8×
// past 1 (every task's cost rounds up to ≥ 1 ms) and the sweep would
// measure backlog growth, not dispatch — 10 µs granules keep the
// drawn utilization honest, so the live job count (and the engine's
// memory) stays bounded at every size. The scripts/ generator bakes
// the 100-task instance into testdata/scenarios/scaling-100.json.
func ScalingSet(n int, seed uint64) (*taskset.Set, error) {
	gen := taskset.NewGenerator(runner.DeriveSeed(seed, n))
	gen.DeadlineFactor = 1.0
	gen.Granularity = 10 * vtime.Microsecond
	return gen.Generate(n, ScalingUtilization)
}

// RunScalingPoint simulates one synthetic n-task system drawn by
// ScalingSet to the horizon under streaming collection and measures
// the engine loop. Admission control is deliberately skipped: X10
// measures the substrate, not the analysis.
func RunScalingPoint(n int, horizon vtime.Duration, seed uint64) (ScalingPoint, error) {
	s, err := ScalingSet(n, seed)
	if err != nil {
		return ScalingPoint{}, err
	}
	sink := &scalingSink{}
	e, err := engine.New(engine.Config{
		Tasks:   s,
		End:     vtime.Time(horizon),
		Collect: engine.Stream,
		Sink:    sink,
	})
	if err != nil {
		return ScalingPoint{}, err
	}
	t0 := time.Now()
	e.Run()
	wall := time.Since(t0)
	p := ScalingPoint{
		Tasks:    n,
		Jobs:     sink.jobs,
		Events:   sink.events,
		Switches: e.Switches(),
		Wall:     wall,
	}
	if wall > 0 {
		p.EventsPerSec = float64(p.Events) / wall.Seconds()
	}
	return p, nil
}

// TaskScalingSweepCtx runs X10 over the given sizes. Unlike the
// other sweeps it is always serial: each point measures wall-clock
// events/sec, and concurrent simulations would contend for the CPU
// being measured. The context cancels between points; Progress is
// honoured.
func TaskScalingSweepCtx(ctx context.Context, sizes []int, horizon vtime.Duration, opt RunOptions) ([]ScalingPoint, error) {
	out := make([]ScalingPoint, 0, len(sizes))
	for i, n := range sizes {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		p, err := RunScalingPoint(n, horizon, ScalingSeed)
		if err != nil {
			return nil, fmt.Errorf("experiments: x10 at %d tasks: %w", n, err)
		}
		out = append(out, p)
		if opt.Progress != nil {
			opt.Progress(i+1, len(sizes))
		}
	}
	return out, nil
}

// RenderScaling prints the X10 series. The simulated columns (jobs,
// events, switches) are deterministic; events/sec and ns/event
// reflect the measuring host.
func RenderScaling(points []ScalingPoint) string {
	var b strings.Builder
	b.WriteString("X10 — engine throughput vs task count (U=0.6, 60s horizon, streaming)\n")
	fmt.Fprintf(&b, "%6s %9s %9s %9s %12s %9s\n", "tasks", "jobs", "events", "switches", "events/sec", "ns/event")
	for _, p := range points {
		nsPerEvent := 0.0
		if p.Events > 0 {
			nsPerEvent = float64(p.Wall.Nanoseconds()) / float64(p.Events)
		}
		fmt.Fprintf(&b, "%6d %9d %9d %9d %12.0f %9.1f\n",
			p.Tasks, p.Jobs, p.Events, p.Switches, p.EventsPerSec, nsPerEvent)
	}
	return b.String()
}
