package experiments

import (
	"context"
	"testing"

	"repro/internal/vtime"
)

// TestFaultMagnitudeSweepStreamEqualsRetain: X2 consumes only
// task-summary counts, which streaming collection reproduces exactly,
// so the rendered artefact must be byte-identical in both modes.
func TestFaultMagnitudeSweepStreamEqualsRetain(t *testing.T) {
	ctx := context.Background()
	retain, err := FaultMagnitudeSweepCtx(ctx, vtime.Millis(60), vtime.Millis(20), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	stream, err := FaultMagnitudeSweepCtx(ctx, vtime.Millis(60), vtime.Millis(20), RunOptions{Stream: true})
	if err != nil {
		t.Fatal(err)
	}
	if RenderSweep(stream) != RenderSweep(retain) {
		t.Errorf("streamed X2 differs from retained:\n--- stream ---\n%s--- retain ---\n%s",
			RenderSweep(stream), RenderSweep(retain))
	}
}

// TestBaselineComparisonStreamEqualsRetain: X4 likewise reads only
// success ratios; the bare-engine policy rows flow through a
// metrics.Accumulator sink instead of Analyze under streaming.
func TestBaselineComparisonStreamEqualsRetain(t *testing.T) {
	ctx := context.Background()
	retain, err := BaselineComparisonCtx(ctx, vtime.Millis(50), 3*vtime.Second, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	stream, err := BaselineComparisonCtx(ctx, vtime.Millis(50), 3*vtime.Second, RunOptions{Stream: true})
	if err != nil {
		t.Fatal(err)
	}
	if RenderBaselines(stream) != RenderBaselines(retain) {
		t.Errorf("streamed X4 differs from retained:\n--- stream ---\n%s--- retain ---\n%s",
			RenderBaselines(stream), RenderBaselines(retain))
	}
}
