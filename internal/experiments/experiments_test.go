package experiments

import (
	"strings"
	"testing"

	"repro/internal/detect"
	"repro/internal/vtime"
)

func ms(v int64) vtime.Duration { return vtime.Millis(v) }
func at(v int64) vtime.Time     { return vtime.AtMillis(v) }

func TestTable1MatchesPaper(t *testing.T) {
	rows, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// τ2: per-job responses 5, 6, 4 → WCRT 6 at the second job.
	tau2 := rows[1]
	if tau2.WCRT != ms(6) {
		t.Errorf("tau2 WCRT = %v, want 6ms", tau2.WCRT)
	}
	want := []vtime.Duration{ms(5), ms(6), ms(4)}
	for i, w := range want {
		if tau2.Jobs[i].Response != w {
			t.Errorf("tau2 q%d = %v, want %v", i, tau2.Jobs[i].Response, w)
		}
	}
	out := RenderTable1(rows)
	if !strings.Contains(out, "q1=6ms") {
		t.Errorf("render missing worst job:\n%s", out)
	}
}

func TestTable2MatchesPaper(t *testing.T) {
	rows, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	wantWCRT := []int64{29, 58, 87}
	for i, r := range rows {
		if r.WCRT != ms(wantWCRT[i]) {
			t.Errorf("WCRT[%d] = %v, want %dms", i, r.WCRT, wantWCRT[i])
		}
		if r.Allowance != ms(11) {
			t.Errorf("A[%d] = %v, want 11ms", i, r.Allowance)
		}
		if r.MaxOverrun != ms(33) {
			t.Errorf("maxOverrun[%d] = %v, want 33ms", i, r.MaxOverrun)
		}
	}
	out := RenderTable2(rows)
	for _, cell := range []string{"tau1", "200", "70", "29", "11"} {
		if !strings.Contains(out, cell) {
			t.Errorf("render missing %q:\n%s", cell, out)
		}
	}
}

func TestTable3MatchesPaper(t *testing.T) {
	rows, err := Table3()
	if err != nil {
		t.Fatal(err)
	}
	wantShift := []int64{11, 22, 33}
	wantTotal := []int64{40, 80, 120}
	for i, r := range rows {
		if r.Shift != ms(wantShift[i]) || r.EquitableWCRT != ms(wantTotal[i]) {
			t.Errorf("row %d: shift %v total %v, want +%d → %d", i, r.Shift, r.EquitableWCRT, wantShift[i], wantTotal[i])
		}
	}
	if out := RenderTable3(rows); !strings.Contains(out, "WCRT+33ms") {
		t.Errorf("render:\n%s", out)
	}
}

// TestFigureOutcomes pins every §6 chart to the paper's prose.
func TestFigureOutcomes(t *testing.T) {
	cases := []struct {
		fig                 Figure
		t1End, t2End, t3End int64
		t1F, t2F, t3F       bool
		minDetect           int64
	}{
		// Fig 3: τ1 and τ2 end before their deadlines, τ3 misses.
		{Figure3, 1069, 1098, 1127, false, false, true, 0},
		// Fig 4: identical schedule, detections recorded.
		{Figure4, 1069, 1098, 1127, false, false, true, 1},
		// Fig 5: τ1 stopped at its (quantized) WCRT; only τ1 fails.
		{Figure5, 1030, 1059, 1088, true, false, false, 1},
		// Fig 6: τ1 stopped at WCRT+11 (quantized 40); τ2/τ3 meet.
		{Figure6, 1040, 1069, 1098, true, false, false, 1},
		// Fig 7: τ1 stopped at WCRT+33; τ2/τ3 finish just before
		// their deadlines (τ3 exactly at 1120).
		{Figure7, 1062, 1091, 1120, true, false, false, 1},
	}
	for _, c := range cases {
		res, err := RunFigure(c.fig)
		if err != nil {
			t.Fatalf("%v: %v", c.fig, err)
		}
		o := Outcome(c.fig, res)
		if o.Tau1End != at(c.t1End) || o.Tau1Failed != c.t1F {
			t.Errorf("%s: tau1 end=%v failed=%v, want %dms/%v", c.fig.Title(), o.Tau1End, o.Tau1Failed, c.t1End, c.t1F)
		}
		if o.Tau2End != at(c.t2End) || o.Tau2Failed != c.t2F {
			t.Errorf("%s: tau2 end=%v failed=%v, want %dms/%v", c.fig.Title(), o.Tau2End, o.Tau2Failed, c.t2End, c.t2F)
		}
		if o.Tau3End != at(c.t3End) || o.Tau3Failed != c.t3F {
			t.Errorf("%s: tau3 end=%v failed=%v, want %dms/%v", c.fig.Title(), o.Tau3End, o.Tau3Failed, c.t3End, c.t3F)
		}
		if o.Detections < c.minDetect {
			t.Errorf("%s: detections = %d, want >= %d", c.fig.Title(), o.Detections, c.minDetect)
		}
		if out := RenderOutcome(o); !strings.Contains(out, "tau1") {
			t.Errorf("outcome render:\n%s", out)
		}
	}
}

func TestFigureEnumHelpers(t *testing.T) {
	for _, f := range []Figure{Figure3, Figure4, Figure5, Figure6, Figure7} {
		if f.Title() == "" {
			t.Errorf("figure %d has no title", int(f))
		}
		_ = f.Treatment()
	}
	defer func() {
		if recover() == nil {
			t.Error("unknown figure Treatment must panic")
		}
	}()
	Figure(99).Treatment()
}

func TestFaultMagnitudeSweepShape(t *testing.T) {
	points, err := FaultMagnitudeSweep(ms(45), ms(15))
	if err != nil {
		t.Fatal(err)
	}
	// 4 magnitudes × 5 treatments.
	if len(points) != 20 {
		t.Fatalf("points = %d, want 20", len(points))
	}
	byKey := map[string]SweepPoint{}
	for _, p := range points {
		byKey[p.Treatment.String()+p.Extra.String()] = p
	}
	// At zero extra every policy is perfect.
	for _, tr := range []detect.Treatment{detect.NoDetection, detect.Stop, detect.SystemAllowance} {
		p := byKey[tr.String()+"0ms"]
		if p.SuccessRatio != 1 {
			t.Errorf("%v at 0 extra: success %v, want 1", tr, p.SuccessRatio)
		}
	}
	// At 45 ms extra, no-detection loses τ3 while stop protects it.
	noDet := byKey[detect.NoDetection.String()+"45ms"]
	stop := byKey[detect.Stop.String()+"45ms"]
	if noDet.Tau3Failed == 0 {
		t.Error("45ms fault without detection must fail tau3")
	}
	if stop.Tau3Failed != 0 || stop.Tau2Failed != 0 {
		t.Error("stop treatment must protect tau2/tau3 at 45ms")
	}
	if out := RenderSweep(points); !strings.Contains(out, "treatment") {
		t.Errorf("sweep render:\n%s", out)
	}
}

func TestTimerResolutionSweep(t *testing.T) {
	points, err := TimerResolutionSweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 12 {
		t.Fatalf("points = %d, want 12", len(points))
	}
	// The faulty task's CPU time grows (weakly) with the treatment
	// generosity at fixed resolution: stop ≤ equitable ≤ system.
	pick := func(res vtime.Duration, tr detect.Treatment) ResolutionPoint {
		for _, p := range points {
			if p.Resolution == res && p.Treatment == tr {
				return p
			}
		}
		t.Fatalf("missing point %v/%v", res, tr)
		return ResolutionPoint{}
	}
	for _, res := range []vtime.Duration{0, ms(1), ms(5), ms(10)} {
		s, e, y := pick(res, detect.Stop), pick(res, detect.Equitable), pick(res, detect.SystemAllowance)
		if !(s.Tau1Ran <= e.Tau1Ran && e.Tau1Ran <= y.Tau1Ran) {
			t.Errorf("res %v: tau1 ran %v/%v/%v, want stop ≤ equitable ≤ system", res, s.Tau1Ran, e.Tau1Ran, y.Tau1Ran)
		}
		if s.Collateral != 0 || e.Collateral != 0 || y.Collateral != 0 {
			t.Errorf("res %v: collateral failures %d/%d/%d, want none", res, s.Collateral, e.Collateral, y.Collateral)
		}
	}
}

func TestDetectorOverheadSweep(t *testing.T) {
	points, err := DetectorOverheadSweep([]int{2, 4}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("points = %d, want 4", len(points))
	}
	// Detector runs must trace at least as many events (the sensors
	// add DetectorRelease records) — the §6.2 remark quantified.
	for i := 0; i < len(points); i += 2 {
		without, with := points[i], points[i+1]
		if with.TraceBytes <= without.TraceBytes {
			t.Errorf("n=%d: detectors must enlarge the trace: %d vs %d bytes",
				with.Tasks, with.TraceBytes, without.TraceBytes)
		}
	}
}

func TestAcceptanceSweepDominance(t *testing.T) {
	points, err := AcceptanceSweep([]float64{0.5, 0.7, 0.9}, 40, 4, 11)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		// Dominance: LL ⊆ hyperbolic ⊆ exact (for RM implicit-deadline
		// sets the exact test accepts whatever the bounds accept).
		if p.LLAccept > p.HypAccept+1e-9 {
			t.Errorf("U=%.2f: LL %.3f > hyperbolic %.3f", p.U, p.LLAccept, p.HypAccept)
		}
		if p.HypAccept > p.ExactAccpt+1e-9 {
			t.Errorf("U=%.2f: hyperbolic %.3f > exact %.3f", p.U, p.HypAccept, p.ExactAccpt)
		}
	}
	// Acceptance decreases with load for every test.
	if points[0].ExactAccpt < points[2].ExactAccpt {
		t.Errorf("exact acceptance should not grow with U: %.3f at 0.5 vs %.3f at 0.9",
			points[0].ExactAccpt, points[2].ExactAccpt)
	}
	if out := RenderAcceptance(points); !strings.Contains(out, "exact") {
		t.Errorf("render:\n%s", out)
	}
}

func TestFigureWindowAndSummary(t *testing.T) {
	from, to := FigureWindow()
	if !from.Before(at(1000)) || !to.After(at(1120)) {
		t.Errorf("window [%v,%v] must cover the faulty activation", from, to)
	}
	res, err := RunFigure(Figure5)
	if err != nil {
		t.Fatal(err)
	}
	sum := SummaryOf(res)
	if sum["tau1"].Stopped == 0 {
		t.Error("summary must show tau1 stops")
	}
}

func TestBlockingSweepRender(t *testing.T) {
	out, err := BlockingSweep()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"11ms", "infeasible", "33ms", "0ms"} {
		if !strings.Contains(out, want) {
			t.Errorf("blocking sweep missing %q:\n%s", want, out)
		}
	}
}

func TestBaselineComparisonShape(t *testing.T) {
	points, err := BaselineComparison(ms(50), 3*vtime.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 6 {
		t.Fatalf("points = %d, want 6 policies", len(points))
	}
	var paper *BaselinePoint
	for i := range points {
		if points[i].Policy == "fp+detectors(stop)" {
			paper = &points[i]
		}
	}
	if paper == nil {
		t.Fatal("paper policy missing")
	}
	if paper.Tau3Success != 1 {
		t.Errorf("the paper's approach must fully protect tau3, got %v", paper.Tau3Success)
	}
	if out := RenderBaselines(points); !strings.Contains(out, "d-over") {
		t.Errorf("render:\n%s", out)
	}
}
