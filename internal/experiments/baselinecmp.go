package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/allowance"
	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/runner"
	"repro/internal/vtime"
)

// BaselinePoint is one sample of the X4 comparison: the paper's
// admission-control-plus-detectors approach versus the overload
// schedulers of its related work (§1), on the same task system under
// the same recurring fault.
type BaselinePoint struct {
	Policy string
	// SuccessRatio over all jobs of the run.
	SuccessRatio float64
	// Tau1Success, Tau3Success isolate the faulty task and the most
	// exposed victim.
	Tau1Success float64
	Tau3Success float64
}

// BaselineComparison (extension X4) runs the Table 2 system (τ3
// offset 1000 ms) with τ1 overrunning by extra on every other job,
// under: the paper's FPP + detectors + Stop; plain fixed priorities
// with no detection; EDF; Locke best-effort; RED; and D-over. The
// paper's positioning — prevention through admission control plus
// cheap detectors, rather than generic overload handling — shows up
// as the FPP+Stop row protecting τ2/τ3 completely.
//
// Deprecated: use BaselineComparisonCtx (or the "x4" entry of the
// repro/sim experiment registry), which adds cancellation and
// parallel execution.
func BaselineComparison(extra vtime.Duration, horizon vtime.Duration) ([]BaselinePoint, error) {
	return BaselineComparisonCtx(context.Background(), extra, horizon, RunOptions{})
}

// BaselineComparisonCtx is BaselineComparison over the runner pool:
// each policy's run is an independent simulation, the paper's
// detector-supervised run first, the five overload schedulers after,
// collected in that order.
func BaselineComparisonCtx(ctx context.Context, extra vtime.Duration, horizon vtime.Duration, opt RunOptions) ([]BaselinePoint, error) {
	faults := fault.Plan{"tau1": fault.OverrunEvery{First: 1, K: 2, Extra: extra}}

	// A nil policy marks the paper's approach (core.System with
	// detectors); the rest run the bare engine under that policy.
	policies := []engine.Policy{
		nil,
		engine.FixedPriority{},
		baselines.EDF{},
		baselines.BestEffort{},
		baselines.RED{},
		baselines.DOver{},
	}
	return runner.Map(ctx, opt.pool(), policies, func(_ context.Context, _ int, p engine.Policy) (BaselinePoint, error) {
		if p == nil {
			sys, err := core.NewSystem(core.Config{
				Tasks:           FigureSet(),
				Treatment:       detect.Stop,
				Faults:          faults,
				Horizon:         horizon,
				TimerResolution: detect.DefaultTimerResolution,
				Collect:         opt.collect(),
			})
			if err != nil {
				return BaselinePoint{}, err
			}
			res, err := sys.Run()
			if err != nil {
				return BaselinePoint{}, err
			}
			return point("fp+detectors(stop)", res.Report), nil
		}
		cfg := engine.Config{
			Tasks:   FigureSet(),
			Faults:  faults,
			Policy:  p,
			End:     vtime.Time(horizon),
			Collect: opt.collect(),
		}
		var acc *metrics.Accumulator
		if opt.Stream {
			acc = metrics.NewAccumulator()
			cfg.Sink = acc
		}
		e, err := engine.New(cfg)
		if err != nil {
			return BaselinePoint{}, err
		}
		log := e.Run()
		if acc != nil {
			return point(p.Name(), acc.Report()), nil
		}
		return point(p.Name(), metrics.Analyze(log)), nil
	})
}

func point(name string, rep *metrics.Report) BaselinePoint {
	bp := BaselinePoint{Policy: name, SuccessRatio: rep.SuccessRatio()}
	if s, ok := rep.Tasks["tau1"]; ok {
		bp.Tau1Success = s.SuccessRatio()
	}
	if s, ok := rep.Tasks["tau3"]; ok {
		bp.Tau3Success = s.SuccessRatio()
	}
	return bp
}

// RenderBaselines prints the X4 table.
func RenderBaselines(points []BaselinePoint) string {
	var b strings.Builder
	b.WriteString("X4 — paper's approach vs overload schedulers (tau1 overruns every 2nd job)\n")
	fmt.Fprintf(&b, "%-20s %9s %9s %9s\n", "policy", "success", "tau1", "tau3")
	for _, p := range points {
		fmt.Fprintf(&b, "%-20s %9.4f %9.4f %9.4f\n", p.Policy, p.SuccessRatio, p.Tau1Success, p.Tau3Success)
	}
	return b.String()
}

// BlockingSweep (extension X9, paper §7: "the influence of tolerance
// on the determination of the blocking time bi") sweeps a uniform
// blocking term over the Table 2 system and reports the surviving
// equitable allowance, plus the converse: the blocking tolerance left
// at each partial allowance grant.
func BlockingSweep() (string, error) {
	s := Table2Set()
	tab, err := allowance.SweepBlocking(s, vtime.Millis(40), vtime.Millis(5), 0)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("X9 — blocking vs allowance (Table 2 system)\n")
	fmt.Fprintf(&b, "%12s %12s\n", "blocking", "allowance")
	for i := range tab.Blocking {
		a := "infeasible"
		if tab.Allowance[i] >= 0 {
			a = tab.Allowance[i].String()
		}
		fmt.Fprintf(&b, "%12v %12s\n", tab.Blocking[i], a)
	}
	b.WriteString("\n    granted A     blocking tolerance left\n")
	for _, grant := range []vtime.Duration{0, vtime.Millis(5), vtime.Millis(11)} {
		bt, err := allowance.MaxBlockingTolerance(s, grant, 0)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "%12v %12v\n", grant, bt)
	}
	return b.String(), nil
}
