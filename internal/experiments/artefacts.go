package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/chart"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/vtime"
)

// This file renders the artefacts exactly as cmd/rtexp prints them,
// so the experiment registry (repro/sim) and the CLI share one
// byte-identical text form per table, figure and sweep.

// FigureArtefact runs the figure's scenario and renders the complete
// artefact: the outcome next to the paper's statement, the ASCII
// execution chart over the published window, and the per-task
// metrics. With a non-empty svgDir it additionally writes
// figure<N>.svg there and appends the path to the text.
func FigureArtefact(f Figure, svgDir string) (FigureOutcome, string, error) {
	res, err := RunFigure(f)
	if err != nil {
		return FigureOutcome{}, "", err
	}
	outcome := Outcome(f, res)
	text := RenderOutcome(outcome) + "\n"
	opts, deadlines := figureChart(res)
	text += chart.ASCII(res.Log, opts, deadlines) + "\n"
	text += metrics.Analyze(res.Log).Render()
	if svgDir != "" {
		if err := os.MkdirAll(svgDir, 0o755); err != nil {
			return FigureOutcome{}, "", err
		}
		path := filepath.Join(svgDir, fmt.Sprintf("figure%d.svg", int(f)))
		if err := os.WriteFile(path, []byte(chart.SVG(res.Log, opts, deadlines)), 0o644); err != nil {
			return FigureOutcome{}, "", err
		}
		text += fmt.Sprintf("wrote %s\n", path)
	}
	return outcome, text, nil
}

func figureChart(res *core.Result) (chart.Options, map[string]vtime.Duration) {
	from, to := FigureWindow()
	opts := chart.Options{
		From: from, To: to, CellMS: 2,
		Tasks: []string{"tau1", "tau2", "tau3"},
		WCRTMarks: map[string]vtime.Duration{
			"tau1": res.Allowance.WCRT[0],
			"tau2": res.Allowance.WCRT[1],
			"tau3": res.Allowance.WCRT[2],
		},
	}
	deadlines := map[string]vtime.Duration{
		"tau1": vtime.Millis(70), "tau2": vtime.Millis(120), "tau3": vtime.Millis(120),
	}
	return opts, deadlines
}

// RenderOverhead prints the X1 detector-overhead series.
func RenderOverhead(points []OverheadPoint) string {
	var b strings.Builder
	b.WriteString("X1 — detector overhead vs task count\n")
	fmt.Fprintf(&b, "%6s %10s %10s %12s\n", "tasks", "detectors", "switches", "traceBytes")
	for _, p := range points {
		fmt.Fprintf(&b, "%6d %10v %10d %12d\n", p.Tasks, p.Detectors, p.Switches, p.TraceBytes)
	}
	return b.String()
}

// RenderResolution prints the X3 timer-resolution series.
func RenderResolution(points []ResolutionPoint) string {
	var b strings.Builder
	b.WriteString("X3 — timer resolution sensitivity\n")
	fmt.Fprintf(&b, "%12s %-20s %10s %10s\n", "resolution", "treatment", "tau1Ran", "collateral")
	for _, p := range points {
		fmt.Fprintf(&b, "%12v %-20s %10v %10d\n", p.Resolution, p.Treatment, p.Tau1Ran, p.Collateral)
	}
	return b.String()
}
