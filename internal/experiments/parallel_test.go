package experiments

import (
	"context"
	"errors"
	"testing"

	"repro/internal/vtime"
)

// TestFaultMagnitudeSweepParallelEqualsSerial is the tentpole
// cross-check: the X2 sweep rendered from a parallel run must be
// byte-identical to the serial (-serial escape hatch) run.
func TestFaultMagnitudeSweepParallelEqualsSerial(t *testing.T) {
	ctx := context.Background()
	serial, err := FaultMagnitudeSweepCtx(ctx, ms(60), ms(5), RunOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{0, 4, 16} {
		got, err := FaultMagnitudeSweepCtx(ctx, ms(60), ms(5), RunOptions{Parallelism: par})
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		if a, b := RenderSweep(serial), RenderSweep(got); a != b {
			t.Fatalf("parallelism %d diverges from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", par, a, b)
		}
	}
}

// TestAcceptanceSweepParallelEqualsSerial: per-level derived seeds
// make the X5 sweep independent of execution order.
func TestAcceptanceSweepParallelEqualsSerial(t *testing.T) {
	ctx := context.Background()
	levels := []float64{0.3, 0.5, 0.7, 0.8, 0.9, 0.95, 1.0}
	serial, err := AcceptanceSweepCtx(ctx, levels, 60, 5, 11, RunOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := AcceptanceSweepCtx(ctx, levels, 60, 5, 11, RunOptions{Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	if a, b := RenderAcceptance(serial), RenderAcceptance(par); a != b {
		t.Fatalf("parallel diverges from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", a, b)
	}
}

// TestRemainingSweepsParallelEqualSerial covers X1, X3 and X4: every
// runner-routed experiment must be execution-order independent.
func TestRemainingSweepsParallelEqualSerial(t *testing.T) {
	ctx := context.Background()

	ovS, err := DetectorOverheadSweepCtx(ctx, []int{2, 4, 8}, 7, RunOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	ovP, err := DetectorOverheadSweepCtx(ctx, []int{2, 4, 8}, 7, RunOptions{Parallelism: 6})
	if err != nil {
		t.Fatal(err)
	}
	for i := range ovS {
		if ovS[i] != ovP[i] {
			t.Fatalf("X1 point %d: serial %+v != parallel %+v", i, ovS[i], ovP[i])
		}
	}

	trS, err := TimerResolutionSweepCtx(ctx, RunOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	trP, err := TimerResolutionSweepCtx(ctx, RunOptions{Parallelism: 6})
	if err != nil {
		t.Fatal(err)
	}
	for i := range trS {
		if trS[i] != trP[i] {
			t.Fatalf("X3 point %d: serial %+v != parallel %+v", i, trS[i], trP[i])
		}
	}

	blS, err := BaselineComparisonCtx(ctx, ms(50), 3*vtime.Second, RunOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	blP, err := BaselineComparisonCtx(ctx, ms(50), 3*vtime.Second, RunOptions{Parallelism: 6})
	if err != nil {
		t.Fatal(err)
	}
	if a, b := RenderBaselines(blS), RenderBaselines(blP); a != b {
		t.Fatalf("X4 diverges:\n--- serial ---\n%s\n--- parallel ---\n%s", a, b)
	}
}

// TestSweepCancellation: a pre-cancelled context aborts a sweep with
// context.Canceled instead of running it.
func TestSweepCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := FaultMagnitudeSweepCtx(ctx, ms(60), ms(5), RunOptions{Parallelism: 4}); !errors.Is(err, context.Canceled) {
		t.Fatalf("X2 err = %v, want context.Canceled", err)
	}
	if _, err := AcceptanceSweepCtx(ctx, []float64{0.5, 0.9}, 20, 4, 11, RunOptions{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("X5 err = %v, want context.Canceled", err)
	}
}

// TestSweepProgressReporting: the progress hook sees the full job
// count of a sweep exactly once each.
func TestSweepProgressReporting(t *testing.T) {
	var last, calls int
	_, err := FaultMagnitudeSweepCtx(context.Background(), ms(45), ms(15), RunOptions{
		Parallelism: 3,
		Progress: func(done, total int) {
			if total != 20 { // 4 magnitudes × 5 treatments
				t.Errorf("total = %d, want 20", total)
			}
			last, calls = done, calls+1
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if last != 20 || calls != 20 {
		t.Fatalf("progress last=%d calls=%d, want 20/20", last, calls)
	}
}
