package sched

import (
	"testing"

	"repro/internal/taskset"
	"repro/internal/vtime"
)

func ms(v int64) vtime.Duration { return vtime.Millis(v) }

func task(name string, T, D, C int64) taskset.Task {
	return taskset.Task{Name: name, Period: ms(T), Deadline: ms(D), Cost: ms(C)}
}

func prios(s *taskset.Set) map[string]int {
	out := map[string]int{}
	for _, t := range s.Tasks {
		out[t.Name] = t.Priority
	}
	return out
}

func TestRateMonotonic(t *testing.T) {
	s := taskset.MustNew(
		withPrio(task("slow", 300, 300, 10), 1),
		withPrio(task("fast", 50, 50, 5), 2),
		withPrio(task("mid", 100, 100, 5), 3),
	)
	rm := RateMonotonic(s)
	p := prios(rm)
	if !(p["fast"] > p["mid"] && p["mid"] > p["slow"]) {
		t.Fatalf("RM order wrong: %v", p)
	}
	// Original untouched.
	if s.Tasks[0].Priority != 1 {
		t.Error("RateMonotonic mutated its input")
	}
}

func withPrio(t taskset.Task, p int) taskset.Task {
	t.Priority = p
	return t
}

func TestDeadlineMonotonic(t *testing.T) {
	// Same periods, different deadlines: DM must order by deadline.
	s := taskset.MustNew(
		withPrio(task("loose", 100, 90, 5), 1),
		withPrio(task("tight", 100, 20, 5), 2),
		withPrio(task("mid", 100, 50, 5), 3),
	)
	dm := DeadlineMonotonic(s)
	p := prios(dm)
	if !(p["tight"] > p["mid"] && p["mid"] > p["loose"]) {
		t.Fatalf("DM order wrong: %v", p)
	}
}

func TestRMTiesStable(t *testing.T) {
	s := taskset.MustNew(
		withPrio(task("a", 100, 100, 5), 1),
		withPrio(task("b", 100, 100, 5), 2),
	)
	rm := RateMonotonic(s)
	p := prios(rm)
	if p["a"] <= p["b"] {
		t.Fatalf("ties must break by declaration order: %v", p)
	}
}

// TestDMBeatsRMOnConstrainedDeadlines: the classical case where RM
// fails but DM succeeds — a long-period task with a tight deadline.
func TestDMBeatsRMOnConstrainedDeadlines(t *testing.T) {
	s := taskset.MustNew(
		withPrio(task("longTight", 200, 20, 10), 1),
		withPrio(task("shortLoose", 50, 50, 20), 2),
	)
	rm := RateMonotonic(s)
	dm := DeadlineMonotonic(s)
	if Feasible(rm) {
		t.Fatal("RM should fail here: longTight (D=20) sits below shortLoose (C=20)")
	}
	if !Feasible(dm) {
		t.Fatal("DM must succeed: longTight first (R=10 <= 20), shortLoose R=30 <= 50")
	}
}

func TestAudsleyFindsAssignmentWhereMonotonicsFail(t *testing.T) {
	// Arbitrary-deadline case (D > T allowed): neither RM nor DM is
	// optimal in general; Audsley over the exact test is.
	s := taskset.MustNew(
		withPrio(task("a", 50, 120, 20), 1),
		withPrio(task("b", 80, 40, 20), 2),
		withPrio(task("c", 200, 200, 40), 3),
	)
	got, err := Audsley(s)
	if err != nil {
		t.Fatalf("Audsley: %v", err)
	}
	if !Feasible(got) {
		t.Fatal("Audsley returned an infeasible assignment")
	}
}

func TestAudsleyAgreesWithFeasibilityOnRandomSets(t *testing.T) {
	// Wherever DM already yields feasibility, Audsley must too
	// (optimality: it finds an assignment whenever one exists).
	gen := taskset.NewGenerator(21)
	gen.DeadlineFactor = 0.9
	checked := 0
	for trial := 0; trial < 120 && checked < 40; trial++ {
		s, err := gen.Generate(4, 0.7)
		if err != nil {
			t.Fatal(err)
		}
		dm := DeadlineMonotonic(s)
		if !Feasible(dm) {
			continue
		}
		checked++
		aud, err := Audsley(s)
		if err != nil {
			t.Fatalf("trial %d: DM feasible but Audsley failed: %v\n%s", trial, err, taskset.Format(s))
		}
		if !Feasible(aud) {
			t.Fatalf("trial %d: Audsley produced an infeasible set", trial)
		}
	}
	if checked < 10 {
		t.Fatalf("only %d DM-feasible sets; generator too tight", checked)
	}
}

func TestAudsleyRejectsHopelessSet(t *testing.T) {
	s := taskset.MustNew(
		withPrio(task("a", 10, 10, 7), 1),
		withPrio(task("b", 10, 10, 7), 2),
	)
	if _, err := Audsley(s); err == nil {
		t.Fatal("U = 1.4 has no feasible assignment; Audsley must fail")
	}
}

func TestAudsleyPreservesTaskParameters(t *testing.T) {
	s := taskset.MustNew(
		withPrio(task("a", 100, 100, 10), 1),
		withPrio(task("b", 200, 200, 10), 2),
	)
	got, err := Audsley(s)
	if err != nil {
		t.Fatal(err)
	}
	for i := range s.Tasks {
		a, b := s.Tasks[i], got.Tasks[i]
		if a.Name != b.Name || a.Period != b.Period || a.Deadline != b.Deadline || a.Cost != b.Cost {
			t.Fatalf("Audsley altered task parameters: %+v vs %+v", a, b)
		}
	}
	// Priorities form a permutation of 1..n.
	seen := map[int]bool{}
	for _, tk := range got.Tasks {
		if tk.Priority < 1 || tk.Priority > got.Len() || seen[tk.Priority] {
			t.Fatalf("priorities not a permutation: %v", prios(got))
		}
		seen[tk.Priority] = true
	}
}
